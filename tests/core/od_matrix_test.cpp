#include "core/od_matrix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "core/encoder.h"
#include "core/pair_simulation.h"
#include "core/scheme.h"
#include "roadnet/sioux_falls.h"

namespace vlm::core {
namespace {

// Builds K RSU states over a shared vehicle population: vehicle i visits
// RSU r iff i % (r + 2) == 0, giving exact ground-truth intersections.
std::vector<RsuState> deterministic_fleet(std::size_t k, std::uint64_t n,
                                          const Encoder& enc, std::size_t m) {
  std::vector<RsuState> states;
  for (std::size_t r = 0; r < k; ++r) states.emplace_back(m);
  for (std::uint64_t i = 0; i < n; ++i) {
    VehicleIdentity v;
    v.id = VehicleId{common::mix64(common::mix64(99) + (i + 1) * 0x9E3779B97F4A7C15ull)};
    v.private_key =
        common::mix64(common::mix64(123) + (i + 1) * 0xC2B2AE3D27D4EB4Full);
    for (std::size_t r = 0; r < k; ++r) {
      if (i % (r + 2) == 0) {
        states[r].record(enc.bit_index(v, RsuId{r + 1}, m));
      }
    }
  }
  return states;
}

TEST(OdMatrix, EstimatesEveryPairAgainstGroundTruth) {
  Encoder enc(EncoderConfig{});
  constexpr std::uint64_t kN = 60'000;
  const auto states = deterministic_fleet(4, kN, enc, 1 << 17);
  const OdMatrix matrix = estimate_od_matrix(states, 2);
  EXPECT_EQ(matrix.rsu_count(), 4u);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      // Truth: multiples of lcm(a+2, b+2) in [0, kN).
      const std::uint64_t la = a + 2, lb = b + 2;
      const std::uint64_t lcm = la * lb / std::gcd(la, lb);
      const double truth = std::floor((double(kN) - 1.0) / double(lcm)) + 1.0;
      const EstimateInterval& e = matrix.at(a, b);
      EXPECT_NEAR(e.n_c_hat, truth, std::max(4.0 * e.stddev, 0.15 * truth))
          << "pair (" << a << "," << b << ")";
    }
  }
}

TEST(OdMatrix, IsSymmetric) {
  Encoder enc(EncoderConfig{});
  const auto states = deterministic_fleet(3, 20'000, enc, 1 << 16);
  const OdMatrix matrix = estimate_od_matrix(states, 2);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(matrix.at(a, b).n_c_hat, matrix.at(b, a).n_c_hat);
    }
  }
}

TEST(OdMatrix, TotalAggregatesAllPairs) {
  Encoder enc(EncoderConfig{});
  const auto states = deterministic_fleet(3, 20'000, enc, 1 << 16);
  const OdMatrix matrix = estimate_od_matrix(states, 2);
  const double total = matrix.total_estimated_common();
  EXPECT_NEAR(total, matrix.at(0, 1).n_c_hat + matrix.at(0, 2).n_c_hat +
                         matrix.at(1, 2).n_c_hat,
              1e-9);
}

TEST(OdMatrix, HandlesMixedArraySizes) {
  // Different per-RSU sizes (the VLM case): unfolding must kick in.
  Encoder enc(EncoderConfig{});
  std::vector<RsuState> states;
  states.emplace_back(1 << 14);
  states.emplace_back(1 << 17);
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    VehicleIdentity v;
    v.id = VehicleId{common::mix64(common::mix64(5) + (i + 1) * 0x9E3779B97F4A7C15ull)};
    v.private_key = common::mix64((i + 1) * 0xC2B2AE3D27D4EB4Full);
    if (i % 10 == 0) states[0].record(enc.bit_index(v, RsuId{1}, 1 << 14));
    states[1].record(enc.bit_index(v, RsuId{2}, 1 << 17));
  }
  const OdMatrix matrix = estimate_od_matrix(states, 2);
  // All 3,000 RSU-0 vehicles also passed RSU 1.
  const EstimateInterval& e = matrix.at(0, 1);
  EXPECT_NEAR(e.n_c_hat, 3000.0, std::max(4.0 * e.stddev, 450.0));
}

TEST(OdMatrix, ParallelDecodeBitIdenticalToSerialOnSiouxFalls) {
  // 24 RSUs sized from the Sioux Falls trip table's per-node demand under
  // VLM sizing (mixed array sizes, so unfolding paths are exercised).
  // The parallel pipeline must reproduce the serial result bit for bit.
  const roadnet::TripTable trips = roadnet::sioux_falls_trip_table();
  ASSERT_EQ(trips.node_count(), 24u);
  const VlmScheme scheme(VlmSchemeConfig{.s = 2, .load_factor = 8.0});
  std::vector<RsuState> states;
  states.reserve(24);
  for (roadnet::NodeIndex n = 0; n < 24; ++n) {
    states.push_back(scheme.make_rsu_state(trips.node_demand(n) / 16.0));
  }
  // Deterministic traffic: vehicle i visits RSU r with a per-RSU
  // probability shaped by the node demand, hashed from (i, r).
  const Encoder& enc = scheme.encoder();
  const double total = trips.total_demand();
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    const VehicleIdentity v = synthetic_vehicle(7, i);
    for (std::size_t r = 0; r < 24; ++r) {
      const double p =
          4.0 * trips.node_demand(static_cast<roadnet::NodeIndex>(r)) / total;
      const std::uint64_t h =
          common::mix64((i + 1) * 0x9E3779B97F4A7C15ull ^ (r + 1));
      if (static_cast<double>(h % 10'000) < p * 10'000.0) {
        states[r].record(enc.bit_index(v, RsuId{r + 1},
                                       states[r].array_size()));
      }
    }
  }

  DecodeStats serial_stats, parallel_stats;
  const OdMatrix serial = estimate_od_matrix(states, 2, 1.96, 1,
                                             &serial_stats);
  const OdMatrix parallel = estimate_od_matrix(states, 2, 1.96, 8,
                                               &parallel_stats);
  for (std::size_t a = 0; a < 24; ++a) {
    for (std::size_t b = a + 1; b < 24; ++b) {
      const EstimateInterval& se = serial.at(a, b);
      const EstimateInterval& pe = parallel.at(a, b);
      EXPECT_EQ(se.n_c_hat, pe.n_c_hat) << "pair (" << a << "," << b << ")";
      EXPECT_EQ(se.stddev, pe.stddev);
      EXPECT_EQ(se.lower, pe.lower);
      EXPECT_EQ(se.upper, pe.upper);
      EXPECT_EQ(se.floor_stddev, pe.floor_stddev);
      EXPECT_EQ(se.degraded, pe.degraded);
    }
  }
  // Stats are deterministic too: same pairs, same words, regardless of
  // the worker count.
  EXPECT_EQ(serial_stats.pairs_decoded, 24u * 23u / 2u);
  EXPECT_EQ(parallel_stats.pairs_decoded, serial_stats.pairs_decoded);
  EXPECT_EQ(parallel_stats.words_scanned, serial_stats.words_scanned);
  EXPECT_GT(serial_stats.words_scanned, 0u);
  EXPECT_EQ(serial_stats.workers, 1u);
  EXPECT_EQ(parallel_stats.workers, 8u);
  EXPECT_GE(serial_stats.wall_seconds, 0.0);
}

// Exhaustive indexing oracle: for every K <= 8, at(a, b) must return
// exactly the estimate of pair (a, b) — computed independently per pair
// with the same estimator — for every (a, b) order. Catches any
// triangle-offset arithmetic slip at every matrix size.
TEST(OdMatrix, AtMatchesPerPairOracleForEveryKUpToEight) {
  Encoder enc(EncoderConfig{});
  const IntervalEstimator oracle(2, 1.96);
  for (std::size_t k = 2; k <= 8; ++k) {
    const auto states = deterministic_fleet(k, 4'000, enc, 1 << 13);
    const OdMatrix matrix = estimate_od_matrix(states, 2);
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b) {
        if (a == b) continue;
        const EstimateInterval expected =
            oracle.estimate(states[std::min(a, b)], states[std::max(a, b)]);
        const EstimateInterval& got = matrix.at(a, b);
        EXPECT_EQ(got.n_c_hat, expected.n_c_hat)
            << "k=" << k << " at(" << a << "," << b << ")";
        EXPECT_EQ(got.stddev, expected.stddev);
        EXPECT_EQ(got.lower, expected.lower);
        EXPECT_EQ(got.upper, expected.upper);
        EXPECT_EQ(got.floor_stddev, expected.floor_stddev);
        EXPECT_EQ(got.degraded, expected.degraded);
      }
    }
  }
}

// The cache-blocked decode is a DRAM-traffic optimization, never an
// approximation: every cell must match the per-pair path bit for bit,
// for every tile size and worker count, including mixed array sizes
// (unfold-aware tiling) and tile sizes that don't divide the arrays.
TEST(OdMatrix, BlockedDecodeBitIdenticalToPairwiseOnMixedSizes) {
  if (std::getenv("VLM_DECODE") != nullptr) {
    // The env override pins BOTH decodes to one path (it wins over the
    // explicit DecodeMode, like VLM_KERNELS), which would make this
    // comparison vacuous. The batch-vs-per-pair identity stays covered
    // under pinned CI jobs by JointZeroCountsBatch.* and BatchDecodeFuzz,
    // which call the primitive directly.
    GTEST_SKIP() << "VLM_DECODE is pinned; path comparison is overridden";
  }
  Encoder enc(EncoderConfig{});
  std::vector<RsuState> states;
  const std::size_t sizes[] = {1 << 12, 1 << 15, 1 << 13, 1 << 15, 1 << 14};
  for (std::size_t m : sizes) states.emplace_back(m);
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    VehicleIdentity v;
    v.id = VehicleId{common::mix64((i + 1) * 0x9E3779B97F4A7C15ull)};
    v.private_key = common::mix64((i + 1) * 0xC2B2AE3D27D4EB4Full);
    for (std::size_t r = 0; r < states.size(); ++r) {
      if (i % (r + 2) == 0) {
        states[r].record(enc.bit_index(v, RsuId{r + 1}, sizes[r]));
      }
    }
  }

  DecodeOptions pairwise_options;
  pairwise_options.mode = DecodeMode::kPairwise;
  DecodeStats pairwise_stats;
  const OdMatrix pairwise =
      estimate_od_matrix(states, 2, 1.96, pairwise_options, &pairwise_stats);

  for (const std::size_t tile_words : {std::size_t{1}, std::size_t{7},
                                       std::size_t{64}, std::size_t{0}}) {
    for (const unsigned workers : {1u, 3u, 8u}) {
      DecodeOptions options;
      options.mode = DecodeMode::kBlocked;
      options.tile_words = tile_words;
      options.workers = workers;
      DecodeStats stats;
      const OdMatrix blocked =
          estimate_od_matrix(states, 2, 1.96, options, &stats);
      for (std::size_t a = 0; a < states.size(); ++a) {
        for (std::size_t b = a + 1; b < states.size(); ++b) {
          const EstimateInterval& pe = pairwise.at(a, b);
          const EstimateInterval& be = blocked.at(a, b);
          EXPECT_EQ(pe.n_c_hat, be.n_c_hat)
              << "tile_words=" << tile_words << " workers=" << workers
              << " pair (" << a << "," << b << ")";
          EXPECT_EQ(pe.stddev, be.stddev);
          EXPECT_EQ(pe.lower, be.lower);
          EXPECT_EQ(pe.upper, be.upper);
          EXPECT_EQ(pe.floor_stddev, be.floor_stddev);
          EXPECT_EQ(pe.degraded, be.degraded);
        }
      }
      // The decode accounting is path-independent as well.
      EXPECT_EQ(stats.pairs_decoded, pairwise_stats.pairs_decoded);
      EXPECT_EQ(stats.words_scanned, pairwise_stats.words_scanned);
      EXPECT_GT(stats.tile_words, 0u);
      EXPECT_GT(stats.dram_passes_saved, 0u);
    }
  }
}

TEST(OdMatrix, DecodePathSelectionAndStats) {
  if (std::getenv("VLM_DECODE") != nullptr) {
    GTEST_SKIP() << "VLM_DECODE is pinned; mode selection is overridden";
  }
  Encoder enc(EncoderConfig{});
  const auto states = deterministic_fleet(4, 2'000, enc, 1 << 12);

  DecodeStats stats;
  (void)estimate_od_matrix(states, 2, 1.96, 1, &stats);
  // kAuto resolves to the blocked path for K >= 3.
  EXPECT_STREQ(stats.path, "blocked");
  EXPECT_GT(stats.tile_words, 0u);
  // 4 arrays each touched by 3 pairs: per-pair would load each one 3
  // times, the tile sweep once — 2 saved passes per array.
  EXPECT_EQ(stats.dram_passes_saved, 4u * 2u);
  // Serial decodes run inline; a multi-worker decode must go through
  // the persistent pool, visible in the dispatch counters.
  DecodeStats pooled_stats;
  (void)estimate_od_matrix(states, 2, 1.96, 4, &pooled_stats);
  EXPECT_GT(pooled_stats.pool_dispatches, 0u);
  EXPECT_GE(pooled_stats.pool_lifetime_dispatches,
            pooled_stats.pool_dispatches);

  DecodeOptions pairwise_options;
  pairwise_options.mode = DecodeMode::kPairwise;
  DecodeStats pairwise_stats;
  (void)estimate_od_matrix(states, 2, 1.96, pairwise_options,
                           &pairwise_stats);
  EXPECT_STREQ(pairwise_stats.path, "pairwise");
  EXPECT_EQ(pairwise_stats.tile_words, 0u);
  EXPECT_EQ(pairwise_stats.dram_passes_saved, 0u);

  // A single pair has nothing to block over: kAuto picks pairwise.
  const std::span<const RsuState> two(states.data(), 2);
  DecodeStats two_stats;
  (void)estimate_od_matrix(two, 2, 1.96, 1, &two_stats);
  EXPECT_STREQ(two_stats.path, "pairwise");
}

TEST(OdMatrix, DecodeStatsThroughputHelpers) {
  DecodeStats stats;
  stats.pairs_decoded = 100;
  stats.words_scanned = 1024 * 1024 / 8;  // 1 MiB worth of words
  stats.wall_seconds = 2.0;
  EXPECT_DOUBLE_EQ(stats.pairs_per_second(), 50.0);
  EXPECT_DOUBLE_EQ(stats.mib_per_second(), 0.5);
  DecodeStats idle;
  EXPECT_DOUBLE_EQ(idle.pairs_per_second(), 0.0);
  EXPECT_DOUBLE_EQ(idle.mib_per_second(), 0.0);
}

TEST(OdMatrix, Guards) {
  Encoder enc(EncoderConfig{});
  const auto states = deterministic_fleet(3, 1'000, enc, 1 << 12);
  const OdMatrix matrix = estimate_od_matrix(states, 2);
  EXPECT_THROW((void)matrix.at(0, 0), std::invalid_argument);
  EXPECT_THROW((void)matrix.at(0, 3), std::invalid_argument);
  std::vector<RsuState> one;
  one.emplace_back(64);
  EXPECT_THROW((void)estimate_od_matrix(one, 2), std::invalid_argument);
}

// --- Pruned decode ---

// The pruned suites compare explicit kPruned runs against an explicit
// exact reference. A VLM_DECODE pin other than "pruned" rewrites the
// kPruned mode itself, making every expectation about pruning vacuous
// or wrong; a "pruned" pin is fine (the reference decode's default
// PruneOptions keep it exact — min_volume 0 skips nothing).
bool pruned_mode_unavailable() {
  const char* pin = std::getenv("VLM_DECODE");
  return pin != nullptr && std::string_view(pin) != "pruned";
}

// A sparse deployment with exact known structure: `roads` lists
// (a, b, shared) — pair (a, b) shares `shared` identical bit indices
// (the same vehicles hashed at equal-size arrays) — and every RSU
// carries `own` local records nothing else sees. All other pairs share
// zero vehicles.
struct Road {
  std::size_t a, b, shared;
};
std::vector<RsuState> sparse_fleet(std::size_t k, std::size_t m,
                                   std::span<const Road> roads,
                                   std::size_t own, std::uint64_t seed) {
  std::vector<RsuState> states;
  for (std::size_t r = 0; r < k; ++r) states.emplace_back(m);
  std::uint64_t h = seed;
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t i = 0; i < own; ++i) {
      states[r].record(static_cast<std::size_t>(common::mix64(++h) % m));
    }
  }
  for (const Road& road : roads) {
    for (std::size_t i = 0; i < road.shared; ++i) {
      const auto index = static_cast<std::size_t>(common::mix64(++h) % m);
      states[road.a].record(index);
      states[road.b].record(index);
    }
  }
  return states;
}

void expect_cells_equal(const EstimateInterval& got,
                        const EstimateInterval& want, std::size_t a,
                        std::size_t b) {
  EXPECT_EQ(got.n_c_hat, want.n_c_hat) << "pair (" << a << "," << b << ")";
  EXPECT_EQ(got.stddev, want.stddev);
  EXPECT_EQ(got.lower, want.lower);
  EXPECT_EQ(got.upper, want.upper);
  EXPECT_EQ(got.floor_stddev, want.floor_stddev);
  EXPECT_EQ(got.degraded, want.degraded);
}

// Conservative defaults (min_volume = 0) must keep every pair: the
// pruned path then reproduces the blocked decode bit for bit on a dense
// workload — which is what makes a process-wide VLM_DECODE=pruned pin
// safe.
TEST(OdMatrixPruned, DefaultOptionsKeepEveryPairAndMatchExact) {
  if (pruned_mode_unavailable()) {
    GTEST_SKIP() << "VLM_DECODE pins a non-pruned path";
  }
  Encoder enc(EncoderConfig{});
  const auto states = deterministic_fleet(5, 8'000, enc, 1 << 13);

  DecodeOptions exact_options;
  exact_options.mode = DecodeMode::kBlocked;
  const OdMatrix exact = estimate_od_matrix(states, 2, 1.96, exact_options);

  DecodeOptions options;
  options.mode = DecodeMode::kPruned;
  DecodeStats stats;
  const OdMatrix pruned = estimate_od_matrix(states, 2, 1.96, options, &stats);

  EXPECT_STREQ(stats.path, "pruned");
  EXPECT_EQ(stats.pairs_pruned, 0u);
  EXPECT_EQ(stats.pairs_survived, 10u);
  EXPECT_EQ(stats.pairs_decoded, 10u);
  EXPECT_STREQ(stats.storage, "dense");
  EXPECT_FALSE(pruned.sparse());
  EXPECT_EQ(pruned.measured_pairs(), 10u);
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) {
      EXPECT_TRUE(pruned.measured(a, b));
      expect_cells_equal(pruned.at(a, b), exact.at(a, b), a, b);
    }
  }
}

// Exhaustive K <= 8 oracle over the survivor storage: for every K and a
// fixed road set, every measured cell must equal the exact decode's
// cell bit for bit (CSR lookup arithmetic included), every skipped pair
// must read as the shared all-zero interval in BOTH query orders, and
// the aggregate must sum exactly the survivors.
TEST(OdMatrixPruned, SparseStorageMatchesDenseOracleForEveryKUpToEight) {
  if (pruned_mode_unavailable()) {
    GTEST_SKIP() << "VLM_DECODE pins a non-pruned path";
  }
  constexpr std::size_t kM = 1 << 13;
  for (std::size_t k = 3; k <= 8; ++k) {
    // Roads touch a deliberately irregular pair set: first-to-last,
    // an interior edge, and (for larger K) a hub at RSU 2.
    std::vector<Road> roads{{0, k - 1, kM / 8}, {1, 2, kM / 8}};
    if (k >= 6) roads.push_back({2, 5, kM / 8});
    const auto states = sparse_fleet(k, kM, roads, kM / 8, 0xABCD + k);

    DecodeOptions exact_options;
    exact_options.mode = DecodeMode::kBlocked;
    const OdMatrix exact = estimate_od_matrix(states, 2, 1.96, exact_options);

    DecodeOptions options;
    options.mode = DecodeMode::kPruned;
    // Well above the sampled noise of a zero-overlap pair at m = 2^13,
    // well below the roads' kM/8 shared vehicles.
    options.prune.sample_stride = 2;
    options.prune.min_volume = 700.0;
    DecodeStats stats;
    const OdMatrix pruned =
        estimate_od_matrix(states, 2, 1.96, options, &stats);

    EXPECT_EQ(stats.pairs_survived + stats.pairs_pruned, k * (k - 1) / 2)
        << "k=" << k;
    EXPECT_EQ(pruned.measured_pairs(), stats.pairs_survived);
    double survivor_total = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        ASSERT_EQ(pruned.measured(a, b), pruned.measured(b, a));
        if (pruned.measured(a, b)) {
          expect_cells_equal(pruned.at(a, b), exact.at(a, b), a, b);
          expect_cells_equal(pruned.at(b, a), exact.at(a, b), b, a);
          survivor_total += pruned.at(a, b).n_c_hat;
        } else {
          // Skipped pairs answer with the shared zero interval.
          EXPECT_EQ(pruned.at(a, b).n_c_hat, 0.0);
          EXPECT_EQ(pruned.at(b, a).n_c_hat, 0.0);
          EXPECT_EQ(pruned.at(a, b).upper, 0.0);
        }
      }
    }
    EXPECT_DOUBLE_EQ(pruned.total_estimated_common(), survivor_total);
    // Every road pair carries kM/8 shared vehicles — far above the
    // floor, so the prune must have kept them all.
    for (const Road& road : roads) {
      EXPECT_TRUE(pruned.measured(road.a, road.b))
          << "k=" << k << " road (" << road.a << "," << road.b << ")";
    }
    // The diagonal and out-of-range guards hold on sparse storage too.
    EXPECT_THROW((void)pruned.at(0, 0), std::invalid_argument);
    EXPECT_THROW((void)pruned.at(0, k), std::invalid_argument);
  }
}

// The accuracy gate, with adversarial near-threshold pairs: overlaps
// placed just above and just below the volume floor. The prune promises
// it never skips a pair whose EXACT estimate exceeds min_volume — the
// z_prune-inflated bound must absorb the sampling noise even right at
// the threshold — and that every survivor is bit-identical to the
// exact sweep.
TEST(OdMatrixPruned, NeverDropsPairsAboveMinVolume) {
  if (pruned_mode_unavailable()) {
    GTEST_SKIP() << "VLM_DECODE pins a non-pruned path";
  }
  constexpr std::size_t kM = 1 << 14;
  constexpr double kFloor = 2000.0;
  // Overlap ladder: zero, well below, just below, just above, and far
  // above the floor (in recorded shared vehicles; the exact estimate
  // lands near each rung with hash-collision noise).
  const Road roads[] = {{0, 1, 200},  {0, 2, 1200}, {1, 2, 2600},
                        {2, 3, 4000}, {3, 4, kM / 4}};
  const auto states = sparse_fleet(6, kM, roads, kM / 8, 0xFEED);

  DecodeOptions exact_options;
  exact_options.mode = DecodeMode::kBlocked;
  const OdMatrix exact = estimate_od_matrix(states, 2, 1.96, exact_options);

  for (const std::size_t stride : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    DecodeOptions options;
    options.mode = DecodeMode::kPruned;
    options.prune.sample_stride = stride;
    options.prune.min_volume = kFloor;
    DecodeStats stats;
    const OdMatrix pruned =
        estimate_od_matrix(states, 2, 1.96, options, &stats);
    for (std::size_t a = 0; a < 6; ++a) {
      for (std::size_t b = a + 1; b < 6; ++b) {
        if (!pruned.measured(a, b)) {
          // The gate: nothing real may be dropped.
          EXPECT_LE(exact.at(a, b).n_c_hat, kFloor)
              << "stride=" << stride << " dropped pair (" << a << "," << b
              << ")";
          continue;
        }
        expect_cells_equal(pruned.at(a, b), exact.at(a, b), a, b);
      }
    }
    // stride = 1 samples every word: the sampled fraction IS the exact
    // union fraction, so at least the far-above-floor road must survive
    // and at least the zero-overlap pairs must be skipped.
    if (stride == 1) {
      EXPECT_TRUE(pruned.measured(3, 4));
      EXPECT_LT(stats.pairs_survived, 15u);
      EXPECT_GT(stats.pairs_pruned, 0u);
    }
  }
}

// Prune decisions are per-pair and worker-independent, so the pruned
// path must produce the identical survivor set AND identical cells for
// any worker count — same promise the blocked path makes.
TEST(OdMatrixPruned, ParallelBitIdenticalToSerial) {
  if (pruned_mode_unavailable()) {
    GTEST_SKIP() << "VLM_DECODE pins a non-pruned path";
  }
  constexpr std::size_t kM = 1 << 13;
  const Road roads[] = {{0, 1, kM / 8}, {3, 7, kM / 8}, {2, 9, kM / 8}};
  const auto states = sparse_fleet(10, kM, roads, kM / 8, 0xBEEF);

  DecodeOptions options;
  options.mode = DecodeMode::kPruned;
  options.prune.sample_stride = 2;
  options.prune.min_volume = 700.0;
  DecodeStats serial_stats;
  const OdMatrix serial =
      estimate_od_matrix(states, 2, 1.96, options, &serial_stats);
  options.workers = 8;
  DecodeStats parallel_stats;
  const OdMatrix parallel =
      estimate_od_matrix(states, 2, 1.96, options, &parallel_stats);

  EXPECT_EQ(parallel_stats.pairs_pruned, serial_stats.pairs_pruned);
  EXPECT_EQ(parallel_stats.pairs_survived, serial_stats.pairs_survived);
  EXPECT_EQ(parallel_stats.words_scanned, serial_stats.words_scanned);
  EXPECT_STREQ(parallel_stats.storage, serial_stats.storage);
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      ASSERT_EQ(serial.measured(a, b), parallel.measured(a, b))
          << "pair (" << a << "," << b << ")";
      if (serial.measured(a, b)) {
        expect_cells_equal(parallel.at(a, b), serial.at(a, b), a, b);
      }
    }
  }
}

// Pruned-path stats wiring: path/storage strings, the phase seconds,
// and the pairs_decoded == pairs_survived contract.
TEST(OdMatrixPruned, StatsReportPhasesAndStorage) {
  if (pruned_mode_unavailable()) {
    GTEST_SKIP() << "VLM_DECODE pins a non-pruned path";
  }
  constexpr std::size_t kM = 1 << 13;
  const Road roads[] = {{0, 1, kM / 8}};
  const auto states = sparse_fleet(8, kM, roads, kM / 8, 0xCAFE);

  DecodeOptions options;
  options.mode = DecodeMode::kPruned;
  options.prune.sample_stride = 2;
  options.prune.min_volume = 700.0;
  DecodeStats stats;
  const OdMatrix pruned = estimate_od_matrix(states, 2, 1.96, options, &stats);

  EXPECT_STREQ(stats.path, "pruned");
  EXPECT_EQ(stats.sample_stride, 2u);
  EXPECT_EQ(stats.pairs_decoded, stats.pairs_survived);
  EXPECT_EQ(stats.pairs_pruned + stats.pairs_survived, 28u);
  EXPECT_GT(stats.pairs_pruned, 0u);
  EXPECT_GE(stats.prune_seconds, 0.0);
  EXPECT_GE(stats.sweep_seconds, 0.0);
  EXPECT_GE(stats.estimate_seconds, 0.0);
  EXPECT_LE(stats.prune_seconds + stats.sweep_seconds + stats.estimate_seconds,
            stats.wall_seconds + 1e-9);
  // 28 pairs, few survivors: CSR storage pays for itself.
  if (stats.pairs_survived * 4 < 28) {
    EXPECT_STREQ(stats.storage, "sparse");
    EXPECT_TRUE(pruned.sparse());
  }
}

}  // namespace
}  // namespace vlm::core
