#include "core/od_matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/encoder.h"
#include "core/pair_simulation.h"
#include "core/scheme.h"
#include "roadnet/sioux_falls.h"

namespace vlm::core {
namespace {

// Builds K RSU states over a shared vehicle population: vehicle i visits
// RSU r iff i % (r + 2) == 0, giving exact ground-truth intersections.
std::vector<RsuState> deterministic_fleet(std::size_t k, std::uint64_t n,
                                          const Encoder& enc, std::size_t m) {
  std::vector<RsuState> states;
  for (std::size_t r = 0; r < k; ++r) states.emplace_back(m);
  for (std::uint64_t i = 0; i < n; ++i) {
    VehicleIdentity v;
    v.id = VehicleId{common::mix64(common::mix64(99) + (i + 1) * 0x9E3779B97F4A7C15ull)};
    v.private_key =
        common::mix64(common::mix64(123) + (i + 1) * 0xC2B2AE3D27D4EB4Full);
    for (std::size_t r = 0; r < k; ++r) {
      if (i % (r + 2) == 0) {
        states[r].record(enc.bit_index(v, RsuId{r + 1}, m));
      }
    }
  }
  return states;
}

TEST(OdMatrix, EstimatesEveryPairAgainstGroundTruth) {
  Encoder enc(EncoderConfig{});
  constexpr std::uint64_t kN = 60'000;
  const auto states = deterministic_fleet(4, kN, enc, 1 << 17);
  const OdMatrix matrix = estimate_od_matrix(states, 2);
  EXPECT_EQ(matrix.rsu_count(), 4u);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      // Truth: multiples of lcm(a+2, b+2) in [0, kN).
      const std::uint64_t la = a + 2, lb = b + 2;
      const std::uint64_t lcm = la * lb / std::gcd(la, lb);
      const double truth = std::floor((double(kN) - 1.0) / double(lcm)) + 1.0;
      const EstimateInterval& e = matrix.at(a, b);
      EXPECT_NEAR(e.n_c_hat, truth, std::max(4.0 * e.stddev, 0.15 * truth))
          << "pair (" << a << "," << b << ")";
    }
  }
}

TEST(OdMatrix, IsSymmetric) {
  Encoder enc(EncoderConfig{});
  const auto states = deterministic_fleet(3, 20'000, enc, 1 << 16);
  const OdMatrix matrix = estimate_od_matrix(states, 2);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(matrix.at(a, b).n_c_hat, matrix.at(b, a).n_c_hat);
    }
  }
}

TEST(OdMatrix, TotalAggregatesAllPairs) {
  Encoder enc(EncoderConfig{});
  const auto states = deterministic_fleet(3, 20'000, enc, 1 << 16);
  const OdMatrix matrix = estimate_od_matrix(states, 2);
  const double total = matrix.total_estimated_common();
  EXPECT_NEAR(total, matrix.at(0, 1).n_c_hat + matrix.at(0, 2).n_c_hat +
                         matrix.at(1, 2).n_c_hat,
              1e-9);
}

TEST(OdMatrix, HandlesMixedArraySizes) {
  // Different per-RSU sizes (the VLM case): unfolding must kick in.
  Encoder enc(EncoderConfig{});
  std::vector<RsuState> states;
  states.emplace_back(1 << 14);
  states.emplace_back(1 << 17);
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    VehicleIdentity v;
    v.id = VehicleId{common::mix64(common::mix64(5) + (i + 1) * 0x9E3779B97F4A7C15ull)};
    v.private_key = common::mix64((i + 1) * 0xC2B2AE3D27D4EB4Full);
    if (i % 10 == 0) states[0].record(enc.bit_index(v, RsuId{1}, 1 << 14));
    states[1].record(enc.bit_index(v, RsuId{2}, 1 << 17));
  }
  const OdMatrix matrix = estimate_od_matrix(states, 2);
  // All 3,000 RSU-0 vehicles also passed RSU 1.
  const EstimateInterval& e = matrix.at(0, 1);
  EXPECT_NEAR(e.n_c_hat, 3000.0, std::max(4.0 * e.stddev, 450.0));
}

TEST(OdMatrix, ParallelDecodeBitIdenticalToSerialOnSiouxFalls) {
  // 24 RSUs sized from the Sioux Falls trip table's per-node demand under
  // VLM sizing (mixed array sizes, so unfolding paths are exercised).
  // The parallel pipeline must reproduce the serial result bit for bit.
  const roadnet::TripTable trips = roadnet::sioux_falls_trip_table();
  ASSERT_EQ(trips.node_count(), 24u);
  const VlmScheme scheme(VlmSchemeConfig{.s = 2, .load_factor = 8.0});
  std::vector<RsuState> states;
  states.reserve(24);
  for (roadnet::NodeIndex n = 0; n < 24; ++n) {
    states.push_back(scheme.make_rsu_state(trips.node_demand(n) / 16.0));
  }
  // Deterministic traffic: vehicle i visits RSU r with a per-RSU
  // probability shaped by the node demand, hashed from (i, r).
  const Encoder& enc = scheme.encoder();
  const double total = trips.total_demand();
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    const VehicleIdentity v = synthetic_vehicle(7, i);
    for (std::size_t r = 0; r < 24; ++r) {
      const double p =
          4.0 * trips.node_demand(static_cast<roadnet::NodeIndex>(r)) / total;
      const std::uint64_t h =
          common::mix64((i + 1) * 0x9E3779B97F4A7C15ull ^ (r + 1));
      if (static_cast<double>(h % 10'000) < p * 10'000.0) {
        states[r].record(enc.bit_index(v, RsuId{r + 1},
                                       states[r].array_size()));
      }
    }
  }

  DecodeStats serial_stats, parallel_stats;
  const OdMatrix serial = estimate_od_matrix(states, 2, 1.96, 1,
                                             &serial_stats);
  const OdMatrix parallel = estimate_od_matrix(states, 2, 1.96, 8,
                                               &parallel_stats);
  for (std::size_t a = 0; a < 24; ++a) {
    for (std::size_t b = a + 1; b < 24; ++b) {
      const EstimateInterval& se = serial.at(a, b);
      const EstimateInterval& pe = parallel.at(a, b);
      EXPECT_EQ(se.n_c_hat, pe.n_c_hat) << "pair (" << a << "," << b << ")";
      EXPECT_EQ(se.stddev, pe.stddev);
      EXPECT_EQ(se.lower, pe.lower);
      EXPECT_EQ(se.upper, pe.upper);
      EXPECT_EQ(se.floor_stddev, pe.floor_stddev);
      EXPECT_EQ(se.degraded, pe.degraded);
    }
  }
  // Stats are deterministic too: same pairs, same words, regardless of
  // the worker count.
  EXPECT_EQ(serial_stats.pairs_decoded, 24u * 23u / 2u);
  EXPECT_EQ(parallel_stats.pairs_decoded, serial_stats.pairs_decoded);
  EXPECT_EQ(parallel_stats.words_scanned, serial_stats.words_scanned);
  EXPECT_GT(serial_stats.words_scanned, 0u);
  EXPECT_EQ(serial_stats.workers, 1u);
  EXPECT_EQ(parallel_stats.workers, 8u);
  EXPECT_GE(serial_stats.wall_seconds, 0.0);
}

TEST(OdMatrix, DecodeStatsThroughputHelpers) {
  DecodeStats stats;
  stats.pairs_decoded = 100;
  stats.words_scanned = 1024 * 1024 / 8;  // 1 MiB worth of words
  stats.wall_seconds = 2.0;
  EXPECT_DOUBLE_EQ(stats.pairs_per_second(), 50.0);
  EXPECT_DOUBLE_EQ(stats.mib_per_second(), 0.5);
  DecodeStats idle;
  EXPECT_DOUBLE_EQ(idle.pairs_per_second(), 0.0);
  EXPECT_DOUBLE_EQ(idle.mib_per_second(), 0.0);
}

TEST(OdMatrix, Guards) {
  Encoder enc(EncoderConfig{});
  const auto states = deterministic_fleet(3, 1'000, enc, 1 << 12);
  const OdMatrix matrix = estimate_od_matrix(states, 2);
  EXPECT_THROW((void)matrix.at(0, 0), std::invalid_argument);
  EXPECT_THROW((void)matrix.at(0, 3), std::invalid_argument);
  std::vector<RsuState> one;
  one.emplace_back(64);
  EXPECT_THROW((void)estimate_od_matrix(one, 2), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::core
