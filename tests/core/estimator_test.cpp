#include "core/estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/math_util.h"
#include "core/accuracy_model.h"
#include "core/pair_simulation.h"

namespace vlm::core {
namespace {

TEST(PairEstimator, RequiresSaneS) {
  EXPECT_THROW(PairEstimator(1), std::invalid_argument);
  EXPECT_NO_THROW(PairEstimator(2));
}

TEST(PairEstimator, DenominatorPositive) {
  PairEstimator est(2);
  for (std::size_t m : {4u, 64u, 1u << 20}) {
    EXPECT_GT(est.log_ratio_denominator(m), 0.0) << m;
  }
}

TEST(PairEstimator, DenominatorMatchesClosedForm) {
  PairEstimator est(5);
  const double m = 1024.0;
  const double expected =
      std::log1p(-(4.0 / 5.0) / m) - std::log1p(-1.0 / m);
  EXPECT_DOUBLE_EQ(est.log_ratio_denominator(1024), expected);
}

TEST(PairEstimator, DenominatorRequiresSBelowM) {
  PairEstimator est(8);
  EXPECT_THROW((void)est.log_ratio_denominator(8), std::invalid_argument);
  EXPECT_NO_THROW((void)est.log_ratio_denominator(16));
}

TEST(PairEstimator, HandComputedEstimate) {
  // m_x = m_y = 16: V_x = 12/16, V_y = 10/16. Disjoint bit positions so
  // the OR has 6 + 4 ones in distinct spots -> V_c = 6/16.
  RsuState x(16), y(16);
  for (std::size_t i = 0; i < 4; ++i) x.record(i);
  for (std::size_t i = 4; i < 10; ++i) y.record(i);
  PairEstimator est(2);
  const PairEstimate e = est.estimate(x, y);
  EXPECT_DOUBLE_EQ(e.v_x, 12.0 / 16.0);
  EXPECT_DOUBLE_EQ(e.v_y, 10.0 / 16.0);
  EXPECT_DOUBLE_EQ(e.v_c, 6.0 / 16.0);
  const double expected =
      (std::log(6.0 / 16.0) - std::log(12.0 / 16.0) - std::log(10.0 / 16.0)) /
      est.log_ratio_denominator(16);
  EXPECT_DOUBLE_EQ(e.raw, expected);
  EXPECT_FALSE(e.saturated);
}

TEST(PairEstimator, SymmetricInArguments) {
  RsuState small(64), big(256);
  for (std::size_t i = 0; i < 20; ++i) small.record((i * 7) % 64);
  for (std::size_t i = 0; i < 90; ++i) big.record((i * 11) % 256);
  PairEstimator est(2);
  const PairEstimate a = est.estimate(small, big);
  const PairEstimate b = est.estimate(big, small);
  EXPECT_DOUBLE_EQ(a.raw, b.raw);
  EXPECT_EQ(a.m_x, b.m_x);
  EXPECT_EQ(a.m_y, b.m_y);
}

TEST(PairEstimator, UnfoldingEntersViaCongruentPositions) {
  // Bit 3 set in an m=8 array unfolds to bits {3, 11} of m=16; a '1' at
  // bit 11 of the large array must therefore overlap, not add.
  RsuState small(8), big(16);
  small.record(3);
  big.record(11);
  PairEstimator est(2);
  const PairEstimate e = est.estimate(small, big);
  // Combined array: unfolded small sets {3, 11}; big sets {11}: 2 ones.
  EXPECT_DOUBLE_EQ(e.v_c, 14.0 / 16.0);
}

TEST(PairEstimator, ZeroOverlapGivesNearZeroEstimate) {
  // Independent (no common vehicles) simulation: estimate should hover
  // near zero (can be slightly negative before clamping).
  Encoder enc(EncoderConfig{});
  const PairStates states = simulate_pair(
      enc, PairWorkload{4000, 4000, 0}, 1 << 14, 1 << 14, /*seed=*/7);
  PairEstimator est(2);
  const PairEstimate e = est.estimate(states.x, states.y);
  EXPECT_GE(e.n_c_hat, 0.0);
  EXPECT_LT(e.n_c_hat, 400.0);  // well under 10% of point volume
}

TEST(PairEstimator, NegativeRawIsClampedButPreserved) {
  // Force v_c slightly above v_x * v_y impossible; instead craft arrays
  // where the correlation term is negative: v_c == v_x * v_y exactly
  // gives raw == 0; removing one overlap makes raw < 0.
  RsuState x(16), y(16);
  for (std::size_t i = 0; i < 8; ++i) x.record(i);       // v_x = 1/2
  for (std::size_t i = 8; i < 16; ++i) y.record(i);      // v_y = 1/2
  // OR is all ones except nothing -> v_c would be 0; instead use fewer.
  PairEstimator est(2);
  const PairEstimate e = est.estimate(x, y);
  // v_c = 0 -> saturated path kicks in; raw is strongly positive here, so
  // build the negative case differently: tiny overlap arrays.
  EXPECT_TRUE(e.saturated);

  RsuState x2(16), y2(16);
  x2.record(0);                       // v_x = 15/16
  y2.record(1);                       // v_y = 15/16
  const PairEstimate e2 = est.estimate(x2, y2);
  // v_c = 14/16 < v_x * v_y = 225/256 -> raw negative, clamped to 0.
  EXPECT_LT(e2.raw, 0.0);
  EXPECT_DOUBLE_EQ(e2.n_c_hat, 0.0);
}

TEST(PairEstimator, SaturatedArrayIsFlagged) {
  RsuState x(4), y(4);
  for (std::size_t i = 0; i < 4; ++i) {
    x.record(i);
    y.record(i);
  }
  PairEstimator est(2);
  const PairEstimate e = est.estimate(x, y);
  EXPECT_TRUE(e.saturated);
  EXPECT_TRUE(std::isfinite(e.raw));
}

TEST(PairEstimator, RecoversPlantedIntersectionEqualSizes) {
  Encoder enc(EncoderConfig{});
  PairEstimator est(2);
  const PairWorkload w{20'000, 20'000, 5'000};
  const std::size_t m = 1 << 18;  // f ~= 13
  const PairStates states = simulate_pair(enc, w, m, m, /*seed=*/11);
  const PairEstimate e = est.estimate(states.x, states.y);
  EXPECT_NEAR(e.n_c_hat, 5000.0, 5000.0 * 0.15);
}

TEST(PairEstimator, RecoversPlantedIntersectionUnequalSizes) {
  // The headline case: m_y = 16 m_x, requiring unfolding.
  Encoder enc(EncoderConfig{});
  PairEstimator est(2);
  const PairWorkload w{10'000, 160'000, 3'000};
  const PairStates states =
      simulate_pair(enc, w, 1 << 17, 1 << 21, /*seed=*/13);
  const PairEstimate e = est.estimate(states.x, states.y);
  EXPECT_NEAR(e.n_c_hat, 3000.0, 3000.0 * 0.15);
}

TEST(PairEstimator, LargerSRecoversToo) {
  // s = 10 shrinks the Eq. 5 denominator to 0.1/m_y, so single-run noise
  // is ~5x the s = 2 case; average a few runs and bound by the
  // occupancy-exact predicted spread.
  Encoder enc(EncoderConfig{10, 0x5EEDBA5EBA11AD00ull,
                            SlotSelection::kPerVehicleUniform});
  PairEstimator est(10);
  const PairWorkload w{10'000, 100'000, 4'000};
  constexpr int kTrials = 20;
  double sum = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const PairStates states =
        simulate_pair(enc, w, 1 << 17, 1 << 20, /*seed=*/17u + static_cast<std::uint64_t>(t));
    sum += est.estimate(states.x, states.y).n_c_hat;
  }
  const double mean = sum / kTrials;
  const auto pred = AccuracyModel::predict(
      PairScenario{10'000, 100'000, 4'000, 1 << 17, 1 << 20, 10});
  const double tolerance =
      4.0 * pred.stddev_ratio / std::sqrt(double(kTrials)) * 4000.0;
  EXPECT_NEAR(mean, 4000.0, tolerance);
}

}  // namespace
}  // namespace vlm::core
