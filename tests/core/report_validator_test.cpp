#include "core/report_validator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/encoder.h"
#include "core/pair_simulation.h"

namespace vlm::core {
namespace {

RsuState honest_state(std::uint64_t n, std::size_t m, std::uint64_t seed) {
  Encoder enc(EncoderConfig{});
  PairStates states = simulate_pair(enc, PairWorkload{n, 1, 0}, m, m, seed);
  return std::move(states.x);
}

TEST(ReportValidator, HonestReportsArePlausible) {
  const ReportValidator validator(6.0);
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const RsuState state = honest_state(20'000, 1 << 17, seed);
    const ReportAssessment a = validator.assess(state);
    EXPECT_EQ(a.verdict, ReportVerdict::kPlausible) << "seed " << seed;
    EXPECT_LT(std::fabs(a.z_score), 5.0) << "seed " << seed;
  }
}

TEST(ReportValidator, ExpectedZeroCountMatchesTheory) {
  EXPECT_NEAR(ReportValidator::expected_zero_count(1000, 1 << 12),
              4096.0 * std::pow(1.0 - 1.0 / 4096.0, 1000.0), 1e-6);
  EXPECT_DOUBLE_EQ(ReportValidator::expected_zero_count(0, 64), 64.0);
}

TEST(ReportValidator, VarianceMatchesOccupancyFormula) {
  // Known asymptotic: Var ~ m e^{-2c}(e^c - 1 - c) for n = c m.
  const std::size_t m = 1 << 14;
  const std::uint64_t n = m;  // c = 1
  const double predicted = ReportValidator::zero_count_variance(n, m);
  const double asymptotic =
      double(m) * std::exp(-2.0) * (std::exp(1.0) - 2.0);
  EXPECT_NEAR(predicted, asymptotic, asymptotic * 0.01);
  // And far below the naive binomial value m q (1 - q).
  const double q = std::exp(double(n) * std::log1p(-1.0 / double(m)));
  EXPECT_LT(predicted, 0.5 * double(m) * q * (1 - q));
}

TEST(ReportValidator, EmpiricalZeroCountSpreadMatchesVariance) {
  Encoder enc(EncoderConfig{});
  const std::size_t m = 1 << 14;
  const std::uint64_t n = 30'000;
  double sum = 0, sum_sq = 0;
  constexpr int kTrials = 120;
  for (int t = 0; t < kTrials; ++t) {
    const auto states = simulate_pair(
        enc, PairWorkload{n, 1, 0}, m, m, 900 + static_cast<std::uint64_t>(t));
    const double zeros = static_cast<double>(states.x.zero_count());
    sum += zeros;
    sum_sq += zeros * zeros;
  }
  const double mean = sum / kTrials;
  const double var = sum_sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, ReportValidator::expected_zero_count(n, m),
              4.0 * std::sqrt(ReportValidator::zero_count_variance(n, m) /
                              kTrials) + 2.0);
  const double predicted = ReportValidator::zero_count_variance(n, m);
  EXPECT_GT(var, predicted * 0.6);
  EXPECT_LT(var, predicted * 1.6);
}

TEST(ReportValidator, FlagsPaintedArrayAsTooFull) {
  // 2,000 "vehicles" setting 2,000 DISTINCT bits: impossible collision-
  // freedom at this density.
  RsuState state(1 << 12);
  for (std::size_t i = 0; i < 2'000; ++i) state.record(i);
  const ReportValidator validator(6.0);
  const ReportAssessment a = validator.assess(state);
  EXPECT_EQ(a.verdict, ReportVerdict::kTooFull);
  EXPECT_LT(a.z_score, -6.0);
}

TEST(ReportValidator, FlagsInflatedCounterAsTooEmpty) {
  // Bits from 1,000 vehicles but a counter claiming 8,000 (e.g. reply
  // duplication or counter tampering).
  RsuState honest = honest_state(1'000, 1 << 12, 3);
  const ReportValidator validator(6.0);
  const ReportAssessment a =
      validator.assess(8'000, honest.array_size(), honest.zero_count());
  EXPECT_EQ(a.verdict, ReportVerdict::kTooEmpty);
  EXPECT_GT(a.z_score, 6.0);
}

TEST(ReportValidator, FlagsStructuralImpossibility) {
  const ReportValidator validator(6.0);
  // 10 ones but counter 5.
  const ReportAssessment a = validator.assess(5, 1 << 10, (1 << 10) - 10);
  EXPECT_EQ(a.verdict, ReportVerdict::kInconsistent);
}

TEST(ReportValidator, EmptyIdleReportIsPlausible) {
  const ReportValidator validator(6.0);
  const ReportAssessment a = validator.assess(0, 1 << 10, 1 << 10);
  EXPECT_EQ(a.verdict, ReportVerdict::kPlausible);
}

TEST(ReportValidator, Guards) {
  EXPECT_THROW(ReportValidator(0.0), std::invalid_argument);
  const ReportValidator validator(6.0);
  EXPECT_THROW((void)validator.assess(10, 1000, 500), std::invalid_argument);
  EXPECT_THROW((void)validator.assess(10, 1 << 10, (1 << 10) + 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlm::core
