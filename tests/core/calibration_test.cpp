#include "core/calibration.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/privacy_model.h"
#include "core/sizing.h"

namespace vlm::core {
namespace {

CalibrationRequest city_request() {
  CalibrationRequest request;
  request.min_volume = 5'000;
  request.max_volume = 500'000;
  request.common_fraction = 0.1;
  request.min_privacy = 0.5;
  return request;
}

TEST(Calibration, FindsAFeasibleConfiguration) {
  const CalibrationResult result = calibrate_deployment(city_request());
  EXPECT_GE(result.s, 2u);
  EXPECT_GT(result.load_factor, 0.0);
  EXPECT_GE(result.worst_privacy, 0.5);
  EXPECT_GT(result.predicted_error, 0.0);
  EXPECT_LT(result.predicted_error, 3.0);  // d = 100 pair at tiny n_c is hard
}

TEST(Calibration, ResultHonorsThePrivacyFloorIncludingRounding) {
  const CalibrationResult result = calibrate_deployment(city_request());
  // Re-check the claimed worst privacy independently at both ends of the
  // realized-load interval for the hardest pair.
  for (double realized : {result.load_factor, 2.0 * result.load_factor}) {
    const double p = PrivacyModel::privacy_at_load_factor(
        realized, 5'000, 500'000, 0.1, result.s);
    EXPECT_GE(p, 0.5 - 1e-9) << "realized f " << realized;
  }
}

TEST(Calibration, StricterPrivacyCostsAccuracy) {
  CalibrationRequest relaxed = city_request();
  relaxed.min_privacy = 0.4;
  CalibrationRequest strict = city_request();
  strict.min_privacy = 0.72;
  const CalibrationResult loose = calibrate_deployment(relaxed);
  const CalibrationResult tight = calibrate_deployment(strict);
  EXPECT_GE(tight.predicted_error, loose.predicted_error);
  EXPECT_GE(tight.worst_privacy, 0.72);
}

TEST(Calibration, HighPrivacyFloorsPreferLargerS) {
  // Near the optimum the privacy ceiling grows with s (Fig. 2), so a
  // floor unreachable at s = 2 forces a larger s.
  CalibrationRequest request = city_request();
  request.min_privacy = 0.72;
  const CalibrationResult result = calibrate_deployment(request);
  EXPECT_GT(result.s, 2u);
}

TEST(Calibration, ImpossibleFloorThrows) {
  CalibrationRequest request = city_request();
  request.min_privacy = 0.99;
  EXPECT_THROW((void)calibrate_deployment(request), std::invalid_argument);
}

TEST(Calibration, UniformProfileAllowsHigherLoadThanSkewedOne) {
  // With no volume skew the only constraint is the equal-pair curve;
  // with heavy skew the calibrator must also satisfy the extreme pairs.
  CalibrationRequest uniform = city_request();
  uniform.max_volume = uniform.min_volume;
  const CalibrationResult u = calibrate_deployment(uniform);
  const CalibrationResult skewed = calibrate_deployment(city_request());
  // Both feasible; the skewed profile cannot do better than the uniform
  // one at the same floor (it has a superset of constraints) unless the
  // unbalanced-pair privacy bonus dominates — accept either ordering of
  // f but require both to meet the floor.
  EXPECT_GE(u.worst_privacy, 0.5);
  EXPECT_GE(skewed.worst_privacy, 0.5);
}

TEST(Calibration, Guards) {
  CalibrationRequest request = city_request();
  request.min_volume = 0.0;
  EXPECT_THROW((void)calibrate_deployment(request), std::invalid_argument);
  request = city_request();
  request.min_privacy = 1.5;
  EXPECT_THROW((void)calibrate_deployment(request), std::invalid_argument);
  request = city_request();
  request.s_candidates.clear();
  EXPECT_THROW((void)calibrate_deployment(request), std::invalid_argument);
  request = city_request();
  request.f_lo = 8.0;
  request.f_hi = 4.0;
  EXPECT_THROW((void)calibrate_deployment(request), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::core
