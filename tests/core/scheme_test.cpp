#include "core/scheme.h"

#include <gtest/gtest.h>

#include "core/pair_simulation.h"

namespace vlm::core {
namespace {

TEST(VlmScheme, SizesRsuStatesFromHistory) {
  VlmScheme scheme(VlmSchemeConfig{.s = 2, .load_factor = 8.0});
  EXPECT_EQ(scheme.make_rsu_state(451'000).array_size(), std::size_t{1} << 22);
  EXPECT_EQ(scheme.make_rsu_state(28'000).array_size(), std::size_t{1} << 18);
}

TEST(FbmScheme, FixedSizeRegardlessOfHistory) {
  FbmScheme scheme(FbmSchemeConfig{.s = 2, .array_size = 1 << 17});
  EXPECT_EQ(scheme.make_rsu_state(100).array_size(), std::size_t{1} << 17);
  EXPECT_EQ(scheme.make_rsu_state(1e6).array_size(), std::size_t{1} << 17);
}

TEST(Schemes, IdenticalWhenVolumesAreEqual) {
  // The paper: "[FBM] is just a special case of our novel scheme". With
  // equal histories the two schemes produce identical arrays (same salt
  // seed => same encoder) and identical estimates.
  const std::uint64_t n = 20'000;
  VlmScheme vlm(VlmSchemeConfig{.s = 2, .load_factor = 8.0});
  FbmScheme fbm(FbmSchemeConfig{
      .s = 2, .array_size = vlm.sizing().array_size_for(double(n))});

  const PairWorkload w{n, n, 4'000};
  const std::size_t m = vlm.sizing().array_size_for(double(n));
  const PairStates sv = simulate_pair(vlm.encoder(), w, m, m, 5);
  const PairStates sf = simulate_pair(fbm.encoder(), w, m, m, 5);
  EXPECT_EQ(sv.x.bits(), sf.x.bits());
  EXPECT_EQ(sv.y.bits(), sf.y.bits());
  EXPECT_DOUBLE_EQ(vlm.estimator().estimate(sv.x, sv.y).raw,
                   fbm.estimator().estimate(sf.x, sf.y).raw);
}

TEST(Schemes, EndToEndThroughFacade) {
  VlmScheme scheme(VlmSchemeConfig{.s = 2, .load_factor = 8.0});
  RsuState x = scheme.make_rsu_state(10'000);
  RsuState y = scheme.make_rsu_state(100'000);

  const RsuId rx{1}, ry{2};
  // 2,000 common vehicles; 8,000 x-only; 98,000 y-only.
  for (std::uint64_t i = 0; i < 108'000; ++i) {
    VehicleIdentity v{VehicleId{common::mix64(i + 1)},
                      common::mix64(i ^ 0xABCDEFull)};
    const bool hits_x = i < 10'000;
    const bool hits_y = i < 2'000 || i >= 10'000;
    if (hits_x) x.record(scheme.encoder().bit_index(v, rx, x.array_size()));
    if (hits_y) y.record(scheme.encoder().bit_index(v, ry, y.array_size()));
  }
  const PairEstimate e = scheme.estimator().estimate(x, y);
  EXPECT_NEAR(e.n_c_hat, 2000.0, 2000.0 * 0.2);
}

}  // namespace
}  // namespace vlm::core
