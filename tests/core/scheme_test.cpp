#include "core/scheme.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/pair_simulation.h"

namespace vlm::core {
namespace {

TEST(VlmScheme, SizesRsuStatesFromHistory) {
  VlmScheme scheme(VlmSchemeConfig{.s = 2, .load_factor = 8.0});
  EXPECT_EQ(scheme.make_rsu_state(451'000).array_size(), std::size_t{1} << 22);
  EXPECT_EQ(scheme.make_rsu_state(28'000).array_size(), std::size_t{1} << 18);
}

TEST(FbmScheme, FixedSizeRegardlessOfHistory) {
  FbmScheme scheme(FbmSchemeConfig{.s = 2, .array_size = 1 << 17});
  EXPECT_EQ(scheme.make_rsu_state(100).array_size(), std::size_t{1} << 17);
  EXPECT_EQ(scheme.make_rsu_state(1e6).array_size(), std::size_t{1} << 17);
}

TEST(Schemes, IdenticalWhenVolumesAreEqual) {
  // The paper: "[FBM] is just a special case of our novel scheme". With
  // equal histories the two schemes produce identical arrays (same salt
  // seed => same encoder) and identical estimates.
  const std::uint64_t n = 20'000;
  VlmScheme vlm(VlmSchemeConfig{.s = 2, .load_factor = 8.0});
  FbmScheme fbm(FbmSchemeConfig{
      .s = 2, .array_size = vlm.sizing().array_size_for(double(n))});

  const PairWorkload w{n, n, 4'000};
  const std::size_t m = vlm.sizing().array_size_for(double(n));
  const PairStates sv = simulate_pair(vlm.encoder(), w, m, m, 5);
  const PairStates sf = simulate_pair(fbm.encoder(), w, m, m, 5);
  EXPECT_EQ(sv.x.bits(), sf.x.bits());
  EXPECT_EQ(sv.y.bits(), sf.y.bits());
  EXPECT_DOUBLE_EQ(vlm.estimator().estimate(sv.x, sv.y).raw,
                   fbm.estimator().estimate(sf.x, sf.y).raw);
}

TEST(Schemes, EndToEndThroughFacade) {
  VlmScheme scheme(VlmSchemeConfig{.s = 2, .load_factor = 8.0});
  RsuState x = scheme.make_rsu_state(10'000);
  RsuState y = scheme.make_rsu_state(100'000);

  const RsuId rx{1}, ry{2};
  // 2,000 common vehicles; 8,000 x-only; 98,000 y-only.
  for (std::uint64_t i = 0; i < 108'000; ++i) {
    VehicleIdentity v{VehicleId{common::mix64(i + 1)},
                      common::mix64(i ^ 0xABCDEFull)};
    const bool hits_x = i < 10'000;
    const bool hits_y = i < 2'000 || i >= 10'000;
    if (hits_x) x.record(scheme.encoder().bit_index(v, rx, x.array_size()));
    if (hits_y) y.record(scheme.encoder().bit_index(v, ry, y.array_size()));
  }
  const PairEstimate e = scheme.estimator().estimate(x, y);
  EXPECT_NEAR(e.n_c_hat, 2000.0, 2000.0 * 0.2);
}

// --- Polymorphic interface ---

TEST(SchemeInterface, DispatchesThroughBasePointer) {
  const SchemePtr vlm = make_vlm_scheme({.s = 2, .load_factor = 8.0});
  const SchemePtr fbm = make_fbm_scheme({.s = 2, .array_size = 1 << 17});
  ASSERT_NE(vlm, nullptr);
  ASSERT_NE(fbm, nullptr);
  EXPECT_EQ(vlm->name(), "vlm");
  EXPECT_EQ(fbm->name(), "fbm");
  // VLM sizes from history; FBM ignores it. Same call, different policy.
  EXPECT_NE(vlm->array_size_for(1'000), vlm->array_size_for(400'000));
  EXPECT_EQ(fbm->array_size_for(1'000), fbm->array_size_for(400'000));
  EXPECT_EQ(fbm->array_size_for(1'000), std::size_t{1} << 17);
  EXPECT_EQ(vlm->s(), 2u);
  EXPECT_EQ(fbm->s(), 2u);
}

TEST(SchemeInterface, SchemesShareOneEncoderInstance) {
  // The encoder returned by the scheme must be stable (vehicle and server
  // sides hold references to it for the lifetime of a deployment).
  const SchemePtr scheme = make_vlm_scheme();
  const Encoder& a = scheme->encoder();
  const Encoder& b = scheme->encoder();
  EXPECT_EQ(&a, &b);
}

TEST(SchemeFactory, MakesSchemesByName) {
  SchemeOptions options;
  options.s = 3;
  options.load_factor = 4.0;
  options.array_size = 1 << 15;
  const SchemePtr vlm = make_scheme("vlm", options);
  const SchemePtr fbm = make_scheme("fbm", options);
  EXPECT_EQ(vlm->name(), "vlm");
  EXPECT_EQ(fbm->name(), "fbm");
  EXPECT_EQ(vlm->s(), 3u);
  EXPECT_EQ(fbm->s(), 3u);
  EXPECT_EQ(fbm->array_size_for(1e6), std::size_t{1} << 15);
  // load_factor 4 at n=16'384 -> 65'536 bits exactly.
  EXPECT_EQ(vlm->array_size_for(16'384), std::size_t{1} << 16);
}

TEST(SchemeFactory, RejectsUnknownName) {
  EXPECT_THROW((void)make_scheme("hll"), std::invalid_argument);
  try {
    (void)make_scheme("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("vlm"), std::string::npos);
  }
}

TEST(SchemeInterface, SimulatesPairsThroughScheme) {
  // The scheme-driven simulate_pair overload sizes each array by the
  // scheme's own policy and must agree with the explicit-size call.
  const SchemePtr scheme = make_vlm_scheme({.s = 2, .load_factor = 8.0});
  const PairWorkload w{10'000, 80'000, 2'000};
  const PairStates via_scheme = simulate_pair(*scheme, w, 11);
  EXPECT_EQ(via_scheme.x.array_size(), scheme->array_size_for(10'000));
  EXPECT_EQ(via_scheme.y.array_size(), scheme->array_size_for(80'000));
  const PairStates explicit_sizes = simulate_pair(
      scheme->encoder(), w, scheme->array_size_for(10'000),
      scheme->array_size_for(80'000), 11);
  EXPECT_EQ(via_scheme.x.bits(), explicit_sizes.x.bits());
  EXPECT_EQ(via_scheme.y.bits(), explicit_sizes.y.bits());
}

TEST(SchemeInterface, EstimatesThroughBaseMatchConcrete) {
  // A caller holding only Scheme& must reproduce the concrete scheme's
  // estimate exactly — the abstraction adds no numeric drift.
  const VlmScheme concrete(VlmSchemeConfig{.s = 2, .load_factor = 8.0});
  const SchemePtr base = make_vlm_scheme({.s = 2, .load_factor = 8.0});
  const PairWorkload w{20'000, 20'000, 4'000};
  const std::size_t m = concrete.array_size_for(20'000);
  const PairStates sc = simulate_pair(concrete.encoder(), w, m, m, 5);
  const PairStates sb = simulate_pair(base->encoder(), w, m, m, 5);
  EXPECT_EQ(sc.x.bits(), sb.x.bits());
  EXPECT_DOUBLE_EQ(concrete.estimator().estimate(sc.x, sc.y).raw,
                   base->estimator().estimate(sb.x, sb.y).raw);
}

}  // namespace
}  // namespace vlm::core
