#include "core/pair_simulation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/accuracy_model.h"

namespace vlm::core {
namespace {

TEST(PairSimulation, CountersMatchWorkload) {
  Encoder enc(EncoderConfig{});
  const PairWorkload w{1000, 2500, 300};
  const PairStates states = simulate_pair(enc, w, 1 << 12, 1 << 13, 1);
  EXPECT_EQ(states.x.counter(), 1000u);
  EXPECT_EQ(states.y.counter(), 2500u);
  EXPECT_EQ(states.x.array_size(), std::size_t{1} << 12);
  EXPECT_EQ(states.y.array_size(), std::size_t{1} << 13);
}

TEST(PairSimulation, BatchedMaskedKeysMatchPerVehicleHelper) {
  // The batch-ingest materialize stage derives masked keys through the
  // kernel-batched helper; it must reproduce synthetic_vehicle exactly —
  // including at odd block lengths and non-zero starting indices.
  for (const std::uint64_t first : {std::uint64_t{0}, std::uint64_t{1},
                                    std::uint64_t{12'345}}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{7}, std::size_t{1000}}) {
      std::vector<std::uint64_t> got(n, 0xDEAD);
      synthetic_masked_keys(99, first, n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i], synthetic_vehicle(99, first + i).masked_key())
            << "first=" << first << " i=" << i;
      }
    }
  }
}

TEST(PairSimulation, DeterministicPerSeed) {
  Encoder enc(EncoderConfig{});
  const PairWorkload w{500, 500, 100};
  const PairStates a = simulate_pair(enc, w, 1 << 10, 1 << 10, 42);
  const PairStates b = simulate_pair(enc, w, 1 << 10, 1 << 10, 42);
  EXPECT_EQ(a.x.bits(), b.x.bits());
  EXPECT_EQ(a.y.bits(), b.y.bits());
}

TEST(PairSimulation, DifferentSeedsDiffer) {
  Encoder enc(EncoderConfig{});
  const PairWorkload w{500, 500, 100};
  const PairStates a = simulate_pair(enc, w, 1 << 10, 1 << 10, 42);
  const PairStates b = simulate_pair(enc, w, 1 << 10, 1 << 10, 43);
  EXPECT_FALSE(a.x.bits() == b.x.bits());
}

TEST(PairSimulation, RejectsInconsistentWorkload) {
  Encoder enc(EncoderConfig{});
  EXPECT_THROW(
      (void)simulate_pair(enc, PairWorkload{100, 100, 101}, 1 << 8, 1 << 8, 1),
      std::invalid_argument);
  EXPECT_THROW((void)simulate_pair(enc, PairWorkload{10, 10, 1}, 1 << 8,
                                   1 << 8, 1, RsuId{5}, RsuId{5}),
               std::invalid_argument);
}

TEST(PairSimulation, ZeroFractionMatchesQPoint) {
  // After n uniform insertions, E[V] = (1 - 1/m)^n (Eq. 10). Check the
  // realized fraction against the analytic value within 4 binomial sigmas.
  Encoder enc(EncoderConfig{});
  const std::size_t m = 1 << 14;
  const std::uint64_t n = 40'000;
  const PairStates states =
      simulate_pair(enc, PairWorkload{n, 1, 0}, m, 1 << 14, 99);
  const double q = AccuracyModel::q_point(static_cast<double>(n), m);
  const double sigma = std::sqrt(q * (1 - q) / static_cast<double>(m));
  EXPECT_NEAR(states.x.zero_fraction(), q, 4 * sigma);
}

TEST(PairSimulation, CombinedZeroFractionMatchesEq9) {
  // The heart of the decoding math: the OR of the unfolded arrays has
  // zero-probability q(n_c) per Eq. 9. Protocol-exact simulation must
  // land within binomial noise of it.
  Encoder enc(EncoderConfig{});
  PairScenario sc;
  sc.n_x = 20'000;
  sc.n_y = 100'000;
  sc.n_c = 5'000;
  sc.m_x = 1 << 17;
  sc.m_y = 1 << 19;
  sc.s = 2;
  const PairStates states = simulate_pair(
      enc, PairWorkload{20'000, 100'000, 5'000}, sc.m_x, sc.m_y, 7);
  const common::BitArray combined =
      states.x.bits().unfolded(sc.m_y) | states.y.bits();
  const double q = AccuracyModel::q_combined(sc);
  const double sigma = std::sqrt(q * (1 - q) / static_cast<double>(sc.m_y));
  // The combined bits are positively correlated across positions, so allow
  // a generous 6-sigma band.
  EXPECT_NEAR(combined.zero_fraction(), q, 6 * sigma);
}

TEST(PairSimulation, CommonVehiclesCreateCorrelation) {
  // With common vehicles, V_c must exceed the independent product
  // V_x * V_y on average; without them it must not (systematically).
  Encoder enc(EncoderConfig{});
  const std::size_t m = 1 << 14;
  const PairStates with = simulate_pair(
      enc, PairWorkload{10'000, 10'000, 5'000}, m, m, 3);
  const common::BitArray combined_with = with.x.bits() | with.y.bits();
  const double vc_with = combined_with.zero_fraction();
  const double indep_with =
      with.x.zero_fraction() * with.y.zero_fraction();
  EXPECT_GT(vc_with, indep_with * 1.05);
}

}  // namespace
}  // namespace vlm::core
