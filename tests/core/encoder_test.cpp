#include "core/encoder.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "common/hashing.h"
#include "stats/chi_square.h"

namespace vlm::core {
namespace {

VehicleIdentity vehicle(std::uint64_t i) {
  return VehicleIdentity{VehicleId{common::mix64(i * 2 + 1)},
                         common::mix64(i * 2 + 0x1234)};
}

TEST(Encoder, RejectsDegenerateS) {
  EXPECT_THROW(Encoder(EncoderConfig{1, 0, SlotSelection::kPerVehicleUniform}),
               std::invalid_argument);
}

TEST(Encoder, BitIndexIsDeterministicPerVehicleRsuPair) {
  Encoder enc(EncoderConfig{});
  const VehicleIdentity v = vehicle(1);
  const RsuId r{42};
  EXPECT_EQ(enc.bit_index(v, r, 1024), enc.bit_index(v, r, 1024));
}

TEST(Encoder, BitIndexRequiresPowerOfTwoArray) {
  Encoder enc(EncoderConfig{});
  EXPECT_THROW((void)enc.bit_index(vehicle(1), RsuId{1}, 1000),
               std::invalid_argument);
}

TEST(Encoder, FoldingIsCongruent) {
  // The same vehicle answering RSUs with the SAME slot choice must report
  // congruent indices: b mod m_small == (b mod m_large) mod m_small.
  // We verify via logical_bit directly, which is slot-stable.
  Encoder enc(EncoderConfig{4, 7, SlotSelection::kPerVehicleUniform});
  const VehicleIdentity v = vehicle(3);
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    const std::uint64_t b = enc.logical_bit(v, slot);
    EXPECT_EQ((b % 4096) % 256, b % 256);
  }
}

TEST(Encoder, SlotDependsOnVehicleInDefaultMode) {
  Encoder enc(EncoderConfig{8, 1, SlotSelection::kPerVehicleUniform});
  const RsuId r{5};
  std::set<std::uint32_t> slots;
  for (std::uint64_t i = 0; i < 64; ++i) {
    slots.insert(enc.slot_for(vehicle(i), r));
  }
  EXPECT_GT(slots.size(), 1u) << "slots must vary across vehicles";
}

TEST(Encoder, SlotIgnoresVehicleInLiteralMode) {
  Encoder enc(EncoderConfig{8, 1, SlotSelection::kLiteralPerRsu});
  const RsuId r{5};
  const std::uint32_t first = enc.slot_for(vehicle(0), r);
  for (std::uint64_t i = 1; i < 64; ++i) {
    EXPECT_EQ(enc.slot_for(vehicle(i), r), first);
  }
}

TEST(Encoder, SlotUniformAcrossVehicles) {
  constexpr std::uint32_t kS = 5;
  Encoder enc(EncoderConfig{kS, 3, SlotSelection::kPerVehicleUniform});
  std::vector<std::uint64_t> counts(kS, 0);
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    ++counts[enc.slot_for(vehicle(i), RsuId{77})];
  }
  EXPECT_LT(vlm::stats::chi_square_uniform(counts),
            vlm::stats::chi_square_critical_999(kS - 1));
}

TEST(Encoder, SameSlotProbabilityAcrossTwoRsusIsOneOverS) {
  // The core assumption of Eq. 6: P[slot_x == slot_y] = 1/s per vehicle.
  constexpr std::uint32_t kS = 5;
  Encoder enc(EncoderConfig{kS, 3, SlotSelection::kPerVehicleUniform});
  const RsuId rx{101}, ry{202};
  std::uint64_t same = 0;
  constexpr std::uint64_t kVehicles = 100'000;
  for (std::uint64_t i = 0; i < kVehicles; ++i) {
    const VehicleIdentity v = vehicle(i);
    if (enc.slot_for(v, rx) == enc.slot_for(v, ry)) ++same;
  }
  EXPECT_NEAR(static_cast<double>(same) / kVehicles, 1.0 / kS, 0.005);
}

TEST(Encoder, BitIndicesUniformOverArray) {
  constexpr std::size_t kM = 128;
  Encoder enc(EncoderConfig{});
  std::vector<std::uint64_t> counts(kM, 0);
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    ++counts[enc.bit_index(vehicle(i), RsuId{9}, kM)];
  }
  EXPECT_LT(vlm::stats::chi_square_uniform(counts),
            vlm::stats::chi_square_critical_999(kM - 1));
}

TEST(Encoder, ReportedIndexNeverRevealsIdWithoutKey) {
  // Two identities sharing the same vehicle id but different private keys
  // must produce unrelated replies (the key is what de-identifies).
  Encoder enc(EncoderConfig{});
  VehicleIdentity a{VehicleId{1234}, 1};
  VehicleIdentity b{VehicleId{1234}, 2};
  int same = 0;
  for (std::uint64_t r = 0; r < 256; ++r) {
    if (enc.bit_index(a, RsuId{r}, 1 << 20) ==
        enc.bit_index(b, RsuId{r}, 1 << 20)) {
      ++same;
    }
  }
  EXPECT_LE(same, 2) << "same-id different-key vehicles look identical";
}

TEST(Encoder, DifferentSaltSeedsChangeTheCode) {
  const VehicleIdentity v = vehicle(7);
  Encoder enc_a(EncoderConfig{2, 111, SlotSelection::kPerVehicleUniform});
  Encoder enc_b(EncoderConfig{2, 222, SlotSelection::kPerVehicleUniform});
  int same = 0;
  for (std::uint64_t r = 0; r < 64; ++r) {
    if (enc_a.bit_index(v, RsuId{r}, 1 << 16) ==
        enc_b.bit_index(v, RsuId{r}, 1 << 16)) {
      ++same;
    }
  }
  EXPECT_LE(same, 2);
}

TEST(Encoder, LogicalBitSlotBounds) {
  Encoder enc(EncoderConfig{3, 1, SlotSelection::kPerVehicleUniform});
  EXPECT_THROW((void)enc.logical_bit(vehicle(1), 3), std::invalid_argument);
}

// --- EncodeTarget + batch encode (the hoisted hot path) ---

TEST(EncodeTarget, ValidatesPowerOfTwoOnce) {
  EXPECT_THROW(EncodeTarget(1000), std::invalid_argument);
  EXPECT_THROW(EncodeTarget(0), std::invalid_argument);
  const EncodeTarget target(1024);
  EXPECT_EQ(target.array_size(), 1024u);
  EXPECT_EQ(target.mask(), 1023u);
}

TEST(EncodeTarget, HotOverloadMatchesValidatingOverload) {
  Encoder enc(EncoderConfig{});
  const EncodeTarget target(1 << 14);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const VehicleIdentity v = vehicle(i);
    const RsuId r{i % 7 + 1};
    EXPECT_EQ(enc.bit_index(v, r, target), enc.bit_index(v, r, 1 << 14));
  }
}

TEST(Encoder, BatchBitIndicesMatchPerCallLoop) {
  for (const SlotSelection mode :
       {SlotSelection::kPerVehicleUniform, SlotSelection::kLiteralPerRsu}) {
    Encoder enc(EncoderConfig{4, 7, mode});
    const EncodeTarget target(1 << 12);
    const RsuId r{42};
    std::vector<VehicleIdentity> vehicles;
    for (std::uint64_t i = 0; i < 500; ++i) vehicles.push_back(vehicle(i));
    std::vector<std::size_t> batch(vehicles.size());
    enc.bit_indices(vehicles, r, target, batch);
    for (std::size_t i = 0; i < vehicles.size(); ++i) {
      EXPECT_EQ(batch[i], enc.bit_index(vehicles[i], r, target))
          << "mode " << static_cast<int>(mode) << " vehicle " << i;
    }
  }
}

TEST(Encoder, BatchBitIndicesEmptyIsNoOp) {
  Encoder enc(EncoderConfig{});
  const EncodeTarget target(256);
  enc.bit_indices(std::span<const VehicleIdentity>{}, RsuId{1}, target, {});
  enc.bit_indices(std::span<const std::uint64_t>{}, RsuId{1}, target, {});
}

TEST(Encoder, MaskedKeyBatchMatchesBitIndex) {
  for (const SlotSelection mode :
       {SlotSelection::kPerVehicleUniform, SlotSelection::kLiteralPerRsu}) {
    Encoder enc(EncoderConfig{4, 7, mode});
    const EncodeTarget target(1u << 14);
    const RsuId r{7};
    std::vector<std::uint64_t> keys;
    std::vector<VehicleIdentity> vehicles;
    for (std::uint64_t i = 0; i < 500; ++i) {
      vehicles.push_back(vehicle(i));
      keys.push_back(vehicles.back().masked_key());
    }
    std::vector<std::size_t> batch(keys.size());
    enc.bit_indices(std::span<const std::uint64_t>(keys), r, target, batch);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(batch[i], enc.bit_index(vehicles[i], r, target))
          << "mode " << static_cast<int>(mode) << " vehicle " << i;
    }
  }
}

}  // namespace
}  // namespace vlm::core
