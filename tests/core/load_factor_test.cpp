#include "core/load_factor.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/privacy_model.h"

namespace vlm::core {
namespace {

TEST(LoadFactorPlan, RecoversPaperOptimumForS5) {
  // Fig. 2: f* ~ 3 with p* ~ 0.75 for s = 5, equal volumes, n_c = 0.1 n.
  const LoadFactorPlan plan = plan_load_factor(5, 10'000, 1.0, 0.1, 0.5);
  EXPECT_NEAR(plan.optimal_f, 3.0, 1.0);
  EXPECT_NEAR(plan.optimal_p, 0.75, 0.02);
}

TEST(LoadFactorPlan, RecoversPaperPrivacyCapForS2) {
  // Paper: "m should be no larger than 15 n_min to guarantee a minimum
  // privacy of 0.5 when s = 2".
  const LoadFactorPlan plan = plan_load_factor(2, 10'000, 1.0, 0.1, 0.5);
  EXPECT_NEAR(plan.max_f_for_min_privacy, 14.0, 2.5);
}

TEST(LoadFactorPlan, CapIsConsistentWithTheModel) {
  const LoadFactorPlan plan = plan_load_factor(2, 10'000, 1.0, 0.1, 0.6);
  const double p_at_cap = PrivacyModel::privacy_at_load_factor(
      plan.max_f_for_min_privacy, 10'000, 10'000, 0.1, 2);
  EXPECT_NEAR(p_at_cap, 0.6, 0.01);
  // Slightly beyond the cap the privacy drops below the requirement.
  const double p_beyond = PrivacyModel::privacy_at_load_factor(
      plan.max_f_for_min_privacy * 1.2, 10'000, 10'000, 0.1, 2);
  EXPECT_LT(p_beyond, 0.6);
}

TEST(LoadFactorPlan, UnbalancedPairsGetBetterOptima) {
  const LoadFactorPlan equal = plan_load_factor(5, 10'000, 1.0, 0.1, 0.5);
  const LoadFactorPlan skewed = plan_load_factor(5, 10'000, 10.0, 0.1, 0.5);
  EXPECT_GT(skewed.optimal_p, equal.optimal_p);
}

TEST(LoadFactorPlan, WholeRangeAboveThresholdReturnsUpperBound) {
  // With a very low privacy bar, even f_hi qualifies.
  const LoadFactorPlan plan =
      plan_load_factor(5, 10'000, 1.0, 0.1, 0.05, 0.25, 32.0);
  EXPECT_DOUBLE_EQ(plan.max_f_for_min_privacy, 32.0);
}

TEST(LoadFactorPlan, UnattainablePrivacyThrows) {
  EXPECT_THROW((void)plan_load_factor(2, 10'000, 1.0, 0.1, 0.99),
               std::invalid_argument);
}

TEST(LoadFactorPlan, Guards) {
  EXPECT_THROW((void)plan_load_factor(2, 10'000, 1.0, 0.1, 1.5),
               std::invalid_argument);
  EXPECT_THROW((void)plan_load_factor(2, 10'000, 1.0, 0.1, 0.5, 8.0, 4.0),
               std::invalid_argument);
  EXPECT_THROW((void)plan_load_factor(2, 10'000, 0.5, 0.1, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlm::core
