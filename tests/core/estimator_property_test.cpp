// Parameterized property sweep of the end-to-end estimator: across a
// lattice of (s, volume ratio d, load factor f, overlap fraction c), the
// Monte-Carlo mean of n̂_c/n_c must sit near 1 within the model-predicted
// standard error, and the estimate must respond monotonically to the
// true overlap.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/accuracy_model.h"
#include "core/estimator.h"
#include "core/pair_simulation.h"
#include "core/sizing.h"
#include "stats/descriptive.h"

namespace vlm::core {
namespace {

struct LatticePoint {
  std::uint32_t s;
  double d;       // n_y / n_x
  double f;       // VLM load factor
  double c_frac;  // n_c / n_x
};

std::string point_name(const ::testing::TestParamInfo<LatticePoint>& info) {
  const LatticePoint& p = info.param;
  return "s" + std::to_string(p.s) + "_d" + std::to_string(int(p.d)) + "_f" +
         std::to_string(int(p.f)) + "_c" +
         std::to_string(int(p.c_frac * 100));
}

class EstimatorLattice : public ::testing::TestWithParam<LatticePoint> {};

TEST_P(EstimatorLattice, UnbiasedWithinModelSpread) {
  const LatticePoint p = GetParam();
  const std::uint64_t n_x = 8'000;
  const auto n_y = static_cast<std::uint64_t>(p.d * double(n_x));
  const auto n_c = static_cast<std::uint64_t>(p.c_frac * double(n_x));
  const VlmSizingPolicy sizing(p.f);
  const std::size_t m_x = sizing.array_size_for(double(n_x));
  const std::size_t m_y = sizing.array_size_for(double(n_y));

  Encoder enc(EncoderConfig{p.s});
  PairEstimator est(p.s);
  vlm::stats::RunningStats ratios;
  constexpr int kTrials = 24;
  for (int t = 0; t < kTrials; ++t) {
    const auto states =
        simulate_pair(enc, PairWorkload{n_x, n_y, n_c}, m_x, m_y,
                      777 + 31 * static_cast<std::uint64_t>(t));
    ratios.push(est.estimate(states.x, states.y).n_c_hat / double(n_c));
  }
  const auto pred = AccuracyModel::predict(PairScenario{
      double(n_x), double(n_y), double(n_c), m_x, m_y, p.s});
  const double se = pred.stddev_ratio / std::sqrt(double(kTrials));
  EXPECT_NEAR(ratios.mean(), 1.0, 4.5 * se + 0.01)
      << "predicted per-run stddev " << pred.stddev_ratio;
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, EstimatorLattice,
    ::testing::Values(LatticePoint{2, 1.0, 8.0, 0.2},
                      LatticePoint{2, 1.0, 2.0, 0.2},
                      LatticePoint{2, 10.0, 8.0, 0.2},
                      LatticePoint{2, 50.0, 8.0, 0.2},
                      LatticePoint{2, 10.0, 8.0, 0.05},
                      LatticePoint{2, 10.0, 8.0, 0.5},
                      LatticePoint{5, 1.0, 8.0, 0.2},
                      LatticePoint{5, 10.0, 8.0, 0.2},
                      LatticePoint{10, 1.0, 8.0, 0.5},
                      LatticePoint{2, 1.0, 15.0, 0.2}),
    point_name);

TEST(EstimatorMonotonicity, MeanEstimateGrowsWithTrueOverlap) {
  Encoder enc(EncoderConfig{});
  PairEstimator est(2);
  const std::uint64_t n_x = 10'000, n_y = 40'000;
  const std::size_t m_x = 1 << 17, m_y = 1 << 19;
  double previous_mean = -1.0;
  for (std::uint64_t n_c : {500u, 2000u, 5000u, 9000u}) {
    vlm::stats::RunningStats estimates;
    for (int t = 0; t < 16; ++t) {
      const auto states =
          simulate_pair(enc, PairWorkload{n_x, n_y, n_c}, m_x, m_y,
                        990 + 17 * static_cast<std::uint64_t>(t));
      estimates.push(est.estimate(states.x, states.y).n_c_hat);
    }
    EXPECT_GT(estimates.mean(), previous_mean)
        << "mean estimate must grow with n_c = " << n_c;
    previous_mean = estimates.mean();
  }
}

TEST(EstimatorScaleInvariance, LoadPreservingRescaleKeepsRelativeError) {
  // Doubling every count and every array size leaves the relative error
  // distribution roughly unchanged (same load factors); sanity-check the
  // means are both near 1 and within each other's noise.
  Encoder enc(EncoderConfig{});
  PairEstimator est(2);
  auto mean_ratio = [&](std::uint64_t scale) {
    vlm::stats::RunningStats r;
    for (int t = 0; t < 16; ++t) {
      const PairWorkload w{10'000 * scale, 20'000 * scale, 2'000 * scale};
      const auto states =
          simulate_pair(enc, w, (std::size_t{1} << 17) * scale,
                        (std::size_t{1} << 18) * scale,
                        1234 + 7 * static_cast<std::uint64_t>(t));
      r.push(est.estimate(states.x, states.y).n_c_hat / double(w.n_c));
    }
    return r.mean();
  };
  EXPECT_NEAR(mean_ratio(1), 1.0, 0.05);
  EXPECT_NEAR(mean_ratio(2), 1.0, 0.05);
}

}  // namespace
}  // namespace vlm::core
