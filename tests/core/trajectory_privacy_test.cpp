#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/privacy_model.h"

namespace vlm::core {
namespace {

PairScenario hop(double n_x, double n_y, double n_c, std::size_t m_x,
                 std::size_t m_y) {
  return PairScenario{n_x, n_y, n_c, m_x, m_y, 2};
}

TEST(TrajectoryPrivacy, SingleHopEqualsExactPairPrivacy) {
  const PairScenario h = hop(10'000, 10'000, 1'000, 1 << 15, 1 << 15);
  const std::vector<PairScenario> hops{h};
  EXPECT_DOUBLE_EQ(PrivacyModel::trajectory_privacy(hops),
                   PrivacyModel::evaluate_exact(h).p);
}

TEST(TrajectoryPrivacy, MoreHopsAreHarderToLink) {
  const PairScenario h = hop(10'000, 10'000, 1'000, 1 << 15, 1 << 15);
  double previous = 0.0;
  for (std::size_t k = 1; k <= 5; ++k) {
    const std::vector<PairScenario> hops(k, h);
    const double p = PrivacyModel::trajectory_privacy(hops);
    EXPECT_GT(p, previous);
    EXPECT_LE(p, 1.0);
    previous = p;
  }
}

TEST(TrajectoryPrivacy, MatchesClosedFormProduct) {
  const PairScenario a = hop(10'000, 10'000, 1'000, 1 << 15, 1 << 15);
  const PairScenario b = hop(10'000, 100'000, 1'000, 1 << 15, 1 << 18);
  const double pa = PrivacyModel::evaluate_exact(a).p;
  const double pb = PrivacyModel::evaluate_exact(b).p;
  const std::vector<PairScenario> hops{a, b};
  EXPECT_NEAR(PrivacyModel::trajectory_privacy(hops),
              1.0 - (1.0 - pa) * (1.0 - pb), 1e-12);
}

TEST(TrajectoryPrivacy, WeakestHopDominates) {
  // One very-unprivate hop (huge load factor) pulls the trajectory
  // privacy down toward that hop's value, never below it.
  const PairScenario strong = hop(10'000, 10'000, 1'000, 1 << 15, 1 << 15);
  const PairScenario weak = hop(1'000, 1'000, 100, 1 << 16, 1 << 16);  // f=65
  const std::vector<PairScenario> hops{strong, weak};
  const double p = PrivacyModel::trajectory_privacy(hops);
  EXPECT_GE(p, PrivacyModel::evaluate_exact(weak).p);
  EXPECT_GE(p, PrivacyModel::evaluate_exact(strong).p);
}

TEST(TrajectoryPrivacy, EmptyTrajectoryThrows) {
  EXPECT_THROW(
      (void)PrivacyModel::trajectory_privacy(std::vector<PairScenario>{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace vlm::core
