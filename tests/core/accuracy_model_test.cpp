#include "core/accuracy_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/estimator.h"
#include "core/pair_simulation.h"
#include "stats/descriptive.h"

namespace vlm::core {
namespace {

PairScenario scenario(double n_x, double n_y, double n_c, std::size_t m_x,
                      std::size_t m_y, std::uint32_t s = 2) {
  return PairScenario{n_x, n_y, n_c, m_x, m_y, s};
}

TEST(AccuracyModel, QPointMatchesClosedForm) {
  EXPECT_NEAR(AccuracyModel::q_point(1000.0, 1 << 12),
              std::pow(1.0 - 1.0 / 4096.0, 1000.0), 1e-12);
}

TEST(AccuracyModel, QCombinedReducesToProductWhenNoOverlapSignal) {
  // Eq. 9 with n_c -> 0 degenerates to q(n_x) * q(n_y).
  const auto sc = scenario(1000, 2000, 1e-9, 1 << 12, 1 << 13);
  EXPECT_NEAR(AccuracyModel::q_combined(sc),
              AccuracyModel::q_point(1000, 1 << 12) *
                  AccuracyModel::q_point(2000, 1 << 13),
              1e-9);
}

TEST(AccuracyModel, QCombinedIncreasesWithOverlap) {
  // More common vehicles => more aligned bits => more zeros in B_c.
  double prev = 0.0;
  for (double n_c : {100.0, 500.0, 1000.0, 2000.0}) {
    const double q =
        AccuracyModel::q_combined(scenario(4000, 8000, n_c, 1 << 13, 1 << 14));
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(AccuracyModel, PredictsSmallBiasAndSpreadAtHealthyLoad) {
  const AccuracyPrediction pred = AccuracyModel::predict(
      scenario(10'000, 100'000, 2'000, 1 << 17, 1 << 20));
  EXPECT_LT(std::fabs(pred.bias_ratio), 0.01);
  EXPECT_GT(pred.stddev_ratio, 0.0);
  EXPECT_LT(pred.stddev_ratio, 0.2);
  EXPECT_NEAR(pred.expected_estimate, 2000.0, 2000.0 * 0.01);
}

TEST(AccuracyModel, PaperBinomialModelOverpredictsSpread) {
  // Documented reproduction finding: the published Section V variance
  // (binomial zero counts + Eq. 35's collapsed covariances) ignores the
  // balls-into-bins correlations and the V_c/V_x/V_y cancellation, and
  // over-predicts the Monte-Carlo spread several-fold at healthy load
  // factors. See EXPERIMENTS.md (E7).
  const auto sc = scenario(10'000, 10'000, 2'000, 1 << 17, 1 << 17);
  const auto paper =
      AccuracyModel::predict(sc, VarianceModel::kPaperBinomial);
  const auto exact =
      AccuracyModel::predict(sc, VarianceModel::kOccupancyExact);
  EXPECT_GT(paper.stddev_ratio, 3.0 * exact.stddev_ratio);
}

TEST(AccuracyModel, NormalizesArgumentOrder) {
  const auto a = AccuracyModel::predict(
      scenario(10'000, 100'000, 2'000, 1 << 17, 1 << 20));
  const auto b = AccuracyModel::predict(
      scenario(100'000, 10'000, 2'000, 1 << 20, 1 << 17));
  EXPECT_DOUBLE_EQ(a.stddev_ratio, b.stddev_ratio);
  EXPECT_DOUBLE_EQ(a.bias_ratio, b.bias_ratio);
}

TEST(AccuracyModel, SpreadShrinksWithLargerArrays) {
  double prev = 1e9;
  for (unsigned shift : {14u, 16u, 18u, 20u}) {
    const auto pred = AccuracyModel::predict(
        scenario(10'000, 10'000, 2'000, std::size_t{1} << shift,
                 std::size_t{1} << shift));
    EXPECT_LT(pred.stddev_ratio, prev);
    prev = pred.stddev_ratio;
  }
}

TEST(AccuracyModel, SpreadGrowsWhenArraySaturates) {
  // FBM's failure mode: n_y = 50 n_x with a small fixed m leaves only
  // ~2% of B_y's bits zero, and the predicted relative error is several
  // times the properly sized (VLM) configuration at the same workload.
  const auto healthy = AccuracyModel::predict(
      scenario(10'000, 500'000, 2'000, 1 << 17, 1 << 22));
  const auto starved = AccuracyModel::predict(
      scenario(10'000, 500'000, 2'000, 1 << 17, 1 << 17));
  EXPECT_LT(starved.q_ny, 0.05);  // nearly saturated
  EXPECT_GT(starved.stddev_ratio, 2.5 * healthy.stddev_ratio);
}

TEST(AccuracyModel, Guards) {
  EXPECT_THROW((void)AccuracyModel::predict(
                   scenario(100, 100, 0.0, 1 << 10, 1 << 10)),
               std::invalid_argument);
  EXPECT_THROW((void)AccuracyModel::predict(
                   scenario(100, 100, 200, 1 << 10, 1 << 10)),
               std::invalid_argument);
  EXPECT_THROW((void)AccuracyModel::predict(scenario(100, 100, 50, 1000, 1024)),
               std::invalid_argument);
  EXPECT_THROW((void)AccuracyModel::predict(
                   scenario(100, 100, 50, 1 << 10, 1 << 10, 1)),
               std::invalid_argument);
}

// --- Monte-Carlo agreement: the paper's Section V formulas vs the real
// protocol. This is E7's test-sized version (the bench sweeps more). ---

struct McCase {
  double n_x, n_y, n_c;
  std::size_t m_x, m_y;
  std::uint32_t s;
};

class AccuracyModelMc : public ::testing::TestWithParam<McCase> {};

TEST_P(AccuracyModelMc, PredictionMatchesSimulation) {
  const McCase c = GetParam();
  Encoder enc(EncoderConfig{c.s, 0x5EEDBA5EBA11AD00ull,
                            SlotSelection::kPerVehicleUniform});
  PairEstimator est(c.s);
  vlm::stats::RunningStats ratios;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const PairStates states = simulate_pair(
        enc,
        PairWorkload{static_cast<std::uint64_t>(c.n_x),
                     static_cast<std::uint64_t>(c.n_y),
                     static_cast<std::uint64_t>(c.n_c)},
        c.m_x, c.m_y, 1000 + static_cast<std::uint64_t>(t));
    ratios.push(est.estimate(states.x, states.y).n_c_hat / c.n_c);
  }
  const auto pred =
      AccuracyModel::predict(scenario(c.n_x, c.n_y, c.n_c, c.m_x, c.m_y, c.s));
  // Mean ratio within 4 standard errors of the predicted mean.
  const double se = pred.stddev_ratio / std::sqrt(double{kTrials});
  EXPECT_NEAR(ratios.mean(), 1.0 + pred.bias_ratio, 4.0 * se + 0.005);
  // Spread within a factor of 1.6 of prediction (chi-square-ish band for
  // 60 samples plus model truncation error).
  EXPECT_GT(ratios.stddev(), pred.stddev_ratio / 1.6);
  EXPECT_LT(ratios.stddev(), pred.stddev_ratio * 1.6);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, AccuracyModelMc,
    ::testing::Values(
        McCase{10'000, 10'000, 2'000, 1 << 17, 1 << 17, 2},   // equal, f~13
        McCase{10'000, 10'000, 500, 1 << 16, 1 << 16, 2},     // small overlap
        McCase{10'000, 100'000, 2'000, 1 << 17, 1 << 20, 2},  // d = 10
        McCase{10'000, 100'000, 2'000, 1 << 17, 1 << 20, 5},  // s = 5
        McCase{5'000, 250'000, 1'000, 1 << 16, 1 << 21, 2}    // d = 50
        ));

}  // namespace
}  // namespace vlm::core
