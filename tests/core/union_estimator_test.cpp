#include "core/union_estimator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/hashing.h"
#include "core/encoder.h"

namespace vlm::core {
namespace {

VehicleIdentity vehicle(std::uint64_t seed, std::uint64_t i) {
  VehicleIdentity v;
  v.id = VehicleId{
      common::mix64(common::mix64(seed) + (i + 1) * 0x9E3779B97F4A7C15ull)};
  v.private_key = common::mix64(common::mix64(seed ^ 0xBEEF) +
                                (i + 1) * 0xC2B2AE3D27D4EB4Full);
  return v;
}

TEST(UnionEstimator, SingleRsuIsTheCounter) {
  Encoder enc(EncoderConfig{});
  RsuState state(1 << 14);
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    state.record(enc.bit_index(vehicle(1, i), RsuId{1}, 1 << 14));
  }
  UnionEstimator est(2);
  const UnionEstimate out = est.estimate(std::vector<RsuState>{state});
  EXPECT_DOUBLE_EQ(out.distinct_vehicles, 5'000.0);
  EXPECT_DOUBLE_EQ(out.pairwise_overlap, 0.0);
}

TEST(UnionEstimator, DisjointPopulationsAddUp) {
  Encoder enc(EncoderConfig{});
  std::vector<RsuState> states;
  states.emplace_back(1 << 16);
  states.emplace_back(1 << 16);
  for (std::uint64_t i = 0; i < 8'000; ++i) {
    states[0].record(enc.bit_index(vehicle(2, i), RsuId{1}, 1 << 16));
  }
  for (std::uint64_t i = 8'000; i < 20'000; ++i) {
    states[1].record(enc.bit_index(vehicle(2, i), RsuId{2}, 1 << 16));
  }
  UnionEstimator est(2);
  const UnionEstimate out = est.estimate(states);
  // No common vehicles: union = 20,000 up to pair-estimator noise.
  EXPECT_NEAR(out.distinct_vehicles, 20'000.0, 600.0);
}

TEST(UnionEstimator, OverlapIsRemovedOnce) {
  Encoder enc(EncoderConfig{});
  std::vector<RsuState> states;
  states.emplace_back(1 << 17);
  states.emplace_back(1 << 17);
  // 4,000 common vehicles + 6,000/16,000 exclusive: union = 26,000.
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const VehicleIdentity v = vehicle(3, i);
    states[0].record(enc.bit_index(v, RsuId{1}, 1 << 17));
    if (i < 4'000) states[1].record(enc.bit_index(v, RsuId{2}, 1 << 17));
  }
  for (std::uint64_t i = 10'000; i < 26'000; ++i) {
    states[1].record(enc.bit_index(vehicle(3, i), RsuId{2}, 1 << 17));
  }
  UnionEstimator est(2);
  const UnionEstimate out = est.estimate(states);
  EXPECT_DOUBLE_EQ(out.total_reports, 30'000.0);
  EXPECT_NEAR(out.pairwise_overlap, 4'000.0, 600.0);
  EXPECT_NEAR(out.distinct_vehicles, 26'000.0, 600.0);
}

TEST(UnionEstimator, ThreeSitesPairwiseBound) {
  // Vehicles visiting all three sites are subtracted three times but
  // added three times via counters: the pairwise truncation undercounts
  // by exactly the triple count (2·t removed beyond the 1·t needed...
  // inclusion-exclusion: |∪| = Σn − Σpairs + t; we omit +t).
  Encoder enc(EncoderConfig{});
  std::vector<RsuState> states;
  for (int r = 0; r < 3; ++r) states.emplace_back(1 << 17);
  const std::uint64_t t = 3'000, singles = 9'000;
  std::uint64_t index = 0;
  for (std::uint64_t i = 0; i < t; ++i) {
    const VehicleIdentity v = vehicle(4, index++);
    for (int r = 0; r < 3; ++r) {
      states[static_cast<std::size_t>(r)].record(
          enc.bit_index(v, RsuId{std::uint64_t(r) + 1}, 1 << 17));
    }
  }
  for (int r = 0; r < 3; ++r) {
    for (std::uint64_t i = 0; i < singles; ++i) {
      states[static_cast<std::size_t>(r)].record(enc.bit_index(
          vehicle(4, index++), RsuId{std::uint64_t(r) + 1}, 1 << 17));
    }
  }
  const double truth = static_cast<double>(t + 3 * singles);  // 30,000
  UnionEstimator est(2);
  const UnionEstimate out = est.estimate(states);
  // Expected pairwise-truncated value: truth − t = 27,000.
  EXPECT_NEAR(out.distinct_vehicles, truth - double(t), 900.0);
  EXPECT_LT(out.distinct_vehicles, truth);
}

TEST(UnionEstimator, Guards) {
  UnionEstimator est(2);
  EXPECT_THROW((void)est.estimate(std::vector<RsuState>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlm::core
