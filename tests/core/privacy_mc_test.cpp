// Monte-Carlo validation of the Section VI privacy formulas.
//
// Runs many small measurement periods with full bookkeeping of WHICH
// vehicles set each bit, then measures empirically:
//   P(A)    — probability a given bit is '1' in both (unfolded) arrays;
//   p=P(E|A) — probability a doubly-set bit was NOT caused by a common
//              vehicle on either side;
// and compares both against PrivacyModel's closed forms (Eqs. 40-43).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/privacy_model.h"

namespace vlm::core {
namespace {

struct McPrivacy {
  double p_a = 0.0;
  double p = 0.0;
};

// Simulates the abstract masking process directly (uniform bit choices,
// same-slot probability 1/s) with per-bit provenance tracking. Sizes are
// kept small so every (trial, bit) pair contributes a sample.
McPrivacy simulate_privacy(std::uint64_t n_x, std::uint64_t n_y,
                           std::uint64_t n_c, std::size_t m_x, std::size_t m_y,
                           std::uint32_t s, int trials, std::uint64_t seed) {
  common::Xoshiro256ss rng(seed);
  std::uint64_t both_one = 0, both_one_not_common = 0, bits_observed = 0;

  for (int t = 0; t < trials; ++t) {
    // For every bit of the virtual unfolded arrays, track whether it was
    // set and whether a common vehicle is among the setters.
    std::vector<std::uint8_t> x_set(m_x, 0), x_by_common(m_x, 0);
    std::vector<std::uint8_t> y_set(m_y, 0), y_by_common(m_y, 0);

    auto record = [&](bool common_vehicle, std::size_t bx, std::size_t by,
                      bool hits_x, bool hits_y) {
      if (hits_x) {
        x_set[bx] = 1;
        if (common_vehicle) x_by_common[bx] = 1;
      }
      if (hits_y) {
        y_set[by] = 1;
        if (common_vehicle) y_by_common[by] = 1;
      }
    };

    for (std::uint64_t v = 0; v < n_c; ++v) {
      // Common vehicle: same logical bit with probability 1/s, in which
      // case positions are congruent mod m_x.
      const std::uint64_t b = rng.next();
      if (rng.bernoulli(1.0 / s)) {
        record(true, b % m_x, b % m_y, true, true);
      } else {
        const std::uint64_t b2 = rng.next();
        record(true, b % m_x, b2 % m_y, true, true);
      }
    }
    for (std::uint64_t v = n_c; v < n_x; ++v) {
      record(false, rng.next() % m_x, 0, true, false);
    }
    for (std::uint64_t v = n_c; v < n_y; ++v) {
      record(false, 0, rng.next() % m_y, false, true);
    }

    for (std::size_t i = 0; i < m_y; ++i) {
      ++bits_observed;
      const std::size_t ix = i % m_x;
      if (x_set[ix] && y_set[i]) {
        ++both_one;
        if (!x_by_common[ix] && !y_by_common[i]) ++both_one_not_common;
      }
    }
  }
  McPrivacy out;
  out.p_a = static_cast<double>(both_one) / static_cast<double>(bits_observed);
  out.p = both_one > 0 ? static_cast<double>(both_one_not_common) /
                             static_cast<double>(both_one)
                       : 1.0;
  return out;
}

struct PrivacyCase {
  std::uint64_t n_x, n_y, n_c;
  std::size_t m_x, m_y;
  std::uint32_t s;
};

class PrivacyMc : public ::testing::TestWithParam<PrivacyCase> {};

TEST_P(PrivacyMc, ClosedFormMatchesSimulation) {
  const PrivacyCase c = GetParam();
  const McPrivacy mc = simulate_privacy(c.n_x, c.n_y, c.n_c, c.m_x, c.m_y,
                                        c.s, /*trials=*/400, /*seed=*/9);
  const PairScenario sc{static_cast<double>(c.n_x), static_cast<double>(c.n_y),
                        static_cast<double>(c.n_c), c.m_x, c.m_y, c.s};
  const PrivacyBreakdown paper = PrivacyModel::evaluate(sc);
  const PrivacyBreakdown exact = PrivacyModel::evaluate_exact(sc);
  // The corrected closed form must match simulation tightly everywhere.
  EXPECT_NEAR(mc.p_a, exact.p_a, 0.015 + 0.03 * exact.p_a)
      << "corrected P(A) vs simulation";
  EXPECT_NEAR(mc.p, exact.p, 0.025) << "corrected privacy vs simulation";
  // The paper's Eq. 43 carries two approximations: the P(E_x)P(E_y)
  // independence step (slightly pessimistic — the true joint is larger)
  // and, for unfolded pairs only, the all-or-nothing same-slot model in
  // Eq. 40 (optimistic). P(A) itself is exact at equal sizes; p should
  // track the exact value within a few percentage points everywhere.
  if (c.m_x == c.m_y) {
    EXPECT_NEAR(paper.p_a, exact.p_a, 1e-12);
    EXPECT_LE(paper.p, exact.p + 1e-9)
        << "independence approximation should be pessimistic here";
  }
  EXPECT_NEAR(paper.p, exact.p, 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, PrivacyMc,
    ::testing::Values(
        PrivacyCase{128, 128, 16, 256, 256, 2},     // f = 2, equal
        PrivacyCase{128, 128, 16, 256, 256, 5},     // s = 5
        PrivacyCase{128, 1280, 24, 256, 2048, 2},   // d = 10 unfolded
        PrivacyCase{64, 640, 12, 128, 1024, 10},    // d = 10, s = 10
        PrivacyCase{200, 200, 100, 512, 512, 2},    // heavy overlap
        PrivacyCase{100, 100, 10, 4096, 4096, 2}    // high load factor
        ));

}  // namespace
}  // namespace vlm::core
