#include "core/privacy_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace vlm::core {
namespace {

PairScenario scenario(double n_x, double n_y, double n_c, std::size_t m_x,
                      std::size_t m_y, std::uint32_t s = 2) {
  return PairScenario{n_x, n_y, n_c, m_x, m_y, s};
}

TEST(PrivacyModel, ClosedFormMatchesExactBinomialSum) {
  // Eq. 40 was derived by collapsing the binomial sum of Eqs. 37-39;
  // check the algebra numerically across shapes.
  for (const auto& sc :
       {scenario(500, 500, 50, 1 << 10, 1 << 10, 2),
        scenario(500, 5'000, 100, 1 << 10, 1 << 13, 2),
        scenario(2'000, 2'000, 400, 1 << 12, 1 << 12, 5),
        scenario(300, 15'000, 60, 1 << 9, 1 << 15, 10)}) {
    EXPECT_NEAR(PrivacyModel::prob_not_both_one(sc),
                PrivacyModel::prob_not_both_one_exact(sc), 1e-9);
  }
}

TEST(PrivacyModel, PerfectPrivacyWithoutCommonVehicles) {
  // n_c = 0: every doubly-set bit is a coincidence, p = 1.
  const auto b = PrivacyModel::evaluate(scenario(1000, 1000, 0, 1 << 11, 1 << 11));
  EXPECT_NEAR(b.p, 1.0, 1e-9);
}

TEST(PrivacyModel, PrivacyWithinUnitInterval) {
  for (double n_c : {1.0, 10.0, 100.0, 900.0}) {
    for (std::uint32_t s : {2u, 5u, 10u}) {
      const double p = PrivacyModel::preserved_privacy(
          scenario(1000, 10'000, n_c, 1 << 11, 1 << 14, s));
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(PrivacyModel, Fig2Plot1OptimalPrivacyNearPaperValues) {
  // Paper (Section VI-B): for equal-volume RSUs at f̄ = 3, s = 5 the
  // privacy is about 0.75.
  const double p =
      PrivacyModel::privacy_at_load_factor(3.0, 10'000, 10'000, 0.1, 5);
  EXPECT_NEAR(p, 0.75, 0.03);
}

TEST(PrivacyModel, Fig2Plot2And3ImprovedPrivacyForUnbalancedVolumes) {
  // Paper: f̄ = 3, s = 5 -> p ~= 0.89 for n_y = 10 n_x and ~0.91 for
  // n_y = 50 n_x, both above the 0.75 of the balanced case.
  const double p_equal =
      PrivacyModel::privacy_at_load_factor(3.0, 10'000, 10'000, 0.1, 5);
  const double p_10 =
      PrivacyModel::privacy_at_load_factor(3.0, 10'000, 100'000, 0.1, 5);
  const double p_50 =
      PrivacyModel::privacy_at_load_factor(3.0, 10'000, 500'000, 0.1, 5);
  EXPECT_NEAR(p_10, 0.89, 0.03);
  EXPECT_NEAR(p_50, 0.91, 0.03);
  EXPECT_GT(p_10, p_equal);
  EXPECT_GT(p_50, p_10);
}

TEST(PrivacyModel, FbmPrivacyCollapsesAtHighLoadFactor) {
  // Paper: with s = 2 the privacy at f = 50 is only ~0.2 — the fate of a
  // light-traffic RSU under FBM sized for a heavy one.
  const double p =
      PrivacyModel::privacy_at_load_factor(50.0, 10'000, 10'000, 0.1, 2);
  EXPECT_NEAR(p, 0.2, 0.06);
}

TEST(PrivacyModel, FbmPrivacyAtF15IsRoughlyHalf) {
  // Paper: m <= 15 n_min guarantees minimum privacy 0.5 at s = 2.
  const double p =
      PrivacyModel::privacy_at_load_factor(15.0, 10'000, 10'000, 0.1, 2);
  EXPECT_NEAR(p, 0.5, 0.05);
}

TEST(PrivacyModel, EqualSizesRecoverBaselineFormula) {
  // The paper notes FBM's privacy formula is the m_x = m_y special case.
  // Verify the closed form is continuous there: evaluating with equal
  // sizes equals the limit of slightly-unequal evaluation roles swapped.
  const auto equal = PrivacyModel::evaluate(
      scenario(10'000, 10'000, 1'000, 1 << 15, 1 << 15));
  const auto swapped = PrivacyModel::evaluate(
      scenario(10'000, 10'000, 1'000, 1 << 15, 1 << 15, 2));
  EXPECT_DOUBLE_EQ(equal.p, swapped.p);
  EXPECT_GT(equal.p, 0.0);
}

TEST(PrivacyModel, LargerSImprovesPrivacyNearOptimalLoad) {
  const double p2 =
      PrivacyModel::privacy_at_load_factor(3.0, 10'000, 10'000, 0.1, 2);
  const double p5 =
      PrivacyModel::privacy_at_load_factor(3.0, 10'000, 10'000, 0.1, 5);
  const double p10 =
      PrivacyModel::privacy_at_load_factor(3.0, 10'000, 10'000, 0.1, 10);
  EXPECT_GT(p5, p2);
  EXPECT_GT(p10, p5);
}

TEST(PrivacyModel, BreakdownComponentsAreProbabilities) {
  const auto b = PrivacyModel::evaluate(
      scenario(10'000, 100'000, 1'000, 1 << 15, 1 << 18, 5));
  for (double v : {b.p, b.p_a, b.p_ex, b.p_ey}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Eq. 43 self-consistency.
  EXPECT_NEAR(b.p, b.p_ex * b.p_ey / b.p_a, 1e-12);
}

TEST(PrivacyModel, Guards) {
  EXPECT_THROW((void)PrivacyModel::preserved_privacy(
                   scenario(100, 100, 200, 1 << 10, 1 << 10)),
               std::invalid_argument);
  EXPECT_THROW((void)PrivacyModel::privacy_at_load_factor(0.0, 100, 100, 0.1, 2),
               std::invalid_argument);
  EXPECT_THROW(
      (void)PrivacyModel::privacy_at_load_factor(1.0, 100, 100, 1.5, 2),
      std::invalid_argument);
}

}  // namespace
}  // namespace vlm::core
