#include "core/multi_period.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/pair_simulation.h"

namespace vlm::core {
namespace {

EstimateInterval fake(double estimate, double stddev) {
  EstimateInterval e;
  e.n_c_hat = estimate;
  e.stddev = stddev;
  e.floor_stddev = stddev / 2;
  e.lower = estimate - 2 * stddev;
  e.upper = estimate + 2 * stddev;
  return e;
}

TEST(MultiPeriod, SinglePeriodPassesThrough) {
  MultiPeriodAggregator agg(1.96);
  agg.add_period(fake(100.0, 10.0));
  const AggregateEstimate out = agg.aggregate();
  EXPECT_DOUBLE_EQ(out.n_c_hat, 100.0);
  EXPECT_DOUBLE_EQ(out.stddev, 10.0);
  EXPECT_EQ(out.periods, 1u);
}

TEST(MultiPeriod, EqualVarianceAveragesAndShrinks) {
  MultiPeriodAggregator agg;
  for (double v : {90.0, 100.0, 110.0, 100.0}) agg.add_period(fake(v, 10.0));
  const AggregateEstimate out = agg.aggregate();
  EXPECT_DOUBLE_EQ(out.n_c_hat, 100.0);
  EXPECT_DOUBLE_EQ(out.stddev, 5.0);  // 10/sqrt(4)
}

TEST(MultiPeriod, NoisierPeriodsWeighLess) {
  MultiPeriodAggregator agg;
  agg.add_period(fake(100.0, 1.0));
  agg.add_period(fake(200.0, 100.0));  // nearly ignored
  const AggregateEstimate out = agg.aggregate();
  EXPECT_NEAR(out.n_c_hat, 100.01, 0.05);
}

TEST(MultiPeriod, IntervalBracketsAggregate) {
  MultiPeriodAggregator agg(2.0);
  agg.add_period(fake(50.0, 5.0));
  agg.add_period(fake(60.0, 5.0));
  const AggregateEstimate out = agg.aggregate();
  EXPECT_LT(out.lower, out.n_c_hat);
  EXPECT_GT(out.upper, out.n_c_hat);
  EXPECT_NEAR(out.upper - out.lower, 2 * 2.0 * out.stddev, 1e-12);
}

TEST(MultiPeriod, ZeroStddevFallsBackToFloor) {
  MultiPeriodAggregator agg;
  EstimateInterval weird = fake(10.0, 0.0);
  weird.floor_stddev = 3.0;
  agg.add_period(weird);
  EXPECT_DOUBLE_EQ(agg.aggregate().stddev, 3.0);
}

TEST(MultiPeriod, EmptyAggregationThrows) {
  MultiPeriodAggregator agg;
  EXPECT_TRUE(agg.empty());
  EXPECT_THROW((void)agg.aggregate(), std::invalid_argument);
  EXPECT_THROW(MultiPeriodAggregator(-1.0), std::invalid_argument);
}

TEST(MultiPeriod, BeatsSinglePeriodOnRealSimulations) {
  // Aggregate 12 independent measurement periods; the combined estimate
  // must land within ~4 aggregate-sigma of the truth, and the aggregate
  // sigma must be well below a single period's.
  Encoder enc(EncoderConfig{});
  IntervalEstimator interval(2);
  MultiPeriodAggregator agg;
  const PairWorkload w{10'000, 100'000, 1'500};
  double single_sigma = 0.0;
  for (int period = 0; period < 12; ++period) {
    const auto states =
        simulate_pair(enc, w, 1 << 17, 1 << 20,
                      40'000 + static_cast<std::uint64_t>(period));
    const EstimateInterval e = interval.estimate(states.x, states.y);
    single_sigma = e.stddev;
    agg.add_period(e);
  }
  const AggregateEstimate out = agg.aggregate();
  EXPECT_EQ(out.periods, 12u);
  EXPECT_LT(out.stddev, single_sigma * 0.45);  // ~1/sqrt(12) ≈ 0.29
  EXPECT_NEAR(out.n_c_hat, 1500.0, 5.0 * out.stddev + 30.0);
}

}  // namespace
}  // namespace vlm::core
