#include "core/triple_estimator.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "common/hashing.h"
#include "core/encoder.h"
#include "stats/descriptive.h"

namespace vlm::core {
namespace {

// Class counts for a three-RSU workload: singletons, pure pairs, triple.
struct TripleWorkload {
  std::uint64_t only_x = 0, only_y = 0, only_z = 0;
  std::uint64_t xy = 0, xz = 0, yz = 0;  // pure pairs (triple excluded)
  std::uint64_t xyz = 0;

  std::uint64_t n_x() const { return only_x + xy + xz + xyz; }
  std::uint64_t n_y() const { return only_y + xy + yz + xyz; }
  std::uint64_t n_z() const { return only_z + xz + yz + xyz; }
  std::uint64_t n_xy() const { return xy + xyz; }
  std::uint64_t n_xz() const { return xz + xyz; }
  std::uint64_t n_yz() const { return yz + xyz; }
};

struct TripleStates {
  RsuState x, y, z;
};

TripleStates simulate_triple(const Encoder& enc, const TripleWorkload& w,
                             std::size_t m_x, std::size_t m_y,
                             std::size_t m_z, std::uint64_t seed) {
  TripleStates st{RsuState(m_x), RsuState(m_y), RsuState(m_z)};
  const RsuId rx{0xA1}, ry{0xB2}, rz{0xC3};
  std::uint64_t index = 0;
  auto drive = [&](bool hx, bool hy, bool hz, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      VehicleIdentity v;
      v.id = VehicleId{common::mix64(common::mix64(seed) +
                                     (++index) * 0x9E3779B97F4A7C15ull)};
      v.private_key = common::mix64(common::mix64(seed ^ 0xD1B54A32ull) +
                                    index * 0xC2B2AE3D27D4EB4Full);
      if (hx) st.x.record(enc.bit_index(v, rx, m_x));
      if (hy) st.y.record(enc.bit_index(v, ry, m_y));
      if (hz) st.z.record(enc.bit_index(v, rz, m_z));
    }
  };
  drive(true, false, false, w.only_x);
  drive(false, true, false, w.only_y);
  drive(false, false, true, w.only_z);
  drive(true, true, false, w.xy);
  drive(true, false, true, w.xz);
  drive(false, true, true, w.yz);
  drive(true, true, true, w.xyz);
  return st;
}

TripleWorkload equal_workload() {
  TripleWorkload w;
  w.only_x = w.only_y = w.only_z = 16'000;
  w.xy = w.xz = w.yz = 4'000;
  w.xyz = 6'000;
  return w;
}

TEST(TripleEstimator, RecoversPlantedTripleOverlapEqualSizes) {
  Encoder enc(EncoderConfig{});
  TripleEstimator est(2);
  const TripleWorkload w = equal_workload();
  vlm::stats::RunningStats ratios;
  constexpr int kTrials = 24;
  for (int t = 0; t < kTrials; ++t) {
    const TripleStates st = simulate_triple(
        enc, w, 1 << 18, 1 << 18, 1 << 18, 500 + std::uint64_t(t));
    const TripleEstimate e = est.estimate(st.x, st.y, st.z);
    ratios.push(e.n_xyz_hat / double(w.xyz));
  }
  EXPECT_NEAR(ratios.mean(), 1.0, 0.12);
}

TEST(TripleEstimator, KnownPairsVariantIsLessNoisy) {
  Encoder enc(EncoderConfig{});
  TripleEstimator est(2);
  const TripleWorkload w = equal_workload();
  vlm::stats::RunningStats known_ratios;
  for (int t = 0; t < 16; ++t) {
    const TripleStates st = simulate_triple(
        enc, w, 1 << 18, 1 << 18, 1 << 18, 900 + std::uint64_t(t));
    const TripleEstimate e = est.estimate_with_known_pairs(
        st.x, st.y, st.z, double(w.n_xy()), double(w.n_xz()),
        double(w.n_yz()));
    known_ratios.push(e.n_xyz_hat / double(w.xyz));
  }
  EXPECT_NEAR(known_ratios.mean(), 1.0, 0.1);
}

TEST(TripleEstimator, HandlesUnequalSizesViaUnfolding) {
  Encoder enc(EncoderConfig{});
  TripleEstimator est(2);
  TripleWorkload w;
  w.only_x = 6'000;
  w.only_y = 20'000;
  w.only_z = 60'000;
  w.xy = w.xz = w.yz = 3'000;
  w.xyz = 4'000;
  vlm::stats::RunningStats ratios;
  for (int t = 0; t < 24; ++t) {
    const TripleStates st = simulate_triple(
        enc, w, 1 << 17, 1 << 18, 1 << 20, 1300 + std::uint64_t(t));
    const TripleEstimate e = est.estimate_with_known_pairs(
        st.x, st.y, st.z, double(w.n_xy()), double(w.n_xz()),
        double(w.n_yz()));
    ratios.push(e.n_xyz_hat / double(w.xyz));
  }
  EXPECT_NEAR(ratios.mean(), 1.0, 0.25);
}

TEST(TripleEstimator, ArgumentOrderDoesNotMatter) {
  Encoder enc(EncoderConfig{});
  TripleEstimator est(2);
  const TripleWorkload w = equal_workload();
  const TripleStates st =
      simulate_triple(enc, w, 1 << 16, 1 << 17, 1 << 18, 77);
  const double a = est.estimate(st.x, st.y, st.z).raw;
  const double b = est.estimate(st.z, st.x, st.y).raw;
  const double c = est.estimate(st.y, st.z, st.x).raw;
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(a, c);
}

TEST(TripleEstimator, KnownPairsFollowArgumentOrderUnderPermutation) {
  Encoder enc(EncoderConfig{});
  TripleEstimator est(2);
  TripleWorkload w = equal_workload();
  w.xy = 8'000;  // asymmetric pair volumes so misrouting would show
  w.yz = 1'000;
  const TripleStates st =
      simulate_triple(enc, w, 1 << 16, 1 << 17, 1 << 18, 78);
  const double direct =
      est.estimate_with_known_pairs(st.x, st.y, st.z, double(w.n_xy()),
                                    double(w.n_xz()), double(w.n_yz()))
          .raw;
  // Same call with (z, y, x): pairs are (zy, zx, yx) in that order.
  const double permuted =
      est.estimate_with_known_pairs(st.z, st.y, st.x, double(w.n_yz()),
                                    double(w.n_xz()), double(w.n_xy()))
          .raw;
  EXPECT_DOUBLE_EQ(direct, permuted);
}

TEST(TripleEstimator, ZeroTripleOverlapEstimatesNearZero) {
  Encoder enc(EncoderConfig{});
  TripleEstimator est(2);
  TripleWorkload w = equal_workload();
  w.xyz = 0;
  vlm::stats::RunningStats estimates;
  for (int t = 0; t < 16; ++t) {
    const TripleStates st = simulate_triple(
        enc, w, 1 << 18, 1 << 18, 1 << 18, 2100 + std::uint64_t(t));
    estimates.push(est.estimate_with_known_pairs(st.x, st.y, st.z,
                                                 double(w.n_xy()),
                                                 double(w.n_xz()),
                                                 double(w.n_yz()))
                       .n_xyz_hat);
  }
  EXPECT_LT(estimates.mean(), 800.0);  // vs 4,000 pure-pair members
}

TEST(TripleEstimator, ClampsToPairwiseCap) {
  Encoder enc(EncoderConfig{});
  TripleEstimator est(2);
  const TripleWorkload w = equal_workload();
  const TripleStates st =
      simulate_triple(enc, w, 1 << 18, 1 << 18, 1 << 18, 5);
  const TripleEstimate e = est.estimate(st.x, st.y, st.z);
  EXPECT_LE(e.n_xyz_hat,
            std::min({e.xy.n_c_hat, e.xz.n_c_hat, e.yz.n_c_hat}) + 1e-9);
  EXPECT_GE(e.n_xyz_hat, 0.0);
}

TEST(TripleEstimator, Guards) {
  EXPECT_THROW(TripleEstimator(1), std::invalid_argument);
  TripleEstimator est(2);
  RsuState a(64), b(64), c(64);
  EXPECT_THROW(
      (void)est.estimate_with_known_pairs(a, b, c, -1.0, 0.0, 0.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace vlm::core
