// The umbrella header must be self-contained and expose the whole public
// surface; this test compiles a representative use of each piece.
#include "vlm.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, PublicApiIsReachable) {
  using namespace vlm::core;
  VlmScheme scheme(VlmSchemeConfig{.s = 2, .load_factor = 8.0});
  RsuState rsu = scheme.make_rsu_state(1'000);
  rsu.record(scheme.encoder().bit_index(
      VehicleIdentity{VehicleId{1}, 2}, RsuId{3}, rsu.array_size()));
  EXPECT_EQ(rsu.counter(), 1u);

  const PairScenario sc{1'000, 1'000, 100, 1 << 13, 1 << 13, 2};
  EXPECT_GT(AccuracyModel::predict(sc).stddev_ratio, 0.0);
  EXPECT_GT(PrivacyModel::evaluate_exact(sc).p, 0.0);
  EXPECT_GE(ReportValidator(6.0).assess(rsu).expected_zeros, 0.0);
  EXPECT_NO_THROW((void)calibrate_deployment(CalibrationRequest{}));
}

}  // namespace
