// Algebraic identities between the paper's privacy formulas and the
// exact closed forms — unit-level companions to the Monte-Carlo tests.
#include <gtest/gtest.h>

#include "core/privacy_model.h"

namespace vlm::core {
namespace {

PairScenario sc(double n_x, double n_y, double n_c, std::size_t m_x,
                std::size_t m_y, std::uint32_t s = 2) {
  return PairScenario{n_x, n_y, n_c, m_x, m_y, s};
}

TEST(PrivacyIdentities, EqualSizePaIsExact) {
  // With m_x = m_y the Eq. 40 complement and the exact P(A) coincide
  // algebraically; check across shapes.
  for (const auto& scenario :
       {sc(1'000, 1'000, 100, 1 << 12, 1 << 12),
        sc(50'000, 50'000, 10'000, 1 << 18, 1 << 18, 5),
        sc(300, 900, 150, 1 << 10, 1 << 10, 10)}) {
    EXPECT_NEAR(PrivacyModel::evaluate(scenario).p_a,
                PrivacyModel::evaluate_exact(scenario).p_a, 1e-12);
  }
}

TEST(PrivacyIdentities, EqualSizePaperIsPessimistic) {
  // The independence step shrinks the joint numerator by
  // ((1−B)/(1−wB))^{n_c} < 1, so paper p <= exact p at equal sizes.
  for (const auto& scenario :
       {sc(1'000, 1'000, 100, 1 << 12, 1 << 12),
        sc(10'000, 10'000, 3'000, 1 << 17, 1 << 17, 5)}) {
    const double paper = PrivacyModel::evaluate(scenario).p;
    const double exact = PrivacyModel::evaluate_exact(scenario).p;
    EXPECT_LE(paper, exact + 1e-12);
    EXPECT_NEAR(paper, exact, 0.05);
  }
}

TEST(PrivacyIdentities, ExactMarginalsMatchEq41And42) {
  const auto scenario = sc(2'000, 20'000, 400, 1 << 13, 1 << 16, 2);
  const PrivacyBreakdown paper = PrivacyModel::evaluate(scenario);
  const PrivacyBreakdown exact = PrivacyModel::evaluate_exact(scenario);
  // P(E_x) and P(E_y) are single-side marginals; both formulations agree.
  EXPECT_NEAR(paper.p_ex, exact.p_ex, 1e-12);
  EXPECT_NEAR(paper.p_ey, exact.p_ey, 1e-12);
}

TEST(PrivacyIdentities, ExactJointExceedsIndependentProduct) {
  // P(E_x ∧ E_y) >= P(E_x) P(E_y): common vehicles couple the two sides
  // positively (a vehicle avoiding the x target is more likely to have
  // avoided the y target through the shared slot).
  for (const auto& scenario :
       {sc(1'000, 1'000, 500, 1 << 12, 1 << 12),
        sc(2'000, 20'000, 1'000, 1 << 13, 1 << 16)}) {
    const PrivacyBreakdown exact = PrivacyModel::evaluate_exact(scenario);
    const double joint = exact.p * exact.p_a;  // reconstruct the numerator
    EXPECT_GE(joint, exact.p_ex * exact.p_ey - 1e-12);
  }
}

TEST(PrivacyIdentities, NoCommonVehiclesGivesPerfectPrivacyBothWays) {
  const auto scenario = sc(5'000, 5'000, 0, 1 << 14, 1 << 14);
  EXPECT_NEAR(PrivacyModel::evaluate(scenario).p, 1.0, 1e-9);
  EXPECT_NEAR(PrivacyModel::evaluate_exact(scenario).p, 1.0, 1e-9);
}

}  // namespace
}  // namespace vlm::core
