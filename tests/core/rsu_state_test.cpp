#include "core/rsu_state.h"

#include "core/pair_simulation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace vlm::core {
namespace {

TEST(RsuState, StartsEmpty) {
  RsuState state(64);
  EXPECT_EQ(state.counter(), 0u);
  EXPECT_EQ(state.array_size(), 64u);
  EXPECT_EQ(state.zero_count(), 64u);
  EXPECT_DOUBLE_EQ(state.zero_fraction(), 1.0);
  EXPECT_TRUE(std::isinf(state.load_factor()));
}

TEST(RsuState, RequiresPowerOfTwoSize) {
  EXPECT_THROW(RsuState(100), std::invalid_argument);
  EXPECT_THROW(RsuState(1), std::invalid_argument);
  EXPECT_NO_THROW(RsuState(2));
}

TEST(RsuState, RecordAdvancesCounterAndSetsBit) {
  RsuState state(16);
  state.record(5);
  state.record(5);  // same bit twice: counter still advances (Eq. 1)
  state.record(9);
  EXPECT_EQ(state.counter(), 3u);
  EXPECT_TRUE(state.bits().test(5));
  EXPECT_TRUE(state.bits().test(9));
  EXPECT_EQ(state.zero_count(), 14u);
  EXPECT_DOUBLE_EQ(state.load_factor(), 16.0 / 3.0);
}

TEST(RsuState, RecordBoundsChecked) {
  RsuState state(8);
  EXPECT_THROW(state.record(8), std::invalid_argument);
}

TEST(RsuState, ResetClearsPeriod) {
  RsuState state(8);
  state.record(1);
  state.reset();
  EXPECT_EQ(state.counter(), 0u);
  EXPECT_EQ(state.zero_count(), 8u);
}

TEST(RsuStateMerge, CombinesShardedSubPeriods) {
  RsuState a(32), b(32);
  a.record(1);
  a.record(5);
  b.record(5);
  b.record(9);
  a.merge(b);
  EXPECT_EQ(a.counter(), 4u);
  EXPECT_TRUE(a.bits().test(1));
  EXPECT_TRUE(a.bits().test(5));
  EXPECT_TRUE(a.bits().test(9));
  EXPECT_EQ(a.bits().count_ones(), 3u);  // shared bit 5 merged, not doubled
}

TEST(RsuStateMerge, ShardedCollectionEqualsMonolithic) {
  // Splitting a vehicle stream across two collectors and merging must be
  // indistinguishable from one collector seeing everything.
  Encoder enc{EncoderConfig{}};
  RsuState whole(1 << 12), shard_a(1 << 12), shard_b(1 << 12);
  const RsuId rsu{77};
  for (std::uint64_t i = 0; i < 3'000; ++i) {
    const VehicleIdentity v = synthetic_vehicle(5, i);
    const std::size_t bit = enc.bit_index(v, rsu, 1 << 12);
    whole.record(bit);
    (i % 2 == 0 ? shard_a : shard_b).record(bit);
  }
  shard_a.merge(shard_b);
  EXPECT_EQ(shard_a.counter(), whole.counter());
  EXPECT_EQ(shard_a.bits(), whole.bits());
}

TEST(RsuStateMerge, RejectsSizeMismatch) {
  RsuState a(32), b(64);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(RsuStateFromReport, ReconstructsState) {
  RsuState original(32);
  original.record(3);
  original.record(3);
  original.record(17);
  const RsuState restored =
      RsuState::from_report(original.counter(), original.bits());
  EXPECT_EQ(restored.counter(), 3u);
  EXPECT_EQ(restored.bits(), original.bits());
}

TEST(RsuStateFromReport, RejectsInconsistentReports) {
  common::BitArray bits(8);
  bits.set(0);
  bits.set(1);
  // Counter below the number of set bits is impossible.
  EXPECT_THROW((void)RsuState::from_report(1, bits), std::invalid_argument);
  // Non-zero counter with all-zero bits is impossible.
  EXPECT_THROW((void)RsuState::from_report(3, common::BitArray(8)),
               std::invalid_argument);
  // Zero counter with zero bits is fine (idle RSU).
  EXPECT_NO_THROW((void)RsuState::from_report(0, common::BitArray(8)));
}

TEST(RsuStateFromReport, RequiresPowerOfTwoArray) {
  EXPECT_THROW((void)RsuState::from_report(0, common::BitArray(24)),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlm::core
