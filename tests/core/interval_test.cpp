#include "core/interval.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/pair_simulation.h"

namespace vlm::core {
namespace {

TEST(IntervalEstimator, CoversTheTruthAtTwoSigma) {
  // Over many independent periods, the 95% interval should contain the
  // true n_c roughly 95% of the time; demand at least 85% to keep the
  // test robust (the interval is evaluated at the ESTIMATED n_c).
  Encoder enc(EncoderConfig{});
  IntervalEstimator est(2, 1.96);
  const PairWorkload w{10'000, 50'000, 2'000};
  int covered = 0;
  constexpr int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    const auto states = simulate_pair(enc, w, 1 << 17, 1 << 19,
                                      5000 + static_cast<std::uint64_t>(t));
    const EstimateInterval e = est.estimate(states.x, states.y);
    if (e.lower <= 2000.0 && 2000.0 <= e.upper) ++covered;
  }
  EXPECT_GE(covered, 85);
  EXPECT_LE(covered, 100);
}

struct CoverageCase {
  std::uint64_t n_x, n_y, n_c;
  std::size_t m_x, m_y;
};

class IntervalCoverage : public ::testing::TestWithParam<CoverageCase> {};

TEST_P(IntervalCoverage, NominalCoverageAcrossScenarios) {
  const CoverageCase c = GetParam();
  Encoder enc(EncoderConfig{});
  IntervalEstimator est(2, 1.96);
  int covered = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const auto states =
        simulate_pair(enc, PairWorkload{c.n_x, c.n_y, c.n_c}, c.m_x, c.m_y,
                      81'000 + static_cast<std::uint64_t>(t));
    const EstimateInterval e = est.estimate(states.x, states.y);
    if (e.lower <= double(c.n_c) && double(c.n_c) <= e.upper) ++covered;
  }
  // 95% nominal; tolerate down to 80% (interval evaluated at the
  // ESTIMATED n_c, plus binomial noise over 60 trials).
  EXPECT_GE(covered, 48) << covered << "/" << kTrials << " covered";
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, IntervalCoverage,
    ::testing::Values(CoverageCase{10'000, 10'000, 2'000, 1 << 17, 1 << 17},
                      CoverageCase{10'000, 50'000, 1'000, 1 << 17, 1 << 19},
                      CoverageCase{5'000, 100'000, 500, 1 << 16, 1 << 20},
                      CoverageCase{20'000, 20'000, 10'000, 1 << 18, 1 << 18}));

TEST(IntervalEstimator, IntervalShapeIsSane) {
  Encoder enc(EncoderConfig{});
  IntervalEstimator est(2);
  const auto states =
      simulate_pair(enc, PairWorkload{10'000, 50'000, 2'000}, 1 << 17,
                    1 << 19, 7);
  const EstimateInterval e = est.estimate(states.x, states.y);
  EXPECT_GT(e.stddev, 0.0);
  EXPECT_LE(e.lower, e.n_c_hat);
  EXPECT_GE(e.upper, e.n_c_hat);
  EXPECT_FALSE(e.degraded);
  // The floor is the unremovable component: stddev can't beat it.
  EXPECT_GE(e.stddev, e.floor_stddev * 0.9);
  EXPECT_NEAR(e.floor_stddev, std::sqrt(e.n_c_hat), std::sqrt(e.n_c_hat) * 0.2);
}

TEST(IntervalEstimator, WiderIntervalForNoisierConfiguration) {
  Encoder enc(EncoderConfig{});
  IntervalEstimator est(2);
  // Saturated FBM-style configuration vs healthy VLM sizing, same load.
  const PairWorkload w{10'000, 500'000, 2'000};
  const auto starved = simulate_pair(enc, w, 1 << 17, 1 << 17, 11);
  const auto healthy = simulate_pair(enc, w, 1 << 17, 1 << 22, 11);
  const auto e_starved = est.estimate(starved.x, starved.y);
  const auto e_healthy = est.estimate(healthy.x, healthy.y);
  EXPECT_GT(e_starved.stddev, 2.0 * e_healthy.stddev);
}

TEST(IntervalEstimator, NearZeroEstimateIsDegradedNotCrashing) {
  Encoder enc(EncoderConfig{});
  IntervalEstimator est(2);
  const auto states =
      simulate_pair(enc, PairWorkload{5'000, 5'000, 0}, 1 << 16, 1 << 16, 3);
  const EstimateInterval e = est.estimate(states.x, states.y);
  EXPECT_GE(e.n_c_hat, 0.0);
  EXPECT_GE(e.upper, e.lower);
  // Either the estimate was clamped near zero (degraded) or happened to
  // be a small positive value with a valid interval.
  EXPECT_TRUE(e.degraded || e.n_c_hat >= 1.0);
}

TEST(IntervalEstimator, IdleRsusYieldEmptyInterval) {
  IntervalEstimator est(2);
  RsuState x(64), y(64);
  const EstimateInterval e = est.estimate(x, y);
  EXPECT_DOUBLE_EQ(e.n_c_hat, 0.0);
  EXPECT_DOUBLE_EQ(e.upper, 0.0);
  EXPECT_TRUE(e.degraded);
}

TEST(IntervalEstimator, Guards) {
  EXPECT_THROW(IntervalEstimator(2, 0.0), std::invalid_argument);
  IntervalEstimator est(2);
  PairEstimate fake;
  fake.m_x = fake.m_y = 1 << 10;
  fake.n_c_hat = 5.0;
  EXPECT_THROW((void)est.annotate(fake, -1.0, 10.0), std::invalid_argument);
}

TEST(IntervalEstimator, EstimateBeyondSupportIsClamped) {
  IntervalEstimator est(2);
  PairEstimate fake;
  fake.m_x = fake.m_y = 1 << 12;
  fake.n_c_hat = 500.0;  // more than min(n_x, n_y) below
  const EstimateInterval e = est.annotate(fake, 100.0, 400.0);
  EXPECT_TRUE(e.degraded);
  EXPECT_GT(e.stddev, 0.0);
}

}  // namespace
}  // namespace vlm::core
