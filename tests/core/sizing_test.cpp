#include "core/sizing.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/math_util.h"

namespace vlm::core {
namespace {

TEST(VlmSizing, PaperFormula) {
  // m_x = 2^ceil(log2(n̄_x * f̄)).
  VlmSizingPolicy policy(2.0);
  EXPECT_EQ(policy.array_size_for(1000.0), 2048u);   // 2000 -> 2048
  EXPECT_EQ(policy.array_size_for(1024.0), 2048u);   // exactly 2048
  EXPECT_EQ(policy.array_size_for(1025.0), 4096u);   // 2050 -> 4096
}

TEST(VlmSizing, TableIExampleSizes) {
  // Table I magnitudes: node 10 has 451k vehicles/day. With f̄ = 8 the
  // array is 2^22.
  VlmSizingPolicy policy(8.0);
  EXPECT_EQ(policy.array_size_for(451'000.0), std::size_t{1} << 22);
  EXPECT_EQ(policy.array_size_for(28'000.0), std::size_t{1} << 18);
}

TEST(VlmSizing, ResultIsAlwaysPowerOfTwo) {
  VlmSizingPolicy policy(3.7);
  for (double n : {0.0, 1.0, 17.0, 999.0, 123456.0, 9.9e5}) {
    EXPECT_TRUE(common::is_power_of_two(policy.array_size_for(n))) << n;
  }
}

TEST(VlmSizing, FloorsAndCaps) {
  VlmSizingPolicy policy(2.0, SizingLimits{64, 4096});
  EXPECT_EQ(policy.array_size_for(0.0), 64u);
  EXPECT_EQ(policy.array_size_for(10.0), 64u);
  EXPECT_EQ(policy.array_size_for(1e9), 4096u);
}

TEST(VlmSizing, LoadFactorStaysNearTarget) {
  // Realized load factor m/n is within [f̄, 2f̄) away from rounding floors.
  VlmSizingPolicy policy(4.0);
  for (double n : {100.0, 1000.0, 12345.0, 500'000.0}) {
    const double f = static_cast<double>(policy.array_size_for(n)) / n;
    EXPECT_GE(f, 4.0) << n;
    EXPECT_LT(f, 8.0) << n;
  }
}

TEST(VlmSizing, Guards) {
  EXPECT_THROW(VlmSizingPolicy(0.0), std::invalid_argument);
  EXPECT_THROW(VlmSizingPolicy(1.0, SizingLimits{100, 4096}),
               std::invalid_argument);
  VlmSizingPolicy policy(1.0);
  EXPECT_THROW((void)policy.array_size_for(-1.0), std::invalid_argument);
}

TEST(FbmSizing, FixedForEveryVolume) {
  FbmSizingPolicy policy(1 << 17);
  EXPECT_EQ(policy.array_size_for(10.0), std::size_t{1} << 17);
  EXPECT_EQ(policy.array_size_for(1e6), std::size_t{1} << 17);
}

TEST(FbmSizing, RequiresPowerOfTwo) {
  EXPECT_THROW(FbmSizingPolicy(1000), std::invalid_argument);
}

TEST(FbmSizing, ForMinVolumeRespectsPrivacyCap) {
  // m <= 15 * n_min (paper: guarantees p >= 0.5 at s = 2).
  const auto policy = FbmSizingPolicy::for_min_volume(10'000.0, 15.0);
  EXPECT_LE(static_cast<double>(policy.array_size()), 150'000.0);
  EXPECT_GT(static_cast<double>(policy.array_size()), 75'000.0);  // largest pow2
  EXPECT_EQ(policy.array_size(), std::size_t{1} << 17);
}

TEST(FbmSizing, ForMinVolumeFloorsAtMinBits) {
  const auto policy =
      FbmSizingPolicy::for_min_volume(1.0, 1.0, SizingLimits{64, 1 << 20});
  EXPECT_EQ(policy.array_size(), 64u);
}

}  // namespace
}  // namespace vlm::core
