// Estimator-health telemetry: a synthetic over-saturated RSU (n >> m)
// must trip the saturation flag and the health/rsu_saturated counter, a
// fleet off its sizing plan must trip the drift flag, and a decoded
// matrix must yield a nonzero predicted-relative-error gauge through
// the paper's Section V accuracy model.
#include "obs/health.h"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "common/hashing.h"
#include "core/od_matrix.h"
#include "core/rsu_state.h"
#include "obs/metrics.h"

namespace vlm::obs::health {
namespace {

// A healthy state: `local` vehicles of its own plus the shared indices.
core::RsuState make_state(std::size_t m, std::size_t local,
                          std::span<const std::size_t> shared,
                          std::uint64_t& h) {
  core::RsuState state(m);
  for (std::size_t i = 0; i < local; ++i) {
    state.record(static_cast<std::size_t>(common::mix64(++h) % m));
  }
  for (const std::size_t index : shared) state.record(index);
  return state;
}

TEST(HealthTest, OverSaturatedRsuTripsSaturation) {
  // n = 10000 into m = 64: every bit ends up set, the zero count hits 0
  // and Eq. 5's MLE is degenerate — exactly the silent failure the
  // telemetry exists to surface.
  core::RsuState state(64);
  std::uint64_t h = 0x5A7;
  for (int i = 0; i < 10'000; ++i) {
    state.record(static_cast<std::size_t>(common::mix64(++h) % 64));
  }
  ASSERT_EQ(state.zero_count(), 0u);

  Counter& counter = MetricsRegistry::global().counter("health/rsu_saturated");
  const std::uint64_t before = counter.value();
  std::vector<RsuHealth> per_rsu;
  std::vector<core::RsuState> states;
  states.push_back(std::move(state));
  const HealthSummary summary = assess_rsus(
      std::span<const core::RsuState>(states), HealthOptions{}, &per_rsu);

  EXPECT_EQ(summary.rsus_assessed, 1u);
  EXPECT_EQ(summary.rsus_saturated, 1u);
  EXPECT_TRUE(summary.any_warning());
  EXPECT_DOUBLE_EQ(summary.max_fill_fraction, 1.0);
  ASSERT_EQ(per_rsu.size(), 1u);
  EXPECT_TRUE(per_rsu[0].saturated);
  EXPECT_EQ(counter.value(), before + 1);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::global().gauge("health/fill_fraction_max").value(), 1.0);
}

TEST(HealthTest, HealthyRsuStaysQuiet) {
  std::uint64_t h = 0xB0B;
  std::vector<core::RsuState> states;
  // n = 128 into m = 1024: load factor 8 (the paper's f̄), zero fraction
  // ~e^{-1/8} — nowhere near the saturation threshold.
  states.push_back(make_state(1024, 128, {}, h));
  HealthOptions options;
  options.target_load_factor = 8.0;
  const HealthSummary summary =
      assess_rsus(std::span<const core::RsuState>(states), options);
  EXPECT_EQ(summary.rsus_saturated, 0u);
  EXPECT_EQ(summary.rsus_drifted, 0u);
  EXPECT_FALSE(summary.any_warning());
  EXPECT_GT(summary.min_load_factor, 4.0);
}

TEST(HealthTest, LoadFactorDriftAgainstSizingPlan) {
  std::uint64_t h = 0xD1F;
  std::vector<core::RsuState> states;
  // Plan said f̄ = 8, but demand quadrupled: n = 512 into m = 1024 gives
  // f = 2, below the [4, 16] tolerance band.
  states.push_back(make_state(1024, 512, {}, h));
  HealthOptions options;
  options.target_load_factor = 8.0;
  const HealthSummary summary =
      assess_rsus(std::span<const core::RsuState>(states), options);
  EXPECT_EQ(summary.rsus_drifted, 1u);
  // The same fleet with the drift check off (no sizing plan) is quiet.
  const HealthSummary unplanned =
      assess_rsus(std::span<const core::RsuState>(states), HealthOptions{});
  EXPECT_EQ(unplanned.rsus_drifted, 0u);
}

TEST(HealthTest, PointerSpanOverloadMatchesValueSpan) {
  std::uint64_t h = 0xCAFE;
  std::vector<core::RsuState> states;
  states.push_back(make_state(512, 100, {}, h));
  states.push_back(make_state(1024, 3000, {}, h));
  std::vector<const core::RsuState*> pointers{&states[0], &states[1]};
  const HealthSummary by_value =
      assess_rsus(std::span<const core::RsuState>(states), HealthOptions{});
  const HealthSummary by_pointer = assess_rsus(
      std::span<const core::RsuState* const>(pointers), HealthOptions{});
  EXPECT_EQ(by_pointer.rsus_assessed, by_value.rsus_assessed);
  EXPECT_EQ(by_pointer.rsus_saturated, by_value.rsus_saturated);
  EXPECT_DOUBLE_EQ(by_pointer.max_fill_fraction, by_value.max_fill_fraction);
  EXPECT_DOUBLE_EQ(by_pointer.min_load_factor, by_value.min_load_factor);
}

TEST(HealthTest, DecodedPairsYieldNonzeroPredictedRelErr) {
  // Two healthy RSUs sharing one road of 200 vehicles plus 200 local
  // each: the decoded overlap is positive and inside the accuracy
  // model's domain, so the pair must be assessed with a strictly
  // positive predicted relative error (Eq. 36), pushed to the gauge.
  std::uint64_t h = 0xF00D;
  std::vector<std::size_t> shared;
  for (int i = 0; i < 200; ++i) {
    shared.push_back(static_cast<std::size_t>(common::mix64(++h) % 1024));
  }
  std::vector<core::RsuState> states;
  states.push_back(make_state(1024, 200, shared, h));
  states.push_back(make_state(1024, 200, shared, h));

  const core::OdMatrix matrix =
      core::estimate_od_matrix(states, 2, 1.96, {}, nullptr);
  ASSERT_TRUE(matrix.measured(0, 1));
  ASSERT_GT(matrix.at(0, 1).n_c_hat, 0.0);

  HealthOptions options;
  options.s = 2;
  HealthSummary summary =
      assess_rsus(std::span<const core::RsuState>(states), options);
  assess_pairs(states, matrix, options, summary);

  EXPECT_EQ(summary.pairs_assessed, 1u);
  EXPECT_EQ(summary.pairs_degraded, 0u);
  EXPECT_GT(summary.max_predicted_rel_err, 0.0);
  EXPECT_GT(summary.mean_predicted_rel_err, 0.0);
  EXPECT_GT(
      MetricsRegistry::global().gauge("health/predicted_rel_err_max").value(),
      0.0);
}

TEST(HealthTest, SaturatedPairCountsAsDegraded) {
  // Both endpoints over-saturated: the estimator marks the cell degraded
  // and the health pass must not feed it to the accuracy model.
  std::uint64_t h = 0xDEAD;
  std::vector<core::RsuState> states;
  states.push_back(make_state(64, 10'000, {}, h));
  states.push_back(make_state(64, 10'000, {}, h));
  ASSERT_EQ(states[0].zero_count(), 0u);

  const core::OdMatrix matrix =
      core::estimate_od_matrix(states, 2, 1.96, {}, nullptr);
  HealthOptions options;
  options.s = 2;
  HealthSummary summary =
      assess_rsus(std::span<const core::RsuState>(states), options);
  assess_pairs(states, matrix, options, summary);

  EXPECT_EQ(summary.rsus_saturated, 2u);
  EXPECT_EQ(summary.pairs_assessed, 0u);
  EXPECT_EQ(summary.pairs_degraded, 1u);
}

TEST(HealthTest, FormatSummaryMentionsPairsOnlyWhenAssessed) {
  HealthSummary rsu_only;
  rsu_only.rsus_assessed = 16;
  rsu_only.rsus_saturated = 3;
  const std::string line = format_health_summary(rsu_only);
  EXPECT_NE(line.find("health:"), std::string::npos);
  EXPECT_NE(line.find("3 saturated"), std::string::npos);
  EXPECT_EQ(line.find("pair"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');

  HealthSummary with_pairs = rsu_only;
  with_pairs.pairs_assessed = 120;
  with_pairs.max_predicted_rel_err = 0.25;
  EXPECT_NE(format_health_summary(with_pairs).find("120 pair(s)"),
            std::string::npos);
}

}  // namespace
}  // namespace vlm::obs::health
