// Exporters: stable key order independent of registration order, the
// three wire formats, and the CLI/environment resolution rules.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/metrics.h"

namespace vlm::obs {
namespace {

Snapshot sample_snapshot() {
  MetricsRegistry registry;
  // Deliberately registered out of alphabetical order.
  registry.counter("ingest/vehicles").add(7);
  registry.counter("channel/queries_lost").add(1);
  registry.gauge("decode/workers").set(4.0);
  registry.info("kernel/isa").set("avx2");
  registry.histogram("period/ingest", Unit::kNanoseconds)
      .observe(1'500'000'000);
  registry.histogram("decode/pairs_raw").observe(12);
  return registry.snapshot();
}

TEST(ExportTest, JsonSectionsAreSortedByName) {
  const std::string json = to_json(sample_snapshot());
  const std::size_t channel = json.find("channel/queries_lost");
  const std::size_t vehicles = json.find("ingest/vehicles");
  ASSERT_NE(channel, std::string::npos);
  ASSERT_NE(vehicles, std::string::npos);
  EXPECT_LT(channel, vehicles);
  const std::size_t pairs = json.find("\"decode/pairs_raw\"");
  const std::size_t period = json.find("\"period/ingest\"");
  ASSERT_NE(pairs, std::string::npos);
  ASSERT_NE(period, std::string::npos);
  EXPECT_LT(pairs, period);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"info\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

TEST(ExportTest, JsonSuffixesNanosecondHistogramsWithSeconds) {
  const std::string json = to_json(sample_snapshot());
  // The nanosecond phase exports as seconds; the raw histogram does not.
  EXPECT_NE(json.find("\"total_seconds\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"total\": 12"), std::string::npos);
}

TEST(ExportTest, JsonSplicesExtraAsFirstMembers) {
  const std::string json = to_json(sample_snapshot(), "\"period\": 3,");
  const std::size_t period = json.find("\"period\": 3,");
  ASSERT_NE(period, std::string::npos);
  EXPECT_LT(period, json.find("\"counters\""));
}

TEST(ExportTest, EmptySnapshotIsStillValidJsonShape) {
  const std::string json = to_json(Snapshot{});
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"spans\": {}"), std::string::npos);
}

TEST(ExportTest, PrometheusManglesNamesAndTypesLines) {
  const std::string text = to_prometheus_text(sample_snapshot());
  EXPECT_NE(text.find("# TYPE vlm_ingest_vehicles_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("vlm_ingest_vehicles_total 7"), std::string::npos);
  EXPECT_NE(text.find("vlm_decode_workers 4"), std::string::npos);
  EXPECT_NE(text.find("vlm_kernel_isa_info{value=\"avx2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("vlm_period_ingest_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("vlm_period_ingest_seconds{quantile=\"0.5\"}"),
            std::string::npos);
}

TEST(ExportTest, CsvRowsCarryPeriodAndKind) {
  const Snapshot snap = sample_snapshot();
  const std::string rows = to_csv_rows(snap, 2);
  EXPECT_NE(rows.find("2,counter,ingest/vehicles,,,,,,,7"),
            std::string::npos);
  EXPECT_NE(rows.find("2,gauge,decode/workers,"), std::string::npos);
  EXPECT_NE(rows.find("2,info,kernel/isa,,,,,,,avx2"), std::string::npos);
  EXPECT_NE(rows.find("2,span,period/ingest,1,1.5,"), std::string::npos);
  EXPECT_EQ(csv_header(),
            "period,kind,name,count,total,min,max,p50,p99,value\n");
}

TEST(ExportTest, ParseExportFormatAcceptsExactlyTheThreeNames) {
  ExportFormat format = ExportFormat::kCsv;
  EXPECT_TRUE(parse_export_format("json", format));
  EXPECT_EQ(format, ExportFormat::kJson);
  EXPECT_TRUE(parse_export_format("prom", format));
  EXPECT_EQ(format, ExportFormat::kPrometheus);
  EXPECT_TRUE(parse_export_format("csv", format));
  EXPECT_EQ(format, ExportFormat::kCsv);
  format = ExportFormat::kPrometheus;
  EXPECT_FALSE(parse_export_format("xml", format));
  EXPECT_EQ(format, ExportFormat::kPrometheus);  // untouched on failure
  EXPECT_FALSE(parse_export_format("", format));
}

TEST(ExportTest, ResolveConfigPrefersCliOverEnvironment) {
  setenv("VLM_METRICS", "/tmp/env.json", 1);
  setenv("VLM_METRICS_FORMAT", "csv", 1);
  const ExportConfig cli = resolve_export_config("/tmp/cli.json", "prom");
  EXPECT_EQ(cli.path, "/tmp/cli.json");
  EXPECT_EQ(cli.format, ExportFormat::kPrometheus);
  const ExportConfig env = resolve_export_config("", "");
  EXPECT_EQ(env.path, "/tmp/env.json");
  EXPECT_EQ(env.format, ExportFormat::kCsv);
  unsetenv("VLM_METRICS");
  unsetenv("VLM_METRICS_FORMAT");
  const ExportConfig off = resolve_export_config("", "");
  EXPECT_TRUE(off.path.empty());
  EXPECT_EQ(off.format, ExportFormat::kJson);
}

TEST(ExportTest, UnrecognizedFormatWarnsOnceAndKeepsJson) {
  testing::internal::CaptureStderr();
  const ExportConfig first = resolve_export_config("/tmp/x.json", "yaml");
  const ExportConfig second = resolve_export_config("/tmp/x.json", "yaml");
  const std::string warnings = testing::internal::GetCapturedStderr();
  EXPECT_EQ(first.format, ExportFormat::kJson);
  EXPECT_EQ(second.format, ExportFormat::kJson);
  EXPECT_NE(warnings.find("metrics format 'yaml'"), std::string::npos);
  // Warn-once: the second resolve with the same bad value stays silent.
  EXPECT_EQ(warnings.find("yaml"), warnings.rfind("yaml"));
}

namespace {
std::string slurp(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t read;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    out.append(buffer, read);
  }
  std::fclose(file);
  return out;
}
}  // namespace

// The guard backstops the tools' early-error exits: destruction writes a
// plain registry snapshot unless the success path disarmed it first.
TEST(ExportTest, ExportGuardFlushesOnUnwind) {
  const std::string path = ::testing::TempDir() + "/vlm_guard_flush.json";
  std::remove(path.c_str());
  ExportConfig config;
  config.path = path;
  config.format = ExportFormat::kJson;
  {
    MetricsExportGuard guard(config);
    // Simulated early error: scope exits without disarm().
  }
  const std::string written = slurp(path);
  EXPECT_NE(written.find("\"counters\""), std::string::npos);
  EXPECT_EQ(written.back(), '\n');
  std::remove(path.c_str());
}

TEST(ExportTest, DisarmedGuardWritesNothing) {
  const std::string path = ::testing::TempDir() + "/vlm_guard_disarmed.json";
  std::remove(path.c_str());
  ExportConfig config;
  config.path = path;
  config.format = ExportFormat::kJson;
  {
    MetricsExportGuard guard(config);
    guard.disarm();
  }
  EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr);
}

TEST(ExportTest, GuardWithEmptyPathIsANoOp) {
  // No --metrics flag: the guard must not invent an output file.
  { MetricsExportGuard guard(ExportConfig{}); }
  SUCCEED();
}

TEST(ExportTest, GuardHonorsConfiguredFormat) {
  const std::string path = ::testing::TempDir() + "/vlm_guard_format.prom";
  std::remove(path.c_str());
  ExportConfig config;
  config.path = path;
  config.format = ExportFormat::kPrometheus;
  { MetricsExportGuard guard(config); }
  // The global registry always carries at least the pool/span phases by
  // the time any tool runs; for the test it may be empty, so only the
  // format (no JSON braces) is asserted.
  const std::string written = slurp(path);
  EXPECT_EQ(written.find("\"counters\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExportTest, WriteTextFileRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/vlm_export_test_metrics.json";
  EXPECT_TRUE(write_text_file(path, "{\"ok\": true}\n"));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char buffer[64] = {};
  const std::size_t read = std::fread(buffer, 1, sizeof buffer, file);
  std::fclose(file);
  EXPECT_EQ(std::string(buffer, read), "{\"ok\": true}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vlm::obs
