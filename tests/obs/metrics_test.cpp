// Metrics registry: log2 bucket boundaries, quantile interpolation
// against hand-computed oracles, span nesting, and — under the TSan CI
// job — exact totals from concurrent writers (the slabs are relaxed
// atomics; losing an increment would show up here as an off-by-N).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace vlm::obs {
namespace {

TEST(MetricsTest, BucketBoundariesFollowBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of((std::uint64_t{1} << 20) - 1), 20u);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 20), 21u);
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), 64u);
  // Bounds agree with bucket_of: lower is inclusive, upper exclusive.
  for (unsigned b = 1; b < 20; ++b) {
    EXPECT_DOUBLE_EQ(Histogram::bucket_lower(b),
                     static_cast<double>(std::uint64_t{1} << (b - 1)));
    EXPECT_DOUBLE_EQ(Histogram::bucket_upper(b),
                     static_cast<double>(std::uint64_t{1} << b));
  }
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower(0), 0.0);
}

TEST(MetricsTest, SummaryCountsTotalsMinMaxExactly) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t/values");
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.total, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(MetricsTest, QuantilesMatchRankInterpolationOracle) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t/values");
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  const HistogramSummary s = h.summary();
  // Hand-computed: cumulative counts per bucket are 1 (b1), 3, 7, 15,
  // 31, 63 (b6), 100 (b7). p50 target = 50 lands in bucket 6 = [32, 64)
  // holding 32 observations, 19 past the cumulative 31.
  EXPECT_DOUBLE_EQ(s.p50, 32.0 + (50.0 - 31.0) / 32.0 * 32.0);
  // p99 target = 99 lands in bucket 7 = [64, 128) holding 37, 36 past 63.
  EXPECT_DOUBLE_EQ(s.p99, 64.0 + (99.0 - 63.0) / 37.0 * 64.0);
}

// Pins the empty-histogram convention the exporters and stats lines rely
// on: no observations means every summary statistic is exactly 0.0 — not
// NaN, not an interpolated bucket bound. Quantile code that divides by
// the (zero) count or walks buckets unguarded regresses here.
TEST(MetricsTest, EmptySummary) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t/empty");
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.total, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(MetricsTest, QuantileOfAllZerosIsZero) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t/zeros");
  for (int i = 0; i < 10; ++i) h.observe(0);
  const HistogramSummary s = h.summary();
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(MetricsTest, NanosecondHistogramsScaleToSeconds) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t/latency", Unit::kNanoseconds);
  h.observe(2'000'000'000);  // 2 s
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.unit, Unit::kNanoseconds);
  EXPECT_DOUBLE_EQ(s.total, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

TEST(MetricsTest, RegistryReturnsSameHandleForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("t/count");
  Counter& b = registry.counter("t/count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.inc();
  EXPECT_EQ(a.value(), 4u);
  EXPECT_NE(&registry.counter("t/other"), &a);
}

TEST(MetricsTest, SnapshotSortsEverySectionByName) {
  MetricsRegistry registry;
  registry.counter("t/zeta").inc();
  registry.counter("t/alpha").add(2);
  registry.gauge("t/g2").set(2.0);
  registry.gauge("t/g1").set(1.0);
  registry.info("t/isa").set("scalar");
  registry.histogram("t/h").observe(5);
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "t/alpha");
  EXPECT_EQ(snap.counters[0].second, 2u);
  EXPECT_EQ(snap.counters[1].first, "t/zeta");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "t/g1");
  ASSERT_EQ(snap.info.size(), 1u);
  EXPECT_EQ(snap.info[0].second, "scalar");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST(MetricsTest, SpanRecordsOnceAndTracksDepth) {
  MetricsRegistry registry;
  Histogram& phase_hist = registry.histogram("t/phase", Unit::kNanoseconds);
  const unsigned base = Span::depth();
  {
    Span outer(phase_hist);
    EXPECT_EQ(Span::depth(), base + 1);
    {
      Span inner(phase_hist);
      EXPECT_EQ(Span::depth(), base + 2);
    }
    EXPECT_EQ(Span::depth(), base + 1);
    EXPECT_GE(outer.finish(), 0.0);
    EXPECT_EQ(Span::depth(), base);
    EXPECT_DOUBLE_EQ(outer.finish(), 0.0);  // second finish is a no-op
  }
  EXPECT_EQ(phase_hist.summary().count, 2u);  // outer once, inner once
}

// Concurrency suites run under the TSan CI job; exact totals prove no
// increment was lost to a race.
TEST(MetricsConcurrency, CountersSumExactlyAcrossThreads) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("t/concurrent");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kEach = 10'000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kEach; ++i) counter.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kEach);
}

TEST(MetricsConcurrency, HistogramCountAndTotalExactAcrossThreads) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t/concurrent");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kEach = 5'000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kEach; ++i) h.observe(t + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, kThreads * kEach);
  // Sum of t+1 for t in [0, 8) is 36, times kEach observations each.
  EXPECT_DOUBLE_EQ(s.total, 36.0 * static_cast<double>(kEach));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
}

TEST(MetricsConcurrency, SpansFromManyThreadsAllRecord) {
  MetricsRegistry registry;
  Histogram& phase_hist = registry.histogram("t/span", Unit::kNanoseconds);
  constexpr unsigned kThreads = 4;
  constexpr unsigned kEach = 250;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&phase_hist] {
      for (unsigned i = 0; i < kEach; ++i) {
        const Span span(phase_hist);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(phase_hist.summary().count, kThreads * kEach);
}

TEST(MetricsConcurrency, RegistrationRacesResolveToOneHandle) {
  MetricsRegistry registry;
  constexpr unsigned kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter& c = registry.counter("t/raced");
      c.inc();
      seen[t] = &c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (unsigned t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(registry.counter("t/raced").value(), kThreads);
}

}  // namespace
}  // namespace vlm::obs
