// The legacy stats structs (DecodeStats, IngestStats, PipelineStats) are
// thin views over the metrics registry: both are fed the same increments
// at the same sites. These tests pin that equivalence — in a
// single-instance run, the registry delta across one call must equal the
// struct the call returned.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "common/visited_mask.h"
#include "core/od_matrix.h"
#include "core/rsu_state.h"
#include "core/scheme.h"
#include "obs/metrics.h"
#include "traffic/multi_rsu_workload.h"
#include "vcps/simulation.h"

namespace vlm {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

obs::HistogramSummary phase_summary(const char* name) {
  return obs::phase(name).summary();
}

TEST(MetricsStatsView, DecodeStatsEqualRegistryDelta) {
  constexpr std::size_t kRsus = 6;
  constexpr std::size_t kM = 1 << 12;
  std::vector<core::RsuState> states;
  for (std::size_t r = 0; r < kRsus; ++r) {
    core::RsuState state(kM);
    for (std::size_t i = 0; i < kM / 8; ++i) {
      state.record((i * (r + 3) * 2654435761u) % kM);
    }
    states.push_back(std::move(state));
  }

  const std::uint64_t runs_before = counter_value("decode/runs");
  const std::uint64_t pairs_before = counter_value("decode/pairs");
  const std::uint64_t words_before = counter_value("decode/words_scanned");
  const obs::HistogramSummary total_before = phase_summary("decode/total");

  core::DecodeStats stats;
  core::estimate_od_matrix(states, 2, 1.96, 1, &stats);

  EXPECT_EQ(counter_value("decode/runs") - runs_before, 1u);
  EXPECT_EQ(counter_value("decode/pairs") - pairs_before,
            stats.pairs_decoded);
  EXPECT_EQ(counter_value("decode/words_scanned") - words_before,
            stats.words_scanned);
  const obs::HistogramSummary total_after = phase_summary("decode/total");
  EXPECT_EQ(total_after.count - total_before.count, 1u);
  EXPECT_NEAR(total_after.total - total_before.total, stats.wall_seconds,
              1e-6);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  EXPECT_EQ(registry.gauge("decode/workers").value(),
            static_cast<double>(stats.workers));
  EXPECT_EQ(registry.gauge("decode/tile_words").value(),
            static_cast<double>(stats.tile_words));
  EXPECT_EQ(std::string(registry.info("decode/path").value()), stats.path);
  EXPECT_EQ(std::string(registry.info("kernel/isa").value()),
            stats.kernel_isa);
}

// The pruned decode feeds its extra counters and phase span through the
// same sites as the struct fields, so the registry delta must match
// there too — and the prune counters must stay untouched by non-pruned
// runs (the call above added 0 to both).
TEST(MetricsStatsView, PrunedDecodeStatsEqualRegistryDelta) {
  constexpr std::size_t kRsus = 8;
  constexpr std::size_t kM = 1 << 12;
  std::vector<core::RsuState> states;
  for (std::size_t r = 0; r < kRsus; ++r) {
    core::RsuState state(kM);
    for (std::size_t i = 0; i < kM / 8; ++i) {
      state.record((i * (r + 3) * 2654435761u) % kM);
    }
    states.push_back(std::move(state));
  }

  const std::uint64_t pairs_before = counter_value("decode/pairs");
  const std::uint64_t pruned_before = counter_value("decode/pairs_pruned");
  const std::uint64_t survived_before =
      counter_value("decode/pairs_survived");
  const obs::HistogramSummary prune_before = phase_summary("decode/prune");

  core::DecodeOptions options;
  options.mode = core::DecodeMode::kPruned;
  options.prune.sample_stride = 2;
  options.prune.min_volume = 50.0;
  core::DecodeStats stats;
  core::estimate_od_matrix(states, 2, 1.96, options, &stats);

  EXPECT_EQ(counter_value("decode/pairs") - pairs_before,
            stats.pairs_decoded);
  EXPECT_EQ(counter_value("decode/pairs_pruned") - pruned_before,
            stats.pairs_pruned);
  EXPECT_EQ(counter_value("decode/pairs_survived") - survived_before,
            stats.pairs_survived);
  // The pin-aware expectations: a VLM_DECODE override to a non-pruned
  // path legitimately rewrites the mode, leaving the prune counters at
  // zero — the registry deltas above stay exact either way.
  if (const char* pin = std::getenv("VLM_DECODE");
      pin == nullptr || std::string(pin) == "pruned") {
    EXPECT_STREQ(stats.path, "pruned");
    EXPECT_EQ(stats.pairs_pruned + stats.pairs_survived,
              kRsus * (kRsus - 1) / 2);
    const obs::HistogramSummary prune_after = phase_summary("decode/prune");
    EXPECT_EQ(prune_after.count - prune_before.count, 1u);
    EXPECT_NEAR(prune_after.total - prune_before.total, stats.prune_seconds,
                1e-6);
    EXPECT_EQ(std::string(obs::MetricsRegistry::global()
                              .info("decode/path")
                              .value()),
              "pruned");
  }
}

TEST(MetricsStatsView, IngestAndPipelineStatsEqualRegistryDelta) {
  constexpr std::size_t kRsus = 5;
  constexpr std::uint64_t kVehicles = 3'000;
  traffic::MultiRsuConfig workload_config;
  workload_config.rsu_count = kRsus;
  workload_config.vehicle_count = kVehicles;
  workload_config.min_visits = 2;
  workload_config.max_visits = 4;
  workload_config.seed = 23;
  traffic::MultiRsuWorkload workload(workload_config);
  workload.for_each_vehicle(
      [](std::uint64_t, std::span<const std::uint32_t>) {});

  vcps::SimulationConfig config;
  config.seed = 23;
  config.server.scheme = core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
  std::vector<vcps::RsuSite> sites;
  for (std::size_t r = 0; r < kRsus; ++r) {
    sites.push_back(vcps::RsuSite{
        core::RsuId{r + 1},
        static_cast<double>(workload.node_volumes()[r])});
  }
  const vcps::ItineraryProvider itinerary =
      [&workload](std::uint64_t v, std::vector<std::size_t>& positions) {
        thread_local common::VisitedMask visited(0);
        thread_local std::vector<std::uint32_t> rsus;
        if (visited.universe_size() != kRsus) {
          visited = common::VisitedMask(kRsus);
        }
        workload.itinerary(v, visited, rsus);
        positions.assign(rsus.begin(), rsus.end());
      };

  const std::uint64_t vehicles_before = counter_value("ingest/vehicles");
  const std::uint64_t exchanges_before = counter_value("ingest/exchanges");
  const std::uint64_t shards_before = counter_value("ingest/shards_absorbed");
  const std::uint64_t reports_before = counter_value("server/reports_ingested");
  const obs::HistogramSummary ingest_before = phase_summary("period/ingest");
  const obs::HistogramSummary close_before = phase_summary("period/close");

  vcps::VcpsSimulation sim(config, sites);
  sim.begin_period();
  const vcps::IngestStats stats = sim.drive_vehicles(kVehicles, itinerary, 2);
  sim.end_period();

  EXPECT_EQ(counter_value("ingest/vehicles") - vehicles_before,
            stats.vehicles);
  EXPECT_EQ(counter_value("ingest/exchanges") - exchanges_before,
            stats.exchanges);
  // One shard absorb per (worker, RSU).
  EXPECT_EQ(counter_value("ingest/shards_absorbed") - shards_before,
            static_cast<std::uint64_t>(stats.workers) * kRsus);

  const obs::HistogramSummary ingest_after = phase_summary("period/ingest");
  EXPECT_EQ(ingest_after.count - ingest_before.count, 1u);
  EXPECT_NEAR(ingest_after.total - ingest_before.total, stats.seconds, 1e-6);

  // PipelineStats: end_period ingests one report per RSU, and the span
  // covering it records exactly once.
  const vcps::PipelineStats& pipeline = sim.server().stats();
  EXPECT_EQ(pipeline.reports_ingested, kRsus);
  EXPECT_EQ(pipeline.reports_quarantined, 0u);
  EXPECT_EQ(counter_value("server/reports_ingested") - reports_before, kRsus);
  EXPECT_EQ(phase_summary("period/close").count - close_before.count, 1u);
}

}  // namespace
}  // namespace vlm
