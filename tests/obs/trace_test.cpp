// Flight-recorder tracing: disabled emits are discarded, ring
// wrap-around keeps the newest window and counts the dropped prefix,
// the Chrome JSON carries the full ph/ts/dur/pid/tid/name schema, and —
// under the TSan CI job — concurrent emitters against a concurrent
// drain stay race-free.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"

namespace vlm::obs::trace {
namespace {

// Each test owns the process-global trace registry for its duration.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_for_testing(); }
  void TearDown() override { reset_for_testing(); }
};

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST_F(TraceTest, DisabledEmitsAreDiscarded) {
  ASSERT_FALSE(enabled());
  for (int i = 0; i < 100; ++i) {
    const TraceScope scope("test/disabled");
  }
  emit_complete("test/disabled", MonotonicClock::now(), 5);
  const std::vector<ThreadTrace> threads = drain();
  for (const ThreadTrace& t : threads) EXPECT_TRUE(t.events.empty());
}

TEST_F(TraceTest, ScopesLandOnTheCallingThreadsRing) {
  set_enabled(true);
  set_thread_name("trace-test-main");
  {
    const TraceScope outer("test/outer");
    // Force a later start for the inner scope so the sorted order is
    // deterministic even on a coarse monotonic clock.
    const std::uint64_t mark = now_ns();
    while (now_ns() == mark) {
    }
    const TraceScope inner("test/inner");
  }
  emit_complete("test/explicit", MonotonicClock::now(), 42);
  const std::vector<ThreadTrace> threads = drain();
  ASSERT_EQ(threads.size(), 1u);
  const ThreadTrace& t = threads[0];
  EXPECT_EQ(t.thread_name, "trace-test-main");
  EXPECT_EQ(t.dropped, 0u);
  ASSERT_EQ(t.events.size(), 3u);
  // Drained events are sorted by start time: the outer scope started
  // first even though it emitted last (destruction order).
  EXPECT_STREQ(t.events[0].name, "test/outer");
  EXPECT_STREQ(t.events[1].name, "test/inner");
  EXPECT_STREQ(t.events[2].name, "test/explicit");
  EXPECT_GE(t.events[0].duration_ns, t.events[1].duration_ns);
  for (std::size_t i = 1; i < t.events.size(); ++i) {
    EXPECT_GE(t.events[i].start_ns, t.events[i - 1].start_ns);
  }
}

TEST_F(TraceTest, WrapAroundDropsOldestAndCountsThem) {
  set_capacity(16);
  set_enabled(true);
  // 24 old events, then 16 new ones: a 16-slot ring must hold exactly
  // the 16 newest and report the 24 overwritten as dropped.
  for (int i = 0; i < 24; ++i) {
    emit_complete("test/old", MonotonicClock::now(), 1);
  }
  for (int i = 0; i < 16; ++i) {
    emit_complete("test/new", MonotonicClock::now(), 1);
  }
  const std::vector<ThreadTrace> threads = drain();
  ASSERT_EQ(threads.size(), 1u);
  const ThreadTrace& t = threads[0];
  EXPECT_EQ(t.dropped, 24u);
  ASSERT_EQ(t.events.size(), 16u);
  for (const TraceEvent& e : t.events) EXPECT_STREQ(e.name, "test/new");
}

TEST_F(TraceTest, ChromeJsonCarriesFullSchemaForEveryEvent) {
  set_enabled(true);
  set_thread_name("schema-thread");
  {
    const TraceScope scope("test/phase");
  }
  emit_complete("test/other", MonotonicClock::now(), 1'234'567);
  const std::vector<ThreadTrace> threads = drain();
  const std::string json = to_chrome_json(threads);
  // {"traceEvents": [...]} wrapper with one "M" thread-name metadata
  // event plus two "X" complete events, each carrying every field the
  // CI jq gate checks for.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("schema-thread"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), 2u);
  EXPECT_GE(count_occurrences(json, "\"ph\": \"M\""), 1u);
  const std::size_t events = count_occurrences(json, "\"ph\": ");
  EXPECT_EQ(count_occurrences(json, "\"ts\": "), events);
  EXPECT_EQ(count_occurrences(json, "\"dur\": "), events);
  EXPECT_EQ(count_occurrences(json, "\"pid\": "), events);
  EXPECT_EQ(count_occurrences(json, "\"tid\": "), events);
  // Metadata events carry a second "name" inside args, so the count is
  // at least one per event.
  EXPECT_GE(count_occurrences(json, "\"name\": "), events);
}

TEST_F(TraceTest, ResolveTracePathPrefersCliOverEnvironment) {
  ::setenv("VLM_TRACE", "/tmp/from_env.json", 1);
  EXPECT_EQ(resolve_trace_path("/tmp/from_cli.json"), "/tmp/from_cli.json");
  EXPECT_EQ(resolve_trace_path(""), "/tmp/from_env.json");
  ::unsetenv("VLM_TRACE");
  EXPECT_EQ(resolve_trace_path(""), "");
}

// Runs under the TSan CI job: per-thread rings mean concurrent emitters
// never touch each other's slots, and a drain racing the emitters reads
// only published (release-stored) heads.
TEST_F(TraceTest, ConcurrentEmittersKeepExactPerThreadCounts) {
  set_enabled(true);
  constexpr unsigned kThreads = 4;
  constexpr unsigned kEach = 1'000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_thread_name("emitter-" + std::to_string(t));
      for (unsigned i = 0; i < kEach; ++i) {
        const TraceScope scope("test/concurrent");
      }
    });
  }
  // Drain concurrently with the emitters; the result only needs to be
  // race-free, not complete.
  const std::vector<ThreadTrace> racing = drain();
  for (std::thread& t : threads) t.join();
  const std::vector<ThreadTrace> settled = drain();
  std::size_t emitter_rings = 0;
  for (const ThreadTrace& t : settled) {
    if (t.thread_name.rfind("emitter-", 0) != 0) continue;
    ++emitter_rings;
    EXPECT_EQ(t.events.size() + t.dropped, kEach);
  }
  EXPECT_EQ(emitter_rings, kThreads);
}

}  // namespace
}  // namespace vlm::obs::trace
