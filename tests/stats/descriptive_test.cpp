#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vlm::stats {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.push(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingletonGuards) {
  RunningStats s;
  EXPECT_THROW((void)s.mean(), std::invalid_argument);
  EXPECT_THROW((void)s.min(), std::invalid_argument);
  s.push(1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
  EXPECT_THROW((void)s.variance(), std::invalid_argument);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.1 * i * ((i % 3) - 1);
    all.push(x);
    (i % 2 == 0 ? a : b).push(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.push(1.0);
  a.push(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: unchanged
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty lhs: adopt rhs
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.push(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(Quantile, Guards) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::stats
