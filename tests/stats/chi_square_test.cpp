#include "stats/chi_square.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace vlm::stats {
namespace {

TEST(ChiSquare, ZeroForPerfectlyUniformCounts) {
  std::vector<std::uint64_t> counts(10, 100);
  EXPECT_DOUBLE_EQ(chi_square_uniform(counts), 0.0);
}

TEST(ChiSquare, DetectsGrossSkew) {
  std::vector<std::uint64_t> counts(10, 10);
  counts[0] = 910;  // everything piled in one bin
  EXPECT_GT(chi_square_uniform(counts), chi_square_critical_999(9));
}

TEST(ChiSquare, HandComputedStatistic) {
  // observed {30, 10}, expected 20 each: chi2 = 100/20 + 100/20 = 10.
  std::vector<std::uint64_t> counts{30, 10};
  EXPECT_DOUBLE_EQ(chi_square_uniform(counts), 10.0);
}

TEST(ChiSquare, Guards) {
  EXPECT_THROW((void)chi_square_uniform(std::vector<std::uint64_t>{5}),
               std::invalid_argument);
  std::vector<std::uint64_t> zeros(4, 0);
  EXPECT_THROW((void)chi_square_uniform(zeros), std::invalid_argument);
}

TEST(ChiSquareCritical, ApproximatesKnownQuantiles) {
  // chi2_{0.999} quantiles: dof=10 -> 29.59, dof=100 -> 149.45.
  EXPECT_NEAR(chi_square_critical_999(10), 29.59, 1.0);
  EXPECT_NEAR(chi_square_critical_999(100), 149.45, 2.0);
  EXPECT_THROW((void)chi_square_critical_999(0), std::invalid_argument);
}

TEST(ChiSquareCritical, MonotoneInDof) {
  double prev = 0.0;
  for (std::uint64_t dof = 5; dof <= 200; dof += 5) {
    const double crit = chi_square_critical_999(dof);
    EXPECT_GT(crit, prev);
    prev = crit;
  }
}

}  // namespace
}  // namespace vlm::stats
