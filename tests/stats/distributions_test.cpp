#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"

namespace vlm::stats {
namespace {

TEST(BinomialPmf, MatchesHandValues) {
  // B(4, 0.5): pmf = {1,4,6,4,1}/16.
  EXPECT_NEAR(binomial_pmf(4, 0.5, 0), 1.0 / 16, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 0.5, 2), 6.0 / 16, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 0.5, 4), 1.0 / 16, 1e-12);
}

TEST(BinomialPmf, SumsToOne) {
  double total = 0.0;
  for (std::uint64_t k = 0; k <= 30; ++k) total += binomial_pmf(30, 0.37, k);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(BinomialPmf, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 1.0, 10), 1.0);
  EXPECT_THROW((void)binomial_pmf(10, 0.5, 11), std::invalid_argument);
  EXPECT_THROW((void)binomial_pmf(10, 1.5, 5), std::invalid_argument);
}

TEST(BinomialPmf, LargeNStaysFinite) {
  // The privacy model sums pmf terms with n_c up to ~10^5.
  const double p = binomial_pmf(500'000, 0.5, 250'000);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(BinomialMoments, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(binomial_mean(100, 0.3), 30.0);
  EXPECT_DOUBLE_EQ(binomial_variance(100, 0.3), 21.0);
}

TEST(SampleBinomial, ExactSmallNDistribution) {
  vlm::common::Xoshiro256ss rng(7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.push(static_cast<double>(sample_binomial(rng, 20, 0.25)));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.variance(), 3.75, 0.15);
}

TEST(SampleBinomial, NormalApproxLargeN) {
  vlm::common::Xoshiro256ss rng(8);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.push(static_cast<double>(sample_binomial(rng, 100'000, 0.4)));
  }
  EXPECT_NEAR(stats.mean(), 40'000.0, 40'000.0 * 0.003);
  EXPECT_NEAR(stats.stddev(), std::sqrt(24'000.0), std::sqrt(24'000.0) * 0.1);
}

TEST(SampleBinomial, SupportRespected) {
  vlm::common::Xoshiro256ss rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(sample_binomial(rng, 50, 0.9), 50u);
  }
  EXPECT_EQ(sample_binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(sample_binomial(rng, 10, 0.0), 0u);
  EXPECT_EQ(sample_binomial(rng, 10, 1.0), 10u);
}

TEST(LogFactorial, MatchesKnownValues) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
}

}  // namespace
}  // namespace vlm::stats
