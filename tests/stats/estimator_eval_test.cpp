#include "stats/estimator_eval.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace vlm::stats {
namespace {

TEST(EvaluateRatio, RecoversKnownBiasAndSpread) {
  // Trial returns 100 + N(0, 10)-ish noise via a deterministic RNG keyed
  // on the provided seed: bias 0, stddev/true = 0.1.
  auto trial = [](std::uint64_t seed) {
    vlm::common::Xoshiro256ss rng(seed);
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += rng.uniform_double();
    return 100.0 + (sum - 6.0) * 10.0;  // Irwin-Hall ~ N(0,1)
  };
  const RatioReport report = evaluate_ratio(trial, 100.0, 4000, 99);
  EXPECT_EQ(report.trials, 4000u);
  EXPECT_NEAR(report.bias, 0.0, 0.01);
  EXPECT_NEAR(report.stddev_ratio, 0.1, 0.01);
  EXPECT_LT(report.min_ratio, report.mean_ratio);
  EXPECT_GT(report.max_ratio, report.mean_ratio);
}

TEST(EvaluateRatio, SeedsAreDistinctPerTrial) {
  std::vector<std::uint64_t> seen;
  auto trial = [&](std::uint64_t seed) {
    seen.push_back(seed);
    return 1.0;
  };
  (void)evaluate_ratio(trial, 1.0, 16, 5);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(EvaluateRatio, DeterministicForSameBaseSeed) {
  auto trial = [](std::uint64_t seed) {
    return static_cast<double>(seed % 1000);
  };
  const auto a = evaluate_ratio(trial, 500.0, 64, 42);
  const auto b = evaluate_ratio(trial, 500.0, 64, 42);
  EXPECT_DOUBLE_EQ(a.mean_ratio, b.mean_ratio);
  EXPECT_DOUBLE_EQ(a.stddev_ratio, b.stddev_ratio);
}

TEST(EvaluateRatio, Guards) {
  auto trial = [](std::uint64_t) { return 1.0; };
  EXPECT_THROW((void)evaluate_ratio(trial, 1.0, 1, 0), std::invalid_argument);
  EXPECT_THROW((void)evaluate_ratio(trial, 0.0, 10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::stats
