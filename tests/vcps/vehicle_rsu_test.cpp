#include <gtest/gtest.h>

#include "common/bit_array.h"
#include "vcps/rsu.h"
#include "vcps/vehicle.h"

namespace vlm::vcps {
namespace {

struct Fixture {
  core::Encoder encoder{core::EncoderConfig{}};
  CertificateAuthority ca{99};
  core::VehicleIdentity identity{core::VehicleId{1234}, 5678};
  Vehicle vehicle{identity, encoder, ca, /*mac_seed=*/1};
};

TEST(Vehicle, AnswersAuthenticQueries) {
  Fixture f;
  Rsu rsu(core::RsuId{10}, f.ca.issue(core::RsuId{10}, 100), 1 << 10);
  const auto reply = f.vehicle.handle_query(rsu.make_query(/*period=*/1));
  ASSERT_TRUE(reply.has_value());
  EXPECT_LT(reply->bit_index, std::size_t{1} << 10);
  EXPECT_EQ(f.vehicle.queries_answered(), 1u);
  // The reply matches the encoder's deterministic computation.
  EXPECT_EQ(reply->bit_index,
            f.encoder.bit_index(f.identity, core::RsuId{10}, 1 << 10));
}

TEST(Vehicle, FreshOneTimeMacPerExchange) {
  Fixture f;
  Rsu rsu(core::RsuId{10}, f.ca.issue(core::RsuId{10}, 100), 1 << 10);
  const auto a = f.vehicle.handle_query(rsu.make_query(1));
  const auto b = f.vehicle.handle_query(rsu.make_query(1));
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->one_time_mac, b->one_time_mac);
  EXPECT_EQ(a->bit_index, b->bit_index);  // same RSU -> same bit
}

TEST(Vehicle, RejectsForgedCertificate) {
  Fixture f;
  CertificateAuthority rogue(1000);
  Query query{core::RsuId{10}, rogue.issue(core::RsuId{10}, 100), 1 << 10, 1};
  EXPECT_FALSE(f.vehicle.handle_query(query).has_value());
  EXPECT_EQ(f.vehicle.queries_rejected(), 1u);
}

TEST(Vehicle, RejectsExpiredCertificate) {
  Fixture f;
  Query query{core::RsuId{10}, f.ca.issue(core::RsuId{10}, 5), 1 << 10, 6};
  EXPECT_FALSE(f.vehicle.handle_query(query).has_value());
}

TEST(Vehicle, RejectsCertificateSubjectMismatch) {
  Fixture f;
  // Valid certificate for RSU 11 presented by "RSU 10".
  Query query{core::RsuId{10}, f.ca.issue(core::RsuId{11}, 100), 1 << 10, 1};
  EXPECT_FALSE(f.vehicle.handle_query(query).has_value());
}

TEST(Vehicle, RejectsMalformedArraySize) {
  Fixture f;
  Query query{core::RsuId{10}, f.ca.issue(core::RsuId{10}, 100), 1000, 1};
  EXPECT_FALSE(f.vehicle.handle_query(query).has_value());
}

TEST(Rsu, RecordsRepliesIntoState) {
  Fixture f;
  Rsu rsu(core::RsuId{10}, f.ca.issue(core::RsuId{10}, 100), 1 << 10);
  const auto reply = f.vehicle.handle_query(rsu.make_query(1));
  ASSERT_TRUE(reply);
  EXPECT_TRUE(rsu.handle_reply(*reply));
  EXPECT_EQ(rsu.state().counter(), 1u);
  EXPECT_TRUE(rsu.state().bits().test(reply->bit_index));
}

TEST(Rsu, DropsOutOfRangeReplies) {
  Fixture f;
  Rsu rsu(core::RsuId{10}, f.ca.issue(core::RsuId{10}, 100), 1 << 10);
  EXPECT_FALSE(rsu.handle_reply(Reply{1 << 10, 0}));
  EXPECT_EQ(rsu.state().counter(), 0u);
  EXPECT_EQ(rsu.invalid_replies(), 1u);
}

TEST(Rsu, ReportRoundTripsThroughSerialization) {
  Fixture f;
  Rsu rsu(core::RsuId{10}, f.ca.issue(core::RsuId{10}, 100), 1 << 10);
  rsu.handle_reply(Reply{17, 0});
  rsu.handle_reply(Reply{17, 0});
  rsu.handle_reply(Reply{900, 0});
  const RsuReport report = rsu.make_report(/*period=*/1);
  EXPECT_EQ(report.counter, 3u);
  const auto bits = common::BitArray::from_bytes(report.array_size, report.bits);
  EXPECT_TRUE(bits.test(17));
  EXPECT_TRUE(bits.test(900));
  EXPECT_EQ(bits.count_ones(), 2u);
}

TEST(Rsu, BeginPeriodResizesAndClears) {
  Fixture f;
  Rsu rsu(core::RsuId{10}, f.ca.issue(core::RsuId{10}, 100), 1 << 10);
  rsu.handle_reply(Reply{3, 0});
  rsu.begin_period(1 << 12);
  EXPECT_EQ(rsu.state().array_size(), std::size_t{1} << 12);
  EXPECT_EQ(rsu.state().counter(), 0u);
}

TEST(Vehicle, ReplyCarriesNoIdentityBits) {
  // Two different vehicles answering the same query must produce replies
  // whose only difference is the (random) MAC and the (hash-masked) bit
  // index — i.e. the reply struct contains nothing else. This is a
  // compile-time shape check plus a distribution smoke test.
  static_assert(sizeof(Reply) == 2 * sizeof(std::uint64_t),
                "Reply must carry only a bit index and a one-time MAC");
  Fixture f;
  Rsu rsu(core::RsuId{10}, f.ca.issue(core::RsuId{10}, 100), 1 << 10);
  Vehicle other(core::VehicleIdentity{core::VehicleId{1234}, 999}, f.encoder,
                f.ca, 2);
  const auto a = f.vehicle.handle_query(rsu.make_query(1));
  const auto b = other.handle_query(rsu.make_query(1));
  ASSERT_TRUE(a && b);
  // Same *vehicle id*, different private keys: replies unrelated.
  EXPECT_NE(a->one_time_mac, b->one_time_mac);
}

}  // namespace
}  // namespace vlm::vcps
