// Bit-identity of the columnar batch ingest engine (IngestMode::kBatch)
// against the per-vehicle scalar loop — the acceptance gate of the staged
// SoA pipeline. Every suite here fixes the engine explicitly through the
// `mode` parameter, so the assertions hold regardless of what VLM_INGEST
// or the kAuto default resolve to, and regardless of which engine the
// ParallelIngest suites happened to exercise.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "common/visited_mask.h"
#include "core/pair_simulation.h"
#include "core/scheme.h"
#include "traffic/multi_rsu_workload.h"
#include "vcps/ingest_batch.h"
#include "vcps/simulation.h"

namespace vlm::vcps {
namespace {

constexpr std::size_t kRsus = 9;
constexpr std::uint64_t kVehicles = 6'000;

traffic::MultiRsuConfig workload_config() {
  traffic::MultiRsuConfig config;
  config.rsu_count = kRsus;
  config.vehicle_count = kVehicles;
  config.min_visits = 2;
  config.max_visits = 5;
  config.seed = 17;
  return config;
}

SimulationConfig sim_config(const ChannelConfig& channel) {
  SimulationConfig config;
  config.seed = 101;
  config.channel = channel;
  config.server.scheme = core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
  return config;
}

ChannelConfig lossy_channel() {
  ChannelConfig channel;
  channel.query_loss = 0.15;
  channel.reply_loss = 0.1;
  channel.reply_duplicate = 0.08;
  return channel;
}

std::vector<RsuSite> sites_for(traffic::MultiRsuWorkload& workload) {
  workload.for_each_vehicle(
      [](std::uint64_t, std::span<const std::uint32_t>) {});
  std::vector<RsuSite> sites;
  for (std::size_t r = 0; r < kRsus; ++r) {
    sites.push_back(RsuSite{core::RsuId{r + 1},
                            static_cast<double>(workload.node_volumes()[r])});
  }
  return sites;
}

ItineraryProvider provider_for(const traffic::MultiRsuWorkload& workload) {
  return [&workload](std::uint64_t v, std::vector<std::size_t>& positions) {
    thread_local common::VisitedMask visited(0);
    thread_local std::vector<std::uint32_t> rsus;
    if (visited.universe_size() != kRsus) {
      visited = common::VisitedMask(kRsus);
    }
    workload.itinerary(v, visited, rsus);
    positions.assign(rsus.begin(), rsus.end());
  };
}

BulkItineraryProvider bulk_provider_for(
    const traffic::MultiRsuWorkload& workload) {
  return [&workload](std::uint64_t begin, std::uint64_t end,
                     common::UninitVector<std::uint32_t>& positions,
                     std::vector<std::uint64_t>& offsets,
                     std::vector<std::uint64_t>& counts) {
    thread_local common::VisitedMask visited(0);
    if (visited.universe_size() != kRsus) {
      visited = common::VisitedMask(kRsus);
    }
    workload.itineraries(begin, end, visited, positions, offsets, counts);
  };
}

std::unique_ptr<VcpsSimulation> run_with_mode(
    const ChannelConfig& channel, const traffic::MultiRsuWorkload& workload,
    std::span<const RsuSite> sites, unsigned workers, IngestMode mode,
    IngestStats* stats_out = nullptr,
    PipelineMode pipeline = PipelineMode::kAuto) {
  auto sim = std::make_unique<VcpsSimulation>(sim_config(channel), sites);
  sim->begin_period();
  const IngestStats stats = sim->drive_vehicles(
      kVehicles, provider_for(workload), workers, mode, pipeline);
  EXPECT_EQ(stats.vehicles, kVehicles);
  if (stats_out != nullptr) *stats_out = stats;
  sim->end_period();
  return sim;
}

void expect_reports_identical(const VcpsSimulation& a,
                              const VcpsSimulation& b) {
  ASSERT_EQ(a.rsu_count(), b.rsu_count());
  for (std::size_t r = 0; r < a.rsu_count(); ++r) {
    const RsuReport ra = a.rsu(r).make_report(a.current_period());
    const RsuReport rb = b.rsu(r).make_report(b.current_period());
    EXPECT_EQ(ra.counter, rb.counter) << "RSU " << r;
    EXPECT_EQ(ra.array_size, rb.array_size) << "RSU " << r;
    EXPECT_EQ(ra.bits, rb.bits) << "RSU " << r;
  }
}

TEST(BatchIngest, BitIdenticalToScalarEngineAcrossWorkerCountsLossyChannel) {
  // The whole point of the refactor: for every worker count, the staged
  // columnar pipeline must land exactly the bits, counters, exchange
  // counts, AND channel tallies of the per-vehicle loop under a lossy +
  // duplicating channel.
  traffic::MultiRsuWorkload workload(workload_config());
  const std::vector<RsuSite> sites = sites_for(workload);
  const ChannelConfig channel = lossy_channel();

  for (const unsigned workers : {1u, 2u, 4u, 7u}) {
    IngestStats scalar_stats, batch_stats;
    const auto scalar = run_with_mode(channel, workload, sites, workers,
                                      IngestMode::kScalar, &scalar_stats);
    const auto batch = run_with_mode(channel, workload, sites, workers,
                                     IngestMode::kBatch, &batch_stats);
    EXPECT_STREQ(scalar_stats.path, "scalar");
    EXPECT_STREQ(batch_stats.path, "batch");
    EXPECT_EQ(batch_stats.exchanges, scalar_stats.exchanges)
        << "workers " << workers;
    expect_reports_identical(*scalar, *batch);
    EXPECT_EQ(batch->channel().queries_lost(), scalar->channel().queries_lost())
        << "workers " << workers;
    EXPECT_EQ(batch->channel().replies_lost(), scalar->channel().replies_lost())
        << "workers " << workers;
    EXPECT_EQ(batch->channel().replies_duplicated(),
              scalar->channel().replies_duplicated())
        << "workers " << workers;
  }
}

TEST(BatchIngest, MatchesSerialDriveVehicleLoopWhenLossFree) {
  // Loss-free channel: no randomness on any path, so the batch engine
  // must also match the one-vehicle-at-a-time serial API exactly.
  traffic::MultiRsuWorkload workload(workload_config());
  const std::vector<RsuSite> sites = sites_for(workload);

  auto serial = std::make_unique<VcpsSimulation>(sim_config({}), sites);
  serial->begin_period();
  common::VisitedMask visited(kRsus);
  std::vector<std::uint32_t> rsus;
  std::vector<std::size_t> positions;
  for (std::uint64_t v = 0; v < kVehicles; ++v) {
    workload.itinerary(v, visited, rsus);
    positions.assign(rsus.begin(), rsus.end());
    serial->drive_vehicle(positions);
  }
  serial->end_period();

  for (const unsigned workers : {1u, 4u}) {
    const auto batch = run_with_mode({}, workload, sites, workers,
                                     IngestMode::kBatch);
    expect_reports_identical(*serial, *batch);
  }
}

TEST(BatchIngest, PipelineSchedulesBitIdenticalAcrossWorkersLossyChannel) {
  // The overlap schedule only double-buffers when a worker slice spans
  // more than one sub-slice (8192 vehicles), so this suite drives 20000
  // vehicles: 1 worker runs 3 sub-slices, 2 workers run 2 each, 4 and 7
  // degenerate to single-sub-slice slices — every epilogue/prologue
  // shape. For each, both schedules must land the scalar engine's exact
  // bits, counters, exchange counts, and channel tallies.
  traffic::MultiRsuConfig config = workload_config();
  config.vehicle_count = 20'000;
  traffic::MultiRsuWorkload workload(config);
  const std::vector<RsuSite> sites = sites_for(workload);
  const ChannelConfig channel = lossy_channel();

  const auto run = [&](unsigned workers, IngestMode mode,
                       PipelineMode pipeline, IngestStats* stats_out) {
    auto sim = std::make_unique<VcpsSimulation>(sim_config(channel), sites);
    sim->begin_period();
    const IngestStats stats = sim->drive_vehicles(
        config.vehicle_count, provider_for(workload), workers, mode, pipeline);
    if (stats_out != nullptr) *stats_out = stats;
    sim->end_period();
    return sim;
  };

  for (const unsigned workers : {1u, 2u, 4u, 7u}) {
    IngestStats scalar_stats;
    const auto scalar = run(workers, IngestMode::kScalar, PipelineMode::kAuto,
                            &scalar_stats);
    EXPECT_STREQ(scalar_stats.pipeline, "off");  // scalar engine never overlaps
    for (const PipelineMode pipeline :
         {PipelineMode::kOff, PipelineMode::kOverlap}) {
      IngestStats batch_stats;
      const auto batch = run(workers, IngestMode::kBatch, pipeline,
                             &batch_stats);
      EXPECT_STREQ(batch_stats.pipeline,
                   pipeline == PipelineMode::kOverlap ? "overlap" : "off")
          << "workers " << workers;
      EXPECT_EQ(batch_stats.exchanges, scalar_stats.exchanges)
          << "workers " << workers;
      expect_reports_identical(*scalar, *batch);
      EXPECT_EQ(batch->channel().queries_lost(),
                scalar->channel().queries_lost())
          << "workers " << workers;
      EXPECT_EQ(batch->channel().replies_lost(),
                scalar->channel().replies_lost())
          << "workers " << workers;
      EXPECT_EQ(batch->channel().replies_duplicated(),
                scalar->channel().replies_duplicated())
          << "workers " << workers;
    }
  }
}

TEST(BatchIngest, StageSecondsPopulatedOnBatchPathOnly) {
  traffic::MultiRsuWorkload workload(workload_config());
  const std::vector<RsuSite> sites = sites_for(workload);

  IngestStats batch_stats;
  run_with_mode(lossy_channel(), workload, sites, 2, IngestMode::kBatch,
                &batch_stats);
  // Wall clocks tick: with 6000 vehicles every stage measures > 0, and
  // the default schedule (kAuto -> overlap) runs the sub-slice loop.
  EXPECT_GT(batch_stats.materialize_seconds, 0.0);
  EXPECT_GT(batch_stats.hash_seconds, 0.0);
  EXPECT_GT(batch_stats.channel_seconds, 0.0);
  EXPECT_GT(batch_stats.scatter_seconds, 0.0);
  EXPECT_STREQ(batch_stats.pipeline, "overlap");
  EXPECT_GT(batch_stats.pipeline_seconds, 0.0);

  IngestStats off_stats;
  run_with_mode(lossy_channel(), workload, sites, 2, IngestMode::kBatch,
                &off_stats, PipelineMode::kOff);
  EXPECT_STREQ(off_stats.pipeline, "off");
  EXPECT_EQ(off_stats.pipeline_seconds, 0.0);

  IngestStats scalar_stats;
  run_with_mode(lossy_channel(), workload, sites, 2, IngestMode::kScalar,
                &scalar_stats);
  EXPECT_EQ(scalar_stats.materialize_seconds, 0.0);
  EXPECT_EQ(scalar_stats.hash_seconds, 0.0);
  EXPECT_EQ(scalar_stats.channel_seconds, 0.0);
  EXPECT_EQ(scalar_stats.scatter_seconds, 0.0);
  EXPECT_EQ(scalar_stats.pipeline_seconds, 0.0);
}

TEST(BatchIngest, MaterializationReproducesSeedConfigItineraries) {
  // Golden snapshot of stage 1: materializing the seed-config workload
  // must bucket exactly the tuples a direct itinerary walk produces —
  // same vehicle numbers, same masked keys, same per-RSU order.
  traffic::MultiRsuWorkload workload(workload_config());
  const BulkItineraryProvider provider = bulk_provider_for(workload);
  constexpr std::uint64_t kSeed = 101;
  constexpr std::uint64_t kBase = 3;  // mid-period offsets must carry over
  constexpr std::size_t kSlice = 500;

  ExchangeColumns columns;
  materialize_exchanges(kSeed, kBase, 0, kSlice, provider, kRsus,
                        /*with_vehicle_numbers=*/true, columns);

  std::vector<std::vector<std::uint64_t>> want_keys(kRsus);
  std::vector<std::vector<std::uint64_t>> want_numbers(kRsus);
  common::VisitedMask visited(kRsus);
  std::vector<std::uint32_t> rsus;
  std::uint64_t tuples = 0;
  for (std::size_t v = 0; v < kSlice; ++v) {
    const std::uint64_t vehicle_number = kBase + v + 1;
    const core::VehicleIdentity identity =
        core::synthetic_vehicle(kSeed, vehicle_number);
    workload.itinerary(v, visited, rsus);
    for (const std::uint32_t position : rsus) {
      want_keys[position].push_back(identity.masked_key());
      want_numbers[position].push_back(vehicle_number);
      ++tuples;
    }
  }
  ASSERT_GT(tuples, kSlice);  // min_visits = 2 guarantees multi-visit

  ASSERT_EQ(columns.buckets.size(), kRsus);
  for (std::size_t r = 0; r < kRsus; ++r) {
    const RsuExchangeBucket& bucket = columns.buckets[r];
    EXPECT_EQ(std::vector<std::uint64_t>(bucket.masked_keys.begin(),
                                         bucket.masked_keys.end()),
              want_keys[r])
        << "RSU " << r;
    EXPECT_EQ(std::vector<std::uint64_t>(bucket.vehicle_numbers.begin(),
                                         bucket.vehicle_numbers.end()),
              want_numbers[r])
        << "RSU " << r;
    EXPECT_TRUE(bucket.bit_indices.empty());
    EXPECT_TRUE(bucket.deliveries.empty());
  }
}

TEST(BatchIngest, ColumnsResetClearsStaleTuples) {
  // Reuse across periods: a second materialization of a shorter slice
  // must not leak tuples from the first.
  traffic::MultiRsuWorkload workload(workload_config());
  const BulkItineraryProvider provider = bulk_provider_for(workload);
  ExchangeColumns columns;
  materialize_exchanges(101, 0, 0, 400, provider, kRsus,
                        /*with_vehicle_numbers=*/true, columns);
  std::size_t first = 0;
  for (const RsuExchangeBucket& bucket : columns.buckets) {
    first += bucket.masked_keys.size();
  }
  materialize_exchanges(101, 0, 0, 40, provider, kRsus,
                        /*with_vehicle_numbers=*/true, columns);
  std::size_t second = 0;
  for (const RsuExchangeBucket& bucket : columns.buckets) {
    second += bucket.masked_keys.size();
    EXPECT_EQ(bucket.masked_keys.size(), bucket.vehicle_numbers.size());
  }
  EXPECT_LT(second, first);
}

TEST(BatchIngest, BulkProviderMatchesPerVehicleProvider) {
  // The native CSR bulk form and the adapted per-vehicle form must be
  // indistinguishable end to end — same reports, same exchange counts,
  // same channel tallies — on both engines.
  traffic::MultiRsuWorkload workload(workload_config());
  const std::vector<RsuSite> sites = sites_for(workload);
  const ChannelConfig channel = lossy_channel();

  for (const IngestMode mode : {IngestMode::kScalar, IngestMode::kBatch}) {
    IngestStats per_vehicle_stats;
    const auto per_vehicle = run_with_mode(channel, workload, sites, 2, mode,
                                           &per_vehicle_stats);
    auto bulk = std::make_unique<VcpsSimulation>(sim_config(channel), sites);
    bulk->begin_period();
    const IngestStats bulk_stats =
        bulk->drive_vehicles(kVehicles, bulk_provider_for(workload), 2, mode);
    bulk->end_period();
    EXPECT_EQ(bulk_stats.exchanges, per_vehicle_stats.exchanges);
    expect_reports_identical(*per_vehicle, *bulk);
    EXPECT_EQ(bulk->channel().queries_lost(),
              per_vehicle->channel().queries_lost());
    EXPECT_EQ(bulk->channel().replies_lost(),
              per_vehicle->channel().replies_lost());
    EXPECT_EQ(bulk->channel().replies_duplicated(),
              per_vehicle->channel().replies_duplicated());
  }
}

}  // namespace
}  // namespace vlm::vcps
