#include "vcps/central_server.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/bit_array.h"

namespace vlm::vcps {
namespace {

CentralServerConfig vlm_config() {
  CentralServerConfig config;
  config.scheme = core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
  config.history_alpha = 0.5;
  return config;
}

RsuReport make_report(core::RsuId id, std::uint64_t period,
                      std::uint64_t counter, std::size_t m,
                      std::initializer_list<std::size_t> ones) {
  common::BitArray bits(m);
  for (std::size_t i : ones) bits.set(i);
  return RsuReport{id, period, counter, m, bits.to_bytes()};
}

TEST(CentralServer, SizesFromHistoryUnderVlmPolicy) {
  CentralServer server(vlm_config());
  server.register_rsu(core::RsuId{1}, 451'000.0);
  server.register_rsu(core::RsuId{2}, 28'000.0);
  EXPECT_EQ(server.array_size_for(core::RsuId{1}), std::size_t{1} << 22);
  EXPECT_EQ(server.array_size_for(core::RsuId{2}), std::size_t{1} << 18);
}

TEST(CentralServer, FixedSizeUnderFbmPolicy) {
  CentralServerConfig config = vlm_config();
  config.scheme = core::make_fbm_scheme({.s = 2, .array_size = 1 << 17});
  CentralServer server(config);
  server.register_rsu(core::RsuId{1}, 451'000.0);
  EXPECT_EQ(server.array_size_for(core::RsuId{1}), std::size_t{1} << 17);
}

TEST(CentralServer, HistoryUpdatesByEwma) {
  CentralServer server(vlm_config());  // alpha = 0.5
  server.register_rsu(core::RsuId{1}, 1000.0);
  server.begin_period(1);
  server.ingest(make_report(core::RsuId{1}, 1, 2000, 1 << 13, {1, 2, 3}));
  EXPECT_DOUBLE_EQ(server.history_volume(core::RsuId{1}), 1500.0);
}

TEST(CentralServer, RejectsBadReports) {
  CentralServer server(vlm_config());
  server.register_rsu(core::RsuId{1}, 1000.0);
  server.begin_period(1);
  // Unregistered RSU.
  EXPECT_THROW(server.ingest(make_report(core::RsuId{9}, 1, 10, 1 << 13, {1})),
               std::invalid_argument);
  // Wrong period.
  EXPECT_THROW(server.ingest(make_report(core::RsuId{1}, 2, 10, 1 << 13, {1})),
               std::invalid_argument);
  // Byte buffer length mismatch.
  RsuReport bad = make_report(core::RsuId{1}, 1, 10, 1 << 13, {1});
  bad.bits.pop_back();
  EXPECT_THROW(server.ingest(bad), std::invalid_argument);
  // Duplicate.
  server.ingest(make_report(core::RsuId{1}, 1, 10, 1 << 13, {1}));
  EXPECT_THROW(server.ingest(make_report(core::RsuId{1}, 1, 10, 1 << 13, {1})),
               std::invalid_argument);
}

TEST(CentralServer, PeriodsMustAdvance) {
  CentralServer server(vlm_config());
  server.register_rsu(core::RsuId{1}, 1000.0);
  server.begin_period(5);
  server.ingest(make_report(core::RsuId{1}, 5, 10, 1 << 13, {1}));
  EXPECT_THROW(server.begin_period(5), std::invalid_argument);
  EXPECT_NO_THROW(server.begin_period(6));
}

TEST(CentralServer, EstimatesFromReports) {
  CentralServer server(vlm_config());
  server.register_rsu(core::RsuId{1}, 1000.0);
  server.register_rsu(core::RsuId{2}, 1000.0);
  server.begin_period(1);
  // Two small hand-made reports; the estimate just needs to be finite and
  // the pipeline to run (estimator accuracy is covered in core tests).
  server.ingest(make_report(core::RsuId{1}, 1, 3, 1 << 13, {1, 2, 3}));
  server.ingest(make_report(core::RsuId{2}, 1, 3, 1 << 13, {1, 5, 6}));
  const auto estimate = server.estimate(core::RsuId{1}, core::RsuId{2});
  EXPECT_GE(estimate.n_c_hat, 0.0);
  EXPECT_EQ(estimate.m_y, std::size_t{1} << 13);
}

TEST(CentralServer, EstimateRequiresBothReports) {
  CentralServer server(vlm_config());
  server.register_rsu(core::RsuId{1}, 1000.0);
  server.register_rsu(core::RsuId{2}, 1000.0);
  server.begin_period(1);
  server.ingest(make_report(core::RsuId{1}, 1, 3, 1 << 13, {1, 2, 3}));
  EXPECT_THROW((void)server.estimate(core::RsuId{1}, core::RsuId{2}),
               std::invalid_argument);
  EXPECT_THROW((void)server.estimate(core::RsuId{1}, core::RsuId{1}),
               std::invalid_argument);
}

TEST(CentralServer, RejectsInconsistentCounterBitPatterns) {
  CentralServer server(vlm_config());
  server.register_rsu(core::RsuId{1}, 1000.0);
  server.register_rsu(core::RsuId{2}, 1000.0);
  server.begin_period(1);
  // Counter 1 but two bits set: impossible; rejected at estimate time
  // when the state is rebuilt.
  server.ingest(make_report(core::RsuId{1}, 1, 1, 1 << 13, {1, 2}));
  server.ingest(make_report(core::RsuId{2}, 1, 3, 1 << 13, {1, 5, 6}));
  EXPECT_THROW((void)server.estimate(core::RsuId{1}, core::RsuId{2}),
               std::invalid_argument);
}

TEST(CentralServer, IntervalEstimateBracketsPointEstimate) {
  CentralServer server(vlm_config());
  server.register_rsu(core::RsuId{1}, 1000.0);
  server.register_rsu(core::RsuId{2}, 1000.0);
  server.begin_period(1);
  server.ingest(make_report(core::RsuId{1}, 1, 200, 1 << 13,
                            {1, 2, 3, 40, 41, 42, 100, 200}));
  server.ingest(make_report(core::RsuId{2}, 1, 150, 1 << 13,
                            {1, 2, 3, 99, 500, 600}));
  const auto point = server.estimate(core::RsuId{1}, core::RsuId{2});
  const auto interval =
      server.estimate_with_interval(core::RsuId{1}, core::RsuId{2});
  EXPECT_DOUBLE_EQ(interval.n_c_hat, point.n_c_hat);
  EXPECT_LE(interval.lower, interval.n_c_hat);
  EXPECT_GE(interval.upper, interval.n_c_hat);
}

TEST(CentralServer, MatrixCoversAllReportedPairs) {
  CentralServer server(vlm_config());
  for (std::uint64_t id = 1; id <= 3; ++id) {
    server.register_rsu(core::RsuId{id}, 1000.0);
  }
  server.begin_period(1);
  server.ingest(make_report(core::RsuId{1}, 1, 3, 1 << 13, {1, 2, 3}));
  server.ingest(make_report(core::RsuId{2}, 1, 3, 1 << 13, {1, 5, 6}));
  server.ingest(make_report(core::RsuId{3}, 1, 2, 1 << 13, {7, 8}));
  const auto order = server.matrix_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.front(), core::RsuId{1});
  const auto matrix = server.estimate_matrix();
  EXPECT_EQ(matrix.rsu_count(), 3u);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a + 1; b < 3; ++b) {
      EXPECT_GE(matrix.at(a, b).n_c_hat, 0.0);
    }
  }
}

TEST(CentralServer, MatrixNeedsTwoReports) {
  CentralServer server(vlm_config());
  server.register_rsu(core::RsuId{1}, 1000.0);
  server.begin_period(1);
  server.ingest(make_report(core::RsuId{1}, 1, 3, 1 << 13, {1, 2, 3}));
  EXPECT_THROW((void)server.estimate_matrix(), std::invalid_argument);
}

TEST(CentralServer, Guards) {
  CentralServerConfig config = vlm_config();
  config.history_alpha = 0.0;
  EXPECT_THROW(CentralServer{config}, std::invalid_argument);
  CentralServer server(vlm_config());
  EXPECT_THROW((void)server.history_volume(core::RsuId{1}),
               std::invalid_argument);
  server.register_rsu(core::RsuId{1}, 10.0);
  EXPECT_THROW(server.register_rsu(core::RsuId{1}, 10.0),
               std::invalid_argument);
  EXPECT_THROW(server.register_rsu(core::RsuId{2}, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlm::vcps
