#include "vcps/archive.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/bit_array.h"

namespace vlm::vcps {
namespace {

PeriodArchive sample_archive() {
  PeriodArchive archive;
  archive.period = 42;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    common::BitArray bits(1 << 10);
    bits.set(id * 7);
    bits.set(id * 13);
    RsuReport report;
    report.rsu = core::RsuId{id};
    report.period = 42;
    report.counter = id * 100;
    report.array_size = bits.size();
    report.bits = bits.to_bytes();
    archive.reports.push_back(std::move(report));
  }
  return archive;
}

TEST(Archive, RoundTripsThroughStream) {
  const PeriodArchive original = sample_archive();
  std::stringstream stream;
  write_archive(stream, original);
  const PeriodArchive restored = read_archive(stream);
  EXPECT_EQ(restored.period, 42u);
  ASSERT_EQ(restored.reports.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(restored.reports[i].rsu, original.reports[i].rsu);
    EXPECT_EQ(restored.reports[i].counter, original.reports[i].counter);
    EXPECT_EQ(restored.reports[i].array_size, original.reports[i].array_size);
    EXPECT_EQ(restored.reports[i].bits, original.reports[i].bits);
    EXPECT_EQ(restored.reports[i].period, 42u);
  }
}

TEST(Archive, RoundTripsThroughFile) {
  const std::string path = testing::TempDir() + "/vlm_archive_test.bin";
  save_archive(path, sample_archive());
  const PeriodArchive restored = load_archive(path);
  EXPECT_EQ(restored.reports.size(), 3u);
}

TEST(Archive, EmptyPeriodIsValid) {
  PeriodArchive empty;
  empty.period = 7;
  std::stringstream stream;
  write_archive(stream, empty);
  const PeriodArchive restored = read_archive(stream);
  EXPECT_EQ(restored.period, 7u);
  EXPECT_TRUE(restored.reports.empty());
}

TEST(Archive, DetectsTruncation) {
  std::stringstream stream;
  write_archive(stream, sample_archive());
  std::string data = stream.str();
  data.resize(data.size() - 20);
  std::stringstream truncated(data);
  EXPECT_THROW((void)read_archive(truncated), std::runtime_error);
}

TEST(Archive, DetectsBitFlips) {
  std::stringstream stream;
  write_archive(stream, sample_archive());
  std::string data = stream.str();
  // Flip one payload byte somewhere in the middle.
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
  std::stringstream corrupted(data);
  EXPECT_THROW((void)read_archive(corrupted), std::runtime_error);
}

TEST(Archive, RejectsForeignData) {
  std::stringstream junk("this is not an archive at all, sorry");
  EXPECT_THROW((void)read_archive(junk), std::runtime_error);
}

TEST(Archive, RejectsImplausibleArraySize) {
  // Handcraft a header with a non-power-of-two array size by corrupting
  // a valid archive at the size field and fixing nothing else: the size
  // check fires before the checksum.
  PeriodArchive archive = sample_archive();
  archive.reports.resize(1);
  std::stringstream stream;
  write_archive(stream, archive);
  std::string data = stream.str();
  // Layout: magic(4) version(4) period(8) count(4) rsu(8) counter(8)
  // -> array size at offset 36.
  data[36] = 0x03;
  std::stringstream corrupted(data);
  EXPECT_THROW((void)read_archive(corrupted), std::runtime_error);
}

TEST(Archive, WriteRejectsInconsistentReports) {
  PeriodArchive archive = sample_archive();
  archive.reports[0].period = 43;  // mismatched period
  std::stringstream stream;
  EXPECT_THROW(write_archive(stream, archive), std::invalid_argument);

  archive = sample_archive();
  archive.reports[0].bits.pop_back();  // byte count mismatch
  EXPECT_THROW(write_archive(stream, archive), std::invalid_argument);
}

TEST(Archive, MissingFilesThrow) {
  EXPECT_THROW((void)load_archive("/nonexistent/path.bin"),
               std::runtime_error);
  EXPECT_THROW(save_archive("/nonexistent-dir/x.bin", sample_archive()),
               std::runtime_error);
}

}  // namespace
}  // namespace vlm::vcps
