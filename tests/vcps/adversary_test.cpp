#include "vcps/adversary.h"

#include <gtest/gtest.h>

#include <array>

#include "vcps/central_server.h"
#include "vcps/simulation.h"

namespace vlm::vcps {
namespace {

CentralServerConfig defended_config() {
  CentralServerConfig config;
  config.scheme = core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
  config.validation.enabled = true;
  config.validation.tolerance_sigmas = 6.0;
  config.validation.max_history_ratio = 4.0;
  config.validation.min_history_for_ratio_check = 100.0;
  return config;
}

RsuReport run_attacked_period(std::uint64_t honest, std::uint64_t flood,
                              std::size_t paint_stride, std::size_t m) {
  core::Encoder enc(core::EncoderConfig{});
  CertificateAuthority ca(1);
  Rsu rsu(core::RsuId{5}, ca.issue(core::RsuId{5}, 100), m);
  for (std::uint64_t i = 0; i < honest; ++i) {
    core::VehicleIdentity v{core::VehicleId{common::mix64(i * 3 + 1)},
                            common::mix64(i * 5 + 2)};
    rsu.handle_reply(Reply{enc.bit_index(v, core::RsuId{5}, m), 0});
  }
  Adversary adversary(99);
  if (flood > 0) adversary.flood(rsu, flood);
  if (paint_stride > 0) adversary.paint(rsu, paint_stride);
  return rsu.make_report(1);
}

TEST(Adversary, FloodInflatesCounterPlausibly) {
  // Flooded bits are uniform: the bit-level validator CANNOT tell (this
  // is the privacy property), so the zero-count check stays green...
  const RsuReport report = run_attacked_period(5'000, 5'000, 0, 1 << 16);
  EXPECT_EQ(report.counter, 10'000u);
  core::ReportValidator validator(6.0);
  const auto bits = common::BitArray::from_bytes(report.array_size, report.bits);
  EXPECT_EQ(validator.assess(report.counter, report.array_size,
                             bits.count_zeros()).verdict,
            core::ReportVerdict::kPlausible);
}

TEST(Adversary, FloodIsCaughtByHistoryBound) {
  // ...but the volume anomaly against history quarantines it.
  CentralServer server(defended_config());
  server.register_rsu(core::RsuId{5}, 5'000.0);
  server.begin_period(1);
  const RsuReport flooded = run_attacked_period(5'000, 45'000, 0, 1 << 16);
  EXPECT_EQ(server.ingest(flooded), QuarantineReason::kVolumeAnomaly);
  EXPECT_EQ(server.reports_received(), 0u);
  EXPECT_EQ(server.quarantined_count(), 1u);
  EXPECT_EQ(server.quarantine_reason(core::RsuId{5}),
            QuarantineReason::kVolumeAnomaly);
  // History must NOT have been poisoned by the quarantined counter.
  EXPECT_DOUBLE_EQ(server.history_volume(core::RsuId{5}), 5'000.0);
}

TEST(Adversary, PaintIsCaughtByZeroCountCheck) {
  CentralServer server(defended_config());
  server.register_rsu(core::RsuId{5}, 5'000.0);
  server.begin_period(1);
  const RsuReport painted = run_attacked_period(5'000, 0, 8, 1 << 16);
  EXPECT_EQ(server.ingest(painted), QuarantineReason::kZeroCountAnomaly);
  EXPECT_EQ(server.quarantine_reason(core::RsuId{5}),
            QuarantineReason::kZeroCountAnomaly);
}

TEST(Adversary, HonestReportPassesTheDefendedServer) {
  CentralServer server(defended_config());
  server.register_rsu(core::RsuId{5}, 5'000.0);
  server.begin_period(1);
  const RsuReport honest = run_attacked_period(5'000, 0, 0, 1 << 16);
  EXPECT_EQ(server.ingest(honest), QuarantineReason::kNone);
  EXPECT_EQ(server.reports_received(), 1u);
  EXPECT_EQ(server.quarantined_count(), 0u);
}

TEST(Adversary, OutageIsAlsoAVolumeAnomaly) {
  CentralServer server(defended_config());
  server.register_rsu(core::RsuId{5}, 5'000.0);
  server.begin_period(1);
  const RsuReport quiet = run_attacked_period(100, 0, 0, 1 << 16);
  EXPECT_EQ(server.ingest(quiet), QuarantineReason::kVolumeAnomaly);
}

TEST(Adversary, QuarantineClearsAtNextPeriod) {
  CentralServer server(defended_config());
  server.register_rsu(core::RsuId{5}, 5'000.0);
  server.begin_period(1);
  RsuReport painted = run_attacked_period(5'000, 0, 8, 1 << 16);
  server.ingest(painted);
  EXPECT_EQ(server.quarantined_count(), 1u);
  server.begin_period(2);
  EXPECT_EQ(server.quarantined_count(), 0u);
  RsuReport honest = run_attacked_period(5'000, 0, 0, 1 << 16);
  honest.period = 2;
  EXPECT_EQ(server.ingest(honest), QuarantineReason::kNone);
}

TEST(Adversary, PaintStrideGuards) {
  core::Encoder enc(core::EncoderConfig{});
  CertificateAuthority ca(1);
  Rsu rsu(core::RsuId{5}, ca.issue(core::RsuId{5}, 100), 1 << 10);
  Adversary adversary(1);
  EXPECT_THROW((void)adversary.paint(rsu, 0), std::invalid_argument);
  EXPECT_EQ(adversary.paint(rsu, 2), (std::uint64_t{1} << 10) / 2);
}

}  // namespace
}  // namespace vlm::vcps
