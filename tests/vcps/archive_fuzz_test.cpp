// Corruption sweep for the archive reader: every single-byte mutation of
// a valid archive must either be rejected (the expected case) or decode
// to a structurally valid archive — never crash, hang, or return
// something inconsistent. Truncations at every length must be rejected.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/bit_array.h"
#include "common/rng.h"
#include "vcps/archive.h"

namespace vlm::vcps {
namespace {

std::string valid_archive_bytes() {
  PeriodArchive archive;
  archive.period = 9;
  for (std::uint64_t id = 1; id <= 2; ++id) {
    common::BitArray bits(256);
    bits.set(3 * id);
    bits.set(100 + id);
    RsuReport report;
    report.rsu = core::RsuId{id};
    report.period = 9;
    report.counter = 2 + id;
    report.array_size = bits.size();
    report.bits = bits.to_bytes();
    archive.reports.push_back(std::move(report));
  }
  std::stringstream stream;
  write_archive(stream, archive);
  return stream.str();
}

TEST(ArchiveFuzz, EverySingleByteFlipIsHandled) {
  const std::string valid = valid_archive_bytes();
  int rejected = 0, accepted = 0;
  for (std::size_t offset = 0; offset < valid.size(); ++offset) {
    for (int flip : {0x01, 0x80, 0xFF}) {
      std::string mutated = valid;
      mutated[offset] = static_cast<char>(mutated[offset] ^ flip);
      std::stringstream stream(mutated);
      try {
        const PeriodArchive archive = read_archive(stream);
        // Accepted: must still be structurally sound (this can only
        // happen if the flip cancelled out, which XOR never does — but a
        // future format change could make benign bytes possible, so
        // validate rather than assert unreachable).
        for (const RsuReport& r : archive.reports) {
          EXPECT_EQ(r.bits.size(), (r.array_size + 7) / 8);
        }
        ++accepted;
      } catch (const std::runtime_error&) {
        ++rejected;
      }
    }
  }
  // With a chained digest over all bytes, every flip must be caught.
  EXPECT_EQ(accepted, 0);
  EXPECT_GT(rejected, 0);
}

TEST(ArchiveFuzz, EveryTruncationIsRejected) {
  const std::string valid = valid_archive_bytes();
  for (std::size_t keep = 0; keep < valid.size(); ++keep) {
    std::stringstream stream(valid.substr(0, keep));
    EXPECT_THROW((void)read_archive(stream), std::runtime_error)
        << "truncation at " << keep << " bytes";
  }
}

TEST(ArchiveFuzz, RandomGarbageIsRejectedQuickly) {
  common::Xoshiro256ss rng(17);
  for (int round = 0; round < 200; ++round) {
    std::string garbage(8 + rng.uniform(256), '\0');
    for (char& ch : garbage) {
      ch = static_cast<char>(rng.uniform(256));
    }
    std::stringstream stream(garbage);
    EXPECT_THROW((void)read_archive(stream), std::runtime_error);
  }
}

TEST(ArchiveFuzz, TrailingJunkAfterValidArchiveIsIgnored) {
  // Stream framing: the reader consumes exactly one archive; bytes after
  // it are left for the caller (enables multi-archive files).
  const std::string valid = valid_archive_bytes();
  std::stringstream stream(valid + valid);  // two archives back to back
  const PeriodArchive first = read_archive(stream);
  const PeriodArchive second = read_archive(stream);
  EXPECT_EQ(first.reports.size(), 2u);
  EXPECT_EQ(second.reports.size(), 2u);
}

}  // namespace
}  // namespace vlm::vcps
