// Determinism of the sharded batch ingest (drive_vehicles): per-RSU
// reports — bits AND counters — must be bit-identical for every worker
// count, and identical to the serial drive_vehicle loop when the channel
// is loss-free. These suites are the TSan CI target (ctest -R
// "Parallel|Sharded|Ingest").
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/visited_mask.h"
#include "core/scheme.h"
#include "traffic/multi_rsu_workload.h"
#include "vcps/simulation.h"

namespace vlm::vcps {
namespace {

constexpr std::size_t kRsus = 9;
constexpr std::uint64_t kVehicles = 6'000;

traffic::MultiRsuConfig workload_config() {
  traffic::MultiRsuConfig config;
  config.rsu_count = kRsus;
  config.vehicle_count = kVehicles;
  config.min_visits = 2;
  config.max_visits = 5;
  config.seed = 17;
  return config;
}

SimulationConfig sim_config(const ChannelConfig& channel) {
  SimulationConfig config;
  config.seed = 101;
  config.channel = channel;
  config.server.scheme = core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
  return config;
}

std::vector<RsuSite> sites_for(traffic::MultiRsuWorkload& workload) {
  workload.for_each_vehicle(
      [](std::uint64_t, std::span<const std::uint32_t>) {});
  std::vector<RsuSite> sites;
  for (std::size_t r = 0; r < kRsus; ++r) {
    sites.push_back(RsuSite{
        core::RsuId{r + 1},
        static_cast<double>(workload.node_volumes()[r])});
  }
  return sites;
}

ItineraryProvider provider_for(const traffic::MultiRsuWorkload& workload) {
  return [&workload](std::uint64_t v, std::vector<std::size_t>& positions) {
    thread_local common::VisitedMask visited(0);
    thread_local std::vector<std::uint32_t> rsus;
    if (visited.universe_size() != kRsus) {
      visited = common::VisitedMask(kRsus);
    }
    workload.itinerary(v, visited, rsus);
    positions.assign(rsus.begin(), rsus.end());
  };
}

// Runs one full period through drive_vehicles with `workers` threads.
std::unique_ptr<VcpsSimulation> run_sharded(
    const ChannelConfig& channel, const traffic::MultiRsuWorkload& workload,
    std::span<const RsuSite> sites, unsigned workers) {
  auto sim = std::make_unique<VcpsSimulation>(sim_config(channel), sites);
  sim->begin_period();
  const IngestStats stats =
      sim->drive_vehicles(kVehicles, provider_for(workload), workers);
  EXPECT_EQ(stats.vehicles, kVehicles);
  EXPECT_GT(stats.exchanges, 0u);
  sim->end_period();
  return sim;
}

void expect_reports_identical(const VcpsSimulation& a,
                              const VcpsSimulation& b) {
  ASSERT_EQ(a.rsu_count(), b.rsu_count());
  for (std::size_t r = 0; r < a.rsu_count(); ++r) {
    const RsuReport ra = a.rsu(r).make_report(a.current_period());
    const RsuReport rb = b.rsu(r).make_report(b.current_period());
    EXPECT_EQ(ra.counter, rb.counter) << "RSU " << r;
    EXPECT_EQ(ra.array_size, rb.array_size) << "RSU " << r;
    EXPECT_EQ(ra.bits, rb.bits) << "RSU " << r;
  }
}

TEST(ParallelIngest, ReportsBitIdenticalAcrossWorkerCountsLossyChannel) {
  // Lossy + duplicating channel: the hardest case, because every outcome
  // is a random draw. Per-(vehicle, RSU) hashed draws make the outcome a
  // pure function of the exchange, so any worker count must produce the
  // same bits, the same counters, and the same channel tallies.
  ChannelConfig channel;
  channel.query_loss = 0.15;
  channel.reply_loss = 0.1;
  channel.reply_duplicate = 0.08;
  traffic::MultiRsuWorkload workload(workload_config());
  const std::vector<RsuSite> sites = sites_for(workload);

  const auto reference = run_sharded(channel, workload, sites, 1);
  for (const unsigned workers : {2u, 4u, 7u}) {
    const auto parallel = run_sharded(channel, workload, sites, workers);
    expect_reports_identical(*reference, *parallel);
    EXPECT_EQ(parallel->channel().queries_lost(),
              reference->channel().queries_lost())
        << "workers " << workers;
    EXPECT_EQ(parallel->channel().replies_lost(),
              reference->channel().replies_lost())
        << "workers " << workers;
    EXPECT_EQ(parallel->channel().replies_duplicated(),
              reference->channel().replies_duplicated())
        << "workers " << workers;
  }
}

TEST(ParallelIngest, MatchesSerialDriveVehicleLoopWhenLossFree) {
  // The loss-free channel consumes no randomness on either path, so the
  // batch engine must land exactly the serial loop's bits and counters.
  traffic::MultiRsuWorkload workload(workload_config());
  const std::vector<RsuSite> sites = sites_for(workload);

  auto serial = std::make_unique<VcpsSimulation>(sim_config({}), sites);
  serial->begin_period();
  common::VisitedMask visited(kRsus);
  std::vector<std::uint32_t> rsus;
  std::vector<std::size_t> positions;
  for (std::uint64_t v = 0; v < kVehicles; ++v) {
    workload.itinerary(v, visited, rsus);
    positions.assign(rsus.begin(), rsus.end());
    serial->drive_vehicle(positions);
  }
  serial->end_period();

  for (const unsigned workers : {1u, 4u}) {
    const auto sharded = run_sharded({}, workload, sites, workers);
    expect_reports_identical(*serial, *sharded);
    EXPECT_EQ(sharded->vehicles_driven(), serial->vehicles_driven());
  }
}

TEST(ParallelIngest, ContinuesVehicleNumberingAcrossBatches) {
  // Two half-size batches must equal one full batch: the engine numbers
  // vehicles from the simulation's running counter, not from zero.
  traffic::MultiRsuWorkload workload(workload_config());
  const std::vector<RsuSite> sites = sites_for(workload);
  const ItineraryProvider provider = provider_for(workload);
  const ItineraryProvider second_half =
      [&provider](std::uint64_t v, std::vector<std::size_t>& positions) {
        provider(v + kVehicles / 2, positions);
      };

  auto whole = std::make_unique<VcpsSimulation>(sim_config({}), sites);
  whole->begin_period();
  whole->drive_vehicles(kVehicles, provider, 3);
  whole->end_period();

  auto split = std::make_unique<VcpsSimulation>(sim_config({}), sites);
  split->begin_period();
  split->drive_vehicles(kVehicles / 2, provider, 3);
  split->drive_vehicles(kVehicles - kVehicles / 2, second_half, 3);
  split->end_period();

  expect_reports_identical(*whole, *split);
}

TEST(ParallelIngest, MoreWorkersThanVehiclesIsSafe) {
  traffic::MultiRsuWorkload workload(workload_config());
  const std::vector<RsuSite> sites = sites_for(workload);
  auto sim = std::make_unique<VcpsSimulation>(sim_config({}), sites);
  sim->begin_period();
  const IngestStats stats = sim->drive_vehicles(3, provider_for(workload), 16);
  EXPECT_EQ(stats.vehicles, 3u);
  EXPECT_LE(stats.workers, 3u);
  sim->end_period();
}

TEST(ParallelIngest, ZeroVehiclesIsANoOp) {
  traffic::MultiRsuWorkload workload(workload_config());
  const std::vector<RsuSite> sites = sites_for(workload);
  auto sim = std::make_unique<VcpsSimulation>(sim_config({}), sites);
  sim->begin_period();
  const IngestStats stats = sim->drive_vehicles(0, provider_for(workload), 4);
  EXPECT_EQ(stats.vehicles, 0u);
  EXPECT_EQ(stats.exchanges, 0u);
  EXPECT_EQ(sim->vehicles_driven(), 0u);
  sim->end_period();
}

TEST(ParallelIngest, RequiresOpenPeriod) {
  traffic::MultiRsuWorkload workload(workload_config());
  const std::vector<RsuSite> sites = sites_for(workload);
  VcpsSimulation sim(sim_config({}), sites);
  EXPECT_THROW(sim.drive_vehicles(10, provider_for(workload), 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlm::vcps
