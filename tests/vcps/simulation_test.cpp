#include "vcps/simulation.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/accuracy_model.h"

namespace vlm::vcps {
namespace {

SimulationConfig vlm_sim_config(double load_factor = 8.0) {
  SimulationConfig config;
  config.server.scheme =
      core::make_vlm_scheme({.s = 2, .load_factor = load_factor});
  config.seed = 11;
  return config;
}

std::vector<RsuSite> two_sites(double history_x, double history_y) {
  return {RsuSite{core::RsuId{100}, history_x},
          RsuSite{core::RsuId{200}, history_y}};
}

TEST(VcpsSimulation, FullPeriodLifecycle) {
  VcpsSimulation sim(vlm_sim_config(), two_sites(1000, 1000));
  sim.begin_period();
  const std::array<std::size_t, 2> both{0, 1};
  const std::array<std::size_t, 1> only_x{0};
  for (int v = 0; v < 200; ++v) sim.drive_vehicle(both);
  for (int v = 0; v < 300; ++v) sim.drive_vehicle(only_x);
  sim.end_period();
  EXPECT_EQ(sim.rsu(0).state().counter(), 500u);
  EXPECT_EQ(sim.rsu(1).state().counter(), 200u);
  EXPECT_EQ(sim.server().reports_received(), 2u);
  const auto estimate = sim.estimate(0, 1);
  EXPECT_GT(estimate.n_c_hat, 0.0);
}

TEST(VcpsSimulation, RecoversIntersectionEndToEnd) {
  // Realistic volumes so the estimate is statistically meaningful; this
  // exercises queries, certificates, replies, reports, serialization and
  // the estimator in one pass.
  VcpsSimulation sim(vlm_sim_config(), two_sites(10'000, 100'000));
  sim.begin_period();
  const std::array<std::size_t, 2> both{0, 1};
  const std::array<std::size_t, 1> only_x{0};
  const std::array<std::size_t, 1> only_y{1};
  for (int v = 0; v < 2'000; ++v) sim.drive_vehicle(both);
  for (int v = 0; v < 8'000; ++v) sim.drive_vehicle(only_x);
  for (int v = 0; v < 98'000; ++v) sim.drive_vehicle(only_y);
  sim.end_period();
  const auto estimate = sim.estimate(0, 1);
  const auto pred = core::AccuracyModel::predict(core::PairScenario{
      10'000, 100'000, 2'000, sim.rsu(0).state().array_size(),
      sim.rsu(1).state().array_size(), 2});
  EXPECT_NEAR(estimate.n_c_hat, 2000.0,
              std::max(2000.0 * 5.0 * pred.stddev_ratio, 100.0));
}

TEST(VcpsSimulation, ArraySizesFollowHistoryAcrossPeriods) {
  auto config = vlm_sim_config();
  config.server.history_alpha = 1.0;  // adopt the newest volume outright
  VcpsSimulation sim(config, two_sites(1'000, 1'000));
  sim.begin_period();
  EXPECT_EQ(sim.rsu(0).state().array_size(), std::size_t{1} << 13);
  // Period 1 sees 10x the expected traffic at RSU 0.
  const std::array<std::size_t, 1> only_x{0};
  for (int v = 0; v < 10'000; ++v) sim.drive_vehicle(only_x);
  sim.end_period();
  // Period 2's array grows to fit the new history.
  sim.begin_period();
  EXPECT_EQ(sim.rsu(0).state().array_size(), std::size_t{1} << 17);
}

TEST(VcpsSimulation, ChannelLossUndercountsButKeepsRunning) {
  auto config = vlm_sim_config();
  config.channel.query_loss = 0.3;
  VcpsSimulation sim(config, two_sites(10'000, 10'000));
  sim.begin_period();
  const std::array<std::size_t, 1> only_x{0};
  for (int v = 0; v < 10'000; ++v) sim.drive_vehicle(only_x);
  sim.end_period();
  const double counted = static_cast<double>(sim.rsu(0).state().counter());
  EXPECT_NEAR(counted, 7'000.0, 200.0);
  EXPECT_GT(sim.channel().queries_lost(), 0u);
}

TEST(VcpsSimulation, DuplicatedRepliesInflateCounterNotBits) {
  auto config = vlm_sim_config();
  config.channel.reply_duplicate = 0.5;
  VcpsSimulation sim(config, two_sites(10'000, 10'000));
  sim.begin_period();
  const std::array<std::size_t, 1> only_x{0};
  for (int v = 0; v < 10'000; ++v) sim.drive_vehicle(only_x);
  sim.end_period();
  // Counter over-counts by ~the duplication rate; the bitmap is immune
  // because setting the same bit twice is idempotent.
  const double counted = static_cast<double>(sim.rsu(0).state().counter());
  EXPECT_NEAR(counted, 15'000.0, 300.0);
  EXPECT_GT(sim.channel().replies_duplicated(), 3'000u);
}

TEST(VcpsSimulation, DrivingOutsidePeriodThrows) {
  VcpsSimulation sim(vlm_sim_config(), two_sites(100, 100));
  const std::array<std::size_t, 1> only_x{0};
  EXPECT_THROW(sim.drive_vehicle(only_x), std::invalid_argument);
  sim.begin_period();
  sim.drive_vehicle(only_x);
  sim.end_period();
  EXPECT_THROW(sim.drive_vehicle(only_x), std::invalid_argument);
  EXPECT_THROW(sim.end_period(), std::invalid_argument);
}

TEST(VcpsSimulation, RsuPositionBoundsChecked) {
  VcpsSimulation sim(vlm_sim_config(), two_sites(100, 100));
  sim.begin_period();
  const std::array<std::size_t, 1> bogus{7};
  EXPECT_THROW(sim.drive_vehicle(bogus), std::invalid_argument);
  EXPECT_THROW((void)sim.rsu(7), std::invalid_argument);
}

TEST(VcpsSimulation, SameVehicleSameRsuIsIdempotentOnBits) {
  VcpsSimulation sim(vlm_sim_config(), two_sites(1000, 1000));
  sim.begin_period();
  const core::VehicleIdentity v{core::VehicleId{77}, 88};
  const std::array<std::size_t, 1> only_x{0};
  sim.drive_vehicle_as(v, only_x);
  const auto ones_after_first = sim.rsu(0).state().bits().count_ones();
  sim.drive_vehicle_as(v, only_x);
  EXPECT_EQ(sim.rsu(0).state().bits().count_ones(), ones_after_first);
  EXPECT_EQ(sim.rsu(0).state().counter(), 2u);
}

TEST(VcpsSimulation, RequiresAtLeastOneSite) {
  EXPECT_THROW(VcpsSimulation(vlm_sim_config(), {}), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::vcps
