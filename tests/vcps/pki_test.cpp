#include "vcps/pki.h"

#include <gtest/gtest.h>

namespace vlm::vcps {
namespace {

TEST(Pki, IssueAndVerify) {
  CertificateAuthority ca(42);
  const Certificate cert = ca.issue(core::RsuId{7}, 100);
  EXPECT_TRUE(ca.verify(cert, 1));
  EXPECT_TRUE(ca.verify(cert, 100));
}

TEST(Pki, RejectsExpiredCertificate) {
  CertificateAuthority ca(42);
  const Certificate cert = ca.issue(core::RsuId{7}, 100);
  EXPECT_FALSE(ca.verify(cert, 101));
}

TEST(Pki, RejectsTamperedSubject) {
  CertificateAuthority ca(42);
  Certificate cert = ca.issue(core::RsuId{7}, 100);
  cert.subject = core::RsuId{8};
  EXPECT_FALSE(ca.verify(cert, 1));
}

TEST(Pki, RejectsTamperedExpiry) {
  CertificateAuthority ca(42);
  Certificate cert = ca.issue(core::RsuId{7}, 100);
  cert.valid_until_period = 1'000'000;
  EXPECT_FALSE(ca.verify(cert, 1));
}

TEST(Pki, RejectsForeignAuthority) {
  CertificateAuthority ca(42), rogue(43);
  const Certificate forged = rogue.issue(core::RsuId{7}, 100);
  EXPECT_FALSE(ca.verify(forged, 1));
}

TEST(Pki, SignaturesDifferAcrossSubjects) {
  CertificateAuthority ca(42);
  EXPECT_NE(ca.issue(core::RsuId{1}, 100).signature,
            ca.issue(core::RsuId{2}, 100).signature);
  EXPECT_NE(ca.issue(core::RsuId{1}, 100).signature,
            ca.issue(core::RsuId{1}, 200).signature);
}

}  // namespace
}  // namespace vlm::vcps
