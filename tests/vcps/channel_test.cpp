#include "vcps/channel.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace vlm::vcps {
namespace {

TEST(Channel, ReliableByDefault) {
  DsrcChannel channel({}, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(channel.query_delivered());
    EXPECT_EQ(channel.deliveries_for_reply(), 1);
  }
  EXPECT_EQ(channel.queries_lost(), 0u);
  EXPECT_EQ(channel.replies_lost(), 0u);
  EXPECT_EQ(channel.replies_duplicated(), 0u);
}

TEST(Channel, LossRatesAreHonored) {
  ChannelConfig config;
  config.query_loss = 0.2;
  config.reply_loss = 0.1;
  DsrcChannel channel(config, 7);
  int queries_ok = 0, replies_ok = 0;
  constexpr int kTrials = 50'000;
  for (int i = 0; i < kTrials; ++i) {
    if (channel.query_delivered()) ++queries_ok;
    if (channel.deliveries_for_reply() == 1) ++replies_ok;
  }
  EXPECT_NEAR(static_cast<double>(queries_ok) / kTrials, 0.8, 0.01);
  EXPECT_NEAR(static_cast<double>(replies_ok) / kTrials, 0.9, 0.01);
  EXPECT_EQ(channel.queries_lost(), static_cast<std::uint64_t>(kTrials - queries_ok));
}

TEST(Channel, DuplicationProducesDoubleDelivery) {
  ChannelConfig config;
  config.reply_duplicate = 0.25;
  DsrcChannel channel(config, 9);
  int doubles = 0;
  constexpr int kTrials = 40'000;
  for (int i = 0; i < kTrials; ++i) {
    const int d = channel.deliveries_for_reply();
    ASSERT_TRUE(d == 1 || d == 2);
    if (d == 2) ++doubles;
  }
  EXPECT_NEAR(static_cast<double>(doubles) / kTrials, 0.25, 0.01);
  EXPECT_EQ(channel.replies_duplicated(), static_cast<std::uint64_t>(doubles));
}

// --- Order-independent draws (sharded ingest path) ---

TEST(ChannelHashedDraws, DeterministicPerExchangeRegardlessOfOrder) {
  ChannelConfig config;
  config.query_loss = 0.3;
  config.reply_loss = 0.2;
  config.reply_duplicate = 0.1;
  const DsrcChannel a(config, 11);
  const DsrcChannel b(config, 11);
  ChannelTally ta, tb;
  // Query a in ascending order, b in descending order: every individual
  // outcome must match because the draw depends only on the exchange key.
  constexpr std::uint64_t kN = 2'000;
  std::vector<bool> queries_a(kN);
  std::vector<int> replies_a(kN);
  for (std::uint64_t v = 0; v < kN; ++v) {
    queries_a[v] = a.query_delivered_for(3, v, core::RsuId{5}, ta);
    replies_a[v] = a.deliveries_for_reply_for(3, v, core::RsuId{5}, ta);
  }
  for (std::uint64_t v = kN; v-- > 0;) {
    EXPECT_EQ(b.query_delivered_for(3, v, core::RsuId{5}, tb), queries_a[v]);
    EXPECT_EQ(b.deliveries_for_reply_for(3, v, core::RsuId{5}, tb),
              replies_a[v]);
  }
  EXPECT_EQ(ta.queries_lost, tb.queries_lost);
  EXPECT_EQ(ta.replies_lost, tb.replies_lost);
  EXPECT_EQ(ta.replies_duplicated, tb.replies_duplicated);
}

TEST(ChannelHashedDraws, DrawsVaryAcrossPeriodVehicleAndRsu) {
  ChannelConfig config;
  config.query_loss = 0.5;
  const DsrcChannel channel(config, 21);
  ChannelTally tally;
  // With p=0.5 and 64 draws per axis, all-equal outcomes would mean the
  // key component is being ignored.
  auto varies = [&](auto&& draw) {
    bool saw_true = false, saw_false = false;
    for (std::uint64_t i = 0; i < 64; ++i) {
      (draw(i) ? saw_true : saw_false) = true;
    }
    return saw_true && saw_false;
  };
  EXPECT_TRUE(varies([&](std::uint64_t p) {
    return channel.query_delivered_for(p, 1, core::RsuId{1}, tally);
  }));
  EXPECT_TRUE(varies([&](std::uint64_t v) {
    return channel.query_delivered_for(1, v, core::RsuId{1}, tally);
  }));
  EXPECT_TRUE(varies([&](std::uint64_t r) {
    return channel.query_delivered_for(1, 1, core::RsuId{r}, tally);
  }));
}

TEST(ChannelHashedDraws, RatesApproximateConfig) {
  ChannelConfig config;
  config.query_loss = 0.2;
  config.reply_loss = 0.1;
  config.reply_duplicate = 0.05;
  const DsrcChannel channel(config, 31);
  ChannelTally tally;
  constexpr std::uint64_t kTrials = 50'000;
  for (std::uint64_t v = 0; v < kTrials; ++v) {
    (void)channel.query_delivered_for(1, v, core::RsuId{9}, tally);
    (void)channel.deliveries_for_reply_for(1, v, core::RsuId{9}, tally);
  }
  EXPECT_NEAR(static_cast<double>(tally.queries_lost) / kTrials, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(tally.replies_lost) / kTrials, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(tally.replies_duplicated) / kTrials, 0.05,
              0.01);
}

TEST(ChannelHashedDraws, LosslessConfigConsumesNoDrawsAndCountsNothing) {
  DsrcChannel channel({}, 5);
  ChannelTally tally;
  for (std::uint64_t v = 0; v < 100; ++v) {
    EXPECT_TRUE(channel.query_delivered_for(1, v, core::RsuId{1}, tally));
    EXPECT_EQ(channel.deliveries_for_reply_for(1, v, core::RsuId{1}, tally), 1);
  }
  EXPECT_EQ(tally.queries_lost, 0u);
  EXPECT_EQ(tally.replies_lost, 0u);
  EXPECT_EQ(tally.replies_duplicated, 0u);
}

TEST(ChannelHashedDraws, AbsorbSumsTalliesIntoCounters) {
  DsrcChannel channel({}, 5);
  ChannelTally t1{1, 2, 3}, t2{10, 20, 30};
  channel.absorb(t1);
  channel.absorb(t2);
  EXPECT_EQ(channel.queries_lost(), 11u);
  EXPECT_EQ(channel.replies_lost(), 22u);
  EXPECT_EQ(channel.replies_duplicated(), 33u);
}

TEST(Channel, Guards) {
  EXPECT_THROW(DsrcChannel(ChannelConfig{1.0, 0.0, 0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(DsrcChannel(ChannelConfig{0.0, -0.1, 0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(DsrcChannel(ChannelConfig{0.0, 0.0, 1.0}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlm::vcps
