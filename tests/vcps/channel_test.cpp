#include "vcps/channel.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vlm::vcps {
namespace {

TEST(Channel, ReliableByDefault) {
  DsrcChannel channel({}, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(channel.query_delivered());
    EXPECT_EQ(channel.deliveries_for_reply(), 1);
  }
  EXPECT_EQ(channel.queries_lost(), 0u);
  EXPECT_EQ(channel.replies_lost(), 0u);
  EXPECT_EQ(channel.replies_duplicated(), 0u);
}

TEST(Channel, LossRatesAreHonored) {
  ChannelConfig config;
  config.query_loss = 0.2;
  config.reply_loss = 0.1;
  DsrcChannel channel(config, 7);
  int queries_ok = 0, replies_ok = 0;
  constexpr int kTrials = 50'000;
  for (int i = 0; i < kTrials; ++i) {
    if (channel.query_delivered()) ++queries_ok;
    if (channel.deliveries_for_reply() == 1) ++replies_ok;
  }
  EXPECT_NEAR(static_cast<double>(queries_ok) / kTrials, 0.8, 0.01);
  EXPECT_NEAR(static_cast<double>(replies_ok) / kTrials, 0.9, 0.01);
  EXPECT_EQ(channel.queries_lost(), static_cast<std::uint64_t>(kTrials - queries_ok));
}

TEST(Channel, DuplicationProducesDoubleDelivery) {
  ChannelConfig config;
  config.reply_duplicate = 0.25;
  DsrcChannel channel(config, 9);
  int doubles = 0;
  constexpr int kTrials = 40'000;
  for (int i = 0; i < kTrials; ++i) {
    const int d = channel.deliveries_for_reply();
    ASSERT_TRUE(d == 1 || d == 2);
    if (d == 2) ++doubles;
  }
  EXPECT_NEAR(static_cast<double>(doubles) / kTrials, 0.25, 0.01);
  EXPECT_EQ(channel.replies_duplicated(), static_cast<std::uint64_t>(doubles));
}

TEST(Channel, Guards) {
  EXPECT_THROW(DsrcChannel(ChannelConfig{1.0, 0.0, 0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(DsrcChannel(ChannelConfig{0.0, -0.1, 0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(DsrcChannel(ChannelConfig{0.0, 0.0, 1.0}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlm::vcps
