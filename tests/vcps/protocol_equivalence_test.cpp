// The figure benches drive core directly for speed; this test proves the
// shortcut is sound: a full protocol run (certificates, queries, replies,
// serialized reports) produces BIT-IDENTICAL arrays and the same estimate
// as core-level recording with the same encoder and vehicle identities.
#include <gtest/gtest.h>

#include <array>

#include "core/pair_simulation.h"
#include "vcps/simulation.h"

namespace vlm::vcps {
namespace {

TEST(ProtocolEquivalence, FullStackMatchesCoreRecording) {
  const core::EncoderConfig encoder_config{};
  const core::RsuId id_x{100}, id_y{200};

  // Protocol side: two sites with histories that produce 2^14 and 2^16.
  SimulationConfig config;
  // The scheme owns the encoder both sides share.
  config.server.scheme =
      core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
  config.seed = 42;
  const std::vector<RsuSite> sites{RsuSite{id_x, 1'500.0},
                                   RsuSite{id_y, 6'000.0}};
  VcpsSimulation sim(config, sites);
  sim.begin_period();

  // Core side: same encoder, same array sizes.
  core::Encoder encoder(encoder_config);
  core::RsuState core_x(sim.rsu(0).state().array_size());
  core::RsuState core_y(sim.rsu(1).state().array_size());

  const std::array<std::size_t, 2> both{0, 1};
  const std::array<std::size_t, 1> only_x{0};
  const std::array<std::size_t, 1> only_y{1};
  for (std::uint64_t i = 0; i < 3'000; ++i) {
    core::VehicleIdentity v;
    v.id = core::VehicleId{common::mix64(1000 + i * 3)};
    v.private_key = common::mix64(2000 + i * 7);
    const bool hits_x = i % 2 == 0;
    const bool hits_y = i % 3 == 0;
    if (!hits_x && !hits_y) continue;
    // Protocol path.
    sim.drive_vehicle_as(v, hits_x && hits_y
                                ? std::span<const std::size_t>(both)
                                : hits_x ? std::span<const std::size_t>(only_x)
                                         : std::span<const std::size_t>(only_y));
    // Core path.
    if (hits_x) core_x.record(encoder.bit_index(v, id_x, core_x.array_size()));
    if (hits_y) core_y.record(encoder.bit_index(v, id_y, core_y.array_size()));
  }
  sim.end_period();

  EXPECT_EQ(sim.rsu(0).state().bits(), core_x.bits());
  EXPECT_EQ(sim.rsu(1).state().bits(), core_y.bits());
  EXPECT_EQ(sim.rsu(0).state().counter(), core_x.counter());
  EXPECT_EQ(sim.rsu(1).state().counter(), core_y.counter());

  core::PairEstimator estimator(2);
  const auto core_estimate = estimator.estimate(core_x, core_y);
  const auto protocol_estimate = sim.estimate(0, 1);
  EXPECT_DOUBLE_EQ(core_estimate.raw, protocol_estimate.raw);
}

TEST(ProtocolEquivalence, ReportSerializationIsLossless) {
  // The estimate computed from serialized reports equals the estimate
  // from the in-memory states (the server only ever sees bytes).
  SimulationConfig config;
  config.server.scheme =
      core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
  config.seed = 7;
  const std::vector<RsuSite> sites{RsuSite{core::RsuId{1}, 2'000.0},
                                   RsuSite{core::RsuId{2}, 2'000.0}};
  VcpsSimulation sim(config, sites);
  sim.begin_period();
  const std::array<std::size_t, 2> both{0, 1};
  for (int i = 0; i < 2'000; ++i) sim.drive_vehicle(both);
  sim.end_period();

  core::PairEstimator estimator(2);
  const auto direct =
      estimator.estimate(sim.rsu(0).state(), sim.rsu(1).state());
  const auto via_server = sim.estimate(0, 1);
  EXPECT_DOUBLE_EQ(direct.raw, via_server.raw);
  EXPECT_EQ(direct.m_y, via_server.m_y);
}

}  // namespace
}  // namespace vlm::vcps
