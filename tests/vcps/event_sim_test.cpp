#include "vcps/event_sim.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "core/estimator.h"
#include "core/report_validator.h"
#include "vcps/central_server.h"

namespace vlm::vcps {
namespace {

EventSimConfig base_config(ReplyPolicy policy) {
  EventSimConfig config;
  config.period_seconds = 3'600.0;
  config.query_interval_seconds = 1.0;
  config.mean_dwell_seconds = 4.0;  // ~4 broadcasts heard per visit
  config.mean_link_travel_seconds = 20.0;
  config.reply_policy = policy;
  config.seed = 5;
  return config;
}

TEST(EventSim, OncePerRsuCountsDistinctVisits) {
  EventSimulation sim(base_config(ReplyPolicy::kAnswerOncePerRsu),
                      std::array<std::size_t, 2>{1 << 14, 1 << 14});
  const std::array<std::size_t, 2> route{0, 1};
  sim.add_flow(route, 4'000);
  sim.run();
  // Vehicles that heard at least one query at a stop counted exactly once
  // there; counters cannot exceed the scheduled visits.
  EXPECT_LE(sim.rsu(0).state.counter(), 4'000u);
  EXPECT_LE(sim.rsu(1).state.counter(), 4'000u);
  // With Exp(4 s) dwell vs 1 s broadcasts ~12% of visits end before the
  // first tick; expect ~88% coverage.
  EXPECT_GT(sim.rsu(0).state.counter(), 3'350u);
  EXPECT_GT(sim.stats().replies_suppressed, 0u);
}

TEST(EventSim, AnswerEveryQueryInflatesCountersNotBits) {
  const std::array<std::size_t, 1> route{0};
  EventSimulation dedup(base_config(ReplyPolicy::kAnswerOncePerRsu),
                        std::array<std::size_t, 1>{1 << 14});
  dedup.add_flow(route, 4'000);
  dedup.run();
  EventSimulation naive(base_config(ReplyPolicy::kAnswerEveryQuery),
                        std::array<std::size_t, 1>{1 << 14});
  naive.add_flow(route, 4'000);
  naive.run();

  // Same seed => same vehicles and dwell times => same bits set.
  EXPECT_EQ(naive.rsu(0).state.bits(), dedup.rsu(0).state.bits());
  // But the naive counter is inflated by roughly dwell/interval.
  const double inflation =
      static_cast<double>(naive.rsu(0).state.counter()) /
      static_cast<double>(dedup.rsu(0).state.counter());
  EXPECT_GT(inflation, 2.0);
  EXPECT_LT(inflation, 8.0);
}

TEST(EventSim, InflatedCountersTripTheOccupancyValidator) {
  const std::array<std::size_t, 1> route{0};
  EventSimulation naive(base_config(ReplyPolicy::kAnswerEveryQuery),
                        std::array<std::size_t, 1>{1 << 12});
  naive.add_flow(route, 3'000);
  naive.run();
  const core::ReportValidator validator(6.0);
  const auto assessment = validator.assess(naive.rsu(0).state);
  EXPECT_EQ(assessment.verdict, core::ReportVerdict::kTooEmpty)
      << "counter claims ~4x the vehicles the bit pattern shows";
}

TEST(EventSim, EstimatesSurviveTheRealisticTimeline) {
  // Common traffic through two RSUs with full timing realism; Eq. 5 only
  // reads the bit arrays, so the estimate tracks the true common volume.
  EventSimConfig config = base_config(ReplyPolicy::kAnswerOncePerRsu);
  EventSimulation sim(config,
                      std::array<std::size_t, 2>{1 << 15, 1 << 15});
  const std::array<std::size_t, 2> both{0, 1};
  const std::array<std::size_t, 1> only_a{0};
  const std::array<std::size_t, 1> only_b{1};
  sim.add_flow(both, 2'000);
  sim.add_flow(only_a, 3'000);
  sim.add_flow(only_b, 5'000);
  sim.run();
  core::PairEstimator estimator(2);
  const auto estimate =
      estimator.estimate(sim.rsu(0).state, sim.rsu(1).state);
  // Some common vehicles never hear a query at one of the stops (missed
  // broadcast or period end), so the measurable common volume is a bit
  // below 2,000; accept a generous band around it.
  EXPECT_GT(estimate.n_c_hat, 1'200.0);
  EXPECT_LT(estimate.n_c_hat, 2'400.0);
}

TEST(EventSim, ShortDwellMissesSomeVehicles) {
  EventSimConfig config = base_config(ReplyPolicy::kAnswerOncePerRsu);
  config.mean_dwell_seconds = 0.3;  // most visits hear no broadcast
  EventSimulation sim(config, std::array<std::size_t, 1>{1 << 14});
  const std::array<std::size_t, 1> route{0};
  sim.add_flow(route, 4'000);
  sim.run();
  EXPECT_LT(sim.rsu(0).state.counter(), 2'000u)
      << "the paper's 'each vehicle receives at least one query' premise "
         "fails when dwell << broadcast interval";
}

TEST(EventSim, ReportsFeedTheCentralServerPipeline) {
  EventSimConfig config = base_config(ReplyPolicy::kAnswerOncePerRsu);
  EventSimulation sim(config,
                      std::array<std::size_t, 2>{1 << 14, 1 << 14});
  const std::array<std::size_t, 2> both{0, 1};
  sim.add_flow(both, 3'000);
  sim.run();

  CentralServerConfig server_config;
  server_config.scheme =
      core::make_fbm_scheme({.s = 2, .array_size = 1 << 14});
  CentralServer server(server_config);
  server.register_rsu(core::RsuId{1}, 3'000.0);
  server.register_rsu(core::RsuId{2}, 3'000.0);
  server.begin_period(1);
  for (const RsuReport& report : sim.make_reports(1)) {
    EXPECT_EQ(server.ingest(report), QuarantineReason::kNone);
  }
  // Every vehicle that answered both RSUs is common traffic.
  const auto estimate = server.estimate(core::RsuId{1}, core::RsuId{2});
  EXPECT_GT(estimate.n_c_hat, 1'800.0);
  EXPECT_LT(estimate.n_c_hat, 3'300.0);
}

TEST(EventSim, ReportsRequireRun) {
  EventSimConfig config = base_config(ReplyPolicy::kAnswerOncePerRsu);
  EventSimulation sim(config, std::array<std::size_t, 1>{1 << 10});
  EXPECT_THROW((void)sim.make_reports(1), std::invalid_argument);
}

TEST(EventSim, Guards) {
  EventSimConfig config = base_config(ReplyPolicy::kAnswerOncePerRsu);
  EXPECT_THROW(
      EventSimulation(config, std::array<std::size_t, 0>{}),
      std::invalid_argument);
  EventSimulation sim(config, std::array<std::size_t, 1>{1 << 10});
  EXPECT_THROW(sim.add_flow(std::array<std::size_t, 1>{5}, 1),
               std::invalid_argument);
  EXPECT_THROW(sim.run(), std::invalid_argument);  // no flows
  const std::array<std::size_t, 1> route{0};
  sim.add_flow(route, 10);
  sim.run();
  EXPECT_THROW(sim.run(), std::invalid_argument);  // already ran
  EXPECT_THROW(sim.add_flow(route, 1), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::vcps
