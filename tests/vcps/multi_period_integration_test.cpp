// Long-run integration: several measurement periods over the Sioux Falls
// deployment with history-driven re-sizing, validated reports, archiving,
// and stable estimates throughout.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/report_validator.h"
#include "roadnet/assignment.h"
#include "roadnet/sioux_falls.h"
#include "roadnet/trajectory.h"
#include "vcps/archive.h"
#include "vcps/simulation.h"

namespace vlm::vcps {
namespace {

TEST(MultiPeriodIntegration, FivePeriodsStayHealthy) {
  const roadnet::Graph graph = roadnet::sioux_falls_network();
  roadnet::TripTable trips = roadnet::sioux_falls_trip_table();
  trips.scale(0.1);  // keep the test fast (~36k vehicles/period)
  const auto assignment =
      roadnet::assign(graph, trips, {roadnet::AssignmentMethod::kFrankWolfe,
                                     15, 1e-3});

  SimulationConfig config;
  config.server.scheme =
      core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
  config.server.history_alpha = 0.5;
  config.server.validation.enabled = true;
  config.seed = 777;
  std::vector<RsuSite> sites;
  for (roadnet::NodeIndex n = 0; n < 24; ++n) {
    // Deliberately poor initial history (50% of truth): the EWMA must
    // converge and the arrays must re-size across periods.
    sites.push_back(RsuSite{core::RsuId{n + 1u},
                            0.5 * assignment.expected_node_volume(n)});
  }
  VcpsSimulation sim(config, sites);

  const roadnet::NodeIndex ry = 9;
  std::vector<double> period_estimates;
  std::size_t first_size = 0, last_size = 0;
  for (int period = 1; period <= 5; ++period) {
    sim.begin_period();
    if (period == 1) first_size = sim.rsu(ry).state().array_size();
    if (period == 5) last_size = sim.rsu(ry).state().array_size();

    std::uint64_t true_common = 0;
    roadnet::TrajectorySampler sampler(
        assignment, config.seed + static_cast<std::uint64_t>(period));
    std::vector<std::size_t> positions;
    const roadnet::NodeIndex rx = 14;  // node 15
    sampler.for_each_vehicle([&](std::span<const roadnet::NodeIndex> nodes) {
      positions.assign(nodes.begin(), nodes.end());
      const bool hx = std::find(nodes.begin(), nodes.end(), rx) != nodes.end();
      const bool hy = std::find(nodes.begin(), nodes.end(), ry) != nodes.end();
      if (hx && hy) ++true_common;
      sim.drive_vehicle(positions);
    });
    sim.end_period();

    // Every report accepted (validation on), none quarantined.
    EXPECT_EQ(sim.server().reports_received(), 24u) << "period " << period;
    EXPECT_EQ(sim.server().quarantined_count(), 0u) << "period " << period;

    // Estimate is finite and in the right ballpark each period.
    const auto estimate = sim.estimate(rx, ry);
    ASSERT_GT(true_common, 100u);
    EXPECT_NEAR(estimate.n_c_hat, static_cast<double>(true_common),
                static_cast<double>(true_common) * 0.5)
        << "period " << period;
    period_estimates.push_back(estimate.n_c_hat);

    // Period archives round-trip.
    PeriodArchive archive;
    archive.period = sim.current_period();
    for (std::size_t r = 0; r < sim.rsu_count(); ++r) {
      archive.reports.push_back(
          sim.rsu(r).make_report(archive.period));
    }
    std::stringstream stream;
    write_archive(stream, archive);
    EXPECT_EQ(read_archive(stream).reports.size(), 24u);
  }

  // History adaptation: starting from a 50%-of-truth history, the busiest
  // node's array must have grown by period 5.
  EXPECT_GT(last_size, first_size);
}

}  // namespace
}  // namespace vlm::vcps
