#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace vlm::common {
namespace {

TEST(PowOneMinus, MatchesDirectPowForModerateValues) {
  EXPECT_NEAR(pow_one_minus(0.25, 3.0), std::pow(0.75, 3.0), 1e-15);
  EXPECT_NEAR(pow_one_minus(0.5, 10.0), std::pow(0.5, 10.0), 1e-15);
}

TEST(PowOneMinus, StableForTinyXLargeN) {
  // (1 - 1/2^21)^500000 ~= exp(-500000/2^21); direct pow loses digits.
  const double m = 2097152.0;
  const double n = 500000.0;
  const double expected = std::exp(n * std::log1p(-1.0 / m));
  EXPECT_DOUBLE_EQ(pow_one_minus(1.0 / m, n), expected);
  EXPECT_NEAR(pow_one_minus(1.0 / m, n), std::exp(-n / m), 1e-7);
}

TEST(PowOneMinus, EdgeCases) {
  EXPECT_DOUBLE_EQ(pow_one_minus(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(pow_one_minus(0.3, 0.0), 1.0);
  EXPECT_THROW((void)pow_one_minus(1.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)pow_one_minus(-0.1, 2.0), std::invalid_argument);
  EXPECT_THROW((void)pow_one_minus(0.1, -1.0), std::invalid_argument);
}

TEST(LogOneMinus, MatchesLog1p) {
  EXPECT_DOUBLE_EQ(log_one_minus(0.25), std::log1p(-0.25));
  EXPECT_THROW((void)log_one_minus(1.0), std::invalid_argument);
}

TEST(IsPowerOfTwo, Classification) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(std::uint64_t{1} << 40));
  EXPECT_FALSE(is_power_of_two((std::uint64_t{1} << 40) + 1));
}

TEST(CeilPow2, RoundsUp) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(1000), 1024u);
  EXPECT_EQ(ceil_pow2(1024), 1024u);
  EXPECT_EQ(ceil_pow2(1025), 2048u);
}

TEST(CeilPow2, RejectsOverflowAndZero) {
  EXPECT_THROW((void)ceil_pow2(0), std::invalid_argument);
  EXPECT_THROW((void)ceil_pow2((std::uint64_t{1} << 63) + 1),
               std::invalid_argument);
  EXPECT_EQ(ceil_pow2(std::uint64_t{1} << 63), std::uint64_t{1} << 63);
}

TEST(CeilLog2, MatchesCeilPow2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(451000), 19u);  // Table I: node 10 needs 2^19 at f̄=1
}

TEST(RelativeDifference, Basics) {
  EXPECT_DOUBLE_EQ(relative_difference(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_difference(1.0, 1.1), 0.1 / 1.1, 1e-12);
  // The floor keeps 0-vs-0 finite.
  EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace vlm::common
