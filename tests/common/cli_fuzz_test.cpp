// Robustness sweep for the flag parser: random argv vectors must either
// parse or throw std::invalid_argument — never crash or hang.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"

namespace vlm::common {
namespace {

std::string random_token(Xoshiro256ss& rng) {
  static const char* kPieces[] = {"--",     "count", "=",     "-",  "12",
                                  "x",      "ratio", "true",  " ",  "--=",
                                  "1e309",  "-5",    "name",  "",   "?",
                                  "verbose"};
  std::string token;
  const std::uint64_t pieces = 1 + rng.uniform(4);
  for (std::uint64_t p = 0; p < pieces; ++p) {
    token += kPieces[rng.uniform(sizeof(kPieces) / sizeof(kPieces[0]))];
  }
  return token;
}

TEST(CliFuzz, RandomArgvNeverCrashes) {
  Xoshiro256ss rng(99);
  for (int round = 0; round < 500; ++round) {
    ArgParser parser("fuzz", "fuzz target");
    parser.add_flag("verbose", false, "flag");
    parser.add_int("count", 1, "int");
    parser.add_double("ratio", 0.5, "double");
    parser.add_string("name", "n", "string");

    std::vector<std::string> tokens{"prog"};
    const std::uint64_t count = rng.uniform(6);
    for (std::uint64_t t = 0; t < count; ++t) {
      tokens.push_back(random_token(rng));
    }
    std::vector<const char*> argv;
    argv.reserve(tokens.size());
    for (const std::string& t : tokens) argv.push_back(t.c_str());

    try {
      if (parser.parse(static_cast<int>(argv.size()), argv.data())) {
        // Parsed: typed getters may still reject bad textual values, but
        // only with invalid_argument.
        try {
          (void)parser.get_int("count");
          (void)parser.get_double("ratio");
          (void)parser.get_flag("verbose");
          (void)parser.get_string("name");
        } catch (const std::invalid_argument&) {
        }
      }
    } catch (const std::invalid_argument&) {
      // expected for malformed input
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace vlm::common
