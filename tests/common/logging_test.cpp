#include "common/logging.h"

#include <gtest/gtest.h>

namespace vlm::common {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, ParseRecognizesAllNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kInfo);
}

TEST_F(LoggingTest, UnrecognizedNameWarnsOncePerDistinctValue) {
  // Names unique to this test, so the warn-once set cannot have seen
  // them regardless of which tests ran before.
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("loud-bogus-level"), LogLevel::kInfo);
  const std::string first = testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("log level 'loud-bogus-level'"), std::string::npos);
  EXPECT_NE(first.find("using info"), std::string::npos);

  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("loud-bogus-level"), LogLevel::kInfo);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

  // A different bad value warns again: once per distinct name.
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("other-bogus-level"), LogLevel::kInfo);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("other-bogus-level"),
            std::string::npos);
}

TEST_F(LoggingTest, SuppressedLevelsProduceNoOutput) {
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  log_info() << "should be invisible";
  log_debug() << "also invisible";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, EnabledLevelsEmitTaggedLines) {
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_info() << "hello " << 42;
  log_error() << "boom";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[INFO] hello 42"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] boom"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_error() << "even errors";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace vlm::common
