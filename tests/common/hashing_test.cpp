#include "common/hashing.h"

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <stdexcept>
#include <vector>

#include "stats/chi_square.h"

namespace vlm::common {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Mix64, ZeroMapsToZero) {
  // The finalizer has 0 as a fixed point; callers must salt inputs, which
  // every call site in this library does. Documented behavior.
  EXPECT_EQ(mix64(0), 0u);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t base = 0x0123456789ABCDEFull;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t flipped = base ^ (std::uint64_t{1} << bit);
    const int hamming = std::popcount(mix64(base) ^ mix64(flipped));
    EXPECT_GT(hamming, 16) << "weak diffusion at input bit " << bit;
    EXPECT_LT(hamming, 48) << "weak diffusion at input bit " << bit;
  }
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t state = 7;
  const std::uint64_t first = splitmix64_next(state);
  const std::uint64_t second = splitmix64_next(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 7u);
}

TEST(Splitmix64, StreamsFromDifferentSeedsDiffer) {
  std::uint64_t a = 1, b = 2;
  EXPECT_NE(splitmix64_next(a), splitmix64_next(b));
}

TEST(HashToRange, StaysInRange) {
  for (std::uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LT(hash_to_range(x, 17), 17u);
  }
}

TEST(HashToRange, RejectsZeroBound) {
  EXPECT_THROW((void)hash_to_range(1, 0), std::invalid_argument);
}

TEST(HashToRange, UniformOverPowerOfTwoBins) {
  // The schemes only ever reduce to power-of-two bounds; check uniformity
  // with a chi-square test at the 0.1% level.
  constexpr std::uint64_t kBins = 256;
  constexpr std::uint64_t kSamples = 1 << 18;
  std::vector<std::uint64_t> counts(kBins, 0);
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    ++counts[hash_to_range(i * 0x9E3779B97F4A7C15ull + 12345, kBins)];
  }
  const double stat = vlm::stats::chi_square_uniform(counts);
  EXPECT_LT(stat, vlm::stats::chi_square_critical_999(kBins - 1));
}

TEST(SaltArray, IsDeterministicPerSeed) {
  SaltArray a(5, 99), b(5, 99), c(5, 100);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  // Different seeds should give different salt sets.
  bool any_diff = false;
  for (std::size_t i = 0; i < 5; ++i) any_diff |= (a[i] != c[i]);
  EXPECT_TRUE(any_diff);
}

TEST(SaltArray, SaltsAreDistinct) {
  SaltArray salts(10, 7);
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < salts.size(); ++i) seen.insert(salts[i]);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SaltArray, BoundsChecked) {
  SaltArray salts(3, 1);
  EXPECT_THROW((void)salts[3], std::invalid_argument);
  EXPECT_THROW(SaltArray(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::common
