#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vlm::common {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1'000);
  parallel_for(1'000, 8, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ResultsIndependentOfWorkerCount) {
  auto run = [](unsigned workers) {
    std::vector<double> out(500);
    parallel_for(out.size(), workers, [&](std::size_t i) {
      out[i] = static_cast<double>(i * i) * 0.5;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(4), run(13));
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> atomic_calls{0};
  parallel_for(2, 16, [&](std::size_t) { ++atomic_calls; });
  EXPECT_EQ(atomic_calls.load(), 2);
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, Guards) {
  EXPECT_THROW(parallel_for(10, 0, [](std::size_t) {}),
               std::invalid_argument);
}

TEST(ParallelFor, DefaultWorkerCountIsPositive) {
  EXPECT_GE(default_worker_count(), 1u);
}

}  // namespace
}  // namespace vlm::common
