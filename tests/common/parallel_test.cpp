#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace vlm::common {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1'000);
  parallel_for(1'000, 8, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ResultsIndependentOfWorkerCount) {
  auto run = [](unsigned workers) {
    std::vector<double> out(500);
    parallel_for(out.size(), workers, [&](std::size_t i) {
      out[i] = static_cast<double>(i * i) * 0.5;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(4), run(13));
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> atomic_calls{0};
  parallel_for(2, 16, [&](std::size_t) { ++atomic_calls; });
  EXPECT_EQ(atomic_calls.load(), 2);
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, Guards) {
  EXPECT_THROW(parallel_for(10, 0, [](std::size_t) {}),
               std::invalid_argument);
}

TEST(ParallelFor, DefaultWorkerCountIsPositive) {
  EXPECT_GE(default_worker_count(), 1u);
}

TEST(ParallelSlices, SlicesCoverRangeDisjointlyInOrder) {
  std::vector<std::atomic<int>> hits(997);  // prime: uneven final chunk
  parallel_slices(hits.size(), 7,
                  [&](unsigned, std::size_t begin, std::size_t end) {
                    EXPECT_LT(begin, end);
                    for (std::size_t i = begin; i < end; ++i) ++hits[i];
                  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelSlices, WorkerIndicesAreDense) {
  // Shard-local state is indexed by the worker argument, so the indices
  // handed out must be exactly 0..used-1 with no gaps or repeats.
  std::mutex mutex;
  std::vector<unsigned> seen;
  parallel_slices(100, 5, [&](unsigned worker, std::size_t, std::size_t) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.push_back(worker);
  });
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 5u);
  for (unsigned w = 0; w < 5; ++w) EXPECT_EQ(seen[w], w);
}

TEST(ParallelSlices, MoreWorkersThanItemsUsesOneSlicePerItem) {
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> slices;
  parallel_slices(3, 16, [&](unsigned, std::size_t begin, std::size_t end) {
    const std::lock_guard<std::mutex> lock(mutex);
    slices.emplace_back(begin, end);
  });
  EXPECT_EQ(slices.size(), 3u);
}

TEST(ParallelSlices, SingleWorkerRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  parallel_slices(10, 1, [&](unsigned worker, std::size_t begin,
                             std::size_t end) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    body_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(body_thread, caller);
}

TEST(ParallelSlices, EmptyRangeNeverCallsBody) {
  int calls = 0;
  parallel_slices(0, 4, [&](unsigned, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelSlices, PropagatesFirstWorkerException) {
  EXPECT_THROW(parallel_slices(100, 4,
                               [](unsigned worker, std::size_t, std::size_t) {
                                 if (worker == 2) {
                                   throw std::runtime_error("boom");
                                 }
                               }),
               std::runtime_error);
}

TEST(WorkerPool, RunsEveryTaskIndexExactlyOnce) {
  WorkerPool& pool = WorkerPool::instance();
  for (const unsigned used : {0u, 1u, 2u, 5u, 16u}) {
    std::vector<std::atomic<int>> hits(used);
    pool.run(used, [&](unsigned w) { hits[w].fetch_add(1); });
    for (unsigned w = 0; w < used; ++w) {
      EXPECT_EQ(hits[w].load(), 1) << "used=" << used << " slot " << w;
    }
  }
}

TEST(WorkerPool, DispatchCountGrowsWhileThreadsStayConstant) {
  WorkerPool& pool = WorkerPool::instance();
  const unsigned threads_before = pool.thread_count();
  const std::uint64_t dispatches_before = pool.dispatch_count();
  for (int i = 0; i < 5; ++i) {
    parallel_for(64, 4, [](std::size_t) {});
  }
  // Reuse, not respawn: the region counter moved, the thread count
  // didn't.
  EXPECT_GE(pool.dispatch_count(), dispatches_before + 5);
  EXPECT_EQ(pool.thread_count(), threads_before);
}

TEST(WorkerPool, SerialRegionsBypassThePool) {
  WorkerPool& pool = WorkerPool::instance();
  const std::uint64_t before = pool.dispatch_count();
  parallel_for(100, 1, [](std::size_t) {});
  parallel_slices(100, 1, [](unsigned, std::size_t, std::size_t) {});
  EXPECT_EQ(pool.dispatch_count(), before);
}

TEST(WorkerPool, NestedRegionsRunInlineWithoutDeadlock) {
  // A parallel region launched from inside a pool task must complete
  // (inline) instead of waiting on pool threads that are busy running
  // the outer region.
  std::atomic<int> inner_total{0};
  parallel_slices(8, 4, [&](unsigned, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      parallel_for(10, 4,
                   [&](std::size_t) { inner_total.fetch_add(1); });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 10);
}

TEST(WorkerPool, NestedRegionPropagatesExceptions) {
  EXPECT_THROW(
      parallel_slices(4, 4,
                      [&](unsigned, std::size_t, std::size_t) {
                        parallel_for(4, 4, [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("inner");
                        });
                      }),
      std::runtime_error);
}

TEST(WorkerPool, ConcurrentRegionsFromManyThreadsSerializeSafely) {
  // Regions are serialized on one pool; hammer it from several external
  // threads at once and check every region still ran completely.
  std::vector<std::thread> threads;
  std::atomic<int> total{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < 20; ++rep) {
        parallel_for(16, 3, [&](std::size_t) { total.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(total.load(), 4 * 20 * 16);
}

}  // namespace
}  // namespace vlm::common
