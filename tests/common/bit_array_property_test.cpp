// Property-style sweeps of BitArray over randomized contents and a grid
// of sizes, exercising the invariants the decoding phase relies on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bit_array.h"
#include "common/rng.h"

namespace vlm::common {
namespace {

BitArray random_array(std::size_t bits, double density, Xoshiro256ss& rng) {
  BitArray out(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.bernoulli(density)) out.set(i);
  }
  return out;
}

struct SizeCase {
  std::size_t m_small;
  std::size_t m_large;
};

class BitArraySizes : public ::testing::TestWithParam<SizeCase> {};

TEST_P(BitArraySizes, UnfoldPreservesZeroFractionExactly) {
  Xoshiro256ss rng(GetParam().m_small * 31 + 7);
  for (double density : {0.0, 0.1, 0.5, 0.9}) {
    const BitArray a = random_array(GetParam().m_small, density, rng);
    const BitArray u = a.unfolded(GetParam().m_large);
    EXPECT_DOUBLE_EQ(u.zero_fraction(), a.zero_fraction());
    EXPECT_EQ(u.count_ones(),
              a.count_ones() * (GetParam().m_large / GetParam().m_small));
  }
}

TEST_P(BitArraySizes, UnfoldIndexCongruence) {
  Xoshiro256ss rng(GetParam().m_small * 13 + 1);
  const BitArray a = random_array(GetParam().m_small, 0.3, rng);
  const BitArray u = a.unfolded(GetParam().m_large);
  // Sample positions rather than scanning everything at large sizes.
  for (int probe = 0; probe < 200; ++probe) {
    const std::size_t i =
        static_cast<std::size_t>(rng.uniform(GetParam().m_large));
    EXPECT_EQ(u.test(i), a.test(i % GetParam().m_small));
  }
}

TEST_P(BitArraySizes, UnfoldThenOrMatchesDirectComputation) {
  Xoshiro256ss rng(GetParam().m_small * 101 + 3);
  const BitArray a = random_array(GetParam().m_small, 0.25, rng);
  const BitArray b = random_array(GetParam().m_large, 0.25, rng);
  const BitArray combined = a.unfolded(GetParam().m_large) | b;
  for (int probe = 0; probe < 200; ++probe) {
    const std::size_t i =
        static_cast<std::size_t>(rng.uniform(GetParam().m_large));
    EXPECT_EQ(combined.test(i), a.test(i % GetParam().m_small) || b.test(i));
  }
}

TEST_P(BitArraySizes, SerializationRoundTripsRandomContent) {
  Xoshiro256ss rng(GetParam().m_large * 7 + 11);
  for (double density : {0.05, 0.5, 0.95}) {
    const BitArray a = random_array(GetParam().m_large, density, rng);
    EXPECT_EQ(BitArray::from_bytes(a.size(), a.to_bytes()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PowerOfTwoGrid, BitArraySizes,
    ::testing::Values(SizeCase{8, 64}, SizeCase{64, 64}, SizeCase{64, 512},
                      SizeCase{128, 4096}, SizeCase{1 << 12, 1 << 16},
                      SizeCase{1 << 10, 1 << 17}),
    [](const ::testing::TestParamInfo<SizeCase>& param_info) {
      return std::to_string(param_info.param.m_small) + "_to_" +
             std::to_string(param_info.param.m_large);
    });

TEST(BitArrayCounts, OrNeverDecreasesOnes) {
  Xoshiro256ss rng(5);
  for (int round = 0; round < 20; ++round) {
    const BitArray a = random_array(256, 0.2, rng);
    const BitArray b = random_array(256, 0.2, rng);
    const BitArray c = a | b;
    EXPECT_GE(c.count_ones(), a.count_ones());
    EXPECT_GE(c.count_ones(), b.count_ones());
    EXPECT_LE(c.count_ones(), a.count_ones() + b.count_ones());
  }
}

TEST(BitArrayCounts, OnesPlusZerosIsSize) {
  Xoshiro256ss rng(6);
  for (std::size_t bits : {3u, 64u, 65u, 1000u, 4096u}) {
    const BitArray a = random_array(bits, 0.37, rng);
    EXPECT_EQ(a.count_ones() + a.count_zeros(), bits);
  }
}

}  // namespace
}  // namespace vlm::common
