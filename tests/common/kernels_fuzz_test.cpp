// Differential fuzz: every SIMD kernel variant present on this host is
// run against the scalar baseline over randomized inputs — word counts
// straddling vector widths, unaligned tails, arbitrary cyclic periods,
// and the power-of-two unfold ratios (up to 2^10) the sizing policy
// actually produces. Counts AND mutated words must match exactly; a
// variant the host lacks is skipped, never failed, so one test binary
// serves the whole CI matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/kernels/kernels.h"
#include "common/rng.h"

namespace vlm::common::kernels {
namespace {

std::vector<std::uint64_t> random_words(std::size_t n,
                                        common::Xoshiro256ss& rng) {
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) {
    // Mix densities so tails of all-zero / all-one words appear too.
    switch (rng.uniform(4)) {
      case 0: w = 0; break;
      case 1: w = ~std::uint64_t{0}; break;
      default: w = rng.next(); break;
    }
  }
  return out;
}

class KernelFuzz : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    if (!available(GetParam())) {
      GTEST_SKIP() << isa_name(GetParam()) << " not available on this host";
    }
  }
  const KernelTable& variant() { return table_for(GetParam()); }
  const KernelTable& scalar() { return scalar_table(); }
};

TEST_P(KernelFuzz, PopcountMatchesScalar) {
  common::Xoshiro256ss rng(0xF122);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t n = 1 + rng.uniform(600);
    const auto words = random_words(n, rng);
    EXPECT_EQ(variant().popcount(words.data(), n),
              scalar().popcount(words.data(), n))
        << "n=" << n << " trial=" << trial;
  }
}

TEST_P(KernelFuzz, OrPopcountCyclicMatchesScalarForArbitraryPeriods) {
  common::Xoshiro256ss rng(0xF123);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t n_large = 1 + rng.uniform(500);
    // Periods deliberately include 1..17 (broadcast + fallback paths)
    // and values larger than n_large.
    const std::size_t n_small = 1 + rng.uniform(trial % 2 == 0 ? 17 : 600);
    const auto large = random_words(n_large, rng);
    const auto small = random_words(n_small, rng);
    EXPECT_EQ(
        variant().or_popcount_cyclic(large.data(), n_large, small.data(),
                                     n_small),
        scalar().or_popcount_cyclic(large.data(), n_large, small.data(),
                                    n_small))
        << "n_large=" << n_large << " n_small=" << n_small;
  }
}

TEST_P(KernelFuzz, OrPopcountCyclicMatchesScalarForPowerOfTwoUnfolds) {
  common::Xoshiro256ss rng(0xF124);
  for (int trial = 0; trial < 200; ++trial) {
    // The sizing policy's real shape: both word counts are powers of
    // two, ratio up to 2^10 (the paper's deepest unfold).
    const std::size_t n_small = std::size_t{1} << rng.uniform(7);   // 1..64
    const std::size_t ratio = std::size_t{1} << rng.uniform(11);    // 1..1024
    const std::size_t n_large = n_small * ratio;
    const auto large = random_words(n_large, rng);
    const auto small = random_words(n_small, rng);
    EXPECT_EQ(
        variant().or_popcount_cyclic(large.data(), n_large, small.data(),
                                     n_small),
        scalar().or_popcount_cyclic(large.data(), n_large, small.data(),
                                    n_small))
        << "n_small=" << n_small << " ratio=" << ratio;
  }
}

TEST_P(KernelFuzz, OrPopcountCyclicBatchMatchesScalar) {
  common::Xoshiro256ss rng(0xF127);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n_anchor = 1 + rng.uniform(400);
    const std::size_t n_partners = 1 + rng.uniform(6);
    const auto anchor = random_words(n_anchor, rng);
    std::vector<std::vector<std::uint64_t>> storage;
    std::vector<const std::uint64_t*> partners;
    std::vector<std::size_t> periods;
    for (std::size_t j = 0; j < n_partners; ++j) {
      // Mix power-of-two periods (the production shape) with arbitrary
      // ones so every alignment branch of the batch kernel fires.
      const std::size_t period = trial % 2 == 0
                                     ? std::size_t{1} << rng.uniform(9)
                                     : 1 + rng.uniform(500);
      storage.push_back(random_words(period, rng));
      partners.push_back(storage.back().data());
      periods.push_back(period);
    }
    // Random tile inside the anchor, so tile_begin % period takes every
    // residue class.
    const std::size_t tile_begin = rng.uniform(n_anchor);
    const std::size_t tile_end =
        tile_begin + 1 + rng.uniform(n_anchor - tile_begin);
    std::vector<std::size_t> acc_variant(n_partners, 7);
    std::vector<std::size_t> acc_scalar(n_partners, 7);
    variant().or_popcount_cyclic_batch(anchor.data(), tile_begin, tile_end,
                                       partners.data(), periods.data(),
                                       n_partners, acc_variant.data());
    scalar().or_popcount_cyclic_batch(anchor.data(), tile_begin, tile_end,
                                      partners.data(), periods.data(),
                                      n_partners, acc_scalar.data());
    EXPECT_EQ(acc_variant, acc_scalar)
        << "n_anchor=" << n_anchor << " tile=[" << tile_begin << ","
        << tile_end << ") trial=" << trial;
  }
}

TEST_P(KernelFuzz, MergeOrMatchesScalarWordsAndCount) {
  common::Xoshiro256ss rng(0xF125);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t n = 1 + rng.uniform(600);
    const auto base = random_words(n, rng);
    const auto src = random_words(n, rng);
    std::vector<std::uint64_t> dst_variant = base;
    std::vector<std::uint64_t> dst_scalar = base;
    const std::size_t ones_variant =
        variant().merge_or(dst_variant.data(), src.data(), n);
    const std::size_t ones_scalar =
        scalar().merge_or(dst_scalar.data(), src.data(), n);
    EXPECT_EQ(ones_variant, ones_scalar) << "n=" << n;
    EXPECT_EQ(dst_variant, dst_scalar) << "n=" << n;
  }
}

TEST_P(KernelFuzz, SetScatterMatchesScalarWordsAndCount) {
  common::Xoshiro256ss rng(0xF126);
  for (int trial = 0; trial < 300; ++trial) {
    // Sub-word arrays (bit_count < 64) through multi-word, never a
    // multiple of 64 in half the trials.
    const std::size_t bit_count = 1 + rng.uniform(4000);
    const std::size_t n_words = (bit_count + 63) / 64;
    const std::size_t n_indices = rng.uniform(2 * bit_count + 1);
    std::vector<std::size_t> indices(n_indices);
    for (auto& idx : indices) idx = rng.uniform(bit_count);  // dups likely
    std::vector<std::uint64_t> words_variant(n_words, 0);
    std::vector<std::uint64_t> words_scalar(n_words, 0);
    const std::size_t ones_variant = variant().set_scatter(
        words_variant.data(), bit_count, indices.data(), indices.size());
    const std::size_t ones_scalar = scalar().set_scatter(
        words_scalar.data(), bit_count, indices.data(), indices.size());
    EXPECT_EQ(ones_variant, ones_scalar) << "bits=" << bit_count;
    EXPECT_EQ(words_variant, words_scalar) << "bits=" << bit_count;
  }
}

TEST_P(KernelFuzz, EncodeBatchMatchesScalar) {
  common::Xoshiro256ss rng(0xF128);
  for (int trial = 0; trial < 300; ++trial) {
    // Lengths deliberately include 0, 1, and non-multiples of the vector
    // lane width so every masked/scalar tail path fires.
    const std::size_t n = trial < 3 ? static_cast<std::size_t>(trial)
                                    : 1 + rng.uniform(200);
    // Power-of-two slot counts take the vectorized modulo; non-powers
    // must defer to the shared scalar tail and still match bit-for-bit.
    static constexpr std::uint64_t kSlotCounts[] = {1, 2, 3, 4, 5, 7, 8, 16};
    const std::uint64_t slot_count = kSlotCounts[rng.uniform(8)];
    const std::uint64_t slot_input = rng.next();
    const std::uint64_t fold_mask = (std::uint64_t{1} << (6 + rng.uniform(15))) - 1;
    std::vector<std::uint64_t> salts(slot_count);
    for (auto& salt : salts) salt = rng.next();
    std::vector<std::uint64_t> keys(n);
    for (auto& key : keys) key = rng.next();
    std::vector<std::size_t> out_variant(n, 0xDEAD);
    std::vector<std::size_t> out_scalar(n, 0xBEEF);
    variant().encode_batch(keys.data(), n, slot_input, salts.data(),
                           slot_count, fold_mask, out_variant.data());
    scalar().encode_batch(keys.data(), n, slot_input, salts.data(),
                          slot_count, fold_mask, out_scalar.data());
    EXPECT_EQ(out_variant, out_scalar)
        << "n=" << n << " slot_count=" << slot_count << " trial=" << trial;
  }
}

TEST_P(KernelFuzz, ZipfRankBatchMatchesScalar) {
  common::Xoshiro256ss rng(0xF129);
  // Block sizes straddling every lane boundary of both vector widths,
  // plus empty and single-element blocks, before the randomized tail.
  static constexpr std::size_t kBoundaryBlocks[] = {0, 1, 3,  4,  5,  7,
                                                    8, 9, 15, 16, 17, 33};
  for (int trial = 0; trial < 250; ++trial) {
    // Random CDF shaped exactly like MultiRsuWorkload's: non-decreasing
    // 2^53-scaled thresholds whose final entry (cdf = 1.0 exactly) is
    // 2^53 + 1 — strictly above every 53-bit draw, the termination
    // guarantee of the walk contract.
    const std::size_t ranks = 2 + rng.uniform(60);
    std::vector<std::uint64_t> thresholds(ranks);
    for (std::size_t r = 0; r + 1 < ranks; ++r) {
      thresholds[r] = 1 + (rng.next() >> 11);
    }
    std::sort(thresholds.begin(), thresholds.end() - 1);
    thresholds[ranks - 1] = (std::uint64_t{1} << 53) + 1;
    // Guide table built by the workload's own recurrence, with a
    // randomized buckets-per-rank density so guide entries sit anywhere
    // from exact answers to several steps below them.
    const std::uint64_t buckets = ranks * (1 + rng.uniform(12));
    std::vector<std::uint32_t> guide(buckets + 1);
    std::uint32_t rank = 0;
    for (std::uint64_t j = 0; j <= buckets; ++j) {
      const auto smallest = static_cast<std::uint64_t>(
          ((static_cast<unsigned __int128>(j) << 53) + buckets - 1) / buckets);
      while (rank < ranks && thresholds[rank] <= smallest) ++rank;
      guide[j] = rank;
    }
    const std::size_t n = trial < 12 ? kBoundaryBlocks[trial]
                                     : 1 + rng.uniform(600);
    std::vector<std::uint64_t> states(n);
    for (auto& s : states) s = rng.next();
    std::vector<std::uint32_t> out_variant(n, 0xDEADu);
    std::vector<std::uint32_t> out_scalar(n, 0xBEEFu);
    variant().zipf_rank_batch(states.data(), n, thresholds.data(),
                              guide.data(), buckets, out_variant.data());
    scalar().zipf_rank_batch(states.data(), n, thresholds.data(), guide.data(),
                             buckets, out_scalar.data());
    EXPECT_EQ(out_variant, out_scalar)
        << "n=" << n << " ranks=" << ranks << " buckets=" << buckets
        << " trial=" << trial;
  }
}

TEST_P(KernelFuzz, OrPopcountSampledMatchesScalarAtEveryStride) {
  common::Xoshiro256ss rng(0xF12A);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n_large = 1 + rng.uniform(600);
    // Same period mix as the cyclic fuzz: tiny broadcast periods and
    // periods larger than the sampled array both occur.
    const std::size_t n_small = 1 + rng.uniform(trial % 2 == 0 ? 17 : 600);
    const auto large = random_words(n_large, rng);
    const auto small = random_words(n_small, rng);
    // Strides straddling the block count: 1 (every block), mid, and
    // beyond (only block 0 sampled).
    const std::size_t blocks = (n_large + 7) / 8;
    const std::size_t strides[] = {1, 1 + rng.uniform(blocks),
                                   blocks + 1 + rng.uniform(8)};
    for (const std::size_t stride : strides) {
      EXPECT_EQ(variant().or_popcount_sampled(large.data(), n_large,
                                              small.data(), n_small, stride),
                scalar().or_popcount_sampled(large.data(), n_large,
                                             small.data(), n_small, stride))
          << "n_large=" << n_large << " n_small=" << n_small
          << " stride=" << stride;
    }
    // stride == 1 visits every block: the sample IS the full cyclic
    // union, and the denominator covers the whole array.
    EXPECT_EQ(variant().or_popcount_sampled(large.data(), n_large,
                                            small.data(), n_small, 1),
              variant().or_popcount_cyclic(large.data(), n_large,
                                           small.data(), n_small))
        << "n_large=" << n_large << " n_small=" << n_small;
    EXPECT_EQ(sampled_word_count(n_large, 1), n_large);
  }
}

TEST_P(KernelFuzz, OrPopcountSampledNeverExceedsSampledWordCapacity) {
  common::Xoshiro256ss rng(0xF12B);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n_large = 1 + rng.uniform(600);
    const std::size_t n_small = 1 + rng.uniform(600);
    const std::size_t stride = 1 + rng.uniform(80);
    // All-ones operands: the sampled popcount must land exactly on
    // 64 * sampled_word_count — pinning the denominator the prune rule
    // divides by to the words the kernel actually visits.
    const std::vector<std::uint64_t> large(n_large, ~std::uint64_t{0});
    const std::vector<std::uint64_t> small(n_small, ~std::uint64_t{0});
    EXPECT_EQ(variant().or_popcount_sampled(large.data(), n_large,
                                            small.data(), n_small, stride),
              sampled_word_count(n_large, stride) * 64)
        << "n_large=" << n_large << " stride=" << stride;
  }
}

TEST_P(KernelFuzz, ZipfRankRunsMatchesScalarAndExpandedBatch) {
  common::Xoshiro256ss rng(0xF12C);
  constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ull;
  for (int trial = 0; trial < 150; ++trial) {
    // Reuse the workload-shaped CDF construction from the batch fuzz.
    const std::size_t ranks = 2 + rng.uniform(60);
    std::vector<std::uint64_t> thresholds(ranks);
    for (std::size_t r = 0; r + 1 < ranks; ++r) {
      thresholds[r] = 1 + (rng.next() >> 11);
    }
    std::sort(thresholds.begin(), thresholds.end() - 1);
    thresholds[ranks - 1] = (std::uint64_t{1} << 53) + 1;
    const std::uint64_t buckets = ranks * (1 + rng.uniform(12));
    std::vector<std::uint32_t> guide(buckets + 1);
    std::uint32_t rank = 0;
    for (std::uint64_t j = 0; j <= buckets; ++j) {
      const auto smallest = static_cast<std::uint64_t>(
          ((static_cast<unsigned __int128>(j) << 53) + buckets - 1) / buckets);
      while (rank < ranks && thresholds[rank] <= smallest) ++rank;
      guide[j] = rank;
    }
    // Run lists with empty runs, single-slot runs, and runs straddling
    // the implementations' internal chunk size (1024 states).
    const std::size_t n_runs = trial == 0 ? 0 : 1 + rng.uniform(40);
    std::vector<std::uint64_t> starts(n_runs);
    std::vector<std::uint32_t> run_slots(n_runs);
    std::vector<std::uint64_t> expanded;
    for (std::size_t i = 0; i < n_runs; ++i) {
      starts[i] = rng.next();
      switch (rng.uniform(5)) {
        case 0: run_slots[i] = 0; break;
        case 1: run_slots[i] = 1; break;
        case 2: run_slots[i] = 1020 + rng.uniform(10); break;  // chunk edge
        default: run_slots[i] = rng.uniform(120); break;
      }
      for (std::uint32_t s = 0; s < run_slots[i]; ++s) {
        expanded.push_back(starts[i] + s * kGamma);
      }
    }
    std::vector<std::uint32_t> out_variant(expanded.size(), 0xDEADu);
    std::vector<std::uint32_t> out_scalar(expanded.size(), 0xBEEFu);
    std::vector<std::uint32_t> out_expanded(expanded.size(), 0xF00Du);
    variant().zipf_rank_runs(starts.data(), run_slots.data(), n_runs, kGamma,
                             thresholds.data(), guide.data(), buckets,
                             out_variant.data());
    scalar().zipf_rank_runs(starts.data(), run_slots.data(), n_runs, kGamma,
                            thresholds.data(), guide.data(), buckets,
                            out_scalar.data());
    variant().zipf_rank_batch(expanded.data(), expanded.size(),
                              thresholds.data(), guide.data(), buckets,
                              out_expanded.data());
    EXPECT_EQ(out_variant, out_scalar)
        << "n_runs=" << n_runs << " total=" << expanded.size();
    EXPECT_EQ(out_variant, out_expanded)
        << "n_runs=" << n_runs << " total=" << expanded.size();
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, KernelFuzz,
                         ::testing::Values(Isa::kAvx2, Isa::kAvx512),
                         [](const ::testing::TestParamInfo<Isa>& param) {
                           return isa_name(param.param);
                         });

}  // namespace
}  // namespace vlm::common::kernels
