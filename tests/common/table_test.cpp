#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/csv.h"

namespace vlm::common {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| longer |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 3), "1.235");
  EXPECT_EQ(TextTable::fmt_int(-42), "-42");
  EXPECT_EQ(TextTable::fmt_percent(0.12345, 2), "12.35%");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/vlm_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.add_row({"1", "2"});
    csv.add_row({"a,b", "quote\"inside"});
    EXPECT_EQ(csv.row_count(), 2u);
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_NE(content.find("x,y\n"), std::string::npos);
  EXPECT_NE(content.find("\"a,b\""), std::string::npos);
  EXPECT_NE(content.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(CsvWriter, RejectsBadPathAndWidth) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
  const std::string path = testing::TempDir() + "/vlm_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::common
