#include "common/rng.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/chi_square.h"
#include "stats/descriptive.h"

namespace vlm::common {
namespace {

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256ss a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  Xoshiro256ss a2(123);
  bool differs = false;
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Xoshiro, UniformRespectsBound) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(37), 37u);
  }
}

TEST(Xoshiro, UniformRejectsZeroBound) {
  Xoshiro256ss rng(5);
  EXPECT_THROW((void)rng.uniform(0), std::invalid_argument);
}

TEST(Xoshiro, UniformBoundOneAlwaysZero) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Xoshiro, UniformIsUnbiasedOverBins) {
  Xoshiro256ss rng(42);
  constexpr std::uint64_t kBins = 100;  // deliberately not a power of two
  std::vector<std::uint64_t> counts(kBins, 0);
  for (int i = 0; i < 200000; ++i) ++counts[rng.uniform(kBins)];
  const double stat = vlm::stats::chi_square_uniform(counts);
  EXPECT_LT(stat, vlm::stats::chi_square_critical_999(kBins - 1));
}

TEST(Xoshiro, UniformDoubleInUnitInterval) {
  Xoshiro256ss rng(9);
  vlm::stats::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.push(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Xoshiro256ss rng(11);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(Xoshiro, BernoulliEdgeProbabilities) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW((void)rng.bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::invalid_argument);
}

TEST(Xoshiro, ForkedStreamsAreIndependentlySeeded) {
  Xoshiro256ss parent(3);
  Xoshiro256ss child_a = parent.fork(1);
  Xoshiro256ss child_b = parent.fork(2);
  bool differs = false;
  for (int i = 0; i < 64; ++i) differs |= (child_a.next() != child_b.next());
  EXPECT_TRUE(differs);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256ss::min() == 0);
  static_assert(Xoshiro256ss::max() == ~std::uint64_t{0});
  Xoshiro256ss rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace vlm::common
