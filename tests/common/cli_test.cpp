#include "common/cli.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vlm::common {
namespace {

ArgParser make_parser() {
  ArgParser parser("prog", "test parser");
  parser.add_flag("verbose", false, "enable verbosity");
  parser.add_int("count", 42, "a count");
  parser.add_double("ratio", 1.5, "a ratio");
  parser.add_string("name", "default", "a name");
  return parser;
}

int parse(ArgParser& parser, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parser.parse(static_cast<int>(argv.size()), argv.data()) ? 1 : 0;
}

TEST(ArgParser, DefaultsApply) {
  ArgParser parser = make_parser();
  ASSERT_EQ(parse(parser, {}), 1);
  EXPECT_FALSE(parser.get_flag("verbose"));
  EXPECT_EQ(parser.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(parser.get_double("ratio"), 1.5);
  EXPECT_EQ(parser.get_string("name"), "default");
}

TEST(ArgParser, EqualsSyntax) {
  ArgParser parser = make_parser();
  ASSERT_EQ(parse(parser, {"--count=7", "--ratio=2.25", "--name=abc"}), 1);
  EXPECT_EQ(parser.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(parser.get_double("ratio"), 2.25);
  EXPECT_EQ(parser.get_string("name"), "abc");
}

TEST(ArgParser, SpaceSyntax) {
  ArgParser parser = make_parser();
  ASSERT_EQ(parse(parser, {"--count", "9", "--name", "xyz"}), 1);
  EXPECT_EQ(parser.get_int("count"), 9);
  EXPECT_EQ(parser.get_string("name"), "xyz");
}

TEST(ArgParser, BareBooleanFlag) {
  ArgParser parser = make_parser();
  ASSERT_EQ(parse(parser, {"--verbose"}), 1);
  EXPECT_TRUE(parser.get_flag("verbose"));
}

TEST(ArgParser, ExplicitBooleanValue) {
  ArgParser parser = make_parser();
  ASSERT_EQ(parse(parser, {"--verbose=false"}), 1);
  EXPECT_FALSE(parser.get_flag("verbose"));
}

TEST(ArgParser, UnknownFlagThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--bogus"}), std::invalid_argument);
}

TEST(ArgParser, MalformedNumbersThrow) {
  ArgParser parser = make_parser();
  ASSERT_EQ(parse(parser, {"--count=12x"}), 1);
  EXPECT_THROW((void)parser.get_int("count"), std::invalid_argument);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--count"}), std::invalid_argument);
}

TEST(ArgParser, PositionalArgumentsRejected) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"stray"}), std::invalid_argument);
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser parser = make_parser();
  EXPECT_EQ(parse(parser, {"--help"}), 0);
  EXPECT_NE(parser.help_text().find("--count"), std::string::npos);
}

TEST(ArgParser, WrongTypeAccessThrows) {
  ArgParser parser = make_parser();
  ASSERT_EQ(parse(parser, {}), 1);
  EXPECT_THROW((void)parser.get_int("name"), std::invalid_argument);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser parser("p", "d");
  parser.add_int("x", 1, "x");
  EXPECT_THROW(parser.add_flag("x", false, "dup"), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::common
