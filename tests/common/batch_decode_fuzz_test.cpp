// Differential fuzz of the cache-blocked batch decode: random fleets
// (K, mixed power-of-two sizes down to the sub-word sizing floor),
// random tile sizes, and random worker counts, asserted bit-identical —
// every field of JointZeroCounts — to the per-pair fused kernel, on
// every kernel variant compiled in and available on this host. The
// blocking and the parallel reduction must never change a single count.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_array.h"
#include "common/kernels/kernels.h"
#include "common/rng.h"

namespace vlm::common {
namespace {

BitArray random_array(std::size_t bits, Xoshiro256ss& rng) {
  BitArray out(bits);
  // Load factors from sparse to near-saturated, so zero counts span the
  // whole range (including saturation corner cases).
  const std::size_t sets = rng.uniform(2 * bits + 1);
  for (std::size_t i = 0; i < sets; ++i) {
    out.set(static_cast<std::size_t>(rng.uniform(bits)));
  }
  return out;
}

class BatchDecodeFuzz : public ::testing::TestWithParam<kernels::Isa> {
 protected:
  void SetUp() override {
    if (!kernels::available(GetParam())) {
      GTEST_SKIP() << kernels::isa_name(GetParam())
                   << " not available on this host";
    }
  }
};

TEST_P(BatchDecodeFuzz, BlockedMatchesPerPairEverywhere) {
  const kernels::KernelTable& table = kernels::table_for(GetParam());
  Xoshiro256ss rng(0xB10C + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t k = 2 + rng.uniform(9);  // 2..10 arrays
    std::vector<BitArray> arrays;
    arrays.reserve(k);
    for (std::size_t r = 0; r < k; ++r) {
      // Power-of-two sizes from the sub-word sizing floor (8 bits) to
      // 2^14, so unfold ratios, sub-word fallbacks, and equal-size pairs
      // all occur.
      const std::size_t bits = std::size_t{1} << (3 + rng.uniform(12));
      arrays.push_back(random_array(bits, rng));
    }
    std::vector<const BitArray*> ptrs;
    for (const BitArray& a : arrays) ptrs.push_back(&a);

    BatchDecodeOptions options;
    const std::size_t tile_choices[] = {1, 2, 3, 8, 64, 1024, 0};
    options.tile_words = tile_choices[rng.uniform(7)];
    const unsigned worker_choices[] = {1, 2, 3, 7};
    options.workers = worker_choices[rng.uniform(4)];
    options.table = &table;
    BatchDecodeStats stats;
    const std::vector<JointZeroCounts> got =
        joint_zero_counts_batch(ptrs, options, &stats);

    ASSERT_EQ(got.size(), k * (k - 1) / 2);
    std::size_t p = 0;
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b, ++p) {
        const JointZeroCounts expected =
            joint_zero_counts(arrays[a], arrays[b]);
        EXPECT_EQ(got[p].size_small, expected.size_small)
            << "trial=" << trial << " pair (" << a << "," << b
            << ") tile=" << options.tile_words
            << " workers=" << options.workers;
        EXPECT_EQ(got[p].size_large, expected.size_large);
        EXPECT_EQ(got[p].zeros_small, expected.zeros_small);
        EXPECT_EQ(got[p].zeros_large, expected.zeros_large);
        EXPECT_EQ(got[p].zeros_or, expected.zeros_or);
        EXPECT_EQ(got[p].words_scanned, expected.words_scanned);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, BatchDecodeFuzz,
                         ::testing::Values(kernels::Isa::kScalar,
                                           kernels::Isa::kAvx2,
                                           kernels::Isa::kAvx512),
                         [](const ::testing::TestParamInfo<kernels::Isa>&
                                param) {
                           return kernels::isa_name(param.param);
                         });

}  // namespace
}  // namespace vlm::common
