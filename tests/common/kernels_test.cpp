// Deterministic unit tests of the kernel dispatch layer: selection
// invariants, and hand-computable edge cases for every variant the host
// can run (broadcast patterns, sub-vector tails, scatter validation).
#include "common/kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace vlm::common::kernels {
namespace {

TEST(KernelDispatch, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(compiled(Isa::kScalar));
  EXPECT_TRUE(available(Isa::kScalar));
  EXPECT_EQ(&table_for(Isa::kScalar), &scalar_table());
  EXPECT_EQ(scalar_table().isa, Isa::kScalar);
  EXPECT_STREQ(scalar_table().name, "scalar");
}

TEST(KernelDispatch, AvailableIsasStartWithScalar) {
  const std::vector<Isa> isas = available_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  for (const Isa isa : isas) {
    const KernelTable& table = table_for(isa);
    EXPECT_EQ(table.isa, isa);
    EXPECT_STREQ(table.name, isa_name(isa));
    EXPECT_NE(table.popcount, nullptr);
    EXPECT_NE(table.or_popcount_cyclic, nullptr);
    EXPECT_NE(table.or_popcount_cyclic_batch, nullptr);
    EXPECT_NE(table.merge_or, nullptr);
    EXPECT_NE(table.set_scatter, nullptr);
  }
}

TEST(KernelDispatch, ActiveIsAnAvailableIsa) {
  const std::vector<Isa> isas = available_isas();
  EXPECT_NE(std::find(isas.begin(), isas.end(), active().isa), isas.end());
  EXPECT_STREQ(active_name(), isa_name(active().isa));
}

TEST(KernelDispatch, UnavailableIsaThrows) {
  for (const Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (!available(isa)) {
      EXPECT_THROW((void)table_for(isa), std::invalid_argument);
    }
  }
}

TEST(KernelDispatch, IsaNames) {
  EXPECT_STREQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::kAvx2), "avx2");
  EXPECT_STREQ(isa_name(Isa::kAvx512), "avx512");
}

class KernelVariants : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    if (!available(GetParam())) {
      GTEST_SKIP() << isa_name(GetParam()) << " not available on this host";
    }
  }
  const KernelTable& table() { return table_for(GetParam()); }
};

TEST_P(KernelVariants, PopcountKnownPatterns) {
  // Sizes straddle vector widths: sub-vector, exact, and ragged tails.
  for (const std::size_t n : {1u, 3u, 4u, 7u, 8u, 13u, 16u, 31u, 64u, 100u}) {
    const std::vector<std::uint64_t> zeros(n, 0);
    const std::vector<std::uint64_t> ones(n, ~std::uint64_t{0});
    const std::vector<std::uint64_t> alt(n, 0x5555555555555555ull);
    EXPECT_EQ(table().popcount(zeros.data(), n), 0u) << "n=" << n;
    EXPECT_EQ(table().popcount(ones.data(), n), 64 * n) << "n=" << n;
    EXPECT_EQ(table().popcount(alt.data(), n), 32 * n) << "n=" << n;
  }
}

TEST_P(KernelVariants, OrPopcountCyclicBroadcastPeriods) {
  // Periods 1, 2, 4, 8 exercise the pattern-broadcast paths; 16 the
  // period-block path; 3 and 5 the scalar fallback.
  const std::size_t n_large = 53;  // ragged on purpose
  std::vector<std::uint64_t> large(n_large, 0);
  for (std::size_t i = 0; i < n_large; i += 2) large[i] = 0x0F0Full;  // 8 bits
  for (const std::size_t n_small : {1u, 2u, 3u, 4u, 5u, 8u, 16u}) {
    std::vector<std::uint64_t> small(n_small, 0);
    small[n_small - 1] = 0xF000ull;  // 4 bits, disjoint from large's
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n_large; ++i) {
      expected += static_cast<std::size_t>(
          std::popcount(large[i] | small[i % n_small]));
    }
    EXPECT_EQ(
        table().or_popcount_cyclic(large.data(), n_large, small.data(), n_small),
        expected)
        << "period " << n_small;
  }
}

TEST_P(KernelVariants, OrPopcountCyclicSmallNotSmallerThanLarge) {
  // n_small >= n_large must read only the first n_large words.
  const std::vector<std::uint64_t> large(5, 0x3ull);
  const std::vector<std::uint64_t> small(9, 0xCull);
  EXPECT_EQ(table().or_popcount_cyclic(large.data(), 5, small.data(), 9),
            5u * 4u);
  EXPECT_EQ(table().or_popcount_cyclic(large.data(), 5, small.data(), 5),
            5u * 4u);
}

TEST_P(KernelVariants, OrPopcountCyclicBatchMatchesPerPartnerReference) {
  // One anchor tile against partners of every alignment class: period >=
  // tile starting mid-period (contiguous block), period dividing the
  // tile start (cyclic from word 0), and a period that straddles the
  // tile start (the generic wrap fallback). Accumulation must be `+=`.
  const std::size_t n_anchor = 64;
  std::vector<std::uint64_t> anchor(n_anchor);
  for (std::size_t i = 0; i < n_anchor; ++i) {
    anchor[i] = 0x0101010101010101ull << (i % 5);
  }
  const std::vector<std::size_t> periods{1, 2, 4, 8, 16, 64, 3, 7};
  std::vector<std::vector<std::uint64_t>> partner_storage;
  std::vector<const std::uint64_t*> partners;
  for (const std::size_t period : periods) {
    std::vector<std::uint64_t> p(period);
    for (std::size_t i = 0; i < period; ++i) {
      p[i] = 0xF0F0F0F0F0F0F0F0ull >> (i % 7);
    }
    partner_storage.push_back(std::move(p));
    partners.push_back(partner_storage.back().data());
  }

  for (const auto& [tile_begin, tile_end] :
       {std::pair<std::size_t, std::size_t>{0, 64},
        {0, 13},
        {13, 29},
        {32, 64},
        {63, 64}}) {
    std::vector<std::size_t> acc(periods.size(), 100);  // preloaded: +=
    table().or_popcount_cyclic_batch(anchor.data(), tile_begin, tile_end,
                                     partners.data(), periods.data(),
                                     periods.size(), acc.data());
    for (std::size_t j = 0; j < periods.size(); ++j) {
      std::size_t expected = 100;
      for (std::size_t i = tile_begin; i < tile_end; ++i) {
        expected += static_cast<std::size_t>(
            std::popcount(anchor[i] | partners[j][i % periods[j]]));
      }
      EXPECT_EQ(acc[j], expected)
          << "tile [" << tile_begin << "," << tile_end << ") partner period "
          << periods[j];
    }
  }
}

TEST_P(KernelVariants, MergeOrMergesAndCounts) {
  for (const std::size_t n : {1u, 4u, 9u, 16u, 27u}) {
    std::vector<std::uint64_t> dst(n, 0x5555555555555555ull);
    const std::vector<std::uint64_t> src(n, 0xAAAAAAAAAAAAAAAAull);
    EXPECT_EQ(table().merge_or(dst.data(), src.data(), n), 64 * n) << "n=" << n;
    for (const std::uint64_t w : dst) EXPECT_EQ(w, ~std::uint64_t{0});
  }
}

TEST_P(KernelVariants, SetScatterSetsValidatesAndCounts) {
  std::vector<std::uint64_t> words(3, 0);
  const std::size_t bit_count = 130;  // ragged final word
  const std::vector<std::size_t> indices{0, 64, 129, 129, 1};
  EXPECT_EQ(table().set_scatter(words.data(), bit_count, indices.data(),
                                indices.size()),
            4u);
  EXPECT_EQ(words[0], 0x3ull);
  EXPECT_EQ(words[1], 0x1ull);
  EXPECT_EQ(words[2], 0x2ull);
}

TEST_P(KernelVariants, SetScatterRejectsBeforeMutating) {
  std::vector<std::uint64_t> words(2, 0);
  const std::vector<std::size_t> indices{5, 128};  // second is out of range
  EXPECT_THROW(
      (void)table().set_scatter(words.data(), 128, indices.data(), 2),
      std::invalid_argument);
  EXPECT_EQ(words[0], 0u);  // nothing written before validation passed
  EXPECT_EQ(words[1], 0u);
}

TEST(SampledWordCount, ClosedFormEdgeCases) {
  EXPECT_EQ(sampled_word_count(0, 1), 0u);
  EXPECT_EQ(sampled_word_count(0, 16), 0u);
  // stride 1 always covers the whole array, ragged or not.
  EXPECT_EQ(sampled_word_count(64, 1), 64u);
  EXPECT_EQ(sampled_word_count(61, 1), 61u);
  EXPECT_EQ(sampled_word_count(7, 1), 7u);
  // 64 words = 8 blocks: stride 2 samples blocks 0,2,4,6 -> 32 words.
  EXPECT_EQ(sampled_word_count(64, 2), 32u);
  // Stride at/above the block count samples only block 0.
  EXPECT_EQ(sampled_word_count(64, 8), 8u);
  EXPECT_EQ(sampled_word_count(64, 9), 8u);
  EXPECT_EQ(sampled_word_count(64, 1000), 8u);
  // Ragged final block (61 words = 7 full blocks + 5 words) is clipped
  // only when it lands on the stride grid: 8 blocks, stride 7 samples
  // blocks 0 and 7 -> 8 + 5 words.
  EXPECT_EQ(sampled_word_count(61, 7), 13u);
  // Stride 3 samples blocks 0, 3, 6 — final block 7 missed, no clip.
  EXPECT_EQ(sampled_word_count(61, 3), 24u);
  // Single partial block.
  EXPECT_EQ(sampled_word_count(5, 4), 5u);
}

TEST_P(KernelVariants, OrPopcountSampledKnownPatterns) {
  // 24 words = 3 blocks; small has period 3 so every block sees the
  // same cyclic pattern. Each OR'd word holds 8 | 4 bits disjoint.
  const std::vector<std::uint64_t> large(24, 0x0F0Full);  // 8 bits/word
  const std::vector<std::uint64_t> small{0xF000ull, 0xF000ull, 0xF000ull};
  EXPECT_EQ(table().or_popcount_sampled(large.data(), 24, small.data(), 3, 1),
            24u * 12u);
  // stride 2 samples blocks 0 and 2 -> 16 words.
  EXPECT_EQ(table().or_popcount_sampled(large.data(), 24, small.data(), 3, 2),
            16u * 12u);
  // stride 3+ samples only block 0 -> 8 words.
  EXPECT_EQ(table().or_popcount_sampled(large.data(), 24, small.data(), 3, 3),
            8u * 12u);
  EXPECT_EQ(table().or_popcount_sampled(large.data(), 24, small.data(), 3, 99),
            8u * 12u);
}

TEST_P(KernelVariants, ZipfRankRunsEmptyAndZeroSlotRuns) {
  // A CDF with a single all-covering threshold: every draw ranks 0.
  const std::vector<std::uint64_t> thresholds{(std::uint64_t{1} << 53) + 1};
  const std::vector<std::uint32_t> guide{0, 0};
  // No runs at all: must not touch the output.
  table().zipf_rank_runs(nullptr, nullptr, 0, 1, thresholds.data(),
                         guide.data(), 1, nullptr);
  // Zero-slot runs interleaved with real ones produce a dense output.
  const std::vector<std::uint64_t> starts{7, 11, 13};
  const std::vector<std::uint32_t> run_slots{0, 3, 0};
  std::vector<std::uint32_t> out(3, 0xDEADu);
  table().zipf_rank_runs(starts.data(), run_slots.data(), 3, 1,
                         thresholds.data(), guide.data(), 1, out.data());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 0, 0}));
}

INSTANTIATE_TEST_SUITE_P(AllIsas, KernelVariants,
                         ::testing::Values(Isa::kScalar, Isa::kAvx2,
                                           Isa::kAvx512),
                         [](const ::testing::TestParamInfo<Isa>& param) {
                           return isa_name(param.param);
                         });

}  // namespace
}  // namespace vlm::common::kernels
