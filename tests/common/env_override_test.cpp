// The VLM_KERNELS / VLM_DECODE / VLM_INGEST overrides all route through
// one parser; these tests pin its contract — exact matching, unset/empty
// and unrecognized both fall back, and the unrecognized warning fires at
// most once per (variable, value) pair — through the text seam so no test
// mutates the process environment.
#include "common/env_override.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace vlm::common {
namespace {

constexpr EnvEnumChoice kChoices[] = {{"scalar", 0}, {"batch", 1}, {"auto", 2}};

TEST(EnvOverride, MatchesRecognizedValuesExactly) {
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_A", "scalar", kChoices, -1), 0);
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_A", "batch", kChoices, -1), 1);
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_A", "auto", kChoices, -1), 2);
}

TEST(EnvOverride, UnsetAndEmptyKeepTheFallback) {
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_B", nullptr, kChoices, -7), -7);
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_B", "", kChoices, 42), 42);
}

TEST(EnvOverride, MatchingIsCaseAndAffixSensitive) {
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_C", "Batch", kChoices, -1), -1);
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_C", "batchy", kChoices, -1), -1);
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_C", " batch", kChoices, -1), -1);
}

TEST(EnvOverride, UnrecognizedValueWarnsOncePerPairAndFallsBack) {
  // Capture stderr across three lookups of the same bad value plus one of
  // a different value: warn-once is keyed on (var, value), so exactly two
  // warnings must appear.
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_D", "bogus", kChoices, 9), 9);
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_D", "bogus", kChoices, 9), 9);
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_D", "bogus", kChoices, 9), 9);
  EXPECT_EQ(parse_env_enum_text("VLM_TEST_D", "other", kChoices, 9), 9);
  const std::string captured = ::testing::internal::GetCapturedStderr();
  std::size_t warnings = 0;
  for (std::size_t pos = captured.find("vlm: warning:");
       pos != std::string::npos;
       pos = captured.find("vlm: warning:", pos + 1)) {
    ++warnings;
  }
  EXPECT_EQ(warnings, 2u) << captured;
  // The warning names the accepted spellings so a user can fix the export
  // without reading source.
  EXPECT_NE(captured.find("scalar|batch|auto"), std::string::npos) << captured;
  EXPECT_NE(captured.find("VLM_TEST_D='bogus'"), std::string::npos) << captured;
}

TEST(EnvOverride, ReadsTheRealEnvironment) {
  // setenv/getenv round trip through parse_env_enum itself — a variable
  // name no other test (or the warn-once set) touches.
  ASSERT_EQ(setenv("VLM_TEST_E", "batch", 1), 0);
  EXPECT_EQ(parse_env_enum("VLM_TEST_E", kChoices, -1), 1);
  ASSERT_EQ(unsetenv("VLM_TEST_E"), 0);
  EXPECT_EQ(parse_env_enum("VLM_TEST_E", kChoices, -1), -1);
}

}  // namespace
}  // namespace vlm::common
