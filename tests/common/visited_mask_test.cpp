#include "common/visited_mask.h"

#include <gtest/gtest.h>

namespace vlm::common {
namespace {

TEST(VisitedMask, InsertReportsNewElementsOnly) {
  VisitedMask mask(10);
  mask.begin_pass();
  EXPECT_TRUE(mask.insert(3));
  EXPECT_FALSE(mask.insert(3));
  EXPECT_TRUE(mask.insert(9));
  EXPECT_TRUE(mask.contains(3));
  EXPECT_TRUE(mask.contains(9));
  EXPECT_FALSE(mask.contains(0));
}

TEST(VisitedMask, BeginPassForgetsPreviousInserts) {
  VisitedMask mask(4);
  mask.begin_pass();
  mask.insert(1);
  mask.insert(2);
  mask.begin_pass();
  EXPECT_FALSE(mask.contains(1));
  EXPECT_FALSE(mask.contains(2));
  EXPECT_TRUE(mask.insert(1));
}

TEST(VisitedMask, SurvivesStampWraparound) {
  // pass_ is a 32-bit counter; force the wraparound path by running
  // begin_pass until it cycles would take 2^32 calls, so instead verify
  // the documented invariant directly: a fresh mask followed by enough
  // passes still dedups correctly (each pass independent of the last).
  VisitedMask mask(3);
  for (int pass = 0; pass < 1000; ++pass) {
    mask.begin_pass();
    EXPECT_TRUE(mask.insert(0));
    EXPECT_FALSE(mask.insert(0));
    EXPECT_FALSE(mask.contains(2));
  }
}

TEST(VisitedMask, UniverseSizeIsFixed) {
  const VisitedMask mask(17);
  EXPECT_EQ(mask.universe_size(), 17u);
}

}  // namespace
}  // namespace vlm::common
