#include "common/bit_array.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace vlm::common {
namespace {

TEST(BitArray, StartsAllZero) {
  BitArray bits(128);
  EXPECT_EQ(bits.size(), 128u);
  EXPECT_EQ(bits.count_ones(), 0u);
  EXPECT_EQ(bits.count_zeros(), 128u);
  EXPECT_DOUBLE_EQ(bits.zero_fraction(), 1.0);
}

TEST(BitArray, RejectsZeroSize) {
  EXPECT_THROW(BitArray(0), std::invalid_argument);
}

TEST(BitArray, SetAndTest) {
  BitArray bits(70);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(69);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(69));
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(65));
  EXPECT_EQ(bits.count_ones(), 4u);
}

TEST(BitArray, SetIsIdempotent) {
  BitArray bits(16);
  bits.set(7);
  bits.set(7);
  EXPECT_EQ(bits.count_ones(), 1u);
}

TEST(BitArray, OutOfRangeAccessThrows) {
  BitArray bits(16);
  EXPECT_THROW(bits.set(16), std::invalid_argument);
  EXPECT_THROW((void)bits.test(16), std::invalid_argument);
}

TEST(BitArray, ResetClearsEverything) {
  BitArray bits(40);
  bits.set(3);
  bits.set(39);
  bits.reset();
  EXPECT_EQ(bits.count_ones(), 0u);
}

TEST(BitArray, ZeroFractionCountsExactly) {
  BitArray bits(8);
  bits.set(1);
  bits.set(2);
  EXPECT_DOUBLE_EQ(bits.zero_fraction(), 6.0 / 8.0);
}

// --- Unfolding (paper Eq. 3) ---

TEST(BitArrayUnfold, DuplicatesContent) {
  BitArray bits(4);
  bits.set(1);
  bits.set(3);
  const BitArray unfolded = bits.unfolded(12);
  ASSERT_EQ(unfolded.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(unfolded.test(i), bits.test(i % 4)) << "index " << i;
  }
}

TEST(BitArrayUnfold, PreservesZeroFraction) {
  BitArray bits(64);
  for (std::size_t i : {0u, 5u, 17u, 40u, 63u}) bits.set(i);
  const BitArray unfolded = bits.unfolded(64 * 8);
  EXPECT_DOUBLE_EQ(unfolded.zero_fraction(), bits.zero_fraction());
}

TEST(BitArrayUnfold, WordAlignedFastPathMatchesBitPath) {
  // 128 bits is word-aligned; 96 is not a power of two but still a valid
  // multiple check: use 32 -> 96 (bit path) vs 128 -> 256 (word path).
  BitArray small(32);
  small.set(0);
  small.set(31);
  const BitArray u = small.unfolded(96);
  for (std::size_t i = 0; i < 96; ++i) {
    EXPECT_EQ(u.test(i), small.test(i % 32));
  }
  BitArray aligned(128);
  aligned.set(1);
  aligned.set(127);
  const BitArray u2 = aligned.unfolded(256);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(u2.test(i), aligned.test(i % 128));
  }
}

TEST(BitArrayUnfold, ToSameSizeIsCopy) {
  BitArray bits(16);
  bits.set(9);
  EXPECT_EQ(bits.unfolded(16), bits);
}

TEST(BitArrayUnfold, RejectsNonMultipleTarget) {
  BitArray bits(8);
  EXPECT_THROW((void)bits.unfolded(12), std::invalid_argument);
  EXPECT_THROW((void)bits.unfolded(4), std::invalid_argument);
}

// Word-assembly slow path (non-word-aligned sources): every output bit
// must equal source bit i % size, and the cached ones count must scale
// by exactly the unfold ratio.
TEST(BitArrayUnfold, NonAlignedSourcesMatchBitOracle) {
  for (const std::size_t size : {1u, 7u, 63u}) {
    for (const std::size_t ratio : {2u, 3u, 16u, 100u}) {
      BitArray bits(size);
      for (std::size_t i = 0; i < size; i += 2) bits.set(i);
      const BitArray unfolded = bits.unfolded(size * ratio);
      ASSERT_EQ(unfolded.size(), size * ratio);
      for (std::size_t i = 0; i < unfolded.size(); ++i) {
        EXPECT_EQ(unfolded.test(i), bits.test(i % size))
            << "size=" << size << " ratio=" << ratio << " bit " << i;
      }
      EXPECT_EQ(unfolded.count_ones(), bits.count_ones() * ratio)
          << "size=" << size << " ratio=" << ratio;
    }
  }
}

TEST(BitArrayUnfold, SingleBitSourceExtremes) {
  // size 1 is the deepest possible fold: the unfold is all-zeros or
  // all-ones depending on the single source bit.
  BitArray zero(1);
  EXPECT_EQ(zero.unfolded(4096).count_ones(), 0u);
  BitArray one(1);
  one.set(0);
  const BitArray u = one.unfolded(4096);
  EXPECT_EQ(u.count_ones(), 4096u);
  EXPECT_TRUE(u.test(0));
  EXPECT_TRUE(u.test(4095));
}

// --- Bitwise OR (paper Eq. 4) ---

TEST(BitArrayOr, CombinesBits) {
  BitArray a(8), b(8);
  a.set(1);
  b.set(2);
  b.set(1);
  const BitArray c = a | b;
  EXPECT_TRUE(c.test(1));
  EXPECT_TRUE(c.test(2));
  EXPECT_EQ(c.count_ones(), 2u);
}

TEST(BitArrayOr, RequiresEqualSizes) {
  BitArray a(8), b(16);
  EXPECT_THROW(a |= b, std::invalid_argument);
}

TEST(BitArrayOr, IsCommutativeAndIdempotent) {
  BitArray a(64), b(64);
  for (std::size_t i : {1u, 8u, 33u}) a.set(i);
  for (std::size_t i : {2u, 8u, 63u}) b.set(i);
  EXPECT_EQ(a | b, b | a);
  EXPECT_EQ((a | b) | b, a | b);
}

// --- Word-level merge + bulk set (sharded ingest primitives) ---

// merge_or / set_bulk maintain the cached ones-counter by popcount; these
// tests pin that against the per-bit reference across sub-word,
// word-aligned, and unaligned sizes.

BitArray patterned(std::size_t size, std::size_t stride, std::size_t phase) {
  BitArray bits(size);
  for (std::size_t i = phase; i < size; i += stride) bits.set(i);
  return bits;
}

BitArray reference_or(const BitArray& a, const BitArray& b) {
  BitArray out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.test(i) || b.test(i)) out.set(i);
  }
  return out;
}

TEST(BitArrayMergeOr, OnesCounterMatchesPerBitReference) {
  for (const std::size_t size : {13u, 64u, 100u, 128u, 257u}) {
    const BitArray a = patterned(size, 3, 1);
    const BitArray b = patterned(size, 5, 2);
    BitArray merged = a;
    merged.merge_or(b);
    const BitArray expected = reference_or(a, b);
    EXPECT_EQ(merged, expected) << "size " << size;
    EXPECT_EQ(merged.count_ones(), expected.count_ones()) << "size " << size;
    EXPECT_EQ(merged.count_zeros(), size - merged.count_ones());
  }
}

TEST(BitArrayMergeOr, ReturnsSelfForChaining) {
  BitArray a(64), b(64), c(64);
  b.set(1);
  c.set(2);
  a.merge_or(b).merge_or(c);
  EXPECT_EQ(a.count_ones(), 2u);
}

TEST(BitArraySetBulk, MatchesPerBitSetAcrossSizes) {
  for (const std::size_t size : {13u, 64u, 100u, 128u}) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < size; i += 3) indices.push_back(i);
    indices.push_back(size - 1);
    indices.push_back(0);  // duplicates must stay idempotent
    BitArray bulk(size);
    bulk.set_bulk(indices);
    BitArray per_bit(size);
    for (const std::size_t i : indices) per_bit.set(i);
    EXPECT_EQ(bulk, per_bit) << "size " << size;
    EXPECT_EQ(bulk.count_ones(), per_bit.count_ones()) << "size " << size;
  }
}

TEST(BitArraySetBulk, EmptySpanIsNoOp) {
  BitArray bits(32);
  bits.set(5);
  bits.set_bulk({});
  EXPECT_EQ(bits.count_ones(), 1u);
}

TEST(BitArraySetBulk, RejectsOutOfRangeIndex) {
  BitArray bits(32);
  const std::vector<std::size_t> indices{1, 32};
  EXPECT_THROW(bits.set_bulk(indices), std::invalid_argument);
}

TEST(BitArraySetBulk, CounterStaysConsistentAfterFurtherSets) {
  BitArray bits(100);
  const std::vector<std::size_t> indices{0, 63, 64, 99};
  bits.set_bulk(indices);
  bits.set(64);  // already set via bulk
  bits.set(50);
  EXPECT_EQ(bits.count_ones(), 5u);
}

TEST(ShardedBitArray, MergedEqualsSerialSetForAnyShardCount) {
  const std::size_t size = 100;  // unaligned on purpose
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < size; i += 7) indices.push_back(i);
  BitArray serial(size);
  for (const std::size_t i : indices) serial.set(i);
  for (const unsigned shard_count : {1u, 3u, 8u}) {
    ShardedBitArray sharded(size, shard_count);
    EXPECT_EQ(sharded.size(), size);
    EXPECT_EQ(sharded.shard_count(), shard_count);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      sharded.shard(static_cast<unsigned>(j) % shard_count).set(indices[j]);
    }
    EXPECT_EQ(sharded.merged(), serial) << "shards " << shard_count;
    EXPECT_EQ(sharded.merged().count_ones(), serial.count_ones());
  }
}

TEST(ShardedBitArray, OverlappingShardWritesStayIdempotent) {
  ShardedBitArray sharded(64, 4);
  for (unsigned w = 0; w < 4; ++w) sharded.shard(w).set(17);
  EXPECT_EQ(sharded.merged().count_ones(), 1u);
}

TEST(ShardedBitArray, ResetClearsEveryShard) {
  ShardedBitArray sharded(64, 3);
  sharded.shard(0).set(1);
  sharded.shard(2).set(2);
  sharded.reset();
  EXPECT_EQ(sharded.merged().count_ones(), 0u);
}

TEST(ShardedBitArray, RejectsBadShardAccess) {
  ShardedBitArray sharded(64, 2);
  EXPECT_THROW((void)sharded.shard(2), std::invalid_argument);
  EXPECT_THROW(ShardedBitArray(64, 0), std::invalid_argument);
}

// --- Serialization ---

TEST(BitArraySerialization, RoundTrips) {
  BitArray bits(70);
  for (std::size_t i : {0u, 7u, 8u, 64u, 69u}) bits.set(i);
  const auto bytes = bits.to_bytes();
  EXPECT_EQ(bytes.size(), 9u);
  const BitArray restored = BitArray::from_bytes(70, bytes);
  EXPECT_EQ(restored, bits);
}

TEST(BitArraySerialization, RejectsWrongLength) {
  BitArray bits(64);
  auto bytes = bits.to_bytes();
  bytes.push_back(0);
  EXPECT_THROW((void)BitArray::from_bytes(64, bytes), std::invalid_argument);
}

TEST(BitArraySerialization, RejectsTrailingGarbageBits) {
  // Declared 12 bits -> 2 bytes; bit 13 set is out of range.
  std::vector<std::uint8_t> bytes{0x00, 0xF0};
  EXPECT_THROW((void)BitArray::from_bytes(12, bytes), std::invalid_argument);
}

TEST(BitArraySerialization, RoundTripsNonWordMultipleSizes) {
  // Sizes that are neither byte- nor word-multiples: the final byte is
  // partially occupied and the recount must still be exact.
  for (const std::size_t size : {1u, 7u, 9u, 63u, 65u, 130u, 1000u}) {
    BitArray bits(size);
    for (std::size_t i = 0; i < size; i += 3) bits.set(i);
    if (size > 1) bits.set(size - 1);
    const auto bytes = bits.to_bytes();
    EXPECT_EQ(bytes.size(), (size + 7) / 8) << "size=" << size;
    const BitArray restored = BitArray::from_bytes(size, bytes);
    EXPECT_EQ(restored, bits) << "size=" << size;
    EXPECT_EQ(restored.count_ones(), bits.count_ones()) << "size=" << size;
  }
}

TEST(BitArraySerialization, RejectsAnyBitPastDeclaredSize) {
  // Regression: every unused bit position of the final byte must be
  // rejected, not just the top one — a malformed report cannot smuggle
  // extra ones past the recount.
  for (const std::size_t size : {1u, 7u, 9u, 65u}) {
    std::vector<std::uint8_t> bytes((size + 7) / 8, 0);
    for (std::size_t bad = size; bad < bytes.size() * 8; ++bad) {
      std::vector<std::uint8_t> tampered = bytes;
      tampered[bad / 8] = static_cast<std::uint8_t>(1u << (bad % 8));
      EXPECT_THROW((void)BitArray::from_bytes(size, tampered),
                   std::invalid_argument)
          << "size=" << size << " trailing bit " << bad;
    }
  }
}

TEST(BitArraySerialization, EmptyPatternRoundTripsAtWordBoundary) {
  BitArray bits(128);
  bits.set(127);
  const BitArray restored = BitArray::from_bytes(128, bits.to_bytes());
  EXPECT_TRUE(restored.test(127));
  EXPECT_EQ(restored.count_ones(), 1u);
}

// Reference implementation the fused kernel must match: materialize the
// unfolded array, OR, and count each zero set independently.
JointZeroCounts naive_joint_zero_counts(const BitArray& a, const BitArray& b) {
  const BitArray& small = a.size() <= b.size() ? a : b;
  const BitArray& large = a.size() <= b.size() ? b : a;
  const BitArray combined = small.size() == large.size()
                                ? small | large
                                : small.unfolded(large.size()) | large;
  JointZeroCounts out;
  out.size_small = small.size();
  out.size_large = large.size();
  out.zeros_small = small.count_zeros();
  out.zeros_large = large.count_zeros();
  out.zeros_or = combined.count_zeros();
  return out;
}

void expect_matches_naive(const BitArray& a, const BitArray& b) {
  const JointZeroCounts naive = naive_joint_zero_counts(a, b);
  const JointZeroCounts fused = joint_zero_counts(a, b);
  EXPECT_EQ(fused.size_small, naive.size_small);
  EXPECT_EQ(fused.size_large, naive.size_large);
  EXPECT_EQ(fused.zeros_small, naive.zeros_small);
  EXPECT_EQ(fused.zeros_large, naive.zeros_large);
  EXPECT_EQ(fused.zeros_or, naive.zeros_or);
  EXPECT_GT(fused.words_scanned, 0u);
}

TEST(JointZeroCounts, MatchesNaiveAcrossUnequalLengths) {
  // Word-aligned unequal sizes: the cyclic-indexing fast path.
  const std::vector<std::pair<std::size_t, std::size_t>> sizes{
      {64, 512}, {128, 1024}, {1 << 10, 1 << 14}, {1 << 12, 1 << 12}};
  for (const auto& [small_size, large_size] : sizes) {
    expect_matches_naive(patterned(small_size, 3, 1),
                         patterned(large_size, 7, 2));
  }
}

TEST(JointZeroCounts, MatchesNaiveForSubWordSizes) {
  // The sizing floor produces 8..32-bit arrays; these hit the
  // materializing fallback.
  expect_matches_naive(patterned(8, 2, 0), patterned(64, 5, 1));
  expect_matches_naive(patterned(16, 3, 1), patterned(16, 4, 0));
  expect_matches_naive(patterned(32, 5, 2), patterned(1 << 10, 9, 3));
}

TEST(JointZeroCounts, OrderInsensitive) {
  const BitArray small = patterned(256, 3, 0);
  const BitArray large = patterned(4096, 11, 5);
  const JointZeroCounts ab = joint_zero_counts(small, large);
  const JointZeroCounts ba = joint_zero_counts(large, small);
  EXPECT_EQ(ab.size_small, ba.size_small);
  EXPECT_EQ(ab.zeros_small, ba.zeros_small);
  EXPECT_EQ(ab.zeros_large, ba.zeros_large);
  EXPECT_EQ(ab.zeros_or, ba.zeros_or);
  EXPECT_EQ(ab.words_scanned, ba.words_scanned);
}

TEST(JointZeroCounts, AllZeroAndAllOneExtremes) {
  BitArray zeros(512);
  BitArray ones(4096);
  for (std::size_t i = 0; i < 4096; ++i) ones.set(i);
  const JointZeroCounts counts = joint_zero_counts(zeros, ones);
  EXPECT_EQ(counts.zeros_small, 512u);
  EXPECT_EQ(counts.zeros_large, 0u);
  EXPECT_EQ(counts.zeros_or, 0u);
}

TEST(JointZeroCounts, RejectsIncompatibleSizes) {
  // 192 does not divide 512 — the kernel must refuse with a clear error
  // rather than decode garbage, whichever way the caller orders them.
  const BitArray a(192), b(512);
  EXPECT_THROW((void)joint_zero_counts(a, b), std::invalid_argument);
  EXPECT_THROW((void)joint_zero_counts(b, a), std::invalid_argument);
  try {
    (void)joint_zero_counts(a, b);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("powers of two"), std::string::npos);
  }
}

TEST(JointZeroCounts, RejectsEmptyOperands) {
  const BitArray empty;
  const BitArray bits(64);
  EXPECT_THROW((void)joint_zero_counts(empty, bits), std::invalid_argument);
}

TEST(JointZeroCounts, SubWordFallbackMatchesReferenceExhaustively) {
  // Every sizing-floor combination the fallback can see: sub-word vs
  // sub-word (equal and unfolding) and sub-word vs multi-word, across
  // several phases, against the materializing reference.
  for (const std::size_t small_size : {8u, 16u, 32u}) {
    for (const std::size_t factor : {1u, 2u, 4u, 16u, 64u}) {
      for (std::size_t phase = 0; phase < 3; ++phase) {
        expect_matches_naive(patterned(small_size, 3, phase),
                             patterned(small_size * factor, 5, phase + 1));
      }
    }
  }
}

// --- to_bytes word-wise rewrite ---

TEST(BitArraySerialization, ToBytesMatchesPerBitExtraction) {
  // The word-wise to_bytes must emit exactly the bytes a per-bit walk
  // would, including the partially occupied final byte.
  for (const std::size_t size : {1u, 5u, 8u, 13u, 64u, 65u, 71u, 127u, 128u,
                                 129u, 1000u, 4096u}) {
    const BitArray bits = patterned(size, 3, size % 3);
    const std::vector<std::uint8_t> bytes = bits.to_bytes();
    ASSERT_EQ(bytes.size(), (size + 7) / 8) << "size=" << size;
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ((bytes[i / 8] >> (i % 8)) & 1u, bits.test(i) ? 1u : 0u)
          << "size=" << size << " bit " << i;
    }
    EXPECT_EQ(BitArray::from_bytes(size, bytes), bits) << "size=" << size;
  }
}

// --- Cache-blocked batch decode ---

TEST(JointZeroCountsBatch, MatchesPerPairForEveryTileAndWorkerChoice) {
  std::vector<BitArray> arrays;
  for (const auto& [size, stride, phase] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{1 << 12, 3, 0},
        {1 << 14, 5, 1},
        {1 << 12, 7, 2},
        {1 << 13, 11, 3},
        {1 << 14, 13, 4}}) {
    arrays.push_back(patterned(size, stride, phase));
  }
  std::vector<const BitArray*> ptrs;
  for (const BitArray& a : arrays) ptrs.push_back(&a);

  // Reference: the per-pair kernel, in upper-triangle row-major order.
  std::vector<JointZeroCounts> expected;
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    for (std::size_t b = a + 1; b < arrays.size(); ++b) {
      expected.push_back(joint_zero_counts(arrays[a], arrays[b]));
    }
  }

  for (const std::size_t tile_words :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{64},
        std::size_t{1 << 20}}) {
    for (const unsigned workers : {1u, 2u, 5u, 16u}) {
      BatchDecodeOptions options;
      options.tile_words = tile_words;
      options.workers = workers;
      BatchDecodeStats stats;
      const std::vector<JointZeroCounts> got =
          joint_zero_counts_batch(ptrs, options, &stats);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t p = 0; p < expected.size(); ++p) {
        EXPECT_EQ(got[p].size_small, expected[p].size_small)
            << "tile=" << tile_words << " workers=" << workers << " pair "
            << p;
        EXPECT_EQ(got[p].size_large, expected[p].size_large);
        EXPECT_EQ(got[p].zeros_small, expected[p].zeros_small);
        EXPECT_EQ(got[p].zeros_large, expected[p].zeros_large);
        EXPECT_EQ(got[p].zeros_or, expected[p].zeros_or);
        EXPECT_EQ(got[p].words_scanned, expected[p].words_scanned);
      }
      EXPECT_GT(stats.tile_words, 0u);
      EXPECT_GT(stats.tiles, 0u);
      EXPECT_EQ(stats.fallback_pairs, 0u);
      // 5 arrays × (4 pairs each − 1 load) saved passes.
      EXPECT_EQ(stats.dram_passes_saved, 5u * 3u);
    }
  }
}

TEST(JointZeroCountsBatch, SubWordArraysUseTheFallback) {
  // One sub-word array among word-sized ones: its pairs must fall back
  // to the materializing kernel and still match, and word-sized pairs
  // must still take the tile sweep.
  const BitArray tiny = patterned(16, 2, 1);
  const BitArray mid = patterned(256, 3, 0);
  const BitArray big = patterned(1024, 5, 2);
  const std::vector<const BitArray*> ptrs{&tiny, &mid, &big};
  BatchDecodeStats stats;
  const std::vector<JointZeroCounts> got =
      joint_zero_counts_batch(ptrs, {}, &stats);
  ASSERT_EQ(got.size(), 3u);
  const JointZeroCounts tm = joint_zero_counts(tiny, mid);
  const JointZeroCounts tb = joint_zero_counts(tiny, big);
  const JointZeroCounts mb = joint_zero_counts(mid, big);
  EXPECT_EQ(got[0].zeros_or, tm.zeros_or);
  EXPECT_EQ(got[0].words_scanned, tm.words_scanned);
  EXPECT_EQ(got[1].zeros_or, tb.zeros_or);
  EXPECT_EQ(got[2].zeros_or, mb.zeros_or);
  EXPECT_EQ(got[2].words_scanned, mb.words_scanned);
  EXPECT_EQ(stats.fallback_pairs, 2u);
  // Only the (mid, big) pair is tiled: neither array is reused, so no
  // DRAM pass is saved.
  EXPECT_EQ(stats.dram_passes_saved, 0u);
}

TEST(JointZeroCountsBatch, Guards) {
  const BitArray a = patterned(128, 3, 0);
  const BitArray incompatible(192);  // 192 does not divide 512
  const BitArray b(512);
  const std::vector<const BitArray*> one{&a};
  EXPECT_THROW((void)joint_zero_counts_batch(one), std::invalid_argument);
  const std::vector<const BitArray*> bad{&incompatible, &b};
  EXPECT_THROW((void)joint_zero_counts_batch(bad), std::invalid_argument);
  const BitArray empty;
  const std::vector<const BitArray*> has_empty{&a, &empty};
  EXPECT_THROW((void)joint_zero_counts_batch(has_empty),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlm::common
