#include "traffic/sweeps.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vlm::traffic {
namespace {

TEST(FigureSweep, PaperDefaultsProduceFullGrid) {
  // n_c from 0.01 n_x to 0.5 n_x in steps of 0.001 n_x: 491 points.
  const auto sweep = build_figure_sweep(FigureSweepSpec{});
  EXPECT_EQ(sweep.size(), 491u);
  EXPECT_EQ(sweep.front().n_c, 100u);
  EXPECT_EQ(sweep.back().n_c, 5000u);
  for (const auto& w : sweep) {
    EXPECT_EQ(w.n_x, 10'000u);
    EXPECT_EQ(w.n_y, 10'000u);
  }
}

TEST(FigureSweep, RatioScalesNy) {
  FigureSweepSpec spec;
  spec.ratio_y = 50.0;
  const auto sweep = build_figure_sweep(spec);
  EXPECT_EQ(sweep.front().n_y, 500'000u);
}

TEST(FigureSweep, CoarserStepShrinksGrid) {
  FigureSweepSpec spec;
  spec.c_step_frac = 0.01;
  const auto sweep = build_figure_sweep(spec);
  EXPECT_EQ(sweep.size(), 50u);
}

TEST(FigureSweep, StepsAreMonotoneAndBounded) {
  FigureSweepSpec spec;
  spec.c_step_frac = 0.005;
  const auto sweep = build_figure_sweep(spec);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].n_c, sweep[i - 1].n_c);
  }
  EXPECT_LE(sweep.back().n_c, sweep.back().n_x / 2);
}

TEST(FigureSweep, Guards) {
  FigureSweepSpec spec;
  spec.ratio_y = 0.5;
  EXPECT_THROW((void)build_figure_sweep(spec), std::invalid_argument);
  spec = {};
  spec.c_step_frac = 0.0;
  EXPECT_THROW((void)build_figure_sweep(spec), std::invalid_argument);
  spec = {};
  spec.c_min_frac = 0.6;
  spec.c_max_frac = 0.5;
  EXPECT_THROW((void)build_figure_sweep(spec), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::traffic
