#include "traffic/multi_rsu_workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/visited_mask.h"

namespace vlm::traffic {
namespace {

MultiRsuConfig small_config() {
  MultiRsuConfig config;
  config.rsu_count = 10;
  config.vehicle_count = 20'000;
  config.zipf_exponent = 1.0;
  config.min_visits = 2;
  config.max_visits = 4;
  config.seed = 3;
  return config;
}

TEST(MultiRsuWorkload, VisitListsAreDistinctAndBounded) {
  MultiRsuWorkload workload(small_config());
  workload.for_each_vehicle([&](std::uint64_t, std::span<const std::uint32_t> rsus) {
    ASSERT_GE(rsus.size(), 2u);
    ASSERT_LE(rsus.size(), 4u);
    std::set<std::uint32_t> unique(rsus.begin(), rsus.end());
    ASSERT_EQ(unique.size(), rsus.size());
    for (std::uint32_t r : rsus) ASSERT_LT(r, 10u);
  });
}

TEST(MultiRsuWorkload, GroundTruthMatchesStream) {
  MultiRsuWorkload workload(small_config());
  std::vector<std::uint64_t> volumes(10, 0);
  std::uint64_t pair_0_1 = 0;
  workload.for_each_vehicle([&](std::uint64_t, std::span<const std::uint32_t> rsus) {
    bool has0 = false, has1 = false;
    for (std::uint32_t r : rsus) {
      ++volumes[r];
      has0 |= (r == 0);
      has1 |= (r == 1);
    }
    if (has0 && has1) ++pair_0_1;
  });
  EXPECT_EQ(workload.node_volumes(), volumes);
  EXPECT_EQ(workload.pair_volume(0, 1), pair_0_1);
  EXPECT_EQ(workload.pair_volume(1, 0), pair_0_1);  // symmetric
}

TEST(MultiRsuWorkload, ZipfSkewMakesVolumesHeterogeneous) {
  MultiRsuWorkload workload(small_config());
  workload.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});
  const auto& v = workload.node_volumes();
  // RSU 0 is the most popular under Zipf; the tail is much lighter.
  EXPECT_GT(v[0], 2 * v[9]);
}

TEST(MultiRsuWorkload, DeterministicPerSeed) {
  MultiRsuWorkload a(small_config()), b(small_config());
  a.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});
  b.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});
  EXPECT_EQ(a.node_volumes(), b.node_volumes());
  EXPECT_EQ(a.pair_volume(2, 5), b.pair_volume(2, 5));
}

// --- Splittable itineraries (random-access generation) ---

TEST(MultiRsuWorkload, ItineraryIsPureAndSorted) {
  const MultiRsuWorkload workload(small_config());
  common::VisitedMask visited(10);
  std::vector<std::uint32_t> first, again;
  // Call out of order and repeatedly: the result depends only on
  // (config, vehicle index), never on call history.
  for (const std::uint64_t v : {17u, 3u, 17u, 19'999u, 0u, 17u}) {
    workload.itinerary(v, visited, first);
    EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
    workload.itinerary(v, visited, again);
    EXPECT_EQ(first, again) << "vehicle " << v;
  }
}

TEST(MultiRsuWorkload, ItineraryMatchesForEachVehicleStream) {
  MultiRsuWorkload streamed(small_config());
  const MultiRsuWorkload random_access(small_config());
  common::VisitedMask visited(10);
  std::vector<std::uint32_t> expected;
  streamed.for_each_vehicle(
      [&](std::uint64_t v, std::span<const std::uint32_t> rsus) {
        random_access.itinerary(v, visited, expected);
        ASSERT_EQ(std::vector<std::uint32_t>(rsus.begin(), rsus.end()),
                  expected)
            << "vehicle " << v;
      });
}

TEST(MultiRsuWorkload, ItineraryGuards) {
  const MultiRsuWorkload workload(small_config());
  std::vector<std::uint32_t> out;
  common::VisitedMask right(10), wrong(9);
  EXPECT_THROW(workload.itinerary(20'000, right, out), std::invalid_argument);
  EXPECT_THROW(workload.itinerary(0, wrong, out), std::invalid_argument);
}

TEST(MultiRsuWorkload, BulkItinerariesMatchPerVehicleAndFuseCounts) {
  // The kernel-batched bulk form must concatenate exactly the per-vehicle
  // itineraries (same draws, same order) for any sub-range, and its fused
  // histogram must count exactly the emitted positions. Two configs: the
  // seed shape (scan dedup, short walks) and a wide high-skew one whose
  // spans exceed 16 visits (VisitedMask dedup) with rejection runs long
  // enough to reach the scalar continuation.
  MultiRsuConfig wide = small_config();
  wide.rsu_count = 40;
  wide.min_visits = 2;
  wide.max_visits = 24;
  wide.zipf_exponent = 1.4;
  wide.seed = 11;
  for (const MultiRsuConfig& config : {small_config(), wide}) {
    MultiRsuWorkload workload(config);
    common::VisitedMask visited(config.rsu_count);
    common::UninitVector<std::uint32_t> positions;
    std::vector<std::uint64_t> offsets;
    std::vector<std::uint64_t> counts;
    const struct { std::uint64_t begin, end; } ranges[] = {
        {0, 0}, {0, 1}, {0, 257}, {123, 1987}, {19'000, 20'000}};
    for (const auto& range : ranges) {
      workload.itineraries(range.begin, range.end, visited, positions, offsets,
                           counts);
      ASSERT_EQ(offsets.size(), range.end - range.begin + 1);
      ASSERT_EQ(counts.size(), config.rsu_count);
      std::vector<std::uint64_t> want_counts(config.rsu_count, 0);
      std::vector<std::uint32_t> want;
      for (std::uint64_t v = range.begin; v < range.end; ++v) {
        const std::size_t i = static_cast<std::size_t>(v - range.begin);
        workload.itinerary(v, visited, want);
        const std::span<const std::uint32_t> got(
            positions.data() + offsets[i], offsets[i + 1] - offsets[i]);
        ASSERT_EQ(std::vector<std::uint32_t>(got.begin(), got.end()), want)
            << "vehicle " << v;
        for (const std::uint32_t r : want) ++want_counts[r];
      }
      EXPECT_EQ(counts, want_counts)
          << "range [" << range.begin << ", " << range.end << ")";
    }
  }
}

TEST(MultiRsuWorkload, SeedConfigItinerariesAreFrozen) {
  // Golden snapshot of the per-vehicle generator for the seed config
  // (rsus=10, vehicles=20000, zipf=1.0, visits 2..4, seed=3). Any change
  // to the seeding/dedup/sort pipeline shows up here before it silently
  // shifts every figure bench.
  const MultiRsuWorkload workload(small_config());
  const std::vector<std::vector<std::uint32_t>> expected{
      {1, 2, 4, 5},
      {1, 7},
      {0, 1, 2, 8},
      {0, 1, 4, 9},
      {0, 6, 8},
      {0, 1},
      {2, 4, 5},
      {0, 5},
  };
  common::VisitedMask visited(10);
  std::vector<std::uint32_t> rsus;
  for (std::size_t v = 0; v < expected.size(); ++v) {
    workload.itinerary(v, visited, rsus);
    EXPECT_EQ(rsus, expected[v]) << "vehicle " << v;
  }
}

TEST(MultiRsuWorkload, SeedConfigVolumesAreFrozen) {
  // Aggregate golden values over the full 20k-vehicle seed workload.
  MultiRsuWorkload workload(small_config());
  workload.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});
  const std::vector<std::uint64_t> expected{14869, 10247, 7542, 5911, 4891,
                                            4227,  3710,  3184, 2904, 2474};
  EXPECT_EQ(workload.node_volumes(), expected);
  EXPECT_EQ(workload.pair_volume(0, 1), 7300u);
}

TEST(MultiRsuWorkload, Guards) {
  MultiRsuConfig config = small_config();
  config.max_visits = 20;  // > rsu_count
  EXPECT_THROW(MultiRsuWorkload{config}, std::invalid_argument);
  config = small_config();
  config.rsu_count = 1;
  EXPECT_THROW(MultiRsuWorkload{config}, std::invalid_argument);
  MultiRsuWorkload workload(small_config());
  workload.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});
  EXPECT_THROW((void)workload.pair_volume(0, 0), std::invalid_argument);
  EXPECT_THROW((void)workload.pair_volume(0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::traffic
