#include "traffic/multi_rsu_workload.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace vlm::traffic {
namespace {

MultiRsuConfig small_config() {
  MultiRsuConfig config;
  config.rsu_count = 10;
  config.vehicle_count = 20'000;
  config.zipf_exponent = 1.0;
  config.min_visits = 2;
  config.max_visits = 4;
  config.seed = 3;
  return config;
}

TEST(MultiRsuWorkload, VisitListsAreDistinctAndBounded) {
  MultiRsuWorkload workload(small_config());
  workload.for_each_vehicle([&](std::uint64_t, std::span<const std::uint32_t> rsus) {
    ASSERT_GE(rsus.size(), 2u);
    ASSERT_LE(rsus.size(), 4u);
    std::set<std::uint32_t> unique(rsus.begin(), rsus.end());
    ASSERT_EQ(unique.size(), rsus.size());
    for (std::uint32_t r : rsus) ASSERT_LT(r, 10u);
  });
}

TEST(MultiRsuWorkload, GroundTruthMatchesStream) {
  MultiRsuWorkload workload(small_config());
  std::vector<std::uint64_t> volumes(10, 0);
  std::uint64_t pair_0_1 = 0;
  workload.for_each_vehicle([&](std::uint64_t, std::span<const std::uint32_t> rsus) {
    bool has0 = false, has1 = false;
    for (std::uint32_t r : rsus) {
      ++volumes[r];
      has0 |= (r == 0);
      has1 |= (r == 1);
    }
    if (has0 && has1) ++pair_0_1;
  });
  EXPECT_EQ(workload.node_volumes(), volumes);
  EXPECT_EQ(workload.pair_volume(0, 1), pair_0_1);
  EXPECT_EQ(workload.pair_volume(1, 0), pair_0_1);  // symmetric
}

TEST(MultiRsuWorkload, ZipfSkewMakesVolumesHeterogeneous) {
  MultiRsuWorkload workload(small_config());
  workload.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});
  const auto& v = workload.node_volumes();
  // RSU 0 is the most popular under Zipf; the tail is much lighter.
  EXPECT_GT(v[0], 2 * v[9]);
}

TEST(MultiRsuWorkload, DeterministicPerSeed) {
  MultiRsuWorkload a(small_config()), b(small_config());
  a.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});
  b.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});
  EXPECT_EQ(a.node_volumes(), b.node_volumes());
  EXPECT_EQ(a.pair_volume(2, 5), b.pair_volume(2, 5));
}

TEST(MultiRsuWorkload, Guards) {
  MultiRsuConfig config = small_config();
  config.max_visits = 20;  // > rsu_count
  EXPECT_THROW(MultiRsuWorkload{config}, std::invalid_argument);
  config = small_config();
  config.rsu_count = 1;
  EXPECT_THROW(MultiRsuWorkload{config}, std::invalid_argument);
  MultiRsuWorkload workload(small_config());
  workload.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});
  EXPECT_THROW((void)workload.pair_volume(0, 0), std::invalid_argument);
  EXPECT_THROW((void)workload.pair_volume(0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::traffic
