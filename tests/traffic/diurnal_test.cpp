#include "traffic/diurnal.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/sizing.h"
#include "vcps/simulation.h"

namespace vlm::traffic {
namespace {

TEST(Diurnal, MultipliersAverageToOne) {
  const DiurnalProfile profile = DiurnalProfile::standard_weekday();
  double total = 0.0;
  for (unsigned h = 0; h < 24; ++h) total += profile.multiplier(h);
  EXPECT_NEAR(total, 24.0, 1e-9);
}

TEST(Diurnal, HourlyVolumesSumToDailyTotal) {
  const DiurnalProfile profile = DiurnalProfile::standard_weekday();
  double total = 0.0;
  for (unsigned h = 0; h < 24; ++h) total += profile.hourly_volume(120'000, h);
  EXPECT_NEAR(total, 120'000.0, 1e-6);
}

TEST(Diurnal, StandardProfileHasDoublePeakShape) {
  const DiurnalProfile profile = DiurnalProfile::standard_weekday();
  // Morning and evening peaks dominate their shoulders; deep night trough.
  EXPECT_GT(profile.multiplier(8), profile.multiplier(5));
  EXPECT_GT(profile.multiplier(8), profile.multiplier(11));
  EXPECT_GT(profile.multiplier(17), profile.multiplier(13));
  EXPECT_LT(profile.multiplier(3), 0.2);
  EXPECT_GT(profile.peak_to_trough(), 10.0);
}

TEST(Diurnal, CustomProfileIsRescaled) {
  std::array<double, 24> flat{};
  flat.fill(5.0);
  const DiurnalProfile profile(flat);
  for (unsigned h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(profile.multiplier(h), 1.0);
  }
}

TEST(Diurnal, Guards) {
  std::array<double, 24> zeros{};
  EXPECT_THROW(DiurnalProfile{zeros}, std::invalid_argument);
  std::array<double, 24> negative{};
  negative.fill(1.0);
  negative[3] = -0.1;
  EXPECT_THROW(DiurnalProfile{negative}, std::invalid_argument);
  const DiurnalProfile profile = DiurnalProfile::standard_weekday();
  EXPECT_THROW((void)profile.multiplier(24), std::invalid_argument);
  EXPECT_THROW((void)profile.hourly_volume(-1.0, 3), std::invalid_argument);
}

TEST(Diurnal, HourlyPeriodsResizeArraysAcrossTheDay) {
  // Drive a two-RSU deployment through 24 hourly periods following the
  // profile; with alpha = 1 history adopts each hour's volume, so the
  // NEXT hour's array reflects the previous hour — sizes must span a
  // wide range between night and peak.
  const DiurnalProfile profile = DiurnalProfile::standard_weekday();
  vcps::SimulationConfig config;
  config.server.scheme =
      core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
  config.server.history_alpha = 1.0;
  config.seed = 31;
  const std::vector<vcps::RsuSite> sites{
      vcps::RsuSite{core::RsuId{1}, profile.hourly_volume(96'000, 23)}};
  vcps::VcpsSimulation sim(config, sites);

  std::size_t min_size = ~std::size_t{0}, max_size = 0;
  const std::vector<std::size_t> route{0};
  for (unsigned h = 0; h < 24; ++h) {
    sim.begin_period();
    min_size = std::min(min_size, sim.rsu(0).state().array_size());
    max_size = std::max(max_size, sim.rsu(0).state().array_size());
    const auto volume = static_cast<std::uint64_t>(
        profile.hourly_volume(96'000, h));
    for (std::uint64_t v = 0; v < volume; ++v) sim.drive_vehicle(route);
    sim.end_period();
  }
  EXPECT_GE(max_size / min_size, 8u)
      << "array sizes must track the diurnal swing";
}

}  // namespace
}  // namespace vlm::traffic
