#include "roadnet/synthetic_city.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "roadnet/assignment.h"
#include "roadnet/shortest_path.h"

namespace vlm::roadnet {
namespace {

SyntheticCityConfig small_config() {
  SyntheticCityConfig config;
  config.rows = 5;
  config.cols = 6;
  config.total_demand = 50'000.0;
  config.seed = 11;
  return config;
}

TEST(SyntheticCity, GridShape) {
  const SyntheticCity city = make_synthetic_city(small_config());
  EXPECT_EQ(city.graph.node_count(), 30u);
  // Undirected streets: rows*(cols-1) + cols*(rows-1) = 25 + 24 = 49,
  // doubled for direction.
  EXPECT_EQ(city.graph.link_count(), 98u);
  EXPECT_EQ(city.centers.size(), 2u);
}

TEST(SyntheticCity, StronglyConnected) {
  const SyntheticCity city = make_synthetic_city(small_config());
  std::vector<double> costs;
  for (const Link& l : city.graph.links()) costs.push_back(l.free_flow_time);
  const ShortestPathTree tree = dijkstra(city.graph, 0, costs);
  for (NodeIndex n = 0; n < city.graph.node_count(); ++n) {
    EXPECT_TRUE(std::isfinite(tree.cost[n]));
  }
}

TEST(SyntheticCity, TotalDemandMatchesRequest) {
  const SyntheticCity city = make_synthetic_city(small_config());
  EXPECT_NEAR(city.trips.total_demand(), 50'000.0, 1.0);
}

TEST(SyntheticCity, ArterialsAreFasterAndBigger) {
  const SyntheticCity city = make_synthetic_city(small_config());
  double min_time = 1e18, max_time = 0, min_cap = 1e18, max_cap = 0;
  for (const Link& l : city.graph.links()) {
    min_time = std::min(min_time, l.free_flow_time);
    max_time = std::max(max_time, l.free_flow_time);
    min_cap = std::min(min_cap, l.capacity);
    max_cap = std::max(max_cap, l.capacity);
  }
  EXPECT_LT(min_time, max_time);
  EXPECT_NEAR(min_time, 4.0 * 0.6, 1e-12);
  EXPECT_NEAR(max_cap / min_cap, 3.0, 1e-12);
}

TEST(SyntheticCity, VolumesAreHeterogeneous) {
  // The premise of variable-length arrays: assigned node volumes spread
  // over a wide range.
  const SyntheticCity city = make_synthetic_city(small_config());
  const auto result =
      assign(city.graph, city.trips, {AssignmentMethod::kFrankWolfe, 15, 1e-3});
  double lo = 1e18, hi = 0;
  for (NodeIndex n = 0; n < city.graph.node_count(); ++n) {
    const double v = result.expected_node_volume(n);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi / lo, 4.0);
}

TEST(SyntheticCity, CentersAttractDisproportionateDemand) {
  const SyntheticCity city = make_synthetic_city(small_config());
  double center_demand = 0.0, mean_demand = 0.0;
  for (NodeIndex n = 0; n < city.graph.node_count(); ++n) {
    mean_demand += city.trips.node_demand(n);
  }
  mean_demand /= static_cast<double>(city.graph.node_count());
  for (NodeIndex c : city.centers) {
    center_demand += city.trips.node_demand(c);
  }
  center_demand /= static_cast<double>(city.centers.size());
  EXPECT_GT(center_demand, 1.5 * mean_demand);
}

TEST(SyntheticCity, DeterministicPerSeed) {
  const SyntheticCity a = make_synthetic_city(small_config());
  const SyntheticCity b = make_synthetic_city(small_config());
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_DOUBLE_EQ(a.trips.demand(1, 2), b.trips.demand(1, 2));
  SyntheticCityConfig other = small_config();
  other.seed = 12;
  const SyntheticCity c = make_synthetic_city(other);
  EXPECT_NE(a.trips.demand(1, 2), c.trips.demand(1, 2));
}

TEST(SyntheticCity, Guards) {
  SyntheticCityConfig config = small_config();
  config.rows = 1;
  EXPECT_THROW((void)make_synthetic_city(config), std::invalid_argument);
  config = small_config();
  config.center_count = 100;
  EXPECT_THROW((void)make_synthetic_city(config), std::invalid_argument);
  config = small_config();
  config.arterial_speedup = 1.5;
  EXPECT_THROW((void)make_synthetic_city(config), std::invalid_argument);
  config = small_config();
  config.total_demand = 0.0;
  EXPECT_THROW((void)make_synthetic_city(config), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::roadnet
