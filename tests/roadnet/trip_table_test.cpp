#include "roadnet/trip_table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vlm::roadnet {
namespace {

TEST(TripTable, SetAndGet) {
  TripTable t(3);
  t.set_demand(0, 1, 100.0);
  t.set_demand(1, 2, 50.0);
  EXPECT_DOUBLE_EQ(t.demand(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(t.demand(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.total_demand(), 150.0);
}

TEST(TripTable, NodeDemandCountsBothDirections) {
  TripTable t(3);
  t.set_demand(0, 1, 100.0);
  t.set_demand(2, 1, 30.0);
  t.set_demand(1, 2, 20.0);
  EXPECT_DOUBLE_EQ(t.node_demand(1), 150.0);
  EXPECT_DOUBLE_EQ(t.node_demand(0), 100.0);
}

TEST(TripTable, ScaleMultipliesEverything) {
  TripTable t(2);
  t.set_demand(0, 1, 10.0);
  t.set_demand(1, 0, 20.0);
  t.scale(2.5);
  EXPECT_DOUBLE_EQ(t.demand(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(t.total_demand(), 75.0);
  EXPECT_THROW(t.scale(0.0), std::invalid_argument);
}

TEST(TripTable, Guards) {
  EXPECT_THROW(TripTable(1), std::invalid_argument);
  TripTable t(2);
  EXPECT_THROW(t.set_demand(0, 0, 5.0), std::invalid_argument);
  EXPECT_NO_THROW(t.set_demand(0, 0, 0.0));
  EXPECT_THROW(t.set_demand(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW((void)t.demand(2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::roadnet
