#include "roadnet/assignment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace vlm::roadnet {
namespace {

// Two parallel routes 0 -> 1: top link and bottom link via node 2, with
// equal free-flow time, so user equilibrium must split flow across both.
Graph parallel_routes() {
  Graph g(3);
  g.add_link({0, 1, 10.0, 100.0, 0.15, 4.0});  // direct
  g.add_link({0, 2, 5.0, 100.0, 0.15, 4.0});   // detour, leg 1
  g.add_link({2, 1, 5.0, 100.0, 0.15, 4.0});   // detour, leg 2
  return g;
}

TEST(Assignment, AllOrNothingPutsEverythingOnOneRoute) {
  const Graph g = parallel_routes();
  TripTable trips(3);
  trips.set_demand(0, 1, 300.0);
  const auto result =
      assign(g, trips, {AssignmentMethod::kAllOrNothing, 1, 0.0});
  // Ties broken deterministically; all 300 vehicles take a single route.
  double loaded = result.link_flows[0];
  EXPECT_TRUE(loaded == 300.0 || result.link_flows[1] == 300.0);
  ASSERT_EQ(result.od_routes.size(), 1u);
  EXPECT_EQ(result.od_routes[0].routes.size(), 1u);
  EXPECT_DOUBLE_EQ(result.od_routes[0].routes[0].probability, 1.0);
}

TEST(Assignment, FrankWolfeEqualizesParallelRouteTimes) {
  const Graph g = parallel_routes();
  TripTable trips(3);
  trips.set_demand(0, 1, 300.0);
  const auto result =
      assign(g, trips, {AssignmentMethod::kFrankWolfe, 100, 1e-6});
  // User equilibrium: both routes carry flow and their BPR times match.
  const double t_direct = bpr_travel_time(g.link(0), result.link_flows[0]);
  const double t_detour = bpr_travel_time(g.link(1), result.link_flows[1]) +
                          bpr_travel_time(g.link(2), result.link_flows[2]);
  EXPECT_NEAR(t_direct, t_detour, 0.05);
  EXPECT_GT(result.link_flows[0], 50.0);
  EXPECT_GT(result.link_flows[1], 50.0);
  EXPECT_NEAR(result.link_flows[0] + result.link_flows[1], 300.0, 1e-6);
  EXPECT_LE(result.relative_gap, 1e-4);
}

TEST(Assignment, MsaAlsoConverges) {
  const Graph g = parallel_routes();
  TripTable trips(3);
  trips.set_demand(0, 1, 300.0);
  const auto result = assign(g, trips, {AssignmentMethod::kMsa, 200, 1e-4});
  const double t_direct = bpr_travel_time(g.link(0), result.link_flows[0]);
  const double t_detour = bpr_travel_time(g.link(1), result.link_flows[1]) +
                          bpr_travel_time(g.link(2), result.link_flows[2]);
  EXPECT_NEAR(t_direct, t_detour, 0.3);
}

TEST(Assignment, RouteProbabilitiesFormDistribution) {
  const Graph g = parallel_routes();
  TripTable trips(3);
  trips.set_demand(0, 1, 300.0);
  trips.set_demand(1, 0, 0.0);
  const auto result =
      assign(g, trips, {AssignmentMethod::kFrankWolfe, 50, 1e-6});
  for (const OdRoutes& od : result.od_routes) {
    double total = 0.0;
    for (const Route& r : od.routes) {
      EXPECT_GT(r.probability, 0.0);
      ASSERT_GE(r.nodes.size(), 2u);
      EXPECT_EQ(r.nodes.front(), od.origin);
      EXPECT_EQ(r.nodes.back(), od.destination);
      total += r.probability;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Assignment, ExpectedNodeVolumeCountsThroughTraffic) {
  Graph g(3);
  g.add_link({0, 1, 1.0, 1000.0});
  g.add_link({1, 2, 1.0, 1000.0});
  TripTable trips(3);
  trips.set_demand(0, 2, 120.0);
  const auto result =
      assign(g, trips, {AssignmentMethod::kAllOrNothing, 1, 0.0});
  // The route is 0 -> 1 -> 2; every node on it sees all 120 vehicles.
  EXPECT_DOUBLE_EQ(result.expected_node_volume(0), 120.0);
  EXPECT_DOUBLE_EQ(result.expected_node_volume(1), 120.0);
  EXPECT_DOUBLE_EQ(result.expected_node_volume(2), 120.0);
}

TEST(Assignment, ThrowsWhenDemandHasNoRoute) {
  Graph g(3);
  g.add_link({0, 1, 1.0, 10.0});
  TripTable trips(3);
  trips.set_demand(0, 2, 10.0);  // node 2 unreachable
  EXPECT_THROW((void)assign(g, trips), std::invalid_argument);
}

TEST(Assignment, ThrowsOnEmptyDemandOrMismatchedZones) {
  Graph g(3);
  g.add_link({0, 1, 1.0, 10.0});
  TripTable empty(3);
  EXPECT_THROW((void)assign(g, empty), std::invalid_argument);
  TripTable wrong(4);
  wrong.set_demand(0, 1, 5.0);
  EXPECT_THROW((void)assign(g, wrong), std::invalid_argument);
}

TEST(Assignment, CongestionRaisesEquilibriumTravelTime) {
  // Doubling demand on a congestible network must raise the equilibrium
  // average travel time (BPR costs are strictly increasing in flow).
  const Graph g = parallel_routes();
  auto average_time = [&](double demand) {
    TripTable trips(3);
    trips.set_demand(0, 1, demand);
    const auto result =
        assign(g, trips, {AssignmentMethod::kFrankWolfe, 60, 1e-6});
    return result.total_travel_time / demand;
  };
  EXPECT_GT(average_time(600.0), average_time(300.0));
}

TEST(Assignment, EquilibriumBeatsAllOrNothingOnTotalTime) {
  // Spreading flow across routes cannot be worse than piling it on one
  // (for this symmetric network UE also minimizes total time).
  const Graph g = parallel_routes();
  TripTable trips(3);
  trips.set_demand(0, 1, 400.0);
  const auto ue = assign(g, trips, {AssignmentMethod::kFrankWolfe, 60, 1e-6});
  const auto aon =
      assign(g, trips, {AssignmentMethod::kAllOrNothing, 1, 0.0});
  EXPECT_LT(ue.total_travel_time, aon.total_travel_time);
}

TEST(Assignment, TotalTravelTimeIsFlowWeighted) {
  Graph g(2);
  g.add_link({0, 1, 2.0, 1000.0, 0.0, 4.0});  // alpha 0: constant time
  TripTable trips(2);
  trips.set_demand(0, 1, 50.0);
  const auto result =
      assign(g, trips, {AssignmentMethod::kAllOrNothing, 1, 0.0});
  EXPECT_DOUBLE_EQ(result.total_travel_time, 100.0);
}

}  // namespace
}  // namespace vlm::roadnet
