// Locks in the reverse-engineered correspondence between the canonical
// trip table and the paper's Table I (see EXPERIMENTS.md E3): the
// paper's n_x column equals our table's per-node demand sums (in
// hundreds of vehicles), and its n_c column equals the OD entries
// T(x, 10). If a future edit to sioux_falls.cpp breaks an entry the
// paper pins down, this test names it.
#include <gtest/gtest.h>

#include "roadnet/sioux_falls.h"

namespace vlm::roadnet {
namespace {

struct PaperRow {
  int node;          // R_x (1-based)
  double n_x;        // thousands/day in the paper
  double n_c;        // thousands/day vs node 10
  bool exact;        // our transcription matches the paper exactly
};

// Paper Table I. node 12 and node 24 differ slightly from our
// transcription (147 vs 140 and 76 vs 78) — the only two deviations.
constexpr PaperRow kPaperRows[] = {
    {15, 213, 40, true}, {12, 140, 20, false}, {7, 121, 19, true},
    {24, 78, 8, false},  {6, 76, 8, true},     {18, 47, 7, true},
    {2, 40, 6, true},    {3, 28, 3, true},
};

TEST(PaperTable1Structure, NodeVolumesMatchDemandSums) {
  const TripTable trips = sioux_falls_trip_table();
  // The paper's volumes are per-direction demand sums; node_demand counts
  // both directions of the near-symmetric table, so halve it. Units: the
  // canonical table is vehicles/day; the paper quotes thousands with each
  // table entry read as 1,000 vehicles (factor 10 on the canonical x100).
  for (const PaperRow& row : kPaperRows) {
    const double ours =
        trips.node_demand(static_cast<NodeIndex>(row.node - 1)) / 2.0 / 100.0;
    if (row.exact) {
      EXPECT_NEAR(ours, row.n_x, 0.51) << "node " << row.node;
    } else {
      EXPECT_NEAR(ours, row.n_x, 9.0) << "node " << row.node
                                      << " (known transcription deviation)";
    }
  }
  // Node 10 itself: the paper's 451.
  EXPECT_NEAR(trips.node_demand(9) / 2.0 / 100.0, 451.0, 1.0);
}

TEST(PaperTable1Structure, CommonVolumesMatchOdEntries) {
  const TripTable trips = sioux_falls_trip_table();
  for (const PaperRow& row : kPaperRows) {
    const double t_x_to_10 =
        trips.demand(static_cast<NodeIndex>(row.node - 1), 9) / 100.0;
    EXPECT_NEAR(t_x_to_10, row.n_c, 0.01) << "node " << row.node;
  }
}

TEST(PaperTable1Structure, TrafficDifferenceRatiosMatchPaper) {
  const TripTable trips = sioux_falls_trip_table();
  const double n_y = trips.node_demand(9);
  // Paper d values for the exact rows.
  const struct {
    int node;
    double d;
  } kRatios[] = {{15, 2.117}, {7, 3.727}, {6, 5.934},
                 {18, 9.596}, {2, 11.275}, {3, 16.107}};
  for (const auto& r : kRatios) {
    const double ours =
        n_y / trips.node_demand(static_cast<NodeIndex>(r.node - 1));
    EXPECT_NEAR(ours, r.d, 0.15) << "node " << r.node;
  }
}

}  // namespace
}  // namespace vlm::roadnet
