#include "roadnet/shortest_path.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace vlm::roadnet {
namespace {

// Diamond: 0 -> 1 -> 3 (cost 2+2), 0 -> 2 -> 3 (cost 1+4), 0 -> 3 (cost 5).
Graph diamond() {
  Graph g(4);
  g.add_link({0, 1, 2.0, 1.0});
  g.add_link({1, 3, 2.0, 1.0});
  g.add_link({0, 2, 1.0, 1.0});
  g.add_link({2, 3, 4.0, 1.0});
  g.add_link({0, 3, 5.0, 1.0});
  return g;
}

std::vector<double> free_flow_costs(const Graph& g) {
  std::vector<double> costs;
  for (const Link& l : g.links()) costs.push_back(l.free_flow_time);
  return costs;
}

TEST(Dijkstra, FindsCheapestOfSeveralRoutes) {
  const Graph g = diamond();
  const auto tree = dijkstra(g, 0, free_flow_costs(g));
  EXPECT_DOUBLE_EQ(tree.cost[3], 4.0);  // via node 1
  const auto path = extract_path(g, tree, 0, 3);
  EXPECT_EQ(path, (std::vector<NodeIndex>{0, 1, 3}));
}

TEST(Dijkstra, CostChangesSwitchTheRoute) {
  const Graph g = diamond();
  auto costs = free_flow_costs(g);
  costs[1] = 10.0;  // congest link 1 -> 3
  const auto tree = dijkstra(g, 0, costs);
  EXPECT_DOUBLE_EQ(tree.cost[3], 5.0);  // direct link now wins
  EXPECT_EQ(extract_path(g, tree, 0, 3),
            (std::vector<NodeIndex>{0, 3}));
}

TEST(Dijkstra, UnreachableNodesReportInfinity) {
  Graph g(3);
  g.add_link({0, 1, 1.0, 1.0});
  const auto tree = dijkstra(g, 0, free_flow_costs(g));
  EXPECT_TRUE(std::isinf(tree.cost[2]));
  EXPECT_THROW((void)extract_path(g, tree, 0, 2), std::invalid_argument);
}

TEST(Dijkstra, SourcePathIsTrivial) {
  const Graph g = diamond();
  const auto tree = dijkstra(g, 0, free_flow_costs(g));
  EXPECT_DOUBLE_EQ(tree.cost[0], 0.0);
  EXPECT_EQ(extract_path(g, tree, 0, 0), (std::vector<NodeIndex>{0}));
}

TEST(Dijkstra, PathLinksMatchPathNodes) {
  const Graph g = diamond();
  const auto tree = dijkstra(g, 0, free_flow_costs(g));
  const auto links = extract_path_links(g, tree, 0, 3);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(g.link(links[0]).from, 0u);
  EXPECT_EQ(g.link(links[0]).to, 1u);
  EXPECT_EQ(g.link(links[1]).to, 3u);
}

TEST(Dijkstra, Guards) {
  const Graph g = diamond();
  EXPECT_THROW((void)dijkstra(g, 9, free_flow_costs(g)),
               std::invalid_argument);
  EXPECT_THROW((void)dijkstra(g, 0, std::vector<double>{1.0}),
               std::invalid_argument);
  std::vector<double> negative(g.link_count(), -1.0);
  EXPECT_THROW((void)dijkstra(g, 0, negative), std::invalid_argument);
}

TEST(Dijkstra, HandlesLargerGrid) {
  // 10x10 grid, unit costs: shortest path cost between opposite corners
  // is 18 (Manhattan).
  constexpr int N = 10;
  Graph g(N * N);
  auto id = [](int r, int c) { return static_cast<NodeIndex>(r * N + c); };
  for (int r = 0; r < N; ++r) {
    for (int c = 0; c < N; ++c) {
      if (c + 1 < N) {
        g.add_link({id(r, c), id(r, c + 1), 1.0, 1.0});
        g.add_link({id(r, c + 1), id(r, c), 1.0, 1.0});
      }
      if (r + 1 < N) {
        g.add_link({id(r, c), id(r + 1, c), 1.0, 1.0});
        g.add_link({id(r + 1, c), id(r, c), 1.0, 1.0});
      }
    }
  }
  const auto tree = dijkstra(g, id(0, 0), free_flow_costs(g));
  EXPECT_DOUBLE_EQ(tree.cost[id(N - 1, N - 1)], 18.0);
  EXPECT_EQ(extract_path(g, tree, id(0, 0), id(N - 1, N - 1)).size(), 19u);
}

}  // namespace
}  // namespace vlm::roadnet
