#include "roadnet/graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vlm::roadnet {
namespace {

TEST(Graph, AddAndQueryLinks) {
  Graph g(3);
  const LinkIndex ab = g.add_link({0, 1, 5.0, 100.0});
  const LinkIndex bc = g.add_link({1, 2, 3.0, 50.0});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_EQ(g.link(ab).to, 1u);
  EXPECT_EQ(g.find_link(0, 1), ab);
  EXPECT_EQ(g.find_link(1, 2), bc);
  EXPECT_EQ(g.find_link(2, 0), kInvalidLink);
  EXPECT_EQ(g.out_links(0).size(), 1u);
  EXPECT_EQ(g.out_links(2).size(), 0u);
}

TEST(Graph, RejectsBadLinks) {
  Graph g(2);
  EXPECT_THROW(g.add_link({0, 5, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(g.add_link({0, 0, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(g.add_link({0, 1, 0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(g.add_link({0, 1, 1.0, -1.0}), std::invalid_argument);
}

TEST(Graph, BoundsChecks) {
  Graph g(2);
  g.add_link({0, 1, 1.0, 1.0});
  EXPECT_THROW((void)g.link(5), std::invalid_argument);
  EXPECT_THROW((void)g.out_links(2), std::invalid_argument);
}

TEST(Bpr, FreeFlowAtZeroVolume) {
  Link link{0, 1, 10.0, 100.0, 0.15, 4.0};
  EXPECT_DOUBLE_EQ(bpr_travel_time(link, 0.0), 10.0);
}

TEST(Bpr, StandardCoefficientsAtCapacity) {
  // t(c) = t0 * (1 + 0.15) with the standard BPR parameters.
  Link link{0, 1, 10.0, 100.0, 0.15, 4.0};
  EXPECT_DOUBLE_EQ(bpr_travel_time(link, 100.0), 11.5);
}

TEST(Bpr, GrowsSteeplyBeyondCapacity) {
  Link link{0, 1, 10.0, 100.0, 0.15, 4.0};
  EXPECT_NEAR(bpr_travel_time(link, 200.0), 10.0 * (1 + 0.15 * 16.0), 1e-9);
  EXPECT_THROW((void)bpr_travel_time(link, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::roadnet
