#include "roadnet/sioux_falls.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "roadnet/assignment.h"
#include "roadnet/shortest_path.h"

namespace vlm::roadnet {
namespace {

TEST(SiouxFalls, HasCanonicalShape) {
  const Graph g = sioux_falls_network();
  EXPECT_EQ(g.node_count(), 24u);
  EXPECT_EQ(g.link_count(), 76u);
}

TEST(SiouxFalls, EveryLinkIsBidirectional) {
  const Graph g = sioux_falls_network();
  for (const Link& l : g.links()) {
    EXPECT_NE(g.find_link(l.to, l.from), kInvalidLink)
        << l.from << " -> " << l.to;
  }
}

TEST(SiouxFalls, KnownAdjacency) {
  const Graph g = sioux_falls_network();
  // Spot checks against the published topology (1-based: 1-2, 10-16,
  // 23-24 exist; 1-24 does not).
  EXPECT_NE(g.find_link(0, 1), kInvalidLink);
  EXPECT_NE(g.find_link(9, 15), kInvalidLink);
  EXPECT_NE(g.find_link(22, 23), kInvalidLink);
  EXPECT_EQ(g.find_link(0, 23), kInvalidLink);
}

TEST(SiouxFalls, StronglyConnected) {
  const Graph g = sioux_falls_network();
  std::vector<double> costs;
  for (const Link& l : g.links()) costs.push_back(l.free_flow_time);
  for (NodeIndex origin = 0; origin < g.node_count(); ++origin) {
    const auto tree = dijkstra(g, origin, costs);
    for (NodeIndex d = 0; d < g.node_count(); ++d) {
      EXPECT_TRUE(std::isfinite(tree.cost[d]))
          << origin << " cannot reach " << d;
    }
  }
}

TEST(SiouxFalls, TripTableMagnitudes) {
  const TripTable trips = sioux_falls_trip_table();
  EXPECT_EQ(trips.node_count(), 24u);
  // Canonical total daily demand is 360,600 vehicles.
  EXPECT_NEAR(trips.total_demand(), 360'600.0, 5'000.0);
  // Node 10 (index 9) generates by far the most demand.
  double max_demand = 0.0;
  NodeIndex busiest = 0;
  for (NodeIndex n = 0; n < 24; ++n) {
    if (trips.node_demand(n) > max_demand) {
      max_demand = trips.node_demand(n);
      busiest = n;
    }
  }
  EXPECT_EQ(busiest, 9u);
}

TEST(SiouxFalls, DemandRoughlySymmetric) {
  const TripTable trips = sioux_falls_trip_table();
  for (NodeIndex o = 0; o < 24; ++o) {
    for (NodeIndex d = 0; d < o; ++d) {
      const double forward = trips.demand(o, d);
      const double backward = trips.demand(d, o);
      EXPECT_LE(std::abs(forward - backward), 200.0)
          << "OD " << o + 1 << "," << d + 1;
    }
  }
}

TEST(SiouxFalls, EquilibriumAssignmentProducesBusyNode10) {
  const Graph g = sioux_falls_network();
  const TripTable trips = sioux_falls_trip_table();
  const auto result =
      assign(g, trips, {AssignmentMethod::kFrankWolfe, 30, 1e-4});
  // Node 10 must carry the largest point volume, as in the paper's
  // Table I, and light nodes must be several times lighter.
  double volumes[24];
  NodeIndex busiest = 0;
  for (NodeIndex n = 0; n < 24; ++n) {
    volumes[n] = result.expected_node_volume(n);
    if (volumes[n] > volumes[busiest]) busiest = n;
  }
  EXPECT_EQ(busiest, 9u);
  double lightest = volumes[0];
  for (double v : volumes) lightest = std::min(lightest, v);
  EXPECT_GT(volumes[9] / lightest, 4.0)
      << "traffic heterogeneity is the premise of the experiment";
}

}  // namespace
}  // namespace vlm::roadnet
