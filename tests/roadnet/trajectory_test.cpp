#include "roadnet/trajectory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "roadnet/sioux_falls.h"

namespace vlm::roadnet {
namespace {

AssignmentResult two_route_result() {
  AssignmentResult result;
  OdRoutes od;
  od.origin = 0;
  od.destination = 2;
  od.demand = 1000.0;
  od.routes.push_back(Route{{0, 1, 2}, 0.7});
  od.routes.push_back(Route{{0, 3, 2}, 0.3});
  result.od_routes.push_back(od);
  return result;
}

TEST(TrajectorySampler, EmitsDemandManyVehicles) {
  const AssignmentResult result = two_route_result();
  TrajectorySampler sampler(result, 1);
  std::uint64_t count = 0;
  sampler.for_each_vehicle([&](std::span<const NodeIndex>) { ++count; });
  // 700 and 300 are integers: exact.
  EXPECT_EQ(count, 1000u);
  EXPECT_EQ(sampler.vehicles_emitted(), 1000u);
}

TEST(TrajectorySampler, RouteSharesMatchProbabilities) {
  const AssignmentResult result = two_route_result();
  TrajectorySampler sampler(result, 2);
  std::uint64_t via_1 = 0, via_3 = 0;
  sampler.for_each_vehicle([&](std::span<const NodeIndex> nodes) {
    (nodes[1] == 1 ? via_1 : via_3) += 1;
  });
  EXPECT_EQ(via_1, 700u);
  EXPECT_EQ(via_3, 300u);
}

TEST(TrajectorySampler, FractionalDemandRoundsStochastically) {
  AssignmentResult result;
  OdRoutes od;
  od.origin = 0;
  od.destination = 1;
  od.demand = 10.5;
  od.routes.push_back(Route{{0, 1}, 1.0});
  result.od_routes.push_back(od);
  // Across seeds, counts must be 10 or 11 averaging ~10.5.
  double total = 0.0;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    TrajectorySampler sampler(result, seed);
    std::uint64_t n = 0;
    sampler.for_each_vehicle([&](std::span<const NodeIndex>) { ++n; });
    ASSERT_GE(n, 10u);
    ASSERT_LE(n, 11u);
    total += static_cast<double>(n);
  }
  EXPECT_NEAR(total / 400.0, 10.5, 0.12);
}

TEST(RealizedVolumes, AgreeWithExpectedOnSiouxFalls) {
  const Graph g = sioux_falls_network();
  const TripTable trips = sioux_falls_trip_table();
  const auto result =
      assign(g, trips, {AssignmentMethod::kFrankWolfe, 20, 1e-4});
  const auto realized = realized_node_volumes(result, 24, 7);
  for (NodeIndex n = 0; n < 24; ++n) {
    const double expected = result.expected_node_volume(n);
    EXPECT_NEAR(static_cast<double>(realized[n]), expected,
                std::max(50.0, expected * 0.02))
        << "node " << n + 1;
  }
}

TEST(RealizedPairVolumes, ConsistentWithNodeVolumes) {
  const Graph g = sioux_falls_network();
  const TripTable trips = sioux_falls_trip_table();
  const auto result =
      assign(g, trips, {AssignmentMethod::kFrankWolfe, 20, 1e-4});
  const auto pair = realized_pair_volumes(result, 9, 14, /*seed=*/7);
  const auto volumes = realized_node_volumes(result, 24, /*seed=*/7);
  // Same seed => identical vehicle stream => consistent counts.
  EXPECT_EQ(pair.n_x, volumes[9]);
  EXPECT_EQ(pair.n_y, volumes[14]);
  EXPECT_LE(pair.n_c, std::min(pair.n_x, pair.n_y));
  EXPECT_GT(pair.n_c, 0u);
}

TEST(RealizedPairVolumes, RejectsSameNode) {
  const AssignmentResult result = two_route_result();
  EXPECT_THROW((void)realized_pair_volumes(result, 1, 1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlm::roadnet
