#include "roadnet/tntp_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "roadnet/sioux_falls.h"

namespace vlm::roadnet {
namespace {

constexpr const char* kSampleNetwork = R"(<NUMBER OF NODES> 3
<NUMBER OF LINKS> 4
<NUMBER OF ZONES> 3
<FIRST THRU NODE> 1
<END OF METADATA>
~ 	init	term	capacity	length	fft	b	power	speed	toll	type	;
	1	2	25900.2	6	6	0.15	4	0	0	1	;
	2	1	25900.2	6	6	0.15	4	0	0	1	;
	2	3	4958.2	5	5	0.15	4	0	0	1	;
	3	2	4958.2	5	5	0.15	4	0	0	1	;
)";

constexpr const char* kSampleTrips = R"(<NUMBER OF ZONES> 3
<TOTAL OD FLOW> 600.0
<END OF METADATA>
Origin  1
    2 :     100.0;    3 :     200.0;
Origin  2
    1 :     100.0;
Origin  3
    1 :     200.0;
)";

TEST(TntpIo, ParsesNetwork) {
  std::istringstream in(kSampleNetwork);
  const Graph graph = read_tntp_network(in);
  EXPECT_EQ(graph.node_count(), 3u);
  EXPECT_EQ(graph.link_count(), 4u);
  const LinkIndex l = graph.find_link(0, 1);
  ASSERT_NE(l, kInvalidLink);
  EXPECT_DOUBLE_EQ(graph.link(l).capacity, 25900.2);
  EXPECT_DOUBLE_EQ(graph.link(l).free_flow_time, 6.0);
  EXPECT_DOUBLE_EQ(graph.link(l).bpr_alpha, 0.15);
  EXPECT_DOUBLE_EQ(graph.link(l).bpr_beta, 4.0);
}

TEST(TntpIo, ParsesTrips) {
  std::istringstream in(kSampleTrips);
  const TripTable trips = read_tntp_trips(in);
  EXPECT_EQ(trips.node_count(), 3u);
  EXPECT_DOUBLE_EQ(trips.demand(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(trips.demand(0, 2), 200.0);
  EXPECT_DOUBLE_EQ(trips.demand(2, 0), 200.0);
  EXPECT_DOUBLE_EQ(trips.total_demand(), 600.0);
}

TEST(TntpIo, NetworkRoundTripsThroughWriter) {
  const Graph original = sioux_falls_network();
  std::stringstream stream;
  write_tntp_network(stream, original);
  const Graph restored = read_tntp_network(stream);
  ASSERT_EQ(restored.node_count(), original.node_count());
  ASSERT_EQ(restored.link_count(), original.link_count());
  for (LinkIndex l = 0; l < original.link_count(); ++l) {
    EXPECT_EQ(restored.link(l).from, original.link(l).from);
    EXPECT_EQ(restored.link(l).to, original.link(l).to);
    EXPECT_DOUBLE_EQ(restored.link(l).capacity, original.link(l).capacity);
    EXPECT_DOUBLE_EQ(restored.link(l).free_flow_time,
                     original.link(l).free_flow_time);
  }
}

TEST(TntpIo, TripsRoundTripThroughWriter) {
  const TripTable original = sioux_falls_trip_table();
  std::stringstream stream;
  write_tntp_trips(stream, original);
  const TripTable restored = read_tntp_trips(stream);
  ASSERT_EQ(restored.node_count(), original.node_count());
  for (NodeIndex o = 0; o < original.node_count(); ++o) {
    for (NodeIndex d = 0; d < original.node_count(); ++d) {
      EXPECT_DOUBLE_EQ(restored.demand(o, d), original.demand(o, d))
          << "OD " << o + 1 << " -> " << d + 1;
    }
  }
}

TEST(TntpIo, RejectsLinkCountMismatch) {
  std::string text = kSampleNetwork;
  text.replace(text.find("LINKS> 4"), 8, "LINKS> 5");
  std::istringstream in(text);
  EXPECT_THROW((void)read_tntp_network(in), std::runtime_error);
}

TEST(TntpIo, RejectsOutOfRangeEndpoints) {
  std::string text = kSampleNetwork;
  text.replace(text.find("\t3\t2\t"), 5, "\t9\t2\t");
  std::istringstream in(text);
  EXPECT_THROW((void)read_tntp_network(in), std::runtime_error);
}

TEST(TntpIo, RejectsTotalFlowMismatch) {
  std::string text = kSampleTrips;
  text.replace(text.find("600.0"), 5, "999.0");
  std::istringstream in(text);
  EXPECT_THROW((void)read_tntp_trips(in), std::runtime_error);
}

TEST(TntpIo, RejectsDataBeforeOrigin) {
  std::istringstream in(
      "<NUMBER OF ZONES> 2\n<END OF METADATA>\n    2 : 10.0;\n");
  EXPECT_THROW((void)read_tntp_trips(in), std::runtime_error);
}

TEST(TntpIo, RejectsMissingMetadata) {
  std::istringstream in("no metadata at all\n");
  EXPECT_THROW((void)read_tntp_network(in), std::runtime_error);
}

TEST(TntpIo, MissingFilesThrow) {
  EXPECT_THROW((void)load_tntp_network("/nonexistent.tntp"),
               std::runtime_error);
  EXPECT_THROW((void)load_tntp_trips("/nonexistent.tntp"),
               std::runtime_error);
}

}  // namespace
}  // namespace vlm::roadnet
