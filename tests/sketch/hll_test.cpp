#include "sketch/hll.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/hashing.h"

namespace vlm::sketch {
namespace {

std::uint64_t item_hash(std::uint64_t i) {
  return common::mix64(i + 0x1234567ull);
}

TEST(Hll, EmptyEstimatesZero) {
  HyperLogLog hll(12);
  EXPECT_NEAR(hll.estimate(), 0.0, 1e-9);
}

TEST(Hll, SmallCardinalitiesUseLinearCounting) {
  HyperLogLog hll(12);
  for (std::uint64_t i = 0; i < 100; ++i) hll.add_hash(item_hash(i));
  EXPECT_NEAR(hll.estimate(), 100.0, 10.0);
}

TEST(Hll, AccuracyTracksTheoreticalError) {
  // Relative error ~ 1.04/sqrt(m); allow 4x.
  for (unsigned precision : {10u, 12u, 14u}) {
    HyperLogLog hll(precision);
    const std::uint64_t n = 200'000;
    for (std::uint64_t i = 0; i < n; ++i) hll.add_hash(item_hash(i));
    const double tolerance =
        4.0 * 1.04 / std::sqrt(double(hll.register_count())) * double(n);
    EXPECT_NEAR(hll.estimate(), double(n), tolerance) << "p=" << precision;
  }
}

TEST(Hll, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t i = 0; i < 10'000; ++i) hll.add_hash(item_hash(i));
  }
  EXPECT_NEAR(hll.estimate(), 10'000.0, 700.0);
}

TEST(Hll, MergeEstimatesTheUnion) {
  HyperLogLog a(13), b(13);
  for (std::uint64_t i = 0; i < 30'000; ++i) a.add_hash(item_hash(i));
  for (std::uint64_t i = 20'000; i < 50'000; ++i) b.add_hash(item_hash(i));
  a.merge(b);
  EXPECT_NEAR(a.estimate(), 50'000.0, 2'500.0);
}

TEST(Hll, IntersectionViaInclusionExclusion) {
  HyperLogLog a(14), b(14);
  for (std::uint64_t i = 0; i < 40'000; ++i) a.add_hash(item_hash(i));
  for (std::uint64_t i = 30'000; i < 70'000; ++i) b.add_hash(item_hash(i));
  // True intersection 10,000 out of 40k/40k sets; IE error is driven by
  // the UNION's absolute error (~1.04/sqrt(2^14) * 70k ~ 570), so allow
  // 4-sigma-ish.
  EXPECT_NEAR(HyperLogLog::intersection(a, b), 10'000.0, 3'000.0);
}

TEST(Hll, MemoryAccounting) {
  HyperLogLog hll(12);
  EXPECT_EQ(hll.register_count(), 4096u);
  EXPECT_EQ(hll.memory_bits(), 4096u * 8u);
}

TEST(Hll, Guards) {
  EXPECT_THROW(HyperLogLog(3), std::invalid_argument);
  EXPECT_THROW(HyperLogLog(19), std::invalid_argument);
  HyperLogLog a(10), b(11);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace vlm::sketch
