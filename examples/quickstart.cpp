// Quickstart: measure point-to-point traffic between two RSUs with the
// core VLM API, no road network or radio simulation involved.
//
//   $ ./quickstart
//
// Walks through the full life of one measurement period:
//   1. configure the scheme (s, load factor f̄),
//   2. size each RSU's bit array from its historical volume,
//   3. online coding: vehicles report one masked bit index per RSU,
//   4. offline decoding: unfold + OR + Eq. 5 MLE at the central server,
//   5. compare against the ground truth and the analytical error model.
#include <cstdio>

#include "common/hashing.h"
#include "core/accuracy_model.h"
#include "core/privacy_model.h"
#include "core/scheme.h"

int main() {
  using namespace vlm;

  // 1. A complete scheme object: encoder (vehicle side), sizing policy,
  // and pairwise estimator (server side). Every downstream layer is
  // generic over the abstract core::Scheme — swap in make_fbm_scheme()
  // (or any future scheme) and nothing below changes.
  const core::SchemePtr scheme =
      core::make_vlm_scheme({.s = 2, .load_factor = 8.0});

  // 2. Two RSUs with very different historical volumes: a light suburban
  // intersection and a 12x busier arterial one.
  const double history_a = 10'000, history_b = 120'000;
  core::RsuState rsu_a = scheme->make_rsu_state(history_a);
  core::RsuState rsu_b = scheme->make_rsu_state(history_b);
  std::printf("RSU A: m = %zu bits for ~%.0f vehicles/day\n",
              rsu_a.array_size(), history_a);
  std::printf("RSU B: m = %zu bits for ~%.0f vehicles/day\n",
              rsu_b.array_size(), history_b);

  // 3. Online coding. Of today's traffic, 3,000 vehicles pass both RSUs,
  // 7,000 pass only A, and 117,000 pass only B. Each vehicle computes its
  // reply with two hashes; the RSU sets one bit. No identifier is ever
  // transmitted — the same vehicle is unlinkable across RSUs except
  // through the aggregate statistics the estimator exploits.
  const core::RsuId id_a{1}, id_b{2};
  const std::uint64_t n_common = 3'000, n_a_only = 7'000, n_b_only = 117'000;
  std::uint64_t next_vehicle = 0;
  auto fresh_vehicle = [&next_vehicle] {
    core::VehicleIdentity v;
    v.id = core::VehicleId{
        common::mix64(common::mix64(0xAB5E9D) + next_vehicle * 0x9E3779B97F4A7C15ull)};
    v.private_key = common::mix64(common::mix64(0xFEED) +
                                  next_vehicle * 0xC2B2AE3D27D4EB4Full);
    ++next_vehicle;
    return v;
  };
  for (std::uint64_t i = 0; i < n_common; ++i) {
    const core::VehicleIdentity v = fresh_vehicle();
    rsu_a.record(scheme->encoder().bit_index(v, id_a, rsu_a.array_size()));
    rsu_b.record(scheme->encoder().bit_index(v, id_b, rsu_b.array_size()));
  }
  for (std::uint64_t i = 0; i < n_a_only; ++i) {
    const core::VehicleIdentity v = fresh_vehicle();
    rsu_a.record(scheme->encoder().bit_index(v, id_a, rsu_a.array_size()));
  }
  for (std::uint64_t i = 0; i < n_b_only; ++i) {
    const core::VehicleIdentity v = fresh_vehicle();
    rsu_b.record(scheme->encoder().bit_index(v, id_b, rsu_b.array_size()));
  }
  std::printf("\nonline coding done: counter A = %llu, counter B = %llu\n",
              static_cast<unsigned long long>(rsu_a.counter()),
              static_cast<unsigned long long>(rsu_b.counter()));

  // 4. Offline decoding at the central server: unfold the smaller array
  // onto the larger, OR them, read the three zero fractions, apply Eq. 5.
  const core::PairEstimate estimate =
      scheme->estimator().estimate(rsu_a, rsu_b);
  std::printf("zero fractions: V_A = %.4f, V_B = %.4f, V_combined = %.4f\n",
              estimate.v_x, estimate.v_y, estimate.v_c);
  std::printf("estimated common traffic n_c^ = %.1f (truth: %llu)\n",
              estimate.n_c_hat, static_cast<unsigned long long>(n_common));

  // 5. What the analysis predicts for this configuration: estimation
  // error band (Section V) and preserved privacy (Section VI).
  const core::PairScenario scenario{
      static_cast<double>(rsu_a.counter()),
      static_cast<double>(rsu_b.counter()),
      static_cast<double>(n_common),
      rsu_a.array_size(),
      rsu_b.array_size(),
      2};
  const auto accuracy = core::AccuracyModel::predict(scenario);
  const double privacy = core::PrivacyModel::preserved_privacy(scenario);
  std::printf(
      "\nanalysis: expected ratio %.4f +- %.4f, preserved privacy %.3f\n",
      1.0 + accuracy.bias_ratio, accuracy.stddev_ratio, privacy);
  return 0;
}
