// Sioux Falls study: the full VCPS protocol stack on the paper's
// evaluation network.
//
//   $ ./sioux_falls_study [--scale 0.2] [--pairs 6]
//
// Unlike the Table I bench (which drives the core library directly for
// speed), this example runs the COMPLETE protocol: a certificate
// authority issues RSU certificates, 24 RSUs broadcast queries, every
// simulated vehicle verifies the certificate and answers over the DSRC
// channel, RSUs ship serialized reports to the central server, and the
// server sizes arrays from history and answers point-to-point queries.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "roadnet/assignment.h"
#include "roadnet/sioux_falls.h"
#include "roadnet/trajectory.h"
#include "vcps/simulation.h"

int main(int argc, char** argv) {
  using namespace vlm;
  common::ArgParser parser("sioux_falls_study",
                           "full-protocol study on the Sioux Falls network");
  parser.add_double("scale", 0.2,
                    "demand scale relative to the canonical table");
  parser.add_int("pairs", 6, "number of OD node pairs to report");
  parser.add_double("load-factor", 8.0, "VLM load factor f̄");
  parser.add_int("seed", 2024, "simulation seed");
  if (!parser.parse(argc, argv)) return 0;

  // 1. Workload: scaled canonical demand, user-equilibrium routes.
  const roadnet::Graph graph = roadnet::sioux_falls_network();
  roadnet::TripTable trips = roadnet::sioux_falls_trip_table();
  trips.scale(parser.get_double("scale"));
  const auto assignment = roadnet::assign(graph, trips);
  std::printf("assignment: %d FW iterations, relative gap %.1e\n",
              assignment.iterations, assignment.relative_gap);

  // 2. VCPS deployment: one RSU per node, history = expected volume.
  vcps::SimulationConfig config;
  config.server.scheme = core::make_vlm_scheme(
      {.s = 2, .load_factor = parser.get_double("load-factor")});
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  std::vector<vcps::RsuSite> sites;
  for (roadnet::NodeIndex n = 0; n < 24; ++n) {
    sites.push_back(vcps::RsuSite{core::RsuId{n + 1u},
                                  assignment.expected_node_volume(n)});
  }
  vcps::VcpsSimulation sim(config, sites);
  sim.begin_period();

  // 3. Drive one day of traffic through the protocol, keeping ground
  // truth for the busiest node's pairs.
  const roadnet::NodeIndex ry = 9;  // node 10
  std::vector<std::uint64_t> volume(24, 0), common_with_ry(24, 0);
  roadnet::TrajectorySampler sampler(assignment, config.seed);
  std::vector<std::size_t> positions;
  sampler.for_each_vehicle([&](std::span<const roadnet::NodeIndex> nodes) {
    positions.assign(nodes.begin(), nodes.end());
    const bool hits_ry =
        std::find(nodes.begin(), nodes.end(), ry) != nodes.end();
    for (roadnet::NodeIndex n : nodes) {
      ++volume[n];
      if (hits_ry && n != ry) ++common_with_ry[n];
    }
    sim.drive_vehicle(positions);
  });
  sim.end_period();
  std::printf("drove %llu vehicles through %zu RSUs\n",
              static_cast<unsigned long long>(sim.vehicles_driven()),
              sim.rsu_count());

  // 4. Ask the server for point-to-point volumes against node 10.
  std::vector<roadnet::NodeIndex> others;
  for (roadnet::NodeIndex n = 0; n < 24; ++n) {
    if (n != ry && common_with_ry[n] > 0) others.push_back(n);
  }
  std::sort(others.begin(), others.end(),
            [&](roadnet::NodeIndex a, roadnet::NodeIndex b) {
              return volume[a] > volume[b];
            });
  const auto pair_count =
      std::min<std::size_t>(others.size(),
                            static_cast<std::size_t>(parser.get_int("pairs")));

  common::TextTable table(
      {"pair", "n_x", "n_y", "true n_c", "estimated", "error"});
  for (std::size_t i = 0; i < pair_count; ++i) {
    const roadnet::NodeIndex rx = others[i];
    const auto estimate = sim.estimate(rx, ry);
    const double truth = static_cast<double>(common_with_ry[rx]);
    table.add_row(
        {"(" + std::to_string(rx + 1) + ", 10)",
         common::TextTable::fmt_int(static_cast<long long>(volume[rx])),
         common::TextTable::fmt_int(static_cast<long long>(volume[ry])),
         common::TextTable::fmt(truth, 0),
         common::TextTable::fmt(estimate.n_c_hat, 1),
         common::TextTable::fmt_percent(
             std::fabs(estimate.n_c_hat - truth) / truth, 2)});
  }
  std::printf("\npoint-to-point volumes vs node 10 (full protocol):\n%s",
              table.to_string().c_str());
  std::printf("channel: %llu queries lost, %llu replies lost\n",
              static_cast<unsigned long long>(sim.channel().queries_lost()),
              static_cast<unsigned long long>(sim.channel().replies_lost()));
  return 0;
}
