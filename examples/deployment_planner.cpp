// Deployment planner: the full plan → deploy → verify loop.
//
//   $ ./deployment_planner --min-volume 4000 --max-volume 300000
//
// 1. Calibrate: pick (s, f̄) for the volume profile under a privacy
//    floor, using the exact privacy model and the occupancy-exact
//    accuracy model.
// 2. Deploy: run one full-protocol measurement period over a synthetic
//    set of RSUs spanning the profile.
// 3. Verify: compare realized estimation errors and the model's
//    predictions, and print each pair's preserved privacy.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "vlm.h"
#include "vcps/simulation.h"

int main(int argc, char** argv) {
  using namespace vlm;
  common::ArgParser parser("deployment_planner",
                           "calibrate, deploy, verify a measurement network");
  parser.add_double("min-volume", 4'000, "lightest RSU volume/period");
  parser.add_double("max-volume", 300'000, "heaviest RSU volume/period");
  parser.add_double("min-privacy", 0.5, "privacy floor");
  parser.add_double("common-frac", 0.1, "representative n_c / n_min");
  parser.add_int("seed", 12, "simulation seed");
  if (!parser.parse(argc, argv)) return 0;
  const double n_lo = parser.get_double("min-volume");
  const double n_hi = parser.get_double("max-volume");
  const double c_frac = parser.get_double("common-frac");

  // 1. Calibrate.
  core::CalibrationRequest request;
  request.min_volume = n_lo;
  request.max_volume = n_hi;
  request.common_fraction = c_frac;
  request.min_privacy = parser.get_double("min-privacy");
  const core::CalibrationResult plan = core::calibrate_deployment(request);
  std::printf(
      "calibrated plan: s = %u, f̄ = %.2f (worst privacy %.3f, predicted "
      "error %.1f%% on the hardest pair)\n\n",
      plan.s, plan.load_factor, plan.worst_privacy,
      plan.predicted_error * 100.0);

  // 2. Deploy four RSUs spanning the profile geometrically, with a hub
  // pattern of overlaps: every RSU shares c_frac of the LIGHTER volume
  // with the heaviest RSU.
  std::vector<double> volumes;
  for (int i = 0; i < 4; ++i) {
    volumes.push_back(n_lo * std::pow(n_hi / n_lo, i / 3.0));
  }
  vcps::SimulationConfig config;
  config.server.scheme = core::make_vlm_scheme(
      {.s = plan.s, .load_factor = plan.load_factor});
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  std::vector<vcps::RsuSite> sites;
  for (std::size_t r = 0; r < volumes.size(); ++r) {
    sites.push_back(vcps::RsuSite{core::RsuId{r + 1}, volumes[r]});
  }
  vcps::VcpsSimulation sim(config, sites);
  sim.begin_period();

  const std::size_t hub = volumes.size() - 1;
  std::vector<std::uint64_t> common_with_hub(volumes.size(), 0);
  for (std::size_t r = 0; r + 1 < volumes.size(); ++r) {
    const auto n_common =
        static_cast<std::uint64_t>(c_frac * volumes[r]);
    const auto n_only = static_cast<std::uint64_t>(volumes[r]) - n_common;
    common_with_hub[r] = n_common;
    const std::vector<std::size_t> both{r, hub};
    const std::vector<std::size_t> only{r};
    for (std::uint64_t v = 0; v < n_common; ++v) sim.drive_vehicle(both);
    for (std::uint64_t v = 0; v < n_only; ++v) sim.drive_vehicle(only);
  }
  // Fill the hub to its own volume with hub-only traffic.
  {
    std::uint64_t already = 0;
    for (std::size_t r = 0; r + 1 < volumes.size(); ++r) {
      already += common_with_hub[r];
    }
    const std::vector<std::size_t> only{hub};
    const auto target = static_cast<std::uint64_t>(volumes[hub]);
    for (std::uint64_t v = already; v < target; ++v) sim.drive_vehicle(only);
  }
  sim.end_period();

  // 3. Verify against the plan.
  common::TextTable table({"pair", "true n_c", "estimate", "error",
                           "model sigma", "privacy (exact)"});
  for (std::size_t r = 0; r + 1 < volumes.size(); ++r) {
    const auto estimate = sim.estimate(r, hub);
    const double truth = static_cast<double>(common_with_hub[r]);
    const core::PairScenario sc{
        static_cast<double>(sim.rsu(r).state().counter()),
        static_cast<double>(sim.rsu(hub).state().counter()), truth,
        sim.rsu(r).state().array_size(), sim.rsu(hub).state().array_size(),
        plan.s};
    table.add_row(
        {"(" + std::to_string(r + 1) + ", " + std::to_string(hub + 1) + ")",
         common::TextTable::fmt(truth, 0),
         common::TextTable::fmt(estimate.n_c_hat, 1),
         common::TextTable::fmt_percent(
             std::fabs(estimate.n_c_hat - truth) / truth, 2),
         common::TextTable::fmt_percent(
             core::AccuracyModel::predict(sc).stddev_ratio, 2),
         common::TextTable::fmt(core::PrivacyModel::evaluate_exact(sc).p, 3)});
  }
  std::printf("one measured period under the calibrated plan:\n%s",
              table.to_string().c_str());
  std::printf(
      "\nall pair privacies should clear the %.2f floor, and errors should\n"
      "sit within a couple of model sigmas.\n",
      request.min_privacy);
  return 0;
}
