// Multi-period monitoring: a standing deployment that measures the same
// RSU pair day after day, aggregates the daily estimates, and watches
// the confidence interval shrink like 1/sqrt(days).
//
//   $ ./multi_period_monitoring --days 14
//
// Also demonstrates the server-side OD-matrix API and the accuracy gap
// between a single day and the aggregate.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/multi_period.h"
#include "vcps/simulation.h"

int main(int argc, char** argv) {
  using namespace vlm;
  common::ArgParser parser("multi_period_monitoring",
                           "aggregate daily measurements of one RSU pair");
  parser.add_int("days", 14, "number of measurement periods");
  parser.add_int("n-common", 1'500, "daily vehicles passing both RSUs");
  parser.add_int("n-x-only", 8'500, "daily vehicles passing only RSU A");
  parser.add_int("n-y-only", 88'500, "daily vehicles passing only RSU B");
  parser.add_int("seed", 99, "simulation seed");
  if (!parser.parse(argc, argv)) return 0;
  const int days = static_cast<int>(parser.get_int("days"));
  const auto n_common = static_cast<std::uint64_t>(parser.get_int("n-common"));
  const auto n_x_only = static_cast<std::uint64_t>(parser.get_int("n-x-only"));
  const auto n_y_only = static_cast<std::uint64_t>(parser.get_int("n-y-only"));

  vcps::SimulationConfig config;
  config.server.scheme =
      core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  const std::vector<vcps::RsuSite> sites{
      vcps::RsuSite{core::RsuId{1}, double(n_common + n_x_only)},
      vcps::RsuSite{core::RsuId{2}, double(n_common + n_y_only)}};
  vcps::VcpsSimulation sim(config, sites);

  core::MultiPeriodAggregator aggregator(1.96);
  common::TextTable table({"day", "daily estimate", "daily 95% interval",
                           "aggregate", "aggregate interval"});
  const std::vector<std::size_t> both{0, 1}, only_x{0}, only_y{1};
  for (int day = 1; day <= days; ++day) {
    sim.begin_period();
    for (std::uint64_t v = 0; v < n_common; ++v) sim.drive_vehicle(both);
    for (std::uint64_t v = 0; v < n_x_only; ++v) sim.drive_vehicle(only_x);
    for (std::uint64_t v = 0; v < n_y_only; ++v) sim.drive_vehicle(only_y);
    sim.end_period();

    const core::EstimateInterval daily =
        sim.server().estimate_with_interval(core::RsuId{1}, core::RsuId{2});
    aggregator.add_period(daily);
    const core::AggregateEstimate agg = aggregator.aggregate();
    table.add_row({std::to_string(day), common::TextTable::fmt(daily.n_c_hat, 1),
                   "[" + common::TextTable::fmt(daily.lower, 0) + ", " +
                       common::TextTable::fmt(daily.upper, 0) + "]",
                   common::TextTable::fmt(agg.n_c_hat, 1),
                   "[" + common::TextTable::fmt(agg.lower, 0) + ", " +
                       common::TextTable::fmt(agg.upper, 0) + "]"});
  }
  std::printf("true daily common traffic: %llu vehicles\n\n",
              static_cast<unsigned long long>(n_common));
  std::printf("%s", table.to_string().c_str());

  const core::AggregateEstimate final_agg = aggregator.aggregate();
  std::printf(
      "\nafter %d days: n_c^ = %.1f +- %.1f (truth %llu; error %.2f%%)\n",
      days, final_agg.n_c_hat, final_agg.stddev,
      static_cast<unsigned long long>(n_common),
      std::fabs(final_agg.n_c_hat - double(n_common)) / double(n_common) *
          100.0);
  return 0;
}
