// City-scale measurement: dozens of RSUs with heavily skewed popularity,
// full protocol stack, and an OD matrix of estimates.
//
//   $ ./city_scale_measurement --rsus 32 --vehicles 200000
//
// Models the situation the paper motivates with the NYSDOT report: a few
// arterial RSUs see orders of magnitude more traffic than the tail. VLM
// sizes every array individually, so light RSUs keep small (private)
// arrays while heavy ones stay accurate. The example prints the busiest
// RSUs' pairwise estimates against exact ground truth, plus how the
// array sizes spread across the deployment.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "traffic/multi_rsu_workload.h"
#include "vcps/simulation.h"

int main(int argc, char** argv) {
  using namespace vlm;
  common::ArgParser parser("city_scale_measurement",
                           "skewed multi-RSU deployment, full protocol");
  parser.add_int("rsus", 32, "number of RSUs");
  parser.add_int("vehicles", 200'000, "vehicles per measurement period");
  parser.add_double("zipf", 1.0, "popularity skew exponent");
  parser.add_double("load-factor", 8.0, "VLM load factor f̄");
  parser.add_int("report-pairs", 8, "pairs to print");
  parser.add_int("seed", 5150, "workload/protocol seed");
  if (!parser.parse(argc, argv)) return 0;

  traffic::MultiRsuConfig workload_config;
  workload_config.rsu_count = static_cast<std::size_t>(parser.get_int("rsus"));
  workload_config.vehicle_count =
      static_cast<std::uint64_t>(parser.get_int("vehicles"));
  workload_config.zipf_exponent = parser.get_double("zipf");
  workload_config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  traffic::MultiRsuWorkload workload(workload_config);

  // Warm-up pass to learn "historical" volumes (a deployment would have
  // them from previous periods).
  workload.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});
  const auto history = workload.node_volumes();

  vcps::SimulationConfig config;
  config.server.scheme = core::make_vlm_scheme(
      {.s = 2, .load_factor = parser.get_double("load-factor")});
  config.seed = workload_config.seed ^ 0xC17Eull;
  std::vector<vcps::RsuSite> sites;
  for (std::size_t r = 0; r < workload_config.rsu_count; ++r) {
    sites.push_back(vcps::RsuSite{core::RsuId{r + 1},
                                  static_cast<double>(history[r])});
  }
  vcps::VcpsSimulation sim(config, sites);
  sim.begin_period();
  std::vector<std::size_t> positions;
  workload.for_each_vehicle(
      [&](std::uint64_t, std::span<const std::uint32_t> rsus) {
        positions.assign(rsus.begin(), rsus.end());
        sim.drive_vehicle(positions);
      });
  sim.end_period();

  // Array-size spread across the deployment.
  std::map<std::size_t, int> size_histogram;
  for (std::size_t r = 0; r < sim.rsu_count(); ++r) {
    ++size_histogram[sim.rsu(r).state().array_size()];
  }
  std::printf("array sizes across %zu RSUs (VLM sizing):\n", sim.rsu_count());
  for (const auto& [size, count] : size_histogram) {
    std::printf("  m = %8zu bits: %d RSUs\n", size, count);
  }

  // Estimates for the busiest RSU against the next-busiest ones.
  std::vector<std::uint32_t> order(workload_config.rsu_count);
  for (std::uint32_t r = 0; r < order.size(); ++r) order[r] = r;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return workload.node_volumes()[a] > workload.node_volumes()[b];
  });

  const std::uint32_t hub = order[0];
  common::TextTable table({"pair", "n_x", "n_y", "true n_c", "estimated",
                           "error"});
  const auto pairs = std::min<std::size_t>(
      static_cast<std::size_t>(parser.get_int("report-pairs")),
      order.size() - 1);
  for (std::size_t i = 1; i <= pairs; ++i) {
    const std::uint32_t other = order[i];
    const auto estimate = sim.estimate(other, hub);
    const double truth = static_cast<double>(workload.pair_volume(other, hub));
    table.add_row(
        {"(" + std::to_string(other + 1) + ", " + std::to_string(hub + 1) + ")",
         common::TextTable::fmt_int(
             static_cast<long long>(workload.node_volumes()[other])),
         common::TextTable::fmt_int(
             static_cast<long long>(workload.node_volumes()[hub])),
         common::TextTable::fmt(truth, 0),
         common::TextTable::fmt(estimate.n_c_hat, 1),
         truth > 0 ? common::TextTable::fmt_percent(
                         std::fabs(estimate.n_c_hat - truth) / truth, 2)
                   : "n/a"});
  }
  std::printf("\npoint-to-point estimates vs the busiest RSU (%u):\n%s",
              hub + 1, table.to_string().c_str());
  return 0;
}
