// Privacy explorer: interrogate the Section VI privacy model for a
// concrete deployment before committing to a load factor.
//
//   $ ./privacy_explorer --n-x 20000 --n-y 300000 --s 5 --common-frac 0.1
//
// Prints the preserved privacy p across load factors for the given pair
// of RSU volumes under (a) VLM per-RSU sizing and (b) FBM sizing the
// shared array for the heavy RSU, plus the breakdown probabilities of
// Eq. 43 at the chosen operating point — the numbers a deployment review
// would ask for.
#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/cli.h"
#include "common/table.h"
#include "core/calibration.h"
#include "core/privacy_model.h"
#include "core/scheme.h"

int main(int argc, char** argv) {
  using namespace vlm;
  common::ArgParser parser("privacy_explorer",
                           "explore preserved privacy across load factors");
  parser.add_double("n-x", 20'000, "light RSU daily volume");
  parser.add_double("n-y", 300'000, "heavy RSU daily volume");
  parser.add_int("s", 5, "logical bit array size");
  parser.add_double("common-frac", 0.1, "n_c as a fraction of min volume");
  parser.add_double("load-factor", 8.0, "operating point f̄ for the breakdown");
  if (!parser.parse(argc, argv)) return 0;
  const double n_x = parser.get_double("n-x");
  const double n_y = parser.get_double("n-y");
  const auto s = static_cast<std::uint32_t>(parser.get_int("s"));
  const double c_frac = parser.get_double("common-frac");
  const double n_c = c_frac * std::min(n_x, n_y);

  std::printf("deployment: n_x = %.0f, n_y = %.0f, n_c = %.0f, s = %u\n\n",
              n_x, n_y, n_c, s);

  common::TextTable table({"f", "p VLM (both at f)", "p FBM (m = f*n_y)",
                           "light-RSU load under FBM"});
  for (double f : {0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 15.0, 25.0, 50.0}) {
    const double p_vlm =
        core::PrivacyModel::privacy_at_load_factor(f, n_x, n_y, c_frac, s);
    // FBM: one array sized for the heavy RSU; the light RSU then runs at
    // load factor f * n_y / n_x.
    const double m = f * n_y;
    const double p_fbm = core::PrivacyModel::preserved_privacy(
        core::PairScenario{n_x, n_y, n_c,
                           static_cast<std::size_t>(m),
                           static_cast<std::size_t>(m), s});
    table.add_row({common::TextTable::fmt(f, 1),
                   common::TextTable::fmt(p_vlm, 4),
                   common::TextTable::fmt(p_fbm, 4),
                   common::TextTable::fmt(m / n_x, 1)});
  }
  std::printf("%s", table.to_string().c_str());

  // Breakdown at the operating point under VLM sizing.
  const double f_bar = parser.get_double("load-factor");
  const core::SchemePtr scheme = core::make_vlm_scheme(
      {.s = static_cast<std::uint32_t>(s), .load_factor = f_bar});
  const core::PairScenario op{n_x, n_y, n_c, scheme->array_size_for(n_x),
                              scheme->array_size_for(n_y), s};
  const auto b = core::PrivacyModel::evaluate(op);
  std::printf(
      "\nat f̄ = %.1f (m_x = %zu, m_y = %zu):\n"
      "  P(A)   = %.4f  (a bit position is '1' in both unfolded arrays)\n"
      "  P(E_x) = %.4f  (that bit was set only by x-exclusive traffic)\n"
      "  P(E_y) = %.4f  (that bit was set only by y-exclusive traffic)\n"
      "  p      = %.4f  (Eq. 43: chance a doubly-set bit is NOT a trace)\n",
      f_bar, op.m_x, op.m_y, b.p_a, b.p_ex, b.p_ey, b.p);
  if (b.p < 0.5) {
    std::printf("  WARNING: below the paper's 0.5 comfort threshold.\n");
  }

  // What the calibrator would pick for this profile.
  core::CalibrationRequest request;
  request.min_volume = std::min(n_x, n_y);
  request.max_volume = std::max(n_x, n_y);
  request.common_fraction = c_frac;
  request.min_privacy = 0.5;
  try {
    const core::CalibrationResult plan = core::calibrate_deployment(request);
    std::printf(
        "\ncalibrator recommendation (privacy floor 0.5): s = %u, "
        "f̄ = %.2f\n  -> worst-pair privacy %.3f, predicted error %.2f%% on "
        "the hardest pair\n",
        plan.s, plan.load_factor, plan.worst_privacy,
        plan.predicted_error * 100.0);
  } catch (const std::invalid_argument& e) {
    std::printf("\ncalibrator: %s\n", e.what());
  }
  return 0;
}
