#include "stats/chi_square.h"

#include <cmath>

#include "common/require.h"

namespace vlm::stats {

double chi_square_uniform(std::span<const std::uint64_t> observed) {
  VLM_REQUIRE(observed.size() >= 2, "chi-square needs at least two bins");
  std::uint64_t total = 0;
  for (std::uint64_t c : observed) total += c;
  VLM_REQUIRE(total > 0, "chi-square needs a positive total count");
  const double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  double stat = 0.0;
  for (std::uint64_t c : observed) {
    const double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  return stat;
}

double chi_square_critical_999(std::uint64_t dof) {
  VLM_REQUIRE(dof >= 1, "chi-square needs at least one degree of freedom");
  // Wilson-Hilferty: X^2_(k, q) ~= k * (1 - 2/(9k) + z_q * sqrt(2/(9k)))^3,
  // with z_0.999 = 3.0902.
  const double k = static_cast<double>(dof);
  const double z = 3.0902323061678132;
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

}  // namespace vlm::stats
