#include "stats/estimator_eval.h"

#include "common/hashing.h"
#include "common/require.h"

namespace vlm::stats {

RatioReport evaluate_ratio(
    const std::function<double(std::uint64_t seed)>& trial, double true_value,
    std::size_t trials, std::uint64_t base_seed) {
  VLM_REQUIRE(trials >= 2, "ratio evaluation needs at least two trials");
  VLM_REQUIRE(true_value > 0.0, "true value must be positive");
  RunningStats stats;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t seed =
        vlm::common::mix64(base_seed + 0x632BE59BD9B4E019ull * (t + 1));
    stats.push(trial(seed) / true_value);
  }
  RatioReport report;
  report.trials = stats.count();
  report.mean_ratio = stats.mean();
  report.bias = stats.mean() - 1.0;
  report.stddev_ratio = stats.stddev();
  report.min_ratio = stats.min();
  report.max_ratio = stats.max();
  return report;
}

}  // namespace vlm::stats
