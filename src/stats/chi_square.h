// Pearson chi-square goodness-of-fit, used by tests to check that the
// protocol's hash-derived bit indices are uniform (the assumption every
// formula in the paper rests on).
#pragma once

#include <cstdint>
#include <span>

namespace vlm::stats {

// Pearson statistic for observed counts against a uniform expectation.
// Requires at least two bins and a positive total count.
double chi_square_uniform(std::span<const std::uint64_t> observed);

// Approximate upper critical value of the chi-square distribution with
// `dof` degrees of freedom at significance 0.001, via the Wilson-Hilferty
// cube-root normal approximation. Good to a few percent for dof >= 10,
// which is all the tests need.
double chi_square_critical_999(std::uint64_t dof);

}  // namespace vlm::stats
