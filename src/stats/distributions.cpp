#include "stats/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace vlm::stats {

double log_factorial(std::uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double binomial_pmf(std::uint64_t n, double p, std::uint64_t k) {
  VLM_REQUIRE(p >= 0.0 && p <= 1.0, "binomial p must be in [0, 1]");
  VLM_REQUIRE(k <= n, "binomial k must be <= n");
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_choose =
      log_factorial(n) - log_factorial(k) - log_factorial(n - k);
  const double log_pmf = log_choose + static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_mean(std::uint64_t n, double p) {
  return static_cast<double>(n) * p;
}

double binomial_variance(std::uint64_t n, double p) {
  return static_cast<double>(n) * p * (1.0 - p);
}

std::uint64_t sample_binomial(vlm::common::Xoshiro256ss& rng, std::uint64_t n,
                              double p) {
  VLM_REQUIRE(p >= 0.0 && p <= 1.0, "binomial p must be in [0, 1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const double np = static_cast<double>(n) * p;
  const double var = np * (1.0 - p);
  if (n <= 64 || var < 25.0) {
    // Exact: sum of Bernoulli draws. Cheap for the sizes that reach here.
    std::uint64_t k = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (rng.bernoulli(p)) ++k;
    }
    return k;
  }
  // Normal approximation with rounding, clamped to the support. For the
  // workload-generation use case (splitting trip counts), the O(1/sqrt(var))
  // approximation error is far below the schemes' estimation noise.
  const double u1 = rng.uniform_double();
  const double u2 = rng.uniform_double();
  const double z = std::sqrt(-2.0 * std::log(std::max(u1, 1e-300))) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  const double draw = np + std::sqrt(var) * z;
  const double clamped =
      std::clamp(draw, 0.0, static_cast<double>(n));
  return static_cast<std::uint64_t>(std::llround(clamped));
}

}  // namespace vlm::stats
