// Closed-form distribution helpers used by analysis models and tests.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace vlm::stats {

// Binomial(n, p) probability mass at k, computed in log space so large n
// (traffic volumes reach 5*10^5) does not overflow.
double binomial_pmf(std::uint64_t n, double p, std::uint64_t k);

// Mean and variance of Binomial(n, p).
double binomial_mean(std::uint64_t n, double p);
double binomial_variance(std::uint64_t n, double p);

// Draws from Binomial(n, p). Exact Bernoulli summation for small n,
// normal approximation with continuity handling for large n*p(1-p); used
// only by synthetic workload generation, never by the schemes themselves.
std::uint64_t sample_binomial(vlm::common::Xoshiro256ss& rng, std::uint64_t n,
                              double p);

// ln(n!) via lgamma.
double log_factorial(std::uint64_t n);

}  // namespace vlm::stats
