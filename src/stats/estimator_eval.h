// Monte-Carlo evaluation harness for point-to-point estimators.
//
// Runs a caller-supplied single-trial function (generate workload, encode,
// estimate) `trials` times with independent seeds and reports the bias and
// standard deviation of n̂_c/n_c — the exact metrics of paper Section II-B.
#pragma once

#include <cstdint>
#include <functional>

#include "stats/descriptive.h"

namespace vlm::stats {

struct RatioReport {
  std::size_t trials = 0;
  double mean_ratio = 0.0;   // E[n̂_c / n_c]
  double bias = 0.0;         // mean_ratio - 1
  double stddev_ratio = 0.0; // StdDev[n̂_c / n_c]
  double min_ratio = 0.0;
  double max_ratio = 0.0;
};

// `trial(seed)` must return the estimate n̂_c for one fresh simulation.
RatioReport evaluate_ratio(
    const std::function<double(std::uint64_t seed)>& trial, double true_value,
    std::size_t trials, std::uint64_t base_seed);

}  // namespace vlm::stats
