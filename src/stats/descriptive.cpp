#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace vlm::stats {

void RunningStats::push(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  VLM_REQUIRE(count_ > 0, "mean of an empty sample");
  return mean_;
}

double RunningStats::variance() const {
  VLM_REQUIRE(count_ >= 2, "variance needs at least two samples");
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  VLM_REQUIRE(count_ > 0, "min of an empty sample");
  return min_;
}

double RunningStats::max() const {
  VLM_REQUIRE(count_ > 0, "max of an empty sample");
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> sample, double q) {
  VLM_REQUIRE(!sample.empty(), "quantile of an empty sample");
  VLM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile fraction must be in [0, 1]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + (sample[hi] - sample[lo]) * frac;
}

}  // namespace vlm::stats
