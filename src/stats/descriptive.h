// Streaming descriptive statistics (Welford) and quantiles.
//
// Every accuracy experiment reports bias and standard deviation of the
// ratio n̂_c/n_c over repeated trials; RunningStats accumulates those in a
// single numerically stable pass.
#pragma once

#include <cstddef>
#include <vector>

namespace vlm::stats {

class RunningStats {
 public:
  void push(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  // Unbiased sample variance (n-1 denominator). Requires count() >= 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  // Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Linear-interpolation quantile of a sample, q in [0, 1]. Copies and sorts;
// for the sample sizes in our harnesses (<= 10^6) this is fine.
double quantile(std::vector<double> sample, double q);

}  // namespace vlm::stats
