// Synthetic city-scale workload: many RSUs with heterogeneous popularity.
//
// Models the situation the paper motivates with the NYSDOT report — major
// intersections see hundreds of thousands of vehicles/day while light
// ones see a few hundred. Each vehicle visits a small set of RSUs drawn
// from a Zipf-like popularity distribution, producing wildly unbalanced
// point volumes and a dense matrix of pairwise overlaps with exact ground
// truth.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/visited_mask.h"

namespace vlm::traffic {

struct MultiRsuConfig {
  std::size_t rsu_count = 32;
  std::uint64_t vehicle_count = 100'000;
  double zipf_exponent = 1.0;   // popularity skew; 0 = uniform
  std::uint32_t min_visits = 2; // RSUs per vehicle trip (inclusive range)
  std::uint32_t max_visits = 6;
  std::uint64_t seed = 1;
};

class MultiRsuWorkload {
 public:
  explicit MultiRsuWorkload(const MultiRsuConfig& config);

  const MultiRsuConfig& config() const { return config_; }

  // Vehicle `vehicle_index`'s visit list: distinct RSU indices, sorted
  // ascending. A pure function of (config, vehicle_index) — the RNG is
  // seeded per vehicle (mix64(seed ^ v)) instead of drawn from one
  // sequential stream — so any worker can generate any vehicle
  // independently and a sharded ingest over ANY worker count sees
  // vehicle-for-vehicle identical itineraries. `visited` is per-caller
  // dedup scratch sized rsu_count (keep one per worker thread and reuse
  // it across vehicles); `out` is cleared and refilled.
  void itinerary(std::uint64_t vehicle_index, common::VisitedMask& visited,
                 std::vector<std::uint32_t>& out) const;

  // Streams each vehicle's visit list (distinct RSU indices, sorted), in
  // vehicle order, via itinerary(). Deterministic for a given config.
  // While streaming, ground-truth counters are accumulated and are
  // available afterwards.
  void for_each_vehicle(
      const std::function<void(std::uint64_t vehicle_index,
                               std::span<const std::uint32_t> rsus)>& visit);

  // Ground truth collected by the last for_each_vehicle run.
  const std::vector<std::uint64_t>& node_volumes() const { return volumes_; }
  std::uint64_t pair_volume(std::uint32_t a, std::uint32_t b) const;

 private:
  MultiRsuConfig config_;
  std::vector<double> popularity_cdf_;
  std::vector<std::uint64_t> volumes_;
  std::vector<std::uint64_t> pair_counts_;  // upper-triangular matrix
};

}  // namespace vlm::traffic
