// Synthetic city-scale workload: many RSUs with heterogeneous popularity.
//
// Models the situation the paper motivates with the NYSDOT report — major
// intersections see hundreds of thousands of vehicles/day while light
// ones see a few hundred. Each vehicle visits a small set of RSUs drawn
// from a Zipf-like popularity distribution, producing wildly unbalanced
// point volumes and a dense matrix of pairwise overlaps with exact ground
// truth.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/uninit.h"
#include "common/visited_mask.h"

namespace vlm::traffic {

struct MultiRsuConfig {
  std::size_t rsu_count = 32;
  std::uint64_t vehicle_count = 100'000;
  double zipf_exponent = 1.0;   // popularity skew; 0 = uniform
  std::uint32_t min_visits = 2; // RSUs per vehicle trip (inclusive range)
  std::uint32_t max_visits = 6;
  std::uint64_t seed = 1;
};

class MultiRsuWorkload {
 public:
  explicit MultiRsuWorkload(const MultiRsuConfig& config);

  const MultiRsuConfig& config() const { return config_; }

  // Vehicle `vehicle_index`'s visit list: distinct RSU indices, sorted
  // ascending. A pure function of (config, vehicle_index) — the draws
  // come from a counter-based splitmix64 stream seeded per vehicle at
  // mix64(seed ^ v) instead of one sequential generator — so any worker
  // can generate any vehicle independently and a sharded ingest over ANY
  // worker count sees vehicle-for-vehicle identical itineraries. `visited` is per-caller
  // dedup scratch sized rsu_count (keep one per worker thread and reuse
  // it across vehicles); `out` is cleared and refilled.
  void itinerary(std::uint64_t vehicle_index, common::VisitedMask& visited,
                 std::vector<std::uint32_t>& out) const;

  // Bulk form: the itineraries of every vehicle in [begin, end), CSR
  // layout — vehicle (begin + i)'s visits are positions[offsets[i]] ..
  // positions[offsets[i + 1]]. Exactly the per-vehicle itineraries
  // concatenated (same draws, same order); one call materializes a whole
  // ingest-worker slice without a function call per vehicle, which is
  // what the batch pipeline's materialize stage runs on.
  //
  // Unlike itinerary(), the draws are generated in bulk: the stream
  // bases and visit-count draws of the whole block run through the
  // dispatched encode_batch kernel, and the Zipf rank selections through
  // zipf_rank_runs — the run-expanded rank kernel that synthesizes each
  // vehicle's visit-draw stream positions in a cache-resident chunk
  // instead of materializing the whole block's state array (8 lanes of
  // the splitmix64 finalizer and the guide-table walk per iteration on
  // AVX-512) — with a scalar continuation for the rare vehicle whose
  // rejection run outlasts the pre-generated draws. The accept/reject
  // sequence is draw-for-draw the one sample_into consumes, so the
  // output is bit-identical to the per-vehicle path — the frozen-seed
  // goldens pin it.
  //
  // `positions` is an UninitVector: it is sized once per call (no
  // value-init memset over the block) and every slot in range is written
  // by the emission loop before anything reads it.
  //
  // `counts` is the per-RSU visit histogram of the block (size
  // rsu_count, counts[r] = tuples destined for RSU r), accumulated while
  // the positions are accepted — the batch ingest sizes its SoA buckets
  // from it without a second pass over the CSR.
  void itineraries(std::uint64_t begin, std::uint64_t end,
                   common::VisitedMask& visited,
                   common::UninitVector<std::uint32_t>& positions,
                   std::vector<std::uint64_t>& offsets,
                   std::vector<std::uint64_t>& counts) const;

  // Streams each vehicle's visit list (distinct RSU indices, sorted), in
  // vehicle order, via itinerary(). Deterministic for a given config.
  // While streaming, ground-truth counters are accumulated and are
  // available afterwards.
  void for_each_vehicle(
      const std::function<void(std::uint64_t vehicle_index,
                               std::span<const std::uint32_t> rsus)>& visit);

  // Ground truth collected by the last for_each_vehicle run.
  const std::vector<std::uint64_t>& node_volumes() const { return volumes_; }
  std::uint64_t pair_volume(std::uint32_t a, std::uint32_t b) const;

 private:
  // Appends vehicle_index's sorted visit list to `out` (no clear) — the
  // shared sampling core of itinerary() and itineraries().
  void sample_into(std::uint64_t vehicle_index, common::VisitedMask& visited,
                   std::vector<std::uint32_t>& out) const;

  MultiRsuConfig config_;
  std::vector<double> popularity_cdf_;
  // The CDF scaled to 2^53 for the draw loop: cdf_thresholds_[r] is the
  // smallest 53-bit draw d with popularity_cdf_[r] < d * 2^-53, so the
  // selected rank for a draw d — lower_bound(popularity_cdf_, d * 2^-53)
  // — is the first r with cdf_thresholds_[r] > d, found with integer
  // compares only (no double converts in the hot path).
  std::vector<std::uint64_t> cdf_thresholds_;
  // Guide table for that lookup: zipf_guide_[j] is a lower bound on the
  // selected rank of every draw in bucket j (buckets split the 53-bit
  // draw space evenly), so the scan starts at
  // zipf_guide_[d * buckets >> 53] and almost always finishes in one
  // step. Pure acceleration — the selected rank is unchanged.
  std::vector<std::uint32_t> zipf_guide_;
  std::vector<std::uint64_t> volumes_;
  std::vector<std::uint64_t> pair_counts_;  // upper-triangular matrix
};

}  // namespace vlm::traffic
