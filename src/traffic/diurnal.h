// Diurnal demand profile: hour-of-day multipliers for multi-period
// simulations.
//
// The paper measures whole days; a deployment that measures hourly
// periods sees strongly time-varying volumes (AM/PM peaks, overnight
// troughs), which stresses exactly the machinery the paper motivates:
// history-driven array sizing must follow the profile or light hours run
// at wasteful load factors. The canned profile is a stylized urban
// double-peak curve; the multipliers average 1 so scaling a daily total
// by multiplier(h)/24 yields hourly volumes.
#pragma once

#include <array>
#include <cstdint>

namespace vlm::traffic {

class DiurnalProfile {
 public:
  // A stylized weekday profile: AM peak around 8h, PM peak around 17h,
  // deep overnight trough.
  static DiurnalProfile standard_weekday();

  // Custom profile from 24 non-negative multipliers; they are rescaled
  // to average exactly 1.
  explicit DiurnalProfile(const std::array<double, 24>& multipliers);

  // Multiplier for hour h in [0, 24).
  double multiplier(unsigned hour) const;

  // Expected volume in hour h of a day with `daily_total` vehicles.
  double hourly_volume(double daily_total, unsigned hour) const;

  double peak_multiplier() const;
  double trough_multiplier() const;
  // Peak-to-trough ratio: the within-day analogue of the paper's
  // across-RSU traffic difference ratio d.
  double peak_to_trough() const;

 private:
  std::array<double, 24> multipliers_;
};

}  // namespace vlm::traffic
