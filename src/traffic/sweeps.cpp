#include "traffic/sweeps.h"

#include <cmath>

#include "common/require.h"

namespace vlm::traffic {

std::vector<core::PairWorkload> build_figure_sweep(
    const FigureSweepSpec& spec) {
  VLM_REQUIRE(spec.n_x > 0, "n_x must be positive");
  VLM_REQUIRE(spec.ratio_y >= 1.0, "the convention is n_y >= n_x");
  VLM_REQUIRE(spec.c_min_frac > 0.0 && spec.c_max_frac <= 1.0 &&
                  spec.c_min_frac <= spec.c_max_frac,
              "common-fraction bounds must satisfy 0 < min <= max <= 1");
  VLM_REQUIRE(spec.c_step_frac > 0.0, "step must be positive");

  const auto n_x = spec.n_x;
  const auto n_y = static_cast<std::uint64_t>(
      std::llround(spec.ratio_y * static_cast<double>(n_x)));
  std::vector<core::PairWorkload> sweep;
  const double nx = static_cast<double>(n_x);
  for (double frac = spec.c_min_frac; frac <= spec.c_max_frac + 1e-12;
       frac += spec.c_step_frac) {
    const auto n_c = static_cast<std::uint64_t>(std::llround(frac * nx));
    if (n_c == 0) continue;
    sweep.push_back(core::PairWorkload{n_x, n_y, n_c});
  }
  VLM_ASSERT(!sweep.empty());
  return sweep;
}

}  // namespace vlm::traffic
