#include "traffic/diurnal.h"

#include <algorithm>

#include "common/require.h"

namespace vlm::traffic {

DiurnalProfile DiurnalProfile::standard_weekday() {
  // Shares loosely following urban ATR data: double peak, light nights.
  return DiurnalProfile(std::array<double, 24>{
      0.15, 0.10, 0.08, 0.08, 0.12, 0.35,  // 0-5h
      0.90, 1.80, 2.20, 1.60, 1.20, 1.15,  // 6-11h
      1.25, 1.20, 1.25, 1.45, 1.90, 2.30,  // 12-17h
      1.80, 1.20, 0.85, 0.60, 0.40, 0.25,  // 18-23h
  });
}

DiurnalProfile::DiurnalProfile(const std::array<double, 24>& multipliers)
    : multipliers_(multipliers) {
  double total = 0.0;
  for (double m : multipliers_) {
    VLM_REQUIRE(m >= 0.0, "multipliers must be non-negative");
    total += m;
  }
  VLM_REQUIRE(total > 0.0, "at least one hour must carry traffic");
  for (double& m : multipliers_) m *= 24.0 / total;
}

double DiurnalProfile::multiplier(unsigned hour) const {
  VLM_REQUIRE(hour < 24, "hour must be in [0, 24)");
  return multipliers_[hour];
}

double DiurnalProfile::hourly_volume(double daily_total, unsigned hour) const {
  VLM_REQUIRE(daily_total >= 0.0, "daily total must be non-negative");
  return daily_total / 24.0 * multiplier(hour);
}

double DiurnalProfile::peak_multiplier() const {
  return *std::max_element(multipliers_.begin(), multipliers_.end());
}

double DiurnalProfile::trough_multiplier() const {
  return *std::min_element(multipliers_.begin(), multipliers_.end());
}

double DiurnalProfile::peak_to_trough() const {
  VLM_REQUIRE(trough_multiplier() > 0.0,
              "peak-to-trough undefined with an empty hour");
  return peak_multiplier() / trough_multiplier();
}

}  // namespace vlm::traffic
