#include "traffic/multi_rsu_workload.h"

#include <algorithm>
#include <cmath>

#include "common/hashing.h"
#include "common/require.h"

namespace vlm::traffic {

MultiRsuWorkload::MultiRsuWorkload(const MultiRsuConfig& config)
    : config_(config) {
  VLM_REQUIRE(config.rsu_count >= 2, "need at least two RSUs");
  VLM_REQUIRE(config.vehicle_count > 0, "need at least one vehicle");
  VLM_REQUIRE(config.min_visits >= 1 &&
                  config.min_visits <= config.max_visits &&
                  config.max_visits <= config.rsu_count,
              "visit range must satisfy 1 <= min <= max <= rsu_count");
  VLM_REQUIRE(config.zipf_exponent >= 0.0, "zipf exponent must be >= 0");

  popularity_cdf_.resize(config.rsu_count);
  double total = 0.0;
  for (std::size_t r = 0; r < config.rsu_count; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), config.zipf_exponent);
    popularity_cdf_[r] = total;
  }
  for (double& c : popularity_cdf_) c /= total;

  // 2^53-scaled thresholds: cdf * 2^53 is exact (power-of-two scale), so
  // floor(...) + 1 is exactly the first draw value strictly above cdf[r].
  cdf_thresholds_.resize(config.rsu_count);
  for (std::size_t r = 0; r < config.rsu_count; ++r) {
    cdf_thresholds_[r] =
        static_cast<std::uint64_t>(popularity_cdf_[r] * 0x1p53) + 1;
  }

  // Guide table: 8 buckets per rank keeps the per-draw scan at ~1 step
  // even under heavy skew, while staying a few KiB for city-scale K.
  // Bucket j covers draws d with (d * buckets) >> 53 == j, whose smallest
  // member is ceil(j * 2^53 / buckets); the guide entry is that draw's
  // selected rank, a valid scan start for the whole bucket.
  const std::uint64_t buckets = config.rsu_count * 8;
  zipf_guide_.resize(buckets + 1);
  std::uint32_t rank = 0;
  for (std::uint64_t j = 0; j <= buckets; ++j) {
    const std::uint64_t smallest_draw = static_cast<std::uint64_t>(
        ((static_cast<unsigned __int128>(j) << 53) + buckets - 1) / buckets);
    while (rank < config.rsu_count && cdf_thresholds_[rank] <= smallest_draw) {
      ++rank;
    }
    zipf_guide_[j] = rank;
  }
}

void MultiRsuWorkload::sample_into(std::uint64_t vehicle_index,
                                   common::VisitedMask& visited,
                                   std::vector<std::uint32_t>& out) const {
  // Counter-based splitmix64 stream, seeded per vehicle: no generator
  // state to expand (a Xoshiro construction costs four splitmix rounds
  // before the first draw) and each draw is one add plus two multiplies.
  // Plenty of stream quality for a synthetic workload, and the same
  // splittability: any worker generates any vehicle independently.
  std::uint64_t stream = common::mix64(config_.seed ^ vehicle_index);
  // Bounded draw by 128-bit multiply; the bias (< range / 2^64) is far
  // below anything a 20k..1M-vehicle workload can resolve.
  const std::uint64_t visit_range =
      config_.max_visits - config_.min_visits + 1;
  const std::uint64_t span_count =
      config_.min_visits +
      static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(common::splitmix64_next(stream)) *
           visit_range) >>
          64);
  const std::size_t first = out.size();
  const std::uint64_t* thresholds = cdf_thresholds_.data();
  const std::uint64_t buckets = zipf_guide_.size() - 1;
  // Exactly span_count entries get accepted, so size once and fill
  // through a raw cursor — no per-accept growth/size bookkeeping. Dedup
  // by scanning the few entries already accepted for this vehicle: at
  // itinerary sizes (a handful of visits) that beats the epoch-mask
  // lookup, and for the rare wide-itinerary config it falls back to the
  // caller's mask. Either way the accept/reject sequence — and therefore
  // every draw — is unchanged.
  out.resize(first + span_count);
  std::uint32_t* cursor = out.data() + first;
  std::uint32_t* const cursor_end = cursor + span_count;
  const bool scan_dedup = span_count <= 16;
  if (!scan_dedup) visited.begin_pass();
  while (cursor != cursor_end) {
    // Rank selection is lower_bound(popularity_cdf_, draw * 2^-53) — the
    // number of CDF entries < the uniform — done entirely on the
    // 2^53-scaled integer thresholds. The guide table jumps straight to
    // the answer's neighborhood, so the scan below runs ~one iteration
    // instead of a branch-mispredicting binary search. Same rank either
    // way.
    const std::uint64_t draw = common::splitmix64_next(stream) >> 11;
    std::uint32_t r = zipf_guide_[static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(draw) * buckets) >> 53)];
    while (thresholds[r] <= draw) ++r;
    if (scan_dedup) {
      bool seen = false;
      for (const std::uint32_t* it = out.data() + first; it != cursor; ++it) {
        seen |= (*it == r);
      }
      if (!seen) *cursor++ = r;
    } else if (visited.insert(r)) {
      *cursor++ = r;
    }
  }
  // Itineraries are at most max_visits (<= rsu_count) entries; insertion
  // sort beats the std::sort dispatch at these sizes.
  for (std::size_t i = first + 1; i < out.size(); ++i) {
    const std::uint32_t value = out[i];
    std::size_t j = i;
    for (; j > first && out[j - 1] > value; --j) out[j] = out[j - 1];
    out[j] = value;
  }
}

void MultiRsuWorkload::itinerary(std::uint64_t vehicle_index,
                                 common::VisitedMask& visited,
                                 std::vector<std::uint32_t>& out) const {
  VLM_REQUIRE(vehicle_index < config_.vehicle_count,
              "vehicle index out of range");
  VLM_REQUIRE(visited.universe_size() == config_.rsu_count,
              "visited mask must be sized to the RSU count");
  out.clear();
  sample_into(vehicle_index, visited, out);
}

void MultiRsuWorkload::itineraries(std::uint64_t begin, std::uint64_t end,
                                   common::VisitedMask& visited,
                                   std::vector<std::uint32_t>& positions,
                                   std::vector<std::uint64_t>& offsets) const {
  VLM_REQUIRE(begin <= end && end <= config_.vehicle_count,
              "vehicle range out of bounds");
  VLM_REQUIRE(visited.universe_size() == config_.rsu_count,
              "visited mask must be sized to the RSU count");
  positions.clear();
  // max_visits per vehicle bounds the total, so one up-front reserve
  // removes every growth-reallocation copy from the hot slice loop.
  positions.reserve(static_cast<std::size_t>(end - begin) * config_.max_visits);
  offsets.clear();
  offsets.reserve(static_cast<std::size_t>(end - begin) + 1);
  offsets.push_back(0);
  for (std::uint64_t v = begin; v < end; ++v) {
    sample_into(v, visited, positions);
    offsets.push_back(positions.size());
  }
}

void MultiRsuWorkload::for_each_vehicle(
    const std::function<void(std::uint64_t, std::span<const std::uint32_t>)>&
        visit) {
  volumes_.assign(config_.rsu_count, 0);
  pair_counts_.assign(config_.rsu_count * config_.rsu_count, 0);

  common::VisitedMask visited(config_.rsu_count);
  std::vector<std::uint32_t> rsus;
  for (std::uint64_t v = 0; v < config_.vehicle_count; ++v) {
    itinerary(v, visited, rsus);
    // Itineraries are sorted, so rsus[i] < rsus[j] for i < j and the pair
    // counter needs no per-pair min/max.
    for (std::size_t i = 0; i < rsus.size(); ++i) {
      ++volumes_[rsus[i]];
      for (std::size_t j = i + 1; j < rsus.size(); ++j) {
        ++pair_counts_[rsus[i] * config_.rsu_count + rsus[j]];
      }
    }
    visit(v, rsus);
  }
}

std::uint64_t MultiRsuWorkload::pair_volume(std::uint32_t a,
                                            std::uint32_t b) const {
  VLM_REQUIRE(a < config_.rsu_count && b < config_.rsu_count && a != b,
              "pair volume needs two distinct registered RSUs");
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  return pair_counts_[lo * config_.rsu_count + hi];
}

}  // namespace vlm::traffic
