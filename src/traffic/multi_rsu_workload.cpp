#include "traffic/multi_rsu_workload.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/hashing.h"
#include "common/kernels/kernels.h"
#include "common/require.h"
#include "common/uninit.h"

namespace vlm::traffic {

namespace {
// splitmix64's stream increment — the gamma splitmix64_next adds before
// mixing. The bulk path reconstructs stream positions as base + k*gamma
// instead of stepping a mutable state, which is what lets whole blocks
// of draws go through the batch kernels.
constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ull;

// Pre-generated visit draws per vehicle: span_count accepted entries
// need at least span_count draws, plus headroom for Zipf rejections
// (duplicate ranks). Half the span again plus two covers the vast
// majority of vehicles even under heavy skew; the rare overflow
// continues on the exact scalar path, consuming the same stream.
constexpr std::size_t draw_slots_for(std::uint64_t span_count) {
  return static_cast<std::size_t>(span_count + 2 + span_count / 2);
}

// Per-thread scratch for the bulk generator, reused across slices so
// steady-state ingest does not reallocate. UninitVector: every slot is
// written by a kernel or the fill loop before it is read.
struct BulkScratch {
  common::UninitVector<std::uint64_t> inputs;  // encode_batch key blocks
  common::UninitVector<std::uint64_t> bases;   // mix64(seed ^ v)
  common::UninitVector<std::uint64_t> draws;      // span-count draws
  common::UninitVector<std::uint32_t> run_slots;  // draw slots per vehicle
  common::UninitVector<std::uint32_t> ranks;      // zipf_rank_runs output
};
}  // namespace

MultiRsuWorkload::MultiRsuWorkload(const MultiRsuConfig& config)
    : config_(config) {
  VLM_REQUIRE(config.rsu_count >= 2, "need at least two RSUs");
  VLM_REQUIRE(config.vehicle_count > 0, "need at least one vehicle");
  VLM_REQUIRE(config.min_visits >= 1 &&
                  config.min_visits <= config.max_visits &&
                  config.max_visits <= config.rsu_count,
              "visit range must satisfy 1 <= min <= max <= rsu_count");
  VLM_REQUIRE(config.zipf_exponent >= 0.0, "zipf exponent must be >= 0");

  popularity_cdf_.resize(config.rsu_count);
  double total = 0.0;
  for (std::size_t r = 0; r < config.rsu_count; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), config.zipf_exponent);
    popularity_cdf_[r] = total;
  }
  for (double& c : popularity_cdf_) c /= total;

  // 2^53-scaled thresholds: cdf * 2^53 is exact (power-of-two scale), so
  // floor(...) + 1 is exactly the first draw value strictly above cdf[r].
  cdf_thresholds_.resize(config.rsu_count);
  for (std::size_t r = 0; r < config.rsu_count; ++r) {
    cdf_thresholds_[r] =
        static_cast<std::uint64_t>(popularity_cdf_[r] * 0x1p53) + 1;
  }

  // Guide table: 8 buckets per rank keeps the per-draw scan at ~1 step
  // even under heavy skew, while staying a few KiB for city-scale K.
  // Bucket j covers draws d with (d * buckets) >> 53 == j, whose smallest
  // member is ceil(j * 2^53 / buckets); the guide entry is that draw's
  // selected rank, a valid scan start for the whole bucket.
  const std::uint64_t buckets = config.rsu_count * 8;
  zipf_guide_.resize(buckets + 1);
  std::uint32_t rank = 0;
  for (std::uint64_t j = 0; j <= buckets; ++j) {
    const std::uint64_t smallest_draw = static_cast<std::uint64_t>(
        ((static_cast<unsigned __int128>(j) << 53) + buckets - 1) / buckets);
    while (rank < config.rsu_count && cdf_thresholds_[rank] <= smallest_draw) {
      ++rank;
    }
    zipf_guide_[j] = rank;
  }
}

void MultiRsuWorkload::sample_into(std::uint64_t vehicle_index,
                                   common::VisitedMask& visited,
                                   std::vector<std::uint32_t>& out) const {
  // Counter-based splitmix64 stream, seeded per vehicle: no generator
  // state to expand (a Xoshiro construction costs four splitmix rounds
  // before the first draw) and each draw is one add plus two multiplies.
  // Plenty of stream quality for a synthetic workload, and the same
  // splittability: any worker generates any vehicle independently.
  std::uint64_t stream = common::mix64(config_.seed ^ vehicle_index);
  // Bounded draw by 128-bit multiply; the bias (< range / 2^64) is far
  // below anything a 20k..1M-vehicle workload can resolve.
  const std::uint64_t visit_range =
      config_.max_visits - config_.min_visits + 1;
  const std::uint64_t span_count =
      config_.min_visits +
      static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(common::splitmix64_next(stream)) *
           visit_range) >>
          64);
  const std::size_t first = out.size();
  const std::uint64_t* thresholds = cdf_thresholds_.data();
  const std::uint64_t buckets = zipf_guide_.size() - 1;
  // Exactly span_count entries get accepted, so size once and fill
  // through a raw cursor — no per-accept growth/size bookkeeping. Dedup
  // by scanning the few entries already accepted for this vehicle: at
  // itinerary sizes (a handful of visits) that beats the epoch-mask
  // lookup, and for the rare wide-itinerary config it falls back to the
  // caller's mask. Either way the accept/reject sequence — and therefore
  // every draw — is unchanged.
  out.resize(first + span_count);
  std::uint32_t* cursor = out.data() + first;
  std::uint32_t* const cursor_end = cursor + span_count;
  const bool scan_dedup = span_count <= 16;
  if (!scan_dedup) visited.begin_pass();
  while (cursor != cursor_end) {
    // Rank selection is lower_bound(popularity_cdf_, draw * 2^-53) — the
    // number of CDF entries < the uniform — done entirely on the
    // 2^53-scaled integer thresholds. The guide table jumps straight to
    // the answer's neighborhood, so the scan below runs ~one iteration
    // instead of a branch-mispredicting binary search. Same rank either
    // way.
    const std::uint64_t draw = common::splitmix64_next(stream) >> 11;
    std::uint32_t r = zipf_guide_[static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(draw) * buckets) >> 53)];
    while (thresholds[r] <= draw) ++r;
    if (scan_dedup) {
      bool seen = false;
      for (const std::uint32_t* it = out.data() + first; it != cursor; ++it) {
        seen |= (*it == r);
      }
      if (!seen) *cursor++ = r;
    } else if (visited.insert(r)) {
      *cursor++ = r;
    }
  }
  // Itineraries are at most max_visits (<= rsu_count) entries; insertion
  // sort beats the std::sort dispatch at these sizes.
  for (std::size_t i = first + 1; i < out.size(); ++i) {
    const std::uint32_t value = out[i];
    std::size_t j = i;
    for (; j > first && out[j - 1] > value; --j) out[j] = out[j - 1];
    out[j] = value;
  }
}

void MultiRsuWorkload::itinerary(std::uint64_t vehicle_index,
                                 common::VisitedMask& visited,
                                 std::vector<std::uint32_t>& out) const {
  VLM_REQUIRE(vehicle_index < config_.vehicle_count,
              "vehicle index out of range");
  VLM_REQUIRE(visited.universe_size() == config_.rsu_count,
              "visited mask must be sized to the RSU count");
  out.clear();
  sample_into(vehicle_index, visited, out);
}

void MultiRsuWorkload::itineraries(std::uint64_t begin, std::uint64_t end,
                                   common::VisitedMask& visited,
                                   common::UninitVector<std::uint32_t>& positions,
                                   std::vector<std::uint64_t>& offsets,
                                   std::vector<std::uint64_t>& counts) const {
  VLM_REQUIRE(begin <= end && end <= config_.vehicle_count,
              "vehicle range out of bounds");
  VLM_REQUIRE(visited.universe_size() == config_.rsu_count,
              "visited mask must be sized to the RSU count");
  const std::size_t n = static_cast<std::size_t>(end - begin);
  // `positions` is sized exactly (one resize, after the spans are known
  // below) rather than cleared here: clear + resize would value-init the
  // whole block every call, while resize alone only touches the growth
  // delta — and the emission loop overwrites every slot in range anyway.
  offsets.clear();
  offsets.reserve(n + 1);
  offsets.push_back(0);
  counts.assign(config_.rsu_count, 0);
  if (n == 0) {
    positions.clear();
    return;
  }

  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "encode_batch writes size_t lanes reused as uint64_t");
  const common::kernels::KernelTable& kt = common::kernels::active();
  static constexpr std::uint64_t kZeroSalt[1] = {0};
  thread_local BulkScratch scratch;

  // Stream bases: mix64(seed ^ v) for the whole block, through the
  // batch-encode kernel (salt 0, full fold mask reduce it to a plain
  // lane-parallel mix64).
  scratch.inputs.resize(n);
  scratch.bases.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.inputs[i] = config_.seed ^ (begin + i);
  }
  kt.encode_batch(scratch.inputs.data(), n, 0, kZeroSalt, 1, ~std::uint64_t{0},
                  reinterpret_cast<std::size_t*>(scratch.bases.data()));

  // Span-count draws: the first splitmix64_next of every stream,
  // mix64(base + gamma), again one kernel call for the block.
  scratch.draws.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.inputs[i] = scratch.bases[i] + kGamma;
  }
  kt.encode_batch(scratch.inputs.data(), n, 0, kZeroSalt, 1, ~std::uint64_t{0},
                  reinterpret_cast<std::size_t*>(scratch.draws.data()));

  // Visit-draw stream runs: vehicle i's draws start at base + 2*gamma
  // (the span draw consumed one step) and advance by gamma for
  // draw_slots_for(span) steps, covering the expected rejection runs
  // too. The run description (start, slot count) per vehicle is all the
  // rank kernel needs — it expands each run into a cache-resident chunk
  // internally, so the flat block-wide state array (and its DRAM round
  // trip) is gone.
  const std::uint64_t visit_range =
      config_.max_visits - config_.min_visits + 1;
  scratch.run_slots.resize(n);
  std::size_t total_slots = 0;
  std::size_t total_span = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t span_count =
        config_.min_visits +
        static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(scratch.draws[i]) * visit_range) >>
            64);
    scratch.draws[i] = span_count;  // draw consumed; slot reused
    scratch.inputs[i] = scratch.bases[i] + 2 * kGamma;
    const std::size_t slots = draw_slots_for(span_count);
    scratch.run_slots[i] = static_cast<std::uint32_t>(slots);
    total_span += span_count;
    total_slots += slots;
  }
  // Spans are known for the whole block now, so size the output once —
  // the per-vehicle loop below just advances a raw cursor instead of
  // paying a resize call per vehicle.
  positions.resize(total_span);

  // Rank selection for every pre-generated draw in one kernel call —
  // the vectorized form of sample_into's guide-table walk, fused with
  // the run expansion above.
  scratch.ranks.resize(total_slots);
  const std::uint64_t* thresholds = cdf_thresholds_.data();
  const std::uint64_t buckets = zipf_guide_.size() - 1;
  kt.zipf_rank_runs(scratch.inputs.data(), scratch.run_slots.data(), n, kGamma,
                    thresholds, zipf_guide_.data(), buckets,
                    scratch.ranks.data());

  // Accept/reject, dedup, and sort — scalar, but over pre-computed
  // ranks. The sequence below consumes draws in exactly sample_into's
  // order (the pre-generated ranks ARE its draws, in order), so accepted
  // itineraries are bit-identical; the per-RSU histogram is accumulated
  // on the same pass instead of by a later counting sweep.
  // Dedup strategy: accepting a rank is "not seen before this vehicle",
  // which any membership structure answers identically. For city-scale
  // K (≤ 64) the accepted set fits one word of seen-bits, which makes
  // the consume loop branchless (no stores at all — just mask updates)
  // and the sorted emission a countr_zero walk over the final mask; the
  // dedup scan and the insertion sort both disappear without changing
  // which draws are consumed or accepted. Larger deployments keep
  // sample_into's scan/epoch-mask pair.
  const bool word_dedup = config_.rsu_count <= 64;
  std::size_t slot_cursor = 0;
  std::size_t write_pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto span_count = static_cast<std::uint64_t>(scratch.draws[i]);
    const std::size_t slots = draw_slots_for(span_count);
    const std::uint32_t* pre = scratch.ranks.data() + slot_cursor;
    slot_cursor += slots;
    const std::size_t first = write_pos;
    write_pos += span_count;
    if (word_dedup) {
      std::uint64_t seen_bits = 0;
      std::uint64_t accepted = 0;
      std::size_t used = 0;
      while (accepted < span_count && used < slots) {
        const std::uint64_t bit = std::uint64_t{1} << pre[used++];
        accepted += static_cast<std::uint64_t>((seen_bits & bit) == 0);
        seen_bits |= bit;
      }
      if (accepted < span_count) {
        // Rejection run outlasted the pre-generated draws: continue on
        // the scalar path from the exact stream position after the last
        // consumed draw (base + (1 + used)*gamma — the span draw plus
        // `used` visit draws), so the realization is unchanged.
        std::uint64_t stream = scratch.bases[i] + (1 + used) * kGamma;
        while (accepted < span_count) {
          const std::uint64_t draw = common::splitmix64_next(stream) >> 11;
          std::uint32_t r = zipf_guide_[static_cast<std::uint64_t>(
              (static_cast<unsigned __int128>(draw) * buckets) >> 53)];
          while (thresholds[r] <= draw) ++r;
          const std::uint64_t bit = std::uint64_t{1} << r;
          accepted += static_cast<std::uint64_t>((seen_bits & bit) == 0);
          seen_bits |= bit;
        }
      }
      // Every distinct rank consumed was accepted, so the final mask IS
      // the itinerary; bits enumerate in ascending rank order for free.
      std::uint32_t* out_it = positions.data() + first;
      while (seen_bits) {
        const auto r =
            static_cast<std::uint32_t>(std::countr_zero(seen_bits));
        seen_bits &= seen_bits - 1;
        ++counts[r];
        *out_it++ = r;
      }
      offsets.push_back(write_pos);
      continue;
    }
    std::uint32_t* cursor = positions.data() + first;
    std::uint32_t* const cursor_end = cursor + span_count;
    const bool scan_dedup = span_count <= 16;
    if (!scan_dedup) visited.begin_pass();
    std::size_t used = 0;
    while (cursor != cursor_end && used < slots) {
      const std::uint32_t r = pre[used++];
      if (scan_dedup) {
        bool seen = false;
        for (const std::uint32_t* it = positions.data() + first; it != cursor;
             ++it) {
          seen |= (*it == r);
        }
        if (!seen) *cursor++ = r;
      } else if (visited.insert(r)) {
        *cursor++ = r;
      }
    }
    if (cursor != cursor_end) {
      // Same continuation as above, for the wide-deployment paths.
      std::uint64_t stream = scratch.bases[i] + (1 + used) * kGamma;
      while (cursor != cursor_end) {
        const std::uint64_t draw = common::splitmix64_next(stream) >> 11;
        std::uint32_t r = zipf_guide_[static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(draw) * buckets) >> 53)];
        while (thresholds[r] <= draw) ++r;
        if (scan_dedup) {
          bool seen = false;
          for (const std::uint32_t* it = positions.data() + first;
               it != cursor; ++it) {
            seen |= (*it == r);
          }
          if (!seen) *cursor++ = r;
        } else if (visited.insert(r)) {
          *cursor++ = r;
        }
      }
    }
    for (const std::uint32_t* it = positions.data() + first; it != cursor_end;
         ++it) {
      ++counts[*it];
    }
    // Same insertion sort as sample_into — itineraries stay ascending.
    for (std::size_t j = first + 1; j < write_pos; ++j) {
      const std::uint32_t value = positions[j];
      std::size_t p = j;
      for (; p > first && positions[p - 1] > value; --p) {
        positions[p] = positions[p - 1];
      }
      positions[p] = value;
    }
    offsets.push_back(write_pos);
  }
}

void MultiRsuWorkload::for_each_vehicle(
    const std::function<void(std::uint64_t, std::span<const std::uint32_t>)>&
        visit) {
  volumes_.assign(config_.rsu_count, 0);
  pair_counts_.assign(config_.rsu_count * config_.rsu_count, 0);

  common::VisitedMask visited(config_.rsu_count);
  std::vector<std::uint32_t> rsus;
  for (std::uint64_t v = 0; v < config_.vehicle_count; ++v) {
    itinerary(v, visited, rsus);
    // Itineraries are sorted, so rsus[i] < rsus[j] for i < j and the pair
    // counter needs no per-pair min/max.
    for (std::size_t i = 0; i < rsus.size(); ++i) {
      ++volumes_[rsus[i]];
      for (std::size_t j = i + 1; j < rsus.size(); ++j) {
        ++pair_counts_[rsus[i] * config_.rsu_count + rsus[j]];
      }
    }
    visit(v, rsus);
  }
}

std::uint64_t MultiRsuWorkload::pair_volume(std::uint32_t a,
                                            std::uint32_t b) const {
  VLM_REQUIRE(a < config_.rsu_count && b < config_.rsu_count && a != b,
              "pair volume needs two distinct registered RSUs");
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  return pair_counts_[lo * config_.rsu_count + hi];
}

}  // namespace vlm::traffic
