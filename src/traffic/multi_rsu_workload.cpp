#include "traffic/multi_rsu_workload.h"

#include <algorithm>
#include <cmath>

#include "common/hashing.h"
#include "common/require.h"

namespace vlm::traffic {

MultiRsuWorkload::MultiRsuWorkload(const MultiRsuConfig& config)
    : config_(config) {
  VLM_REQUIRE(config.rsu_count >= 2, "need at least two RSUs");
  VLM_REQUIRE(config.vehicle_count > 0, "need at least one vehicle");
  VLM_REQUIRE(config.min_visits >= 1 &&
                  config.min_visits <= config.max_visits &&
                  config.max_visits <= config.rsu_count,
              "visit range must satisfy 1 <= min <= max <= rsu_count");
  VLM_REQUIRE(config.zipf_exponent >= 0.0, "zipf exponent must be >= 0");

  popularity_cdf_.resize(config.rsu_count);
  double total = 0.0;
  for (std::size_t r = 0; r < config.rsu_count; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), config.zipf_exponent);
    popularity_cdf_[r] = total;
  }
  for (double& c : popularity_cdf_) c /= total;
}

void MultiRsuWorkload::itinerary(std::uint64_t vehicle_index,
                                 common::VisitedMask& visited,
                                 std::vector<std::uint32_t>& out) const {
  VLM_REQUIRE(vehicle_index < config_.vehicle_count,
              "vehicle index out of range");
  VLM_REQUIRE(visited.universe_size() == config_.rsu_count,
              "visited mask must be sized to the RSU count");
  common::Xoshiro256ss rng(common::mix64(config_.seed ^ vehicle_index));
  const std::uint64_t span_count =
      config_.min_visits +
      rng.uniform(config_.max_visits - config_.min_visits + 1);
  out.clear();
  visited.begin_pass();
  while (out.size() < span_count) {
    const double u = rng.uniform_double();
    const auto it = std::lower_bound(popularity_cdf_.begin(),
                                     popularity_cdf_.end(), u);
    const auto r = static_cast<std::uint32_t>(
        std::distance(popularity_cdf_.begin(), it));
    if (visited.insert(r)) out.push_back(r);
  }
  std::sort(out.begin(), out.end());
}

void MultiRsuWorkload::for_each_vehicle(
    const std::function<void(std::uint64_t, std::span<const std::uint32_t>)>&
        visit) {
  volumes_.assign(config_.rsu_count, 0);
  pair_counts_.assign(config_.rsu_count * config_.rsu_count, 0);

  common::VisitedMask visited(config_.rsu_count);
  std::vector<std::uint32_t> rsus;
  for (std::uint64_t v = 0; v < config_.vehicle_count; ++v) {
    itinerary(v, visited, rsus);
    // Itineraries are sorted, so rsus[i] < rsus[j] for i < j and the pair
    // counter needs no per-pair min/max.
    for (std::size_t i = 0; i < rsus.size(); ++i) {
      ++volumes_[rsus[i]];
      for (std::size_t j = i + 1; j < rsus.size(); ++j) {
        ++pair_counts_[rsus[i] * config_.rsu_count + rsus[j]];
      }
    }
    visit(v, rsus);
  }
}

std::uint64_t MultiRsuWorkload::pair_volume(std::uint32_t a,
                                            std::uint32_t b) const {
  VLM_REQUIRE(a < config_.rsu_count && b < config_.rsu_count && a != b,
              "pair volume needs two distinct registered RSUs");
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  return pair_counts_[lo * config_.rsu_count + hi];
}

}  // namespace vlm::traffic
