// Parameter-sweep builders for the paper's Figures 4 and 5.
//
// Section VII-B: n_x = 10,000; n_y in {n_x, 10 n_x, 50 n_x}; n_c sweeps
// [0.01 n_x, 0.5 n_x]; s in {2, 5, 10}; sizing chosen to guarantee a
// minimum privacy of 0.5. These helpers generate the workload grid so
// every bench and test names points the same way.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pair_simulation.h"

namespace vlm::traffic {

struct FigureSweepSpec {
  std::uint64_t n_x = 10'000;
  double ratio_y = 1.0;        // n_y = ratio_y * n_x
  double c_min_frac = 0.01;    // n_c lower bound as a fraction of n_x
  double c_max_frac = 0.5;
  double c_step_frac = 0.001;  // the paper's step (0.001 n_x)
};

// The workload list for one plot: one PairWorkload per n_c value.
std::vector<core::PairWorkload> build_figure_sweep(const FigureSweepSpec& spec);

}  // namespace vlm::traffic
