// Shared parser for the VLM_* environment overrides.
//
// VLM_KERNELS, VLM_DECODE, and VLM_INGEST all follow the same contract:
// an unset or empty variable keeps the caller's choice, a recognized
// value pins one, and an unrecognized value degrades loudly — a warning
// on stderr naming the accepted spellings — instead of crashing, so one
// stale export works across a heterogeneous CI fleet. This helper is the
// single implementation of that contract; the per-subsystem code only
// supplies its choice table and interprets the returned value.
#pragma once

#include <span>

namespace vlm::common {

// One recognized value of an environment-variable enum.
struct EnvEnumChoice {
  const char* name;
  int value;
};

// Reads getenv(var) and matches it against `choices` (exact string
// compare). Returns the matched choice's value; unset or empty returns
// `fallback`. An unrecognized value also returns `fallback`, warning on
// stderr once per (variable, value) pair — repeated lookups of the same
// bad export stay silent.
int parse_env_enum(const char* var, std::span<const EnvEnumChoice> choices,
                   int fallback);

// Test seam: identical matching and warn-once policy over caller-supplied
// text instead of the environment (nullptr/empty behave like unset).
int parse_env_enum_text(const char* var, const char* text,
                        std::span<const EnvEnumChoice> choices, int fallback);

}  // namespace vlm::common
