// Precondition checking for public API boundaries.
//
// Library entry points validate their arguments with VLM_REQUIRE and throw
// std::invalid_argument on violation; internal invariants use VLM_ASSERT,
// which throws std::logic_error (kept on in all build types — this library
// is a measurement tool, not a hot kernel, except where noted).
#pragma once

#include <stdexcept>
#include <string>

namespace vlm::common {

[[noreturn]] inline void throw_requirement_failure(const char* expr,
                                                   const char* file, int line,
                                                   const std::string& what) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement `" + expr + "` failed: " + what);
}

[[noreturn]] inline void throw_assertion_failure(const char* expr,
                                                 const char* file, int line) {
  throw std::logic_error(std::string(file) + ":" + std::to_string(line) +
                         ": internal invariant `" + expr + "` violated");
}

}  // namespace vlm::common

#define VLM_REQUIRE(expr, what)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::vlm::common::throw_requirement_failure(#expr, __FILE__, __LINE__,    \
                                               (what));                      \
    }                                                                        \
  } while (false)

#define VLM_ASSERT(expr)                                                     \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::vlm::common::throw_assertion_failure(#expr, __FILE__, __LINE__);     \
    }                                                                        \
  } while (false)

// Hot-kernel invariant: checked in debug builds, compiled away under
// NDEBUG. Use only where the condition is already validated at the API
// boundary (e.g. the encoder's per-array-size power-of-two guard).
#ifdef NDEBUG
#define VLM_DEBUG_ASSERT(expr) ((void)0)
#else
#define VLM_DEBUG_ASSERT(expr) VLM_ASSERT(expr)
#endif
