// Minimal leveled logger for harness binaries.
//
// Controlled by set_log_level() or the VLM_LOG environment variable
// ("debug", "info", "warn", "error", "off"). Library code logs sparingly;
// benches and examples use it to narrate long runs.
#pragma once

#include <sstream>
#include <string>

namespace vlm::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Parses a level name; unrecognized names warn once per distinct value
// on stderr (the VLM_KERNELS warn-and-fall-back convention) and map to
// kInfo.
LogLevel parse_log_level(const std::string& name);

// Emits `message` to stderr if `level` is at or above the current level.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace vlm::common
