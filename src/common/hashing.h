// Hash machinery behind the paper's masking protocol.
//
// The paper writes the bit a vehicle reports to RSU R_x as
//     b   = H(v ⊕ K_v ⊕ X[H(R_x) mod s])          (logical-bit selection)
//     b_x = b mod m_x                              (fold into R_x's array)
// where H is a hash with range [0, m_o), X is a public array of random
// salts, v the vehicle id and K_v its private key. We realize H as a
// 64-bit finalizer (splitmix64's avalanche function) reduced modulo the
// range; all of the paper's probabilistic analysis only needs H to behave
// uniformly, which these mixers do to measurable accuracy (see
// tests/common/hashing_test.cpp for chi-square checks).
// The primitives are header-inline: mix64 sits inside every per-exchange
// loop in the system (encoder slots, channel draws, vehicle identities),
// and a cross-TU call per hash measurably caps batch-ingest throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "common/require.h"

namespace vlm::common {

// Stateless avalanche mix of a 64-bit value (the finalizer of splitmix64).
// This is the paper's H before range reduction. The SIMD kernels carry a
// lane-parallel copy (kernel_impl.h mix64_inline); the fuzz suites pin
// the two bit-for-bit equal.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// SplitMix64 step: advances `state` and returns a mixed 64-bit value.
// Used for seeding and for deriving per-entity keys.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  return mix64(state);
}

// Hash a 64-bit value into [0, bound). bound must be positive. Uses the
// full mixed value modulo bound; for power-of-two bounds (the only bounds
// the schemes use) this is an exact uniform reduction of the low bits.
inline std::uint64_t hash_to_range(std::uint64_t x, std::uint64_t bound) {
  VLM_REQUIRE(bound > 0, "hash range bound must be positive");
  return mix64(x) % bound;
}

// The public salt array X of the paper: `s` random 64-bit constants shared
// by every vehicle, generated deterministically from a seed so that
// simulations are reproducible.
class SaltArray {
 public:
  SaltArray(std::size_t count, std::uint64_t seed);

  std::size_t size() const { return salts_.size(); }
  std::uint64_t operator[](std::size_t i) const;

  // Contiguous salt storage for the batch encode kernel's gather loads.
  const std::uint64_t* data() const { return salts_.data(); }

 private:
  std::vector<std::uint64_t> salts_;
};

}  // namespace vlm::common
