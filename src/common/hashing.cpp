#include "common/hashing.h"

#include "common/require.h"

namespace vlm::common {

SaltArray::SaltArray(std::size_t count, std::uint64_t seed) {
  VLM_REQUIRE(count > 0, "salt array must hold at least one salt");
  salts_.reserve(count);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < count; ++i) {
    salts_.push_back(splitmix64_next(state));
  }
}

std::uint64_t SaltArray::operator[](std::size_t i) const {
  VLM_REQUIRE(i < salts_.size(), "salt index out of range");
  return salts_[i];
}

}  // namespace vlm::common
