#include "common/hashing.h"

#include "common/require.h"

namespace vlm::common {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  return mix64(state);
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_to_range(std::uint64_t x, std::uint64_t bound) {
  VLM_REQUIRE(bound > 0, "hash range bound must be positive");
  return mix64(x) % bound;
}

SaltArray::SaltArray(std::size_t count, std::uint64_t seed) {
  VLM_REQUIRE(count > 0, "salt array must hold at least one salt");
  salts_.reserve(count);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < count; ++i) {
    salts_.push_back(splitmix64_next(state));
  }
}

std::uint64_t SaltArray::operator[](std::size_t i) const {
  VLM_REQUIRE(i < salts_.size(), "salt index out of range");
  return salts_[i];
}

}  // namespace vlm::common
