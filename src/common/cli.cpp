#include "common/cli.h"

#include <iostream>
#include <sstream>
#include <stdexcept>

#include "common/require.h"

namespace vlm::common {

ArgParser::ArgParser(std::string program_name, std::string description)
    : program_name_(std::move(program_name)),
      description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name, Kind kind,
                           std::string default_text, const std::string& help) {
  VLM_REQUIRE(!name.empty(), "flag name must be non-empty");
  VLM_REQUIRE(options_.find(name) == options_.end(),
              "duplicate flag registration: " + name);
  options_[name] = Option{kind, help, std::move(default_text)};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, bool default_value,
                         const std::string& help) {
  add_option(name, Kind::kFlag, default_value ? "true" : "false", help);
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  add_option(name, Kind::kInt, std::to_string(default_value), help);
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  std::ostringstream os;
  os << default_value;
  add_option(name, Kind::kDouble, os.str(), help);
}

void ArgParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  add_option(name, Kind::kString, default_value, help);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help_text();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown flag: --" + name + "\n" +
                                  help_text());
    }
    if (!have_value) {
      if (it->second.kind == Kind::kFlag) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          throw std::invalid_argument("flag --" + name + " requires a value");
        }
        value = argv[++i];
      }
    }
    it->second.value = value;
  }
  return true;
}

const ArgParser::Option& ArgParser::lookup(const std::string& name,
                                           Kind kind) const {
  auto it = options_.find(name);
  VLM_REQUIRE(it != options_.end(), "flag not registered: " + name);
  VLM_REQUIRE(it->second.kind == kind, "flag accessed with wrong type: " + name);
  return it->second;
}

bool ArgParser::get_flag(const std::string& name) const {
  const std::string& v = lookup(name, Kind::kFlag).value;
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::invalid_argument("flag --" + name + " expects true/false, got " + v);
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string& v = lookup(name, Kind::kInt).value;
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got " + v);
  }
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& v = lookup(name, Kind::kDouble).value;
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got " + v);
  }
}

std::string ArgParser::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).value;
}

std::string ArgParser::help_text() const {
  std::ostringstream os;
  os << program_name_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name << " (default: " << opt.value << ")\n      "
       << opt.help << "\n";
  }
  return os.str();
}

}  // namespace vlm::common
