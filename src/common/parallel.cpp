#include "common/parallel.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/require.h"

namespace vlm::common {

unsigned default_worker_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void parallel_for(std::size_t count, unsigned workers,
                  const std::function<void(std::size_t)>& body) {
  parallel_slices(count, workers,
                  [&body](unsigned, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) body(i);
                  });
}

void parallel_slices(
    std::size_t count, unsigned workers,
    const std::function<void(unsigned worker, std::size_t begin,
                             std::size_t end)>& body) {
  VLM_REQUIRE(workers >= 1, "need at least one worker");
  if (count == 0) return;
  const unsigned used = static_cast<unsigned>(
      std::min<std::size_t>(workers, count));
  if (used == 1) {
    body(0, 0, count);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto run_slice = [&](unsigned worker, std::size_t begin, std::size_t end) {
    try {
      body(worker, begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(used);
  const std::size_t chunk = (count + used - 1) / used;
  for (unsigned w = 0; w < used; ++w) {
    const std::size_t begin = static_cast<std::size_t>(w) * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back(run_slice, w, begin, end);
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vlm::common
