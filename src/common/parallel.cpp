#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/require.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vlm::common {

namespace {
// True while this thread is executing a pool task; a nested region must
// run inline instead of re-entering run() (the outer region holds the
// pool, so waiting on it would deadlock).
thread_local bool t_inside_pool_task = false;

// Pool observability. Everything hangs off fixed names so the key set is
// identical whether a run used 1 worker (pool untouched) or many — the
// handles register on the first parallel region of the process, not per
// worker. `threads` is the high-water count of threads that executed
// region work (caller included), not the instantaneous busy count, so a
// snapshot taken after the pool goes quiescent still reports how wide
// the run actually was — on a single-core host (zero helpers) it reads
// 1, never 0. Utilization is derivable as task.total / (region.total ×
// pool/threads).
struct PoolMetrics {
  obs::Counter& dispatches;
  obs::Counter& tasks;
  obs::Gauge& threads;
  obs::Histogram& queue_wait;  // time run() waits for the pool to free up
  obs::Histogram& region;      // wall time of one dispatched region
  obs::Histogram& task;        // per-task busy time inside regions
};

PoolMetrics& pool_metrics() {
  static PoolMetrics* metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::global();
    return new PoolMetrics{r.counter("pool/dispatches"),
                           r.counter("pool/tasks"),
                           r.gauge("pool/threads"),
                           obs::phase("pool/queue_wait"),
                           obs::phase("pool/region"),
                           obs::phase("pool/task")};
  }();
  return *metrics;
}
}  // namespace

unsigned default_worker_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned resolve_worker_count(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned resolved = default_worker_count();
  static const bool noted = [resolved] {
    std::fprintf(stderr,
                 "vlm: note: --workers not set; using one per core (%u)\n",
                 resolved);
    return true;
  }();
  (void)noted;
  return resolved;
}

struct WorkerPool::State {
  std::vector<std::thread> threads;

  std::mutex mutex;
  std::condition_variable work_cv;  // workers wait here for a new region
  std::condition_variable done_cv;  // run() waits here for completion
  // Region state, all guarded by `mutex`. A region is published by
  // bumping `generation`; workers drain `next` until it reaches `used`.
  std::uint64_t generation = 0;
  const std::function<void(unsigned)>* task = nullptr;
  unsigned used = 0;
  unsigned next = 0;
  unsigned completed = 0;
  std::exception_ptr first_error;
  bool stop = false;

  // Serializes top-level regions (the pool runs one region at a time).
  std::mutex run_mutex;
  std::atomic<std::uint64_t> dispatches{0};

  // Drains tasks of the current region. `lock` must hold `mutex`; the
  // lock is released around each task body.
  void drain(std::unique_lock<std::mutex>& lock) {
    while (next < used) {
      const unsigned index = next++;
      lock.unlock();
      std::exception_ptr error;
      t_inside_pool_task = true;
      {
        const obs::Span task_span(pool_metrics().task);
        try {
          (*task)(index);
        } catch (...) {
          error = std::current_exception();
        }
      }
      t_inside_pool_task = false;
      lock.lock();
      if (error && !first_error) first_error = error;
      if (++completed == used) done_cv.notify_all();
    }
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mutex);
    std::uint64_t seen = 0;
    for (;;) {
      work_cv.wait(lock, [&] {
        return stop || (generation != seen && next < used);
      });
      if (stop) return;
      seen = generation;
      drain(lock);
    }
  }
};

WorkerPool::WorkerPool() : state_(new State) {
  // The calling thread always participates in a region, so the pool only
  // needs hardware_concurrency − 1 helpers (zero on a single-core host,
  // where every region then runs inline on the caller).
  const unsigned helpers = default_worker_count() - 1;
  state_->threads.reserve(helpers);
  for (unsigned t = 0; t < helpers; ++t) {
    state_->threads.emplace_back([this, t] {
      obs::trace::set_thread_name("pool-worker-" + std::to_string(t));
      state_->worker_loop();
    });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : state_->threads) t.join();
  delete state_;
}

WorkerPool& WorkerPool::instance() {
  static WorkerPool pool;
  return pool;
}

unsigned WorkerPool::thread_count() const {
  return static_cast<unsigned>(state_->threads.size());
}

std::uint64_t WorkerPool::dispatch_count() const {
  return state_->dispatches.load(std::memory_order_relaxed);
}

void WorkerPool::run(unsigned used,
                     const std::function<void(unsigned)>& task) {
  if (used == 0) return;
  if (t_inside_pool_task) {
    // Nested region: the caller is itself a pool task, so the pool is
    // busy with the enclosing region. Run serially; keep the contract of
    // completing every task and rethrowing the first error.
    std::exception_ptr error;
    for (unsigned i = 0; i < used; ++i) {
      try {
        task(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  PoolMetrics& metrics = pool_metrics();
  const obs::MonotonicClock::TimePoint queue_start = obs::MonotonicClock::now();
  const std::lock_guard<std::mutex> run_lock(state_->run_mutex);
  const std::uint64_t queue_ns = obs::MonotonicClock::nanos_since(queue_start);
  metrics.queue_wait.observe(queue_ns);
  // queue_wait is a Stopwatch site, not a Span, so it traces explicitly.
  if (obs::trace::enabled()) {
    obs::trace::emit_complete("pool/queue_wait", queue_start, queue_ns);
  }
  const obs::Span region_span(metrics.region);
  metrics.dispatches.inc();
  metrics.tasks.add(used);
  // High-water width: a region of `used` tasks keeps at most that many
  // threads busy, and the caller always participates alongside the
  // helpers.
  const double busy = static_cast<double>(
      std::min<unsigned>(used, thread_count() + 1));
  metrics.threads.set(std::max(metrics.threads.value(), busy));
  state_->dispatches.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->task = &task;
  state_->used = used;
  state_->next = 0;
  state_->completed = 0;
  state_->first_error = nullptr;
  ++state_->generation;
  lock.unlock();
  state_->work_cv.notify_all();

  lock.lock();
  state_->drain(lock);  // the caller works too
  state_->done_cv.wait(lock, [&] { return state_->completed == state_->used; });
  state_->task = nullptr;
  const std::exception_ptr error = state_->first_error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t count, unsigned workers,
                  const std::function<void(std::size_t)>& body) {
  parallel_slices(count, workers,
                  [&body](unsigned, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) body(i);
                  });
}

void parallel_slices(
    std::size_t count, unsigned workers,
    const std::function<void(unsigned worker, std::size_t begin,
                             std::size_t end)>& body) {
  VLM_REQUIRE(workers >= 1, "need at least one worker");
  if (count == 0) return;
  // Touch the pool metric handles even on the inline path below, so a
  // 1-worker run exports the same metric key set as an N-worker run
  // (values differ; the schema must not).
  PoolMetrics& metrics = pool_metrics();
  const unsigned used = static_cast<unsigned>(
      std::min<std::size_t>(workers, count));
  if (used == 1) {
    // The inline path still ran region work on one thread — count it
    // toward the high-water width so a serial-only process reports 1,
    // not 0.
    metrics.threads.set(std::max(metrics.threads.value(), 1.0));
    body(0, 0, count);
    return;
  }

  // Same slice geometry as ever — a pure function of (count, used) — but
  // executed on the persistent pool instead of freshly spawned threads.
  const std::size_t chunk = (count + used - 1) / used;
  const unsigned slices = static_cast<unsigned>((count + chunk - 1) / chunk);
  WorkerPool::instance().run(slices, [&](unsigned w) {
    const std::size_t begin = static_cast<std::size_t>(w) * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    body(w, begin, end);
  });
}

}  // namespace vlm::common
