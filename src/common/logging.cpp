#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>

namespace vlm::common {

namespace {

std::atomic<LogLevel> g_level{[] {
  const char* env = std::getenv("VLM_LOG");
  return env ? parse_log_level(env) : LogLevel::kWarn;
}()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  // Same warn-and-fall-back convention as VLM_KERNELS / VLM_DECODE: a
  // misspelled VLM_LOG should degrade loudly, once per distinct value,
  // instead of silently running at the wrong verbosity.
  static std::mutex mutex;
  static std::set<std::string>* warned = new std::set<std::string>();
  const std::lock_guard<std::mutex> lock(mutex);
  if (warned->insert(name).second) {
    std::fprintf(stderr,
                 "vlm: warning: log level '%s' is not one of "
                 "debug|info|warn|error|off; using info\n",
                 name.c_str());
  }
  return LogLevel::kInfo;
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level() || level == LogLevel::kOff) return;
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace vlm::common
