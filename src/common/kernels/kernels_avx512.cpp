// AVX-512 kernels: hardware per-lane popcount (VPOPCNTDQ) over 512-bit
// sweeps, two accumulators for ILP, and fault-suppressing masked loads
// for sub-vector tails — so no scalar remainder loop exists at all on
// this path.
//
// Compiled with -mavx512f -mavx512vpopcntdq for this translation unit
// only; access is exclusively via the dispatch table, which selects
// this variant only when CPUID reports both features.
#include "common/kernels/kernels.h"

#if defined(VLM_KERNELS_COMPILE_AVX512) && defined(__x86_64__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "common/kernels/kernel_impl.h"

// GCC's maskz load/store intrinsics trip -Wuninitialized on their own
// internal merge operand (GCC PR105593); the lanes in question are
// zero-masked, never read.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace vlm::common::kernels {
namespace {

inline __m512i load512(const std::uint64_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline __mmask8 tail_mask(std::size_t remaining) {
  return static_cast<__mmask8>((1u << remaining) - 1u);
}

std::size_t pop_block(const std::uint64_t* w, std::size_t n) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(load512(w + i)));
    acc1 = _mm512_add_epi64(acc1, _mm512_popcnt_epi64(load512(w + i + 8)));
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(load512(w + i)));
  }
  if (i < n) {
    acc1 = _mm512_add_epi64(
        acc1, _mm512_popcnt_epi64(
                  _mm512_maskz_loadu_epi64(tail_mask(n - i), w + i)));
  }
  return static_cast<std::size_t>(
      _mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1)));
}

// Fused popcount of (a[i] | b[i]) over [0, n) — no wrap; callers align
// period boundaries so b always starts at its word 0.
std::size_t or_pop_block(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_add_epi64(
        acc0, _mm512_popcnt_epi64(
                  _mm512_or_si512(load512(a + i), load512(b + i))));
    acc1 = _mm512_add_epi64(
        acc1, _mm512_popcnt_epi64(
                  _mm512_or_si512(load512(a + i + 8), load512(b + i + 8))));
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_add_epi64(
        acc0, _mm512_popcnt_epi64(
                  _mm512_or_si512(load512(a + i), load512(b + i))));
  }
  if (i < n) {
    const __mmask8 mask = tail_mask(n - i);
    acc1 = _mm512_add_epi64(
        acc1, _mm512_popcnt_epi64(_mm512_or_si512(
                  _mm512_maskz_loadu_epi64(mask, a + i),
                  _mm512_maskz_loadu_epi64(mask, b + i))));
  }
  return static_cast<std::size_t>(
      _mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1)));
}

std::size_t popcount_avx512(const std::uint64_t* words, std::size_t n) {
  return pop_block(words, n);
}

std::size_t or_popcount_cyclic_avx512(const std::uint64_t* large,
                                      std::size_t n_large,
                                      const std::uint64_t* small,
                                      std::size_t n_small) {
  if (n_small >= n_large) return or_pop_block(large, small, n_large);
  if (n_small == 1 || n_small == 2 || n_small == 4 || n_small == 8) {
    // The whole period fits in (a divisor of) one vector: broadcast it
    // once and stream the larger array against the pattern. The masked
    // tail ORs under the same mask so inactive lanes contribute nothing.
    __m512i pat;
    if (n_small == 1) {
      pat = _mm512_set1_epi64(static_cast<long long>(small[0]));
    } else if (n_small == 2) {
      pat = _mm512_broadcast_i32x4(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(small)));
    } else if (n_small == 4) {
      pat = _mm512_broadcast_i64x4(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(small)));
    } else {
      pat = load512(small);
    }
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n_large; i += 8) {
      acc = _mm512_add_epi64(
          acc, _mm512_popcnt_epi64(_mm512_or_si512(load512(large + i), pat)));
    }
    if (i < n_large) {
      const __mmask8 mask = tail_mask(n_large - i);
      acc = _mm512_add_epi64(
          acc, _mm512_popcnt_epi64(_mm512_maskz_or_epi64(
                   mask, _mm512_maskz_loadu_epi64(mask, large + i), pat)));
    }
    return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  }
  if (n_small < 16) {
    // Odd short periods (3..15 outside the broadcast set): incompatible
    // with 8-word lanes and too short to amortize per-period block
    // calls. Power-of-two sizing never produces these; keep them
    // correct via the scalar reference.
    return detail::or_popcount_cyclic_tail(large, 0, n_large, small, n_small,
                                           0);
  }
  // General cyclic case: step a whole period at a time so the smaller
  // operand always starts at word 0 — no wrap inside a block.
  std::size_t ones = 0;
  std::size_t i = 0;
  for (; i + n_small <= n_large; i += n_small) {
    ones += or_pop_block(large + i, small, n_small);
  }
  return ones + or_pop_block(large + i, small, n_large - i);
}

void or_popcount_cyclic_batch_avx512(const std::uint64_t* anchor,
                                     std::size_t tile_begin,
                                     std::size_t tile_end,
                                     const std::uint64_t* const* partners,
                                     const std::size_t* partner_words,
                                     std::size_t n_partners,
                                     std::size_t* ones_acc) {
  detail::or_popcount_cyclic_batch_impl(
      anchor, tile_begin, tile_end, partners, partner_words, n_partners,
      ones_acc, or_pop_block, or_popcount_cyclic_avx512);
}

std::size_t merge_or_avx512(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i merged = _mm512_or_si512(load512(dst + i), load512(src + i));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i), merged);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(merged));
  }
  if (i < n) {
    const __mmask8 mask = tail_mask(n - i);
    const __m512i merged =
        _mm512_or_si512(_mm512_maskz_loadu_epi64(mask, dst + i),
                        _mm512_maskz_loadu_epi64(mask, src + i));
    _mm512_mask_storeu_epi64(dst + i, mask, merged);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(merged));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
}

std::size_t set_scatter_avx512(std::uint64_t* words, std::size_t bit_count,
                               const std::size_t* indices,
                               std::size_t n_indices) {
  detail::scatter_checked(words, bit_count, indices, n_indices);
  return pop_block(words, (bit_count + 63) / 64);
}

// 64x64 -> low 64 multiply from 32-bit partial products. vpmullq needs
// AVX-512DQ, which this TU deliberately does not require (the dispatch
// gate checks F + VPOPCNTDQ only), so the emulation keeps the feature
// set unchanged: lo*lo + ((lo*hi + hi*lo) << 32), hi*hi dropped.
inline __m512i mullo64(__m512i a, __m512i b) {
  const __m512i a_hi = _mm512_srli_epi64(a, 32);
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  const __m512i lo = _mm512_mul_epu32(a, b);
  const __m512i cross =
      _mm512_add_epi64(_mm512_mul_epu32(a, b_hi), _mm512_mul_epu32(a_hi, b));
  return _mm512_add_epi64(lo, _mm512_slli_epi64(cross, 32));
}

// Eight lanes of the splitmix64 finalizer — bit-for-bit common::mix64.
inline __m512i mix64x8(__m512i x) {
  const __m512i m1 = _mm512_set1_epi64(
      static_cast<long long>(0xBF58476D1CE4E5B9ull));
  const __m512i m2 = _mm512_set1_epi64(
      static_cast<long long>(0x94D049BB133111EBull));
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 30));
  x = mullo64(x, m1);
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 27));
  x = mullo64(x, m2);
  return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

void encode_batch_avx512(const std::uint64_t* masked_keys, std::size_t n,
                         std::uint64_t slot_input, const std::uint64_t* salts,
                         std::uint64_t slot_count, std::uint64_t fold_mask,
                         std::size_t* out) {
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t));
  if (slot_count != 1 && (slot_count & (slot_count - 1)) != 0) {
    // Non-power-of-two s: the slot modulo defeats lane-wise folding and
    // the sizing policy never produces it; scalar keeps it exact.
    detail::encode_batch_tail(masked_keys, 0, n, slot_input, salts,
                              slot_count, fold_mask, out);
    return;
  }
  const __m512i vfold = _mm512_set1_epi64(static_cast<long long>(fold_mask));
  const __m512i vsalt0 = _mm512_set1_epi64(static_cast<long long>(salts[0]));
  const __m512i vslot_input =
      _mm512_set1_epi64(static_cast<long long>(slot_input));
  const __m512i vslot_mask =
      _mm512_set1_epi64(static_cast<long long>(slot_count - 1));
  const bool single_slot = slot_count == 1;
  // s <= 8 (every sizing policy in the tree): the whole salt table fits
  // one register, so the per-lane lookup is a vpermq instead of a
  // vpgatherqq — the gather costs more than the second mix64 round.
  const bool salts_in_register = slot_count <= 8;
  __m512i vsalts = _mm512_setzero_si512();
  if (!single_slot && salts_in_register) {
    alignas(64) std::uint64_t padded[8] = {};
    for (std::uint64_t sl = 0; sl < slot_count; ++sl) padded[sl] = salts[sl];
    vsalts = _mm512_load_si512(padded);
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i key = load512(masked_keys + i);
    __m512i salt = vsalt0;
    if (!single_slot) {
      const __m512i slot = _mm512_and_si512(
          mix64x8(_mm512_xor_si512(key, vslot_input)), vslot_mask);
      salt = salts_in_register ? _mm512_permutexvar_epi64(slot, vsalts)
                               : _mm512_i64gather_epi64(slot, salts, 8);
    }
    const __m512i bits =
        _mm512_and_si512(mix64x8(_mm512_xor_si512(key, salt)), vfold);
    _mm512_storeu_si512(reinterpret_cast<void*>(out + i), bits);
  }
  if (i < n) {
    const __mmask8 mask = tail_mask(n - i);
    const __m512i key = _mm512_maskz_loadu_epi64(mask, masked_keys + i);
    __m512i salt = vsalt0;
    if (!single_slot) {
      // Masked-off lanes hold key 0 — their slot index is still in
      // range, and neither lookup reads beyond the table for them.
      const __m512i slot = _mm512_and_si512(
          mix64x8(_mm512_xor_si512(key, vslot_input)), vslot_mask);
      salt = salts_in_register
                 ? _mm512_permutexvar_epi64(slot, vsalts)
                 : _mm512_mask_i64gather_epi64(_mm512_setzero_si512(), mask,
                                               slot, salts, 8);
    }
    const __m512i bits =
        _mm512_and_si512(mix64x8(_mm512_xor_si512(key, salt)), vfold);
    _mm512_mask_storeu_epi64(out + i, mask, bits);
  }
}

void zipf_rank_batch_avx512(const std::uint64_t* states, std::size_t n,
                            const std::uint64_t* thresholds,
                            const std::uint32_t* guide, std::uint64_t buckets,
                            std::uint32_t* out) {
  if (buckets >= (std::uint64_t{1} << 32)) {
    // Bucket selection below builds (draw * buckets) >> 53 from 32x32
    // partial products; a guide table this large never occurs (it would
    // be a 2^29-RSU deployment), so correctness over speed.
    detail::zipf_rank_tail(states, 0, n, thresholds, guide, buckets, out);
    return;
  }
  const __m512i vbuckets = _mm512_set1_epi64(static_cast<long long>(buckets));
  const __m512i vone = _mm512_set1_epi64(1);
  // Two independent 8-lane blocks per iteration: the guide/threshold
  // gathers are the latency chain here, and interleaving two chains
  // keeps both gather ports busy instead of serializing on one block's
  // walk. Each block is the single-vector body below, verbatim.
  const auto rank_block = [&](__mmask8 lanes, const std::uint64_t* src,
                              std::uint32_t* dst) {
    const __m512i draw = _mm512_srli_epi64(
        mix64x8(_mm512_maskz_loadu_epi64(lanes, src)), 11);
    // bucket = (draw * buckets) >> 53 without a 128-bit product: with
    // draw = hi·2^32 + lo (hi < 2^21, buckets < 2^32, so hi·buckets and
    // lo·buckets both fit 64 bits),
    //   floor(draw·buckets / 2^53) = floor((hi·buckets + floor(lo·buckets
    //   / 2^32)) / 2^21)
    // by nested floor division — exact, not an approximation.
    const __m512i hi_prod = _mm512_mul_epu32(_mm512_srli_epi64(draw, 32),
                                             vbuckets);
    const __m512i lo_prod = _mm512_srli_epi64(_mm512_mul_epu32(draw, vbuckets),
                                              32);
    const __m512i bucket =
        _mm512_srli_epi64(_mm512_add_epi64(hi_prod, lo_prod), 21);
    // Masked-off tail lanes hold state 0 — their draw is still < 2^53,
    // so the guide index stays in range and the unmasked gather is safe.
    __m512i rank = _mm512_cvtepu32_epi64(_mm512_i64gather_epi32(
        bucket, reinterpret_cast<const int*>(guide), 4));
    // Guide-table walk, all lanes in lockstep: re-gather and bump only
    // the lanes whose threshold is still <= draw. The construction keeps
    // guide entries ~one step from the answer, so this loop almost
    // always runs a single compare round.
    __m512i thr = _mm512_mask_i64gather_epi64(
        _mm512_setzero_si512(), lanes, rank,
        reinterpret_cast<const long long*>(thresholds), 8);
    __mmask8 step = _mm512_mask_cmple_epu64_mask(lanes, thr, draw);
    while (step != 0) {
      rank = _mm512_mask_add_epi64(rank, step, rank, vone);
      thr = _mm512_mask_i64gather_epi64(
          thr, step, rank, reinterpret_cast<const long long*>(thresholds), 8);
      step = _mm512_mask_cmple_epu64_mask(step, thr, draw);
    }
    _mm512_mask_cvtepi64_storeu_epi32(dst, lanes, rank);
  };
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    rank_block(static_cast<__mmask8>(0xFF), states + i, out + i);
    rank_block(static_cast<__mmask8>(0xFF), states + i + 8, out + i + 8);
  }
  for (; i < n; i += 8) {
    const __mmask8 lanes = i + 8 <= n ? static_cast<__mmask8>(0xFF)
                                      : tail_mask(n - i);
    rank_block(lanes, states + i, out + i);
  }
}

std::size_t or_popcount_sampled_avx512(const std::uint64_t* large,
                                       std::size_t n_large,
                                       const std::uint64_t* small,
                                       std::size_t n_small,
                                       std::size_t stride) {
  return detail::or_popcount_sampled_impl(large, n_large, small, n_small,
                                          stride, or_pop_block);
}

void zipf_rank_runs_avx512(const std::uint64_t* starts,
                           const std::uint32_t* run_slots, std::size_t n_runs,
                           std::uint64_t gamma, const std::uint64_t* thresholds,
                           const std::uint32_t* guide, std::uint64_t buckets,
                           std::uint32_t* out) {
  detail::zipf_rank_runs_impl(starts, run_slots, n_runs, gamma, thresholds,
                              guide, buckets, out, zipf_rank_batch_avx512);
}

}  // namespace

const KernelTable* detail::avx512_table() {
  static const KernelTable table{Isa::kAvx512, "avx512", popcount_avx512,
                                 or_popcount_cyclic_avx512,
                                 or_popcount_cyclic_batch_avx512,
                                 merge_or_avx512, set_scatter_avx512,
                                 encode_batch_avx512, zipf_rank_batch_avx512,
                                 or_popcount_sampled_avx512,
                                 zipf_rank_runs_avx512};
  return &table;
}

}  // namespace vlm::common::kernels

#else  // !VLM_KERNELS_COMPILE_AVX512

namespace vlm::common::kernels {
const KernelTable* detail::avx512_table() { return nullptr; }
}  // namespace vlm::common::kernels

#endif
