// Runtime ISA selection: compiled-in variants ∩ CPUID features, with a
// VLM_KERNELS environment override so CI, sanitizer jobs, and A/B
// benches can pin one code path deterministically.
#include "common/kernels/kernels.h"

#include <cstdio>

#include "common/env_override.h"
#include "common/require.h"

namespace vlm::common::kernels {
namespace {

bool cpu_supports(Isa isa) {
#if defined(__x86_64__)
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
  return false;
#else
  return isa == Isa::kScalar;
#endif
}

const KernelTable* compiled_table(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &scalar_table();
    case Isa::kAvx2:
      return detail::avx2_table();
    case Isa::kAvx512:
      return detail::avx512_table();
  }
  return nullptr;
}

const KernelTable& select_active() {
  Isa chosen = Isa::kScalar;
  if (available(Isa::kAvx2)) chosen = Isa::kAvx2;
  if (available(Isa::kAvx512)) chosen = Isa::kAvx512;
  // "auto" maps to the unset sentinel: both keep the best available ISA.
  static constexpr common::EnvEnumChoice kChoices[] = {
      {"scalar", static_cast<int>(Isa::kScalar)},
      {"avx2", static_cast<int>(Isa::kAvx2)},
      {"avx512", static_cast<int>(Isa::kAvx512)},
      {"auto", -1}};
  const int parsed = common::parse_env_enum("VLM_KERNELS", kChoices, -1);
  if (parsed >= 0) {
    const Isa requested = static_cast<Isa>(parsed);
    if (available(requested)) {
      chosen = requested;
    } else {
      // Fall back instead of crashing so one exported value works
      // across a heterogeneous CI fleet.
      std::fprintf(stderr,
                   "vlm: warning: VLM_KERNELS=%s is unavailable on this host "
                   "(%s); using %s\n",
                   isa_name(requested),
                   compiled(requested) ? "CPU lacks the feature"
                                       : "variant not compiled in",
                   isa_name(chosen));
    }
  }
  return *compiled_table(chosen);
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool compiled(Isa isa) { return compiled_table(isa) != nullptr; }

bool available(Isa isa) { return compiled(isa) && cpu_supports(isa); }

std::vector<Isa> available_isas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (available(isa)) out.push_back(isa);
  }
  return out;
}

const KernelTable& table_for(Isa isa) {
  VLM_REQUIRE(available(isa), "kernel ISA is not available on this host");
  return *compiled_table(isa);
}

const KernelTable& active() {
  // Thread-safe one-time selection (magic static); every BitArray
  // operation after the first call hits a resolved reference.
  static const KernelTable& table = select_active();
  return table;
}

const char* active_name() { return active().name; }

}  // namespace vlm::common::kernels
