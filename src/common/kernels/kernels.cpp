// Runtime ISA selection: compiled-in variants ∩ CPUID features, with a
// VLM_KERNELS environment override so CI, sanitizer jobs, and A/B
// benches can pin one code path deterministically.
#include "common/kernels/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/require.h"

namespace vlm::common::kernels {
namespace {

bool cpu_supports(Isa isa) {
#if defined(__x86_64__)
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
  return false;
#else
  return isa == Isa::kScalar;
#endif
}

const KernelTable* compiled_table(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &scalar_table();
    case Isa::kAvx2:
      return detail::avx2_table();
    case Isa::kAvx512:
      return detail::avx512_table();
  }
  return nullptr;
}

bool parse_isa(const char* text, Isa& out) {
  if (std::strcmp(text, "scalar") == 0) {
    out = Isa::kScalar;
  } else if (std::strcmp(text, "avx2") == 0) {
    out = Isa::kAvx2;
  } else if (std::strcmp(text, "avx512") == 0) {
    out = Isa::kAvx512;
  } else {
    return false;
  }
  return true;
}

const KernelTable& select_active() {
  Isa chosen = Isa::kScalar;
  if (available(Isa::kAvx2)) chosen = Isa::kAvx2;
  if (available(Isa::kAvx512)) chosen = Isa::kAvx512;
  const char* env = std::getenv("VLM_KERNELS");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    Isa requested = Isa::kScalar;
    if (!parse_isa(env, requested)) {
      std::fprintf(stderr,
                   "vlm: warning: VLM_KERNELS='%s' is not one of "
                   "scalar|avx2|avx512|auto; using %s\n",
                   env, isa_name(chosen));
    } else if (!available(requested)) {
      // Fall back instead of crashing so one exported value works
      // across a heterogeneous CI fleet.
      std::fprintf(stderr,
                   "vlm: warning: VLM_KERNELS=%s is unavailable on this host "
                   "(%s); using %s\n",
                   env,
                   compiled(requested) ? "CPU lacks the feature"
                                       : "variant not compiled in",
                   isa_name(chosen));
    } else {
      chosen = requested;
    }
  }
  return *compiled_table(chosen);
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool compiled(Isa isa) { return compiled_table(isa) != nullptr; }

bool available(Isa isa) { return compiled(isa) && cpu_supports(isa); }

std::vector<Isa> available_isas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (available(isa)) out.push_back(isa);
  }
  return out;
}

const KernelTable& table_for(Isa isa) {
  VLM_REQUIRE(available(isa), "kernel ISA is not available on this host");
  return *compiled_table(isa);
}

const KernelTable& active() {
  // Thread-safe one-time selection (magic static); every BitArray
  // operation after the first call hits a resolved reference.
  static const KernelTable& table = select_active();
  return table;
}

const char* active_name() { return active().name; }

}  // namespace vlm::common::kernels
