// Portable scalar baseline: one std::popcount per word, no intrinsics.
// This is the reference implementation every SIMD variant is fuzzed
// against, and the code path VLM_KERNELS=scalar pins for sanitizers.
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/kernels/kernel_impl.h"
#include "common/kernels/kernels.h"

namespace vlm::common::kernels {
namespace {

std::size_t popcount_scalar(const std::uint64_t* words, std::size_t n) {
  return detail::popcount_tail(words, 0, n);
}

std::size_t or_popcount_cyclic_scalar(const std::uint64_t* large,
                                      std::size_t n_large,
                                      const std::uint64_t* small,
                                      std::size_t n_small) {
  if (n_small >= n_large) {
    // The cyclic index never wraps: a plain fused sweep.
    std::size_t ones = 0;
    for (std::size_t i = 0; i < n_large; ++i) {
      ones += static_cast<std::size_t>(std::popcount(large[i] | small[i]));
    }
    return ones;
  }
  return detail::or_popcount_cyclic_tail(large, 0, n_large, small, n_small, 0);
}

void or_popcount_cyclic_batch_scalar(const std::uint64_t* anchor,
                                     std::size_t tile_begin,
                                     std::size_t tile_end,
                                     const std::uint64_t* const* partners,
                                     const std::size_t* partner_words,
                                     std::size_t n_partners,
                                     std::size_t* ones_acc) {
  detail::or_popcount_cyclic_batch_impl(
      anchor, tile_begin, tile_end, partners, partner_words, n_partners,
      ones_acc,
      [](const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
        std::size_t ones = 0;
        for (std::size_t i = 0; i < n; ++i) {
          ones += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
        }
        return ones;
      },
      [](const std::uint64_t* large, std::size_t n_large,
         const std::uint64_t* small, std::size_t n_small) {
        return detail::or_popcount_cyclic_tail(large, 0, n_large, small,
                                               n_small, 0);
      });
}

std::size_t merge_or_scalar(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t n) {
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] |= src[i];
    ones += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return ones;
}

std::size_t set_scatter_scalar(std::uint64_t* words, std::size_t bit_count,
                               const std::size_t* indices,
                               std::size_t n_indices) {
  detail::scatter_checked(words, bit_count, indices, n_indices);
  return detail::popcount_tail(words, 0, (bit_count + 63) / 64);
}

void encode_batch_scalar(const std::uint64_t* masked_keys, std::size_t n,
                         std::uint64_t slot_input, const std::uint64_t* salts,
                         std::uint64_t slot_count, std::uint64_t fold_mask,
                         std::size_t* out) {
  detail::encode_batch_tail(masked_keys, 0, n, slot_input, salts, slot_count,
                            fold_mask, out);
}

void zipf_rank_batch_scalar(const std::uint64_t* states, std::size_t n,
                            const std::uint64_t* thresholds,
                            const std::uint32_t* guide, std::uint64_t buckets,
                            std::uint32_t* out) {
  detail::zipf_rank_tail(states, 0, n, thresholds, guide, buckets, out);
}

std::size_t or_popcount_sampled_scalar(const std::uint64_t* large,
                                       std::size_t n_large,
                                       const std::uint64_t* small,
                                       std::size_t n_small,
                                       std::size_t stride) {
  return detail::or_popcount_sampled_impl(
      large, n_large, small, n_small, stride,
      [](const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
        std::size_t ones = 0;
        for (std::size_t i = 0; i < n; ++i) {
          ones += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
        }
        return ones;
      });
}

void zipf_rank_runs_scalar(const std::uint64_t* starts,
                           const std::uint32_t* run_slots, std::size_t n_runs,
                           std::uint64_t gamma, const std::uint64_t* thresholds,
                           const std::uint32_t* guide, std::uint64_t buckets,
                           std::uint32_t* out) {
  detail::zipf_rank_runs_impl(starts, run_slots, n_runs, gamma, thresholds,
                              guide, buckets, out, zipf_rank_batch_scalar);
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable table{Isa::kScalar, "scalar", popcount_scalar,
                                 or_popcount_cyclic_scalar,
                                 or_popcount_cyclic_batch_scalar,
                                 merge_or_scalar, set_scatter_scalar,
                                 encode_batch_scalar, zipf_rank_batch_scalar,
                                 or_popcount_sampled_scalar,
                                 zipf_rank_runs_scalar};
  return table;
}

}  // namespace vlm::common::kernels
