// Vectorized bit-kernel layer with runtime ISA dispatch.
//
// The word-level loops that dominate both the decode pipeline
// (joint_zero_counts for Eq. 5, per pair and cache-blocked batch) and the
// sharded ingest engine (batch bit-index hashing, shard OR-merge, bulk
// set + recount) are hoisted here behind a per-ISA
// dispatch table: a portable scalar baseline that every build carries,
// plus AVX2 (nibble-LUT popcount) and AVX-512-VPOPCNTDQ variants that
// are compiled only when the toolchain supports the flags and selected
// only when the CPU reports the features. Selection happens once, at
// first use, and can be pinned with VLM_KERNELS=scalar|avx2|avx512 so
// CI and sanitizer runs control exactly which code path they cover.
//
// Every variant computes bit-identical results: the dispatch is a pure
// performance decision, asserted by the differential fuzz suite
// (tests/common/kernels_fuzz_test.cpp) and by bench_kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vlm::common::kernels {

enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

// One implementation of the hot kernels. All pointers are non-null in
// every table this module hands out.
struct KernelTable {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";

  // Total popcount of words[0..n).
  std::size_t (*popcount)(const std::uint64_t* words, std::size_t n);

  // Fused OR + popcount with cyclic indexing of the smaller operand:
  // returns popcount of (large[i] | small[i % n_small]) over
  // i in [0, n_large) without materializing the unfolded array — the
  // word-level form of the paper's Eq. 3 unfolding feeding Eq. 4's OR.
  // n_small may be smaller than, equal to, or larger than n_large; only
  // the first n_large words of a larger `small` are read.
  std::size_t (*or_popcount_cyclic)(const std::uint64_t* large,
                                    std::size_t n_large,
                                    const std::uint64_t* small,
                                    std::size_t n_small);

  // Cache-blocked batch form of or_popcount_cyclic: processes ONE tile
  // [tile_begin, tile_end) of a shared anchor (larger) array against
  // n_partners partner arrays, accumulating the fused OR+popcount of
  // each pair into ones_acc[j] (+=, so callers sweep tiles and let the
  // partials add up). Partner j is indexed cyclically with period
  // partner_words[j] starting at cyclic position tile_begin %
  // partner_words[j] — Eq. 3 unfolding is still never materialized, and
  // mixed per-pair sizes are handled by anchoring the tile on the larger
  // array. The anchor tile is streamed once per partner while it is
  // cache-hot, which is the whole point: the batch caller loads each
  // array tile from DRAM once instead of once per pair.
  //
  // Requires tile_begin < tile_end and partner_words[j] >= 1. Partials
  // are exact integer popcounts, so any tiling of [0, n_anchor) sums to
  // exactly the or_popcount_cyclic result — asserted by the differential
  // fuzz suite for every compiled ISA.
  void (*or_popcount_cyclic_batch)(const std::uint64_t* anchor,
                                   std::size_t tile_begin,
                                   std::size_t tile_end,
                                   const std::uint64_t* const* partners,
                                   const std::size_t* partner_words,
                                   std::size_t n_partners,
                                   std::size_t* ones_acc);

  // In-place dst[i] |= src[i] over [0, n); returns the popcount of the
  // merged result in the same sweep (shard-combining primitive).
  std::size_t (*merge_or)(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n);

  // Bulk ingest: validates every index against bit_count (throws
  // std::invalid_argument before touching the words on violation), sets
  // the bits with plain word writes, then recounts ones over the
  // ceil(bit_count/64) words in one vectorized sweep. Returns the new
  // ones count.
  std::size_t (*set_scatter)(std::uint64_t* words, std::size_t bit_count,
                             const std::size_t* indices,
                             std::size_t n_indices);

  // Batch bit-index encode — the vehicle-side hash of Section IV-B over
  // a whole exchange slice. For each masked key k = masked_keys[i]:
  //     slot   = mix64(k ^ slot_input) % slot_count   (skipped when
  //              slot_count == 1: salts[0] serves every lane)
  //     out[i] = mix64(k ^ salts[slot]) & fold_mask
  // with mix64 the splitmix64 finalizer, bit-for-bit common::mix64. The
  // SIMD variants vectorize the power-of-two slot_count the sizing
  // policy produces (modulo becomes an AND, salts via gather) and defer
  // other counts to the scalar reference, so every variant is exact for
  // every input — asserted by the differential fuzz suite.
  void (*encode_batch)(const std::uint64_t* masked_keys, std::size_t n,
                       std::uint64_t slot_input, const std::uint64_t* salts,
                       std::uint64_t slot_count, std::uint64_t fold_mask,
                       std::size_t* out);

  // Batched Zipf rank selection — the per-draw core of
  // MultiRsuWorkload's itinerary sampling over a whole vehicle block.
  // For each splitmix64 stream position states[i]:
  //     draw   = mix64(states[i]) >> 11                  (53-bit uniform)
  //     out[i] = lower_bound(thresholds, draw)           (first r with
  //              thresholds[r] > draw), computed as a forward scan from
  //              the guide table's bucket entry:
  //                  r = guide[(draw * buckets) >> 53]
  //                  while (thresholds[r] <= draw) ++r
  // Caller contract (what the workload's construction guarantees):
  // thresholds is non-decreasing with a final entry > 2^53 - 1, so the
  // scan always terminates in range; guide has buckets + 1 entries and
  // guide[j] lower-bounds the selected rank of every draw in bucket j;
  // thresholds stay below 2^63 (2^53-scaled values always do), which
  // keeps the SIMD variants' signed 64-bit compares exact. The vector
  // paths defer to the scalar reference when buckets >= 2^32 (their
  // bucket math uses 32x32-bit partial products); every variant is
  // bit-exact for every input — asserted by the differential fuzz suite.
  void (*zipf_rank_batch)(const std::uint64_t* states, std::size_t n,
                          const std::uint64_t* thresholds,
                          const std::uint32_t* guide, std::uint64_t buckets,
                          std::uint32_t* out);

  // Strided-sample fused OR + popcount — the cheap union estimator the
  // pruned decode runs in front of the exact sweep. Partitions the
  // larger array into 8-word blocks and computes the fused OR+popcount
  // (with the same cyclic indexing of the smaller operand as
  // or_popcount_cyclic) over every stride-th block: block indices
  // 0, stride, 2*stride, .... Returns the ones count over the sampled
  // words only; sampled_word_count(n_large, stride) gives how many words
  // that is. Requires stride >= 1; stride == 1 visits every block and
  // equals or_popcount_cyclic exactly — asserted, along with
  // scalar/SIMD bit-identity at every stride, by the differential fuzz
  // suite.
  std::size_t (*or_popcount_sampled)(const std::uint64_t* large,
                                     std::size_t n_large,
                                     const std::uint64_t* small,
                                     std::size_t n_small, std::size_t stride);

  // Run-expanded form of zipf_rank_batch — fuses the continuation-state
  // fill into the rank kernel so callers never materialize the full
  // state array. Run i contributes run_slots[i] consecutive splitmix64
  // stream positions starts[i] + k * gamma for k in [0, run_slots[i]);
  // ranks are written densely to out in run order, exactly as if the
  // caller had expanded all states and made one zipf_rank_batch call.
  // Implementations expand runs into a cache-resident chunk and feed the
  // same per-ISA rank core, so every variant is bit-identical to the
  // expanded call — asserted by the differential fuzz suite.
  void (*zipf_rank_runs)(const std::uint64_t* starts,
                         const std::uint32_t* run_slots, std::size_t n_runs,
                         std::uint64_t gamma, const std::uint64_t* thresholds,
                         const std::uint32_t* guide, std::uint64_t buckets,
                         std::uint32_t* out);
};

// Number of words or_popcount_sampled reads from an n_words array at the
// given stride: 8 per sampled block, with the final block clipped to the
// array end. This is the denominator for any zero/one fraction taken
// over the sampled popcount.
inline std::size_t sampled_word_count(std::size_t n_words,
                                      std::size_t stride) {
  if (n_words == 0) return 0;
  const std::size_t blocks = (n_words + 7) / 8;
  const std::size_t sampled = (blocks + stride - 1) / stride;
  std::size_t words = sampled * 8;
  // The clipped final block is only in the sample when its index lands
  // on the stride grid.
  if ((sampled - 1) * stride == blocks - 1 && n_words % 8 != 0) {
    words -= 8 - n_words % 8;
  }
  return words;
}

// Human-readable ISA name ("scalar", "avx2", "avx512").
const char* isa_name(Isa isa);

// The portable baseline; always present, the reference for every
// differential test.
const KernelTable& scalar_table();

// Whether the variant was compiled into this binary (toolchain had the
// flags and the target is x86-64).
bool compiled(Isa isa);

// Whether the variant is usable here: compiled in AND the CPU reports
// the feature bits. Scalar is always available.
bool available(Isa isa);

// Every available variant, scalar first — what the fuzz suite iterates.
std::vector<Isa> available_isas();

// Table for a specific available ISA; throws std::invalid_argument if
// `available(isa)` is false.
const KernelTable& table_for(Isa isa);

// The table every BitArray operation routes through. Selected once at
// first use: the best available ISA, unless the VLM_KERNELS environment
// variable pins one ("scalar", "avx2", "avx512"; "auto"/empty keep the
// default). Pinning an ISA the host lacks falls back to the best
// available one with a warning on stderr rather than crashing, so a CI
// matrix can export one value across heterogeneous runners.
const KernelTable& active();

// isa_name(active().isa) — for stats lines and bench JSON.
const char* active_name();

namespace detail {
// Variant factories. Each TU returns nullptr when its ISA was not
// compiled in; kernels.cpp combines this with CPUID at selection time.
const KernelTable* avx2_table();
const KernelTable* avx512_table();
}  // namespace detail

}  // namespace vlm::common::kernels
