// Shared pieces of the kernel variants (internal header).
//
// The scatter half of set_scatter is inherently scalar (random single-bit
// writes); only the recount sweep differs per ISA. Likewise every SIMD
// variant needs a scalar tail for sub-vector remainders and a scalar
// cyclic fallback for wrap periods that do not align to vector lanes.
// Keeping these here guarantees all variants share identical semantics.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/require.h"

namespace vlm::common::kernels::detail {

// Validate-then-scatter: no word is touched unless every index is in
// range, so a rejected batch leaves the array (and its cached ones
// count) consistent.
inline void scatter_checked(std::uint64_t* words, std::size_t bit_count,
                            const std::size_t* indices,
                            std::size_t n_indices) {
  for (std::size_t j = 0; j < n_indices; ++j) {
    VLM_REQUIRE(indices[j] < bit_count, "bit index out of range");
  }
  for (std::size_t j = 0; j < n_indices; ++j) {
    words[indices[j] / 64] |= std::uint64_t{1} << (indices[j] % 64);
  }
}

inline std::size_t popcount_tail(const std::uint64_t* words, std::size_t begin,
                                 std::size_t end) {
  std::size_t ones = 0;
  for (std::size_t i = begin; i < end; ++i) {
    ones += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return ones;
}

// Scalar fused OR + popcount with full cyclic generality — the reference
// the vector paths defer to for lane-incompatible wrap periods and
// sub-vector tails. `small_offset` is the cyclic position of large[begin].
inline std::size_t or_popcount_cyclic_tail(const std::uint64_t* large,
                                           std::size_t begin, std::size_t end,
                                           const std::uint64_t* small,
                                           std::size_t n_small,
                                           std::size_t small_offset) {
  std::size_t ones = 0;
  std::size_t si = small_offset;
  for (std::size_t i = begin; i < end; ++i) {
    ones += static_cast<std::size_t>(std::popcount(large[i] | small[si]));
    if (++si == n_small) si = 0;
  }
  return ones;
}

}  // namespace vlm::common::kernels::detail
