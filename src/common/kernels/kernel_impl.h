// Shared pieces of the kernel variants (internal header).
//
// The scatter half of set_scatter is inherently scalar (random single-bit
// writes); only the recount sweep differs per ISA. Likewise every SIMD
// variant needs a scalar tail for sub-vector remainders and a scalar
// cyclic fallback for wrap periods that do not align to vector lanes.
// Keeping these here guarantees all variants share identical semantics.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/require.h"

namespace vlm::common::kernels::detail {

// splitmix64 finalizer, bit-for-bit common::mix64 (asserted by the
// encoder unit tests). Re-stated here as an inline so the kernel TUs —
// which must stay self-contained and call-free in their inner loops —
// do not depend on the out-of-line common/hashing.cpp definition.
inline std::uint64_t mix64_inline(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// Scalar reference for the batch bit-index encode over [begin, end) —
// the exact semantics every vector variant must reproduce, and the
// fallback they defer to for non-power-of-two slot counts (the modulo
// defeats lane-wise folding; power-of-two sizing never produces them).
inline void encode_batch_tail(const std::uint64_t* masked_keys,
                              std::size_t begin, std::size_t end,
                              std::uint64_t slot_input,
                              const std::uint64_t* salts,
                              std::uint64_t slot_count,
                              std::uint64_t fold_mask, std::size_t* out) {
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint64_t key = masked_keys[i];
    const std::uint64_t salt =
        slot_count == 1 ? salts[0]
                        : salts[mix64_inline(key ^ slot_input) % slot_count];
    out[i] = static_cast<std::size_t>(mix64_inline(key ^ salt) & fold_mask);
  }
}

// Scalar reference for the batched Zipf rank selection over [begin, end)
// — the exact semantics every vector variant must reproduce. Each state
// is a post-increment splitmix64 stream position; the draw is its mix64
// output truncated to 53 bits, the rank is lower_bound over the
// 2^53-scaled CDF thresholds, started from the guide table's bucket
// entry (see MultiRsuWorkload for the construction; the kernel only
// relies on the documented contract in kernels.h).
inline void zipf_rank_tail(const std::uint64_t* states, std::size_t begin,
                           std::size_t end, const std::uint64_t* thresholds,
                           const std::uint32_t* guide, std::uint64_t buckets,
                           std::uint32_t* out) {
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint64_t draw = mix64_inline(states[i]) >> 11;
    std::uint32_t r = guide[static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(draw) * buckets) >> 53)];
    while (thresholds[r] <= draw) ++r;
    out[i] = r;
  }
}

// Validate-then-scatter: no word is touched unless every index is in
// range, so a rejected batch leaves the array (and its cached ones
// count) consistent.
inline void scatter_checked(std::uint64_t* words, std::size_t bit_count,
                            const std::size_t* indices,
                            std::size_t n_indices) {
  for (std::size_t j = 0; j < n_indices; ++j) {
    VLM_REQUIRE(indices[j] < bit_count, "bit index out of range");
  }
  for (std::size_t j = 0; j < n_indices; ++j) {
    words[indices[j] / 64] |= std::uint64_t{1} << (indices[j] % 64);
  }
}

inline std::size_t popcount_tail(const std::uint64_t* words, std::size_t begin,
                                 std::size_t end) {
  std::size_t ones = 0;
  for (std::size_t i = begin; i < end; ++i) {
    ones += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return ones;
}

// Scalar fused OR + popcount with full cyclic generality — the reference
// the vector paths defer to for lane-incompatible wrap periods and
// sub-vector tails. `small_offset` is the cyclic position of large[begin].
inline std::size_t or_popcount_cyclic_tail(const std::uint64_t* large,
                                           std::size_t begin, std::size_t end,
                                           const std::uint64_t* small,
                                           std::size_t n_small,
                                           std::size_t small_offset) {
  std::size_t ones = 0;
  std::size_t si = small_offset;
  for (std::size_t i = begin; i < end; ++i) {
    ones += static_cast<std::size_t>(std::popcount(large[i] | small[si]));
    if (++si == n_small) si = 0;
  }
  return ones;
}

// Shared structure of the batch kernel: split each partner's view of the
// anchor tile into the fastest applicable sub-kernel. `or_block(a, b, n)`
// must be the ISA's no-wrap fused OR+popcount of a[i] | b[i] over [0, n);
// `or_cyclic(large, n_large, small, n_small)` its full cyclic entry
// starting at the small array's word 0. With power-of-two array sizes and
// a power-of-two tile size, every partner lands in one of the two fast
// cases: either the tile reads a contiguous run of the partner (period >=
// tile, case 1) or the tile starts exactly on a period boundary (period
// divides the tile start, case 2). The offset-wrap reference below only
// catches non-power-of-two sizes from tests.
template <typename OrBlockFn, typename OrCyclicFn>
inline void or_popcount_cyclic_batch_impl(
    const std::uint64_t* anchor, std::size_t tile_begin, std::size_t tile_end,
    const std::uint64_t* const* partners, const std::size_t* partner_words,
    std::size_t n_partners, std::size_t* ones_acc, const OrBlockFn& or_block,
    const OrCyclicFn& or_cyclic) {
  const std::size_t len = tile_end - tile_begin;
  for (std::size_t j = 0; j < n_partners; ++j) {
    const std::uint64_t* small = partners[j];
    const std::size_t n_small = partner_words[j];
    const std::size_t offset = tile_begin % n_small;
    std::size_t ones;
    if (offset + len <= n_small) {
      ones = or_block(anchor + tile_begin, small + offset, len);
    } else if (offset == 0) {
      ones = or_cyclic(anchor + tile_begin, len, small, n_small);
    } else {
      ones = or_popcount_cyclic_tail(anchor, tile_begin, tile_end, small,
                                     n_small, offset);
    }
    ones_acc[j] += ones;
  }
}

// Shared structure of the strided-sample union estimator: visit every
// stride-th 8-word block of the larger array and apply the fastest
// applicable sub-kernel, mirroring the batch impl's case split.
// `or_block(a, b, n)` must be the ISA's no-wrap fused OR+popcount. With
// power-of-two array sizes every sampled block starts on an 8-word
// boundary of the partner period, so the wrap reference below only
// catches non-power-of-two sizes from tests.
template <typename OrBlockFn>
inline std::size_t or_popcount_sampled_impl(
    const std::uint64_t* large, std::size_t n_large,
    const std::uint64_t* small, std::size_t n_small, std::size_t stride,
    const OrBlockFn& or_block) {
  VLM_REQUIRE(stride >= 1, "sample stride must be >= 1");
  std::size_t ones = 0;
  const std::size_t blocks = (n_large + 7) / 8;
  for (std::size_t j = 0; j < blocks; j += stride) {
    const std::size_t begin = j * 8;
    const std::size_t len = n_large - begin < 8 ? n_large - begin : 8;
    const std::size_t offset = begin % n_small;
    if (offset + len <= n_small) {
      ones += or_block(large + begin, small + offset, len);
    } else {
      ones += or_popcount_cyclic_tail(large, begin, begin + len, small,
                                      n_small, offset);
    }
  }
  return ones;
}

// Shared structure of the run-expanded Zipf rank kernel: expand runs of
// consecutive splitmix64 stream positions into a cache-resident chunk
// and flush it through the ISA's batch rank core whenever it fills. The
// chunk keeps the expanded states L1-resident, so the fused form does
// the same rank work as zipf_rank_batch without the caller's
// total-slots state array ever round-tripping through DRAM.
template <typename RankBatchFn>
inline void zipf_rank_runs_impl(const std::uint64_t* starts,
                                const std::uint32_t* run_slots,
                                std::size_t n_runs, std::uint64_t gamma,
                                const std::uint64_t* thresholds,
                                const std::uint32_t* guide,
                                std::uint64_t buckets, std::uint32_t* out,
                                const RankBatchFn& rank_batch) {
  constexpr std::size_t kChunk = 1024;
  std::uint64_t chunk[kChunk];
  std::size_t filled = 0;
  for (std::size_t i = 0; i < n_runs; ++i) {
    std::uint64_t state = starts[i];
    std::size_t slots = run_slots[i];
    while (slots > 0) {
      if (filled == kChunk) {
        rank_batch(chunk, kChunk, thresholds, guide, buckets, out);
        out += kChunk;
        filled = 0;
      }
      const std::size_t room = kChunk - filled;
      const std::size_t take = slots < room ? slots : room;
      for (std::size_t k = 0; k < take; ++k) {
        chunk[filled + k] = state;
        state += gamma;
      }
      filled += take;
      slots -= take;
    }
  }
  if (filled > 0) rank_batch(chunk, filled, thresholds, guide, buckets, out);
}

}  // namespace vlm::common::kernels::detail
