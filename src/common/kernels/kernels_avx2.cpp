// AVX2 kernels: 256-bit sweeps with the nibble-LUT (Mula) popcount —
// vpshufb over a 16-entry bit-count table for both nibbles of every
// byte, accumulated bytewise and folded into 64-bit lanes with vpsadbw.
// Four vectors of byte counts (max 8 per byte, 32 total) are summed
// before each fold, keeping the SAD off the critical path.
//
// Compiled with -mavx2 for this translation unit only; nothing here is
// inlined elsewhere (access is exclusively via the dispatch table), so
// the rest of the binary stays baseline x86-64.
#include "common/kernels/kernels.h"

#if defined(VLM_KERNELS_COMPILE_AVX2) && defined(__x86_64__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "common/kernels/kernel_impl.h"

namespace vlm::common::kernels {
namespace {

inline __m256i load256(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

// Per-byte popcount of a 256-bit vector (values 0..8).
inline __m256i byte_counts(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline __m256i fold64(__m256i counts) {
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline std::size_t hsum(__m256i acc) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

std::size_t pop_block(const std::uint64_t* w, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i c = byte_counts(load256(w + i));
    c = _mm256_add_epi8(c, byte_counts(load256(w + i + 4)));
    c = _mm256_add_epi8(c, byte_counts(load256(w + i + 8)));
    c = _mm256_add_epi8(c, byte_counts(load256(w + i + 12)));
    acc = _mm256_add_epi64(acc, fold64(c));
  }
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc, fold64(byte_counts(load256(w + i))));
  }
  return hsum(acc) + detail::popcount_tail(w, i, n);
}

// Fused popcount of (a[i] | b[i]) over [0, n) — no wrap; callers align
// period boundaries so b always starts at its word 0.
std::size_t or_pop_block(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i c = byte_counts(_mm256_or_si256(load256(a + i), load256(b + i)));
    c = _mm256_add_epi8(
        c, byte_counts(_mm256_or_si256(load256(a + i + 4), load256(b + i + 4))));
    c = _mm256_add_epi8(
        c, byte_counts(_mm256_or_si256(load256(a + i + 8), load256(b + i + 8))));
    c = _mm256_add_epi8(c, byte_counts(_mm256_or_si256(load256(a + i + 12),
                                                       load256(b + i + 12))));
    acc = _mm256_add_epi64(acc, fold64(c));
  }
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, fold64(byte_counts(_mm256_or_si256(load256(a + i), load256(b + i)))));
  }
  std::size_t ones = hsum(acc);
  for (; i < n; ++i) {
    ones += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  }
  return ones;
}

std::size_t popcount_avx2(const std::uint64_t* words, std::size_t n) {
  return pop_block(words, n);
}

std::size_t or_popcount_cyclic_avx2(const std::uint64_t* large,
                                    std::size_t n_large,
                                    const std::uint64_t* small,
                                    std::size_t n_small) {
  if (n_small >= n_large) return or_pop_block(large, small, n_large);
  if (n_small == 1 || n_small == 2 || n_small == 4) {
    // The whole period fits in (a divisor of) one vector: broadcast it
    // once and stream the larger array against the pattern.
    __m256i pat;
    if (n_small == 1) {
      pat = _mm256_set1_epi64x(static_cast<long long>(small[0]));
    } else if (n_small == 2) {
      pat = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(small)));
    } else {
      pat = load256(small);
    }
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n_large; i += 4) {
      acc = _mm256_add_epi64(
          acc, fold64(byte_counts(_mm256_or_si256(load256(large + i), pat))));
    }
    return hsum(acc) + detail::or_popcount_cyclic_tail(large, i, n_large, small,
                                                       n_small, i % n_small);
  }
  if (n_small < 8) {
    // 3, 5, 6, 7: wrap period incompatible with 4-word lanes and too
    // short to amortize per-period block calls. Power-of-two sizing
    // never produces these; keep them correct via the scalar reference.
    return detail::or_popcount_cyclic_tail(large, 0, n_large, small, n_small,
                                           0);
  }
  // General cyclic case: step a whole period at a time so the smaller
  // operand always starts at word 0 — no wrap inside a block.
  std::size_t ones = 0;
  std::size_t i = 0;
  for (; i + n_small <= n_large; i += n_small) {
    ones += or_pop_block(large + i, small, n_small);
  }
  return ones + or_pop_block(large + i, small, n_large - i);
}

void or_popcount_cyclic_batch_avx2(const std::uint64_t* anchor,
                                   std::size_t tile_begin,
                                   std::size_t tile_end,
                                   const std::uint64_t* const* partners,
                                   const std::size_t* partner_words,
                                   std::size_t n_partners,
                                   std::size_t* ones_acc) {
  detail::or_popcount_cyclic_batch_impl(anchor, tile_begin, tile_end, partners,
                                        partner_words, n_partners, ones_acc,
                                        or_pop_block, or_popcount_cyclic_avx2);
}

std::size_t merge_or_avx2(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i merged = _mm256_or_si256(load256(dst + i), load256(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), merged);
    acc = _mm256_add_epi64(acc, fold64(byte_counts(merged)));
  }
  std::size_t ones = hsum(acc);
  for (; i < n; ++i) {
    dst[i] |= src[i];
    ones += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return ones;
}

std::size_t set_scatter_avx2(std::uint64_t* words, std::size_t bit_count,
                             const std::size_t* indices,
                             std::size_t n_indices) {
  detail::scatter_checked(words, bit_count, indices, n_indices);
  return pop_block(words, (bit_count + 63) / 64);
}

// 64x64 -> low 64 multiply. AVX2 has no vpmullq, so build it from 32-bit
// partial products: lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
// The hi*hi term only feeds bits >= 64 and is dropped.
inline __m256i mullo64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// Four lanes of the splitmix64 finalizer — bit-for-bit common::mix64.
inline __m256i mix64x4(__m256i x) {
  const __m256i m1 = _mm256_set1_epi64x(
      static_cast<long long>(0xBF58476D1CE4E5B9ull));
  const __m256i m2 = _mm256_set1_epi64x(
      static_cast<long long>(0x94D049BB133111EBull));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = mullo64(x, m1);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = mullo64(x, m2);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

void encode_batch_avx2(const std::uint64_t* masked_keys, std::size_t n,
                       std::uint64_t slot_input, const std::uint64_t* salts,
                       std::uint64_t slot_count, std::uint64_t fold_mask,
                       std::size_t* out) {
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t));
  if (slot_count != 1 && (slot_count & (slot_count - 1)) != 0) {
    // Non-power-of-two s: the slot modulo defeats lane-wise folding and
    // the sizing policy never produces it; scalar keeps it exact.
    detail::encode_batch_tail(masked_keys, 0, n, slot_input, salts,
                              slot_count, fold_mask, out);
    return;
  }
  const __m256i vfold = _mm256_set1_epi64x(static_cast<long long>(fold_mask));
  std::size_t i = 0;
  if (slot_count == 1) {
    const __m256i vsalt =
        _mm256_set1_epi64x(static_cast<long long>(salts[0]));
    for (; i + 4 <= n; i += 4) {
      const __m256i key = load256(masked_keys + i);
      const __m256i bits = _mm256_and_si256(
          mix64x4(_mm256_xor_si256(key, vsalt)), vfold);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bits);
    }
  } else {
    const __m256i vslot_input =
        _mm256_set1_epi64x(static_cast<long long>(slot_input));
    const __m256i vslot_mask =
        _mm256_set1_epi64x(static_cast<long long>(slot_count - 1));
    for (; i + 4 <= n; i += 4) {
      const __m256i key = load256(masked_keys + i);
      const __m256i slot = _mm256_and_si256(
          mix64x4(_mm256_xor_si256(key, vslot_input)), vslot_mask);
      const __m256i salt = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(salts), slot, 8);
      const __m256i bits = _mm256_and_si256(
          mix64x4(_mm256_xor_si256(key, salt)), vfold);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bits);
    }
  }
  detail::encode_batch_tail(masked_keys, i, n, slot_input, salts, slot_count,
                            fold_mask, out);
}

void zipf_rank_batch_avx2(const std::uint64_t* states, std::size_t n,
                          const std::uint64_t* thresholds,
                          const std::uint32_t* guide, std::uint64_t buckets,
                          std::uint32_t* out) {
  if (buckets >= (std::uint64_t{1} << 32)) {
    // Bucket selection below builds (draw * buckets) >> 53 from 32x32
    // partial products; a guide table this large never occurs.
    detail::zipf_rank_tail(states, 0, n, thresholds, guide, buckets, out);
    return;
  }
  const __m256i vbuckets = _mm256_set1_epi64x(static_cast<long long>(buckets));
  const __m256i vone = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i draw = _mm256_srli_epi64(mix64x4(load256(states + i)), 11);
    // bucket = (draw * buckets) >> 53 from 32x32 partial products: with
    // draw = hi·2^32 + lo (hi < 2^21), floor(draw·buckets / 2^53) =
    // floor((hi·buckets + floor(lo·buckets / 2^32)) / 2^21) — exact by
    // nested floor division, both products fit 64 bits.
    const __m256i hi_prod = _mm256_mul_epu32(_mm256_srli_epi64(draw, 32),
                                             vbuckets);
    const __m256i lo_prod = _mm256_srli_epi64(_mm256_mul_epu32(draw, vbuckets),
                                              32);
    const __m256i bucket =
        _mm256_srli_epi64(_mm256_add_epi64(hi_prod, lo_prod), 21);
    __m256i rank = _mm256_cvtepu32_epi64(_mm256_i64gather_epi32(
        reinterpret_cast<const int*>(guide), bucket, 4));
    __m256i thr = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(thresholds), rank, 8);
    // Guide-table walk in lockstep. Thresholds are < 2^63 (contract) and
    // draws < 2^53, so the signed cmpgt is an exact unsigned compare. A
    // lane that reaches thr > draw keeps failing the step test forever
    // (thr and draw stop changing), so no separate active mask is
    // needed.
    for (;;) {
      const __m256i done = _mm256_cmpgt_epi64(thr, draw);
      if (_mm256_movemask_epi8(done) == -1) break;
      const __m256i stepm = _mm256_xor_si256(done, _mm256_set1_epi64x(-1));
      rank = _mm256_add_epi64(rank, _mm256_and_si256(stepm, vone));
      thr = _mm256_mask_i64gather_epi64(
          thr, reinterpret_cast<const long long*>(thresholds), rank, stepm, 8);
    }
    // Ranks are < 2^32: keep the low dword of each lane and store four.
    const __m256i packed = _mm256_permutevar8x32_epi32(
        rank, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(packed));
  }
  detail::zipf_rank_tail(states, i, n, thresholds, guide, buckets, out);
}

std::size_t or_popcount_sampled_avx2(const std::uint64_t* large,
                                     std::size_t n_large,
                                     const std::uint64_t* small,
                                     std::size_t n_small, std::size_t stride) {
  return detail::or_popcount_sampled_impl(large, n_large, small, n_small,
                                          stride, or_pop_block);
}

void zipf_rank_runs_avx2(const std::uint64_t* starts,
                         const std::uint32_t* run_slots, std::size_t n_runs,
                         std::uint64_t gamma, const std::uint64_t* thresholds,
                         const std::uint32_t* guide, std::uint64_t buckets,
                         std::uint32_t* out) {
  detail::zipf_rank_runs_impl(starts, run_slots, n_runs, gamma, thresholds,
                              guide, buckets, out, zipf_rank_batch_avx2);
}

}  // namespace

const KernelTable* detail::avx2_table() {
  static const KernelTable table{Isa::kAvx2, "avx2", popcount_avx2,
                                 or_popcount_cyclic_avx2,
                                 or_popcount_cyclic_batch_avx2, merge_or_avx2,
                                 set_scatter_avx2, encode_batch_avx2,
                                 zipf_rank_batch_avx2,
                                 or_popcount_sampled_avx2,
                                 zipf_rank_runs_avx2};
  return &table;
}

}  // namespace vlm::common::kernels

#else  // !VLM_KERNELS_COMPILE_AVX2

namespace vlm::common::kernels {
const KernelTable* detail::avx2_table() { return nullptr; }
}  // namespace vlm::common::kernels

#endif
