// Tiny command-line flag parser for bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Every
// binary registers its flags with defaults and help text; `--help` prints
// them and exits. Unknown flags are an error so typos in sweep scripts
// fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vlm::common {

class ArgParser {
 public:
  ArgParser(std::string program_name, std::string description);

  // Registration (call before parse()).
  void add_flag(const std::string& name, bool default_value,
                const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  // Parses argv. Returns false if `--help` was requested (help text already
  // printed); throws std::invalid_argument on malformed input.
  bool parse(int argc, const char* const* argv);

  bool get_flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;

  std::string help_text() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // textual; typed getters convert
  };

  const Option& lookup(const std::string& name, Kind kind) const;
  void add_option(const std::string& name, Kind kind, std::string default_text,
                  const std::string& help);

  std::string program_name_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace vlm::common
