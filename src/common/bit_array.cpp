#include "common/bit_array.h"

#include <algorithm>
#include <bit>

#include "common/kernels/kernels.h"
#include "common/parallel.h"
#include "common/require.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vlm::common {

BitArray::BitArray(std::size_t bit_count)
    : bit_count_(bit_count), words_(word_count_for(bit_count), 0) {
  VLM_REQUIRE(bit_count > 0, "bit array must have at least one bit");
}

void BitArray::set(std::size_t index) {
  VLM_REQUIRE(index < bit_count_, "bit index out of range");
  std::uint64_t& word = words_[index / kWordBits];
  const std::uint64_t mask = std::uint64_t{1} << (index % kWordBits);
  ones_ += static_cast<std::size_t>((word & mask) == 0);
  word |= mask;
}

bool BitArray::test(std::size_t index) const {
  VLM_REQUIRE(index < bit_count_, "bit index out of range");
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1u;
}

void BitArray::reset() {
  for (auto& w : words_) w = 0;
  ones_ = 0;
  ones_stale_ = false;
}

std::size_t BitArray::count_ones() const {
  if (ones_stale_) {
    ones_ = kernels::active().popcount(words_.data(), words_.size());
    ones_stale_ = false;
  }
  return ones_;
}

double BitArray::zero_fraction() const {
  VLM_REQUIRE(bit_count_ > 0, "zero_fraction of an empty array is undefined");
  return static_cast<double>(count_zeros()) / static_cast<double>(bit_count_);
}

BitArray BitArray::unfolded(std::size_t target_size) const {
  VLM_REQUIRE(bit_count_ > 0, "cannot unfold an empty array");
  VLM_REQUIRE(target_size >= bit_count_ && target_size % bit_count_ == 0,
              "unfold target must be a positive multiple of the array size");
  BitArray out(target_size);
  if (bit_count_ % kWordBits == 0) {
    // Word-aligned source: every output word is a whole source word.
    const std::size_t src_words = words_.size();
    for (std::size_t w = 0; w < out.words_.size(); ++w) {
      out.words_[w] = words_[w % src_words];
    }
  } else {
    // Non-word-aligned source (sub-64-bit arrays from very light RSUs,
    // or odd sizes in tests): assemble each output word from source
    // fragments read with word-level shifts — a fragment is bounded by
    // the end of the output word, the end of the source, or the end of
    // the array, so this is O(words_out · max(1, 64/size)) instead of
    // the former one-bit-at-a-time set/test loop.
    auto read_bits = [&](std::size_t pos, std::size_t len) {
      const std::size_t w = pos / kWordBits;
      const std::size_t off = pos % kWordBits;
      std::uint64_t bits = words_[w] >> off;
      if (off + len > kWordBits) {
        bits |= words_[w + 1] << (kWordBits - off);
      }
      if (len < kWordBits) bits &= (std::uint64_t{1} << len) - 1;
      return bits;
    };
    std::size_t out_bit = 0;
    std::size_t src_pos = 0;
    while (out_bit < target_size) {
      const std::size_t len =
          std::min({kWordBits - out_bit % kWordBits, bit_count_ - src_pos,
                    target_size - out_bit});
      out.words_[out_bit / kWordBits] |= read_bits(src_pos, len)
                                         << (out_bit % kWordBits);
      out_bit += len;
      src_pos += len;
      if (src_pos == bit_count_) src_pos = 0;
    }
  }
  // Unfolding repeats the pattern exactly target/size times, so the
  // ones count scales with the ratio — no recount sweep needed (beyond
  // flushing a pending set_bulk recount on the source).
  out.ones_ = count_ones() * (target_size / bit_count_);
  return out;
}

BitArray& BitArray::merge_or(const BitArray& other) {
  VLM_REQUIRE(bit_count_ == other.bit_count_,
              "bitwise OR requires equal-sized arrays (unfold first)");
  ones_ = kernels::active().merge_or(words_.data(), other.words_.data(),
                                     words_.size());
  ones_stale_ = false;
  return *this;
}

void BitArray::set_bulk(std::span<const std::size_t> indices) {
  if (indices.empty()) return;
  if (indices.size() < words_.size()) {
    // Small batch relative to the array — the common case under the
    // sub-slice pipeline schedule, which hands each bucket many small
    // chunks per period. Just write the bits and defer the recount to
    // the next count_ones() read (or to the merge sweep, which recounts
    // anyway), so the cost is O(n) per call, never O(m/64).
    const std::size_t n = indices.size();
    for (std::size_t i = 0; i < n; ++i) {
      // The word touched 32 iterations ahead is a data-dependent random
      // address — prefetching it keeps several misses in flight instead
      // of serializing on each RMW. (Prefetch never faults, so the
      // not-yet-validated index is safe to feed it.)
      if (i + 32 < n) {
        __builtin_prefetch(&words_[indices[i + 32] / kWordBits], 1, 1);
      }
      const std::size_t index = indices[i];
      VLM_REQUIRE(index < bit_count_, "bit index out of range");
      words_[index / kWordBits] |= std::uint64_t{1} << (index % kWordBits);
    }
    ones_stale_ = true;
    return;
  }
  ones_ = kernels::active().set_scatter(words_.data(), bit_count_,
                                        indices.data(), indices.size());
  ones_stale_ = false;
}

ShardedBitArray::ShardedBitArray(std::size_t bit_count, unsigned shard_count) {
  VLM_REQUIRE(shard_count >= 1, "need at least one shard");
  shards_.reserve(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) shards_.emplace_back(bit_count);
}

BitArray& ShardedBitArray::shard(unsigned s) {
  VLM_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s];
}

const BitArray& ShardedBitArray::shard(unsigned s) const {
  VLM_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s];
}

BitArray ShardedBitArray::merged() const {
  static obs::Histogram& merge_phase = obs::phase("ingest/shard_merge");
  static obs::Counter& merge_words =
      obs::MetricsRegistry::global().counter("ingest/merge_words");
  const obs::Span span(merge_phase);
  BitArray out = shards_.front();
  for (std::size_t s = 1; s < shards_.size(); ++s) out.merge_or(shards_[s]);
  merge_words.add(static_cast<std::uint64_t>(out.words().size()) *
                  (shards_.size() - 1));
  return out;
}

void ShardedBitArray::reset() {
  for (BitArray& shard : shards_) shard.reset();
}

std::vector<std::uint8_t> BitArray::to_bytes() const {
  // Word-wise, mirroring from_bytes: load each word once and shift its
  // bytes out, instead of re-reading words_[b / 8] for every output byte.
  std::vector<std::uint8_t> bytes((bit_count_ + 7) / 8, 0);
  std::size_t b = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    const std::size_t limit = std::min<std::size_t>(8, bytes.size() - b);
    for (std::size_t i = 0; i < limit; ++i) {
      bytes[b + i] = static_cast<std::uint8_t>(word & 0xFFu);
      word >>= 8;
    }
    b += limit;
  }
  return bytes;
}

JointZeroCounts joint_zero_counts(const BitArray& a, const BitArray& b) {
  VLM_REQUIRE(!a.empty() && !b.empty(),
              "joint zero counts need two non-empty arrays");
  const BitArray& small = a.size() <= b.size() ? a : b;
  const BitArray& large = a.size() <= b.size() ? b : a;
  VLM_REQUIRE(large.size() % small.size() == 0,
              "array sizes are not unfold-compatible: the smaller size must "
              "divide the larger — size both arrays as powers of two "
              "(Section IV-A) and this holds automatically");

  JointZeroCounts out;
  out.size_small = small.size();
  out.size_large = large.size();

  const std::span<const std::uint64_t> sw = small.words();
  const std::span<const std::uint64_t> lw = large.words();
  if (small.size() % BitArray::kWordBits == 0) {
    // Word-aligned sizes: the per-array zero counts are maintained by the
    // arrays themselves (O(1)), so the only sweep is the fused OR +
    // popcount kernel — streaming the larger array once and indexing the
    // smaller array's words cyclically instead of materializing the
    // unfold. The sweep runs on whichever ISA the dispatch selected.
    const std::size_t ones_or = kernels::active().or_popcount_cyclic(
        lw.data(), lw.size(), sw.data(), sw.size());
    out.zeros_small = small.count_zeros();
    out.zeros_large = large.count_zeros();
    out.zeros_or = large.size() - ones_or;
    out.words_scanned = sw.size() + lw.size();
  } else {
    // Sub-word sizes (the sizing floor can produce 8..32-bit arrays):
    // fall back to the materializing reference path; these arrays are a
    // handful of bytes, so the copy is irrelevant.
    const BitArray combined = small.size() == large.size()
                                  ? small | large
                                  : small.unfolded(large.size()) | large;
    out.zeros_small = small.count_zeros();
    out.zeros_large = large.count_zeros();
    out.zeros_or = combined.count_zeros();
    out.words_scanned = sw.size() + 2 * lw.size() + combined.words().size();
  }
  return out;
}

namespace {

// Auto tile size: budget ~1 MiB of L2 for one tile of every array, so a
// whole tile sweep (anchor + every partner tile) stays cache-resident
// while the batch kernel reuses it K−1 times. Clamped so tiny
// deployments still amortize the per-tile kernel-call overhead and huge
// ones never fall below a vector-friendly tile.
std::size_t auto_tile_words(std::size_t array_count) {
  constexpr std::size_t kBudgetWords = (std::size_t{1} << 20) / sizeof(std::uint64_t);
  const std::size_t per_array =
      std::clamp<std::size_t>(kBudgetWords / std::max<std::size_t>(1, array_count),
                              std::size_t{256}, std::size_t{65536});
  return std::bit_floor(per_array);
}

}  // namespace

std::vector<JointZeroCounts> joint_zero_counts_batch(
    std::span<const BitArray* const> arrays, const BatchDecodeOptions& options,
    BatchDecodeStats* stats) {
  const std::size_t k = arrays.size();
  VLM_REQUIRE(k >= 2, "batch decode needs at least two arrays");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(k * (k - 1) / 2);
  for (std::uint32_t a = 0; a < k; ++a) {
    for (std::uint32_t b = a + 1; b < k; ++b) pairs.emplace_back(a, b);
  }
  return joint_zero_counts_batch(arrays, pairs, options, stats);
}

std::vector<JointZeroCounts> joint_zero_counts_batch(
    std::span<const BitArray* const> arrays,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
    const BatchDecodeOptions& options, BatchDecodeStats* stats) {
  const std::size_t k = arrays.size();
  for (const BitArray* array : arrays) {
    VLM_REQUIRE(array != nullptr && !array->empty(),
                "joint zero counts need two non-empty arrays");
  }
  const kernels::KernelTable& table =
      options.table != nullptr ? *options.table : kernels::active();

  // Pass 1 (serial, cheap): order every pair exactly as joint_zero_counts
  // does (small = first operand on size ties, so the anchor — the larger
  // array — is the second), validate unfold-compatibility up front, fill
  // the O(1) per-array fields, and group the word-aligned pairs by anchor
  // so one tile of the anchor can be swept against all its partners. A
  // pair list sorted by (first, second) — the survivor lists the pruned
  // mode produces, and the all-pairs enumeration — keeps each anchor
  // group a contiguous run of accumulator slots.
  struct GroupEntry {
    const std::uint64_t* partner_words;
    std::size_t partner_n;
    std::size_t pair;  // this pair's slot in `out`
  };
  std::vector<JointZeroCounts> out(pairs.size());
  std::vector<std::vector<GroupEntry>> groups(k);
  std::vector<std::size_t> pairs_touching(k, 0);
  std::size_t fallback_pairs = 0;
  std::size_t max_anchor_words = 0;
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const std::size_t a = pairs[p].first;
    const std::size_t b = pairs[p].second;
    VLM_REQUIRE(a < k && b < k && a != b,
                "batch decode pair indices must be distinct and in range");
    const BitArray& first = *arrays[a];
    const BitArray& second = *arrays[b];
    const bool first_is_small = first.size() <= second.size();
    const BitArray& small = first_is_small ? first : second;
    const BitArray& large = first_is_small ? second : first;
    VLM_REQUIRE(large.size() % small.size() == 0,
                "array sizes are not unfold-compatible: the smaller size "
                "must divide the larger — size both arrays as powers of two "
                "(Section IV-A) and this holds automatically");
    if (small.size() % BitArray::kWordBits != 0) {
      // Sub-word arrays (sizing floor): a handful of bytes — reuse the
      // per-pair materializing fallback, bit for bit.
      out[p] = joint_zero_counts(first, second);
      ++fallback_pairs;
      continue;
    }
    JointZeroCounts& counts = out[p];
    counts.size_small = small.size();
    counts.size_large = large.size();
    counts.zeros_small = small.count_zeros();
    counts.zeros_large = large.count_zeros();
    counts.words_scanned = small.words().size() + large.words().size();
    const std::size_t anchor = first_is_small ? b : a;
    groups[anchor].push_back(
        GroupEntry{small.words().data(), small.words().size(), p});
    ++pairs_touching[a];
    ++pairs_touching[b];
    max_anchor_words = std::max(max_anchor_words, large.words().size());
  }

  std::size_t tile_words = 0;
  std::size_t tiles = 0;
  if (max_anchor_words > 0) {
    tile_words = options.tile_words != 0 ? options.tile_words
                                         : auto_tile_words(k);
    tiles = (max_anchor_words + tile_words - 1) / tile_words;

    // Flatten the anchor groups: each batch gets a contiguous run of
    // accumulator slots, so the kernel can += straight into the worker's
    // slab and slot → pair stays a precomputed lookup.
    struct AnchorBatch {
      const std::uint64_t* anchor_words;
      std::size_t anchor_n;
      std::vector<const std::uint64_t*> partner_ptrs;
      std::vector<std::size_t> partner_words;
      std::size_t slot_offset;
    };
    std::vector<AnchorBatch> batches;
    std::vector<std::size_t> slot_pair;
    batches.reserve(k);
    for (std::size_t anchor = 0; anchor < k; ++anchor) {
      if (groups[anchor].empty()) continue;
      AnchorBatch batch;
      batch.anchor_words = arrays[anchor]->words().data();
      batch.anchor_n = arrays[anchor]->words().size();
      batch.slot_offset = slot_pair.size();
      for (const GroupEntry& entry : groups[anchor]) {
        batch.partner_ptrs.push_back(entry.partner_words);
        batch.partner_words.push_back(entry.partner_n);
        slot_pair.push_back(entry.pair);
      }
      batches.push_back(std::move(batch));
    }

    // Pass 2 (parallel over tiles): every worker accumulates OR+popcount
    // partials for its own tile slice into its own slab. Slices are
    // contiguous and integer partials are summed in fixed slot order
    // below, so the result is bit-identical for every (workers,
    // tile_words) choice.
    const unsigned workers =
        options.workers == 0 ? default_worker_count() : options.workers;
    const unsigned slabs =
        static_cast<unsigned>(std::min<std::size_t>(workers, tiles));
    std::vector<std::vector<std::size_t>> acc(
        slabs, std::vector<std::size_t>(slot_pair.size(), 0));
    parallel_slices(
        tiles, workers,
        [&](unsigned worker, std::size_t tile_begin, std::size_t tile_end) {
          std::vector<std::size_t>& slab = acc[worker];
          for (std::size_t t = tile_begin; t < tile_end; ++t) {
            const obs::trace::TraceScope tile_scope("decode/tile");
            const std::size_t begin = t * tile_words;
            for (const AnchorBatch& batch : batches) {
              if (begin >= batch.anchor_n) continue;
              const std::size_t end =
                  std::min(batch.anchor_n, begin + tile_words);
              table.or_popcount_cyclic_batch(
                  batch.anchor_words, begin, end, batch.partner_ptrs.data(),
                  batch.partner_words.data(), batch.partner_ptrs.size(),
                  slab.data() + batch.slot_offset);
            }
          }
        });

    for (std::size_t slot = 0; slot < slot_pair.size(); ++slot) {
      std::size_t ones = 0;
      for (const std::vector<std::size_t>& slab : acc) ones += slab[slot];
      JointZeroCounts& counts = out[slot_pair[slot]];
      counts.zeros_or = counts.size_large - ones;
    }
  }

  if (stats != nullptr) {
    stats->tile_words = tile_words;
    stats->tiles = tiles;
    stats->fallback_pairs = fallback_pairs;
    stats->dram_passes_saved = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (pairs_touching[i] > 0) {
        stats->dram_passes_saved += pairs_touching[i] - 1;
      }
    }
  }
  return out;
}

BitArray BitArray::from_bytes(std::size_t bit_count,
                              std::span<const std::uint8_t> bytes) {
  VLM_REQUIRE(bytes.size() == (bit_count + 7) / 8,
              "byte buffer does not match the declared bit count");
  BitArray out(bit_count);
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    out.words_[b / 8] |= static_cast<std::uint64_t>(bytes[b]) << ((b % 8) * 8);
  }
  // Trailing bits past bit_count must stay zero; reject buffers that set
  // them, since they would silently corrupt zero counting.
  const std::size_t tail = bit_count % kWordBits;
  if (tail != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
    VLM_REQUIRE((out.words_.back() & ~mask) == 0,
                "byte buffer sets bits past the declared bit count");
  }
  out.ones_ = kernels::active().popcount(out.words_.data(), out.words_.size());
  return out;
}

}  // namespace vlm::common
