#include "common/bit_array.h"

#include <bit>

#include "common/require.h"

namespace vlm::common {

BitArray::BitArray(std::size_t bit_count)
    : bit_count_(bit_count), words_(word_count_for(bit_count), 0) {
  VLM_REQUIRE(bit_count > 0, "bit array must have at least one bit");
}

void BitArray::set(std::size_t index) {
  VLM_REQUIRE(index < bit_count_, "bit index out of range");
  words_[index / kWordBits] |= std::uint64_t{1} << (index % kWordBits);
}

bool BitArray::test(std::size_t index) const {
  VLM_REQUIRE(index < bit_count_, "bit index out of range");
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1u;
}

void BitArray::reset() {
  for (auto& w : words_) w = 0;
}

std::size_t BitArray::count_ones() const {
  std::size_t ones = 0;
  for (std::uint64_t w : words_) {
    ones += static_cast<std::size_t>(std::popcount(w));
  }
  return ones;
}

double BitArray::zero_fraction() const {
  VLM_REQUIRE(bit_count_ > 0, "zero_fraction of an empty array is undefined");
  return static_cast<double>(count_zeros()) / static_cast<double>(bit_count_);
}

BitArray BitArray::unfolded(std::size_t target_size) const {
  VLM_REQUIRE(bit_count_ > 0, "cannot unfold an empty array");
  VLM_REQUIRE(target_size >= bit_count_ && target_size % bit_count_ == 0,
              "unfold target must be a positive multiple of the array size");
  BitArray out(target_size);
  // Word-level fast path when the source is word-aligned; bit-level
  // otherwise (sizes below 64 bits, which the sizing policy can produce for
  // very light RSUs).
  if (bit_count_ % kWordBits == 0) {
    const std::size_t src_words = words_.size();
    for (std::size_t w = 0; w < out.words_.size(); ++w) {
      out.words_[w] = words_[w % src_words];
    }
  } else {
    for (std::size_t i = 0; i < target_size; ++i) {
      if (test(i % bit_count_)) out.set(i);
    }
  }
  return out;
}

BitArray& BitArray::operator|=(const BitArray& other) {
  VLM_REQUIRE(bit_count_ == other.bit_count_,
              "bitwise OR requires equal-sized arrays (unfold first)");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
  return *this;
}

std::vector<std::uint8_t> BitArray::to_bytes() const {
  std::vector<std::uint8_t> bytes((bit_count_ + 7) / 8, 0);
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    bytes[b] = static_cast<std::uint8_t>(
        (words_[b / 8] >> ((b % 8) * 8)) & 0xFFu);
  }
  return bytes;
}

BitArray BitArray::from_bytes(std::size_t bit_count,
                              std::span<const std::uint8_t> bytes) {
  VLM_REQUIRE(bytes.size() == (bit_count + 7) / 8,
              "byte buffer does not match the declared bit count");
  BitArray out(bit_count);
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    out.words_[b / 8] |= static_cast<std::uint64_t>(bytes[b]) << ((b % 8) * 8);
  }
  // Trailing bits past bit_count must stay zero; reject buffers that set
  // them, since they would silently corrupt zero counting.
  const std::size_t tail = bit_count % kWordBits;
  if (tail != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
    VLM_REQUIRE((out.words_.back() & ~mask) == 0,
                "byte buffer sets bits past the declared bit count");
  }
  return out;
}

}  // namespace vlm::common
