#include "common/bit_array.h"

#include <algorithm>

#include "common/kernels/kernels.h"
#include "common/require.h"

namespace vlm::common {

BitArray::BitArray(std::size_t bit_count)
    : bit_count_(bit_count), words_(word_count_for(bit_count), 0) {
  VLM_REQUIRE(bit_count > 0, "bit array must have at least one bit");
}

void BitArray::set(std::size_t index) {
  VLM_REQUIRE(index < bit_count_, "bit index out of range");
  std::uint64_t& word = words_[index / kWordBits];
  const std::uint64_t mask = std::uint64_t{1} << (index % kWordBits);
  ones_ += static_cast<std::size_t>((word & mask) == 0);
  word |= mask;
}

bool BitArray::test(std::size_t index) const {
  VLM_REQUIRE(index < bit_count_, "bit index out of range");
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1u;
}

void BitArray::reset() {
  for (auto& w : words_) w = 0;
  ones_ = 0;
}

double BitArray::zero_fraction() const {
  VLM_REQUIRE(bit_count_ > 0, "zero_fraction of an empty array is undefined");
  return static_cast<double>(count_zeros()) / static_cast<double>(bit_count_);
}

BitArray BitArray::unfolded(std::size_t target_size) const {
  VLM_REQUIRE(bit_count_ > 0, "cannot unfold an empty array");
  VLM_REQUIRE(target_size >= bit_count_ && target_size % bit_count_ == 0,
              "unfold target must be a positive multiple of the array size");
  BitArray out(target_size);
  if (bit_count_ % kWordBits == 0) {
    // Word-aligned source: every output word is a whole source word.
    const std::size_t src_words = words_.size();
    for (std::size_t w = 0; w < out.words_.size(); ++w) {
      out.words_[w] = words_[w % src_words];
    }
  } else {
    // Non-word-aligned source (sub-64-bit arrays from very light RSUs,
    // or odd sizes in tests): assemble each output word from source
    // fragments read with word-level shifts — a fragment is bounded by
    // the end of the output word, the end of the source, or the end of
    // the array, so this is O(words_out · max(1, 64/size)) instead of
    // the former one-bit-at-a-time set/test loop.
    auto read_bits = [&](std::size_t pos, std::size_t len) {
      const std::size_t w = pos / kWordBits;
      const std::size_t off = pos % kWordBits;
      std::uint64_t bits = words_[w] >> off;
      if (off + len > kWordBits) {
        bits |= words_[w + 1] << (kWordBits - off);
      }
      if (len < kWordBits) bits &= (std::uint64_t{1} << len) - 1;
      return bits;
    };
    std::size_t out_bit = 0;
    std::size_t src_pos = 0;
    while (out_bit < target_size) {
      const std::size_t len =
          std::min({kWordBits - out_bit % kWordBits, bit_count_ - src_pos,
                    target_size - out_bit});
      out.words_[out_bit / kWordBits] |= read_bits(src_pos, len)
                                         << (out_bit % kWordBits);
      out_bit += len;
      src_pos += len;
      if (src_pos == bit_count_) src_pos = 0;
    }
  }
  // Unfolding repeats the pattern exactly target/size times, so the
  // ones count scales with the ratio — no recount sweep needed.
  out.ones_ = ones_ * (target_size / bit_count_);
  return out;
}

BitArray& BitArray::merge_or(const BitArray& other) {
  VLM_REQUIRE(bit_count_ == other.bit_count_,
              "bitwise OR requires equal-sized arrays (unfold first)");
  ones_ = kernels::active().merge_or(words_.data(), other.words_.data(),
                                     words_.size());
  return *this;
}

void BitArray::set_bulk(std::span<const std::size_t> indices) {
  if (indices.empty()) return;
  ones_ = kernels::active().set_scatter(words_.data(), bit_count_,
                                        indices.data(), indices.size());
}

ShardedBitArray::ShardedBitArray(std::size_t bit_count, unsigned shard_count) {
  VLM_REQUIRE(shard_count >= 1, "need at least one shard");
  shards_.reserve(shard_count);
  for (unsigned s = 0; s < shard_count; ++s) shards_.emplace_back(bit_count);
}

BitArray& ShardedBitArray::shard(unsigned s) {
  VLM_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s];
}

const BitArray& ShardedBitArray::shard(unsigned s) const {
  VLM_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s];
}

BitArray ShardedBitArray::merged() const {
  BitArray out = shards_.front();
  for (std::size_t s = 1; s < shards_.size(); ++s) out.merge_or(shards_[s]);
  return out;
}

void ShardedBitArray::reset() {
  for (BitArray& shard : shards_) shard.reset();
}

std::vector<std::uint8_t> BitArray::to_bytes() const {
  std::vector<std::uint8_t> bytes((bit_count_ + 7) / 8, 0);
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    bytes[b] = static_cast<std::uint8_t>(
        (words_[b / 8] >> ((b % 8) * 8)) & 0xFFu);
  }
  return bytes;
}

JointZeroCounts joint_zero_counts(const BitArray& a, const BitArray& b) {
  VLM_REQUIRE(!a.empty() && !b.empty(),
              "joint zero counts need two non-empty arrays");
  const BitArray& small = a.size() <= b.size() ? a : b;
  const BitArray& large = a.size() <= b.size() ? b : a;
  VLM_REQUIRE(large.size() % small.size() == 0,
              "array sizes are not unfold-compatible: the smaller size must "
              "divide the larger — size both arrays as powers of two "
              "(Section IV-A) and this holds automatically");

  JointZeroCounts out;
  out.size_small = small.size();
  out.size_large = large.size();

  const std::span<const std::uint64_t> sw = small.words();
  const std::span<const std::uint64_t> lw = large.words();
  if (small.size() % BitArray::kWordBits == 0) {
    // Word-aligned sizes: the per-array zero counts are maintained by the
    // arrays themselves (O(1)), so the only sweep is the fused OR +
    // popcount kernel — streaming the larger array once and indexing the
    // smaller array's words cyclically instead of materializing the
    // unfold. The sweep runs on whichever ISA the dispatch selected.
    const std::size_t ones_or = kernels::active().or_popcount_cyclic(
        lw.data(), lw.size(), sw.data(), sw.size());
    out.zeros_small = small.count_zeros();
    out.zeros_large = large.count_zeros();
    out.zeros_or = large.size() - ones_or;
    out.words_scanned = sw.size() + lw.size();
  } else {
    // Sub-word sizes (the sizing floor can produce 8..32-bit arrays):
    // fall back to the materializing reference path; these arrays are a
    // handful of bytes, so the copy is irrelevant.
    const BitArray combined = small.size() == large.size()
                                  ? small | large
                                  : small.unfolded(large.size()) | large;
    out.zeros_small = small.count_zeros();
    out.zeros_large = large.count_zeros();
    out.zeros_or = combined.count_zeros();
    out.words_scanned = sw.size() + 2 * lw.size() + combined.words().size();
  }
  return out;
}

BitArray BitArray::from_bytes(std::size_t bit_count,
                              std::span<const std::uint8_t> bytes) {
  VLM_REQUIRE(bytes.size() == (bit_count + 7) / 8,
              "byte buffer does not match the declared bit count");
  BitArray out(bit_count);
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    out.words_[b / 8] |= static_cast<std::uint64_t>(bytes[b]) << ((b % 8) * 8);
  }
  // Trailing bits past bit_count must stay zero; reject buffers that set
  // them, since they would silently corrupt zero counting.
  const std::size_t tail = bit_count % kWordBits;
  if (tail != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
    VLM_REQUIRE((out.words_.back() & ~mask) == 0,
                "byte buffer sets bits past the declared bit count");
  }
  out.ones_ = kernels::active().popcount(out.words_.data(), out.words_.size());
  return out;
}

}  // namespace vlm::common
