// Deterministic parallel-for over an index range, backed by a persistent
// worker pool.
//
// Monte-Carlo sweeps, the sharded ingest engine, and the tiled decode all
// fan independent, per-index work across threads; their results must not
// depend on which thread ran what. These helpers slice [0, count) across
// a fixed number of logical workers with boundaries that depend only on
// (count, workers) — never on scheduling — so any worker count gives
// bit-identical output.
//
// Threads are NOT spawned per call: every multi-worker region runs on the
// process-wide WorkerPool, whose threads are created once and reused. A
// multi-period pipeline (ingest + decode per period) therefore pays the
// thread spawn/join cost exactly once per process instead of once per
// parallel region.
//
// Exceptions: the first exception thrown by any worker is rethrown on the
// calling thread after the region completes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace vlm::common {

// Number of workers the machine suggests (hardware_concurrency, floored
// at 1).
unsigned default_worker_count();

// CLI-facing resolution of a requested worker count: nonzero passes
// through, 0 (the "unset" flag value) maps to default_worker_count()
// with a warn-once stderr note saying what was picked — so a user who
// left --workers unset sees the machine-wide default being applied
// instead of silently getting some implicit count (same warn-once style
// as the VLM_KERNELS fallback).
unsigned resolve_worker_count(unsigned requested);

// Runs body(i) for every i in [0, count), distributed over `workers`
// threads (contiguous slices). workers == 1 runs inline.
void parallel_for(std::size_t count, unsigned workers,
                  const std::function<void(std::size_t)>& body);

// Sharded-aggregation primitive: covers [0, count) with at most `workers`
// disjoint contiguous slices and runs body(worker, begin, end) for each.
// The worker index is dense in [0, used) where used = min(workers, count),
// so callers can pre-size one shard of local state per worker and merge
// after the call returns (workers == 1 runs inline). Slice boundaries
// depend only on (count, workers), never on scheduling.
void parallel_slices(
    std::size_t count, unsigned workers,
    const std::function<void(unsigned worker, std::size_t begin,
                             std::size_t end)>& body);

// Process-wide persistent thread pool behind parallel_for/parallel_slices.
//
// The pool owns hardware_concurrency − 1 threads (possibly zero on a
// single-core host); the calling thread always participates in draining
// the region, so a region with more logical workers than pool threads
// still completes — logical worker indices are task slots, not thread
// identities, which is what keeps the contiguous-slice determinism
// contract independent of the pool size. Regions are serialized: one runs
// at a time, and a region launched from inside a pool task (nested
// parallelism) runs inline on the calling thread rather than deadlocking.
class WorkerPool {
 public:
  // The singleton every parallel region routes through. Threads are
  // started lazily on first use and joined at process exit.
  static WorkerPool& instance();

  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Persistent threads owned by the pool (callers add themselves, so the
  // effective concurrency of a region is thread_count() + 1).
  unsigned thread_count() const;

  // Parallel regions served since process start — the pool-reuse counter
  // surfaced by DecodeStats/IngestStats: it keeps growing across decode
  // calls and ingest periods while thread_count() stays constant.
  std::uint64_t dispatch_count() const;

  // Runs task(0), ..., task(used − 1), each exactly once, on the pool's
  // threads plus the calling thread; returns when all have completed and
  // rethrows the first captured exception. Safe to call with used == 0
  // (no-op) and from inside a pool task (runs inline, serially).
  void run(unsigned used, const std::function<void(unsigned)>& task);

 private:
  WorkerPool();

  struct State;
  State* state_;  // pimpl: keeps <thread>/<mutex> out of this header
};

}  // namespace vlm::common
