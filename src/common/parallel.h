// Deterministic parallel-for over an index range.
//
// Monte-Carlo sweeps dominate the bench wall-clock; their trials are
// independent and seeded per index, so they parallelize trivially AND
// deterministically: the result for index i must not depend on which
// thread ran it. This helper slices [0, count) across a fixed number of
// worker threads. The callback must only write to per-index state (the
// callers collect into pre-sized vectors).
//
// Exceptions: the first exception thrown by any worker is rethrown on
// the calling thread after all workers join.
#pragma once

#include <cstddef>
#include <functional>

namespace vlm::common {

// Number of workers the machine suggests (hardware_concurrency, floored
// at 1).
unsigned default_worker_count();

// Runs body(i) for every i in [0, count), distributed over `workers`
// threads (contiguous slices). workers == 1 runs inline.
void parallel_for(std::size_t count, unsigned workers,
                  const std::function<void(std::size_t)>& body);

// Sharded-aggregation primitive: covers [0, count) with at most `workers`
// disjoint contiguous slices and runs body(worker, begin, end) for each,
// one thread per slice. The worker index is dense in [0, used) where
// used = min(workers, count), so callers can pre-size one shard of local
// state per worker and merge after the call returns (workers == 1 runs
// inline). Slice boundaries depend only on (count, workers), never on
// scheduling.
void parallel_slices(
    std::size_t count, unsigned workers,
    const std::function<void(unsigned worker, std::size_t begin,
                             std::size_t end)>& body);

}  // namespace vlm::common
