// Reusable dense visited mask with O(1) reset.
//
// The itinerary generators dedup a handful of draws against a universe of
// a few dozen to a few thousand RSUs, once per vehicle, millions of times
// per period. A std::find over the partial list is O(visits²) per vehicle
// and a real bitmask would need an O(universe/64) clear per vehicle;
// this mask stamps each slot with the pass number instead, so begin_pass()
// is a single increment and insert/contains are one load each. One
// instance per worker thread, reused across every vehicle in its slice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vlm::common {

class VisitedMask {
 public:
  explicit VisitedMask(std::size_t universe_size)
      : stamps_(universe_size, 0) {}

  std::size_t universe_size() const { return stamps_.size(); }

  // Starts a new dedup pass (forgets every previous insert).
  void begin_pass() {
    if (++pass_ == 0) {  // stamp wraparound: invalidate stale stamps
      stamps_.assign(stamps_.size(), 0);
      pass_ = 1;
    }
  }

  bool contains(std::size_t index) const { return stamps_[index] == pass_; }

  // Marks `index` visited; returns true iff it was NOT already visited
  // in the current pass.
  bool insert(std::size_t index) {
    if (stamps_[index] == pass_) return false;
    stamps_[index] = pass_;
    return true;
  }

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t pass_ = 0;
};

}  // namespace vlm::common
