// Deterministic pseudo-random generation for simulations.
//
// Self-contained xoshiro256** implementation (Blackman & Vigna). Every
// experiment harness takes an explicit seed so that paper figures are
// regenerated bit-for-bit across runs.
#pragma once

#include <array>
#include <cstdint>

namespace vlm::common {

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed);

  std::uint64_t next();

  // UniformRandomBitGenerator interface so <random> distributions work too.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

  // Uniform integer in [0, bound). bound must be positive. Uses Lemire's
  // multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound);

  // Uniform double in [0, 1).
  double uniform_double();

  // Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p);

  // Forks an independent stream (for per-entity generators) by mixing the
  // current state with `stream_id`.
  Xoshiro256ss fork(std::uint64_t stream_id);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace vlm::common
