// Deterministic pseudo-random generation for simulations.
//
// Self-contained xoshiro256** implementation (Blackman & Vigna). Every
// experiment harness takes an explicit seed so that paper figures are
// regenerated bit-for-bit across runs.
//
// Construction and the draw methods are header-inline on purpose: the
// workload generators build one generator per vehicle and take only a
// handful of draws from it, so a cross-TU call per draw measurably caps
// the batch-ingest materialize stage. Inlining changes zero outputs —
// same state transitions, same values.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "common/hashing.h"
#include "common/require.h"

namespace vlm::common {

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed) {
    // Seed expansion via splitmix64, per the xoshiro authors'
    // recommendation.
    std::uint64_t s = seed;
    for (auto& word : state_) {
      word = splitmix64_next(s);
    }
    // An all-zero state is the one fixed point; splitmix64 cannot produce
    // four zero outputs in a row, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
      state_[0] = 0x9E3779B97F4A7C15ull;
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so <random> distributions work too.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

  // Uniform integer in [0, bound). bound must be positive. Uses Lemire's
  // nearly-divisionless multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound) {
    VLM_REQUIRE(bound > 0, "uniform bound must be positive");
    auto mul = [&](std::uint64_t x) {
      return static_cast<unsigned __int128>(x) *
             static_cast<unsigned __int128>(bound);
    };
    unsigned __int128 m = mul(next());
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = mul(next());
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double uniform_double() {
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p) {
    VLM_REQUIRE(p >= 0.0 && p <= 1.0,
                "bernoulli probability must be in [0,1]");
    return uniform_double() < p;
  }

  // Forks an independent stream (for per-entity generators) by mixing the
  // current state with `stream_id`. Out of line: nowhere near a hot loop.
  Xoshiro256ss fork(std::uint64_t stream_id);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace vlm::common
