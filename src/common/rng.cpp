#include "common/rng.h"

namespace vlm::common {

Xoshiro256ss Xoshiro256ss::fork(std::uint64_t stream_id) {
  return Xoshiro256ss(
      mix64(state_[0] ^ mix64(stream_id ^ 0xA5A5A5A5A5A5A5A5ull)));
}

}  // namespace vlm::common
