#include "common/rng.h"

#include <bit>

#include "common/hashing.h"
#include "common/require.h"

namespace vlm::common {

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) {
  // Seed expansion via splitmix64, per the xoshiro authors' recommendation.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64_next(s);
  }
  // An all-zero state is the one fixed point; splitmix64 cannot produce
  // four zero outputs in a row, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9E3779B97F4A7C15ull;
  }
}

std::uint64_t Xoshiro256ss::next() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256ss::uniform(std::uint64_t bound) {
  VLM_REQUIRE(bound > 0, "uniform bound must be positive");
  // Lemire's nearly-divisionless unbiased bounded generation.
  auto mul = [&](std::uint64_t x) {
    return static_cast<unsigned __int128>(x) *
           static_cast<unsigned __int128>(bound);
  };
  unsigned __int128 m = mul(next());
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      m = mul(next());
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256ss::uniform_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256ss::bernoulli(double p) {
  VLM_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli probability must be in [0,1]");
  return uniform_double() < p;
}

Xoshiro256ss Xoshiro256ss::fork(std::uint64_t stream_id) {
  return Xoshiro256ss(mix64(state_[0] ^ mix64(stream_id ^ 0xA5A5A5A5A5A5A5A5ull)));
}

}  // namespace vlm::common
