#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/require.h"

namespace vlm::common {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  VLM_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  VLM_REQUIRE(cells.size() == headers_.size(),
              "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::fmt_int(long long value) { return std::to_string(value); }

std::string TextTable::fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace vlm::common
