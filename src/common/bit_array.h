// Dense bit array: the storage primitive of both masking schemes.
//
// An RSU's state in the paper is exactly one of these plus a counter. The
// operations the decoding phase needs — zero counting, bitwise OR, and the
// paper's "unfolding" expansion (Section IV-C, Eq. 3) — are all word-level
// and O(m/64).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace vlm::common {

class BitArray {
 public:
  static constexpr std::size_t kWordBits = 64;

  BitArray() = default;

  // Creates an all-zero array of `bit_count` bits. `bit_count` may be any
  // positive value; the power-of-two restriction the paper imposes is a
  // property of the sizing policy (core/sizing.h), not of the container.
  explicit BitArray(std::size_t bit_count);

  std::size_t size() const { return bit_count_; }
  bool empty() const { return bit_count_ == 0; }

  void set(std::size_t index);
  bool test(std::size_t index) const;

  // Bulk ingest: sets every index in `indices` (duplicates are fine — OR
  // is idempotent). Batches of at least one index per array word use
  // plain word writes plus one vectorized popcount recount; smaller
  // batches — the common case under the sub-slice pipeline schedule —
  // maintain the ones count incrementally so the cost is O(n), never
  // O(m/64) per call.
  void set_bulk(std::span<const std::size_t> indices);

  // Clears every bit (start of a new measurement period).
  void reset();

  // O(1) when the count is clean. `set` and `merge_or` keep it exact
  // incrementally; `set_bulk` defers, and the first read afterwards pays
  // one vectorized popcount sweep. Decode paths only ever see clean
  // arrays (merging recounts), so per-array zero counts stay free there.
  std::size_t count_ones() const;
  std::size_t count_zeros() const { return size() - count_ones(); }

  // V_x in the paper: the fraction of '0' bits. Requires a non-empty array.
  double zero_fraction() const;

  // The paper's "unfolding" technique (Eq. 3): returns an array of
  // `target_size` bits with B^u[i] = B[i mod m]. Requires `target_size`
  // to be a positive multiple of size(). Unfolding to size() returns a
  // copy. The zero fraction is invariant under unfolding.
  BitArray unfolded(std::size_t target_size) const;

  // Word-level OR-merge (Eq. 4): the shard-combining primitive of the
  // parallel ingestion engine. `ones_` is recomputed by popcount during
  // the single word sweep, never per bit. Both operands must have equal
  // size. Returns *this.
  BitArray& merge_or(const BitArray& other);

  // Bitwise OR (Eq. 4). Both operands must have equal size.
  BitArray& operator|=(const BitArray& other) { return merge_or(other); }
  friend BitArray operator|(BitArray lhs, const BitArray& rhs) {
    lhs |= rhs;
    return lhs;
  }

  friend bool operator==(const BitArray& a, const BitArray& b) {
    return a.bit_count_ == b.bit_count_ && a.words_ == b.words_;
  }

  // Raw 64-bit words, little-endian bit order within a word; trailing bits
  // past size() are guaranteed zero. Exposed for serialization and tests.
  std::span<const std::uint64_t> words() const { return words_; }

  // Serialization for RSU -> central-server reports.
  std::vector<std::uint8_t> to_bytes() const;
  static BitArray from_bytes(std::size_t bit_count,
                             std::span<const std::uint8_t> bytes);

 private:
  static std::size_t word_count_for(std::size_t bits) {
    return (bits + kWordBits - 1) / kWordBits;
  }

  std::size_t bit_count_ = 0;
  // `ones_` is exact while `ones_stale_` is false; `set_bulk` only
  // writes words and raises the flag, and `count_ones` recounts behind
  // the const read API (hence mutable). Flushing is not safe from
  // concurrent readers — ingest keeps stale arrays worker-private and
  // every cross-thread hand-off (merge, serialization) recounts.
  mutable std::size_t ones_ = 0;
  mutable bool ones_stale_ = false;
  std::vector<std::uint64_t> words_;
};

// One bit array per worker over the same index space. Each ingest worker
// sets bits into its own shard with zero synchronization; the period
// close OR-merges the shards into one array. Because the period array is
// exactly the OR of every vehicle's single set bit and OR is commutative
// and associative, the merged array is bit-identical to a serial ingest
// of the same replies — for ANY shard count and ANY assignment of
// vehicles to shards.
class ShardedBitArray {
 public:
  ShardedBitArray(std::size_t bit_count, unsigned shard_count);

  std::size_t size() const { return shards_.front().size(); }
  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }

  BitArray& shard(unsigned s);
  const BitArray& shard(unsigned s) const;

  // OR of all shards (merge_or pairwise, ones by popcount).
  BitArray merged() const;

  // Clears every shard for a new period.
  void reset();

 private:
  std::vector<BitArray> shards_;
};

// Result of the fused decode kernel below. `zeros_or` is the zero count
// of unfold(small) | large, measured at the larger size — exactly the
// three quantities Eq. 5 reads (V_x, V_y, V_c after dividing by size).
struct JointZeroCounts {
  std::size_t size_small = 0;   // smaller array's bit count (m_x)
  std::size_t size_large = 0;   // larger array's bit count (m_y)
  std::size_t zeros_small = 0;  // zero bits of the smaller array
  std::size_t zeros_large = 0;  // zero bits of the larger array
  std::size_t zeros_or = 0;     // zero bits of unfold(small) | large
  std::size_t words_scanned = 0;  // 64-bit words the kernel touched
};

// Fused decode kernel: the three zero counts the pair estimator needs in
// one pass, without ever materializing the unfolded array — the OR is
// formed word by word, indexing the smaller array's words cyclically
// (unfolding is periodic repetition, Eq. 3). Accepts the operands in
// either order. Requires the smaller size to divide the larger, which
// power-of-two sizes (Section IV-A) guarantee; anything else throws with
// a sizing hint. O(m_y / 64) time, O(1) extra space.
JointZeroCounts joint_zero_counts(const BitArray& a, const BitArray& b);

namespace kernels {
struct KernelTable;
}  // namespace kernels

// Options for the cache-blocked batch decode below.
struct BatchDecodeOptions {
  // Anchor-tile size in 64-bit words; 0 picks a power of two sized so
  // that one tile of every array together fits comfortably in L2 (the
  // classic GEMM blocking budget). Any positive value is correct — the
  // tiling never changes the counts, only the cache behavior.
  std::size_t tile_words = 0;
  // Threads the tile range is spread over (0 = one per core, 1 = serial).
  // Every worker accumulates into its own per-pair slots and the partials
  // are summed in a fixed order, so the counts are bit-identical for any
  // worker count and any tile size.
  unsigned workers = 1;
  // Kernel variant to run the tile sweeps on; nullptr = kernels::active().
  // The differential fuzz suite uses this to pin each compiled ISA.
  const kernels::KernelTable* table = nullptr;
};

// Observability for one joint_zero_counts_batch call.
struct BatchDecodeStats {
  std::size_t tile_words = 0;  // tile size actually used
  std::size_t tiles = 0;       // tiles in the sweep (over the largest array)
  // Full-array loads the per-pair path would have done minus the one load
  // per array the tile sweep does: for each array, (pairs touching it) −
  // 1. The DRAM-traffic reduction the blocking buys.
  std::size_t dram_passes_saved = 0;
  // Pairs routed through the sub-word materializing fallback instead of
  // the tile sweep (arrays below one word, from the sizing floor).
  std::size_t fallback_pairs = 0;
};

// Batch decode: JointZeroCounts for EVERY unordered pair of `arrays`, in
// upper-triangle row-major order ((0,1), (0,2), ..., (1,2), ...) — the
// K-RSU form of joint_zero_counts, bit-identical to calling it per pair
// but with O(K·m) DRAM traffic per tile sweep instead of O(K²·m): the
// word range is partitioned into tiles, and each tile is combined with
// every partner while it is cache-hot (per-pair OR+popcount partials land
// in deterministic accumulator slots). Pairs whose smaller array is below
// one word fall back to the per-pair kernel. Size-incompatibility throws
// exactly as joint_zero_counts does, before any counting starts.
std::vector<JointZeroCounts> joint_zero_counts_batch(
    std::span<const BitArray* const> arrays,
    const BatchDecodeOptions& options = {},
    BatchDecodeStats* stats = nullptr);

// Pair-list form: JointZeroCounts for exactly the given (first, second)
// index pairs into `arrays`, in the order given — the sweep the pruned
// decode mode runs over its survivor list. Each entry is computed
// exactly as joint_zero_counts(*arrays[first], *arrays[second]); anchor
// groups keep contiguous accumulator-slot runs and integer partials sum
// in a fixed order, so any subset's counts are bit-identical to the
// corresponding entries of the all-pairs call (which delegates here).
// Pairs may be empty; indices must be in range and distinct.
std::vector<JointZeroCounts> joint_zero_counts_batch(
    std::span<const BitArray* const> arrays,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
    const BatchDecodeOptions& options = {},
    BatchDecodeStats* stats = nullptr);

}  // namespace vlm::common
