// std::vector without the resize() memset, for buffers that are always
// fully overwritten before being read.
//
// vector<T>::resize value-initializes every new element — a full memset
// pass over the buffer. For the ingest pipeline's bucket columns that
// pass is pure waste: the columns are sized exactly by a counting pass
// and then every slot is written through a cursor (or by a batch
// kernel), so tens of MB per worker per period would be zeroed only to
// be overwritten. UninitAllocator makes default-construction of
// trivially-constructible elements a no-op, turning resize() into a pure
// size bump (plus allocation when capacity grows).
//
// Only safe when every element in [0, size()) is written before it is
// read — the call sites must guarantee that, exactly as they would for a
// raw `new T[n]` buffer.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace vlm::common {

template <typename T, typename Base = std::allocator<T>>
class UninitAllocator : public Base {
 public:
  static_assert(std::is_trivially_default_constructible_v<T>,
                "UninitAllocator only skips trivial default-construction");
  using Base::Base;

  template <typename U>
  struct rebind {
    using other =
        UninitAllocator<U, typename std::allocator_traits<
                               Base>::template rebind_alloc<U>>;
  };

  // Value-initialization requests (the resize() path) become
  // default-initialization — a no-op for trivial T. Construction with
  // arguments (push_back, emplace) is unchanged.
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
  template <typename U>
  void construct(U* p) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }
};

// Drop-in vector whose resize() leaves new elements indeterminate.
template <typename T>
using UninitVector = std::vector<T, UninitAllocator<T>>;

}  // namespace vlm::common
