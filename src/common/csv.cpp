#include "common/csv.h"

#include <stdexcept>

#include "common/require.h"

namespace vlm::common {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  VLM_REQUIRE(!header.empty(), "csv needs at least one column");
  if (!out_) {
    throw std::runtime_error("cannot open csv output file: " + path);
  }
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c) out_ << ",";
    out_ << escape(header[c]);
  }
  out_ << "\n";
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  VLM_REQUIRE(cells.size() == columns_, "csv row width mismatch");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) out_ << ",";
    out_ << escape(cells[c]);
  }
  out_ << "\n";
  ++rows_written_;
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace vlm::common
