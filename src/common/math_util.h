// Numerically careful kernels shared by the analysis models.
//
// The paper's formulas are full of terms like (1 - 1/m)^n with m up to 2^21
// and n up to 5*10^5; evaluating them naively as std::pow(1 - 1/m, n) loses
// precision exactly where the privacy/accuracy curves are interesting.
// Everything here routes through log1p/expm1.
#pragma once

#include <cstdint>

namespace vlm::common {

// (1 - x)^n for x in [0, 1), n >= 0, computed as exp(n * log1p(-x)).
double pow_one_minus(double x, double n);

// ln(1 - x) for x in [0, 1), i.e. log1p(-x).
double log_one_minus(double x);

// True iff v is a power of two (v > 0).
bool is_power_of_two(std::uint64_t v);

// Smallest power of two >= v (v >= 1). This is the paper's
// 2^ceil(log2(...)) sizing step. Requires v <= 2^63.
std::uint64_t ceil_pow2(std::uint64_t v);

// ceil(log2(v)) for v >= 1.
unsigned ceil_log2(std::uint64_t v);

// Relative difference |a - b| / max(|a|, |b|, floor); handy in tests.
double relative_difference(double a, double b, double floor = 1e-300);

}  // namespace vlm::common
