// Aligned text-table printer for bench harnesses.
//
// The benches print the same rows/series the paper's tables and figures
// report; this keeps their output readable in a terminal and diffable in
// EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace vlm::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Row width must equal the header width.
  void add_row(std::vector<std::string> cells);

  // Convenience cell formatting.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt_int(long long value);
  static std::string fmt_percent(double fraction, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vlm::common
