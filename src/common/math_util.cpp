#include "common/math_util.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/require.h"

namespace vlm::common {

double pow_one_minus(double x, double n) {
  VLM_REQUIRE(x >= 0.0 && x < 1.0, "pow_one_minus requires x in [0, 1)");
  VLM_REQUIRE(n >= 0.0, "pow_one_minus requires a non-negative exponent");
  if (n == 0.0) return 1.0;
  return std::exp(n * std::log1p(-x));
}

double log_one_minus(double x) {
  VLM_REQUIRE(x >= 0.0 && x < 1.0, "log_one_minus requires x in [0, 1)");
  return std::log1p(-x);
}

bool is_power_of_two(std::uint64_t v) {
  return v != 0 && std::has_single_bit(v);
}

std::uint64_t ceil_pow2(std::uint64_t v) {
  VLM_REQUIRE(v >= 1, "ceil_pow2 requires v >= 1");
  VLM_REQUIRE(v <= (std::uint64_t{1} << 63), "ceil_pow2 would overflow");
  return std::bit_ceil(v);
}

unsigned ceil_log2(std::uint64_t v) {
  VLM_REQUIRE(v >= 1, "ceil_log2 requires v >= 1");
  return static_cast<unsigned>(std::bit_width(ceil_pow2(v)) - 1);
}

double relative_difference(double a, double b, double floor) {
  const double scale = std::max({std::fabs(a), std::fabs(b), floor});
  return std::fabs(a - b) / scale;
}

}  // namespace vlm::common
