// CSV emission for figure-series output.
//
// Each figure bench can additionally dump its series as CSV (via
// --csv=<path>) so plots can be regenerated offline.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace vlm::common {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws on I/O error.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  // Row width must match the header width.
  void add_row(const std::vector<std::string>& cells);

  std::size_t row_count() const { return rows_written_; }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_written_ = 0;
};

}  // namespace vlm::common
