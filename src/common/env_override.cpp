#include "common/env_override.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

namespace vlm::common {

namespace {

// Emits the unrecognized-value warning at most once per (var, value)
// pair for the life of the process (same convention as the logging and
// metrics-export resolvers).
bool first_sighting(const char* var, const char* text) {
  static std::mutex mutex;
  static auto* seen = new std::set<std::string>();  // leaked: process-lifetime
  const std::lock_guard<std::mutex> lock(mutex);
  return seen->insert(std::string(var) + "=" + text).second;
}

}  // namespace

int parse_env_enum_text(const char* var, const char* text,
                        std::span<const EnvEnumChoice> choices, int fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  for (const EnvEnumChoice& choice : choices) {
    if (std::strcmp(text, choice.name) == 0) return choice.value;
  }
  if (first_sighting(var, text)) {
    std::string accepted;
    for (const EnvEnumChoice& choice : choices) {
      if (!accepted.empty()) accepted += '|';
      accepted += choice.name;
    }
    std::fprintf(stderr,
                 "vlm: warning: %s='%s' is not one of %s; keeping the "
                 "default\n",
                 var, text, accepted.c_str());
  }
  return fallback;
}

int parse_env_enum(const char* var, std::span<const EnvEnumChoice> choices,
                   int fallback) {
  return parse_env_enum_text(var, std::getenv(var), choices, fallback);
}

}  // namespace vlm::common
