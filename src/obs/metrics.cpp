#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/trace.h"

namespace vlm::obs {

unsigned this_thread_slot() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) % kSlabSlots;
  return slot;
}

namespace detail {

void atomic_store_min(std::atomic<std::uint64_t>& target,
                      std::uint64_t value) {
  std::uint64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_store_max(std::atomic<std::uint64_t>& target,
                      std::uint64_t value) {
  std::uint64_t current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const detail::SlabCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

unsigned Histogram::bucket_of(std::uint64_t value) {
  return static_cast<unsigned>(std::bit_width(value));
}

double Histogram::bucket_lower(unsigned bucket) {
  return bucket == 0 ? 0.0 : std::exp2(static_cast<double>(bucket - 1));
}

double Histogram::bucket_upper(unsigned bucket) {
  return bucket == 0 ? 1.0 : std::exp2(static_cast<double>(bucket));
}

namespace {

// Rank-interpolated quantile over aggregated log2 buckets: find the
// bucket holding the q-th observation, then place it linearly within the
// bucket's value range. Exact when a bucket holds one distinct value's
// mass boundary; otherwise correct to within the bucket.
double bucket_quantile(const std::uint64_t (&buckets)[kHistogramBuckets],
                       std::uint64_t count, double q) {
  // Empty histogram: 0 by convention, never the top-bucket fallthrough.
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (unsigned b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double reach = static_cast<double>(cumulative + buckets[b]);
    if (reach >= target) {
      if (b == 0) return 0.0;
      const double lo = Histogram::bucket_lower(b);
      const double hi = Histogram::bucket_upper(b);
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[b]);
      return lo + std::clamp(within, 0.0, 1.0) * (hi - lo);
    }
    cumulative += buckets[b];
  }
  return Histogram::bucket_upper(kHistogramBuckets - 1);
}

double scaled(Unit unit, double raw) {
  switch (unit) {
    case Unit::kNanoseconds: return raw * 1e-9;
    case Unit::kMicro: return raw * 1e-6;
    case Unit::kNone: break;
  }
  return raw;
}

}  // namespace

HistogramSummary Histogram::summary() const {
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  std::uint64_t min = UINT64_MAX;
  std::uint64_t max = 0;
  std::uint64_t buckets[kHistogramBuckets] = {};
  for (const Slab& slab : slabs_) {
    count += slab.count.value.load(std::memory_order_relaxed);
    total += slab.total.value.load(std::memory_order_relaxed);
    min = std::min(min, slab.min.value.load(std::memory_order_relaxed));
    max = std::max(max, slab.max.value.load(std::memory_order_relaxed));
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      buckets[b] += slab.buckets[b].load(std::memory_order_relaxed);
    }
  }

  HistogramSummary out;
  out.unit = unit_;
  out.count = count;
  // Empty histogram: every statistic stays exactly 0.0 (the min slab's
  // UINT64_MAX sentinel must not leak into out.min).
  if (count == 0) return out;
  out.total = scaled(unit_, static_cast<double>(total));
  out.min = scaled(unit_, static_cast<double>(min));
  out.max = scaled(unit_, static_cast<double>(max));
  out.p50 = scaled(unit_, bucket_quantile(buckets, count, 0.50));
  out.p99 = scaled(unit_, bucket_quantile(buckets, count, 0.99));
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::unique_ptr<Counter>(new Counter))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge))
             .first;
  }
  return *it->second;
}

Info& MetricsRegistry::info(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = infos_.find(name);
  if (it == infos_.end()) {
    it = infos_.emplace(std::string(name), std::unique_ptr<Info>(new Info))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Unit unit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(unit)))
             .first;
    // The map is node-based, so the key's c_str() is stable for the
    // registry's lifetime — safe for trace events to alias.
    it->second->name_ = it->first.c_str();
  }
  return *it->second;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.info.reserve(infos_.size());
  for (const auto& [name, info] : infos_) {
    out.info.emplace_back(name, std::string(info->value()));
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->summary());
  }
  return out;
}

Histogram& phase(std::string_view name) {
  return MetricsRegistry::global().histogram(name, Unit::kNanoseconds);
}

namespace {
thread_local unsigned t_span_depth = 0;
}  // namespace

Span::Span(Histogram& phase)
    : phase_(&phase), start_(MonotonicClock::now()) {
  ++t_span_depth;
}

double Span::finish() {
  if (finished_) return 0.0;
  finished_ = true;
  --t_span_depth;
  const std::uint64_t ns = MonotonicClock::nanos_since(start_);
  phase_->observe(ns);
  // Every Span site doubles as a flight-recorder instrumentation point:
  // the phase name is registry-owned (static storage), so the trace can
  // alias it without copying.
  if (trace::enabled()) trace::emit_complete(phase_->name(), start_, ns);
  return static_cast<double>(ns) * 1e-9;
}

Span::~Span() {
  if (!finished_) finish();
}

unsigned Span::depth() { return t_span_depth; }

}  // namespace vlm::obs
