#include "obs/export.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace vlm::obs {

namespace {

// Metric names are repo-controlled ("layer/what"), but escape anyway so
// a stray quote can never corrupt the document.
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

std::string indent_str(int indent) {
  return std::string(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
}

const char* unit_suffix(Unit unit) {
  return unit == Unit::kNanoseconds ? "_seconds" : "";
}

}  // namespace

const char* export_format_name(ExportFormat format) {
  switch (format) {
    case ExportFormat::kJson: return "json";
    case ExportFormat::kPrometheus: return "prom";
    case ExportFormat::kCsv: return "csv";
  }
  return "unknown";
}

bool parse_export_format(std::string_view name, ExportFormat& format) {
  if (name == "json") {
    format = ExportFormat::kJson;
  } else if (name == "prom") {
    format = ExportFormat::kPrometheus;
  } else if (name == "csv") {
    format = ExportFormat::kCsv;
  } else {
    return false;
  }
  return true;
}

std::string to_json(const Snapshot& snapshot, std::string_view extra,
                    int indent) {
  const std::string pad = indent_str(indent);
  const std::string pad2 = pad + " ";
  std::string out = "{\n";
  if (!extra.empty()) {
    out += pad;
    out += extra;
    out += '\n';
  }

  out += pad + "\"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad2 + "\"" + json_escape(snapshot.counters[i].first) +
           "\": " + std::to_string(snapshot.counters[i].second);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n" + pad + "},\n";

  out += pad + "\"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad2 + "\"" + json_escape(snapshot.gauges[i].first) +
           "\": " + fmt_double(snapshot.gauges[i].second);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n" + pad + "},\n";

  out += pad + "\"info\": {";
  for (std::size_t i = 0; i < snapshot.info.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad2 + "\"" + json_escape(snapshot.info[i].first) + "\": \"" +
           json_escape(snapshot.info[i].second) + "\"";
  }
  out += snapshot.info.empty() ? "},\n" : "\n" + pad + "},\n";

  out += pad + "\"spans\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    const char* suffix = unit_suffix(h.unit);
    out += i == 0 ? "\n" : ",\n";
    out += pad2 + "\"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"total" + suffix +
           "\": " + fmt_double(h.total) + ", \"min" + suffix +
           "\": " + fmt_double(h.min) + ", \"max" + suffix +
           "\": " + fmt_double(h.max) + ", \"p50" + suffix +
           "\": " + fmt_double(h.p50) + ", \"p99" + suffix +
           "\": " + fmt_double(h.p99) + "}";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n" + pad + "}\n";

  out += indent_str(indent - 1) + "}";
  return out;
}

namespace {

std::string prom_name(std::string_view name) {
  std::string out = "vlm_";
  for (const char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

}  // namespace

std::string to_prometheus_text(const Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prom_name(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = prom_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + fmt_double(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.info) {
    const std::string metric = prom_name(name) + "_info";
    out += "# TYPE " + metric + " gauge\n";
    out += metric + "{value=\"" + value + "\"} 1\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string metric =
        prom_name(name) + (h.unit == Unit::kNanoseconds ? "_seconds" : "");
    out += "# TYPE " + metric + " summary\n";
    out += metric + "{quantile=\"0.5\"} " + fmt_double(h.p50) + "\n";
    out += metric + "{quantile=\"0.99\"} " + fmt_double(h.p99) + "\n";
    out += metric + "_sum " + fmt_double(h.total) + "\n";
    out += metric + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string csv_header() {
  return "period,kind,name,count,total,min,max,p50,p99,value\n";
}

std::string to_csv_rows(const Snapshot& snapshot, std::uint64_t period) {
  const std::string prefix = std::to_string(period) + ",";
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += prefix + "counter," + name + ",,,,,,," + std::to_string(value) +
           "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += prefix + "gauge," + name + ",,,,,,," + fmt_double(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.info) {
    out += prefix + "info," + name + ",,,,,,," + value + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out += prefix + "span," + name + "," + std::to_string(h.count) + "," +
           fmt_double(h.total) + "," + fmt_double(h.min) + "," +
           fmt_double(h.max) + "," + fmt_double(h.p50) + "," +
           fmt_double(h.p99) + ",\n";
  }
  return out;
}

ExportConfig resolve_export_config(std::string_view cli_path,
                                   std::string_view cli_format) {
  ExportConfig config;
  if (!cli_path.empty()) {
    config.path.assign(cli_path);
  } else if (const char* env = std::getenv("VLM_METRICS");
             env != nullptr && *env != '\0') {
    config.path = env;
  }

  std::string format_name(cli_format);
  if (format_name.empty()) {
    if (const char* env = std::getenv("VLM_METRICS_FORMAT");
        env != nullptr && *env != '\0') {
      format_name = env;
    }
  }
  if (!format_name.empty() &&
      !parse_export_format(format_name, config.format)) {
    // Same warn-once-per-value convention as VLM_KERNELS / VLM_DECODE: a
    // stale export degrades loudly to the default instead of crashing.
    static std::mutex mutex;
    static std::set<std::string>* warned = new std::set<std::string>();
    const std::lock_guard<std::mutex> lock(mutex);
    if (warned->insert(format_name).second) {
      std::fprintf(stderr,
                   "vlm: warning: metrics format '%s' is not one of "
                   "json|prom|csv; using json\n",
                   format_name.c_str());
    }
  }
  return config;
}

MetricsExportGuard::~MetricsExportGuard() {
  if (!armed_ || config_.path.empty()) return;
  const Snapshot snapshot = MetricsRegistry::global().snapshot();
  std::string content;
  switch (config_.format) {
    case ExportFormat::kJson:
      content = to_json(snapshot) + "\n";
      break;
    case ExportFormat::kPrometheus:
      content = to_prometheus_text(snapshot);
      break;
    case ExportFormat::kCsv:
      content = csv_header() + to_csv_rows(snapshot, 0);
      break;
  }
  write_text_file(config_.path, content);
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "vlm: warning: cannot write metrics to '%s'\n",
                 path.c_str());
    return false;
  }
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const bool closed = std::fclose(file) == 0;
  const bool ok = written == content.size() && closed;
  if (!ok) {
    std::fprintf(stderr, "vlm: warning: short write of metrics to '%s'\n",
                 path.c_str());
  }
  return ok;
}

}  // namespace vlm::obs
