// Human-readable stats lines shared by the CLI tools.
//
// vlm_simulate and vlm_analyze used to carry diverging printf copies of
// these; the snapshot-view structs (DecodeStats / IngestStats /
// PipelineStats) now format in exactly one place. Header-only on purpose:
// it sits above vlm_core and vlm_vcps in the layer order, so making it a
// library would invert the obs <- common <- core <- vcps dependency
// chain. Only the tools and benches include it.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "core/od_matrix.h"
#include "obs/health.h"
#include "vcps/central_server.h"
#include "vcps/simulation.h"

namespace vlm::obs {

namespace detail {
template <typename... Args>
std::string format_line(const char* format, Args... args) {
  char buffer[512];
  std::snprintf(buffer, sizeof buffer, format, args...);
  return buffer;
}
}  // namespace detail

// "ingest: ..." + "ingest pool: ..." lines for one drive_vehicles call,
// plus a per-stage breakdown line on the batch path.
inline std::string format_ingest_stats(const vcps::IngestStats& stats) {
  std::string out = detail::format_line(
      "ingest: %u workers, %s kernels, %s path, %.1f ms, %.0f vehicles/s\n",
      stats.workers, stats.kernel_isa, stats.path, stats.seconds * 1e3,
      stats.vehicles_per_second());
  if (std::string_view(stats.path) == "batch") {
    out += detail::format_line(
        "ingest stages (cpu ms across workers): materialize %.1f, hash "
        "%.1f, channel %.1f, scatter %.1f\n",
        stats.materialize_seconds * 1e3, stats.hash_seconds * 1e3,
        stats.channel_seconds * 1e3, stats.scatter_seconds * 1e3);
  }
  out += detail::format_line(
      "ingest pool: %llu dispatch(es) this run, %llu lifetime (threads "
      "reused, not respawned)\n",
      static_cast<unsigned long long>(stats.pool_dispatches),
      static_cast<unsigned long long>(stats.pool_lifetime_dispatches));
  return out;
}

// "decode: ..." line plus the blocking and pool detail lines for one
// estimate_od_matrix run.
inline std::string format_decode_stats(const core::DecodeStats& stats) {
  std::string out = detail::format_line(
      "decode: %zu pairs on %u worker(s), %s kernels, %s path, in "
      "%.1f ms — %.0f pairs/s, %.0f MiB/s scanned\n",
      stats.pairs_decoded, stats.workers, stats.kernel_isa, stats.path,
      stats.wall_seconds * 1e3, stats.pairs_per_second(),
      stats.mib_per_second());
  if (std::string_view(stats.path) == "pruned") {
    out += detail::format_line(
        "decode pruning: %zu pair(s) skipped, %zu survived (stride %zu, "
        "%s matrix) — prune %.1f ms, sweep %.1f ms, estimate %.1f ms\n",
        stats.pairs_pruned, stats.pairs_survived, stats.sample_stride,
        stats.storage, stats.prune_seconds * 1e3, stats.sweep_seconds * 1e3,
        stats.estimate_seconds * 1e3);
  }
  if (stats.tile_words > 0) {
    out += detail::format_line(
        "decode blocking: %zu-word tiles, %zu full-array DRAM passes "
        "saved\n",
        stats.tile_words, stats.dram_passes_saved);
  }
  out += detail::format_line(
      "decode pool: %llu dispatch(es) this run to %u pooled thread(s), "
      "%llu lifetime (reused, not respawned)\n",
      static_cast<unsigned long long>(stats.pool_dispatches),
      stats.pool_threads,
      static_cast<unsigned long long>(stats.pool_lifetime_dispatches));
  return out;
}

// "pipeline [scheme]: ..." line for one period's server-side counters,
// plus the decode-time health verdicts when a matrix was estimated.
inline std::string format_pipeline_stats(std::string_view scheme_name,
                                         const vcps::PipelineStats& stats) {
  std::string out = detail::format_line(
      "pipeline [%.*s]: %zu reports ingested, %zu quarantined, ingest "
      "%.1f ms\n",
      static_cast<int>(scheme_name.size()), scheme_name.data(),
      stats.reports_ingested, stats.reports_quarantined,
      stats.ingest_seconds * 1e3);
  if (stats.health.rsus_assessed > 0) {
    out += health::format_health_summary(stats.health);
  }
  return out;
}

}  // namespace vlm::obs
