#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace vlm::obs::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// One ring slot. The owning thread writes the three fields relaxed and
// publishes them with a release store of the ring head; a drain that
// races with the writer discards any slot the second head read proves
// overwritten, so a torn slot is never exported.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> duration_ns{0};
};

struct Ring {
  explicit Ring(std::uint64_t tid_, std::size_t capacity_)
      : tid(tid_), capacity(capacity_), slots(new Slot[capacity_]) {}

  const std::uint64_t tid;
  const std::size_t capacity;  // power of two
  std::atomic<std::uint64_t> head{0};
  std::unique_ptr<Slot[]> slots;
  // Written by the owning thread, read by drain — both under the
  // registry mutex (naming is a cold path).
  std::string thread_name;
};

// Global ring registry. Rings are never destroyed (threads may exit
// while their events are still undrained), so the vector only grows;
// it is intentionally leaked like MetricsRegistry::global().
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Ring>> rings;
  std::uint64_t next_tid = 1;
  std::size_t capacity = kDefaultRingCapacity;
  // Bumped by reset_for_testing() so cached thread-local ring pointers
  // from a previous generation are abandoned, not dereferenced.
  std::uint64_t generation = 0;
  bool env_capacity_applied = false;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

// The epoch all timestamps are relative to. Latched on first use (the
// first enable), so exported ts values start near zero.
MonotonicClock::TimePoint epoch() {
  static const MonotonicClock::TimePoint t0 = MonotonicClock::now();
  return t0;
}

thread_local Ring* t_ring = nullptr;
thread_local std::uint64_t t_ring_generation = 0;
// Name requested before this thread's ring existed; applied (and freed)
// at ring creation, or freed at thread exit if no ring was ever made.
// The wrapper nulls the pointer in its destructor so a straggler ring
// creation during thread teardown sees "no pending name" instead of a
// destroyed string.
struct PendingName {
  std::string* value = nullptr;
  ~PendingName() {
    delete value;
    value = nullptr;
  }
};
thread_local PendingName t_pending_name;

std::size_t round_capacity(std::size_t slots) {
  std::size_t cap = 16;
  while (cap < slots && cap < (std::size_t{1} << 30)) cap <<= 1;
  return cap;
}

// The calling thread's ring, created on first use. Cold path: takes the
// registry mutex once per (thread, generation).
Ring& this_thread_ring() {
  Registry& reg = registry();
  if (t_ring != nullptr && t_ring_generation == reg.generation) {
    return *t_ring;
  }
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto ring = std::make_unique<Ring>(reg.next_tid++, reg.capacity);
  if (t_pending_name.value != nullptr) {
    ring->thread_name = std::move(*t_pending_name.value);
    delete t_pending_name.value;
    t_pending_name.value = nullptr;
  }
  t_ring = ring.get();
  t_ring_generation = reg.generation;
  reg.rings.push_back(std::move(ring));
  return *t_ring;
}

}  // namespace

void set_enabled(bool enabled) {
  if (enabled) {
    (void)epoch();  // fix the timestamp origin before any event
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    if (!reg.env_capacity_applied) {
      reg.env_capacity_applied = true;
      if (const char* env = std::getenv("VLM_TRACE_CAPACITY");
          env != nullptr && *env != '\0') {
        const long long parsed = std::atoll(env);
        if (parsed > 0) {
          reg.capacity = round_capacity(static_cast<std::size_t>(parsed));
        } else {
          std::fprintf(stderr,
                       "vlm: warning: ignoring VLM_TRACE_CAPACITY='%s' "
                       "(expected a positive slot count)\n",
                       env);
        }
      }
    }
  }
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

void set_capacity(std::size_t slots) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.capacity = round_capacity(slots);
  reg.env_capacity_applied = true;  // an explicit request beats the env
}

void set_thread_name(std::string name) {
  Registry& reg = registry();
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    if (t_ring != nullptr && t_ring_generation == reg.generation) {
      t_ring->thread_name = std::move(name);
      return;
    }
  }
  // No ring yet: remember the name for when one is created.
  if (t_pending_name.value == nullptr) t_pending_name.value = new std::string();
  *t_pending_name.value = std::move(name);
}

std::uint64_t now_ns() { return MonotonicClock::nanos_since(epoch()); }

void emit_complete(const char* name, MonotonicClock::TimePoint start,
                   std::uint64_t duration_ns) {
  if (!enabled()) return;
  Ring& ring = this_thread_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[head & (ring.capacity - 1)];
  const auto since_epoch = start - epoch();
  const auto start_count =
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch)
          .count();
  slot.start_ns.store(
      start_count > 0 ? static_cast<std::uint64_t>(start_count) : 0,
      std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  ring.head.store(head + 1, std::memory_order_release);
}

std::vector<ThreadTrace> drain() {
  Registry& reg = registry();
  std::vector<ThreadTrace> out;
  const std::lock_guard<std::mutex> lock(reg.mutex);
  out.reserve(reg.rings.size());
  for (const std::unique_ptr<Ring>& ring : reg.rings) {
    ThreadTrace trace;
    trace.tid = ring->tid;
    trace.thread_name = ring->thread_name.empty()
                            ? "thread-" + std::to_string(ring->tid)
                            : ring->thread_name;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t begin = head > ring->capacity ? head - ring->capacity
                                                      : 0;
    trace.events.reserve(static_cast<std::size_t>(head - begin));
    for (std::uint64_t i = begin; i < head; ++i) {
      const Slot& slot = ring->slots[i & (ring->capacity - 1)];
      TraceEvent event;
      event.name = slot.name.load(std::memory_order_relaxed);
      event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      event.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
      if (event.name != nullptr) trace.events.push_back(event);
    }
    // A writer may have lapped us mid-read: discard everything a second
    // head read proves overwritten. The discard index is relative to
    // `begin`, so only the (possibly torn) oldest entries go.
    const std::uint64_t head2 = ring->head.load(std::memory_order_acquire);
    const std::uint64_t begin2 =
        head2 > ring->capacity ? head2 - ring->capacity : 0;
    if (begin2 > begin) {
      const std::size_t torn = static_cast<std::size_t>(
          std::min<std::uint64_t>(begin2 - begin, trace.events.size()));
      trace.events.erase(trace.events.begin(),
                         trace.events.begin() + static_cast<std::ptrdiff_t>(torn));
    }
    trace.dropped = std::max(begin, begin2);
    // Completion order inverts nested scopes; the timeline wants start
    // order. stable_sort keeps equal-start nesting (outer emitted last,
    // and Perfetto nests equal-ts events by emission order) deterministic.
    std::stable_sort(trace.events.begin(), trace.events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.start_ns < b.start_ns;
                     });
    out.push_back(std::move(trace));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) {
              return a.tid < b.tid;
            });
  return out;
}

namespace {

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string to_chrome_json(const std::vector<ThreadTrace>& threads) {
  // ts/dur are microseconds (the Trace Event Format unit); three
  // decimals keep nanosecond resolution.
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[160];
  for (const ThreadTrace& thread : threads) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof buf,
                  " {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                  "\"tid\": %llu, \"ts\": 0, \"dur\": 0, \"args\": {\"name\": "
                  "\"",
                  static_cast<unsigned long long>(thread.tid));
    out += buf;
    append_json_escaped(out, thread.thread_name);
    out += "\"}}";
    if (thread.dropped > 0) {
      out += ",\n";
      std::snprintf(
          buf, sizeof buf,
          " {\"name\": \"trace_dropped_events\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": %llu, \"ts\": 0, \"dur\": 0, \"args\": {\"dropped\": "
          "%llu}}",
          static_cast<unsigned long long>(thread.tid),
          static_cast<unsigned long long>(thread.dropped));
      out += buf;
    }
    for (const TraceEvent& event : thread.events) {
      out += ",\n {\"name\": \"";
      append_json_escaped(out, event.name);
      std::snprintf(buf, sizeof buf,
                    "\", \"ph\": \"X\", \"pid\": 1, \"tid\": %llu, "
                    "\"ts\": %.3f, \"dur\": %.3f}",
                    static_cast<unsigned long long>(thread.tid),
                    static_cast<double>(event.start_ns) * 1e-3,
                    static_cast<double>(event.duration_ns) * 1e-3);
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string content = to_chrome_json(drain());
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "vlm: warning: cannot write trace to '%s'\n",
                 path.c_str());
    return false;
  }
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const bool ok = written == content.size() && std::fclose(file) == 0;
  if (!ok) {
    std::fprintf(stderr, "vlm: warning: short write of trace to '%s'\n",
                 path.c_str());
  }
  return ok;
}

std::string resolve_trace_path(std::string_view cli_path) {
  if (!cli_path.empty()) return std::string(cli_path);
  if (const char* env = std::getenv("VLM_TRACE");
      env != nullptr && *env != '\0') {
    return env;
  }
  return {};
}

void reset_for_testing() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.rings.clear();
  reg.next_tid = 1;
  reg.capacity = kDefaultRingCapacity;
  reg.env_capacity_applied = true;  // tests control capacity explicitly
  ++reg.generation;
}

}  // namespace vlm::obs::trace
