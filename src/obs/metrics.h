// Process-wide metrics registry: named counters, gauges, and
// log2-bucketed histograms, plus RAII Span timers for the per-period
// phase trace.
//
// Design constraints, in order:
//   - Hot-path writes are wait-free and TSan-clean: every metric is a
//     slab of cache-line-padded relaxed atomics, one slot per thread
//     (hashed), so concurrent writers never share a line and never take
//     a lock. Aggregation happens only at snapshot time.
//   - Deterministic keys: a metric's identity is its name alone — no
//     thread ids, worker counts, or pointers leak into the key set, so a
//     run with 1 worker and a run with 8 export identical schemas.
//   - Zero cost when unused: nothing registers anything until an
//     instrumented path actually executes, and an unused registry is a
//     few empty maps.
//
// Naming scheme (see docs/METRICS.md for the full inventory):
//   <layer>/<what>[/<label>] — e.g. "ingest/vehicles",
//   "server/quarantine/zero_count_anomaly". Span phases reuse the same
//   scheme ("period/ingest", "decode/tile_sweep"); a span's duration
//   lands in a nanosecond-unit histogram under the phase name.
//
// The registry itself is layer-free (standard library only) so every
// library in the repo — including vlm_common — can depend on it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"

namespace vlm::obs {

// Slots per metric slab. Threads hash onto slots; 16 lines bound the
// footprint while keeping collisions rare for the worker counts the
// pools actually run (hardware_concurrency on commodity hosts).
inline constexpr unsigned kSlabSlots = 16;

// Histogram bucket b holds values whose bit width is b: bucket 0 is the
// value 0, bucket b >= 1 covers [2^(b-1), 2^b). 65 buckets span the full
// uint64 range.
inline constexpr unsigned kHistogramBuckets = 65;

// Stable slot for the calling thread, in [0, kSlabSlots).
unsigned this_thread_slot();

namespace detail {
struct alignas(64) SlabCell {
  std::atomic<std::uint64_t> value{0};
};

void atomic_store_min(std::atomic<std::uint64_t>& target, std::uint64_t value);
void atomic_store_max(std::atomic<std::uint64_t>& target, std::uint64_t value);
}  // namespace detail

// Monotone event count. add() is one relaxed fetch_add on a private
// cache line; value() sums the slab.
class Counter {
 public:
  void add(std::uint64_t n) {
    cells_[this_thread_slot()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  std::uint64_t value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  detail::SlabCell cells_[kSlabSlots];
};

// Last-write-wins scalar (thread counts, tile sizes, config echoes).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

// Static-string annotation (kernel ISA, decode path). The pointer must
// outlive the registry — pass string literals or other static storage.
class Info {
 public:
  void set(const char* value) {
    value_.store(value, std::memory_order_relaxed);
  }
  const char* value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Info() = default;
  std::atomic<const char*> value_{""};
};

// What a histogram's raw uint64 observations mean; exporters scale
// nanosecond histograms to seconds and micro (parts-per-million, used
// for dimensionless ratios like fill fractions) histograms to units.
enum class Unit { kNone, kNanoseconds, kMicro };

// Aggregated view of one histogram, already scaled to export units
// (seconds for Unit::kNanoseconds, units for Unit::kMicro, raw values
// otherwise). p50/p99 are log2-bucket interpolations: exact to within
// the observation's power-of-two bucket, which is the right fidelity
// for latency tails.
//
// Empty-histogram convention (pinned by MetricsTest.EmptySummary): with
// count == 0 every statistic — total, min, max, p50, p99 — is exactly
// 0.0, never a sentinel like +inf or UINT64_MAX leaking from the
// internal accumulators.
struct HistogramSummary {
  Unit unit = Unit::kNone;
  std::uint64_t count = 0;
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

// Log2-bucketed histogram with exact count/total/min/max. observe() is
// a handful of relaxed atomic ops on the calling thread's private slab.
class Histogram {
 public:
  void observe(std::uint64_t value) {
    Slab& slab = slabs_[this_thread_slot()];
    slab.count.value.fetch_add(1, std::memory_order_relaxed);
    slab.total.value.fetch_add(value, std::memory_order_relaxed);
    detail::atomic_store_min(slab.min.value, value);
    detail::atomic_store_max(slab.max.value, value);
    slab.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }

  Unit unit() const { return unit_; }
  // The registry key this histogram was registered under ("" for none).
  // Stable storage: the registry's node-based map owns the string, so
  // the pointer is valid for the registry's lifetime — trace events
  // reference it without copying.
  const char* name() const { return name_; }
  HistogramSummary summary() const;

  // Bucket index for a raw value (bit width; see kHistogramBuckets).
  static unsigned bucket_of(std::uint64_t value);
  // Inclusive-lower / exclusive-upper value bounds of a bucket, as
  // doubles (bucket 64's upper bound exceeds uint64).
  static double bucket_lower(unsigned bucket);
  static double bucket_upper(unsigned bucket);

 private:
  friend class MetricsRegistry;
  explicit Histogram(Unit unit) : unit_(unit) {}

  struct Slab {
    detail::SlabCell count;
    detail::SlabCell total;
    detail::SlabCell min{{UINT64_MAX}};
    detail::SlabCell max;
    std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
  };

  Unit unit_;
  const char* name_ = "";
  Slab slabs_[kSlabSlots];
};

// Point-in-time aggregation of a registry, sorted by name within each
// section (the registry stores metrics in ordered maps, so export order
// is stable across runs and platforms).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, std::string>> info;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;
};

// Named-metric registry. Handles returned by counter()/gauge()/
// histogram()/info() are valid for the registry's lifetime; lookups take
// a mutex, so call sites cache the reference (function-local static for
// the global registry) rather than re-resolving per event.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every instrumented layer writes to.
  // Intentionally leaked: worker threads may observe into it up to
  // process teardown.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Info& info(std::string_view name);
  Histogram& histogram(std::string_view name, Unit unit = Unit::kNone);

  Snapshot snapshot() const;

 private:
  template <typename T>
  using NameMap = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  mutable std::mutex mutex_;
  NameMap<Counter> counters_;
  NameMap<Gauge> gauges_;
  NameMap<Info> infos_;
  NameMap<Histogram> histograms_;
};

// Phase histogram (nanosecond unit) in the global registry — the target
// a Span records into. Cache the reference at the call site.
Histogram& phase(std::string_view name);

// RAII scoped timer. Construction starts the clock; destruction (or an
// explicit finish()) records the elapsed nanoseconds into the phase
// histogram. Spans nest: depth() reports how many are open on the
// calling thread, and nested phases simply record under their own names
// — the naming scheme ("period/ingest", "ingest/shard_merge") carries
// the hierarchy, so traces from different worker counts stay key-equal.
class Span {
 public:
  explicit Span(Histogram& phase);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  // Stops the span now, records it, and returns the elapsed seconds
  // (the destructor then becomes a no-op). For call sites that feed the
  // same duration into a legacy stats struct.
  double finish();

  // Open spans on the calling thread, this one included.
  static unsigned depth();

 private:
  Histogram* phase_;
  MonotonicClock::TimePoint start_;
  bool finished_ = false;
};

}  // namespace vlm::obs
