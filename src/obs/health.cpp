#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "core/accuracy_model.h"
#include "obs/metrics.h"

namespace vlm::obs::health {

namespace {

// Dimensionless ratios land in micro-unit histograms: raw observations
// are parts-per-million, exporters scale back to units.
std::uint64_t to_micro(double ratio) {
  if (!(ratio > 0.0)) return 0;
  const double micro = ratio * 1e6;
  if (micro >= 9e18) return UINT64_MAX;
  return static_cast<std::uint64_t>(std::llround(micro));
}

// The two metric groups register lazily and independently: a run that
// closes periods but never decodes must not export decode-only
// histograms (CI asserts every exported span histogram has count > 0).
struct RsuGroup {
  Counter& assessed;
  Counter& saturated;
  Counter& drifted;
  Histogram& fill_fraction;
  Gauge& fill_fraction_max;
  Gauge& load_factor_min;
};

RsuGroup& rsu_group() {
  MetricsRegistry& reg = MetricsRegistry::global();
  static RsuGroup* group = new RsuGroup{
      reg.counter("health/rsus_assessed"),
      reg.counter("health/rsu_saturated"),
      reg.counter("health/load_factor_drift"),
      reg.histogram("health/fill_fraction", Unit::kMicro),
      reg.gauge("health/fill_fraction_max"),
      reg.gauge("health/load_factor_min"),
  };
  return *group;
}

struct PairGroup {
  Counter& assessed;
  Counter& degraded;
  Histogram& predicted_rel_err;
  Gauge& predicted_rel_err_max;
};

PairGroup& pair_group() {
  MetricsRegistry& reg = MetricsRegistry::global();
  static PairGroup* group = new PairGroup{
      reg.counter("health/pairs_assessed"),
      reg.counter("health/pairs_degraded"),
      reg.histogram("health/predicted_rel_err", Unit::kMicro),
      reg.gauge("health/predicted_rel_err_max"),
  };
  return *group;
}

}  // namespace

HealthSummary assess_rsus(std::span<const core::RsuState> states,
                          const HealthOptions& options,
                          std::vector<RsuHealth>* out_per_rsu) {
  std::vector<const core::RsuState*> pointers;
  pointers.reserve(states.size());
  for (const core::RsuState& state : states) pointers.push_back(&state);
  return assess_rsus(std::span<const core::RsuState* const>(pointers), options,
                     out_per_rsu);
}

HealthSummary assess_rsus(std::span<const core::RsuState* const> states,
                          const HealthOptions& options,
                          std::vector<RsuHealth>* out_per_rsu) {
  HealthSummary summary;
  if (out_per_rsu != nullptr) {
    out_per_rsu->clear();
    out_per_rsu->reserve(states.size());
  }
  RsuGroup& metrics = rsu_group();
  double min_load_factor = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < states.size(); ++i) {
    const core::RsuState& state = *states[i];
    RsuHealth rsu;
    rsu.rsu = i;
    rsu.fill_fraction = 1.0 - state.zero_fraction();
    rsu.load_factor = state.load_factor();
    const bool has_traffic = state.counter() > 0;
    // Saturation: the zero fraction V_x is the observable Eq. 5 takes
    // the log of; at or below the threshold the MLE is numerically
    // degenerate regardless of the true volume.
    rsu.saturated =
        has_traffic && state.zero_fraction() <= options.saturation_zero_fraction;
    rsu.drifted = has_traffic && options.target_load_factor > 0.0 &&
                  (rsu.load_factor < options.target_load_factor /
                                         options.load_factor_drift_tolerance ||
                   rsu.load_factor > options.target_load_factor *
                                         options.load_factor_drift_tolerance);

    ++summary.rsus_assessed;
    summary.rsus_saturated += rsu.saturated ? 1 : 0;
    summary.rsus_drifted += rsu.drifted ? 1 : 0;
    summary.max_fill_fraction =
        std::max(summary.max_fill_fraction, rsu.fill_fraction);
    if (has_traffic) min_load_factor = std::min(min_load_factor, rsu.load_factor);

    metrics.fill_fraction.observe(to_micro(rsu.fill_fraction));
    if (out_per_rsu != nullptr) out_per_rsu->push_back(rsu);
  }
  summary.min_load_factor =
      std::isfinite(min_load_factor) ? min_load_factor : 0.0;

  metrics.assessed.add(summary.rsus_assessed);
  metrics.saturated.add(summary.rsus_saturated);
  metrics.drifted.add(summary.rsus_drifted);
  metrics.fill_fraction_max.set(summary.max_fill_fraction);
  metrics.load_factor_min.set(summary.min_load_factor);
  return summary;
}

void assess_pairs(std::span<const core::RsuState> states,
                  const core::OdMatrix& matrix, const HealthOptions& options,
                  HealthSummary& summary) {
  PairGroup& metrics = pair_group();
  const std::size_t k = matrix.rsu_count();
  double rel_err_sum = 0.0;
  for (std::size_t a = 0; a + 1 < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      if (!matrix.measured(a, b)) continue;
      const core::EstimateInterval& cell = matrix.at(a, b);
      const double n_x = static_cast<double>(states[a].counter());
      const double n_y = static_cast<double>(states[b].counter());
      const double n_min = std::min(n_x, n_y);
      if (cell.degraded || cell.n_c_hat <= 0.0 || n_min <= 0.0) {
        ++summary.pairs_degraded;
        continue;
      }
      core::PairScenario scenario;
      scenario.n_x = n_x;
      scenario.n_y = n_y;
      // The raw MLE can exceed min(n_x, n_y) by sampling noise; the
      // model's domain requires n_c <= min, so evaluate at the boundary.
      scenario.n_c = std::min(cell.n_c_hat, n_min);
      scenario.m_x = states[a].array_size();
      scenario.m_y = states[b].array_size();
      scenario.s = options.s;
      double rel_err = 0.0;
      try {
        rel_err = core::AccuracyModel::predict(
                      scenario, core::VarianceModel::kPaperBinomial)
                      .stddev_ratio;
      } catch (const std::invalid_argument&) {
        ++summary.pairs_degraded;
        continue;
      }
      if (!std::isfinite(rel_err)) {
        ++summary.pairs_degraded;
        continue;
      }
      ++summary.pairs_assessed;
      rel_err_sum += rel_err;
      summary.max_predicted_rel_err =
          std::max(summary.max_predicted_rel_err, rel_err);
      metrics.predicted_rel_err.observe(to_micro(rel_err));
    }
  }
  summary.mean_predicted_rel_err =
      summary.pairs_assessed > 0
          ? rel_err_sum / static_cast<double>(summary.pairs_assessed)
          : 0.0;
  metrics.assessed.add(summary.pairs_assessed);
  metrics.degraded.add(summary.pairs_degraded);
  metrics.predicted_rel_err_max.set(summary.max_predicted_rel_err);
}

std::string format_health_summary(const HealthSummary& summary) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "health: %zu RSU(s), %zu saturated, %zu drifted, max fill "
                "%.3f, min load factor %.2f",
                summary.rsus_assessed, summary.rsus_saturated,
                summary.rsus_drifted, summary.max_fill_fraction,
                summary.min_load_factor);
  std::string out = buffer;
  if (summary.pairs_assessed > 0 || summary.pairs_degraded > 0) {
    std::snprintf(buffer, sizeof buffer,
                  "; %zu pair(s) assessed, %zu degraded, predicted rel err "
                  "max %.3f mean %.3f",
                  summary.pairs_assessed, summary.pairs_degraded,
                  summary.max_predicted_rel_err,
                  summary.mean_predicted_rel_err);
    out += buffer;
  }
  out += '\n';
  return out;
}

}  // namespace vlm::obs::health
