// Estimator-health telemetry: continuous self-diagnostics for the VLM
// measurement pipeline.
//
// The estimator fails silently: an over-saturated bit array (n >> m)
// still produces numbers — Eq. 5's MLE just degenerates as the zero
// count approaches 0, and every OD estimate decoded from that array is
// corrupted without any crash or test failure. Likewise a deployment
// whose realized load factor f = m/n drifts from the sizing plan
// (m = 2^ceil(log2(n̄·f̄)), src/core/sizing.*) operates outside the
// regime the paper's Section V accuracy model was budgeted for. This
// module evaluates both conditions at every period close and decode,
// plus the accuracy model's predicted relative error per decoded pair
// (Eq. 34 variance / Eq. 36 stddev ratio), and publishes them as
// health/* metrics through the standard exporters:
//
//   health/rsu_saturated        counter  RSU-periods with fill above
//                                        the saturation threshold
//   health/load_factor_drift    counter  RSU-periods whose f = m/n left
//                                        the sizing plan's band
//   health/rsus_assessed        counter  RSU-periods examined
//   health/fill_fraction        histogram (micro) per-RSU fill fraction
//   health/fill_fraction_max    gauge    worst fill this assessment
//   health/load_factor_min      gauge    tightest (smallest) f = m/n
//   health/predicted_rel_err    histogram (micro) per-pair predicted
//                                        relative error (decode only)
//   health/predicted_rel_err_max gauge   worst predicted pair rel err
//   health/pairs_assessed       counter  pairs run through the model
//   health/pairs_degraded       counter  pairs skipped: saturated /
//                                        zero-volume / model rejected
//
// The period-close metrics and the decode metrics register lazily as
// two independent groups: a simulate run that never decodes exports no
// decode-only histograms (every exported histogram must have observations
// — CI's span smoke asserts count > 0 across the board).
//
// Layering: this sits ABOVE vlm_core (it evaluates core::AccuracyModel
// against live core::RsuState), so it is its own library target
// (vlm_obs_health) rather than part of layer-free vlm_obs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/od_matrix.h"
#include "core/rsu_state.h"

namespace vlm::obs::health {

// Thresholds for the period-close assessment.
struct HealthOptions {
  // Saturation flag: zero_fraction <= this means Eq. 5's denominator
  // ln(V_y) is within noise of ln(0) and the MLE is unusable. 0.05
  // corresponds to a realized load factor around 1/3 — far beyond any
  // sizing the paper's model budgets for.
  double saturation_zero_fraction = 0.05;
  // Sizing plan's target load factor f̄ (Scheme::target_load_factor()).
  // 0 disables the drift check (schemes without a sizing plan, e.g. FBM).
  double target_load_factor = 0.0;
  // Drift flag: realized f outside [f̄ / tol, f̄ · tol]. The sizing rule
  // rounds m up to a power of two, so realized f legitimately sits up to
  // 2× above target; the default band only fires on genuine demand
  // surprises, not rounding.
  double load_factor_drift_tolerance = 2.0;
  // Logical bit-array size s for the accuracy model (VlmScheme's s).
  std::uint32_t s = 64;
};

// One RSU's period-close verdict.
struct RsuHealth {
  std::size_t rsu = 0;
  double fill_fraction = 0.0;  // 1 − V_x, the fraction of bits set
  double load_factor = 0.0;    // realized m/n (inf when n == 0)
  bool saturated = false;
  bool drifted = false;
};

// Aggregate of one assessment (one period close, or one decode).
struct HealthSummary {
  std::size_t rsus_assessed = 0;
  std::size_t rsus_saturated = 0;
  std::size_t rsus_drifted = 0;
  double max_fill_fraction = 0.0;
  double min_load_factor = 0.0;  // 0 when nothing was assessed
  // Decode-side (zero unless assess_pairs ran):
  std::size_t pairs_assessed = 0;
  std::size_t pairs_degraded = 0;
  double max_predicted_rel_err = 0.0;
  double mean_predicted_rel_err = 0.0;

  bool any_warning() const { return rsus_saturated > 0 || rsus_drifted > 0; }
};

// Per-RSU saturation / load-factor-drift check. Publishes the
// period-close metric group to the global registry and returns the
// aggregate. `out_per_rsu`, when non-null, receives one entry per RSU
// (for the CLI health tables).
HealthSummary assess_rsus(std::span<const core::RsuState> states,
                          const HealthOptions& options,
                          std::vector<RsuHealth>* out_per_rsu = nullptr);

// Same, over non-owning pointers — for callers (the simulation's RSU
// fleet) whose states live inside larger objects; copying a state would
// copy its whole bit array.
HealthSummary assess_rsus(std::span<const core::RsuState* const> states,
                          const HealthOptions& options,
                          std::vector<RsuHealth>* out_per_rsu = nullptr);

// Per-pair predicted relative error: for every measured pair of the
// decoded matrix, evaluates the paper's Section V model
// (VarianceModel::kPaperBinomial, Eq. 34/36) at the estimated overlap
// and publishes the decode metric group. Pairs whose estimate is
// degraded, zero, or outside the model's domain count as degraded and
// are skipped. Extends `summary` in place.
void assess_pairs(std::span<const core::RsuState> states,
                  const core::OdMatrix& matrix, const HealthOptions& options,
                  HealthSummary& summary);

// One-line summary for the CLI stats output, e.g.
//   "health             rsus 16  saturated 3  drifted 0  max_fill 0.993"
// with the pair fields appended when pairs were assessed.
std::string format_health_summary(const HealthSummary& summary);

}  // namespace vlm::obs::health
