// Flight-recorder tracing: per-thread, wait-free rings of timestamped
// complete events, drained into Chrome Trace Event Format JSON that
// Perfetto / chrome://tracing load directly.
//
// The aggregate metrics in obs/metrics.h answer "how much, how long on
// average"; this module answers "when, on which thread" — a zoomable
// per-worker timeline of ingest sub-slices, decode tiles, pool
// queue-waits, and period boundaries from a single run.
//
// Design constraints, in order:
//   - Near-zero cost when disabled: tracing is compiled in but off by
//     default, and the disabled path is ONE relaxed atomic load per
//     instrumentation point (bench_encode_throughput measures and gates
//     the bound). No ring is allocated until a thread actually emits
//     while tracing is enabled.
//   - Wait-free emit: each thread owns a fixed-capacity power-of-two
//     ring of relaxed-atomic slots and is its only writer; publishing
//     an event is a handful of relaxed stores plus one release store of
//     the head. No locks, no allocation, TSan-clean against a
//     concurrent drain.
//   - Bounded memory: when a ring wraps, the oldest events are
//     overwritten and counted as dropped — a flight recorder keeps the
//     latest window, never stalls the instrumented thread.
//   - Static-string names only: an event's name must outlive the
//     registry (string literals, or the registry-owned histogram names
//     the Span piggyback uses), so emit never copies.
//
// Wiring: obs::Span::finish() emits a trace event automatically for
// every phase histogram when tracing is enabled, so every existing Span
// site is already on the timeline; TraceScope covers the sites that are
// not Spans (per-sub-slice pipeline stages, decode tiles, queue waits).
// The registry is process-global, like MetricsRegistry: rings outlive
// their threads so a drain after a pool quiesces still sees everything.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"

namespace vlm::obs::trace {

namespace detail {
// The one branch every disabled instrumentation point pays.
extern std::atomic<bool> g_enabled;
}  // namespace detail

// Default slots per thread ring (power of two). ~64Ki events x 24 bytes
// is ~1.5 MiB per traced thread — hours of period-level events, minutes
// of per-sub-slice events.
inline constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Turns tracing on or off. The first enable fixes the trace epoch (all
// timestamps are nanoseconds since it) and latches the ring capacity;
// events emitted while disabled are discarded at the emit site.
void set_enabled(bool enabled);

// Slots per ring for rings created AFTER this call (existing rings keep
// their size). Rounded up to a power of two, floored at 16. The
// VLM_TRACE_CAPACITY environment variable, when set, overrides the
// default at first enable.
void set_capacity(std::size_t slots);

// Names the calling thread's track in the exported timeline ("main",
// "pool-worker-3"). Safe to call whether or not tracing is enabled or a
// ring exists yet; unnamed threads export as "thread-<tid>".
void set_thread_name(std::string name);

// Nanoseconds since the trace epoch (0 before the first enable).
std::uint64_t now_ns();

// Records one complete event on the calling thread's ring. `name` must
// have static storage duration. No-op when tracing is disabled.
void emit_complete(const char* name, MonotonicClock::TimePoint start,
                   std::uint64_t duration_ns);

// RAII event: construction stamps the start, destruction emits the
// event. The enabled() check happens at construction, so a disabled
// scope costs one relaxed load and two member writes.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (enabled()) {
      name_ = name;
      start_ = MonotonicClock::now();
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (name_ != nullptr) {
      emit_complete(name_, start_, MonotonicClock::nanos_since(start_));
    }
  }

 private:
  const char* name_ = nullptr;
  MonotonicClock::TimePoint start_;
};

// One drained event: start/duration in nanoseconds since the epoch.
struct TraceEvent {
  const char* name = "";
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

// One thread's drained ring, events sorted by start time (emission
// order is completion order, which inverts nested scopes).
struct ThreadTrace {
  std::uint64_t tid = 0;
  std::string thread_name;
  std::uint64_t dropped = 0;  // events overwritten before this drain
  std::vector<TraceEvent> events;
};

// Snapshot of every ring in the process, sorted by tid. Safe to call
// while other threads emit: events published after the per-ring head
// read are simply not included, and slots overwritten mid-read are
// discarded via a second head read.
std::vector<ThreadTrace> drain();

// Chrome Trace Event Format: {"traceEvents": [...]} with one "M"
// thread_name metadata event per thread and one "X" complete event per
// drained event (ts/dur in microseconds). Every event carries
// name/ph/ts/dur/pid/tid, and events are sorted by ts within each tid.
std::string to_chrome_json(const std::vector<ThreadTrace>& threads);

// drain() + to_chrome_json() + write to `path`. Returns false (with a
// warning on stderr) if the file cannot be written.
bool write_chrome_trace(const std::string& path);

// Combines a CLI --trace flag (wins when non-empty) with VLM_TRACE.
// Empty result means tracing stays off.
std::string resolve_trace_path(std::string_view cli_path);

// Drops every ring and disables tracing; new emits build fresh rings.
// Only tests call this — rings are process-lifetime otherwise.
void reset_for_testing();

}  // namespace vlm::obs::trace
