// Snapshot exporters: JSON (stable key order), Prometheus text
// exposition, and a per-period CSV time series, plus the VLM_METRICS /
// VLM_METRICS_FORMAT environment plumbing the CLI tools share.
//
//   VLM_METRICS=<path>            write a snapshot here at tool exit
//   VLM_METRICS_FORMAT=json|prom|csv   output format (default json;
//                                 unrecognized values warn once to
//                                 stderr and fall back, mirroring the
//                                 VLM_KERNELS convention)
//
// A --metrics <path> CLI flag, when present, takes precedence over the
// environment path; the format override applies either way.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace vlm::obs {

enum class ExportFormat { kJson, kPrometheus, kCsv };

const char* export_format_name(ExportFormat format);

// Parses "json" | "prom" | "csv". Returns false (and leaves `format`
// untouched) on anything else.
bool parse_export_format(std::string_view name, ExportFormat& format);

// One JSON object with sections "counters", "gauges", "info", "spans",
// every section sorted by metric name. `extra` — already-serialized
// members ("\"period\": 1,\n") — is spliced in as the object's first
// fields so callers can annotate without re-parsing. Span entries carry
// count/total/min/max/p50/p99, suffixed _seconds for nanosecond-unit
// histograms.
std::string to_json(const Snapshot& snapshot, std::string_view extra = {},
                    int indent = 1);

// Prometheus text exposition: counters as vlm_<name>_total, gauges as
// vlm_<name>, histograms as summary-style count/sum/quantile lines,
// info as vlm_<name>_info{value="..."} 1. '/' and other non-identifier
// characters in names become '_'.
std::string to_prometheus_text(const Snapshot& snapshot);

// CSV time series: csv_header() once, then one to_csv_rows() block per
// period. Rows are "period,kind,name,count,total,min,max,p50,p99,value".
std::string csv_header();
std::string to_csv_rows(const Snapshot& snapshot, std::uint64_t period);

// Resolved export destination after combining a CLI --metrics flag with
// the environment. `path` empty means metrics export is off.
struct ExportConfig {
  std::string path;
  ExportFormat format = ExportFormat::kJson;
};

// Combines `cli_path` (wins when non-empty) with VLM_METRICS, and
// `cli_format` (wins when non-empty) with VLM_METRICS_FORMAT.
// Unrecognized format names warn once to stderr and keep json.
ExportConfig resolve_export_config(std::string_view cli_path,
                                   std::string_view cli_format);

// Writes `content` to `path` (truncating). Returns false and warns on
// stderr if the file cannot be written.
bool write_text_file(const std::string& path, std::string_view content);

// RAII backstop for the CLI tools' --metrics flush: construct it as soon
// as the export destination is resolved, and if the tool leaves scope
// without reaching its rich success-path write (bad flag, unreadable
// archive, any exception), the destructor exports a plain snapshot of
// the global registry so whatever was measured before the failure is
// not lost. Call disarm() after the success-path write to make the
// destructor a no-op. A guard with an empty path never writes.
class MetricsExportGuard {
 public:
  explicit MetricsExportGuard(ExportConfig config)
      : config_(std::move(config)) {}
  MetricsExportGuard(const MetricsExportGuard&) = delete;
  MetricsExportGuard& operator=(const MetricsExportGuard&) = delete;
  ~MetricsExportGuard();

  void disarm() { armed_ = false; }
  const ExportConfig& config() const { return config_; }

 private:
  ExportConfig config_;
  bool armed_ = true;
};

}  // namespace vlm::obs
