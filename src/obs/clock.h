// The one wall-clock the repo times with.
//
// Every phase timer, span, and throughput counter reads this steady
// (monotonic) clock, so durations from different layers are comparable
// and never jump with NTP adjustments. Library and bench code should use
// Stopwatch instead of open-coding std::chrono arithmetic — the
// duplicated stopwatch snippets this replaces drifted in precision and
// unit choices.
#pragma once

#include <chrono>
#include <cstdint>

namespace vlm::obs {

struct MonotonicClock {
  using TimePoint = std::chrono::steady_clock::time_point;

  static TimePoint now() { return std::chrono::steady_clock::now(); }

  static double seconds_since(TimePoint start) {
    return std::chrono::duration<double>(now() - start).count();
  }

  static std::uint64_t nanos_since(TimePoint start) {
    const auto elapsed = now() - start;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  }
};

// Starts running on construction; read as often as needed.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicClock::now()) {}

  double seconds() const { return MonotonicClock::seconds_since(start_); }
  std::uint64_t nanos() const { return MonotonicClock::nanos_since(start_); }
  void restart() { start_ = MonotonicClock::now(); }

 private:
  MonotonicClock::TimePoint start_;
};

}  // namespace vlm::obs
