// Umbrella header: the library's public API in one include.
//
//   #include "vlm.h"
//
// Pulls in the core measurement scheme (encoder, RSU state, sizing,
// estimators, analysis models) and the deployment-facing utilities
// (intervals, OD matrices, aggregation, calibration, validation).
// Substrates (roadnet, traffic, vcps, sketch) are intentionally not
// included here — pull those headers individually when you simulate.
#pragma once

#include "core/accuracy_model.h"
#include "core/calibration.h"
#include "core/encoder.h"
#include "core/estimator.h"
#include "core/interval.h"
#include "core/load_factor.h"
#include "core/multi_period.h"
#include "core/od_matrix.h"
#include "core/privacy_model.h"
#include "core/report_validator.h"
#include "core/rsu_state.h"
#include "core/scheme.h"
#include "core/sizing.h"
#include "core/triple_estimator.h"
#include "core/types.h"
#include "core/union_estimator.h"
