#include "roadnet/tntp_io.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/require.h"

namespace vlm::roadnet {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("tntp line " + std::to_string(line) + ": " + what);
}

// Reads metadata lines "<KEY> value" until <END OF METADATA>. Returns the
// requested numeric keys (all must be present).
struct Metadata {
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t zones = 0;
  double total_flow = 0.0;
  bool has_nodes = false, has_links = false, has_zones = false;
};

Metadata read_metadata(std::istream& in, std::size_t& line_number) {
  Metadata meta;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find("<END OF METADATA>") != std::string::npos) return meta;
    const auto close = line.find('>');
    if (line.empty() || line[0] != '<' || close == std::string::npos) {
      continue;  // comments / blank lines before metadata end
    }
    const std::string key = line.substr(1, close - 1);
    const std::string value = line.substr(close + 1);
    try {
      if (key == "NUMBER OF NODES") {
        meta.nodes = static_cast<std::size_t>(std::stoul(value));
        meta.has_nodes = true;
      } else if (key == "NUMBER OF LINKS") {
        meta.links = static_cast<std::size_t>(std::stoul(value));
        meta.has_links = true;
      } else if (key == "NUMBER OF ZONES") {
        meta.zones = static_cast<std::size_t>(std::stoul(value));
        meta.has_zones = true;
      } else if (key == "TOTAL OD FLOW") {
        meta.total_flow = std::stod(value);
      }
    } catch (const std::exception&) {
      fail(line_number, "malformed metadata value for <" + key + ">");
    }
  }
  fail(line_number, "missing <END OF METADATA>");
}

}  // namespace

Graph read_tntp_network(std::istream& in) {
  std::size_t line_number = 0;
  const Metadata meta = read_metadata(in, line_number);
  if (!meta.has_nodes || !meta.has_links) {
    fail(line_number, "network metadata must declare nodes and links");
  }
  Graph graph(meta.nodes);
  std::string line;
  std::size_t links_read = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip the conventional leading '~' marker and trailing ';'.
    std::string cleaned;
    for (char ch : line) {
      if (ch == '~' || ch == ';') continue;
      cleaned += ch;
    }
    std::istringstream fields(cleaned);
    long long from = 0, to = 0;
    double capacity = 0, length = 0, fft = 0, b = 0, power = 0;
    if (!(fields >> from >> to >> capacity >> length >> fft >> b >> power)) {
      continue;  // header row or blank line
    }
    if (from < 1 || to < 1 || static_cast<std::size_t>(from) > meta.nodes ||
        static_cast<std::size_t>(to) > meta.nodes) {
      fail(line_number, "link endpoint outside the declared node range");
    }
    if (capacity <= 0.0 || fft <= 0.0) {
      fail(line_number, "capacity and free-flow time must be positive");
    }
    Link link;
    link.from = static_cast<NodeIndex>(from - 1);
    link.to = static_cast<NodeIndex>(to - 1);
    link.capacity = capacity;
    link.free_flow_time = fft;
    link.bpr_alpha = b;
    link.bpr_beta = power;
    graph.add_link(link);
    ++links_read;
  }
  if (links_read != meta.links) {
    fail(line_number, "expected " + std::to_string(meta.links) + " links, read " +
                          std::to_string(links_read));
  }
  return graph;
}

TripTable read_tntp_trips(std::istream& in) {
  std::size_t line_number = 0;
  const Metadata meta = read_metadata(in, line_number);
  if (!meta.has_zones) fail(line_number, "trips metadata must declare zones");
  TripTable trips(meta.zones);
  std::string line;
  long long origin = 0;  // 1-based; 0 = none yet
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string token;
    if (!(fields >> token)) continue;
    if (token == "Origin") {
      if (!(fields >> origin) || origin < 1 ||
          static_cast<std::size_t>(origin) > meta.zones) {
        fail(line_number, "malformed Origin header");
      }
      continue;
    }
    if (origin == 0) fail(line_number, "destination data before any Origin");
    // Parse "<dest> : <flow>;" groups; the first destination token was
    // already consumed into `token`.
    std::string rest;
    std::getline(fields, rest);
    std::string record = token + rest;
    std::istringstream groups(record);
    std::string chunk;
    while (std::getline(groups, chunk, ';')) {
      const auto colon = chunk.find(':');
      if (colon == std::string::npos) {
        // Allow pure whitespace between records.
        std::istringstream ws(chunk);
        std::string leftover;
        if (ws >> leftover) fail(line_number, "malformed OD record");
        continue;
      }
      try {
        const long long dest = std::stoll(chunk.substr(0, colon));
        const double flow = std::stod(chunk.substr(colon + 1));
        if (dest < 1 || static_cast<std::size_t>(dest) > meta.zones) {
          fail(line_number, "destination outside the declared zone range");
        }
        if (dest != origin) {
          trips.set_demand(static_cast<NodeIndex>(origin - 1),
                           static_cast<NodeIndex>(dest - 1), flow);
        }
      } catch (const std::invalid_argument&) {
        fail(line_number, "malformed OD record");
      } catch (const std::out_of_range&) {
        fail(line_number, "malformed OD record");
      }
    }
  }
  if (meta.total_flow > 0.0 &&
      std::fabs(trips.total_demand() - meta.total_flow) >
          0.01 * meta.total_flow + 1.0) {
    throw std::runtime_error(
        "tntp trips: total demand does not match <TOTAL OD FLOW>");
  }
  return trips;
}

void write_tntp_network(std::ostream& out, const Graph& graph) {
  out << "<NUMBER OF NODES> " << graph.node_count() << "\n"
      << "<NUMBER OF LINKS> " << graph.link_count() << "\n"
      << "<END OF METADATA>\n"
      << "~ \tinit \tterm \tcapacity \tlength \tfft \tb \tpower \tspeed "
         "\ttoll \ttype \t;\n";
  for (const Link& link : graph.links()) {
    out << "\t" << (link.from + 1) << "\t" << (link.to + 1) << "\t"
        << link.capacity << "\t1\t" << link.free_flow_time << "\t"
        << link.bpr_alpha << "\t" << link.bpr_beta << "\t0\t0\t1\t;\n";
  }
}

void write_tntp_trips(std::ostream& out, const TripTable& trips) {
  out << "<NUMBER OF ZONES> " << trips.node_count() << "\n"
      << "<TOTAL OD FLOW> " << trips.total_demand() << "\n"
      << "<END OF METADATA>\n";
  for (NodeIndex o = 0; o < trips.node_count(); ++o) {
    out << "Origin " << (o + 1) << "\n";
    int on_line = 0;
    for (NodeIndex d = 0; d < trips.node_count(); ++d) {
      if (o == d || trips.demand(o, d) <= 0.0) continue;
      out << "    " << (d + 1) << " : " << trips.demand(o, d) << ";";
      if (++on_line % 4 == 0) out << "\n";
    }
    if (on_line % 4 != 0 || on_line == 0) out << "\n";
  }
}

Graph load_tntp_network(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open tntp network: " + path);
  return read_tntp_network(in);
}

TripTable load_tntp_trips(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open tntp trips: " + path);
  return read_tntp_trips(in);
}

}  // namespace vlm::roadnet
