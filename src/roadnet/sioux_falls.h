// The Sioux Falls benchmark network (LeBlanc, Morlok & Pierskalla 1975):
// 24 nodes, 76 directed arcs, plus the classic daily OD trip table.
//
// This is the exact workload of the paper's Table I. The topology and
// free-flow times follow the canonical dataset; capacities and the trip
// table are transcriptions of the widely circulated TNTP distribution
// (demand in vehicles/day). Because the paper's own assignment is not
// published, Table I's bench rescales the demand so that the busiest node
// (node 10) carries ~451,000 vehicles/day as in the paper — see
// DESIGN.md, substitution 3.
#pragma once

#include "roadnet/graph.h"
#include "roadnet/trip_table.h"

namespace vlm::roadnet {

inline constexpr std::size_t kSiouxFallsNodeCount = 24;

// Node numbering: the literature's node k is index k-1 here.
Graph sioux_falls_network();

// Daily OD demand, vehicles/day (canonical table entries are multiples of
// 100). Diagonal is zero.
TripTable sioux_falls_trip_table();

}  // namespace vlm::roadnet
