#include "roadnet/trip_table.h"

#include "common/require.h"

namespace vlm::roadnet {

TripTable::TripTable(std::size_t node_count)
    : node_count_(node_count), demand_(node_count * node_count, 0.0) {
  VLM_REQUIRE(node_count >= 2, "a trip table needs at least two zones");
}

std::size_t TripTable::index(NodeIndex origin, NodeIndex destination) const {
  VLM_REQUIRE(origin < node_count_ && destination < node_count_,
              "trip table zone out of range");
  return static_cast<std::size_t>(origin) * node_count_ + destination;
}

double TripTable::demand(NodeIndex origin, NodeIndex destination) const {
  return demand_[index(origin, destination)];
}

void TripTable::set_demand(NodeIndex origin, NodeIndex destination,
                           double trips) {
  VLM_REQUIRE(trips >= 0.0, "trip demand must be non-negative");
  VLM_REQUIRE(origin != destination || trips == 0.0,
              "intrazonal trips never enter the network");
  demand_[index(origin, destination)] = trips;
}

void TripTable::scale(double factor) {
  VLM_REQUIRE(factor > 0.0, "scale factor must be positive");
  for (double& d : demand_) d *= factor;
}

double TripTable::total_demand() const {
  double total = 0.0;
  for (double d : demand_) total += d;
  return total;
}

double TripTable::node_demand(NodeIndex node) const {
  double total = 0.0;
  for (NodeIndex other = 0; other < node_count_; ++other) {
    total += demand(node, static_cast<NodeIndex>(other));
    total += demand(static_cast<NodeIndex>(other), node);
  }
  return total;
}

}  // namespace vlm::roadnet
