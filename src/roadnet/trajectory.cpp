#include "roadnet/trajectory.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace vlm::roadnet {

TrajectorySampler::TrajectorySampler(const AssignmentResult& result,
                                     std::uint64_t seed)
    : result_(result), rng_(seed) {}

std::uint64_t TrajectorySampler::for_each_vehicle(
    const std::function<void(std::span<const NodeIndex>)>& visit) {
  vehicles_emitted_ = 0;
  for (const OdRoutes& od : result_.od_routes) {
    for (const Route& route : od.routes) {
      const double expected = od.demand * route.probability;
      const double whole = std::floor(expected);
      auto count = static_cast<std::uint64_t>(whole);
      if (rng_.bernoulli(expected - whole)) ++count;
      for (std::uint64_t v = 0; v < count; ++v) {
        visit(route.nodes);
      }
      vehicles_emitted_ += count;
    }
  }
  return vehicles_emitted_;
}

std::vector<std::uint64_t> realized_node_volumes(
    const AssignmentResult& result, std::size_t node_count,
    std::uint64_t seed) {
  std::vector<std::uint64_t> volumes(node_count, 0);
  TrajectorySampler sampler(result, seed);
  sampler.for_each_vehicle([&](std::span<const NodeIndex> nodes) {
    for (NodeIndex n : nodes) {
      VLM_REQUIRE(n < node_count, "trajectory node out of range");
      ++volumes[n];
    }
  });
  return volumes;
}

PairGroundTruth realized_pair_volumes(const AssignmentResult& result,
                                      NodeIndex x, NodeIndex y,
                                      std::uint64_t seed) {
  VLM_REQUIRE(x != y, "pair volumes need two distinct nodes");
  PairGroundTruth out;
  TrajectorySampler sampler(result, seed);
  sampler.for_each_vehicle([&](std::span<const NodeIndex> nodes) {
    const bool hits_x = std::find(nodes.begin(), nodes.end(), x) != nodes.end();
    const bool hits_y = std::find(nodes.begin(), nodes.end(), y) != nodes.end();
    if (hits_x) ++out.n_x;
    if (hits_y) ++out.n_y;
    if (hits_x && hits_y) ++out.n_c;
  });
  return out;
}

}  // namespace vlm::roadnet
