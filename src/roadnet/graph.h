// Directed road-network graph.
//
// Nodes model intersections where RSUs are installed; links carry the
// BPR (Bureau of Public Roads) congestion parameters used by traffic
// assignment. Node ids are dense 0-based indices; the Sioux Falls loader
// maps the literature's 1-based numbering onto them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vlm::roadnet {

using NodeIndex = std::uint32_t;
using LinkIndex = std::uint32_t;

inline constexpr NodeIndex kInvalidNode = ~NodeIndex{0};
inline constexpr LinkIndex kInvalidLink = ~LinkIndex{0};

struct Link {
  NodeIndex from = kInvalidNode;
  NodeIndex to = kInvalidNode;
  double free_flow_time = 1.0;  // minutes (any consistent unit works)
  double capacity = 1.0;        // vehicles per measurement period
  double bpr_alpha = 0.15;      // standard BPR coefficients
  double bpr_beta = 4.0;
};

// BPR volume-delay function: t(v) = t0 * (1 + alpha * (v / c)^beta).
double bpr_travel_time(const Link& link, double volume);

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  std::size_t node_count() const { return out_links_.size(); }
  std::size_t link_count() const { return links_.size(); }

  // Adds a directed link and returns its index. Endpoints must exist,
  // self-loops are rejected, attributes must be positive.
  LinkIndex add_link(const Link& link);

  const Link& link(LinkIndex index) const;
  std::span<const Link> links() const { return links_; }

  // Outgoing link indices of a node.
  std::span<const LinkIndex> out_links(NodeIndex node) const;

  // Looks up a link by endpoints; kInvalidLink if absent. O(out-degree).
  LinkIndex find_link(NodeIndex from, NodeIndex to) const;

 private:
  std::vector<Link> links_;
  std::vector<std::vector<LinkIndex>> out_links_;
};

}  // namespace vlm::roadnet
