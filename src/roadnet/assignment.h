// Static traffic assignment: loads an OD trip table onto the network.
//
// Used to turn the Sioux Falls demand matrix into per-vehicle routes.
// Three methods, in increasing fidelity:
//   - kAllOrNothing: everyone takes the free-flow shortest path;
//   - kMsa: method of successive averages (step 1/k);
//   - kFrankWolfe: classic user-equilibrium convex-combinations algorithm
//     (LeBlanc 1975 — the same paper the Sioux Falls dataset comes from)
//     with bisection line search on the Beckmann objective derivative.
//
// Besides link flows, the result keeps the *route set* each OD pair used:
// every iteration's all-or-nothing route enters with its convex-
// combination weight. TrajectorySampler later draws each vehicle's
// concrete route from that categorical distribution, so simulated
// vehicles reproduce the equilibrium flow pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "roadnet/graph.h"
#include "roadnet/trip_table.h"

namespace vlm::roadnet {

enum class AssignmentMethod { kAllOrNothing, kMsa, kFrankWolfe };

struct AssignmentOptions {
  AssignmentMethod method = AssignmentMethod::kFrankWolfe;
  int max_iterations = 40;
  double relative_gap_tolerance = 1e-4;
};

struct Route {
  std::vector<NodeIndex> nodes;  // origin ... destination
  double probability = 0.0;      // share of the OD demand on this route
};

struct OdRoutes {
  NodeIndex origin = kInvalidNode;
  NodeIndex destination = kInvalidNode;
  double demand = 0.0;
  std::vector<Route> routes;  // probabilities sum to 1
};

struct AssignmentResult {
  std::vector<double> link_flows;   // per link, vehicles per period
  std::vector<OdRoutes> od_routes;  // one entry per OD pair with demand > 0
  int iterations = 0;
  double relative_gap = 0.0;
  double total_travel_time = 0.0;   // sum over links of flow * BPR time

  // Expected number of vehicles whose route passes through `node`
  // (each route visits each of its nodes once; routes are simple paths).
  double expected_node_volume(NodeIndex node) const;
};

// Throws std::invalid_argument if some OD pair with demand has no path.
AssignmentResult assign(const Graph& graph, const TripTable& trips,
                        const AssignmentOptions& options = {});

}  // namespace vlm::roadnet
