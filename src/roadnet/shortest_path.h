// Single-source shortest paths (Dijkstra) over per-link costs.
//
// Traffic assignment re-runs this with congested BPR costs each
// iteration, so the implementation takes costs as an external span rather
// than reading them from the links.
#pragma once

#include <span>
#include <vector>

#include "roadnet/graph.h"

namespace vlm::roadnet {

struct ShortestPathTree {
  // Per destination node: total cost from the source (infinity if
  // unreachable) and the incoming link on the shortest path.
  std::vector<double> cost;
  std::vector<LinkIndex> parent_link;

  bool reachable(NodeIndex node) const {
    return parent_link[node] != kInvalidLink || cost[node] == 0.0;
  }
};

// Runs Dijkstra from `source`. `link_costs` must hold one non-negative
// cost per link of `graph`.
ShortestPathTree dijkstra(const Graph& graph, NodeIndex source,
                          std::span<const double> link_costs);

// Reconstructs the node sequence source -> ... -> destination from a
// tree. Destination must be reachable.
std::vector<NodeIndex> extract_path(const Graph& graph,
                                    const ShortestPathTree& tree,
                                    NodeIndex source, NodeIndex destination);

// Reconstructs the link sequence along the same path.
std::vector<LinkIndex> extract_path_links(const Graph& graph,
                                          const ShortestPathTree& tree,
                                          NodeIndex source,
                                          NodeIndex destination);

}  // namespace vlm::roadnet
