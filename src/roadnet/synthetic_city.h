// Synthetic grid-city generator: a parametric road network with
// gravity-model demand, for experiments beyond the 24-node Sioux Falls
// benchmark ("a larger network with randomly generated traffic",
// Section VII-B, at arbitrary scale).
//
// The network is a rows×cols street grid with bidirectional links; every
// k-th row/column is an arterial (faster, higher capacity). Demand
// follows a doubly-constrained-ish gravity model: each node gets a
// log-normal attraction weight (a few designated "centers" get boosted),
// and T(o, d) ∝ w_o · w_d · exp(−beta · t_od) scaled to the requested
// total. The result has the heavy-tailed volume heterogeneity that
// motivates variable-length arrays.
#pragma once

#include <cstdint>

#include "roadnet/graph.h"
#include "roadnet/trip_table.h"

namespace vlm::roadnet {

struct SyntheticCityConfig {
  std::uint32_t rows = 6;
  std::uint32_t cols = 6;
  double block_travel_time = 4.0;   // minutes per regular block
  double block_capacity = 6'000.0;  // vehicles/day per regular link
  std::uint32_t arterial_period = 3;  // every k-th row/col is arterial
  double arterial_speedup = 0.6;      // arterial time multiplier
  double arterial_capacity_boost = 3.0;
  std::uint32_t center_count = 2;   // high-attraction hotspots
  double center_boost = 8.0;
  double gravity_beta = 0.08;       // impedance decay per minute
  double total_demand = 200'000.0;  // vehicles/day over the whole city
  std::uint64_t seed = 1;
};

struct SyntheticCity {
  Graph graph;
  TripTable trips;
  std::vector<NodeIndex> centers;  // the boosted hotspot nodes
};

SyntheticCity make_synthetic_city(const SyntheticCityConfig& config);

}  // namespace vlm::roadnet
