#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/require.h"

namespace vlm::roadnet {

ShortestPathTree dijkstra(const Graph& graph, NodeIndex source,
                          std::span<const double> link_costs) {
  VLM_REQUIRE(source < graph.node_count(), "source node out of range");
  VLM_REQUIRE(link_costs.size() == graph.link_count(),
              "need exactly one cost per link");

  constexpr double kInf = std::numeric_limits<double>::infinity();
  ShortestPathTree tree;
  tree.cost.assign(graph.node_count(), kInf);
  tree.parent_link.assign(graph.node_count(), kInvalidLink);
  tree.cost[source] = 0.0;

  using Entry = std::pair<double, NodeIndex>;  // (cost, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.emplace(0.0, source);

  while (!frontier.empty()) {
    const auto [cost, node] = frontier.top();
    frontier.pop();
    if (cost > tree.cost[node]) continue;  // stale entry
    for (LinkIndex l : graph.out_links(node)) {
      const double c = link_costs[l];
      VLM_REQUIRE(c >= 0.0, "Dijkstra requires non-negative link costs");
      const Link& link = graph.link(l);
      const double next = cost + c;
      if (next < tree.cost[link.to]) {
        tree.cost[link.to] = next;
        tree.parent_link[link.to] = l;
        frontier.emplace(next, link.to);
      }
    }
  }
  return tree;
}

std::vector<LinkIndex> extract_path_links(const Graph& graph,
                                          const ShortestPathTree& tree,
                                          NodeIndex source,
                                          NodeIndex destination) {
  VLM_REQUIRE(destination < graph.node_count(), "destination out of range");
  VLM_REQUIRE(tree.cost[destination] !=
                  std::numeric_limits<double>::infinity(),
              "destination is unreachable from the source");
  std::vector<LinkIndex> links;
  NodeIndex node = destination;
  while (node != source) {
    const LinkIndex l = tree.parent_link[node];
    VLM_ASSERT(l != kInvalidLink);
    links.push_back(l);
    node = graph.link(l).from;
  }
  std::reverse(links.begin(), links.end());
  return links;
}

std::vector<NodeIndex> extract_path(const Graph& graph,
                                    const ShortestPathTree& tree,
                                    NodeIndex source, NodeIndex destination) {
  std::vector<NodeIndex> nodes{source};
  for (LinkIndex l : extract_path_links(graph, tree, source, destination)) {
    nodes.push_back(graph.link(l).to);
  }
  return nodes;
}

}  // namespace vlm::roadnet
