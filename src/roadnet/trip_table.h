// Origin-destination trip demand matrix (vehicles per period).
#pragma once

#include <cstddef>
#include <vector>

#include "roadnet/graph.h"

namespace vlm::roadnet {

class TripTable {
 public:
  explicit TripTable(std::size_t node_count);

  std::size_t node_count() const { return node_count_; }

  double demand(NodeIndex origin, NodeIndex destination) const;
  void set_demand(NodeIndex origin, NodeIndex destination, double trips);

  // Multiplies every entry (demand scaling to hit a calibration target).
  void scale(double factor);

  double total_demand() const;
  // Trips originating at or destined for `node` (its "generated" demand).
  double node_demand(NodeIndex node) const;

 private:
  std::size_t index(NodeIndex origin, NodeIndex destination) const;

  std::size_t node_count_;
  std::vector<double> demand_;
};

}  // namespace vlm::roadnet
