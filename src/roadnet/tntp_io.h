// Reader/writer for the TNTP text formats used by the Transportation
// Networks repository (the de-facto standard distribution format of the
// Sioux Falls dataset and dozens of other benchmark networks).
//
// Network format (one link per row after the metadata header):
//   <NUMBER OF NODES> n
//   <NUMBER OF LINKS> m
//   <END OF METADATA>
//   ~ init_node term_node capacity length free_flow_time b power ... ;
//
// Trips format:
//   <NUMBER OF ZONES> n
//   <TOTAL OD FLOW> f
//   <END OF METADATA>
//   Origin  1
//       2 :      100.0;    3 :      100.0; ...
//
// We parse the fields this library uses (capacity, free-flow time, BPR b
// and power) and ignore the rest; both readers validate counts against
// the metadata and throw std::runtime_error with a line number on
// malformed input. Writers emit files the readers round-trip.
#pragma once

#include <iosfwd>
#include <string>

#include "roadnet/graph.h"
#include "roadnet/trip_table.h"

namespace vlm::roadnet {

Graph read_tntp_network(std::istream& in);
TripTable read_tntp_trips(std::istream& in);

void write_tntp_network(std::ostream& out, const Graph& graph);
void write_tntp_trips(std::ostream& out, const TripTable& trips);

// File wrappers; throw std::runtime_error on I/O failure.
Graph load_tntp_network(const std::string& path);
TripTable load_tntp_trips(const std::string& path);

}  // namespace vlm::roadnet
