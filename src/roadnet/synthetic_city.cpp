#include "roadnet/synthetic_city.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/require.h"
#include "common/rng.h"
#include "roadnet/shortest_path.h"

namespace vlm::roadnet {

SyntheticCity make_synthetic_city(const SyntheticCityConfig& config) {
  VLM_REQUIRE(config.rows >= 2 && config.cols >= 2,
              "the grid needs at least 2x2 nodes");
  VLM_REQUIRE(config.block_travel_time > 0.0 && config.block_capacity > 0.0,
              "block attributes must be positive");
  VLM_REQUIRE(config.arterial_period >= 1, "arterial period must be >= 1");
  VLM_REQUIRE(config.arterial_speedup > 0.0 &&
                  config.arterial_speedup <= 1.0,
              "arterial speedup multiplies travel time; must be in (0, 1]");
  VLM_REQUIRE(config.total_demand > 0.0, "total demand must be positive");
  VLM_REQUIRE(config.gravity_beta >= 0.0, "gravity beta must be >= 0");

  const std::size_t node_count =
      static_cast<std::size_t>(config.rows) * config.cols;
  VLM_REQUIRE(config.center_count < node_count,
              "more centers than grid nodes");

  SyntheticCity city{Graph(node_count), TripTable(node_count), {}};
  auto node_at = [&](std::uint32_t r, std::uint32_t c) {
    return static_cast<NodeIndex>(r * config.cols + c);
  };
  auto is_arterial = [&](std::uint32_t index) {
    return index % config.arterial_period == 0;
  };

  auto add_street = [&](NodeIndex from, NodeIndex to, bool arterial) {
    Link link;
    link.from = from;
    link.to = to;
    link.free_flow_time = arterial
                              ? config.block_travel_time * config.arterial_speedup
                              : config.block_travel_time;
    link.capacity = arterial
                        ? config.block_capacity * config.arterial_capacity_boost
                        : config.block_capacity;
    city.graph.add_link(link);
    Link back = link;
    std::swap(back.from, back.to);
    city.graph.add_link(back);
  };
  for (std::uint32_t r = 0; r < config.rows; ++r) {
    for (std::uint32_t c = 0; c < config.cols; ++c) {
      if (c + 1 < config.cols) {
        add_street(node_at(r, c), node_at(r, c + 1), is_arterial(r));
      }
      if (r + 1 < config.rows) {
        add_street(node_at(r, c), node_at(r + 1, c), is_arterial(c));
      }
    }
  }

  // Attraction weights: log-normal-ish base, boosted centers.
  common::Xoshiro256ss rng(config.seed);
  std::vector<double> weight(node_count);
  for (double& w : weight) {
    // exp of a rough normal via sum of uniforms (Irwin-Hall).
    double z = 0.0;
    for (int i = 0; i < 12; ++i) z += rng.uniform_double();
    w = std::exp(0.6 * (z - 6.0));
  }
  for (std::uint32_t i = 0; i < config.center_count; ++i) {
    NodeIndex center;
    do {
      center = static_cast<NodeIndex>(rng.uniform(node_count));
    } while (std::find(city.centers.begin(), city.centers.end(), center) !=
             city.centers.end());
    city.centers.push_back(center);
    weight[center] *= config.center_boost;
  }

  // Free-flow travel times for the gravity impedance.
  std::vector<double> costs;
  costs.reserve(city.graph.link_count());
  for (const Link& l : city.graph.links()) costs.push_back(l.free_flow_time);

  double total_weight = 0.0;
  std::vector<std::vector<double>> unnormalized(node_count);
  for (NodeIndex o = 0; o < node_count; ++o) {
    const ShortestPathTree tree = dijkstra(city.graph, o, costs);
    unnormalized[o].resize(node_count, 0.0);
    for (NodeIndex d = 0; d < node_count; ++d) {
      if (d == o) continue;
      const double t = tree.cost[d];
      unnormalized[o][d] =
          weight[o] * weight[d] * std::exp(-config.gravity_beta * t);
      total_weight += unnormalized[o][d];
    }
  }
  VLM_ASSERT(total_weight > 0.0);
  const double scale = config.total_demand / total_weight;
  for (NodeIndex o = 0; o < node_count; ++o) {
    for (NodeIndex d = 0; d < node_count; ++d) {
      if (d == o) continue;
      city.trips.set_demand(o, d, unnormalized[o][d] * scale);
    }
  }
  return city;
}

}  // namespace vlm::roadnet
