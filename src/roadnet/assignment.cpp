#include "roadnet/assignment.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/require.h"
#include "roadnet/shortest_path.h"

namespace vlm::roadnet {

namespace {

std::vector<double> congested_costs(const Graph& graph,
                                    const std::vector<double>& flows) {
  std::vector<double> costs(graph.link_count());
  for (LinkIndex l = 0; l < graph.link_count(); ++l) {
    costs[l] = bpr_travel_time(graph.link(l), flows[l]);
  }
  return costs;
}

// One all-or-nothing loading under the given costs. Returns auxiliary link
// flows and records, per OD pair, the route used this round.
struct AonResult {
  std::vector<double> flows;
  // Parallel to the od list: the node path chosen for each OD this round.
  std::vector<std::vector<NodeIndex>> routes;
};

struct OdPair {
  NodeIndex origin;
  NodeIndex destination;
  double demand;
};

AonResult all_or_nothing(const Graph& graph, const std::vector<OdPair>& ods,
                         const std::vector<double>& costs) {
  AonResult out;
  out.flows.assign(graph.link_count(), 0.0);
  out.routes.resize(ods.size());
  // Group by origin so each origin costs one Dijkstra.
  std::map<NodeIndex, std::vector<std::size_t>> by_origin;
  for (std::size_t i = 0; i < ods.size(); ++i) {
    by_origin[ods[i].origin].push_back(i);
  }
  for (const auto& [origin, od_indices] : by_origin) {
    const ShortestPathTree tree = dijkstra(graph, origin, costs);
    for (std::size_t i : od_indices) {
      const OdPair& od = ods[i];
      VLM_REQUIRE(tree.cost[od.destination] !=
                      std::numeric_limits<double>::infinity(),
                  "OD pair with demand has no route");
      for (LinkIndex l :
           extract_path_links(graph, tree, origin, od.destination)) {
        out.flows[l] += od.demand;
      }
      out.routes[i] = extract_path(graph, tree, origin, od.destination);
    }
  }
  return out;
}

// Derivative of the Beckmann objective along f + lambda (y - f):
//   g(lambda) = sum_l (y_l - f_l) * t_l(f_l + lambda (y_l - f_l)).
// Convex objective => g is non-decreasing; bisect for the root.
double line_search(const Graph& graph, const std::vector<double>& f,
                   const std::vector<double>& y) {
  auto derivative = [&](double lambda) {
    double g = 0.0;
    for (LinkIndex l = 0; l < graph.link_count(); ++l) {
      const double d = y[l] - f[l];
      if (d == 0.0) continue;
      g += d * bpr_travel_time(graph.link(l), f[l] + lambda * d);
    }
    return g;
  };
  if (derivative(1.0) <= 0.0) return 1.0;  // full step still improves
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (derivative(mid) > 0.0 ? hi : lo) = mid;
  }
  return 0.5 * (lo + hi);
}

// Merges this round's AON route into the OD's route set with weight
// `lambda`, scaling existing weights by (1 - lambda).
void blend_routes(OdRoutes& od, std::vector<NodeIndex> route, double lambda) {
  for (Route& r : od.routes) r.probability *= (1.0 - lambda);
  for (Route& r : od.routes) {
    if (r.nodes == route) {
      r.probability += lambda;
      return;
    }
  }
  od.routes.push_back(Route{std::move(route), lambda});
}

void prune_negligible_routes(std::vector<OdRoutes>& all) {
  constexpr double kMinShare = 1e-9;
  for (OdRoutes& od : all) {
    std::erase_if(od.routes,
                  [](const Route& r) { return r.probability < kMinShare; });
    double total = 0.0;
    for (const Route& r : od.routes) total += r.probability;
    VLM_ASSERT(total > 0.0);
    for (Route& r : od.routes) r.probability /= total;
  }
}

}  // namespace

double AssignmentResult::expected_node_volume(NodeIndex node) const {
  double volume = 0.0;
  for (const OdRoutes& od : od_routes) {
    for (const Route& r : od.routes) {
      if (std::find(r.nodes.begin(), r.nodes.end(), node) != r.nodes.end()) {
        volume += od.demand * r.probability;
      }
    }
  }
  return volume;
}

AssignmentResult assign(const Graph& graph, const TripTable& trips,
                        const AssignmentOptions& options) {
  VLM_REQUIRE(trips.node_count() == graph.node_count(),
              "trip table and graph disagree on the zone count");
  VLM_REQUIRE(options.max_iterations >= 1, "need at least one iteration");

  std::vector<OdPair> ods;
  for (NodeIndex o = 0; o < graph.node_count(); ++o) {
    for (NodeIndex d = 0; d < graph.node_count(); ++d) {
      const double demand = trips.demand(o, d);
      if (demand > 0.0) ods.push_back({o, d, demand});
    }
  }
  VLM_REQUIRE(!ods.empty(), "trip table has no demand");

  AssignmentResult result;
  result.od_routes.reserve(ods.size());
  for (const OdPair& od : ods) {
    result.od_routes.push_back(OdRoutes{od.origin, od.destination, od.demand, {}});
  }

  // Initial loading on free-flow costs.
  std::vector<double> costs = congested_costs(
      graph, std::vector<double>(graph.link_count(), 0.0));
  AonResult aon = all_or_nothing(graph, ods, costs);
  result.link_flows = aon.flows;
  for (std::size_t i = 0; i < ods.size(); ++i) {
    result.od_routes[i].routes.push_back(Route{std::move(aon.routes[i]), 1.0});
  }
  result.iterations = 1;

  if (options.method != AssignmentMethod::kAllOrNothing) {
    for (int k = 2; k <= options.max_iterations; ++k) {
      costs = congested_costs(graph, result.link_flows);
      aon = all_or_nothing(graph, ods, costs);

      // Relative gap: (current cost - best-response cost) / current cost.
      double current = 0.0, best = 0.0;
      for (LinkIndex l = 0; l < graph.link_count(); ++l) {
        current += result.link_flows[l] * costs[l];
        best += aon.flows[l] * costs[l];
      }
      result.relative_gap = current > 0.0 ? (current - best) / current : 0.0;
      if (result.relative_gap <= options.relative_gap_tolerance) break;

      const double lambda =
          options.method == AssignmentMethod::kMsa
              ? 1.0 / static_cast<double>(k)
              : line_search(graph, result.link_flows, aon.flows);
      for (LinkIndex l = 0; l < graph.link_count(); ++l) {
        result.link_flows[l] +=
            lambda * (aon.flows[l] - result.link_flows[l]);
      }
      for (std::size_t i = 0; i < ods.size(); ++i) {
        blend_routes(result.od_routes[i], std::move(aon.routes[i]), lambda);
      }
      result.iterations = k;
    }
  }

  prune_negligible_routes(result.od_routes);
  costs = congested_costs(graph, result.link_flows);
  for (LinkIndex l = 0; l < graph.link_count(); ++l) {
    result.total_travel_time += result.link_flows[l] * costs[l];
  }
  return result;
}

}  // namespace vlm::roadnet
