// Expands an assignment's route distribution into individual vehicle
// trajectories (node sequences), the input the VCPS protocol consumes.
//
// Vehicle counts per (OD, route) are demand * probability, rounded
// stochastically so expectations are exact. Trajectories are streamed to
// a visitor — the Sioux Falls workload is ~1.5M vehicles after scaling,
// which never needs to be materialized at once.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "roadnet/assignment.h"

namespace vlm::roadnet {

class TrajectorySampler {
 public:
  // Keeps a reference to `result`; the caller must keep it alive.
  TrajectorySampler(const AssignmentResult& result, std::uint64_t seed);

  // Invokes `visit(route_nodes)` once per vehicle. Deterministic for a
  // given (result, seed). Returns the number of vehicles emitted.
  std::uint64_t for_each_vehicle(
      const std::function<void(std::span<const NodeIndex>)>& visit);

  // Realized counts from the last for_each_vehicle run.
  std::uint64_t vehicles_emitted() const { return vehicles_emitted_; }

 private:
  const AssignmentResult& result_;
  common::Xoshiro256ss rng_;
  std::uint64_t vehicles_emitted_ = 0;
};

// Convenience counting pass (no protocol): per-node pass-through volumes
// and the common volume of one node pair, computed from the same vehicle
// stream a protocol run would see (same seed => identical vehicles).
struct PairGroundTruth {
  std::uint64_t n_x = 0;
  std::uint64_t n_y = 0;
  std::uint64_t n_c = 0;
};

std::vector<std::uint64_t> realized_node_volumes(
    const AssignmentResult& result, std::size_t node_count,
    std::uint64_t seed);

PairGroundTruth realized_pair_volumes(const AssignmentResult& result,
                                      NodeIndex x, NodeIndex y,
                                      std::uint64_t seed);

}  // namespace vlm::roadnet
