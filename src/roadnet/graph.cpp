#include "roadnet/graph.h"

#include <cmath>

#include "common/require.h"

namespace vlm::roadnet {

double bpr_travel_time(const Link& link, double volume) {
  VLM_REQUIRE(volume >= 0.0, "link volume must be non-negative");
  const double ratio = volume / link.capacity;
  return link.free_flow_time *
         (1.0 + link.bpr_alpha * std::pow(ratio, link.bpr_beta));
}

Graph::Graph(std::size_t node_count) : out_links_(node_count) {}

LinkIndex Graph::add_link(const Link& link) {
  VLM_REQUIRE(link.from < node_count() && link.to < node_count(),
              "link endpoints must be existing nodes");
  VLM_REQUIRE(link.from != link.to, "self-loop links are not allowed");
  VLM_REQUIRE(link.free_flow_time > 0.0 && link.capacity > 0.0,
              "link free-flow time and capacity must be positive");
  VLM_REQUIRE(link.bpr_alpha >= 0.0 && link.bpr_beta >= 0.0,
              "BPR coefficients must be non-negative");
  const auto index = static_cast<LinkIndex>(links_.size());
  links_.push_back(link);
  out_links_[link.from].push_back(index);
  return index;
}

const Link& Graph::link(LinkIndex index) const {
  VLM_REQUIRE(index < links_.size(), "link index out of range");
  return links_[index];
}

std::span<const LinkIndex> Graph::out_links(NodeIndex node) const {
  VLM_REQUIRE(node < node_count(), "node index out of range");
  return out_links_[node];
}

LinkIndex Graph::find_link(NodeIndex from, NodeIndex to) const {
  for (LinkIndex l : out_links(from)) {
    if (links_[l].to == to) return l;
  }
  return kInvalidLink;
}

}  // namespace vlm::roadnet
