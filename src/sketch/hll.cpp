#include "sketch/hll.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/require.h"

namespace vlm::sketch {

namespace {

double alpha_for(std::size_t m) {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(unsigned precision)
    : precision_(precision),
      registers_(std::size_t{1} << precision, 0) {
  VLM_REQUIRE(precision >= 4 && precision <= 18,
              "HLL precision must be in [4, 18]");
}

void HyperLogLog::add_hash(std::uint64_t hash) {
  const std::size_t bucket =
      static_cast<std::size_t>(hash >> (64 - precision_));
  const std::uint64_t suffix = hash << precision_;
  // Rank: leading zeros of the suffix + 1, capped by the suffix width.
  const int rank =
      suffix == 0 ? static_cast<int>(64 - precision_) + 1
                  : std::countl_zero(suffix) + 1;
  if (static_cast<std::uint8_t>(rank) > registers_[bucket]) {
    registers_[bucket] = static_cast<std::uint8_t>(rank);
  }
}

double HyperLogLog::estimate() const {
  const auto m = static_cast<double>(registers_.size());
  double inverse_sum = 0.0;
  std::size_t zero_registers = 0;
  for (std::uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zero_registers;
  }
  const double raw = alpha_for(registers_.size()) * m * m / inverse_sum;
  if (raw <= 2.5 * m && zero_registers > 0) {
    // Small-range correction: linear counting over the registers.
    return m * std::log(m / static_cast<double>(zero_registers));
  }
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  VLM_REQUIRE(precision_ == other.precision_,
              "cannot merge HLLs of different precision");
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

double HyperLogLog::intersection(const HyperLogLog& a, const HyperLogLog& b) {
  HyperLogLog unioned = a;
  unioned.merge(b);
  return a.estimate() + b.estimate() - unioned.estimate();
}

}  // namespace vlm::sketch
