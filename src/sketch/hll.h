// Dense HyperLogLog, as an alternative-baseline cardinality sketch.
//
// Why it exists in this repo: HLL with inclusion-exclusion
// (|A ∩ B| = |A| + |B| − |A ∪ B|, union via register-wise max) is the
// standard engineering answer to "how many items did both sites see?",
// so it is the natural what-if baseline for the paper's bitmap scheme.
// The comparison bench (bench_baseline_hll) shows the catch: IE needs
// every site to insert the SAME hash for the same vehicle, i.e. the
// vehicle must submit a cross-RSU-stable value — a linkable
// pseudo-identifier that gives up exactly the privacy the bitmap
// scheme's per-RSU logical-slot masking preserves. HLL is included as a
// measurement baseline, NOT as a privacy-preserving alternative.
//
// Standard construction (Flajolet et al. 2007): 2^precision registers,
// each the maximum "rank" (leading-zero count + 1 of the hash suffix)
// seen in its bucket; harmonic-mean estimate with the small-range
// linear-counting correction.
#pragma once

#include <cstdint>
#include <vector>

namespace vlm::sketch {

class HyperLogLog {
 public:
  // precision in [4, 18]: 2^precision registers, one byte each.
  explicit HyperLogLog(unsigned precision);

  unsigned precision() const { return precision_; }
  std::size_t register_count() const { return registers_.size(); }
  // Memory footprint in bits (for equal-memory comparisons: a bitmap of
  // m bits costs m; an HLL costs 8 * 2^precision here).
  std::size_t memory_bits() const { return registers_.size() * 8; }

  // Inserts an item by its 64-bit hash (callers hash; the sketch never
  // sees raw identifiers).
  void add_hash(std::uint64_t hash);

  double estimate() const;

  // Register-wise max: the sketch of the union of the two multisets.
  // Precisions must match.
  void merge(const HyperLogLog& other);

  // |A ∩ B| via inclusion-exclusion; can be negative under noise, so the
  // raw value is returned (callers clamp if they need to).
  static double intersection(const HyperLogLog& a, const HyperLogLog& b);

 private:
  unsigned precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace vlm::sketch
