#include "vcps/ingest_batch.h"

#include "common/require.h"
#include "core/pair_simulation.h"

namespace vlm::vcps {

void ExchangeColumns::reset(std::size_t rsu_count) {
  buckets.resize(rsu_count);
  for (RsuExchangeBucket& bucket : buckets) {
    bucket.masked_keys.clear();
    bucket.vehicle_numbers.clear();
    bucket.bit_indices.clear();
    bucket.deliveries.clear();
  }
  flat_positions.clear();
  offsets.clear();
  counts.clear();
  masked_keys.clear();
  key_cursors.clear();
  key_ends.clear();
  number_cursors.clear();
  scatter.clear();
}

void materialize_exchanges(std::uint64_t seed, std::uint64_t base,
                           std::size_t begin, std::size_t end,
                           const BulkItineraryProvider& itineraries,
                           std::size_t rsu_count, bool with_vehicle_numbers,
                           ExchangeColumns& columns) {
  columns.reset(rsu_count);
  itineraries(begin, end, columns.flat_positions, columns.offsets,
              columns.counts);
  const std::size_t vehicles = end - begin;
  VLM_REQUIRE(columns.offsets.size() == vehicles + 1 &&
                  (vehicles == 0 || columns.offsets.front() == 0) &&
                  (vehicles == 0 ||
                   columns.offsets.back() == columns.flat_positions.size()),
              "bulk itinerary provider produced a malformed CSR");
  VLM_REQUIRE(columns.counts.size() == rsu_count,
              "bulk itinerary provider produced a malformed histogram");

  // The provider's fused histogram sizes every bucket exactly — no
  // counting sweep over the CSR. The histogram is cross-checked below:
  // the total must cover the CSR and every cursor must stay inside its
  // bucket, so a lying provider throws instead of corrupting memory.
  std::size_t total = 0;
  for (const std::uint64_t count : columns.counts) {
    total += static_cast<std::size_t>(count);
  }
  VLM_REQUIRE(total == columns.flat_positions.size(),
              "bulk itinerary histogram does not cover the CSR");
  // Write cursors as raw bump pointers (plus exclusive ends for the
  // histogram cross-check): the hot scatter below then costs one load,
  // one bounds compare, and one store per visit instead of re-chasing
  // bucket vectors through two indirections every iteration.
  columns.key_cursors.resize(rsu_count);
  columns.key_ends.resize(rsu_count);
  columns.number_cursors.resize(rsu_count);
  for (std::size_t r = 0; r < rsu_count; ++r) {
    RsuExchangeBucket& bucket = columns.buckets[r];
    bucket.masked_keys.resize(columns.counts[r]);
    if (with_vehicle_numbers) bucket.vehicle_numbers.resize(columns.counts[r]);
    columns.key_cursors[r] = bucket.masked_keys.data();
    columns.key_ends[r] = bucket.masked_keys.data() + bucket.masked_keys.size();
    columns.number_cursors[r] =
        with_vehicle_numbers ? bucket.vehicle_numbers.data() : nullptr;
  }

  // One batched derivation for the slice's masked keys (numbered
  // base + begin + i + 1, matching the serial drive_vehicle counter so
  // the identities — and therefore the bits — are the same population
  // regardless of how the ingest is driven), then a single pass over the
  // CSR scatters each tuple through its RSU cursor.
  columns.masked_keys.resize(vehicles);
  core::synthetic_masked_keys(seed, base + begin + 1, vehicles,
                              columns.masked_keys.data());
  std::uint64_t** const key_cursors = columns.key_cursors.data();
  std::uint64_t* const* const key_ends = columns.key_ends.data();
  std::uint64_t** const number_cursors = columns.number_cursors.data();
  for (std::size_t i = 0; i < vehicles; ++i) {
    const std::uint64_t vehicle_number = base + begin + i + 1;
    const std::uint64_t masked_key = columns.masked_keys[i];
    for (std::uint64_t o = columns.offsets[i]; o < columns.offsets[i + 1];
         ++o) {
      const std::uint32_t position = columns.flat_positions[o];
      VLM_REQUIRE(position < rsu_count, "RSU position out of range");
      VLM_REQUIRE(key_cursors[position] != key_ends[position],
                  "bulk itinerary histogram disagrees with the CSR");
      *key_cursors[position]++ = masked_key;
      if (with_vehicle_numbers) *number_cursors[position]++ = vehicle_number;
    }
  }
}

void hash_bit_indices(const core::Encoder& encoder,
                      std::span<const RsuIngestContext> rsus,
                      ExchangeColumns& columns) {
  for (std::size_t r = 0; r < rsus.size(); ++r) {
    RsuExchangeBucket& bucket = columns.buckets[r];
    if (!rsus[r].replies_answered || bucket.masked_keys.empty()) continue;
    bucket.bit_indices.resize(bucket.masked_keys.size());
    encoder.bit_indices(std::span<const std::uint64_t>(bucket.masked_keys),
                        rsus[r].id, rsus[r].target,
                        std::span<std::size_t>(bucket.bit_indices));
  }
}

void draw_channel_outcomes(const DsrcChannel& channel, std::uint64_t period,
                           std::span<const RsuIngestContext> rsus,
                           ExchangeColumns& columns, ChannelTally& tally) {
  if (channel.lossless()) return;  // empty deliveries = all delivered once
  for (std::size_t r = 0; r < rsus.size(); ++r) {
    RsuExchangeBucket& bucket = columns.buckets[r];
    if (bucket.vehicle_numbers.empty()) continue;
    bucket.deliveries.resize(bucket.vehicle_numbers.size());
    channel.draws_for_batch(
        period, std::span<const std::uint64_t>(bucket.vehicle_numbers),
        rsus[r].id, rsus[r].replies_answered,
        std::span<std::uint8_t>(bucket.deliveries), tally);
  }
}

std::uint64_t scatter_into_shards(std::span<const RsuIngestContext> rsus,
                                  ExchangeColumns& columns,
                                  std::span<core::RsuState> shard) {
  std::uint64_t recorded = 0;
  for (std::size_t r = 0; r < rsus.size(); ++r) {
    RsuExchangeBucket& bucket = columns.buckets[r];
    if (!rsus[r].replies_answered || bucket.bit_indices.empty()) continue;
    if (bucket.deliveries.empty()) {
      // Loss-free fast path: every exchange delivered exactly once.
      shard[r].record_bulk(bucket.bit_indices);
      recorded += bucket.bit_indices.size();
      continue;
    }
    columns.scatter.clear();
    for (std::size_t i = 0; i < bucket.bit_indices.size(); ++i) {
      const std::uint8_t deliveries = bucket.deliveries[i];
      for (std::uint8_t d = 0; d < deliveries; ++d) {
        columns.scatter.push_back(bucket.bit_indices[i]);
      }
    }
    shard[r].record_bulk(columns.scatter);
    recorded += columns.scatter.size();
  }
  return recorded;
}

}  // namespace vlm::vcps
