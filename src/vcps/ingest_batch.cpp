#include "vcps/ingest_batch.h"

#include "common/require.h"
#include "core/pair_simulation.h"

namespace vlm::vcps {

void ExchangeColumns::reset(std::size_t rsu_count) {
  buckets.resize(rsu_count);
  for (RsuExchangeBucket& bucket : buckets) {
    bucket.masked_keys.clear();
    bucket.vehicle_numbers.clear();
    bucket.bit_indices.clear();
    bucket.deliveries.clear();
  }
  flat_positions.clear();
  offsets.clear();
  cursors.clear();
  scatter.clear();
}

void materialize_exchanges(std::uint64_t seed, std::uint64_t base,
                           std::size_t begin, std::size_t end,
                           const BulkItineraryProvider& itineraries,
                           std::size_t rsu_count, bool with_vehicle_numbers,
                           ExchangeColumns& columns) {
  columns.reset(rsu_count);
  itineraries(begin, end, columns.flat_positions, columns.offsets);
  const std::size_t vehicles = end - begin;
  VLM_REQUIRE(columns.offsets.size() == vehicles + 1 &&
                  (vehicles == 0 || columns.offsets.front() == 0) &&
                  (vehicles == 0 ||
                   columns.offsets.back() == columns.flat_positions.size()),
              "bulk itinerary provider produced a malformed CSR");

  // Counting pass -> exact bucket sizes -> cursor writes: every exchange
  // tuple lands with one store instead of a growth-checked push_back.
  columns.cursors.assign(rsu_count, 0);
  for (const std::uint32_t position : columns.flat_positions) {
    VLM_REQUIRE(position < rsu_count, "RSU position out of range");
    ++columns.cursors[position];
  }
  for (std::size_t r = 0; r < rsu_count; ++r) {
    RsuExchangeBucket& bucket = columns.buckets[r];
    bucket.masked_keys.resize(columns.cursors[r]);
    if (with_vehicle_numbers) bucket.vehicle_numbers.resize(columns.cursors[r]);
    columns.cursors[r] = 0;
  }
  for (std::size_t i = 0; i < vehicles; ++i) {
    // Same numbering as the serial drive_vehicle counter, so the vehicle
    // identities — and therefore the bits — are the same population
    // regardless of how the ingest is driven.
    const std::uint64_t vehicle_number = base + begin + i + 1;
    const core::VehicleIdentity identity =
        core::synthetic_vehicle(seed, vehicle_number);
    const std::uint64_t masked_key = identity.masked_key();
    for (std::uint64_t o = columns.offsets[i]; o < columns.offsets[i + 1];
         ++o) {
      const std::uint32_t position = columns.flat_positions[o];
      RsuExchangeBucket& bucket = columns.buckets[position];
      const std::uint64_t at = columns.cursors[position]++;
      bucket.masked_keys[at] = masked_key;
      if (with_vehicle_numbers) bucket.vehicle_numbers[at] = vehicle_number;
    }
  }
}

void hash_bit_indices(const core::Encoder& encoder,
                      std::span<const RsuIngestContext> rsus,
                      ExchangeColumns& columns) {
  for (std::size_t r = 0; r < rsus.size(); ++r) {
    RsuExchangeBucket& bucket = columns.buckets[r];
    if (!rsus[r].replies_answered || bucket.masked_keys.empty()) continue;
    bucket.bit_indices.resize(bucket.masked_keys.size());
    encoder.bit_indices(std::span<const std::uint64_t>(bucket.masked_keys),
                        rsus[r].id, rsus[r].target,
                        std::span<std::size_t>(bucket.bit_indices));
  }
}

void draw_channel_outcomes(const DsrcChannel& channel, std::uint64_t period,
                           std::span<const RsuIngestContext> rsus,
                           ExchangeColumns& columns, ChannelTally& tally) {
  if (channel.lossless()) return;  // empty deliveries = all delivered once
  for (std::size_t r = 0; r < rsus.size(); ++r) {
    RsuExchangeBucket& bucket = columns.buckets[r];
    if (bucket.vehicle_numbers.empty()) continue;
    bucket.deliveries.resize(bucket.vehicle_numbers.size());
    channel.draws_for_batch(
        period, std::span<const std::uint64_t>(bucket.vehicle_numbers),
        rsus[r].id, rsus[r].replies_answered,
        std::span<std::uint8_t>(bucket.deliveries), tally);
  }
}

std::uint64_t scatter_into_shards(std::span<const RsuIngestContext> rsus,
                                  ExchangeColumns& columns,
                                  std::span<core::RsuState> shard) {
  std::uint64_t recorded = 0;
  for (std::size_t r = 0; r < rsus.size(); ++r) {
    RsuExchangeBucket& bucket = columns.buckets[r];
    if (!rsus[r].replies_answered || bucket.bit_indices.empty()) continue;
    if (bucket.deliveries.empty()) {
      // Loss-free fast path: every exchange delivered exactly once.
      shard[r].record_bulk(bucket.bit_indices);
      recorded += bucket.bit_indices.size();
      continue;
    }
    columns.scatter.clear();
    for (std::size_t i = 0; i < bucket.bit_indices.size(); ++i) {
      const std::uint8_t deliveries = bucket.deliveries[i];
      for (std::uint8_t d = 0; d < deliveries; ++d) {
        columns.scatter.push_back(bucket.bit_indices[i]);
      }
    }
    shard[r].record_bulk(columns.scatter);
    recorded += columns.scatter.size();
  }
  return recorded;
}

}  // namespace vlm::vcps
