// Vehicle-side protocol endpoint.
//
// Holds the identity (id + private key, never transmitted), verifies the
// querying RSU's certificate against the trust anchor, and answers with
// the encoder-computed bit index under a fresh one-time MAC address
// (Section II-A's randomized-MAC assumption). Computation per query is
// two hashes — the O(1) claim of Section IV-E.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "core/encoder.h"
#include "vcps/messages.h"
#include "vcps/pki.h"

namespace vlm::vcps {

class Vehicle {
 public:
  // `encoder` and `trust_anchor` must outlive the vehicle.
  Vehicle(core::VehicleIdentity identity, const core::Encoder& encoder,
          const CertificateAuthority& trust_anchor, std::uint64_t mac_seed);

  // Returns the reply, or nullopt if the query fails authentication
  // (bad signature, expired certificate) or is malformed (array size not
  // a power of two).
  std::optional<Reply> handle_query(const Query& query);

  std::uint64_t queries_answered() const { return answered_; }
  std::uint64_t queries_rejected() const { return rejected_; }

 private:
  core::VehicleIdentity identity_;
  const core::Encoder& encoder_;
  const CertificateAuthority& trust_anchor_;
  common::Xoshiro256ss mac_rng_;
  std::uint64_t answered_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace vlm::vcps
