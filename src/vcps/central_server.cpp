#include "vcps/central_server.h"

#include <algorithm>

#include "common/bit_array.h"
#include "common/require.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace vlm::vcps {

namespace {

// Server-side metrics: one span per ingested report plus quarantine
// reasons as labeled counters. PipelineStats stays a per-instance,
// per-period view fed from the same increments (several servers can
// coexist in one process — tests and benches do — so the instance view
// cannot be a bare registry delta; the registry aggregates them all).
struct ServerMetrics {
  obs::Counter& reports_ingested;
  obs::Counter& quarantined_zero_count;
  obs::Counter& quarantined_volume;
  obs::Histogram& ingest;  // wall time of one CentralServer::ingest call
};

ServerMetrics& server_metrics() {
  static ServerMetrics* metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::global();
    return new ServerMetrics{
        r.counter("server/reports_ingested"),
        r.counter("server/quarantine/zero_count_anomaly"),
        r.counter("server/quarantine/volume_anomaly"),
        obs::phase("server/ingest")};
  }();
  return *metrics;
}

}  // namespace

CentralServer::CentralServer(const CentralServerConfig& config)
    : scheme_(config.scheme),
      history_alpha_(config.history_alpha),
      validation_(config.validation),
      decode_workers_(config.decode_workers) {
  VLM_REQUIRE(scheme_ != nullptr, "central server needs a scheme");
  VLM_REQUIRE(config.history_alpha > 0.0 && config.history_alpha <= 1.0,
              "history EWMA weight must be in (0, 1]");
  VLM_REQUIRE(!validation_.enabled || (validation_.tolerance_sigmas > 0.0 &&
                                       validation_.max_history_ratio > 1.0),
              "validation thresholds must be positive (ratio > 1)");
}

void CentralServer::register_rsu(core::RsuId id,
                                 double initial_history_volume) {
  VLM_REQUIRE(initial_history_volume >= 0.0,
              "history volume must be non-negative");
  VLM_REQUIRE(history_.find(id) == history_.end(), "RSU already registered");
  history_[id] = initial_history_volume;
}

bool CentralServer::is_registered(core::RsuId id) const {
  return history_.find(id) != history_.end();
}

double CentralServer::history_volume(core::RsuId id) const {
  auto it = history_.find(id);
  VLM_REQUIRE(it != history_.end(), "RSU not registered");
  return it->second;
}

std::size_t CentralServer::array_size_for(core::RsuId id) const {
  return scheme_->array_size_for(history_volume(id));
}

void CentralServer::begin_period(std::uint64_t period) {
  VLM_REQUIRE(reports_.empty() || period > period_,
              "periods must advance monotonically");
  period_ = period;
  reports_.clear();
  quarantined_.clear();
  stats_ = PipelineStats{};
  stats_.period = period;
}

QuarantineReason CentralServer::ingest(const RsuReport& report) {
  ServerMetrics& metrics = server_metrics();
  obs::Span ingest_span(metrics.ingest);
  auto history_it = history_.find(report.rsu);
  VLM_REQUIRE(history_it != history_.end(), "report from unregistered RSU");
  VLM_REQUIRE(report.period == period_, "report for a different period");
  VLM_REQUIRE(reports_.find(report.rsu) == reports_.end() &&
                  quarantined_.find(report.rsu) == quarantined_.end(),
              "duplicate report for this period");
  // from_bytes validates the buffer length and trailing-bit hygiene.
  const common::BitArray bits =
      common::BitArray::from_bytes(report.array_size, report.bits);

  auto account = [&](QuarantineReason reason) {
    stats_.ingest_seconds += ingest_span.finish();
    switch (reason) {
      case QuarantineReason::kNone:
        ++stats_.reports_ingested;
        metrics.reports_ingested.inc();
        break;
      case QuarantineReason::kZeroCountAnomaly:
        ++stats_.reports_quarantined;
        metrics.quarantined_zero_count.inc();
        break;
      case QuarantineReason::kVolumeAnomaly:
        ++stats_.reports_quarantined;
        metrics.quarantined_volume.inc();
        break;
    }
    return reason;
  };

  if (validation_.enabled) {
    const core::ReportValidator validator(validation_.tolerance_sigmas);
    const auto assessment =
        validator.assess(report.counter, report.array_size, bits.count_zeros());
    if (assessment.verdict != core::ReportVerdict::kPlausible) {
      quarantined_[report.rsu] = QuarantineReason::kZeroCountAnomaly;
      return account(QuarantineReason::kZeroCountAnomaly);
    }
    const double history = history_it->second;
    if (history >= validation_.min_history_for_ratio_check) {
      const double counter = static_cast<double>(report.counter);
      if (counter > history * validation_.max_history_ratio ||
          counter < history / validation_.max_history_ratio) {
        quarantined_[report.rsu] = QuarantineReason::kVolumeAnomaly;
        return account(QuarantineReason::kVolumeAnomaly);
      }
    }
  }

  // Update n̄_x with the observed point volume (Section IV-C: the server
  // "first updates the history average ... to take into account the
  // traffic data in the current measurement period").
  history_it->second = (1.0 - history_alpha_) * history_it->second +
                       history_alpha_ * static_cast<double>(report.counter);
  reports_.emplace(report.rsu, report);
  return account(QuarantineReason::kNone);
}

QuarantineReason CentralServer::quarantine_reason(core::RsuId id) const {
  auto it = quarantined_.find(id);
  return it == quarantined_.end() ? QuarantineReason::kNone : it->second;
}

const RsuReport& CentralServer::report_for(core::RsuId id) const {
  auto it = reports_.find(id);
  VLM_REQUIRE(it != reports_.end(), "no report from this RSU this period");
  return it->second;
}

namespace {

core::RsuState rebuild_state(const RsuReport& r) {
  return core::RsuState::from_report(
      r.counter, common::BitArray::from_bytes(r.array_size, r.bits));
}

}  // namespace

core::PairEstimate CentralServer::estimate(core::RsuId a,
                                           core::RsuId b) const {
  VLM_REQUIRE(a != b, "point-to-point estimation needs two distinct RSUs");
  return scheme_->estimator().estimate(rebuild_state(report_for(a)),
                                       rebuild_state(report_for(b)));
}

core::EstimateInterval CentralServer::estimate_with_interval(
    core::RsuId a, core::RsuId b, double z) const {
  VLM_REQUIRE(a != b, "point-to-point estimation needs two distinct RSUs");
  const core::IntervalEstimator interval(scheme_->s(), z);
  return interval.estimate(rebuild_state(report_for(a)),
                           rebuild_state(report_for(b)));
}

std::vector<core::RsuId> CentralServer::matrix_order() const {
  std::vector<core::RsuId> order;
  order.reserve(reports_.size());
  for (const auto& [id, report] : reports_) order.push_back(id);
  std::sort(order.begin(), order.end());
  return order;
}

core::OdMatrix CentralServer::estimate_matrix(double z) const {
  const std::vector<core::RsuId> order = matrix_order();
  VLM_REQUIRE(order.size() >= 2, "an OD matrix needs at least two reports");
  std::vector<core::RsuState> states;
  states.reserve(order.size());
  for (core::RsuId id : order) states.push_back(rebuild_state(report_for(id)));
  core::OdMatrix matrix = core::estimate_od_matrix(
      states, scheme_->s(), z, decode_workers_, &stats_.decode);
  // Decode-time estimator health: saturation/drift over the decoded
  // states plus the Section V predicted relative error per measured pair.
  obs::health::HealthOptions health_options;
  health_options.target_load_factor = scheme_->target_load_factor();
  health_options.s = scheme_->s();
  stats_.health = obs::health::assess_rsus(states, health_options);
  obs::health::assess_pairs(states, matrix, health_options, stats_.health);
  return matrix;
}

}  // namespace vlm::vcps
