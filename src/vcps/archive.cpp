#include "vcps/archive.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/hashing.h"
#include "common/math_util.h"
#include "common/require.h"

namespace vlm::vcps {

namespace {

constexpr char kMagic[4] = {'V', 'L', 'M', 'A'};
constexpr std::uint32_t kVersion = 1;
// Bound against absurd inputs when reading untrusted files.
constexpr std::uint32_t kMaxReports = 1 << 20;
constexpr std::uint64_t kMaxArrayBits = std::uint64_t{1} << 34;

// Checksum: mix64-chained over every byte written/read.
class Digest {
 public:
  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ = common::mix64(state_ ^ (bytes[i] + 0x9E3779B97F4A7C15ull));
    }
  }
  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 0xA5A5A5A55A5A5A5Aull;
};

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void bytes(const void* data, std::size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    digest_.update(data, size);
  }
  void u32(std::uint32_t v) {
    unsigned char buf[4];
    for (int i = 0; i < 4; ++i) buf[i] = (v >> (8 * i)) & 0xFF;
    bytes(buf, 4);
  }
  void u64(std::uint64_t v) {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = (v >> (8 * i)) & 0xFF;
    bytes(buf, 8);
  }
  std::uint64_t digest() const { return digest_.value(); }

 private:
  std::ostream& out_;
  Digest digest_;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  void bytes(void* data, std::size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (static_cast<std::size_t>(in_.gcount()) != size) {
      throw std::runtime_error("archive truncated");
    }
    digest_.update(data, size);
  }
  std::uint32_t u32() {
    unsigned char buf[4];
    bytes(buf, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{buf[i]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    unsigned char buf[8];
    bytes(buf, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{buf[i]} << (8 * i);
    return v;
  }
  // Reads WITHOUT updating the digest (for the trailing checksum).
  std::uint64_t raw_u64() {
    unsigned char buf[8];
    in_.read(reinterpret_cast<char*>(buf), 8);
    if (in_.gcount() != 8) throw std::runtime_error("archive truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{buf[i]} << (8 * i);
    return v;
  }
  std::uint64_t digest() const { return digest_.value(); }

 private:
  std::istream& in_;
  Digest digest_;
};

}  // namespace

void write_archive(std::ostream& out, const PeriodArchive& archive) {
  VLM_REQUIRE(archive.reports.size() <= kMaxReports,
              "too many reports for one archive");
  Writer w(out);
  w.bytes(kMagic, 4);
  w.u32(kVersion);
  w.u64(archive.period);
  w.u32(static_cast<std::uint32_t>(archive.reports.size()));
  for (const RsuReport& report : archive.reports) {
    VLM_REQUIRE(report.period == archive.period,
                "report period does not match the archive period");
    VLM_REQUIRE(report.bits.size() == (report.array_size + 7) / 8,
                "report byte buffer does not match its array size");
    w.u64(report.rsu.value);
    w.u64(report.counter);
    w.u64(report.array_size);
    w.u32(static_cast<std::uint32_t>(report.bits.size()));
    if (!report.bits.empty()) w.bytes(report.bits.data(), report.bits.size());
  }
  const std::uint64_t checksum = w.digest();
  // The checksum itself is written raw (not folded into the digest).
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = (checksum >> (8 * i)) & 0xFF;
  out.write(reinterpret_cast<const char*>(buf), 8);
  if (!out) throw std::runtime_error("archive write failed");
}

PeriodArchive read_archive(std::istream& in) {
  Reader r(in);
  char magic[4];
  r.bytes(magic, 4);
  if (std::string(magic, 4) != std::string(kMagic, 4)) {
    throw std::runtime_error("not a VLM archive (bad magic)");
  }
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    throw std::runtime_error("unsupported archive version " +
                             std::to_string(version));
  }
  PeriodArchive archive;
  archive.period = r.u64();
  const std::uint32_t count = r.u32();
  if (count > kMaxReports) {
    throw std::runtime_error("implausible report count in archive");
  }
  archive.reports.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RsuReport report;
    report.period = archive.period;
    report.rsu = core::RsuId{r.u64()};
    report.counter = r.u64();
    const std::uint64_t array_size = r.u64();
    if (array_size < 2 || array_size > kMaxArrayBits ||
        !common::is_power_of_two(array_size)) {
      throw std::runtime_error("implausible array size in archive");
    }
    report.array_size = static_cast<std::size_t>(array_size);
    const std::uint32_t byte_count = r.u32();
    if (byte_count != (report.array_size + 7) / 8) {
      throw std::runtime_error("archive byte count does not match array size");
    }
    report.bits.resize(byte_count);
    r.bytes(report.bits.data(), byte_count);
    archive.reports.push_back(std::move(report));
  }
  const std::uint64_t expected = r.digest();
  const std::uint64_t stored = r.raw_u64();
  if (stored != expected) {
    throw std::runtime_error("archive checksum mismatch");
  }
  return archive;
}

void save_archive(const std::string& path, const PeriodArchive& archive) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open archive for writing: " + path);
  write_archive(out, archive);
}

PeriodArchive load_archive(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open archive: " + path);
  return read_archive(in);
}

}  // namespace vlm::vcps
