// DSRC message types (Section IV-B).
//
// A query carries the RSU's id, its certificate, and its bit-array size;
// the vehicle's reply carries ONLY a bit index plus the one-time MAC
// address the privacy-preserving MAC protocol picked for this exchange.
// Nothing in a reply identifies the vehicle — that is the protocol's
// privacy invariant, and tests assert a reply's bytes are a function of
// nothing but (bit_index, one_time_mac).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/types.h"
#include "vcps/pki.h"

namespace vlm::vcps {

struct Query {
  core::RsuId rsu;
  Certificate certificate;
  std::size_t array_size = 0;  // m_x, a power of two
  std::uint64_t period = 0;
};

struct Reply {
  std::size_t bit_index = 0;       // b_x = b mod m_x
  std::uint64_t one_time_mac = 0;  // random, fresh per exchange
};

// End-of-period RSU -> central server report: counter + serialized bits.
struct RsuReport {
  core::RsuId rsu;
  std::uint64_t period = 0;
  std::uint64_t counter = 0;
  std::size_t array_size = 0;
  std::vector<std::uint8_t> bits;
};

}  // namespace vlm::vcps
