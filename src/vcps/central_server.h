// Central server: history tracking, per-period array sizing, report
// ingestion, and pairwise estimation (the offline decoding phase).
//
// The server never sees a vehicle identifier — only counters and bit
// arrays. Each period it (1) tells every RSU its array size, derived from
// the exponentially weighted history of that RSU's point volume
// (Section IV-B's n̄_x) under the configured Scheme (VLM variable-length,
// FBM fixed-length, or any future implementation — the server is fully
// scheme-generic), (2) ingests reports, updating the history, and
// (3) answers point-to-point queries via the Eq. 5 MLE; the full K×K
// matrix decode runs the fused kernel over a parallel pair pipeline and
// records throughput counters in `stats()`.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/estimator.h"
#include "core/od_matrix.h"
#include "core/report_validator.h"
#include "core/scheme.h"
#include "core/types.h"
#include "obs/health.h"
#include "vcps/messages.h"

namespace vlm::vcps {

// Optional defenses against polluted reports (see vcps/adversary.h for
// the threat model each check addresses).
struct ReportValidationConfig {
  bool enabled = false;
  // Occupancy z-score band for the zero count given the counter; catches
  // bit-painting / saturation and counter-vs-bits inconsistencies.
  double tolerance_sigmas = 6.0;
  // Volume anomaly band vs the RSU's history: a counter more than
  // `max_history_ratio` times above (or below 1/ratio of) the expected
  // volume is quarantined; catches reply floods, which are bit-level
  // indistinguishable from honest traffic. Disabled for RSUs whose
  // history is still below `min_history_for_ratio_check`.
  double max_history_ratio = 8.0;
  double min_history_for_ratio_check = 50.0;
};

enum class QuarantineReason {
  kNone,
  kZeroCountAnomaly,  // ReportValidator verdict != plausible
  kVolumeAnomaly,     // counter inconsistent with history
};

struct CentralServerConfig {
  // The masking scheme the deployment runs. Selecting VLM vs FBM (or any
  // other Scheme implementation) is this single construction.
  core::SchemePtr scheme = core::make_vlm_scheme();
  // EWMA weight of the newest period when updating history volumes.
  double history_alpha = 0.25;
  ReportValidationConfig validation = {};
  // Threads for the K×K matrix decode: 1 = serial, 0 = one per core.
  // Any value yields bit-identical estimates.
  unsigned decode_workers = 0;
};

// Per-period observability: what the ingest and decode phases did and
// how long they took. Reset by begin_period(); decode fields cover the
// most recent estimate_matrix() call.
struct PipelineStats {
  std::uint64_t period = 0;
  std::size_t reports_ingested = 0;
  std::size_t reports_quarantined = 0;
  double ingest_seconds = 0.0;  // cumulative wall time inside ingest()
  core::DecodeStats decode;
  // Estimator-health verdicts of the most recent estimate_matrix() call:
  // per-RSU saturation / load-factor drift plus the accuracy model's
  // predicted relative error over the decoded pairs.
  obs::health::HealthSummary health;
};

class CentralServer {
 public:
  explicit CentralServer(const CentralServerConfig& config);

  const core::Scheme& scheme() const { return *scheme_; }

  // Registers an RSU with its initial historical average volume (from
  // past data, as the paper assumes). Must precede any sizing query.
  void register_rsu(core::RsuId id, double initial_history_volume);

  bool is_registered(core::RsuId id) const;
  double history_volume(core::RsuId id) const;

  // m_x for the upcoming period under the configured scheme.
  std::size_t array_size_for(core::RsuId id) const;

  // Starts period `period`, discarding the previous period's reports.
  void begin_period(std::uint64_t period);
  std::uint64_t current_period() const { return period_; }

  // Validates and stores a report; updates the RSU's history volume.
  // Throws std::invalid_argument for unregistered RSUs, wrong period,
  // size mismatch, or duplicate reports. With validation enabled,
  // implausible reports are quarantined instead of stored: they enter
  // neither estimates nor the history, and the returned reason says why.
  QuarantineReason ingest(const RsuReport& report);

  std::size_t reports_received() const { return reports_.size(); }
  std::size_t quarantined_count() const { return quarantined_.size(); }
  QuarantineReason quarantine_reason(core::RsuId id) const;

  // Point-to-point estimate between two reported RSUs for the current
  // period. Throws if either report is missing.
  core::PairEstimate estimate(core::RsuId a, core::RsuId b) const;

  // Same, with a confidence interval from the occupancy-exact accuracy
  // model (`z` = normal quantile, 1.96 ~ 95%).
  core::EstimateInterval estimate_with_interval(core::RsuId a, core::RsuId b,
                                                double z = 1.96) const;

  // The full point-to-point matrix over every RSU that reported this
  // period, in the order given by `matrix_order()`. Needs >= 2 reports.
  // Runs the batched decode pipeline (config.decode_workers threads) and
  // records its throughput in stats().decode.
  std::vector<core::RsuId> matrix_order() const;
  core::OdMatrix estimate_matrix(double z = 1.96) const;

  // Ingest/decode counters and timings for the current period.
  const PipelineStats& stats() const { return stats_; }

 private:
  const RsuReport& report_for(core::RsuId id) const;

  core::SchemePtr scheme_;
  double history_alpha_;
  ReportValidationConfig validation_;
  unsigned decode_workers_;
  std::uint64_t period_ = 0;
  std::unordered_map<core::RsuId, double> history_;
  std::unordered_map<core::RsuId, RsuReport> reports_;
  std::unordered_map<core::RsuId, QuarantineReason> quarantined_;
  mutable PipelineStats stats_;  // decode fields written by const decode
};

}  // namespace vlm::vcps
