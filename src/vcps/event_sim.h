// Discrete-event DSRC simulation of the online coding phase.
//
// The logical VcpsSimulation treats "vehicle passes RSU" as one atomic
// exchange. In the real protocol (Section IV-B) RSUs broadcast queries
// on a fixed interval (e.g. 1 Hz) and a vehicle inside the coverage zone
// receives every broadcast that falls within its dwell window — so a
// vehicle dwelling 4 s past a 1 Hz RSU hears ~4 queries. What it does
// with them matters:
//
//   kAnswerEveryQuery  — the paper's literal reading. The bit array is
//       unaffected (the same bit is set idempotently, and Eq. 5 never
//       reads the counter), but the COUNTER over-counts by the factor
//       dwell/interval, which corrupts the history-driven sizing and
//       trips the occupancy validator (counter too high for the bits).
//   kAnswerOncePerRsu  — the vehicle remembers the last RID it answered
//       and stays silent for repeat queries: counters equal distinct
//       visits. Costs one RID register of state per vehicle.
//
// Events are processed in time order from a priority queue; vehicles
// enter the network as a Poisson process over the period and walk their
// route with per-link travel times.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/encoder.h"
#include "core/rsu_state.h"
#include "vcps/messages.h"

namespace vlm::vcps {

enum class ReplyPolicy {
  kAnswerEveryQuery,
  kAnswerOncePerRsu,
};

struct EventSimConfig {
  core::EncoderConfig encoder;
  double period_seconds = 3'600.0;     // length of the measurement period
  double query_interval_seconds = 1.0; // RSU broadcast period
  double mean_dwell_seconds = 3.0;     // time a vehicle spends in coverage
  double mean_link_travel_seconds = 30.0;  // hop time between stops
  ReplyPolicy reply_policy = ReplyPolicy::kAnswerOncePerRsu;
  std::uint64_t seed = 1;
};

struct EventSimRsu {
  core::RsuId id;
  core::RsuState state;
  std::uint64_t queries_broadcast = 0;
  std::uint64_t replies_received = 0;
};

struct EventSimStats {
  std::uint64_t vehicles_entered = 0;
  std::uint64_t visits = 0;            // distinct (vehicle, RSU) pairs
  std::uint64_t queries_heard = 0;     // broadcasts that reached a vehicle
  std::uint64_t replies_sent = 0;
  std::uint64_t replies_suppressed = 0;  // deduped under kAnswerOncePerRsu
};

class EventSimulation {
 public:
  // `array_sizes[i]` is the bit-array size of RSU i (power of two).
  EventSimulation(const EventSimConfig& config,
                  std::span<const std::size_t> array_sizes);

  // Schedules `count` vehicles whose route visits the RSU indices in
  // `route` (in order), entering at Poisson-distributed times across the
  // period. Call any number of times before run().
  void add_flow(std::span<const std::size_t> route, std::uint64_t count);

  // Processes every event through the end of the period. Idempotent
  // guard: can only run once.
  void run();

  const EventSimRsu& rsu(std::size_t index) const;
  std::size_t rsu_count() const { return rsus_.size(); }
  const EventSimStats& stats() const { return stats_; }

  // End-of-period reports for every RSU, ready for CentralServer::ingest
  // or archiving — bridges the timing simulation into the same offline
  // pipeline the logical simulation feeds.
  std::vector<RsuReport> make_reports(std::uint64_t period) const;

 private:
  struct Flow {
    std::vector<std::size_t> route;
    std::uint64_t count;
  };

  EventSimConfig config_;
  std::vector<EventSimRsu> rsus_;
  std::vector<Flow> flows_;
  EventSimStats stats_;
  bool ran_ = false;
};

}  // namespace vlm::vcps
