#include "vcps/vehicle.h"

#include "common/math_util.h"

namespace vlm::vcps {

Vehicle::Vehicle(core::VehicleIdentity identity, const core::Encoder& encoder,
                 const CertificateAuthority& trust_anchor,
                 std::uint64_t mac_seed)
    : identity_(identity),
      encoder_(encoder),
      trust_anchor_(trust_anchor),
      mac_rng_(mac_seed) {}

std::optional<Reply> Vehicle::handle_query(const Query& query) {
  const bool authentic = trust_anchor_.verify(query.certificate, query.period) &&
                         query.certificate.subject == query.rsu;
  if (!authentic || !common::is_power_of_two(query.array_size)) {
    ++rejected_;
    return std::nullopt;
  }
  Reply reply;
  reply.bit_index = encoder_.bit_index(identity_, query.rsu, query.array_size);
  reply.one_time_mac = mac_rng_.next();
  ++answered_;
  return reply;
}

}  // namespace vlm::vcps
