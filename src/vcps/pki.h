// Toy PKI: RSU certificates and their verification.
//
// Section II-A assumes RSUs are authenticated via public-key certificates
// obtained from trusted third parties; the measurement math never touches
// them — vehicles merely refuse to answer unauthenticated queries. We
// model exactly that control flow with a hash-based MAC "signature".
// THIS IS NOT CRYPTOGRAPHY: it provides the protocol shape (issue, carry
// in queries, verify, reject), not security. See DESIGN.md substitution 2.
#pragma once

#include <cstdint>

#include "core/types.h"

namespace vlm::vcps {

struct Certificate {
  core::RsuId subject;
  std::uint64_t valid_until_period = 0;  // inclusive
  std::uint64_t signature = 0;
};

class CertificateAuthority {
 public:
  explicit CertificateAuthority(std::uint64_t master_secret);

  Certificate issue(core::RsuId subject,
                    std::uint64_t valid_until_period) const;

  // Signature check plus expiry against `current_period`.
  bool verify(const Certificate& cert, std::uint64_t current_period) const;

 private:
  std::uint64_t sign(core::RsuId subject,
                     std::uint64_t valid_until_period) const;

  std::uint64_t master_secret_;
};

}  // namespace vlm::vcps
