#include "vcps/pki.h"

#include "common/hashing.h"

namespace vlm::vcps {

CertificateAuthority::CertificateAuthority(std::uint64_t master_secret)
    : master_secret_(master_secret) {}

std::uint64_t CertificateAuthority::sign(
    core::RsuId subject, std::uint64_t valid_until_period) const {
  // Two chained mixes so flipping subject or expiry perturbs the full tag.
  return common::mix64(common::mix64(master_secret_ ^ subject.value) ^
                       valid_until_period);
}

Certificate CertificateAuthority::issue(
    core::RsuId subject, std::uint64_t valid_until_period) const {
  return Certificate{subject, valid_until_period,
                     sign(subject, valid_until_period)};
}

bool CertificateAuthority::verify(const Certificate& cert,
                                  std::uint64_t current_period) const {
  return cert.signature == sign(cert.subject, cert.valid_until_period) &&
         current_period <= cert.valid_until_period;
}

}  // namespace vlm::vcps
