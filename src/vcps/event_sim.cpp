#include "vcps/event_sim.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/hashing.h"
#include "core/pair_simulation.h"
#include "common/require.h"

namespace vlm::vcps {

namespace {

struct VehicleRun {
  core::VehicleIdentity identity;
  const std::vector<std::size_t>* route;
  std::size_t next_stop = 0;
  std::uint64_t last_answered_rsu = ~std::uint64_t{0};
};

struct Event {
  double time;
  std::size_t vehicle;  // index into the run table
  bool operator>(const Event& other) const { return time > other.time; }
};

double exponential(common::Xoshiro256ss& rng, double mean) {
  return -mean * std::log(std::max(rng.uniform_double(), 1e-15));
}

}  // namespace

EventSimulation::EventSimulation(const EventSimConfig& config,
                                 std::span<const std::size_t> array_sizes)
    : config_(config) {
  VLM_REQUIRE(!array_sizes.empty(), "need at least one RSU");
  VLM_REQUIRE(config.period_seconds > 0.0 &&
                  config.query_interval_seconds > 0.0 &&
                  config.mean_dwell_seconds > 0.0 &&
                  config.mean_link_travel_seconds >= 0.0,
              "timing parameters must be positive");
  rsus_.reserve(array_sizes.size());
  for (std::size_t i = 0; i < array_sizes.size(); ++i) {
    rsus_.push_back(EventSimRsu{core::RsuId{i + 1}, core::RsuState(array_sizes[i]),
                                0, 0});
  }
}

void EventSimulation::add_flow(std::span<const std::size_t> route,
                               std::uint64_t count) {
  VLM_REQUIRE(!ran_, "cannot add flows after run()");
  VLM_REQUIRE(!route.empty(), "a flow needs at least one stop");
  for (std::size_t stop : route) {
    VLM_REQUIRE(stop < rsus_.size(), "route stop out of range");
  }
  flows_.push_back(Flow{{route.begin(), route.end()}, count});
}

void EventSimulation::run() {
  VLM_REQUIRE(!ran_, "simulation already ran");
  VLM_REQUIRE(!flows_.empty(), "no flows scheduled");
  ran_ = true;

  const core::Encoder encoder(config_.encoder);
  common::Xoshiro256ss rng(config_.seed);

  // Materialize vehicles with Poisson entry times (uniform order
  // statistics over the period are equivalent and simpler).
  std::vector<VehicleRun> vehicles;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t vehicle_counter = 0;
  for (const Flow& flow : flows_) {
    for (std::uint64_t v = 0; v < flow.count; ++v) {
      VehicleRun run;
      run.identity = core::synthetic_vehicle(config_.seed, ++vehicle_counter);
      run.route = &flow.route;
      vehicles.push_back(run);
      queue.push(Event{rng.uniform_double() * config_.period_seconds,
                       vehicles.size() - 1});
    }
  }
  stats_.vehicles_entered = vehicles.size();

  // Each event: the vehicle arrives at its next stop, dwells, hears the
  // broadcasts whose ticks fall inside the dwell window, replies per
  // policy, then departs toward the following stop.
  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    if (event.time >= config_.period_seconds) continue;  // period over
    VehicleRun& vehicle = vehicles[event.vehicle];
    const std::size_t stop = (*vehicle.route)[vehicle.next_stop];
    EventSimRsu& rsu = rsus_[stop];
    ++stats_.visits;

    const double dwell = exponential(rng, config_.mean_dwell_seconds);
    const double depart = event.time + dwell;
    // Broadcast ticks of this RSU inside [arrival, min(depart, period)):
    // ticks at k * interval with a per-RSU phase.
    const double phase =
        static_cast<double>(common::hash_to_range(rsu.id.value, 1'000)) /
        1'000.0 * config_.query_interval_seconds;
    const double window_end = std::min(depart, config_.period_seconds);
    double first_tick =
        std::ceil((event.time - phase) / config_.query_interval_seconds) *
            config_.query_interval_seconds +
        phase;
    if (first_tick < event.time) first_tick += config_.query_interval_seconds;
    int heard = 0;
    for (double tick = first_tick; tick < window_end;
         tick += config_.query_interval_seconds) {
      ++heard;
      ++rsu.queries_broadcast;  // counted per reached vehicle
      ++stats_.queries_heard;
      const bool already_answered =
          config_.reply_policy == ReplyPolicy::kAnswerOncePerRsu &&
          vehicle.last_answered_rsu == rsu.id.value;
      if (already_answered) {
        ++stats_.replies_suppressed;
        continue;
      }
      rsu.state.record(encoder.bit_index(vehicle.identity, rsu.id,
                                         rsu.state.array_size()));
      ++rsu.replies_received;
      ++stats_.replies_sent;
      vehicle.last_answered_rsu = rsu.id.value;
    }
    (void)heard;

    // Move on to the next stop, if any, after a link traversal.
    ++vehicle.next_stop;
    if (vehicle.next_stop < vehicle.route->size()) {
      const double travel =
          config_.mean_link_travel_seconds > 0.0
              ? exponential(rng, config_.mean_link_travel_seconds)
              : 0.0;
      queue.push(Event{depart + travel, event.vehicle});
    }
  }
}

const EventSimRsu& EventSimulation::rsu(std::size_t index) const {
  VLM_REQUIRE(index < rsus_.size(), "RSU index out of range");
  return rsus_[index];
}

std::vector<RsuReport> EventSimulation::make_reports(
    std::uint64_t period) const {
  VLM_REQUIRE(ran_, "run() before collecting reports");
  std::vector<RsuReport> reports;
  reports.reserve(rsus_.size());
  for (const EventSimRsu& rsu : rsus_) {
    RsuReport report;
    report.rsu = rsu.id;
    report.period = period;
    report.counter = rsu.state.counter();
    report.array_size = rsu.state.array_size();
    report.bits = rsu.state.bits().to_bytes();
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace vlm::vcps
