// Columnar (SoA) batch ingest engine behind IngestMode::kBatch.
//
// The per-vehicle object loop spends its time on dispatch, not bit work:
// one Vehicle construction, one certificate check, one scalar hash pair,
// and one channel draw per exchange. This module restructures a worker's
// vehicle slice into four flat stages so each cost is paid per batch
// instead of per exchange:
//
//   1. materialize  one bulk CSR itinerary call per slice -> per-RSU SoA
//                   buckets of (masked key, vehicle number) exchange
//                   tuples, sized exactly from the provider's fused
//                   per-RSU histogram (no second scan of the CSR); the
//                   slice's masked keys come from one batched
//                   synthetic_masked_keys derivation and each is reused
//                   for all of that vehicle's visits
//   2. hash         per bucket, every bit index in one encode_batch
//                   kernel call (vectorized two-round splitmix64)
//   3. channel      per bucket, every query/reply/duplicate outcome in
//                   one DsrcChannel::draws_for_batch call
//   4. scatter      surviving deliveries -> RsuState::record_bulk (the
//                   set_scatter kernel) into the worker's shard
//
// Hash-domain invariant: stages 2 and 3 evaluate exactly the hashes the
// serial path evaluates — the encoder's (masked_key, RSU, salt) domains
// and the channel's (seed, period, vehicle number, RSU) domains — so the
// resulting bits, counters, and channel tallies are bit-identical to the
// per-vehicle loop for every worker count and every channel config. The
// ParallelIngest/BatchIngest suites are the acceptance gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/uninit.h"
#include "core/encoder.h"
#include "core/rsu_state.h"
#include "core/types.h"
#include "vcps/channel.h"
#include "vcps/simulation.h"

namespace vlm::vcps {

// One RSU position's columnar exchange tuples plus per-stage scratch,
// all in slice order (ascending vehicle number — the order the serial
// loop visits them, though every stage is order-independent).
// Columns use UninitVector: each is sized exactly (counting pass or
// element-for-element from a sibling column) and then every slot is
// written before any read, so the resize() zero-fill of a plain vector
// would re-touch tens of MB per worker per period for nothing.
struct RsuExchangeBucket {
  common::UninitVector<std::uint64_t> masked_keys;  // stage 1
  // Stage 1, only when the channel is lossy — the loss-free path never
  // draws per-exchange outcomes, so it skips this column entirely.
  common::UninitVector<std::uint64_t> vehicle_numbers;
  common::UninitVector<std::size_t> bit_indices;    // stage 2
  // Stage 3: per-exchange delivery counts (0, 1, or 2). Left EMPTY by a
  // loss-free channel as the "every exchange delivered exactly once"
  // fast path — the scatter stage then feeds bit_indices straight to
  // record_bulk without a per-exchange pass.
  common::UninitVector<std::uint8_t> deliveries;
};

// One worker's buckets (index = RSU position), reused across calls so
// steady-state ingest does not reallocate.
struct ExchangeColumns {
  std::vector<RsuExchangeBucket> buckets;
  // Stage 1 scratch: the slice's itineraries in CSR layout (see
  // BulkItineraryProvider) and one write cursor per RSU.
  common::UninitVector<std::uint32_t> flat_positions;
  std::vector<std::uint64_t> offsets;
  // Stage 1 scratch: the provider's per-RSU visit histogram (bucket
  // sizes) and the slice's batched masked keys, one per vehicle.
  std::vector<std::uint64_t> counts;
  common::UninitVector<std::uint64_t> masked_keys;
  // Stage 1 scratch: per-RSU bump-pointer write cursors into the bucket
  // columns (and their exclusive ends, for the histogram cross-check).
  std::vector<std::uint64_t*> key_cursors;
  std::vector<std::uint64_t*> key_ends;
  std::vector<std::uint64_t*> number_cursors;
  std::vector<std::size_t> scatter;  // stage 4 scratch (lossy channel)

  // Sizes `buckets` to rsu_count and clears every column.
  void reset(std::size_t rsu_count);
};

// Per-RSU constants hoisted out of the per-exchange loops: the validated
// encode target and whether a vehicle would answer this RSU at all (the
// certificate and array-size checks of Vehicle::handle_query are
// vehicle-independent, so they run once per call instead of per reply).
struct RsuIngestContext {
  core::RsuId id;
  core::EncodeTarget target;
  bool replies_answered;
};

// Stage 1 — materialize: fetches the slice's itineraries AND their
// per-RSU histogram with ONE `itineraries` call (CSR layout), sizes
// every bucket exactly from the histogram, derives the masked keys of
// all vehicles in [begin, end) with one batched synthetic_masked_keys
// call (numbered base + v + 1, matching the serial drive_vehicle
// counter), and writes one (masked key, vehicle number) tuple per visit
// through per-RSU cursors in a single pass over the CSR — no counting
// sweep, no per-visit growth checks. `with_vehicle_numbers` = false
// (loss-free channel: stage 3 never reads them) skips the
// vehicle-number column entirely. Throws if an itinerary emits a
// position >= rsu_count or the histogram disagrees with the CSR (the
// cursor-bound check catches any lying provider before a bucket
// overflows).
void materialize_exchanges(std::uint64_t seed, std::uint64_t base,
                           std::size_t begin, std::size_t end,
                           const BulkItineraryProvider& itineraries,
                           std::size_t rsu_count, bool with_vehicle_numbers,
                           ExchangeColumns& columns);

// Stage 2 — hash: fills every answered bucket's bit_indices through
// Encoder::bit_indices (the dispatched encode_batch kernel). Buckets of
// RSUs that vehicles reject are skipped — the serial path never encodes
// for them either.
void hash_bit_indices(const core::Encoder& encoder,
                      std::span<const RsuIngestContext> rsus,
                      ExchangeColumns& columns);

// Stage 3 — channel: fills every bucket's deliveries via
// DsrcChannel::draws_for_batch, accumulating the worker's tally. A
// loss-free channel leaves deliveries empty (see RsuExchangeBucket).
void draw_channel_outcomes(const DsrcChannel& channel, std::uint64_t period,
                           std::span<const RsuIngestContext> rsus,
                           ExchangeColumns& columns, ChannelTally& tally);

// Stage 4 — scatter: records every surviving delivery (a count-2
// delivery lands its bit index twice, so the shard counter matches the
// serial loop's two record() calls) into shard[position] via
// record_bulk. Returns the number of recorded deliveries — the slice's
// IngestStats::exchanges contribution.
std::uint64_t scatter_into_shards(std::span<const RsuIngestContext> rsus,
                                  ExchangeColumns& columns,
                                  std::span<core::RsuState> shard);

}  // namespace vlm::vcps
