// Roadside-unit protocol endpoint.
//
// Broadcasts queries carrying its certificate and current bit-array size,
// records each reply into its RsuState (Eqs. 1-2), and produces the
// end-of-period report for the central server. Malformed replies (bit
// index out of range) are counted and dropped rather than trusted —
// an over-the-air reply is attacker-controlled input.
#pragma once

#include <cstdint>

#include "core/rsu_state.h"
#include "core/types.h"
#include "vcps/messages.h"
#include "vcps/pki.h"

namespace vlm::vcps {

class Rsu {
 public:
  Rsu(core::RsuId id, Certificate certificate, std::size_t array_size);

  core::RsuId id() const { return id_; }
  const core::RsuState& state() const { return state_; }

  Query make_query(std::uint64_t period) const;

  // Returns false (and counts) if the reply is malformed.
  bool handle_reply(const Reply& reply);

  // Merges a worker shard collected for THIS RSU during the current
  // period (counters add, bit arrays OR — order-independent), plus the
  // malformed-reply count the worker tallied. The shard's array size
  // must match the RSU's current size.
  void absorb_shard(const core::RsuState& shard,
                    std::uint64_t invalid_replies);

  RsuReport make_report(std::uint64_t period) const;

  // New measurement period, possibly with a re-sized array (the central
  // server re-derives m_x from updated history each period).
  void begin_period(std::size_t array_size);

  std::uint64_t invalid_replies() const { return invalid_replies_; }

 private:
  core::RsuId id_;
  Certificate certificate_;
  core::RsuState state_;
  std::uint64_t invalid_replies_ = 0;
};

}  // namespace vlm::vcps
