// End-to-end VCPS measurement simulation.
//
// Wires together the certificate authority, a fleet of RSUs, the DSRC
// channel, and the central server, and drives complete measurement
// periods from a caller-supplied vehicle stream. This is the layer the
// examples use; figure benches bypass it and call core directly for
// speed (the protocol adds certificate checks and message objects per
// visit but lands bits in exactly the same places — a test asserts the
// equivalence).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/uninit.h"
#include "core/encoder.h"
#include "obs/health.h"
#include "vcps/central_server.h"
#include "vcps/channel.h"
#include "vcps/pki.h"
#include "vcps/rsu.h"

namespace vlm::vcps {

struct SimulationConfig {
  // Vehicles encode with the scheme configured on the server — the
  // scheme owns the one encoder both sides must share, so a VLM/FBM
  // (or future-scheme) deployment is a single Scheme construction here.
  CentralServerConfig server;
  ChannelConfig channel;
  std::uint64_t ca_master_secret = 0xCAFEBABE12345678ull;
  std::uint64_t seed = 1;
};

struct RsuSite {
  core::RsuId id;
  double initial_history_volume = 0.0;
};

// Itinerary provider for the batch ingest path: fills `positions`
// (indices into the registered site list) for vehicle `v` in [0, count).
// Must be a pure function of `v` — workers call it concurrently, each for
// its own slice of vehicles.
using ItineraryProvider =
    std::function<void(std::uint64_t v, std::vector<std::size_t>& positions)>;

// Bulk itinerary provider: fills the itineraries of every vehicle in
// [begin, end) in CSR layout — vehicle (begin + i)'s RSU positions are
// positions[offsets[i]] .. positions[offsets[i + 1]]. Must produce
// exactly the per-vehicle lists an ItineraryProvider would, vehicle by
// vehicle, and be a pure function of the range. One call per worker
// slice instead of one per vehicle: this is the form the ingest engines
// consume, and the per-vehicle form is adapted into it.
//
// `counts` must be filled with the block's per-RSU visit histogram —
// size rsu_count, counts[r] = number of positions equal to r — which the
// batch engine uses to size its SoA buckets without re-scanning the CSR.
// The engine cross-checks the histogram against the positions it
// actually sees, so a provider bug fails loudly instead of corrupting
// buckets.
//
// `positions` is an UninitVector: providers must size it and write every
// slot in range (CSR emission does exactly that), so the engine never
// pays a value-init memset over a whole slice per call.
using BulkItineraryProvider = std::function<void(
    std::uint64_t begin, std::uint64_t end,
    common::UninitVector<std::uint32_t>& positions,
    std::vector<std::uint64_t>& offsets, std::vector<std::uint64_t>& counts)>;

// How drive_vehicles turns a vehicle slice into shard updates. Both
// engines produce bit-identical reports AND channel tallies for every
// worker count; the choice is purely a performance decision.
// VLM_INGEST=scalar|batch|auto steers how kAuto resolves at runtime;
// explicitly requested engines always win, so the A/B bit-identity
// suites keep comparing both engines under any environment.
enum class IngestMode {
  // Per-vehicle object loop: one Vehicle, one query, one reply at a
  // time. The reference engine the batch path is asserted against.
  kScalar,
  // Staged columnar pipeline (ingest_batch.h): materialize SoA exchange
  // tuples, batch-hash bit indices through the encode_batch kernel,
  // batch the channel draws, scatter through set_bulk.
  kBatch,
  // Currently resolves to kBatch.
  kAuto,
};

// How the batch engine schedules its four stages within a worker slice.
// Both schedules run the same stages over the same vehicles in the same
// scatter order, so reports and tallies are bit-identical — the choice
// is purely a locality/throughput decision.
// VLM_INGEST_PIPELINE=off|overlap|auto steers how kAuto resolves at
// runtime (explicit requests win, as with VLM_INGEST). Ignored by the
// scalar engine.
enum class PipelineMode {
  // One pass: materialize the whole slice, then hash, channel, and
  // scatter the whole slice. Simple, but the slice's exchange tuples
  // cycle through the cache hierarchy once per stage.
  kOff,
  // Software-pipelined: the slice is split into cache-sized sub-slices
  // processed through two ExchangeColumns buffers — materialize of
  // sub-slice k + 1 is issued back-to-back with hash/channel/scatter of
  // sub-slice k, so the downstream stages consume tuples that are still
  // resident instead of refetching a whole slice from DRAM.
  kOverlap,
  // Currently resolves to kOverlap.
  kAuto,
};

// Throughput counters for one drive_vehicles() call.
struct IngestStats {
  std::uint64_t vehicles = 0;
  std::uint64_t exchanges = 0;  // successful query/reply deliveries
  unsigned workers = 1;
  double seconds = 0.0;
  // ISA the kernel dispatch selected for the encode/merge/recount sweeps
  // ("scalar", "avx2", "avx512") — a static string, never freed.
  const char* kernel_isa = "scalar";
  // Engine that ran after VLM_INGEST/auto resolution ("scalar" or
  // "batch") — a static string, never freed.
  const char* path = "scalar";
  // Stage schedule that ran after VLM_INGEST_PIPELINE/auto resolution
  // ("off" or "overlap"; always "off" on the scalar path) — a static
  // string, never freed.
  const char* pipeline = "off";
  // Batch path only: per-stage seconds summed across workers (CPU time,
  // not wall time; the stages of different workers overlap). Zero on the
  // scalar path. Under PipelineMode::kOverlap each worker's stage time
  // is itself summed over its sub-slices.
  double materialize_seconds = 0.0;
  double hash_seconds = 0.0;
  double channel_seconds = 0.0;
  double scatter_seconds = 0.0;
  // Batch path only: seconds inside the per-worker sub-slice loop
  // (prologue materialize included), summed across workers. The
  // denominator of the bench's overlap-efficiency ratio — the sum of the
  // four stage times divided by this approaches 1.0 when the schedule
  // keeps the worker busy with stage work and drops when buffer swaps or
  // stalls eat the slice.
  double pipeline_seconds = 0.0;
  // Parallel regions this ingest dispatched to the persistent WorkerPool
  // and the pool's lifetime total afterwards — the pooled threads are
  // reused across periods, never respawned per call.
  std::uint64_t pool_dispatches = 0;
  std::uint64_t pool_lifetime_dispatches = 0;
  double vehicles_per_second() const {
    return seconds > 0.0 ? static_cast<double>(vehicles) / seconds : 0.0;
  }
};

class VcpsSimulation {
 public:
  VcpsSimulation(const SimulationConfig& config, std::span<const RsuSite> sites);

  std::size_t rsu_count() const { return rsus_.size(); }
  const Rsu& rsu(std::size_t position) const;
  const CentralServer& server() const { return server_; }
  const DsrcChannel& channel() const { return channel_; }
  const core::Scheme& scheme() const { return server_.scheme(); }
  const core::Encoder& encoder() const { return server_.scheme().encoder(); }

  // Starts a measurement period: server re-derives every RSU's array size
  // from history; RSUs reset their state.
  void begin_period();
  std::uint64_t current_period() const { return period_; }

  // Drives one vehicle through the RSUs at `rsu_positions` (indices into
  // the registered site list). A fresh vehicle identity is derived from
  // the simulation seed and an internal vehicle counter. Returns the
  // number of successful query/reply exchanges.
  std::size_t drive_vehicle(std::span<const std::size_t> rsu_positions);

  // Same, with an explicit identity (for tests that need to re-drive a
  // known vehicle).
  std::size_t drive_vehicle_as(const core::VehicleIdentity& identity,
                               std::span<const std::size_t> rsu_positions);

  // Sharded batch ingest: drives `count` fresh vehicles (numbered as if
  // drive_vehicle had been called `count` times) through the full
  // protocol across `workers` threads (0 = one per core). Each worker
  // runs a contiguous vehicle slice against its own per-RSU shard states
  // and the shards are OR-merged into the real RSUs after the join, so
  // the per-RSU bits AND counters are bit-identical for every worker
  // count. Channel loss/duplication draws are seeded per (vehicle, RSU)
  // via DsrcChannel::*_for — order-independent, unlike the sequential
  // stream drive_vehicle consumes — which means a lossy drive_vehicles
  // run matches other drive_vehicles runs exactly, and matches a
  // drive_vehicle loop exactly when the channel is loss-free (no draws
  // happen at all). `mode` picks the per-slice engine (see IngestMode)
  // and `pipeline` the batch engine's stage schedule (see PipelineMode);
  // the VLM_INGEST and VLM_INGEST_PIPELINE environment variables steer
  // how the kAuto defaults resolve (explicit requests win).
  IngestStats drive_vehicles(std::uint64_t count,
                             const ItineraryProvider& itinerary,
                             unsigned workers = 0,
                             IngestMode mode = IngestMode::kAuto,
                             PipelineMode pipeline = PipelineMode::kAuto);

  // Same, fed by the bulk CSR form directly — skips the per-vehicle
  // function call and copy of the adapted path, which measurably raises
  // materialize-stage throughput on workloads (like MultiRsuWorkload)
  // that can emit whole slices natively.
  IngestStats drive_vehicles(std::uint64_t count,
                             const BulkItineraryProvider& itineraries,
                             unsigned workers = 0,
                             IngestMode mode = IngestMode::kAuto,
                             PipelineMode pipeline = PipelineMode::kAuto);

  // Ends the period: every RSU reports to the central server, then the
  // fleet's states get a period-close health assessment (saturation /
  // load-factor drift), retrievable via last_health().
  void end_period();

  // Health verdicts of the most recent end_period() call.
  const obs::health::HealthSummary& last_health() const {
    return last_health_;
  }

  // Post-report estimate between two sites.
  core::PairEstimate estimate(std::size_t position_a,
                              std::size_t position_b) const;

  std::uint64_t vehicles_driven() const { return vehicles_driven_; }

 private:
  CertificateAuthority ca_;
  CentralServer server_;
  DsrcChannel channel_;
  std::vector<Rsu> rsus_;
  std::uint64_t seed_;
  std::uint64_t period_ = 0;
  std::uint64_t vehicles_driven_ = 0;
  bool period_open_ = false;
  obs::health::HealthSummary last_health_;
};

}  // namespace vlm::vcps
