// End-to-end VCPS measurement simulation.
//
// Wires together the certificate authority, a fleet of RSUs, the DSRC
// channel, and the central server, and drives complete measurement
// periods from a caller-supplied vehicle stream. This is the layer the
// examples use; figure benches bypass it and call core directly for
// speed (the protocol adds certificate checks and message objects per
// visit but lands bits in exactly the same places — a test asserts the
// equivalence).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/encoder.h"
#include "vcps/central_server.h"
#include "vcps/channel.h"
#include "vcps/pki.h"
#include "vcps/rsu.h"

namespace vlm::vcps {

struct SimulationConfig {
  // Vehicles encode with the scheme configured on the server — the
  // scheme owns the one encoder both sides must share, so a VLM/FBM
  // (or future-scheme) deployment is a single Scheme construction here.
  CentralServerConfig server;
  ChannelConfig channel;
  std::uint64_t ca_master_secret = 0xCAFEBABE12345678ull;
  std::uint64_t seed = 1;
};

struct RsuSite {
  core::RsuId id;
  double initial_history_volume = 0.0;
};

// Itinerary provider for the batch ingest path: fills `positions`
// (indices into the registered site list) for vehicle `v` in [0, count).
// Must be a pure function of `v` — workers call it concurrently, each for
// its own slice of vehicles.
using ItineraryProvider =
    std::function<void(std::uint64_t v, std::vector<std::size_t>& positions)>;

// Bulk itinerary provider: fills the itineraries of every vehicle in
// [begin, end) in CSR layout — vehicle (begin + i)'s RSU positions are
// positions[offsets[i]] .. positions[offsets[i + 1]]. Must produce
// exactly the per-vehicle lists an ItineraryProvider would, vehicle by
// vehicle, and be a pure function of the range. One call per worker
// slice instead of one per vehicle: this is the form the ingest engines
// consume, and the per-vehicle form is adapted into it.
using BulkItineraryProvider = std::function<void(
    std::uint64_t begin, std::uint64_t end,
    std::vector<std::uint32_t>& positions,
    std::vector<std::uint64_t>& offsets)>;

// How drive_vehicles turns a vehicle slice into shard updates. Both
// engines produce bit-identical reports AND channel tallies for every
// worker count; the choice is purely a performance decision, overridable
// at runtime with VLM_INGEST=scalar|batch|auto (mirrors VLM_DECODE).
enum class IngestMode {
  // Per-vehicle object loop: one Vehicle, one query, one reply at a
  // time. The reference engine the batch path is asserted against.
  kScalar,
  // Staged columnar pipeline (ingest_batch.h): materialize SoA exchange
  // tuples, batch-hash bit indices through the encode_batch kernel,
  // batch the channel draws, scatter through set_bulk.
  kBatch,
  // Currently resolves to kBatch.
  kAuto,
};

// Throughput counters for one drive_vehicles() call.
struct IngestStats {
  std::uint64_t vehicles = 0;
  std::uint64_t exchanges = 0;  // successful query/reply deliveries
  unsigned workers = 1;
  double seconds = 0.0;
  // ISA the kernel dispatch selected for the encode/merge/recount sweeps
  // ("scalar", "avx2", "avx512") — a static string, never freed.
  const char* kernel_isa = "scalar";
  // Engine that ran after VLM_INGEST/auto resolution ("scalar" or
  // "batch") — a static string, never freed.
  const char* path = "scalar";
  // Batch path only: per-stage seconds summed across workers (CPU time,
  // not wall time; the stages of different workers overlap). Zero on the
  // scalar path.
  double materialize_seconds = 0.0;
  double hash_seconds = 0.0;
  double channel_seconds = 0.0;
  double scatter_seconds = 0.0;
  // Parallel regions this ingest dispatched to the persistent WorkerPool
  // and the pool's lifetime total afterwards — the pooled threads are
  // reused across periods, never respawned per call.
  std::uint64_t pool_dispatches = 0;
  std::uint64_t pool_lifetime_dispatches = 0;
  double vehicles_per_second() const {
    return seconds > 0.0 ? static_cast<double>(vehicles) / seconds : 0.0;
  }
};

class VcpsSimulation {
 public:
  VcpsSimulation(const SimulationConfig& config, std::span<const RsuSite> sites);

  std::size_t rsu_count() const { return rsus_.size(); }
  const Rsu& rsu(std::size_t position) const;
  const CentralServer& server() const { return server_; }
  const DsrcChannel& channel() const { return channel_; }
  const core::Scheme& scheme() const { return server_.scheme(); }
  const core::Encoder& encoder() const { return server_.scheme().encoder(); }

  // Starts a measurement period: server re-derives every RSU's array size
  // from history; RSUs reset their state.
  void begin_period();
  std::uint64_t current_period() const { return period_; }

  // Drives one vehicle through the RSUs at `rsu_positions` (indices into
  // the registered site list). A fresh vehicle identity is derived from
  // the simulation seed and an internal vehicle counter. Returns the
  // number of successful query/reply exchanges.
  std::size_t drive_vehicle(std::span<const std::size_t> rsu_positions);

  // Same, with an explicit identity (for tests that need to re-drive a
  // known vehicle).
  std::size_t drive_vehicle_as(const core::VehicleIdentity& identity,
                               std::span<const std::size_t> rsu_positions);

  // Sharded batch ingest: drives `count` fresh vehicles (numbered as if
  // drive_vehicle had been called `count` times) through the full
  // protocol across `workers` threads (0 = one per core). Each worker
  // runs a contiguous vehicle slice against its own per-RSU shard states
  // and the shards are OR-merged into the real RSUs after the join, so
  // the per-RSU bits AND counters are bit-identical for every worker
  // count. Channel loss/duplication draws are seeded per (vehicle, RSU)
  // via DsrcChannel::*_for — order-independent, unlike the sequential
  // stream drive_vehicle consumes — which means a lossy drive_vehicles
  // run matches other drive_vehicles runs exactly, and matches a
  // drive_vehicle loop exactly when the channel is loss-free (no draws
  // happen at all). `mode` picks the per-slice engine (see IngestMode);
  // the VLM_INGEST environment variable overrides it.
  IngestStats drive_vehicles(std::uint64_t count,
                             const ItineraryProvider& itinerary,
                             unsigned workers = 0,
                             IngestMode mode = IngestMode::kAuto);

  // Same, fed by the bulk CSR form directly — skips the per-vehicle
  // function call and copy of the adapted path, which measurably raises
  // materialize-stage throughput on workloads (like MultiRsuWorkload)
  // that can emit whole slices natively.
  IngestStats drive_vehicles(std::uint64_t count,
                             const BulkItineraryProvider& itineraries,
                             unsigned workers = 0,
                             IngestMode mode = IngestMode::kAuto);

  // Ends the period: every RSU reports to the central server.
  void end_period();

  // Post-report estimate between two sites.
  core::PairEstimate estimate(std::size_t position_a,
                              std::size_t position_b) const;

  std::uint64_t vehicles_driven() const { return vehicles_driven_; }

 private:
  CertificateAuthority ca_;
  CentralServer server_;
  DsrcChannel channel_;
  std::vector<Rsu> rsus_;
  std::uint64_t seed_;
  std::uint64_t period_ = 0;
  std::uint64_t vehicles_driven_ = 0;
  bool period_open_ = false;
};

}  // namespace vlm::vcps
