// Binary persistence for measurement periods.
//
// RSU reports are the system of record: a regulator re-running an
// estimate, or a study aggregating months of periods, needs them on
// disk. The format is deliberately simple and self-checking:
//
//   [magic "VLMA"] [u32 version] [u64 period] [u32 report_count]
//   repeated: [u64 rsu_id] [u64 counter] [u64 array_size]
//             [u32 byte_count] [bytes...]
//   [u64 checksum over everything before it]
//
// All integers little-endian. The checksum is a mix64-chained digest —
// integrity against corruption and truncation, not authentication.
// Readers validate magic, version, counts, sizes, and the checksum, and
// reject anything inconsistent with a descriptive exception.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "vcps/messages.h"

namespace vlm::vcps {

struct PeriodArchive {
  std::uint64_t period = 0;
  std::vector<RsuReport> reports;
};

// Stream interface (unit-testable without touching the filesystem).
void write_archive(std::ostream& out, const PeriodArchive& archive);
PeriodArchive read_archive(std::istream& in);

// File convenience wrappers. Throw std::runtime_error on I/O failure.
void save_archive(const std::string& path, const PeriodArchive& archive);
PeriodArchive load_archive(const std::string& path);

}  // namespace vlm::vcps
