// Adversary models for robustness testing (defensive evaluation).
//
// The protocol's replies are unauthenticated by design — any radio can
// inject them (authenticating them would require exactly the vehicle
// identifiers the scheme exists to avoid). These helpers simulate the
// two cheap attacks that follow, so tests and benches can quantify the
// damage and verify that the server-side ReportValidator catches them:
//
//   - flood: inject k random-bit replies. Each forged reply is
//     statistically identical to an honest one (that indistinguishability
//     IS the privacy property), so a flood cannot be detected from the
//     report's internal statistics — only from its volume anomaly
//     against the RSU's history, which the central server's optional
//     history bound checks;
//   - paint: sweep bit indices to saturate the array. The resulting
//     collision-free bit pattern is wildly inconsistent with a uniform
//     process at this counter value, and the ReportValidator's
//     occupancy z-score flags it.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "vcps/rsu.h"

namespace vlm::vcps {

class Adversary {
 public:
  explicit Adversary(std::uint64_t seed);

  // Sends `count` uniformly random replies to the RSU. Returns how many
  // were accepted.
  std::uint64_t flood(Rsu& rsu, std::uint64_t count);

  // Sets every `stride`-th bit via forged replies (stride >= 1). The
  // counter advances once per forged reply, so the array ends up with a
  // collision-free density no uniform process would produce.
  std::uint64_t paint(Rsu& rsu, std::size_t stride);

 private:
  common::Xoshiro256ss rng_;
};

}  // namespace vlm::vcps
