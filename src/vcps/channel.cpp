#include "vcps/channel.h"

#include "common/hashing.h"
#include "common/require.h"

namespace vlm::vcps {

namespace {
// Domain separators so the query-loss, reply-loss, and duplication draws
// of one exchange are independent.
constexpr std::uint64_t kQueryDomain = 0x9E6C63C0DE11F00Dull;
constexpr std::uint64_t kReplyDomain = 0xB5EC0DEDF00DCAFEull;
constexpr std::uint64_t kDuplicateDomain = 0x2545F4914F6CDD1Dull;
}  // namespace

DsrcChannel::DsrcChannel(const ChannelConfig& config, std::uint64_t seed)
    : config_(config), seed_(seed), rng_(seed) {
  VLM_REQUIRE(config.query_loss >= 0.0 && config.query_loss < 1.0,
              "query loss must be in [0, 1)");
  VLM_REQUIRE(config.reply_loss >= 0.0 && config.reply_loss < 1.0,
              "reply loss must be in [0, 1)");
  VLM_REQUIRE(config.reply_duplicate >= 0.0 && config.reply_duplicate < 1.0,
              "reply duplication must be in [0, 1)");
}

bool DsrcChannel::query_delivered() {
  if (config_.query_loss > 0.0 && rng_.bernoulli(config_.query_loss)) {
    ++queries_lost_;
    return false;
  }
  return true;
}

int DsrcChannel::deliveries_for_reply() {
  if (config_.reply_loss > 0.0 && rng_.bernoulli(config_.reply_loss)) {
    ++replies_lost_;
    return 0;
  }
  if (config_.reply_duplicate > 0.0 &&
      rng_.bernoulli(config_.reply_duplicate)) {
    ++replies_duplicated_;
    return 2;
  }
  return 1;
}

double DsrcChannel::unit_draw(std::uint64_t period,
                              std::uint64_t vehicle_number, core::RsuId rsu,
                              std::uint64_t domain) const {
  // Two mix rounds over the exchange coordinates: one round leaves
  // measurable XOR structure between adjacent vehicle numbers.
  const std::uint64_t h = common::mix64(
      common::mix64(seed_ ^ domain ^ period * 0x9E3779B97F4A7C15ull) ^
      vehicle_number * 0xC2B2AE3D27D4EB4Full ^
      rsu.value * 0xD1B54A32D192ED03ull);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool DsrcChannel::query_delivered_for(std::uint64_t period,
                                      std::uint64_t vehicle_number,
                                      core::RsuId rsu,
                                      ChannelTally& tally) const {
  if (config_.query_loss > 0.0 &&
      unit_draw(period, vehicle_number, rsu, kQueryDomain) <
          config_.query_loss) {
    ++tally.queries_lost;
    return false;
  }
  return true;
}

int DsrcChannel::deliveries_for_reply_for(std::uint64_t period,
                                          std::uint64_t vehicle_number,
                                          core::RsuId rsu,
                                          ChannelTally& tally) const {
  if (config_.reply_loss > 0.0 &&
      unit_draw(period, vehicle_number, rsu, kReplyDomain) <
          config_.reply_loss) {
    ++tally.replies_lost;
    return 0;
  }
  if (config_.reply_duplicate > 0.0 &&
      unit_draw(period, vehicle_number, rsu, kDuplicateDomain) <
          config_.reply_duplicate) {
    ++tally.replies_duplicated;
    return 2;
  }
  return 1;
}

std::uint64_t DsrcChannel::draws_for_batch(
    std::uint64_t period, std::span<const std::uint64_t> vehicle_numbers,
    core::RsuId rsu, bool replies_answered, std::span<std::uint8_t> deliveries,
    ChannelTally& tally) const {
  VLM_REQUIRE(vehicle_numbers.size() == deliveries.size(),
              "batch draws need one delivery slot per exchange");
  const std::size_t n = vehicle_numbers.size();
  if (lossless()) {
    const std::uint8_t unit = replies_answered ? 1 : 0;
    for (std::size_t i = 0; i < n; ++i) deliveries[i] = unit;
    return replies_answered ? n : 0;
  }
  // unit_draw expanded with the per-(period, RSU, domain) terms hoisted:
  // mix64(mix64(seed ^ domain ^ period*K1) ^ vn*K2 ^ rsu*K3) becomes one
  // mix64 per draw over a precomputed base XOR the per-vehicle term.
  const std::uint64_t rsu_term = rsu.value * 0xD1B54A32D192ED03ull;
  const std::uint64_t period_term = period * 0x9E3779B97F4A7C15ull;
  const std::uint64_t query_base =
      common::mix64(seed_ ^ kQueryDomain ^ period_term) ^ rsu_term;
  const std::uint64_t reply_base =
      common::mix64(seed_ ^ kReplyDomain ^ period_term) ^ rsu_term;
  const std::uint64_t duplicate_base =
      common::mix64(seed_ ^ kDuplicateDomain ^ period_term) ^ rsu_term;
  const auto unit = [](std::uint64_t base, std::uint64_t vehicle_term) {
    return static_cast<double>(common::mix64(base ^ vehicle_term) >> 11) *
           0x1.0p-53;
  };
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t vehicle_term =
        vehicle_numbers[i] * 0xC2B2AE3D27D4EB4Full;
    if (config_.query_loss > 0.0 &&
        unit(query_base, vehicle_term) < config_.query_loss) {
      ++tally.queries_lost;
      deliveries[i] = 0;
      continue;
    }
    if (!replies_answered) {
      // The query arrived but the vehicle rejects it (bad certificate or
      // array size); the serial path draws no reply outcome either.
      deliveries[i] = 0;
      continue;
    }
    if (config_.reply_loss > 0.0 &&
        unit(reply_base, vehicle_term) < config_.reply_loss) {
      ++tally.replies_lost;
      deliveries[i] = 0;
      continue;
    }
    if (config_.reply_duplicate > 0.0 &&
        unit(duplicate_base, vehicle_term) < config_.reply_duplicate) {
      ++tally.replies_duplicated;
      deliveries[i] = 2;
      delivered += 2;
      continue;
    }
    deliveries[i] = 1;
    ++delivered;
  }
  return delivered;
}

void DsrcChannel::absorb(const ChannelTally& tally) {
  queries_lost_ += tally.queries_lost;
  replies_lost_ += tally.replies_lost;
  replies_duplicated_ += tally.replies_duplicated;
}

}  // namespace vlm::vcps
