#include "vcps/channel.h"

#include "common/require.h"

namespace vlm::vcps {

DsrcChannel::DsrcChannel(const ChannelConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  VLM_REQUIRE(config.query_loss >= 0.0 && config.query_loss < 1.0,
              "query loss must be in [0, 1)");
  VLM_REQUIRE(config.reply_loss >= 0.0 && config.reply_loss < 1.0,
              "reply loss must be in [0, 1)");
  VLM_REQUIRE(config.reply_duplicate >= 0.0 && config.reply_duplicate < 1.0,
              "reply duplication must be in [0, 1)");
}

bool DsrcChannel::query_delivered() {
  if (config_.query_loss > 0.0 && rng_.bernoulli(config_.query_loss)) {
    ++queries_lost_;
    return false;
  }
  return true;
}

int DsrcChannel::deliveries_for_reply() {
  if (config_.reply_loss > 0.0 && rng_.bernoulli(config_.reply_loss)) {
    ++replies_lost_;
    return 0;
  }
  if (config_.reply_duplicate > 0.0 &&
      rng_.bernoulli(config_.reply_duplicate)) {
    ++replies_duplicated_;
    return 2;
  }
  return 1;
}

}  // namespace vlm::vcps
