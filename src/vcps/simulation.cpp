#include "vcps/simulation.h"

#include <algorithm>

#include "common/env_override.h"
#include "common/hashing.h"
#include "common/kernels/kernels.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "common/require.h"
#include "core/pair_simulation.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "vcps/ingest_batch.h"
#include "vcps/vehicle.h"

namespace vlm::vcps {

namespace {
constexpr std::uint64_t kCertLifetimePeriods = 1'000'000;

// Ingest-side metrics. IngestStats is the per-call view over these atoms
// (same increments, same sites — a test pins the equivalence). All
// handles register together on the first period, so the exported key set
// is identical for every worker count: the per-worker encode time lands
// in ONE histogram whose count is the number of workers, never in
// per-worker keys. The four stage histograms record only on the batch
// path (one sample per worker per stage).
struct IngestMetrics {
  obs::Counter& vehicles;
  obs::Counter& exchanges;
  obs::Counter& queries_lost;
  obs::Counter& replies_lost;
  obs::Counter& replies_duplicated;
  obs::Info& kernel_isa;
  obs::Info& ingest_path;
  obs::Histogram& period_begin;   // begin_period(): sizing + RSU resets
  obs::Histogram& period_ingest;  // one whole drive_vehicles() call
  obs::Histogram& period_close;   // end_period(): reports into the server
  obs::Histogram& encode_worker;  // per-worker protocol/encode slice time
  obs::Histogram& shard_merge;    // OR-merging worker shards into RSUs
  obs::Histogram& stage_materialize;  // batch stage 1 per worker
  obs::Histogram& stage_hash;         // batch stage 2 per worker
  obs::Histogram& stage_channel;      // batch stage 3 per worker
  obs::Histogram& stage_scatter;      // batch stage 4 per worker
};

IngestMetrics& ingest_metrics() {
  static IngestMetrics* metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::global();
    return new IngestMetrics{r.counter("ingest/vehicles"),
                             r.counter("ingest/exchanges"),
                             r.counter("channel/queries_lost"),
                             r.counter("channel/replies_lost"),
                             r.counter("channel/replies_duplicated"),
                             r.info("kernel/isa"),
                             r.info("ingest/path"),
                             obs::phase("period/begin"),
                             obs::phase("period/ingest"),
                             obs::phase("period/close"),
                             obs::phase("ingest/encode_worker"),
                             obs::phase("ingest/shard_merge"),
                             obs::phase("ingest/materialize"),
                             obs::phase("ingest/hash"),
                             obs::phase("ingest/channel"),
                             obs::phase("ingest/scatter")};
  }();
  return *metrics;
}

// VLM_INGEST=scalar|batch|auto overrides the caller's engine choice,
// exactly like VLM_DECODE overrides the decode mode: parsed once,
// warn-and-keep on an unrecognized value.
IngestMode apply_env_override(IngestMode mode) {
  static constexpr common::EnvEnumChoice kChoices[] = {
      {"scalar", static_cast<int>(IngestMode::kScalar)},
      {"batch", static_cast<int>(IngestMode::kBatch)},
      {"auto", static_cast<int>(IngestMode::kAuto)}};
  static const int parsed = common::parse_env_enum("VLM_INGEST", kChoices, -1);
  return parsed < 0 ? mode : static_cast<IngestMode>(parsed);
}

// Adapts the per-vehicle itinerary form to the bulk CSR form both ingest
// engines consume. Pays the per-vehicle function call the bulk form
// avoids — callers that can produce CSR natively should pass it directly.
BulkItineraryProvider adapt_itinerary(const ItineraryProvider& itinerary,
                                      std::size_t rsu_count) {
  return [&itinerary, rsu_count](std::uint64_t begin, std::uint64_t end,
                                 std::vector<std::uint32_t>& positions,
                                 std::vector<std::uint64_t>& offsets) {
    std::vector<std::size_t> scratch;
    positions.clear();
    offsets.clear();
    offsets.reserve(static_cast<std::size_t>(end - begin) + 1);
    offsets.push_back(0);
    for (std::uint64_t v = begin; v < end; ++v) {
      itinerary(v, scratch);
      for (const std::size_t position : scratch) {
        VLM_REQUIRE(position < rsu_count, "RSU position out of range");
        positions.push_back(static_cast<std::uint32_t>(position));
      }
      offsets.push_back(positions.size());
    }
  };
}
}  // namespace

VcpsSimulation::VcpsSimulation(const SimulationConfig& config,
                               std::span<const RsuSite> sites)
    : ca_(config.ca_master_secret),
      server_(config.server),
      channel_(config.channel, common::mix64(config.seed ^ 0xC4A22E1ull)),
      seed_(config.seed) {
  VLM_REQUIRE(!sites.empty(), "simulation needs at least one RSU site");
  rsus_.reserve(sites.size());
  for (const RsuSite& site : sites) {
    server_.register_rsu(site.id, site.initial_history_volume);
    rsus_.emplace_back(site.id, ca_.issue(site.id, kCertLifetimePeriods),
                       server_.array_size_for(site.id));
  }
}

const Rsu& VcpsSimulation::rsu(std::size_t position) const {
  VLM_REQUIRE(position < rsus_.size(), "RSU position out of range");
  return rsus_[position];
}

void VcpsSimulation::begin_period() {
  const obs::Span span(ingest_metrics().period_begin);
  ++period_;
  server_.begin_period(period_);
  for (Rsu& rsu : rsus_) {
    rsu.begin_period(server_.array_size_for(rsu.id()));
  }
  period_open_ = true;
}

std::size_t VcpsSimulation::drive_vehicle(
    std::span<const std::size_t> rsu_positions) {
  const std::uint64_t n = ++vehicles_driven_;
  return drive_vehicle_as(core::synthetic_vehicle(seed_, n), rsu_positions);
}

std::size_t VcpsSimulation::drive_vehicle_as(
    const core::VehicleIdentity& identity,
    std::span<const std::size_t> rsu_positions) {
  VLM_REQUIRE(period_open_, "begin_period() before driving vehicles");
  Vehicle vehicle(identity, encoder(), ca_,
                  common::mix64(identity.masked_key() ^ period_));
  std::size_t exchanges = 0;
  for (std::size_t position : rsu_positions) {
    VLM_REQUIRE(position < rsus_.size(), "RSU position out of range");
    Rsu& rsu = rsus_[position];
    if (!channel_.query_delivered()) continue;
    const auto reply = vehicle.handle_query(rsu.make_query(period_));
    if (!reply.has_value()) continue;
    const int deliveries = channel_.deliveries_for_reply();
    for (int d = 0; d < deliveries; ++d) {
      if (rsu.handle_reply(*reply)) ++exchanges;
    }
  }
  return exchanges;
}

IngestStats VcpsSimulation::drive_vehicles(std::uint64_t count,
                                           const ItineraryProvider& itinerary,
                                           unsigned workers, IngestMode mode) {
  return drive_vehicles(count, adapt_itinerary(itinerary, rsus_.size()),
                        workers, mode);
}

IngestStats VcpsSimulation::drive_vehicles(
    std::uint64_t count, const BulkItineraryProvider& itineraries,
    unsigned workers, IngestMode mode) {
  VLM_REQUIRE(period_open_, "begin_period() before driving vehicles");
  IngestMetrics& metrics = ingest_metrics();
  obs::Span ingest_span(metrics.period_ingest);
  const std::uint64_t pool_before =
      common::WorkerPool::instance().dispatch_count();
  const unsigned used = workers == 0 ? common::default_worker_count() : workers;
  const std::uint64_t base = vehicles_driven_;
  const std::size_t rsu_count = rsus_.size();
  IngestMode resolved = apply_env_override(mode);
  if (resolved == IngestMode::kAuto) resolved = IngestMode::kBatch;
  const bool batch = resolved == IngestMode::kBatch;

  // Worker-local state: one RsuState shard per (worker, RSU) — bits plus
  // counter — a failure tally, a malformed-reply count per RSU, and an
  // exchange count. Nothing shared is written until the join.
  const unsigned shard_count = static_cast<unsigned>(
      std::min<std::uint64_t>(used, count == 0 ? 1 : count));
  std::vector<std::vector<core::RsuState>> shards;
  std::vector<std::vector<std::uint64_t>> invalid(
      shard_count, std::vector<std::uint64_t>(rsu_count, 0));
  std::vector<ChannelTally> tallies(shard_count);
  std::vector<std::uint64_t> exchanges(shard_count, 0);
  shards.reserve(shard_count);
  for (unsigned w = 0; w < shard_count; ++w) {
    std::vector<core::RsuState> shard;
    shard.reserve(rsu_count);
    for (const Rsu& rsu : rsus_) {
      shard.emplace_back(rsu.state().array_size());
    }
    shards.push_back(std::move(shard));
  }

  IngestStats stats;
  stats.path = batch ? "batch" : "scalar";

  if (!batch) {
    // Reference engine: the per-vehicle object loop, one exchange at a
    // time. The batch pipeline below must land bit-identical shards.
    common::parallel_slices(
        static_cast<std::size_t>(count), used,
        [&](unsigned worker, std::size_t begin, std::size_t end) {
          const obs::Span encode_span(metrics.encode_worker);
          std::vector<core::RsuState>& shard = shards[worker];
          ChannelTally& tally = tallies[worker];
          std::vector<std::uint32_t> positions;
          std::vector<std::uint64_t> offsets;
          itineraries(begin, end, positions, offsets);
          VLM_REQUIRE(offsets.size() == end - begin + 1,
                      "bulk itinerary provider produced a malformed CSR");
          for (std::size_t v = begin; v < end; ++v) {
            // Same numbering as the serial drive_vehicle counter, so the
            // vehicle identities — and therefore the bits — are the same
            // population regardless of how the ingest is driven.
            const std::uint64_t vehicle_number = base + v + 1;
            const core::VehicleIdentity identity =
                core::synthetic_vehicle(seed_, vehicle_number);
            Vehicle vehicle(identity, encoder(), ca_,
                            common::mix64(identity.masked_key() ^ period_));
            for (std::uint64_t o = offsets[v - begin];
                 o < offsets[v - begin + 1]; ++o) {
              const std::uint32_t position = positions[o];
              VLM_REQUIRE(position < shard.size(), "RSU position out of range");
              const Rsu& rsu = rsus_[position];
              if (!channel_.query_delivered_for(period_, vehicle_number,
                                                rsu.id(), tally)) {
                continue;
              }
              const auto reply = vehicle.handle_query(rsu.make_query(period_));
              if (!reply.has_value()) continue;
              const int deliveries = channel_.deliveries_for_reply_for(
                  period_, vehicle_number, rsu.id(), tally);
              for (int d = 0; d < deliveries; ++d) {
                if (reply->bit_index >= shard[position].array_size()) {
                  ++invalid[worker][position];
                } else {
                  shard[position].record(reply->bit_index);
                  ++exchanges[worker];
                }
              }
            }
          }
        });
  } else {
    // Columnar engine: hoist the per-RSU constants (validated encode
    // target; whether a vehicle would answer the query at all — the
    // certificate/size checks are vehicle-independent), then run the
    // four SoA stages per worker slice. See ingest_batch.h for the
    // hash-domain invariant that keeps this bit-identical to the loop
    // above.
    std::vector<RsuIngestContext> contexts;
    contexts.reserve(rsu_count);
    for (const Rsu& rsu : rsus_) {
      const Query query = rsu.make_query(period_);
      const bool answered = ca_.verify(query.certificate, query.period) &&
                            query.certificate.subject == query.rsu &&
                            common::is_power_of_two(query.array_size);
      contexts.push_back(RsuIngestContext{
          rsu.id(), core::EncodeTarget(rsu.state().array_size()), answered});
    }
    std::vector<ExchangeColumns> columns(shard_count);
    struct StageSeconds {
      double materialize = 0.0, hash = 0.0, channel = 0.0, scatter = 0.0;
    };
    std::vector<StageSeconds> stage(shard_count);
    common::parallel_slices(
        static_cast<std::size_t>(count), used,
        [&](unsigned worker, std::size_t begin, std::size_t end) {
          const obs::Span encode_span(metrics.encode_worker);
          ExchangeColumns& cols = columns[worker];
          StageSeconds& secs = stage[worker];
          {
            obs::Span span(metrics.stage_materialize);
            materialize_exchanges(seed_, base, begin, end, itineraries,
                                  rsu_count, !channel_.lossless(), cols);
            secs.materialize = span.finish();
          }
          {
            obs::Span span(metrics.stage_hash);
            hash_bit_indices(encoder(), contexts, cols);
            secs.hash = span.finish();
          }
          {
            obs::Span span(metrics.stage_channel);
            draw_channel_outcomes(channel_, period_, contexts, cols,
                                  tallies[worker]);
            secs.channel = span.finish();
          }
          {
            obs::Span span(metrics.stage_scatter);
            exchanges[worker] =
                scatter_into_shards(contexts, cols, shards[worker]);
            secs.scatter = span.finish();
          }
        });
    for (const StageSeconds& secs : stage) {
      stats.materialize_seconds += secs.materialize;
      stats.hash_seconds += secs.hash;
      stats.channel_seconds += secs.channel;
      stats.scatter_seconds += secs.scatter;
    }
  }

  // Period close: OR-merge every worker's shards into the real RSUs and
  // sum the tallies. All merges commute, so the result is independent of
  // worker count and merge order.
  {
    const obs::Span merge_span(metrics.shard_merge);
    for (std::size_t r = 0; r < rsu_count; ++r) {
      for (unsigned w = 0; w < shard_count; ++w) {
        rsus_[r].absorb_shard(shards[w][r], invalid[w][r]);
      }
    }
  }
  ChannelTally lost;
  for (unsigned w = 0; w < shard_count; ++w) {
    channel_.absorb(tallies[w]);
    lost.queries_lost += tallies[w].queries_lost;
    lost.replies_lost += tallies[w].replies_lost;
    lost.replies_duplicated += tallies[w].replies_duplicated;
    stats.exchanges += exchanges[w];
  }
  vehicles_driven_ += count;
  stats.vehicles = count;
  stats.workers = shard_count;
  stats.kernel_isa = common::kernels::active_name();
  stats.pool_lifetime_dispatches =
      common::WorkerPool::instance().dispatch_count();
  stats.pool_dispatches = stats.pool_lifetime_dispatches - pool_before;

  // Mirror the per-call stats into the registry — same values, same
  // site, so a registry delta across one call equals the struct.
  metrics.vehicles.add(count);
  metrics.exchanges.add(stats.exchanges);
  metrics.queries_lost.add(lost.queries_lost);
  metrics.replies_lost.add(lost.replies_lost);
  metrics.replies_duplicated.add(lost.replies_duplicated);
  metrics.kernel_isa.set(stats.kernel_isa);
  metrics.ingest_path.set(stats.path);
  stats.seconds = ingest_span.finish();
  return stats;
}

void VcpsSimulation::end_period() {
  VLM_REQUIRE(period_open_, "no open period to end");
  const obs::Span span(ingest_metrics().period_close);
  for (const Rsu& rsu : rsus_) {
    server_.ingest(rsu.make_report(period_));
  }
  period_open_ = false;
}

core::PairEstimate VcpsSimulation::estimate(std::size_t position_a,
                                            std::size_t position_b) const {
  return server_.estimate(rsu(position_a).id(), rsu(position_b).id());
}

}  // namespace vlm::vcps
