#include "vcps/simulation.h"

#include "common/hashing.h"
#include "core/pair_simulation.h"
#include "common/require.h"
#include "vcps/vehicle.h"

namespace vlm::vcps {

namespace {
constexpr std::uint64_t kCertLifetimePeriods = 1'000'000;
}

VcpsSimulation::VcpsSimulation(const SimulationConfig& config,
                               std::span<const RsuSite> sites)
    : ca_(config.ca_master_secret),
      server_(config.server),
      channel_(config.channel, common::mix64(config.seed ^ 0xC4A22E1ull)),
      seed_(config.seed) {
  VLM_REQUIRE(!sites.empty(), "simulation needs at least one RSU site");
  rsus_.reserve(sites.size());
  for (const RsuSite& site : sites) {
    server_.register_rsu(site.id, site.initial_history_volume);
    rsus_.emplace_back(site.id, ca_.issue(site.id, kCertLifetimePeriods),
                       server_.array_size_for(site.id));
  }
}

const Rsu& VcpsSimulation::rsu(std::size_t position) const {
  VLM_REQUIRE(position < rsus_.size(), "RSU position out of range");
  return rsus_[position];
}

void VcpsSimulation::begin_period() {
  ++period_;
  server_.begin_period(period_);
  for (Rsu& rsu : rsus_) {
    rsu.begin_period(server_.array_size_for(rsu.id()));
  }
  period_open_ = true;
}

std::size_t VcpsSimulation::drive_vehicle(
    std::span<const std::size_t> rsu_positions) {
  const std::uint64_t n = ++vehicles_driven_;
  return drive_vehicle_as(core::synthetic_vehicle(seed_, n), rsu_positions);
}

std::size_t VcpsSimulation::drive_vehicle_as(
    const core::VehicleIdentity& identity,
    std::span<const std::size_t> rsu_positions) {
  VLM_REQUIRE(period_open_, "begin_period() before driving vehicles");
  Vehicle vehicle(identity, encoder(), ca_,
                  common::mix64(identity.masked_key() ^ period_));
  std::size_t exchanges = 0;
  for (std::size_t position : rsu_positions) {
    VLM_REQUIRE(position < rsus_.size(), "RSU position out of range");
    Rsu& rsu = rsus_[position];
    if (!channel_.query_delivered()) continue;
    const auto reply = vehicle.handle_query(rsu.make_query(period_));
    if (!reply.has_value()) continue;
    const int deliveries = channel_.deliveries_for_reply();
    for (int d = 0; d < deliveries; ++d) {
      if (rsu.handle_reply(*reply)) ++exchanges;
    }
  }
  return exchanges;
}

void VcpsSimulation::end_period() {
  VLM_REQUIRE(period_open_, "no open period to end");
  for (const Rsu& rsu : rsus_) {
    server_.ingest(rsu.make_report(period_));
  }
  period_open_ = false;
}

core::PairEstimate VcpsSimulation::estimate(std::size_t position_a,
                                            std::size_t position_b) const {
  return server_.estimate(rsu(position_a).id(), rsu(position_b).id());
}

}  // namespace vlm::vcps
