#include "vcps/simulation.h"

#include <algorithm>
#include <array>

#include "common/env_override.h"
#include "common/hashing.h"
#include "common/kernels/kernels.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "common/require.h"
#include "core/pair_simulation.h"
#include "obs/clock.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vcps/ingest_batch.h"
#include "vcps/vehicle.h"

namespace vlm::vcps {

namespace {
constexpr std::uint64_t kCertLifetimePeriods = 1'000'000;

// Ingest-side metrics. IngestStats is the per-call view over these atoms
// (same increments, same sites — a test pins the equivalence). All
// handles register together on the first period, so the exported key set
// is identical for every worker count: the per-worker encode time lands
// in ONE histogram whose count is the number of workers, never in
// per-worker keys. The four stage histograms record only on the batch
// path (one sample per worker per stage).
struct IngestMetrics {
  obs::Counter& vehicles;
  obs::Counter& exchanges;
  obs::Counter& queries_lost;
  obs::Counter& replies_lost;
  obs::Counter& replies_duplicated;
  obs::Info& kernel_isa;
  obs::Info& ingest_path;
  obs::Histogram& period_begin;   // begin_period(): sizing + RSU resets
  obs::Histogram& period_ingest;  // one whole drive_vehicles() call
  obs::Histogram& period_close;   // end_period(): reports into the server
  obs::Histogram& encode_worker;  // per-worker protocol/encode slice time
  obs::Histogram& shard_merge;    // OR-merging worker shards into RSUs
  obs::Histogram& stage_materialize;  // batch stage 1 per worker
  obs::Histogram& stage_hash;         // batch stage 2 per worker
  obs::Histogram& stage_channel;      // batch stage 3 per worker
  obs::Histogram& stage_scatter;      // batch stage 4 per worker
  // Per-worker wall time of the overlap schedule's sub-slice loop
  // (records only under PipelineMode::kOverlap — the off schedule has
  // no such loop).
  obs::Histogram& pipeline_overlap;
};

IngestMetrics& ingest_metrics() {
  static IngestMetrics* metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::global();
    return new IngestMetrics{r.counter("ingest/vehicles"),
                             r.counter("ingest/exchanges"),
                             r.counter("channel/queries_lost"),
                             r.counter("channel/replies_lost"),
                             r.counter("channel/replies_duplicated"),
                             r.info("kernel/isa"),
                             r.info("ingest/path"),
                             obs::phase("period/begin"),
                             obs::phase("period/ingest"),
                             obs::phase("period/close"),
                             obs::phase("ingest/encode_worker"),
                             obs::phase("ingest/shard_merge"),
                             obs::phase("ingest/materialize"),
                             obs::phase("ingest/hash"),
                             obs::phase("ingest/channel"),
                             obs::phase("ingest/scatter"),
                             obs::phase("ingest/pipeline_overlap")};
  }();
  return *metrics;
}

// VLM_INGEST=scalar|batch|auto steers how IngestMode::kAuto resolves
// (parsed once, warn-and-keep on an unrecognized value, like
// VLM_DECODE). Unlike VLM_DECODE it does NOT override an explicitly
// requested engine: the bit-identity suites pin kScalar and kBatch
// side by side and assert per-engine stats, so a process-wide forced
// engine would make them compare an engine against itself. CI jobs that
// pin VLM_INGEST therefore steer every default-mode caller (tools,
// servers) while the explicit A/B gates keep testing both engines.
IngestMode apply_env_override(IngestMode mode) {
  static constexpr common::EnvEnumChoice kChoices[] = {
      {"scalar", static_cast<int>(IngestMode::kScalar)},
      {"batch", static_cast<int>(IngestMode::kBatch)},
      {"auto", static_cast<int>(IngestMode::kAuto)}};
  static const int parsed = common::parse_env_enum("VLM_INGEST", kChoices, -1);
  if (mode != IngestMode::kAuto || parsed < 0) return mode;
  return static_cast<IngestMode>(parsed);
}

// VLM_INGEST_PIPELINE=off|overlap|auto steers how PipelineMode::kAuto
// resolves, with the same explicit-request-wins rule as VLM_INGEST (the
// pipeline suites pin kOff and kOverlap side by side).
PipelineMode apply_pipeline_override(PipelineMode pipeline) {
  static constexpr common::EnvEnumChoice kChoices[] = {
      {"off", static_cast<int>(PipelineMode::kOff)},
      {"overlap", static_cast<int>(PipelineMode::kOverlap)},
      {"auto", static_cast<int>(PipelineMode::kAuto)}};
  static const int parsed =
      common::parse_env_enum("VLM_INGEST_PIPELINE", kChoices, -1);
  if (pipeline != PipelineMode::kAuto || parsed < 0) return pipeline;
  return static_cast<PipelineMode>(parsed);
}

// Vehicles per pipelined sub-slice. Sized so one sub-slice's exchange
// tuples (~3 visits x 16-24 bytes per vehicle) plus the itinerary CSR
// stay comfortably inside a per-core L2, which is the whole point of the
// overlap schedule.
constexpr std::size_t kPipelineSubSlice = 16384;

// Adapts the per-vehicle itinerary form to the bulk CSR form both ingest
// engines consume. Pays the per-vehicle function call the bulk form
// avoids — callers that can produce CSR natively should pass it directly.
BulkItineraryProvider adapt_itinerary(const ItineraryProvider& itinerary,
                                      std::size_t rsu_count) {
  return [&itinerary, rsu_count](std::uint64_t begin, std::uint64_t end,
                                 common::UninitVector<std::uint32_t>& positions,
                                 std::vector<std::uint64_t>& offsets,
                                 std::vector<std::uint64_t>& counts) {
    std::vector<std::size_t> scratch;
    positions.clear();
    offsets.clear();
    offsets.reserve(static_cast<std::size_t>(end - begin) + 1);
    offsets.push_back(0);
    counts.assign(rsu_count, 0);
    for (std::uint64_t v = begin; v < end; ++v) {
      itinerary(v, scratch);
      for (const std::size_t position : scratch) {
        VLM_REQUIRE(position < rsu_count, "RSU position out of range");
        positions.push_back(static_cast<std::uint32_t>(position));
        ++counts[position];
      }
      offsets.push_back(positions.size());
    }
  };
}
}  // namespace

VcpsSimulation::VcpsSimulation(const SimulationConfig& config,
                               std::span<const RsuSite> sites)
    : ca_(config.ca_master_secret),
      server_(config.server),
      channel_(config.channel, common::mix64(config.seed ^ 0xC4A22E1ull)),
      seed_(config.seed) {
  VLM_REQUIRE(!sites.empty(), "simulation needs at least one RSU site");
  rsus_.reserve(sites.size());
  for (const RsuSite& site : sites) {
    server_.register_rsu(site.id, site.initial_history_volume);
    rsus_.emplace_back(site.id, ca_.issue(site.id, kCertLifetimePeriods),
                       server_.array_size_for(site.id));
  }
}

const Rsu& VcpsSimulation::rsu(std::size_t position) const {
  VLM_REQUIRE(position < rsus_.size(), "RSU position out of range");
  return rsus_[position];
}

void VcpsSimulation::begin_period() {
  const obs::Span span(ingest_metrics().period_begin);
  ++period_;
  server_.begin_period(period_);
  for (Rsu& rsu : rsus_) {
    rsu.begin_period(server_.array_size_for(rsu.id()));
  }
  period_open_ = true;
}

std::size_t VcpsSimulation::drive_vehicle(
    std::span<const std::size_t> rsu_positions) {
  const std::uint64_t n = ++vehicles_driven_;
  return drive_vehicle_as(core::synthetic_vehicle(seed_, n), rsu_positions);
}

std::size_t VcpsSimulation::drive_vehicle_as(
    const core::VehicleIdentity& identity,
    std::span<const std::size_t> rsu_positions) {
  VLM_REQUIRE(period_open_, "begin_period() before driving vehicles");
  Vehicle vehicle(identity, encoder(), ca_,
                  common::mix64(identity.masked_key() ^ period_));
  std::size_t exchanges = 0;
  for (std::size_t position : rsu_positions) {
    VLM_REQUIRE(position < rsus_.size(), "RSU position out of range");
    Rsu& rsu = rsus_[position];
    if (!channel_.query_delivered()) continue;
    const auto reply = vehicle.handle_query(rsu.make_query(period_));
    if (!reply.has_value()) continue;
    const int deliveries = channel_.deliveries_for_reply();
    for (int d = 0; d < deliveries; ++d) {
      if (rsu.handle_reply(*reply)) ++exchanges;
    }
  }
  return exchanges;
}

IngestStats VcpsSimulation::drive_vehicles(std::uint64_t count,
                                           const ItineraryProvider& itinerary,
                                           unsigned workers, IngestMode mode,
                                           PipelineMode pipeline) {
  return drive_vehicles(count, adapt_itinerary(itinerary, rsus_.size()),
                        workers, mode, pipeline);
}

IngestStats VcpsSimulation::drive_vehicles(
    std::uint64_t count, const BulkItineraryProvider& itineraries,
    unsigned workers, IngestMode mode, PipelineMode pipeline) {
  VLM_REQUIRE(period_open_, "begin_period() before driving vehicles");
  IngestMetrics& metrics = ingest_metrics();
  obs::Span ingest_span(metrics.period_ingest);
  const std::uint64_t pool_before =
      common::WorkerPool::instance().dispatch_count();
  const unsigned used = workers == 0 ? common::default_worker_count() : workers;
  const std::uint64_t base = vehicles_driven_;
  const std::size_t rsu_count = rsus_.size();
  IngestMode resolved = apply_env_override(mode);
  if (resolved == IngestMode::kAuto) resolved = IngestMode::kBatch;
  const bool batch = resolved == IngestMode::kBatch;
  PipelineMode schedule = apply_pipeline_override(pipeline);
  if (schedule == PipelineMode::kAuto) schedule = PipelineMode::kOverlap;
  const bool overlap = batch && schedule == PipelineMode::kOverlap;

  // Worker-local state: one RsuState shard per (worker, RSU) — bits plus
  // counter — a failure tally, a malformed-reply count per RSU, and an
  // exchange count. Nothing shared is written until the join.
  const unsigned shard_count = static_cast<unsigned>(
      std::min<std::uint64_t>(used, count == 0 ? 1 : count));
  std::vector<std::vector<core::RsuState>> shards;
  std::vector<std::vector<std::uint64_t>> invalid(
      shard_count, std::vector<std::uint64_t>(rsu_count, 0));
  std::vector<ChannelTally> tallies(shard_count);
  std::vector<std::uint64_t> exchanges(shard_count, 0);
  shards.reserve(shard_count);
  for (unsigned w = 0; w < shard_count; ++w) {
    std::vector<core::RsuState> shard;
    shard.reserve(rsu_count);
    for (const Rsu& rsu : rsus_) {
      shard.emplace_back(rsu.state().array_size());
    }
    shards.push_back(std::move(shard));
  }

  IngestStats stats;
  stats.path = batch ? "batch" : "scalar";
  stats.pipeline = overlap ? "overlap" : "off";

  if (!batch) {
    // Reference engine: the per-vehicle object loop, one exchange at a
    // time. The batch pipeline below must land bit-identical shards.
    common::parallel_slices(
        static_cast<std::size_t>(count), used,
        [&](unsigned worker, std::size_t begin, std::size_t end) {
          const obs::Span encode_span(metrics.encode_worker);
          std::vector<core::RsuState>& shard = shards[worker];
          ChannelTally& tally = tallies[worker];
          common::UninitVector<std::uint32_t> positions;
          std::vector<std::uint64_t> offsets;
          std::vector<std::uint64_t> counts;  // unused by this engine
          itineraries(begin, end, positions, offsets, counts);
          VLM_REQUIRE(offsets.size() == end - begin + 1,
                      "bulk itinerary provider produced a malformed CSR");
          for (std::size_t v = begin; v < end; ++v) {
            // Same numbering as the serial drive_vehicle counter, so the
            // vehicle identities — and therefore the bits — are the same
            // population regardless of how the ingest is driven.
            const std::uint64_t vehicle_number = base + v + 1;
            const core::VehicleIdentity identity =
                core::synthetic_vehicle(seed_, vehicle_number);
            Vehicle vehicle(identity, encoder(), ca_,
                            common::mix64(identity.masked_key() ^ period_));
            for (std::uint64_t o = offsets[v - begin];
                 o < offsets[v - begin + 1]; ++o) {
              const std::uint32_t position = positions[o];
              VLM_REQUIRE(position < shard.size(), "RSU position out of range");
              const Rsu& rsu = rsus_[position];
              if (!channel_.query_delivered_for(period_, vehicle_number,
                                                rsu.id(), tally)) {
                continue;
              }
              const auto reply = vehicle.handle_query(rsu.make_query(period_));
              if (!reply.has_value()) continue;
              const int deliveries = channel_.deliveries_for_reply_for(
                  period_, vehicle_number, rsu.id(), tally);
              for (int d = 0; d < deliveries; ++d) {
                if (reply->bit_index >= shard[position].array_size()) {
                  ++invalid[worker][position];
                } else {
                  shard[position].record(reply->bit_index);
                  ++exchanges[worker];
                }
              }
            }
          }
        });
  } else {
    // Columnar engine: hoist the per-RSU constants (validated encode
    // target; whether a vehicle would answer the query at all — the
    // certificate/size checks are vehicle-independent), then run the
    // four SoA stages per worker slice. See ingest_batch.h for the
    // hash-domain invariant that keeps this bit-identical to the loop
    // above.
    std::vector<RsuIngestContext> contexts;
    contexts.reserve(rsu_count);
    for (const Rsu& rsu : rsus_) {
      const Query query = rsu.make_query(period_);
      const bool answered = ca_.verify(query.certificate, query.period) &&
                            query.certificate.subject == query.rsu &&
                            common::is_power_of_two(query.array_size);
      contexts.push_back(RsuIngestContext{
          rsu.id(), core::EncodeTarget(rsu.state().array_size()), answered});
    }
    // Two ExchangeColumns per worker: the overlap schedule materializes
    // sub-slice k + 1 into one while draining the other; the off
    // schedule only ever touches [0].
    std::vector<std::array<ExchangeColumns, 2>> columns(shard_count);
    struct StageSeconds {
      double materialize = 0.0, hash = 0.0, channel = 0.0, scatter = 0.0;
      double pipeline = 0.0;
    };
    std::vector<StageSeconds> stage(shard_count);
    common::parallel_slices(
        static_cast<std::size_t>(count), used,
        [&](unsigned worker, std::size_t begin, std::size_t end) {
          const obs::Span encode_span(metrics.encode_worker);
          StageSeconds& secs = stage[worker];
          // Stage bodies accumulate seconds across however many
          // sub-slices the schedule runs; each stage histogram then gets
          // ONE observation per worker (below) whichever schedule ran,
          // so the exported key set and sample counts match across
          // modes.
          // Each stage body is also a flight-recorder scope per
          // sub-slice: the histograms keep one observation per worker,
          // the trace shows every individual sub-slice iteration.
          const auto materialize = [&](std::size_t b, std::size_t e,
                                       ExchangeColumns& cols) {
            const obs::trace::TraceScope scope("ingest/materialize");
            const obs::Stopwatch watch;
            materialize_exchanges(seed_, base, b, e, itineraries, rsu_count,
                                  !channel_.lossless(), cols);
            secs.materialize += watch.seconds();
          };
          const auto drain = [&](ExchangeColumns& cols) {
            obs::Stopwatch watch;
            {
              const obs::trace::TraceScope scope("ingest/hash");
              hash_bit_indices(encoder(), contexts, cols);
            }
            secs.hash += watch.seconds();
            watch.restart();
            {
              const obs::trace::TraceScope scope("ingest/channel");
              draw_channel_outcomes(channel_, period_, contexts, cols,
                                    tallies[worker]);
            }
            secs.channel += watch.seconds();
            watch.restart();
            {
              const obs::trace::TraceScope scope("ingest/scatter");
              exchanges[worker] +=
                  scatter_into_shards(contexts, cols, shards[worker]);
            }
            secs.scatter += watch.seconds();
          };
          if (!overlap) {
            materialize(begin, end, columns[worker][0]);
            drain(columns[worker][0]);
          } else {
            // Software pipeline: prologue-materialize sub-slice 0, then
            // alternate buffers so each drain consumes tuples written
            // immediately before it (still cache-resident) while the
            // other buffer is refilled for the next iteration. Stage
            // order per sub-slice is unchanged and sub-slices drain in
            // ascending vehicle order, so every bucket's record_bulk
            // stream is the off schedule's stream cut into chunks —
            // bit-identical shards.
            obs::Span loop_span(metrics.pipeline_overlap);
            materialize(begin, std::min(begin + kPipelineSubSlice, end),
                        columns[worker][0]);
            unsigned current = 0;
            for (std::size_t b = begin; b < end; b += kPipelineSubSlice) {
              const std::size_t next_b = b + kPipelineSubSlice;
              if (next_b < end) {
                materialize(next_b, std::min(next_b + kPipelineSubSlice, end),
                            columns[worker][current ^ 1]);
              }
              drain(columns[worker][current]);
              current ^= 1;
            }
            secs.pipeline = loop_span.finish();
          }
          const auto nanos = [](double seconds) {
            return static_cast<std::uint64_t>(seconds * 1e9);
          };
          metrics.stage_materialize.observe(nanos(secs.materialize));
          metrics.stage_hash.observe(nanos(secs.hash));
          metrics.stage_channel.observe(nanos(secs.channel));
          metrics.stage_scatter.observe(nanos(secs.scatter));
        });
    for (const StageSeconds& secs : stage) {
      stats.materialize_seconds += secs.materialize;
      stats.hash_seconds += secs.hash;
      stats.channel_seconds += secs.channel;
      stats.scatter_seconds += secs.scatter;
      stats.pipeline_seconds += secs.pipeline;
    }
  }

  // Period close: OR-merge every worker's shards into the real RSUs and
  // sum the tallies. All merges commute, so the result is independent of
  // worker count and merge order.
  {
    const obs::Span merge_span(metrics.shard_merge);
    for (std::size_t r = 0; r < rsu_count; ++r) {
      for (unsigned w = 0; w < shard_count; ++w) {
        rsus_[r].absorb_shard(shards[w][r], invalid[w][r]);
      }
    }
  }
  ChannelTally lost;
  for (unsigned w = 0; w < shard_count; ++w) {
    channel_.absorb(tallies[w]);
    lost.queries_lost += tallies[w].queries_lost;
    lost.replies_lost += tallies[w].replies_lost;
    lost.replies_duplicated += tallies[w].replies_duplicated;
    stats.exchanges += exchanges[w];
  }
  vehicles_driven_ += count;
  stats.vehicles = count;
  stats.workers = shard_count;
  stats.kernel_isa = common::kernels::active_name();
  stats.pool_lifetime_dispatches =
      common::WorkerPool::instance().dispatch_count();
  stats.pool_dispatches = stats.pool_lifetime_dispatches - pool_before;

  // Mirror the per-call stats into the registry — same values, same
  // site, so a registry delta across one call equals the struct.
  metrics.vehicles.add(count);
  metrics.exchanges.add(stats.exchanges);
  metrics.queries_lost.add(lost.queries_lost);
  metrics.replies_lost.add(lost.replies_lost);
  metrics.replies_duplicated.add(lost.replies_duplicated);
  metrics.kernel_isa.set(stats.kernel_isa);
  metrics.ingest_path.set(stats.path);
  stats.seconds = ingest_span.finish();
  return stats;
}

void VcpsSimulation::end_period() {
  VLM_REQUIRE(period_open_, "no open period to end");
  const obs::Span span(ingest_metrics().period_close);
  for (const Rsu& rsu : rsus_) {
    server_.ingest(rsu.make_report(period_));
  }
  // Period-close estimator health (inside the close span — the span
  // tiling gate budgets it as part of closing the period): saturation
  // and load-factor drift over the fleet's just-reported states.
  obs::health::HealthOptions health_options;
  health_options.target_load_factor = scheme().target_load_factor();
  health_options.s = scheme().s();
  std::vector<const core::RsuState*> states;
  states.reserve(rsus_.size());
  for (const Rsu& rsu : rsus_) states.push_back(&rsu.state());
  last_health_ = obs::health::assess_rsus(
      std::span<const core::RsuState* const>(states), health_options);
  period_open_ = false;
}

core::PairEstimate VcpsSimulation::estimate(std::size_t position_a,
                                            std::size_t position_b) const {
  return server_.estimate(rsu(position_a).id(), rsu(position_b).id());
}

}  // namespace vlm::vcps
