#include "vcps/adversary.h"

#include "common/require.h"

namespace vlm::vcps {

Adversary::Adversary(std::uint64_t seed) : rng_(seed) {}

std::uint64_t Adversary::flood(Rsu& rsu, std::uint64_t count) {
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    Reply forged;
    forged.bit_index =
        static_cast<std::size_t>(rng_.uniform(rsu.state().array_size()));
    forged.one_time_mac = rng_.next();
    if (rsu.handle_reply(forged)) ++accepted;
  }
  return accepted;
}

std::uint64_t Adversary::paint(Rsu& rsu, std::size_t stride) {
  VLM_REQUIRE(stride >= 1, "stride must be at least 1");
  std::uint64_t accepted = 0;
  for (std::size_t i = 0; i < rsu.state().array_size(); i += stride) {
    Reply forged{i, rng_.next()};
    if (rsu.handle_reply(forged)) ++accepted;
  }
  return accepted;
}

}  // namespace vlm::vcps
