#include "vcps/rsu.h"

#include "obs/metrics.h"

namespace vlm::vcps {

Rsu::Rsu(core::RsuId id, Certificate certificate, std::size_t array_size)
    : id_(id), certificate_(certificate), state_(array_size) {}

Query Rsu::make_query(std::uint64_t period) const {
  return Query{id_, certificate_, state_.array_size(), period};
}

bool Rsu::handle_reply(const Reply& reply) {
  if (reply.bit_index >= state_.array_size()) {
    ++invalid_replies_;
    return false;
  }
  state_.record(reply.bit_index);
  return true;
}

void Rsu::absorb_shard(const core::RsuState& shard,
                       std::uint64_t invalid_replies) {
  static obs::Counter& shards_absorbed =
      obs::MetricsRegistry::global().counter("ingest/shards_absorbed");
  static obs::Counter& invalid_counter =
      obs::MetricsRegistry::global().counter("ingest/invalid_replies");
  state_.merge(shard);
  invalid_replies_ += invalid_replies;
  shards_absorbed.inc();
  if (invalid_replies > 0) invalid_counter.add(invalid_replies);
}

RsuReport Rsu::make_report(std::uint64_t period) const {
  RsuReport report;
  report.rsu = id_;
  report.period = period;
  report.counter = state_.counter();
  report.array_size = state_.array_size();
  report.bits = state_.bits().to_bytes();
  return report;
}

void Rsu::begin_period(std::size_t array_size) {
  state_ = core::RsuState(array_size);
}

}  // namespace vlm::vcps
