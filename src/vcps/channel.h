// DSRC channel model with failure injection.
//
// The paper treats DSRC as reliable ("RSUs broadcast queries ... ensuring
// that each passing vehicle receives at least one query"). We model that
// as the default, plus configurable loss and duplication so tests can
// quantify how the measurement degrades when radios misbehave: a lost
// reply under-counts n_x; a duplicated reply over-counts it (the bit is
// idempotent but the counter is not).
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace vlm::vcps {

struct ChannelConfig {
  double query_loss = 0.0;      // probability a query never arrives
  double reply_loss = 0.0;      // probability a reply never arrives
  double reply_duplicate = 0.0; // probability a delivered reply arrives twice
};

class DsrcChannel {
 public:
  DsrcChannel(const ChannelConfig& config, std::uint64_t seed);

  // Per-message outcomes. `deliveries_for_reply` returns 0 (lost),
  // 1 (normal), or 2 (duplicated).
  bool query_delivered();
  int deliveries_for_reply();

  std::uint64_t queries_lost() const { return queries_lost_; }
  std::uint64_t replies_lost() const { return replies_lost_; }
  std::uint64_t replies_duplicated() const { return replies_duplicated_; }

 private:
  ChannelConfig config_;
  common::Xoshiro256ss rng_;
  std::uint64_t queries_lost_ = 0;
  std::uint64_t replies_lost_ = 0;
  std::uint64_t replies_duplicated_ = 0;
};

}  // namespace vlm::vcps
