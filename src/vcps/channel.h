// DSRC channel model with failure injection.
//
// The paper treats DSRC as reliable ("RSUs broadcast queries ... ensuring
// that each passing vehicle receives at least one query"). We model that
// as the default, plus configurable loss and duplication so tests can
// quantify how the measurement degrades when radios misbehave: a lost
// reply under-counts n_x; a duplicated reply over-counts it (the bit is
// idempotent but the counter is not).
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "core/types.h"

namespace vlm::vcps {

struct ChannelConfig {
  double query_loss = 0.0;      // probability a query never arrives
  double reply_loss = 0.0;      // probability a reply never arrives
  double reply_duplicate = 0.0; // probability a delivered reply arrives twice
};

// Worker-local failure tallies for the sharded ingest path: each worker
// counts the outcomes it sampled, and the shards are summed into the
// channel's counters after the join (addition commutes, so the totals
// are independent of the vehicle-to-worker assignment).
struct ChannelTally {
  std::uint64_t queries_lost = 0;
  std::uint64_t replies_lost = 0;
  std::uint64_t replies_duplicated = 0;
};

class DsrcChannel {
 public:
  DsrcChannel(const ChannelConfig& config, std::uint64_t seed);

  // Per-message outcomes drawn from the channel's sequential stream (the
  // serial drive_vehicle path). `deliveries_for_reply` returns 0 (lost),
  // 1 (normal), or 2 (duplicated).
  bool query_delivered();
  int deliveries_for_reply();

  // Order-independent outcomes for the sharded ingest path: the draw is a
  // pure hash of (channel seed, period, vehicle number, RSU id), so every
  // worker count — and every execution order — samples the identical
  // outcome for a given exchange. Counts into the caller's tally instead
  // of the shared counters; absorb() merges tallies after the join.
  bool query_delivered_for(std::uint64_t period, std::uint64_t vehicle_number,
                           core::RsuId rsu, ChannelTally& tally) const;
  int deliveries_for_reply_for(std::uint64_t period,
                               std::uint64_t vehicle_number, core::RsuId rsu,
                               ChannelTally& tally) const;

  // Columnar form of one whole exchange slice against ONE RSU:
  // deliveries[i] becomes the delivery count (0, 1, or 2) of the
  // exchange (period, vehicle_numbers[i], rsu), drawn from exactly the
  // per-exchange hash domains above and tallied with the same gating
  // (query loss first; a lost query draws no reply outcome), so the
  // result is bit-identical to calling query_delivered_for +
  // deliveries_for_reply_for per exchange in any order. When
  // `replies_answered` is false — the vehicle side would reject this
  // RSU's query — only the query-loss outcomes are drawn and tallied and
  // every delivery count is 0, mirroring the serial path's early return.
  // `deliveries` must have vehicle_numbers.size() entries. Returns the
  // sum of the delivery counts.
  std::uint64_t draws_for_batch(std::uint64_t period,
                                std::span<const std::uint64_t> vehicle_numbers,
                                core::RsuId rsu, bool replies_answered,
                                std::span<std::uint8_t> deliveries,
                                ChannelTally& tally) const;

  // True when every failure probability is zero: no exchange consumes
  // randomness, so callers may skip the draw stage entirely.
  bool lossless() const {
    return config_.query_loss == 0.0 && config_.reply_loss == 0.0 &&
           config_.reply_duplicate == 0.0;
  }

  // Adds a worker's tally to the channel counters.
  void absorb(const ChannelTally& tally);

  std::uint64_t queries_lost() const { return queries_lost_; }
  std::uint64_t replies_lost() const { return replies_lost_; }
  std::uint64_t replies_duplicated() const { return replies_duplicated_; }

 private:
  double unit_draw(std::uint64_t period, std::uint64_t vehicle_number,
                   core::RsuId rsu, std::uint64_t domain) const;

  ChannelConfig config_;
  std::uint64_t seed_;
  common::Xoshiro256ss rng_;
  std::uint64_t queries_lost_ = 0;
  std::uint64_t replies_lost_ = 0;
  std::uint64_t replies_duplicated_ = 0;
};

}  // namespace vlm::vcps
