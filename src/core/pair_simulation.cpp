#include "core/pair_simulation.h"

#include "common/hashing.h"
#include "common/require.h"
#include "core/scheme.h"

namespace vlm::core {

VehicleIdentity synthetic_vehicle(std::uint64_t seed, std::uint64_t index) {
  VehicleIdentity v;
  v.id = VehicleId{
      common::mix64(common::mix64(seed) + (index + 1) * 0x9E3779B97F4A7C15ull)};
  v.private_key = common::mix64(common::mix64(seed ^ 0xD1B54A32D192ED03ull) +
                                (index + 1) * 0xC2B2AE3D27D4EB4Full);
  return v;
}

PairStates simulate_pair(const Encoder& encoder, const PairWorkload& workload,
                         std::size_t m_x, std::size_t m_y, std::uint64_t seed,
                         RsuId rsu_x, RsuId rsu_y) {
  VLM_REQUIRE(workload.n_c <= workload.n_x && workload.n_c <= workload.n_y,
              "common volume cannot exceed either point volume");
  VLM_REQUIRE(rsu_x != rsu_y, "pair simulation needs two distinct RSUs");

  PairStates states{RsuState(m_x), RsuState(m_y)};
  // Validate the two sizes once; the loops below run the guard-free path.
  const EncodeTarget target_x(m_x), target_y(m_y);
  std::uint64_t vehicle_index = 0;

  // Vehicles in S_x ∩ S_y: one reply to each RSU.
  for (std::uint64_t i = 0; i < workload.n_c; ++i) {
    const VehicleIdentity v = synthetic_vehicle(seed, vehicle_index++);
    states.x.record(encoder.bit_index(v, rsu_x, target_x));
    states.y.record(encoder.bit_index(v, rsu_y, target_y));
  }
  // Vehicles in S_x − S_y.
  for (std::uint64_t i = workload.n_c; i < workload.n_x; ++i) {
    const VehicleIdentity v = synthetic_vehicle(seed, vehicle_index++);
    states.x.record(encoder.bit_index(v, rsu_x, target_x));
  }
  // Vehicles in S_y − S_x.
  for (std::uint64_t i = workload.n_c; i < workload.n_y; ++i) {
    const VehicleIdentity v = synthetic_vehicle(seed, vehicle_index++);
    states.y.record(encoder.bit_index(v, rsu_y, target_y));
  }
  return states;
}

PairStates simulate_pair(const Scheme& scheme, const PairWorkload& workload,
                         std::uint64_t seed, RsuId rsu_x, RsuId rsu_y) {
  return simulate_pair(scheme.encoder(), workload,
                       scheme.array_size_for(static_cast<double>(workload.n_x)),
                       scheme.array_size_for(static_cast<double>(workload.n_y)),
                       seed, rsu_x, rsu_y);
}

}  // namespace vlm::core
