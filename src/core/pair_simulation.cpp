#include "core/pair_simulation.h"

#include "common/hashing.h"
#include "common/kernels/kernels.h"
#include "common/require.h"
#include "common/uninit.h"
#include "core/scheme.h"

namespace vlm::core {

namespace {
// The two stream gammas of synthetic_vehicle — distinct by design, see
// the header's differential-structure warning.
constexpr std::uint64_t kIdGamma = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kKeyGamma = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kKeySeedTweak = 0xD1B54A32D192ED03ull;
}  // namespace

VehicleIdentity synthetic_vehicle(std::uint64_t seed, std::uint64_t index) {
  VehicleIdentity v;
  v.id = VehicleId{common::mix64(common::mix64(seed) + (index + 1) * kIdGamma)};
  v.private_key = common::mix64(common::mix64(seed ^ kKeySeedTweak) +
                                (index + 1) * kKeyGamma);
  return v;
}

void synthetic_masked_keys(std::uint64_t seed, std::uint64_t first_index,
                           std::size_t n, std::uint64_t* out) {
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "encode_batch writes size_t lanes reused as uint64_t");
  const common::kernels::KernelTable& kt = common::kernels::active();
  static constexpr std::uint64_t kZeroSalt[1] = {0};
  thread_local common::UninitVector<std::uint64_t> inputs;
  thread_local common::UninitVector<std::uint64_t> ids;
  inputs.resize(n);
  ids.resize(n);
  // Pre-mix inputs advance by the gamma per index (exact mod 2^64), and
  // a zero salt with a full fold mask reduces encode_batch to a plain
  // lane-parallel mix64 — so each stream is one kernel call.
  std::uint64_t s = common::mix64(seed) + (first_index + 1) * kIdGamma;
  for (std::size_t i = 0; i < n; ++i, s += kIdGamma) inputs[i] = s;
  kt.encode_batch(inputs.data(), n, 0, kZeroSalt, 1, ~std::uint64_t{0},
                  reinterpret_cast<std::size_t*>(ids.data()));
  s = common::mix64(seed ^ kKeySeedTweak) + (first_index + 1) * kKeyGamma;
  for (std::size_t i = 0; i < n; ++i, s += kKeyGamma) inputs[i] = s;
  kt.encode_batch(inputs.data(), n, 0, kZeroSalt, 1, ~std::uint64_t{0},
                  reinterpret_cast<std::size_t*>(out));
  for (std::size_t i = 0; i < n; ++i) out[i] ^= ids[i];
}

PairStates simulate_pair(const Encoder& encoder, const PairWorkload& workload,
                         std::size_t m_x, std::size_t m_y, std::uint64_t seed,
                         RsuId rsu_x, RsuId rsu_y) {
  VLM_REQUIRE(workload.n_c <= workload.n_x && workload.n_c <= workload.n_y,
              "common volume cannot exceed either point volume");
  VLM_REQUIRE(rsu_x != rsu_y, "pair simulation needs two distinct RSUs");

  PairStates states{RsuState(m_x), RsuState(m_y)};
  // Validate the two sizes once; the loops below run the guard-free path.
  const EncodeTarget target_x(m_x), target_y(m_y);
  std::uint64_t vehicle_index = 0;

  // Vehicles in S_x ∩ S_y: one reply to each RSU.
  for (std::uint64_t i = 0; i < workload.n_c; ++i) {
    const VehicleIdentity v = synthetic_vehicle(seed, vehicle_index++);
    states.x.record(encoder.bit_index(v, rsu_x, target_x));
    states.y.record(encoder.bit_index(v, rsu_y, target_y));
  }
  // Vehicles in S_x − S_y.
  for (std::uint64_t i = workload.n_c; i < workload.n_x; ++i) {
    const VehicleIdentity v = synthetic_vehicle(seed, vehicle_index++);
    states.x.record(encoder.bit_index(v, rsu_x, target_x));
  }
  // Vehicles in S_y − S_x.
  for (std::uint64_t i = workload.n_c; i < workload.n_y; ++i) {
    const VehicleIdentity v = synthetic_vehicle(seed, vehicle_index++);
    states.y.record(encoder.bit_index(v, rsu_y, target_y));
  }
  return states;
}

PairStates simulate_pair(const Scheme& scheme, const PairWorkload& workload,
                         std::uint64_t seed, RsuId rsu_x, RsuId rsu_y) {
  return simulate_pair(scheme.encoder(), workload,
                       scheme.array_size_for(static_cast<double>(workload.n_x)),
                       scheme.array_size_for(static_cast<double>(workload.n_y)),
                       seed, rsu_x, rsu_y);
}

}  // namespace vlm::core
