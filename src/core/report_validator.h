// Server-side plausibility checking of RSU reports.
//
// The measurement math itself provides an integrity check the paper
// never exploits: after n honest one-bit-per-vehicle updates, the zero
// count of an m-bit array concentrates tightly around m(1−1/m)^n (the
// occupancy variance is ≈ m e^{−2c}(e^c − 1 − c), far below binomial).
// A polluted report — a flooding adversary injecting random replies, a
// bit-painting adversary saturating the array, or a compromised RSU
// inflating its counter — lands many standard deviations away. The
// validator scores each report and classifies it, so the central server
// can quarantine implausible inputs instead of folding them into
// estimates and history.
#pragma once

#include <cstdint>

#include "core/rsu_state.h"

namespace vlm::core {

enum class ReportVerdict {
  kPlausible,
  // Too many zero bits for the counter: lost replies, or a counter
  // inflated without matching bit traffic.
  kTooEmpty,
  // Too few zero bits: bit-painting / flooding without counter updates.
  kTooFull,
  // Structurally impossible (more set bits than counted vehicles); this
  // is also rejected outright by RsuState::from_report.
  kInconsistent,
};

struct ReportAssessment {
  ReportVerdict verdict = ReportVerdict::kPlausible;
  double expected_zeros = 0.0;  // m (1 − 1/m)^n
  double stddev_zeros = 0.0;    // occupancy-exact standard deviation
  double z_score = 0.0;         // (observed − expected) / stddev
};

class ReportValidator {
 public:
  // `tolerance_sigmas`: how many standard deviations of zero-count
  // deviation to accept. Honest reports stay within ~4 essentially
  // always; the default 6 keeps the false-positive rate negligible even
  // across thousands of RSU-periods.
  explicit ReportValidator(double tolerance_sigmas = 6.0);

  ReportAssessment assess(std::uint64_t counter, std::size_t array_size,
                          std::size_t zero_count) const;
  ReportAssessment assess(const RsuState& state) const;

  // Occupancy moments of the zero count after n balls into m bins:
  // exact mean and the pairwise-exact variance (same machinery as
  // AccuracyModel's corrected second moments).
  static double expected_zero_count(std::uint64_t n, std::size_t m);
  static double zero_count_variance(std::uint64_t n, std::size_t m);

 private:
  double tolerance_sigmas_;
};

}  // namespace vlm::core
