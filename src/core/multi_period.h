// Multi-period aggregation of pair estimates.
//
// A single measurement period's estimate carries sampling noise with a
// hard floor (the logical-slot randomness). Periods are independent —
// fresh bit arrays, fresh slot draws — so combining P periods by
// inverse-variance weighting shrinks the error ~1/sqrt(P). This is the
// natural "future work" extension of the paper for standing deployments
// (e.g. averaging a month of daily measurements).
#pragma once

#include <cstdint>

#include "core/interval.h"

namespace vlm::core {

struct AggregateEstimate {
  double n_c_hat = 0.0;   // inverse-variance weighted mean
  double stddev = 0.0;    // of the aggregate
  double lower = 0.0;     // normal interval at the configured z
  double upper = 0.0;
  std::size_t periods = 0;
};

class MultiPeriodAggregator {
 public:
  explicit MultiPeriodAggregator(double z = 1.96);

  // Adds one period's estimate. Degraded intervals (saturated arrays,
  // at-floor evaluations) are accepted but down-weighted by their own
  // (large) variance; zero-variance estimates are rejected as malformed.
  void add_period(const EstimateInterval& estimate);

  std::size_t periods() const { return periods_; }
  bool empty() const { return periods_ == 0; }

  // Throws if no period has been added.
  AggregateEstimate aggregate() const;

 private:
  double z_;
  std::size_t periods_ = 0;
  double weight_sum_ = 0.0;           // sum of 1/var
  double weighted_estimate_ = 0.0;    // sum of estimate/var
};

}  // namespace vlm::core
