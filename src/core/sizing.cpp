#include "core/sizing.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/require.h"

namespace vlm::core {

VlmSizingPolicy::VlmSizingPolicy(double load_factor, SizingLimits limits)
    : load_factor_(load_factor), limits_(limits) {
  VLM_REQUIRE(load_factor > 0.0, "target load factor must be positive");
  VLM_REQUIRE(common::is_power_of_two(limits.min_bits) &&
                  common::is_power_of_two(limits.max_bits) &&
                  limits.min_bits <= limits.max_bits,
              "sizing limits must be powers of two with min <= max");
}

std::size_t VlmSizingPolicy::array_size_for(double history_volume) const {
  VLM_REQUIRE(history_volume >= 0.0 && std::isfinite(history_volume),
              "history volume must be finite and non-negative");
  const double target = history_volume * load_factor_;
  if (target <= static_cast<double>(limits_.min_bits)) return limits_.min_bits;
  if (target >= static_cast<double>(limits_.max_bits)) return limits_.max_bits;
  const auto rounded =
      common::ceil_pow2(static_cast<std::uint64_t>(std::ceil(target)));
  return std::clamp(static_cast<std::size_t>(rounded), limits_.min_bits,
                    limits_.max_bits);
}

FbmSizingPolicy::FbmSizingPolicy(std::size_t array_size)
    : array_size_(array_size) {
  VLM_REQUIRE(common::is_power_of_two(array_size) && array_size >= 2,
              "FBM array size must be a power of two >= 2");
}

FbmSizingPolicy FbmSizingPolicy::for_min_volume(double min_volume,
                                                double privacy_load_cap,
                                                SizingLimits limits) {
  VLM_REQUIRE(min_volume > 0.0, "minimum volume must be positive");
  VLM_REQUIRE(privacy_load_cap > 0.0, "privacy load cap must be positive");
  const double cap = min_volume * privacy_load_cap;
  std::uint64_t size = limits.min_bits;
  while (size * 2 <= limits.max_bits &&
         static_cast<double>(size * 2) <= cap) {
    size *= 2;
  }
  return FbmSizingPolicy(static_cast<std::size_t>(size));
}

}  // namespace vlm::core
