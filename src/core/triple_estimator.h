// Three-point intersection estimation — an extension of the paper's
// pairwise scheme to |S_x ∩ S_y ∩ S_z|.
//
// Unfold all three arrays to the largest size m_z, OR them, and read the
// zero fraction V_c3. Working per vehicle class (the 7 non-empty subsets
// of {x, y, z}) with the same slot-sharing congruence analysis as Eq. 6
// gives, with A = 1/m_x, B = 1/m_y, C = 1/m_z (m_x <= m_y <= m_z),
// w = (s-1)/s:
//
//   per-singleton factors:  (1-A), (1-B), (1-C)
//   per-pair factors:       g_xy = (1-A)(1-wB)
//                           g_xz = (1-A)(1-wC),  g_yz = (1-B)(1-wC)
//   per-triple factor:      g_xyz = (1-A) [ (1/s)(1-wC)
//                                   + w (1-B)(1-(1-2/s)C) ]
//
// (the bracketed term enumerates the slot pattern of y and z relative to
// x; shared slots protect the larger arrays through congruence). Then
//
//   ln E[V_c3] = n_x ln(1-A) + n_y ln(1-B) + n_z ln(1-C)
//              + n_xy L_xy + n_xz L_z + n_yz L_z + n_xyz K
//
// with L_* the pairwise Eq. 5 denominators and
//   K = ln(1-C) - ln(1-wB) - 2 ln(1-wC) + ln(g_xyz / (1-A)),
// which expands to -C/s² at leading order: the triple signal is s times
// weaker per vehicle than the pairwise one, so expect noisier estimates.
// Substituting the counters and the three pairwise MLE estimates and
// solving for n_xyz yields the estimator below.
#pragma once

#include <cstdint>

#include "core/estimator.h"
#include "core/rsu_state.h"

namespace vlm::core {

struct TripleEstimate {
  double n_xyz_hat = 0.0;  // clamped to [0, min(pairwise estimates)]
  double raw = 0.0;        // unclamped MLE value
  double v_c3 = 0.0;       // zero fraction of the triple OR
  PairEstimate xy, xz, yz; // the pairwise estimates that were plugged in
  bool saturated = false;  // any zero count floored
};

class TripleEstimator {
 public:
  explicit TripleEstimator(std::uint32_t s);

  // Roles are assigned internally by ascending array size.
  TripleEstimate estimate(const RsuState& x, const RsuState& y,
                          const RsuState& z) const;

  // Variant for analysis: uses caller-supplied pairwise intersection
  // values instead of estimating them (isolates the triple-stage noise).
  TripleEstimate estimate_with_known_pairs(const RsuState& x,
                                           const RsuState& y,
                                           const RsuState& z, double n_xy,
                                           double n_xz, double n_yz) const;

 private:
  TripleEstimate estimate_impl(const RsuState& x, const RsuState& y,
                               const RsuState& z, const double* known_xy,
                               const double* known_xz,
                               const double* known_yz) const;

  std::uint32_t s_;
  PairEstimator pair_estimator_;
};

}  // namespace vlm::core
