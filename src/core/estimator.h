// Offline decoding phase (Section IV-C): unfold, OR, and the MLE
// estimator of Eq. 5.
//
// Given two RSU reports (counter + bit array, sizes m_x <= m_y, both
// powers of two), the central server:
//   1. unfolds the smaller array to m_y bits (Eq. 3),
//   2. ORs the unfolded array with the larger one (Eq. 4),
//   3. reads the zero fractions V_x, V_y, V_c and computes
//        n̂_c = [ln V_c − ln V_x − ln V_y]
//             / [ln(1 − (s−1)/(s·m_y)) − ln(1 − 1/m_y)].
// Total server cost per pair is O(m_y) — the claim of Section IV-E.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/rsu_state.h"

namespace vlm::core {

struct PairEstimate {
  double n_c_hat = 0.0;  // MLE estimate, clamped to >= 0
  double raw = 0.0;      // unclamped MLE value (can be slightly negative)
  double v_x = 0.0;      // zero fraction of the smaller array
  double v_y = 0.0;      // zero fraction of the larger array
  double v_c = 0.0;      // zero fraction of the combined array
  std::size_t m_x = 0;   // smaller array size (after ordering)
  std::size_t m_y = 0;   // larger array size
  std::size_t words_scanned = 0;  // 64-bit words the decode kernel touched
  // True when any array had zero '0' bits: the MLE is then undefined and
  // the zero count was floored at 0.5 bits to produce a (low-quality)
  // estimate. Callers should treat such estimates as "array saturated —
  // enlarge m" rather than as measurements.
  bool saturated = false;
};

class PairEstimator {
 public:
  // `s` is the logical-bit-array size used by the encoder (>= 2).
  explicit PairEstimator(std::uint32_t s);

  std::uint32_t s() const { return s_; }

  // Estimates |S_x ∩ S_y| from two end-of-period RSU states, accepting
  // them in either order (smaller-first or larger-first). Array sizes
  // must be powers of two (guaranteed by RsuState; incompatible raw
  // sizes throw with a sizing hint). The smaller array is logically
  // unfolded onto the larger via the fused zero-count kernel — no copy
  // of either array is materialized.
  PairEstimate estimate(const RsuState& x, const RsuState& y) const;

  // Eq. 5 on already-measured zero counts. `estimate` above is exactly
  // joint_zero_counts + this; the cache-blocked batch decode measures the
  // counts for every pair first and then maps them through here, which is
  // what makes the two decode paths bit-identical — the floating-point
  // math is this one function either way.
  PairEstimate from_counts(const common::JointZeroCounts& counts) const;

  // The denominator constant of Eq. 5 for a given larger-array size.
  // Positive for every s >= 2, m_y > 1.
  double log_ratio_denominator(std::size_t m_y) const;

 private:
  std::uint32_t s_;
};

}  // namespace vlm::core
