#include "core/rsu_state.h"

#include <limits>

#include "common/math_util.h"
#include "common/require.h"

namespace vlm::core {

RsuState::RsuState(std::size_t array_size) : bits_(array_size) {
  VLM_REQUIRE(common::is_power_of_two(array_size),
              "RSU bit array size must be a power of two");
  VLM_REQUIRE(array_size >= 2, "RSU bit array needs at least two bits");
}

RsuState RsuState::from_report(std::uint64_t counter, common::BitArray bits) {
  RsuState state(bits.size());
  const std::size_t ones = bits.count_ones();
  VLM_REQUIRE(ones <= counter,
              "reported counter is below the number of set bits");
  VLM_REQUIRE(counter == 0 || ones > 0,
              "non-zero counter with an all-zero bit array");
  state.counter_ = counter;
  state.bits_ = std::move(bits);
  return state;
}

void RsuState::record(std::size_t bit_index) {
  ++counter_;
  bits_.set(bit_index);
}

void RsuState::record_bulk(std::span<const std::size_t> indices) {
  bits_.set_bulk(indices);
  counter_ += indices.size();
}

void RsuState::merge(const RsuState& other) {
  VLM_REQUIRE(array_size() == other.array_size(),
              "can only merge states with equal array sizes");
  counter_ += other.counter_;
  bits_ |= other.bits_;
}

void RsuState::reset() {
  counter_ = 0;
  bits_.reset();
}

double RsuState::load_factor() const {
  if (counter_ == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(bits_.size()) / static_cast<double>(counter_);
}

}  // namespace vlm::core
