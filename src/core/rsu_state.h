// Per-RSU measurement state: the counter n_x and bit array B_x of
// Section IV-B, plus the end-of-period report sent to the central server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/bit_array.h"

namespace vlm::core {

class RsuState {
 public:
  // `array_size` must be a power of two (enforced; Section IV-A requires
  // m = 2^k so arrays of different RSUs can be unfolded onto each other).
  explicit RsuState(std::size_t array_size);

  // Reconstructs a state from a reported counter and bit array (the
  // central server's view). The array size must be a power of two and the
  // counter must be plausible: a non-zero counter with an all-zero array
  // (or vice versa) is rejected.
  static RsuState from_report(std::uint64_t counter, common::BitArray bits);

  // Online coding (Eqs. 1-2): n += 1; B[index] = 1. O(1).
  void record(std::size_t bit_index);

  // Bulk online coding for the batch ingest path: record(indices[i]) for
  // every i, with the bit sets routed through the dispatched set_scatter
  // kernel and the counter bumped once by the batch size. A duplicated
  // delivery appears twice in `indices` and counts twice, exactly like
  // two record() calls.
  void record_bulk(std::span<const std::size_t> indices);

  // Merges a sub-period collected elsewhere for the SAME RSU (sharded or
  // failover collection): counters add, bit arrays OR. Both states must
  // have the same array size. Merging states of two DIFFERENT RSUs would
  // silently double-count shared vehicles — that is what the pair
  // estimator is for.
  void merge(const RsuState& other);

  // Start of a new measurement period.
  void reset();

  std::uint64_t counter() const { return counter_; }
  std::size_t array_size() const { return bits_.size(); }
  const common::BitArray& bits() const { return bits_; }

  std::size_t zero_count() const { return bits_.count_zeros(); }
  // V_x in the paper.
  double zero_fraction() const { return bits_.zero_fraction(); }
  // Realized load factor m / n for this period (infinity if no traffic).
  double load_factor() const;

 private:
  std::uint64_t counter_ = 0;
  common::BitArray bits_;
};

}  // namespace vlm::core
