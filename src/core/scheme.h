// The scheme layer: one polymorphic interface for every masking scheme.
//
// A scheme bundles the three pieces a measurement deployment needs —
// vehicle-side encoder, per-RSU array sizing, and the server-side pair
// estimator — behind a single abstract `Scheme`, so the central server,
// the simulations, the CLI tools, and the examples are all generic over
// VLM vs FBM (vs any future scheme) instead of each carrying its own
// per-scheme branching.
//
//   core::SchemePtr scheme = core::make_vlm_scheme({.s = 2, .load_factor = 8.0});
//   auto rsu = scheme->make_rsu_state(/*history_volume=*/120'000);
//   rsu.record(scheme->encoder().bit_index(vehicle, rsu_id, rsu.array_size()));
//   auto est = scheme->estimator().estimate(rsu_a, rsu_b);
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "core/encoder.h"
#include "core/estimator.h"
#include "core/rsu_state.h"
#include "core/sizing.h"

namespace vlm::core {

// Abstract masking scheme. Implementations share the vehicle protocol
// (encoder) and the Eq. 5 decoder (estimator); they differ in how RSU
// bit arrays are sized — the single design axis of the paper.
class Scheme {
 public:
  virtual ~Scheme() = default;

  // Stable identifier ("vlm", "fbm"), usable in CLIs and reports.
  virtual std::string_view name() const = 0;

  virtual const Encoder& encoder() const = 0;
  virtual const PairEstimator& estimator() const = 0;

  // m_x for an RSU with historical average volume `history_volume`.
  virtual std::size_t array_size_for(double history_volume) const = 0;

  // The sizing plan's target load factor f̄ (the f̄ of m = 2^ceil(log2(
  // n̄·f̄))), for health telemetry's drift check. 0 means the scheme has
  // no per-RSU load-factor plan (FBM's global m) and drift is undefined.
  virtual double target_load_factor() const { return 0.0; }

  // The logical-bit-array size s shared by encoder and estimator.
  std::uint32_t s() const { return estimator().s(); }

  // A fresh per-period RSU state sized from the RSU's historical volume.
  RsuState make_rsu_state(double history_volume) const {
    return RsuState(array_size_for(history_volume));
  }
};

// Shared ownership so a scheme can outlive the config object that
// selected it (server, simulation, and tools all hold one).
using SchemePtr = std::shared_ptr<const Scheme>;

struct VlmSchemeConfig {
  std::uint32_t s = 2;
  double load_factor = 8.0;  // the paper's global f̄
  std::uint64_t salt_seed = 0x5EEDBA5EBA11AD00ull;
  SizingLimits limits = {};
  SlotSelection slot_selection = SlotSelection::kPerVehicleUniform;
};

// The paper's contribution: variable-length bit-array masking.
class VlmScheme final : public Scheme {
 public:
  explicit VlmScheme(const VlmSchemeConfig& config)
      : encoder_(EncoderConfig{config.s, config.salt_seed,
                               config.slot_selection}),
        sizing_(config.load_factor, config.limits),
        estimator_(config.s) {}

  std::string_view name() const override { return "vlm"; }
  const Encoder& encoder() const override { return encoder_; }
  const PairEstimator& estimator() const override { return estimator_; }
  std::size_t array_size_for(double history_volume) const override {
    return sizing_.array_size_for(history_volume);
  }
  double target_load_factor() const override { return sizing_.load_factor(); }

  const VlmSizingPolicy& sizing() const { return sizing_; }

 private:
  Encoder encoder_;
  VlmSizingPolicy sizing_;
  PairEstimator estimator_;
};

struct FbmSchemeConfig {
  std::uint32_t s = 2;
  std::size_t array_size = std::size_t{1} << 17;  // the global fixed m
  std::uint64_t salt_seed = 0x5EEDBA5EBA11AD00ull;
  SlotSelection slot_selection = SlotSelection::kPerVehicleUniform;
};

// The fixed-length baseline of ref. [9]; identical protocol, one global m.
class FbmScheme final : public Scheme {
 public:
  explicit FbmScheme(const FbmSchemeConfig& config)
      : encoder_(EncoderConfig{config.s, config.salt_seed,
                               config.slot_selection}),
        sizing_(config.array_size),
        estimator_(config.s) {}

  std::string_view name() const override { return "fbm"; }
  const Encoder& encoder() const override { return encoder_; }
  const PairEstimator& estimator() const override { return estimator_; }
  std::size_t array_size_for(double history_volume) const override {
    return sizing_.array_size_for(history_volume);
  }

  const FbmSizingPolicy& sizing() const { return sizing_; }

 private:
  Encoder encoder_;
  FbmSizingPolicy sizing_;
  PairEstimator estimator_;
};

SchemePtr make_vlm_scheme(const VlmSchemeConfig& config = {});
SchemePtr make_fbm_scheme(const FbmSchemeConfig& config = {});

// Everything a CLI needs to select a scheme by name; fields irrelevant
// to the chosen scheme are ignored (load_factor for FBM, array_size for
// VLM).
struct SchemeOptions {
  std::uint32_t s = 2;
  double load_factor = 8.0;                       // VLM f̄
  std::size_t array_size = std::size_t{1} << 17;  // FBM global m
  std::uint64_t salt_seed = 0x5EEDBA5EBA11AD00ull;
  SizingLimits limits = {};
  SlotSelection slot_selection = SlotSelection::kPerVehicleUniform;
};

// Factory by name: "vlm" or "fbm". Throws std::invalid_argument for an
// unknown name, listing the valid ones.
SchemePtr make_scheme(std::string_view name, const SchemeOptions& options = {});

}  // namespace vlm::core
