// Facade bundles: one object per scheme holding the encoder, the sizing
// policy, and the estimator, so examples and the VCPS layer configure a
// complete measurement system in one line.
//
//   vlm::core::VlmScheme scheme({.s = 2, .load_factor = 8.0});
//   auto rsu = scheme.make_rsu_state(/*history_volume=*/120'000);
//   rsu.record(scheme.encoder().bit_index(vehicle, rsu_id, rsu.array_size()));
//   auto est = scheme.estimator().estimate(rsu_a, rsu_b);
#pragma once

#include <cstdint>

#include "core/encoder.h"
#include "core/estimator.h"
#include "core/rsu_state.h"
#include "core/sizing.h"

namespace vlm::core {

struct VlmSchemeConfig {
  std::uint32_t s = 2;
  double load_factor = 8.0;  // the paper's global f̄
  std::uint64_t salt_seed = 0x5EEDBA5EBA11AD00ull;
  SizingLimits limits = {};
  SlotSelection slot_selection = SlotSelection::kPerVehicleUniform;
};

// The paper's contribution: variable-length bit-array masking.
class VlmScheme {
 public:
  explicit VlmScheme(const VlmSchemeConfig& config)
      : encoder_(EncoderConfig{config.s, config.salt_seed,
                               config.slot_selection}),
        sizing_(config.load_factor, config.limits),
        estimator_(config.s) {}

  const Encoder& encoder() const { return encoder_; }
  const VlmSizingPolicy& sizing() const { return sizing_; }
  const PairEstimator& estimator() const { return estimator_; }

  // A fresh per-period RSU state sized from the RSU's historical volume.
  RsuState make_rsu_state(double history_volume) const {
    return RsuState(sizing_.array_size_for(history_volume));
  }

 private:
  Encoder encoder_;
  VlmSizingPolicy sizing_;
  PairEstimator estimator_;
};

struct FbmSchemeConfig {
  std::uint32_t s = 2;
  std::size_t array_size = std::size_t{1} << 17;  // the global fixed m
  std::uint64_t salt_seed = 0x5EEDBA5EBA11AD00ull;
  SlotSelection slot_selection = SlotSelection::kPerVehicleUniform;
};

// The fixed-length baseline of ref. [9]; identical protocol, one global m.
class FbmScheme {
 public:
  explicit FbmScheme(const FbmSchemeConfig& config)
      : encoder_(EncoderConfig{config.s, config.salt_seed,
                               config.slot_selection}),
        sizing_(config.array_size),
        estimator_(config.s) {}

  const Encoder& encoder() const { return encoder_; }
  const FbmSizingPolicy& sizing() const { return sizing_; }
  const PairEstimator& estimator() const { return estimator_; }

  RsuState make_rsu_state(double /*history_volume*/ = 0.0) const {
    return RsuState(sizing_.array_size());
  }

 private:
  Encoder encoder_;
  FbmSizingPolicy sizing_;
  PairEstimator estimator_;
};

}  // namespace vlm::core
