#include "core/encoder.h"

#include "common/math_util.h"
#include "common/require.h"

namespace vlm::core {

namespace {
// Domain-separation constant for the slot-selection hash so it cannot
// collide with the logical-bit hash.
constexpr std::uint64_t kSlotDomain = 0xC2B2AE3D27D4EB4Full;
}  // namespace

Encoder::Encoder(const EncoderConfig& config)
    : config_(config), salts_(config.s, config.salt_seed) {
  VLM_REQUIRE(config.s >= 2,
              "logical bit arrays need s >= 2 bits (s = 1 carries no mask)");
}

std::uint32_t Encoder::slot_for(const VehicleIdentity& vehicle,
                                RsuId rsu) const {
  const std::uint64_t input =
      config_.slot_selection == SlotSelection::kPerVehicleUniform
          ? vehicle.masked_key() ^ rsu.value ^ kSlotDomain
          : rsu.value ^ kSlotDomain;
  return static_cast<std::uint32_t>(
      common::hash_to_range(input, config_.s));
}

std::uint64_t Encoder::logical_bit(const VehicleIdentity& vehicle,
                                   std::uint32_t slot) const {
  VLM_REQUIRE(slot < config_.s, "logical slot out of range");
  return common::mix64(vehicle.masked_key() ^ salts_[slot]);
}

std::size_t Encoder::bit_index(const VehicleIdentity& vehicle, RsuId rsu,
                               std::size_t array_size) const {
  VLM_REQUIRE(common::is_power_of_two(array_size),
              "bit array sizes must be powers of two (Section IV-A)");
  const std::uint64_t b = logical_bit(vehicle, slot_for(vehicle, rsu));
  return static_cast<std::size_t>(b & (array_size - 1));
}

}  // namespace vlm::core
