#include "core/encoder.h"

#include <algorithm>

#include "common/kernels/kernels.h"
#include "common/math_util.h"
#include "common/require.h"

namespace vlm::core {

namespace {
// Domain-separation constant for the slot-selection hash so it cannot
// collide with the logical-bit hash.
constexpr std::uint64_t kSlotDomain = 0xC2B2AE3D27D4EB4Full;
}  // namespace

EncodeTarget::EncodeTarget(std::size_t array_size) {
  VLM_REQUIRE(common::is_power_of_two(array_size),
              "bit array sizes must be powers of two (Section IV-A)");
  mask_ = static_cast<std::uint64_t>(array_size) - 1;
}

Encoder::Encoder(const EncoderConfig& config)
    : config_(config), salts_(config.s, config.salt_seed) {
  VLM_REQUIRE(config.s >= 2,
              "logical bit arrays need s >= 2 bits (s = 1 carries no mask)");
}

std::uint32_t Encoder::slot_for(const VehicleIdentity& vehicle,
                                RsuId rsu) const {
  const std::uint64_t input =
      config_.slot_selection == SlotSelection::kPerVehicleUniform
          ? vehicle.masked_key() ^ rsu.value ^ kSlotDomain
          : rsu.value ^ kSlotDomain;
  return static_cast<std::uint32_t>(
      common::hash_to_range(input, config_.s));
}

std::uint64_t Encoder::logical_bit(const VehicleIdentity& vehicle,
                                   std::uint32_t slot) const {
  VLM_REQUIRE(slot < config_.s, "logical slot out of range");
  return common::mix64(vehicle.masked_key() ^ salts_[slot]);
}

std::size_t Encoder::bit_index(const VehicleIdentity& vehicle, RsuId rsu,
                               std::size_t array_size) const {
  return bit_index(vehicle, rsu, EncodeTarget(array_size));
}

std::size_t Encoder::bit_index(const VehicleIdentity& vehicle, RsuId rsu,
                               const EncodeTarget& target) const {
  VLM_DEBUG_ASSERT(common::is_power_of_two(target.array_size()));
  const std::uint64_t b = logical_bit(vehicle, slot_for(vehicle, rsu));
  return static_cast<std::size_t>(b & target.mask());
}

void Encoder::bit_indices(std::span<const VehicleIdentity> vehicles, RsuId rsu,
                          const EncodeTarget& target,
                          std::span<std::size_t> out) const {
  VLM_REQUIRE(vehicles.size() == out.size(),
              "batch encode needs one output slot per vehicle");
  // Chunked key extraction keeps the vectorized kernel fed from a small
  // stack buffer instead of materializing a second full-size column.
  constexpr std::size_t kChunk = 512;
  std::uint64_t keys[kChunk];
  for (std::size_t offset = 0; offset < vehicles.size(); offset += kChunk) {
    const std::size_t len = std::min(kChunk, vehicles.size() - offset);
    for (std::size_t i = 0; i < len; ++i) {
      keys[i] = vehicles[offset + i].masked_key();
    }
    bit_indices(std::span<const std::uint64_t>(keys, len), rsu, target,
                out.subspan(offset, len));
  }
}

void Encoder::bit_indices(std::span<const std::uint64_t> masked_keys,
                          RsuId rsu, const EncodeTarget& target,
                          std::span<std::size_t> out) const {
  VLM_REQUIRE(masked_keys.size() == out.size(),
              "batch encode needs one output slot per vehicle");
  const std::uint64_t slot_input = rsu.value ^ kSlotDomain;
  if (config_.slot_selection == SlotSelection::kLiteralPerRsu) {
    // Literal rule: the slot is a function of the RSU alone — resolve
    // the single salt here and let the kernel skip slot hashing.
    const std::uint64_t salt =
        salts_[common::hash_to_range(slot_input, config_.s)];
    common::kernels::active().encode_batch(masked_keys.data(),
                                           masked_keys.size(), 0, &salt, 1,
                                           target.mask(), out.data());
    return;
  }
  common::kernels::active().encode_batch(masked_keys.data(),
                                         masked_keys.size(), slot_input,
                                         salts_.data(), config_.s,
                                         target.mask(), out.data());
}

}  // namespace vlm::core
