// Deployment calibration: choose (s, f̄) jointly from a traffic profile.
//
// The paper fixes s ∈ {2, 5, 10} and picks f̄ by eyeballing the privacy
// curves. A real deployment has a volume profile [n_min, n_max], a hard
// privacy floor, and wants the most accurate configuration that floor
// allows. This calibrator grid-searches s and f̄, evaluating
//
//   - privacy with the EXACT closed form over the profile's extreme
//     pairs — (n_min, n_min), (n_min, n_max), (n_max, n_max) — at both
//     realized load factors f̄ and 2f̄ (power-of-two sizing keeps every
//     RSU's realized factor inside [f̄, 2f̄));
//   - accuracy with the occupancy-exact model on the hardest pair
//     (n_min vs n_max, the paper's Table I stress case);
//
// and returns the feasible configuration with the lowest predicted
// error. Throws if no configuration meets the privacy floor.
#pragma once

#include <cstdint>
#include <vector>

namespace vlm::core {

struct CalibrationRequest {
  double min_volume = 1'000.0;   // lightest RSU's per-period volume
  double max_volume = 100'000.0; // heaviest RSU's per-period volume
  // Representative common fraction n_c / n_min for privacy and accuracy
  // evaluation (the paper's curves correspond to 0.1).
  double common_fraction = 0.1;
  double min_privacy = 0.5;      // hard floor over all evaluated pairs
  std::vector<std::uint32_t> s_candidates = {2, 3, 5, 8, 10};
  double f_lo = 0.5;
  double f_hi = 32.0;
  int f_grid_steps = 25;  // multiplicative grid resolution
};

struct CalibrationResult {
  std::uint32_t s = 0;
  double load_factor = 0.0;
  double worst_privacy = 0.0;     // min over profile pairs and rounding
  double predicted_error = 0.0;   // stddev ratio on the hardest pair
};

CalibrationResult calibrate_deployment(const CalibrationRequest& request);

}  // namespace vlm::core
