// Load-factor planning utilities (the deployment-facing face of
// Section VI).
//
// The paper eyeballs the optimal load factor from Fig. 2's curves
// ("approximately from 2 to 4") and the privacy cap from where the
// curve crosses 0.5. These functions compute both exactly from the
// closed-form privacy model, so a deployment can derive its f̄ and its
// FBM-comparison cap from its own traffic profile.
#pragma once

#include <cstdint>

namespace vlm::core {

struct LoadFactorPlan {
  double optimal_f = 0.0;   // argmax of preserved privacy
  double optimal_p = 0.0;   // the privacy there
  double max_f_for_min_privacy = 0.0;  // largest f with p >= p_min
};

// Finds the privacy-optimal load factor for a pair profile
// (n_y = ratio_y * n_x, n_c = common_fraction * n_x) by golden-section
// search over f in [f_lo, f_hi], and the largest f at which privacy
// still meets `min_privacy` (by bisection on the decreasing branch).
// Throws if even the optimum cannot reach `min_privacy`.
LoadFactorPlan plan_load_factor(std::uint32_t s, double n_x, double ratio_y,
                                double common_fraction, double min_privacy,
                                double f_lo = 0.25, double f_hi = 64.0);

}  // namespace vlm::core
