#include "core/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/require.h"

namespace vlm::core {

PairEstimator::PairEstimator(std::uint32_t s) : s_(s) {
  VLM_REQUIRE(s >= 2, "estimator requires s >= 2");
}

double PairEstimator::log_ratio_denominator(std::size_t m_y) const {
  VLM_REQUIRE(m_y > 1, "larger array must have more than one bit");
  VLM_REQUIRE(static_cast<std::size_t>(s_) < m_y,
              "Eq. 5 requires s < m_y (otherwise the MLE degenerates)");
  const double my = static_cast<double>(m_y);
  const double s = static_cast<double>(s_);
  return common::log_one_minus((s - 1.0) / (s * my)) -
         common::log_one_minus(1.0 / my);
}

PairEstimate PairEstimator::estimate(const RsuState& x,
                                     const RsuState& y) const {
  // The fused kernel orders the operands itself, never materializes the
  // unfolded array, and returns the three zero counts Eq. 5 needs in a
  // single pass over the larger array.
  return from_counts(common::joint_zero_counts(x.bits(), y.bits()));
}

PairEstimate PairEstimator::from_counts(
    const common::JointZeroCounts& counts) const {
  const std::size_t m_x = counts.size_small;
  const std::size_t m_y = counts.size_large;

  PairEstimate out;
  out.m_x = m_x;
  out.m_y = m_y;
  out.words_scanned = counts.words_scanned;

  // Floor zero counts at half a bit so a fully saturated array yields a
  // finite (if unreliable) estimate instead of -inf logs; flag it.
  auto fraction = [&](std::size_t zeros, std::size_t size, bool& saturated) {
    if (zeros == 0) {
      saturated = true;
      return 0.5 / static_cast<double>(size);
    }
    return static_cast<double>(zeros) / static_cast<double>(size);
  };
  out.v_x = fraction(counts.zeros_small, m_x, out.saturated);
  out.v_y = fraction(counts.zeros_large, m_y, out.saturated);
  out.v_c = fraction(counts.zeros_or, m_y, out.saturated);

  const double numerator =
      std::log(out.v_c) - std::log(out.v_x) - std::log(out.v_y);
  out.raw = numerator / log_ratio_denominator(m_y);
  out.n_c_hat = std::max(0.0, out.raw);
  return out;
}

}  // namespace vlm::core
