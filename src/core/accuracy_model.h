// Closed-form accuracy analysis of the MLE estimator (paper Section V),
// in two flavors.
//
// kPaperBinomial implements Eqs. 9-36 exactly as published: zero counts
// are treated as binomial (independent bits) and the covariance terms of
// Eq. 35 collapse to a negligible delta-product under the paper's Taylor
// truncation.
//
// kOccupancyExact replaces both approximations with the true
// balls-into-bins second moments: every pairwise joint zero-probability
// of (B_c, B_x, B_y) bits is computed from per-vehicle factors, which
// captures (a) the negative correlation among bits of one array (each
// vehicle sets exactly one bit) and (b) the strong positive correlation
// between V_c and V_x, V_y (B_c is built from them). The two effects
// cancel most of the naive variance: at load factor ~13 the paper's
// formula over-predicts the estimator's standard deviation by roughly an
// order of magnitude, which Monte-Carlo simulation (bench_accuracy_model,
// E7) confirms. EXPERIMENTS.md discusses the discrepancy; tests tolerance
// bands use the exact model.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vlm::core {

struct PairScenario {
  double n_x = 0.0;   // point volume at the smaller-array RSU
  double n_y = 0.0;   // point volume at the larger-array RSU
  double n_c = 0.0;   // common volume (0 < n_c <= min(n_x, n_y))
  std::size_t m_x = 0;  // bit array sizes, powers of two, m_x | m_y
  std::size_t m_y = 0;
  std::uint32_t s = 2;  // logical bit array size
};

enum class VarianceModel {
  kPaperBinomial,   // the published Section V formulas
  kOccupancyExact,  // corrected balls-into-bins second moments
};

struct AccuracyPrediction {
  double q_nx = 0.0;  // Eq. 10: P[bit of B_x stays 0]
  double q_ny = 0.0;  // Eq. 11
  double q_nc = 0.0;  // Eq. 9:  P[bit of B_c stays 0]
  double expected_estimate = 0.0;  // Eq. 32: E[n̂_c]
  double bias_ratio = 0.0;         // Eq. 33: E[n̂_c/n_c] − 1
  double variance = 0.0;           // Eq. 34: Var[n̂_c]
  double stddev_ratio = 0.0;       // Eq. 36: StdDev[n̂_c/n_c]
};

class AccuracyModel {
 public:
  // Validates the scenario (array sizes powers of two with m_x | m_y,
  // volumes consistent, s >= 2) and throws std::invalid_argument if it is
  // malformed. If the caller passes m_x > m_y the roles are swapped, as
  // the decoding phase itself does.
  static AccuracyPrediction predict(
      const PairScenario& scenario,
      VarianceModel model = VarianceModel::kOccupancyExact);

  // Individual pieces, exposed for tests and for the privacy model.
  static double q_point(double n, std::size_t m);  // (1 − 1/m)^n
  static double q_combined(const PairScenario& s);  // Eq. 9
  // ln(1 − (s−1)/(s·m_y)) − ln(1 − 1/m_y): the Eq. 5 denominator.
  static double log_ratio_denominator(std::uint32_t s, std::size_t m_y);
};

}  // namespace vlm::core
