// Full origin-destination matrix estimation over a deployment of K RSUs.
//
// The paper estimates one pair at a time; a transportation study wants
// the whole K×K point-to-point matrix. Two decode paths produce it:
//
//   - pairwise: the fused zero-count kernel per pair — O(K² m_max / 64)
//     words of DRAM traffic, every array re-read K−1 times.
//   - blocked (default for K >= 3): the GEMM-style cache-blocked batch
//     decode — the word range is tiled, and each cache-hot tile is
//     combined with every partner before moving on, cutting DRAM traffic
//     to O(K m_max / 64) per tile sweep. The arithmetic is the same
//     integer popcounts landing in deterministic accumulator slots, so
//     the result is bit-identical to the pairwise path for every worker
//     count and tile size (tests and a differential fuzz suite assert
//     this).
//
// Each pair writes only its own cell, so the parallel result is
// bit-identical to the serial one for any worker count (a test asserts
// this on a 24-RSU workload).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/interval.h"
#include "core/rsu_state.h"

namespace vlm::core {

// How estimate_od_matrix walks the pair set. The VLM_DECODE environment
// variable (pairwise|blocked|auto), when set, overrides whatever the
// caller passes — mirroring VLM_KERNELS, so CI can pin one path
// process-wide without threading options through every layer.
enum class DecodeMode {
  kPairwise,  // per-pair fused kernel (the pre-blocking behavior)
  kBlocked,   // cache-blocked batch decode
  kAuto,      // blocked when K >= 3, pairwise for a single pair
};

// Observability for one decode (K×K estimation) run.
struct DecodeStats {
  std::size_t pairs_decoded = 0;
  std::size_t words_scanned = 0;  // 64-bit words the fused kernels touched
  unsigned workers = 1;           // threads the work was spread over
  double wall_seconds = 0.0;
  // ISA the kernel dispatch selected for the sweeps ("scalar", "avx2",
  // "avx512") — a static string, never freed.
  const char* kernel_isa = "scalar";
  // Decode path actually taken ("pairwise" or "blocked") after resolving
  // kAuto and the VLM_DECODE override — a static string, never freed.
  const char* path = "pairwise";
  // Blocked path only (0 on pairwise): anchor-tile size in 64-bit words
  // and the full-array DRAM loads the tiling avoided versus per-pair.
  std::size_t tile_words = 0;
  std::size_t dram_passes_saved = 0;
  // Persistent-pool accounting: parallel regions this run dispatched to
  // the shared WorkerPool, the pool's lifetime total after the run (the
  // gap between the two is reuse by earlier phases — no thread was
  // spawned for any of them), and the helper threads it keeps parked.
  std::uint64_t pool_dispatches = 0;
  std::uint64_t pool_lifetime_dispatches = 0;
  unsigned pool_threads = 0;

  double pairs_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(pairs_decoded) / wall_seconds
               : 0.0;
  }
  // Decode bandwidth over the words actually scanned.
  double mib_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(words_scanned) * 8.0 /
                                    (wall_seconds * 1024.0 * 1024.0)
                              : 0.0;
  }
};

// Knobs for estimate_od_matrix. Defaults reproduce the serial blocked
// decode; every combination yields bit-identical estimates.
struct DecodeOptions {
  unsigned workers = 1;  // 1 = serial, 0 = one per hardware core
  DecodeMode mode = DecodeMode::kAuto;
  std::size_t tile_words = 0;  // blocked path tile size; 0 = auto (L2 budget)
};

class OdMatrix {
 public:
  explicit OdMatrix(std::size_t rsu_count);

  std::size_t rsu_count() const { return k_; }

  const EstimateInterval& at(std::size_t a, std::size_t b) const;

  // Sum of all pairwise point estimates (an aggregate mobility index).
  double total_estimated_common() const;

 private:
  friend OdMatrix estimate_od_matrix(std::span<const RsuState>, std::uint32_t,
                                     double, const DecodeOptions&,
                                     DecodeStats*);
  EstimateInterval& cell(std::size_t a, std::size_t b);

  std::size_t k_;
  std::vector<EstimateInterval> cells_;  // upper triangle, row-major
};

// Estimates every unordered pair among `states`. Requires >= 2 RSUs.
// Symmetric: at(a, b) == at(b, a); the diagonal is invalid to query.
// The output is bit-identical for every DecodeOptions combination; only
// throughput changes. When `stats` is non-null it receives the run's
// decode counters.
OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z, const DecodeOptions& options,
                            DecodeStats* stats = nullptr);

// Convenience overload: `workers` spreads the work over that many
// threads (1 = serial, 0 = one per hardware core) with every other knob
// at its default.
OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z = 1.96, unsigned workers = 1,
                            DecodeStats* stats = nullptr);

}  // namespace vlm::core
