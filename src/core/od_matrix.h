// Full origin-destination matrix estimation over a deployment of K RSUs.
//
// The paper estimates one pair at a time; a transportation study wants
// the whole K×K point-to-point matrix. Three decode paths produce it:
//
//   - pairwise: the fused zero-count kernel per pair — O(K² m_max / 64)
//     words of DRAM traffic, every array re-read K−1 times.
//   - blocked (default for K >= 3): the GEMM-style cache-blocked batch
//     decode — the word range is tiled, and each cache-hot tile is
//     combined with every partner before moving on, cutting DRAM traffic
//     to O(K m_max / 64) per tile sweep. The arithmetic is the same
//     integer popcounts landing in deterministic accumulator slots, so
//     the result is bit-identical to the pairwise path for every worker
//     count and tile size (tests and a differential fuzz suite assert
//     this).
//   - pruned (opt-in): a cheap strided-sample union estimate per pair
//     first; pairs whose upper-bounded overlap stays at or below
//     PruneOptions::min_volume are skipped, and the exact blocked sweep
//     runs only on the survivors. Survivor estimates are bit-identical
//     to the blocked path (same integer counts, same Eq. 5 float path);
//     skipped pairs read as an all-zero interval. At city-scale K most
//     pairs share no traffic, so this turns the O(K²) sweep into
//     O(K² / stride) sampling plus O(survivors) exact work.
//
// Each pair writes only its own cell, and prune decisions are computed
// independently per pair, so the parallel result is bit-identical to the
// serial one for any worker count on every path (tests assert this on a
// 24-RSU workload).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/interval.h"
#include "core/rsu_state.h"

namespace vlm::core {

// How estimate_od_matrix walks the pair set. The VLM_DECODE environment
// variable (pairwise|blocked|pruned|auto), when set, overrides whatever
// the caller passes — mirroring VLM_KERNELS, so CI can pin one path
// process-wide without threading options through every layer.
enum class DecodeMode {
  kPairwise,  // per-pair fused kernel (the pre-blocking behavior)
  kBlocked,   // cache-blocked batch decode
  kPruned,    // sampled-union prune, then the blocked sweep on survivors
  kAuto,      // blocked when K >= 3, pairwise for a single pair
};

// Knobs for the prune stage of DecodeMode::kPruned. The defaults are
// maximally conservative: min_volume = 0 only ever skips pairs whose
// overlap upper bound is non-positive, so a pinned VLM_DECODE=pruned run
// stays estimate-compatible with blocked on every workload; real
// deployments raise min_volume to the smallest flow they care about.
struct PruneOptions {
  // Every sample_stride-th 8-word block of each pair's larger array is
  // fed to the sampled OR+popcount kernel; 1 samples every block. The
  // sampled zero fraction drives the skip rule below.
  std::size_t sample_stride = 16;
  // One-sided confidence multiplier on the sampled OR zero fraction.
  // The pair is kept unless even v_c_hat + z_prune standard errors of
  // zeros implies an overlap at or below min_volume — larger values keep
  // more near-threshold pairs (safer, slower). See DESIGN.md for the
  // bound's derivation.
  double z_prune = 4.0;
  // Volume floor: pairs whose upper-bounded overlap estimate is <=
  // min_volume are skipped. 0 means "only skip what is statistically
  // indistinguishable from zero overlap".
  double min_volume = 0.0;
};

// Observability for one decode (K×K estimation) run.
struct DecodeStats {
  std::size_t pairs_decoded = 0;
  // Pairs whose Eq. 5 MLE degenerated (joint OR array with zero count 0
  // — the estimate is a saturation floor, not a measurement). Health
  // telemetry counts these as `decode/pairs_saturated`.
  std::size_t pairs_saturated = 0;
  std::size_t words_scanned = 0;  // 64-bit words the fused kernels touched
  unsigned workers = 1;           // threads the work was spread over
  double wall_seconds = 0.0;
  // ISA the kernel dispatch selected for the sweeps ("scalar", "avx2",
  // "avx512") — a static string, never freed.
  const char* kernel_isa = "scalar";
  // Decode path actually taken ("pairwise", "blocked", or "pruned")
  // after resolving kAuto and the VLM_DECODE override — a static string,
  // never freed.
  const char* path = "pairwise";
  // Blocked path only (0 on pairwise): anchor-tile size in 64-bit words
  // and the full-array DRAM loads the tiling avoided versus per-pair.
  std::size_t tile_words = 0;
  std::size_t dram_passes_saved = 0;
  // Pruned path only (0 elsewhere): pairs the sampled-union stage
  // skipped vs. kept, the sample stride used, and per-phase wall time.
  // pairs_decoded above counts only the pairs actually estimated, so on
  // the pruned path it equals pairs_survived.
  std::size_t pairs_pruned = 0;
  std::size_t pairs_survived = 0;
  std::size_t sample_stride = 0;
  double prune_seconds = 0.0;
  double sweep_seconds = 0.0;     // blocked + pruned: the exact tile sweep
  double estimate_seconds = 0.0;  // Eq. 5 / interval math
  // Matrix storage the pruned path chose ("dense" or "sparse") — a
  // static string, never freed. Always "dense" for unpruned decodes.
  const char* storage = "dense";
  // Persistent-pool accounting: parallel regions this run dispatched to
  // the shared WorkerPool, the pool's lifetime total after the run (the
  // gap between the two is reuse by earlier phases — no thread was
  // spawned for any of them), and the helper threads it keeps parked.
  std::uint64_t pool_dispatches = 0;
  std::uint64_t pool_lifetime_dispatches = 0;
  unsigned pool_threads = 0;

  double pairs_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(pairs_decoded) / wall_seconds
               : 0.0;
  }
  // Decode bandwidth over the words actually scanned.
  double mib_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(words_scanned) * 8.0 /
                                    (wall_seconds * 1024.0 * 1024.0)
                              : 0.0;
  }
};

// Knobs for estimate_od_matrix. Defaults reproduce the serial blocked
// decode; every combination yields bit-identical estimates.
struct DecodeOptions {
  unsigned workers = 1;  // 1 = serial, 0 = one per hardware core
  DecodeMode mode = DecodeMode::kAuto;
  std::size_t tile_words = 0;  // blocked path tile size; 0 = auto (L2 budget)
  PruneOptions prune;          // kPruned only; ignored on the other paths
};

class OdMatrix {
 public:
  explicit OdMatrix(std::size_t rsu_count);

  std::size_t rsu_count() const { return k_; }

  // Point estimate and interval for the pair. Dense matrices answer
  // every pair; a pruned decode's matrix answers skipped pairs with a
  // shared all-zero interval (their overlap was statistically
  // indistinguishable from zero at the configured threshold).
  const EstimateInterval& at(std::size_t a, std::size_t b) const;

  // Whether (a, b) was actually measured by the exact sweep — always
  // true for unpruned decodes, false exactly for the pairs the prune
  // stage skipped.
  bool measured(std::size_t a, std::size_t b) const;

  // Cells the exact sweep measured: k(k-1)/2 unless pruned.
  std::size_t measured_pairs() const { return measured_pairs_; }

  // Whether the survivor set is held in CSR storage (pruned decodes
  // below the density threshold) instead of the dense upper triangle.
  bool sparse() const { return !row_offsets_.empty(); }

  // Sum of all pairwise point estimates (an aggregate mobility index).
  // Skipped pairs contribute their pruned-to-zero estimate.
  double total_estimated_common() const;

 private:
  friend OdMatrix estimate_od_matrix(std::span<const RsuState>, std::uint32_t,
                                     double, const DecodeOptions&,
                                     DecodeStats*);
  EstimateInterval& cell(std::size_t a, std::size_t b);

  // Storage for a pruned decode: CSR over the survivor list (must be
  // sorted ascending by (row, col), row < col) when survivors are sparse
  // enough to pay for the index, the dense triangle plus per-cell
  // measured flags otherwise.
  static OdMatrix for_survivors(
      std::size_t rsu_count,
      std::span<const std::pair<std::uint32_t, std::uint32_t>> survivors);

  std::size_t triangle_index(std::size_t lo, std::size_t hi) const {
    // Row-major upper triangle: offset(lo) = lo*k - lo(lo+1)/2 relative
    // to column lo+1.
    return lo * k_ - lo * (lo + 1) / 2 + (hi - lo - 1);
  }
  // Survivor-slot lookup in CSR storage; npos when (lo, hi) was pruned.
  std::size_t sparse_slot(std::size_t lo, std::size_t hi) const;

  std::size_t k_;
  std::size_t measured_pairs_ = 0;
  // Dense: the full upper triangle, row-major. Sparse: one entry per
  // survivor, in survivor order.
  std::vector<EstimateInterval> cells_;
  // CSR index (sparse storage only): row r's survivor columns are
  // cols_[row_offsets_[r] .. row_offsets_[r + 1]).
  std::vector<std::uint32_t> row_offsets_;
  std::vector<std::uint32_t> cols_;
  // Dense pruned fallback only: 1 where the cell was measured.
  std::vector<std::uint8_t> measured_;
};

// Estimates every unordered pair among `states`. Requires >= 2 RSUs.
// Symmetric: at(a, b) == at(b, a); the diagonal is invalid to query.
// The output is bit-identical for every DecodeOptions combination; only
// throughput changes. When `stats` is non-null it receives the run's
// decode counters.
OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z, const DecodeOptions& options,
                            DecodeStats* stats = nullptr);

// Convenience overload: `workers` spreads the work over that many
// threads (1 = serial, 0 = one per hardware core) with every other knob
// at its default.
OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z = 1.96, unsigned workers = 1,
                            DecodeStats* stats = nullptr);

}  // namespace vlm::core
