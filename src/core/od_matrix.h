// Full origin-destination matrix estimation over a deployment of K RSUs.
//
// The paper estimates one pair at a time; a transportation study wants
// the whole K×K point-to-point matrix. This runs the pair estimator
// (with intervals) over every unordered pair via the fused zero-count
// kernel — O(K² m_max / 64) words total, which the Section IV-E per-pair
// bound makes practical — and optionally fans the pair list out over
// worker threads. Each pair writes only its own cell, so the parallel
// result is bit-identical to the serial one for any worker count (a test
// asserts this on a 24-RSU workload).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/interval.h"
#include "core/rsu_state.h"

namespace vlm::core {

// Observability for one decode (K×K estimation) run.
struct DecodeStats {
  std::size_t pairs_decoded = 0;
  std::size_t words_scanned = 0;  // 64-bit words the fused kernels touched
  unsigned workers = 1;           // threads the pair list was spread over
  double wall_seconds = 0.0;
  // ISA the kernel dispatch selected for the sweeps ("scalar", "avx2",
  // "avx512") — a static string, never freed.
  const char* kernel_isa = "scalar";

  double pairs_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(pairs_decoded) / wall_seconds
               : 0.0;
  }
  // Decode bandwidth over the words actually scanned.
  double mib_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(words_scanned) * 8.0 /
                                    (wall_seconds * 1024.0 * 1024.0)
                              : 0.0;
  }
};

class OdMatrix {
 public:
  OdMatrix(std::size_t rsu_count, std::uint32_t s, double z);

  std::size_t rsu_count() const { return k_; }

  const EstimateInterval& at(std::size_t a, std::size_t b) const;

  // Sum of all pairwise point estimates (an aggregate mobility index).
  double total_estimated_common() const;

 private:
  friend OdMatrix estimate_od_matrix(std::span<const RsuState>, std::uint32_t,
                                     double, unsigned, DecodeStats*);
  EstimateInterval& cell(std::size_t a, std::size_t b);

  std::size_t k_;
  std::vector<EstimateInterval> cells_;  // upper triangle, row-major
};

// Estimates every unordered pair among `states`. Requires >= 2 RSUs.
// Symmetric: at(a, b) == at(b, a); the diagonal is invalid to query.
// `workers` spreads the pair list over that many threads (1 = serial,
// 0 = one per hardware core); the output is identical for any value.
// When `stats` is non-null it receives the run's decode counters.
OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z = 1.96, unsigned workers = 1,
                            DecodeStats* stats = nullptr);

}  // namespace vlm::core
