// Full origin-destination matrix estimation over a deployment of K RSUs.
//
// The paper estimates one pair at a time; a transportation study wants
// the whole K×K point-to-point matrix. This runs the pair estimator
// (with intervals) over every unordered pair — O(K² m_max) total, which
// the Section IV-E per-pair bound makes practical (24 RSUs at m = 2^22
// decode in well under a second; see bench_overhead).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/interval.h"
#include "core/rsu_state.h"

namespace vlm::core {

class OdMatrix {
 public:
  OdMatrix(std::size_t rsu_count, std::uint32_t s, double z);

  std::size_t rsu_count() const { return k_; }

  const EstimateInterval& at(std::size_t a, std::size_t b) const;

  // Sum of all pairwise point estimates (an aggregate mobility index).
  double total_estimated_common() const;

 private:
  friend OdMatrix estimate_od_matrix(std::span<const RsuState>, std::uint32_t,
                                     double);
  EstimateInterval& cell(std::size_t a, std::size_t b);

  std::size_t k_;
  std::vector<EstimateInterval> cells_;  // upper triangle, row-major
};

// Estimates every unordered pair among `states`. Requires >= 2 RSUs.
// Symmetric: at(a, b) == at(b, a); the diagonal is invalid to query.
OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z = 1.96);

}  // namespace vlm::core
