#include "core/calibration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.h"
#include "common/require.h"
#include "core/accuracy_model.h"
#include "core/privacy_model.h"
#include "core/sizing.h"

namespace vlm::core {

namespace {

// Worst-case privacy of the configuration over the profile's extreme
// pairs, accounting for power-of-two rounding (realized f ∈ [f̄, 2f̄)).
double worst_privacy(double f, double n_lo, double n_hi,
                     double common_fraction, std::uint32_t s) {
  double worst = 1.0;
  const double pairs[3][2] = {{n_lo, n_lo}, {n_lo, n_hi}, {n_hi, n_hi}};
  for (const auto& pair : pairs) {
    for (double realized : {f, 2.0 * f}) {
      worst = std::min(worst, PrivacyModel::privacy_at_load_factor(
                                  realized, pair[0], pair[1],
                                  common_fraction, s));
    }
  }
  return worst;
}

double predicted_error(double f, double n_lo, double n_hi,
                       double common_fraction, std::uint32_t s) {
  const VlmSizingPolicy sizing(f);
  const std::size_t m_lo = sizing.array_size_for(n_lo);
  const std::size_t m_hi = sizing.array_size_for(n_hi);
  if (static_cast<std::size_t>(s) >= m_lo) {
    return std::numeric_limits<double>::infinity();
  }
  const PairScenario scenario{n_lo, n_hi,
                              std::max(1.0, common_fraction * n_lo), m_lo,
                              m_hi, s};
  return AccuracyModel::predict(scenario).stddev_ratio;
}

}  // namespace

CalibrationResult calibrate_deployment(const CalibrationRequest& request) {
  VLM_REQUIRE(request.min_volume > 0.0 &&
                  request.max_volume >= request.min_volume,
              "volume profile must satisfy 0 < min <= max");
  VLM_REQUIRE(request.min_privacy > 0.0 && request.min_privacy < 1.0,
              "privacy floor must be in (0, 1)");
  VLM_REQUIRE(request.common_fraction > 0.0 && request.common_fraction <= 1.0,
              "common fraction must be in (0, 1]");
  VLM_REQUIRE(0.0 < request.f_lo && request.f_lo < request.f_hi,
              "need 0 < f_lo < f_hi");
  VLM_REQUIRE(request.f_grid_steps >= 2, "grid needs at least two steps");
  VLM_REQUIRE(!request.s_candidates.empty(), "no s candidates given");

  CalibrationResult best;
  best.predicted_error = std::numeric_limits<double>::infinity();
  const double log_step = std::log(request.f_hi / request.f_lo) /
                          static_cast<double>(request.f_grid_steps - 1);
  for (std::uint32_t s : request.s_candidates) {
    VLM_REQUIRE(s >= 2, "s candidates must be >= 2");
    for (int i = 0; i < request.f_grid_steps; ++i) {
      const double f = request.f_lo * std::exp(log_step * i);
      const double privacy =
          worst_privacy(f, request.min_volume, request.max_volume,
                        request.common_fraction, s);
      if (privacy < request.min_privacy) continue;
      const double error =
          predicted_error(f, request.min_volume, request.max_volume,
                          request.common_fraction, s);
      if (error < best.predicted_error) {
        best.s = s;
        best.load_factor = f;
        best.worst_privacy = privacy;
        best.predicted_error = error;
      }
    }
  }
  if (best.s == 0) {
    throw std::invalid_argument(
        "no (s, f) configuration meets the privacy floor for this profile");
  }
  return best;
}

}  // namespace vlm::core
