// Protocol-exact simulation of one RSU pair under a controlled workload.
//
// This is the workhorse behind Figures 4-5 and the Monte-Carlo validation
// of the analysis models: it materializes n_x + n_y − n_c synthetic
// vehicles (n_c of which pass both RSUs), runs the real Encoder for every
// visit, and returns the two end-of-period RsuStates. Nothing is
// shortcut: the bits land exactly where the deployed protocol would put
// them.
#pragma once

#include <cstdint>

#include "core/encoder.h"
#include "core/rsu_state.h"

namespace vlm::core {

// Derives the `index`-th synthetic vehicle of stream `seed`: id and
// private key come from two splitmix64 streams with distinct gammas.
// They must NOT be built as mixes of inputs at a constant XOR offset —
// the protocol hashes id ⊕ key, and f(x) ⊕ f(x ⊕ delta) of a single
// finalizer is a fixed differential with measurable structure (it biased
// zero counts by ~10 standard errors before this helper existed). Every
// harness that fabricates vehicles should use this.
VehicleIdentity synthetic_vehicle(std::uint64_t seed, std::uint64_t index);

// Bulk form: out[i] = synthetic_vehicle(seed, first_index + i).masked_key()
// for i in [0, n). Both splitmix64 streams run through the dispatched
// encode_batch kernel (8 finalizer lanes per iteration on AVX-512)
// instead of one scalar mix64 pair per vehicle, which is what lets the
// batch-ingest materialize stage derive a whole sub-slice of identities
// in two kernel calls. Bit-identical to the per-vehicle helper — a test
// pins the equivalence.
void synthetic_masked_keys(std::uint64_t seed, std::uint64_t first_index,
                           std::size_t n, std::uint64_t* out);

struct PairWorkload {
  std::uint64_t n_x = 0;  // vehicles passing RSU x (including common)
  std::uint64_t n_y = 0;  // vehicles passing RSU y (including common)
  std::uint64_t n_c = 0;  // vehicles passing both (n_c <= min(n_x, n_y))
};

struct PairStates {
  RsuState x;
  RsuState y;
};

// Runs the online coding phase for the workload. Vehicle identities and
// private keys are derived deterministically from `seed`; `rsu_x`/`rsu_y`
// are the RSU ids that enter the slot-selection hash.
PairStates simulate_pair(const Encoder& encoder, const PairWorkload& workload,
                         std::size_t m_x, std::size_t m_y, std::uint64_t seed,
                         RsuId rsu_x = RsuId{0xAAu}, RsuId rsu_y = RsuId{0xBBu});

class Scheme;

// Scheme-driven overload: each array is sized by the scheme's policy from
// the RSU's point volume, and every visit goes through the scheme's
// shared encoder — one call stays correct for VLM, FBM, or any future
// scheme without the harness knowing which it got.
PairStates simulate_pair(const Scheme& scheme, const PairWorkload& workload,
                         std::uint64_t seed, RsuId rsu_x = RsuId{0xAAu},
                         RsuId rsu_y = RsuId{0xBBu});

}  // namespace vlm::core
