#include "core/accuracy_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/require.h"

namespace vlm::core {

namespace {

PairScenario normalized(PairScenario s) {
  if (s.m_x > s.m_y) {
    std::swap(s.m_x, s.m_y);
    std::swap(s.n_x, s.n_y);
  }
  VLM_REQUIRE(common::is_power_of_two(s.m_x) && common::is_power_of_two(s.m_y),
              "array sizes must be powers of two");
  VLM_REQUIRE(s.m_x >= 4, "arrays need at least four bits");
  VLM_REQUIRE(s.s >= 2, "s must be >= 2");
  VLM_REQUIRE(static_cast<std::size_t>(s.s) < s.m_y, "Eq. 5 requires s < m_y");
  VLM_REQUIRE(s.n_x >= 0.0 && s.n_y >= 0.0, "volumes must be non-negative");
  VLM_REQUIRE(s.n_c > 0.0 && s.n_c <= std::min(s.n_x, s.n_y),
              "common volume must satisfy 0 < n_c <= min(n_x, n_y)");
  return s;
}

// ----- occupancy-exact machinery -------------------------------------------
//
// Every second moment of (U_c, U_x, U_y) reduces to pairwise joint
// zero-probabilities of bit positions, and each of those is a product of
// per-vehicle-class factors (common / x-only / y-only). We carry the log
// of each factor and evaluate ratios J/(q_a q_b) via expm1 so the tiny
// correlation corrections survive in double precision.

struct ClassLogFactors {
  double common = 0.0;
  double x_only = 0.0;
  double y_only = 0.0;
};

double ln_event(const PairScenario& sc, const ClassLogFactors& f) {
  return sc.n_c * f.common + (sc.n_x - sc.n_c) * f.x_only +
         (sc.n_y - sc.n_c) * f.y_only;
}

struct LogSecondMoments {
  double var_ln_x, var_ln_y, var_ln_c;
  double cov_ln_cx, cov_ln_cy, cov_ln_xy;
};

LogSecondMoments occupancy_moments(const PairScenario& sc, double q_x,
                                   double q_y, double q_c) {
  const double A = 1.0 / static_cast<double>(sc.m_x);
  const double B = 1.0 / static_cast<double>(sc.m_y);
  const double w = 1.0 - 1.0 / static_cast<double>(sc.s);  // (s-1)/s
  const double mx = static_cast<double>(sc.m_x);
  const double my = static_cast<double>(sc.m_y);
  const double r = my / mx;  // bits of B_c sharing one B_x bit

  const double lx1 = std::log1p(-A);
  const double lx2 = std::log1p(-2.0 * A);
  const double ly1 = std::log1p(-B);
  const double ly2 = std::log1p(-2.0 * B);
  // Per common vehicle, P[bit of B_c stays 0] = (1-A)(1 - wB): Eq. 6.
  const double lc1 = lx1 + std::log1p(-w * B);
  // Two B_c bits with distinct y-positions, same-slot protected:
  // invs + (1-invs)(1-2B) = 1 - 2wB.
  const double lprot2 = std::log1p(-2.0 * w * B);

  const ClassLogFactors marg_x{lx1, lx1, 0.0};
  const ClassLogFactors marg_y{ly1, 0.0, ly1};
  const ClassLogFactors marg_c{lc1, lx1, ly1};

  // Joint factor tables (see header comment for the derivations).
  const ClassLogFactors j_xx{lx2, lx2, 0.0};
  const ClassLogFactors j_yy{ly2, 0.0, ly2};
  const ClassLogFactors j_cc_same{lx1 + lprot2, lx1, ly2};
  const ClassLogFactors j_cc_diff{lx2 + lprot2, lx2, ly2};
  const ClassLogFactors j_cx_off{lx2 + std::log1p(-w * B), lx2, ly1};
  // Cov(C_i, Y_j), j != i. Same x-residue: identical to j_cc_same. Else
  // the same-slot branch can still hit j with prob kappa = B/(1-A).
  const double kappa = B / (1.0 - A);
  const double invs = 1.0 - w;
  const ClassLogFactors j_cy_diff{
      lx1 + std::log1p(-(invs * kappa + 2.0 * w * B)), lx1, ly2};
  // Cov(X_j, Y_i): only common vehicles couple the arrays.
  const ClassLogFactors j_xy_same{std::log1p(-(A + w * B * (1.0 - A))), lx1,
                                  ly1};
  const ClassLogFactors j_xy_diff{std::log1p(-(A + B * (1.0 - w * A))), lx1,
                                  ly1};

  auto corr = [&](const ClassLogFactors& joint, const ClassLogFactors& a,
                  const ClassLogFactors& b) {
    // J/(q_a q_b) - 1, computed in log space.
    return std::expm1(ln_event(sc, joint) - ln_event(sc, a) - ln_event(sc, b));
  };

  LogSecondMoments out{};
  out.var_ln_x =
      (1.0 - q_x) / (mx * q_x) + ((mx - 1.0) / mx) * corr(j_xx, marg_x, marg_x);
  out.var_ln_y =
      (1.0 - q_y) / (my * q_y) + ((my - 1.0) / my) * corr(j_yy, marg_y, marg_y);
  out.var_ln_c = (1.0 - q_c) / (my * q_c) +
                 ((r - 1.0) / my) * corr(j_cc_same, marg_c, marg_c) +
                 ((my - r) / my) * corr(j_cc_diff, marg_c, marg_c);
  out.cov_ln_cx = (1.0 - q_x) / (mx * q_x) +
                  ((mx - 1.0) / mx) * corr(j_cx_off, marg_c, marg_x);
  out.cov_ln_cy = (1.0 - q_y) / (my * q_y) +
                  ((r - 1.0) / my) * corr(j_cc_same, marg_c, marg_y) +
                  ((my - r) / my) * corr(j_cy_diff, marg_c, marg_y);
  out.cov_ln_xy = (1.0 / mx) * corr(j_xy_same, marg_x, marg_y) +
                  ((mx - 1.0) / mx) * corr(j_xy_diff, marg_x, marg_y);
  return out;
}

}  // namespace

double AccuracyModel::q_point(double n, std::size_t m) {
  return common::pow_one_minus(1.0 / static_cast<double>(m), n);
}

double AccuracyModel::log_ratio_denominator(std::uint32_t s, std::size_t m_y) {
  const double my = static_cast<double>(m_y);
  const double sd = static_cast<double>(s);
  return common::log_one_minus((sd - 1.0) / (sd * my)) -
         common::log_one_minus(1.0 / my);
}

double AccuracyModel::q_combined(const PairScenario& raw) {
  const PairScenario sc = normalized(raw);
  // Eq. 9: q(n_c) = q(n_x) q(n_y) * exp(n_c * L) with L the Eq. 5
  // denominator (the log of the bracketed ratio).
  const double L = log_ratio_denominator(sc.s, sc.m_y);
  return q_point(sc.n_x, sc.m_x) * q_point(sc.n_y, sc.m_y) *
         std::exp(sc.n_c * L);
}

AccuracyPrediction AccuracyModel::predict(const PairScenario& raw,
                                          VarianceModel model) {
  const PairScenario sc = normalized(raw);
  AccuracyPrediction out;
  out.q_nx = q_point(sc.n_x, sc.m_x);
  out.q_ny = q_point(sc.n_y, sc.m_y);
  const double L = log_ratio_denominator(sc.s, sc.m_y);
  out.q_nc = out.q_nx * out.q_ny * std::exp(sc.n_c * L);

  const double mx = static_cast<double>(sc.m_x);
  const double my = static_cast<double>(sc.m_y);

  double var_n;       // Var[ln V_c - ln V_x - ln V_y]
  double delta_diff;  // delta_c - delta_x - delta_y, delta = E lnV - ln E V
  if (model == VarianceModel::kPaperBinomial) {
    // Eqs. 25-31 under U ~ Binomial(m, q); Eq. 35's covariances collapse
    // to -delta_a * delta_b, which are O(1/m^2) and all but vanish.
    const double var_ln_x = (1.0 - out.q_nx) / (mx * out.q_nx);
    const double var_ln_y = (1.0 - out.q_ny) / (my * out.q_ny);
    const double var_ln_c = (1.0 - out.q_nc) / (my * out.q_nc);
    const double delta_x = -0.5 * var_ln_x;
    const double delta_y = -0.5 * var_ln_y;
    const double delta_c = -0.5 * var_ln_c;
    const double c1 = -delta_c * delta_x;
    const double c2 = -delta_c * delta_y;
    const double c3 = -delta_x * delta_y;
    var_n = (var_ln_c + var_ln_x + var_ln_y) + (-c1 - c2 + c3);  // Eq. 34
    delta_diff = delta_c - delta_x - delta_y;
  } else {
    const LogSecondMoments m2 =
        occupancy_moments(sc, out.q_nx, out.q_ny, out.q_nc);
    var_n = m2.var_ln_c + m2.var_ln_x + m2.var_ln_y - 2.0 * m2.cov_ln_cx -
            2.0 * m2.cov_ln_cy + 2.0 * m2.cov_ln_xy;
    delta_diff =
        -0.5 * (m2.var_ln_c - m2.var_ln_x - m2.var_ln_y);
  }

  // Eq. 32. Since ln q(n_c) − ln q(n_x) − ln q(n_y) = n_c * L, the mean
  // simplifies to n_c + (delta_c − delta_x − delta_y) / L.
  out.expected_estimate = sc.n_c + delta_diff / L;
  out.bias_ratio = out.expected_estimate / sc.n_c - 1.0;  // Eq. 33
  out.variance = std::max(0.0, var_n) / (L * L);          // Eq. 34
  out.stddev_ratio = std::sqrt(out.variance) / sc.n_c;    // Eq. 36
  return out;
}

}  // namespace vlm::core
