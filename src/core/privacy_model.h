// Preserved-privacy analysis (paper Section VI, Eqs. 37-43).
//
// The privacy metric p is the conditional probability that a bit position
// observed '1' in both RSUs' (unfolded) arrays does NOT correspond to a
// common vehicle:  p = P(E | A) = P(E_x) P(E_y) / P(A).  Larger p means a
// tracker gains less from the published arrays. Setting m_x = m_y
// recovers the baseline scheme's formula exactly (the paper notes FBM is
// the special case of VLM).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/accuracy_model.h"

namespace vlm::core {

struct PrivacyBreakdown {
  double p = 0.0;        // Eq. 43, the preserved privacy
  double p_a = 0.0;      // P(A): bit '1' in both arrays (Eq. 40 complement)
  double p_ex = 0.0;     // Eq. 41
  double p_ey = 0.0;     // Eq. 42
};

class PrivacyModel {
 public:
  // Closed-form privacy via Eq. 40's binomial-collapsed constants C4, C5.
  // Scenario roles are normalized so m_x <= m_y, like the decoder.
  static PrivacyBreakdown evaluate(const PairScenario& scenario);

  // Corrected closed form. The paper's Eq. 40 mis-models same-slot
  // common vehicles when m_x < m_y: it assumes such a vehicle either
  // hits "the bit" on both sides (probability 1/m_y) or neither, but in
  // reality it sets the x-side residue with probability 1/m_x and then
  // bit b of B_y only with conditional probability m_x/m_y — so it can
  // mark the x side alone. Working per vehicle class with the true
  // congruence semantics gives exact products (and P(E_x ∧ E_y) in
  // closed form with NO independence approximation):
  //   P(x side clear)  = (1 − 1/m_x)^{n_x}
  //   P(y side clear)  = (1 − 1/m_y)^{n_y}
  //   P(both clear)    = (1−1/m_x)^{n_x−n_c} (1−1/m_y)^{n_y−n_c}
  //                      [(1−1/m_x)(1−(s−1)/(s m_y))]^{n_c}
  //   P(A)             = 1 − P(x clear) − P(y clear) + P(both clear)
  //   P(E_x ∧ E_y)     = (1−(1−1/m_x)^{n_x−n_c}) (1−(1−1/m_y)^{n_y−n_c})
  //                      [(1−1/m_x)(1−(s−1)/(s m_y))]^{n_c}
  // It coincides with Eq. 43 when m_x = m_y and is a few percentage
  // points LOWER (less optimistic) for unfolded pairs; Monte-Carlo
  // simulation sides with this version (tests/core/privacy_mc_test.cpp,
  // EXPERIMENTS.md).
  static PrivacyBreakdown evaluate_exact(const PairScenario& scenario);

  // Convenience: just p (paper formula).
  static double preserved_privacy(const PairScenario& scenario);

  // Direct evaluation of P(Ā) by the explicit sum of Eqs. 37-39 over the
  // binomial distribution of n_s. O(n_c) terms — used by tests to verify
  // the closed form; requires integer n_c.
  static double prob_not_both_one_exact(const PairScenario& scenario);

  // Closed-form P(Ā) (first line of Eq. 40).
  static double prob_not_both_one(const PairScenario& scenario);

  // Trajectory-level privacy: a k-RSU trajectory is a chain of k−1
  // consecutive pair traces; a tracker reconstructs the whole trajectory
  // only if EVERY hop's doubly-set bit is a true common-vehicle bit. With
  // p_i the per-hop preserved privacy, the probability that the full
  // trajectory is NOT reconstructed is 1 − Π(1 − p_i). Uses the exact
  // per-hop closed form. Requires at least one hop.
  static double trajectory_privacy(std::span<const PairScenario> hops);

  // Fig. 2 helper: privacy of a scheme where both RSUs run at load factor
  // `f` (m = ceil_pow2 is NOT applied here — the paper's curves treat m as
  // continuous m = f·n). `common_fraction` is n_c / n_x (the paper's
  // curves correspond to 0.1; see EXPERIMENTS.md for the calibration).
  static double privacy_at_load_factor(double f, double n_x, double n_y,
                                       double common_fraction,
                                       std::uint32_t s);
};

}  // namespace vlm::core
