// Bit-array sizing policies — the single design axis on which the paper's
// scheme (VLM) and the fixed-length baseline [9] (FBM) differ.
//
// VLM (Section IV-B): m_x = 2^ceil(log2(n̄_x · f̄)), where n̄_x is the
// RSU's historical average point volume and f̄ a global target load
// factor. Every RSU thus operates near the same load factor, which is
// what keeps privacy and accuracy simultaneously healthy (Section VI-B).
//
// FBM: one global m for every RSU. To guarantee a minimum privacy for the
// lightest RSU the paper bounds m by a multiple of the minimum volume
// (e.g. m <= 15 * n_min for privacy >= 0.5 at s = 2), which then starves
// heavy RSUs of bits.
#pragma once

#include <cstddef>

namespace vlm::core {

struct SizingLimits {
  std::size_t min_bits = 8;          // floor for near-zero-traffic RSUs
  std::size_t max_bits = std::size_t{1} << 30;  // 128 MiB of bits
};

class VlmSizingPolicy {
 public:
  // `load_factor` is the paper's global f̄ (> 0).
  explicit VlmSizingPolicy(double load_factor, SizingLimits limits = {});

  double load_factor() const { return load_factor_; }

  // m_x for an RSU with historical average volume `history_volume`
  // (>= 0). Always a power of two within the configured limits.
  std::size_t array_size_for(double history_volume) const;

 private:
  double load_factor_;
  SizingLimits limits_;
};

class FbmSizingPolicy {
 public:
  // `array_size` must be a power of two.
  explicit FbmSizingPolicy(std::size_t array_size);

  std::size_t array_size() const { return array_size_; }
  std::size_t array_size_for(double /*history_volume*/) const {
    return array_size_;
  }

  // The baseline's sizing rule: the largest power of two not exceeding
  // `privacy_load_cap` * n_min (e.g. privacy_load_cap = 15 guarantees
  // p >= 0.5 for s = 2 per Fig. 2). Returns at least `limits.min_bits`.
  static FbmSizingPolicy for_min_volume(double min_volume,
                                        double privacy_load_cap,
                                        SizingLimits limits = {});

 private:
  std::size_t array_size_;
};

}  // namespace vlm::core
