#include "core/union_estimator.h"

#include <algorithm>

#include "common/require.h"

namespace vlm::core {

UnionEstimator::UnionEstimator(std::uint32_t s) : pair_estimator_(s) {}

UnionEstimate UnionEstimator::estimate(
    std::span<const RsuState> states) const {
  VLM_REQUIRE(!states.empty(), "union estimation needs at least one RSU");
  UnionEstimate out;
  for (const RsuState& state : states) {
    out.total_reports += static_cast<double>(state.counter());
  }
  for (std::size_t a = 0; a < states.size(); ++a) {
    for (std::size_t b = a + 1; b < states.size(); ++b) {
      const PairEstimate pair = pair_estimator_.estimate(states[a], states[b]);
      out.pairwise_overlap += pair.n_c_hat;
      out.saturated |= pair.saturated;
    }
  }
  out.distinct_vehicles =
      std::max(0.0, out.total_reports - out.pairwise_overlap);
  return out;
}

}  // namespace vlm::core
