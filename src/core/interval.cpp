#include "core/interval.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"
#include "core/accuracy_model.h"

namespace vlm::core {

IntervalEstimator::IntervalEstimator(std::uint32_t s, double z)
    : estimator_(s), s_(s), z_(z) {
  VLM_REQUIRE(z > 0.0, "interval width multiplier must be positive");
}

EstimateInterval IntervalEstimator::estimate(const RsuState& x,
                                             const RsuState& y,
                                             PairEstimate* point) const {
  const PairEstimate pair = estimator_.estimate(x, y);
  if (point != nullptr) *point = pair;
  EstimateInterval out = annotate(pair, static_cast<double>(x.counter()),
                                  static_cast<double>(y.counter()));
  out.degraded = out.degraded || pair.saturated;
  return out;
}

EstimateInterval IntervalEstimator::from_counts(
    const common::JointZeroCounts& counts, double n_x, double n_y,
    PairEstimate* point) const {
  const PairEstimate pair = estimator_.from_counts(counts);
  if (point != nullptr) *point = pair;
  EstimateInterval out = annotate(pair, n_x, n_y);
  out.degraded = out.degraded || pair.saturated;
  return out;
}

EstimateInterval IntervalEstimator::annotate(const PairEstimate& estimate,
                                             double n_x, double n_y) const {
  VLM_REQUIRE(n_x >= 0.0 && n_y >= 0.0, "counters must be non-negative");
  EstimateInterval out;
  out.n_c_hat = estimate.n_c_hat;
  out.degraded = estimate.saturated;

  // The variance model needs a positive n_c; below ~1 vehicle the
  // estimate carries no information, so evaluate at 1 and flag it.
  double eval_nc = estimate.n_c_hat;
  const double max_nc = std::min(n_x, n_y);
  if (eval_nc < 1.0) {
    eval_nc = std::min(1.0, max_nc);
    out.degraded = true;
  }
  if (eval_nc > max_nc) {
    eval_nc = max_nc;  // noise pushed the estimate past its support
    out.degraded = true;
  }
  if (max_nc < 1.0) {
    // An idle RSU: nothing to intersect, interval is [0, 0].
    return out;
  }

  const PairScenario scenario{std::max(n_x, eval_nc), std::max(n_y, eval_nc),
                              eval_nc, estimate.m_x, estimate.m_y, s_};
  const AccuracyPrediction pred =
      AccuracyModel::predict(scenario, VarianceModel::kOccupancyExact);
  out.stddev = pred.stddev_ratio * eval_nc;
  out.floor_stddev = std::sqrt(eval_nc * (static_cast<double>(s_) - 1.0));
  out.lower = std::max(0.0, estimate.n_c_hat - z_ * out.stddev);
  out.upper = estimate.n_c_hat + z_ * out.stddev;
  return out;
}

}  // namespace vlm::core
