#include "core/multi_period.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace vlm::core {

MultiPeriodAggregator::MultiPeriodAggregator(double z) : z_(z) {
  VLM_REQUIRE(z > 0.0, "interval width multiplier must be positive");
}

void MultiPeriodAggregator::add_period(const EstimateInterval& estimate) {
  // Guard the weighting against degenerate inputs: an estimate reported
  // with stddev 0 either comes from an idle RSU pair (no information) or
  // a caller bug; treat the floor as the minimum believable spread.
  const double stddev = std::max(estimate.stddev,
                                 std::max(estimate.floor_stddev, 1e-6));
  const double variance = stddev * stddev;
  weight_sum_ += 1.0 / variance;
  weighted_estimate_ += estimate.n_c_hat / variance;
  ++periods_;
}

AggregateEstimate MultiPeriodAggregator::aggregate() const {
  VLM_REQUIRE(periods_ > 0, "no periods have been added");
  AggregateEstimate out;
  out.periods = periods_;
  out.n_c_hat = weighted_estimate_ / weight_sum_;
  out.stddev = std::sqrt(1.0 / weight_sum_);
  out.lower = std::max(0.0, out.n_c_hat - z_ * out.stddev);
  out.upper = out.n_c_hat + z_ * out.stddev;
  return out;
}

}  // namespace vlm::core
