// Confidence intervals for pair estimates.
//
// The paper reports point estimates only; a deployment needs to know how
// much to trust them. Given the two RSU states and a point estimate, we
// evaluate the occupancy-exact accuracy model at the estimated
// intersection to obtain the sampling standard deviation, and report a
// normal-approximation interval plus the slot-randomness floor
// sqrt(n_c (s-1)) (the component no array size can remove).
#pragma once

#include <cstdint>

#include "core/estimator.h"
#include "core/rsu_state.h"

namespace vlm::core {

struct EstimateInterval {
  double n_c_hat = 0.0;   // point estimate (clamped to >= 0)
  double stddev = 0.0;    // predicted StdDev[n̂_c] at the estimate
  double lower = 0.0;     // max(0, n̂_c − z·stddev)
  double upper = 0.0;     // n̂_c + z·stddev
  double floor_stddev = 0.0;  // sqrt(n̂_c (s−1)): slot-randomness floor
  // True when the interval is unreliable: a saturated array, or an
  // estimate so small that the model was evaluated at the floor value.
  bool degraded = false;
};

class IntervalEstimator {
 public:
  // `z` is the normal quantile for the desired coverage (1.96 ~ 95%).
  explicit IntervalEstimator(std::uint32_t s, double z = 1.96);

  // Point estimate + interval in one pass. Counters must be consistent
  // with the arrays (enforced by RsuState). When `point` is non-null the
  // underlying pair estimate is written there as well (the decode
  // pipeline reads its kernel counters for throughput accounting).
  EstimateInterval estimate(const RsuState& x, const RsuState& y,
                            PairEstimate* point = nullptr) const;

  // Same as `estimate`, starting from zero counts the batch decode has
  // already measured. `n_x`/`n_y` must be the counters of the first and
  // second operand the counts were taken from, in that order — annotate's
  // variance model is not symmetric in them.
  EstimateInterval from_counts(const common::JointZeroCounts& counts,
                               double n_x, double n_y,
                               PairEstimate* point = nullptr) const;

  // Annotates an existing estimate. `n_x`/`n_y` are the RSU counters.
  EstimateInterval annotate(const PairEstimate& estimate, double n_x,
                            double n_y) const;

 private:
  PairEstimator estimator_;
  std::uint32_t s_;
  double z_;
};

}  // namespace vlm::core
