#include "core/triple_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/require.h"

namespace vlm::core {

TripleEstimator::TripleEstimator(std::uint32_t s)
    : s_(s), pair_estimator_(s) {
  VLM_REQUIRE(s >= 2, "triple estimator requires s >= 2");
}

TripleEstimate TripleEstimator::estimate(const RsuState& x, const RsuState& y,
                                         const RsuState& z) const {
  return estimate_impl(x, y, z, nullptr, nullptr, nullptr);
}

TripleEstimate TripleEstimator::estimate_with_known_pairs(
    const RsuState& x, const RsuState& y, const RsuState& z, double n_xy,
    double n_xz, double n_yz) const {
  VLM_REQUIRE(n_xy >= 0.0 && n_xz >= 0.0 && n_yz >= 0.0,
              "pairwise intersections must be non-negative");
  return estimate_impl(x, y, z, &n_xy, &n_xz, &n_yz);
}

TripleEstimate TripleEstimator::estimate_impl(const RsuState& x,
                                              const RsuState& y,
                                              const RsuState& z,
                                              const double* known_xy,
                                              const double* known_xz,
                                              const double* known_yz) const {
  // Assign roles by ascending array size; the known-pair values follow
  // the CALLER's argument order, so permute them alongside.
  const RsuState* ordered[3] = {&x, &y, &z};
  const double* known[3] = {known_yz, known_xz, known_xy};  // opposite pair
  auto swap_roles = [&](int a, int b) {
    std::swap(ordered[a], ordered[b]);
    std::swap(known[a], known[b]);
  };
  if (ordered[0]->array_size() > ordered[1]->array_size()) swap_roles(0, 1);
  if (ordered[1]->array_size() > ordered[2]->array_size()) swap_roles(1, 2);
  if (ordered[0]->array_size() > ordered[1]->array_size()) swap_roles(0, 1);
  const RsuState& sx = *ordered[0];
  const RsuState& sy = *ordered[1];
  const RsuState& sz = *ordered[2];
  const std::size_t m_z = sz.array_size();
  VLM_REQUIRE(static_cast<std::size_t>(s_) < sx.array_size(),
              "requires s < every array size");

  TripleEstimate out;
  // Pairwise stage (estimates or supplied truths). known[i] is the pair
  // OPPOSITE role i, i.e. known[0] = n(y,z), known[1] = n(x,z), ...
  out.xy = pair_estimator_.estimate(sx, sy);
  out.xz = pair_estimator_.estimate(sx, sz);
  out.yz = pair_estimator_.estimate(sy, sz);
  const double n_xy = known[2] ? *known[2] : out.xy.n_c_hat;
  const double n_xz = known[1] ? *known[1] : out.xz.n_c_hat;
  const double n_yz = known[0] ? *known[0] : out.yz.n_c_hat;

  // Triple OR and its zero fraction.
  common::BitArray combined = sx.bits().unfolded(m_z);
  combined |= sy.bits().unfolded(m_z);
  combined |= sz.bits();
  const std::size_t zeros = combined.count_zeros();
  if (zeros == 0) {
    out.saturated = true;
    out.v_c3 = 0.5 / static_cast<double>(m_z);
  } else {
    out.v_c3 = static_cast<double>(zeros) / static_cast<double>(m_z);
  }
  out.saturated |= out.xy.saturated || out.xz.saturated || out.yz.saturated;

  const double A = 1.0 / static_cast<double>(sx.array_size());
  const double B = 1.0 / static_cast<double>(sy.array_size());
  const double C = 1.0 / static_cast<double>(m_z);
  const double s = static_cast<double>(s_);
  const double w = (s - 1.0) / s;
  const double lA = std::log1p(-A);
  const double lB = std::log1p(-B);
  const double lC = std::log1p(-C);
  const double l_wB = std::log1p(-w * B);
  const double l_wC = std::log1p(-w * C);
  // Pairwise denominators: L_xy for the (x, y) pair uses the larger m_y;
  // both z-pairs use m_z.
  const double L_xy = l_wB - lB;
  const double L_z = l_wC - lC;
  // ln(g_xyz / (1-A)): the slot-pattern bracket of the header comment.
  const double bracket =
      (1.0 / s) * (1.0 - w * C) +
      w * (1.0 - B) * (1.0 - (1.0 - 2.0 / s) * C);
  const double K = lC - l_wB - 2.0 * l_wC + std::log(bracket);
  VLM_ASSERT(K < 0.0);

  const double base =
      static_cast<double>(sx.counter()) * lA +
      static_cast<double>(sy.counter()) * lB +
      static_cast<double>(sz.counter()) * lC + n_xy * L_xy + n_xz * L_z +
      n_yz * L_z;
  out.raw = (std::log(out.v_c3) - base) / K;
  const double cap = std::min({n_xy, n_xz, n_yz});
  out.n_xyz_hat = std::clamp(out.raw, 0.0, cap);
  return out;
}

}  // namespace vlm::core
