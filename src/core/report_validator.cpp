#include "core/report_validator.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/require.h"

namespace vlm::core {

ReportValidator::ReportValidator(double tolerance_sigmas)
    : tolerance_sigmas_(tolerance_sigmas) {
  VLM_REQUIRE(tolerance_sigmas > 0.0, "tolerance must be positive");
}

double ReportValidator::expected_zero_count(std::uint64_t n, std::size_t m) {
  const double md = static_cast<double>(m);
  return md * common::pow_one_minus(1.0 / md, static_cast<double>(n));
}

double ReportValidator::zero_count_variance(std::uint64_t n, std::size_t m) {
  // Var(U) = m q (1 − q) + m (m − 1) (J − q²), with q = (1 − 1/m)^n and
  // J = (1 − 2/m)^n the probability two distinct bits both stay zero.
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double q = common::pow_one_minus(1.0 / md, nd);
  // J − q² via expm1 in log space to keep the tiny difference exact.
  const double log_ratio =
      nd * (std::log1p(-2.0 / md) - 2.0 * std::log1p(-1.0 / md));
  const double pair_term = q * q * std::expm1(log_ratio);
  return std::max(0.0, md * q * (1.0 - q) + md * (md - 1.0) * pair_term);
}

ReportAssessment ReportValidator::assess(std::uint64_t counter,
                                         std::size_t array_size,
                                         std::size_t zero_count) const {
  VLM_REQUIRE(array_size >= 4 && common::is_power_of_two(array_size),
              "array size must be a power of two >= 4");
  VLM_REQUIRE(zero_count <= array_size, "zero count exceeds the array size");
  ReportAssessment out;
  const std::size_t ones = array_size - zero_count;
  if (ones > counter) {
    out.verdict = ReportVerdict::kInconsistent;
    return out;
  }
  out.expected_zeros = expected_zero_count(counter, array_size);
  out.stddev_zeros = std::sqrt(zero_count_variance(counter, array_size));
  // Even an exactly-on-expectation report has integer rounding; keep a
  // half-bit floor so tiny counters don't divide by ~0.
  const double sigma = std::max(out.stddev_zeros, 0.5);
  out.z_score = (static_cast<double>(zero_count) - out.expected_zeros) / sigma;
  if (out.z_score > tolerance_sigmas_) {
    out.verdict = ReportVerdict::kTooEmpty;
  } else if (out.z_score < -tolerance_sigmas_) {
    out.verdict = ReportVerdict::kTooFull;
  }
  return out;
}

ReportAssessment ReportValidator::assess(const RsuState& state) const {
  return assess(state.counter(), state.array_size(), state.zero_count());
}

}  // namespace vlm::core
