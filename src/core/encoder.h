// Vehicle-side bit-index computation (online coding phase, Section IV-B).
//
// Both the paper's variable-length scheme (VLM) and the fixed-length
// baseline of ref. [9] (FBM) use the same vehicle protocol; they differ
// only in how RSU bit arrays are sized. A vehicle conceptually owns a
// "logical bit array" LB_v of s bits drawn uniformly from the largest
// physical array B_o; answering RSU R_x it selects one logical slot,
// takes that slot's bit position b, and reports b mod m_x.
//
// We realize the logical array over the virtual index space [0, 2^64):
// the value of m_o never enters any formula as long as it is a
// power-of-two multiple of every physical size, so the full 64-bit hash
// serves as b and `b mod m_x` is the low-bits reduction. All congruence
// structure the scheme relies on (the same logical bit folding into
// congruent positions at differently sized RSUs) is preserved exactly.
//
// Slot selection — a documented deviation from the paper's literal text.
// The paper writes the selected slot as X[H(R_x) mod s], which is a
// function of the RSU alone: for a *fixed* pair of RSUs every common
// vehicle would then pick the same slot at both, while the paper's own
// analysis (Eq. 6 and the binomial distribution of n_s in Eq. 37)
// requires each vehicle to independently pick the same slot with
// probability 1/s. We default to the reading that matches the analysis —
// the slot hash also folds in the vehicle's masked key, making slot
// choice uniform per (vehicle, RSU) pair, deterministic for repeated
// queries from the same RSU, and independent across vehicles. The literal
// per-RSU rule is kept selectable (SlotSelection::kLiteralPerRsu) and an
// ablation bench shows it breaks the estimator, which is why we believe
// the published text is a typo.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/hashing.h"
#include "core/types.h"

namespace vlm::core {

// Precomputed per-array-size encode context. The power-of-two requirement
// (Section IV-A) is validated ONCE here instead of per vehicle × RSU, so
// the per-vehicle hot path is two hashes plus a mask; release builds keep
// only a debug-build guard on the fast path. Construct one per (RSU,
// period) — or per batch — and reuse it for every vehicle.
class EncodeTarget {
 public:
  // Throws std::invalid_argument unless `array_size` is a power of two.
  explicit EncodeTarget(std::size_t array_size);

  std::size_t array_size() const {
    return static_cast<std::size_t>(mask_) + 1;
  }
  std::uint64_t mask() const { return mask_; }

 private:
  std::uint64_t mask_;
};

enum class SlotSelection {
  // Slot = H(masked_key, rsu) mod s: per-vehicle uniform, matches the
  // paper's analysis. Default.
  kPerVehicleUniform,
  // Slot = H(rsu) mod s: the paper's literal formula; kept for the
  // ablation study only.
  kLiteralPerRsu,
};

struct EncoderConfig {
  // Number of bits in each vehicle's logical bit array (paper's s >= 2).
  std::uint32_t s = 2;
  // Seed for the public salt array X shared by all vehicles.
  std::uint64_t salt_seed = 0x5EEDBA5EBA11AD00ull;
  SlotSelection slot_selection = SlotSelection::kPerVehicleUniform;
};

class Encoder {
 public:
  explicit Encoder(const EncoderConfig& config);

  const EncoderConfig& config() const { return config_; }

  // Which of the s logical slots the vehicle uses for this RSU.
  std::uint32_t slot_for(const VehicleIdentity& vehicle, RsuId rsu) const;

  // The position of logical bit `slot` in the virtual largest array,
  // i.e. the paper's b = H(v ⊕ K_v ⊕ X[slot]) over [0, 2^64).
  std::uint64_t logical_bit(const VehicleIdentity& vehicle,
                            std::uint32_t slot) const;

  // The full reply a vehicle sends to an RSU whose bit array has
  // `array_size` bits (must be a power of two): b mod m. Convenience
  // boundary API — validates the size on every call by constructing an
  // EncodeTarget.
  std::size_t bit_index(const VehicleIdentity& vehicle, RsuId rsu,
                        std::size_t array_size) const;

  // Hot-path variant: the size guard already ran when `target` was built,
  // so this is hash + hash + mask (debug builds re-assert the guard).
  std::size_t bit_index(const VehicleIdentity& vehicle, RsuId rsu,
                        const EncodeTarget& target) const;

  // Batch encode: out[i] = bit_index(vehicles[i], rsu, target) with the
  // per-RSU slot-hash input and the fold mask hoisted out of the loop.
  // `out.size()` must equal `vehicles.size()`. Extracts masked keys in
  // chunks and routes them through the masked-key overload below.
  void bit_indices(std::span<const VehicleIdentity> vehicles, RsuId rsu,
                   const EncodeTarget& target,
                   std::span<std::size_t> out) const;

  // Columnar form: the same batch encode over pre-extracted masked keys
  // (masked_keys[i] = id ^ K_v), dispatched through the runtime-selected
  // encode_batch kernel — the hot path of the batch ingest pipeline.
  // Bit-identical to per-call bit_index for every key.
  void bit_indices(std::span<const std::uint64_t> masked_keys, RsuId rsu,
                   const EncodeTarget& target,
                   std::span<std::size_t> out) const;

 private:
  EncoderConfig config_;
  common::SaltArray salts_;
};

}  // namespace vlm::core
