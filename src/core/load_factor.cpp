#include "core/load_factor.h"

#include <cmath>

#include "common/require.h"
#include "core/privacy_model.h"

namespace vlm::core {

LoadFactorPlan plan_load_factor(std::uint32_t s, double n_x, double ratio_y,
                                double common_fraction, double min_privacy,
                                double f_lo, double f_hi) {
  VLM_REQUIRE(0.0 < f_lo && f_lo < f_hi, "need 0 < f_lo < f_hi");
  VLM_REQUIRE(min_privacy > 0.0 && min_privacy < 1.0,
              "minimum privacy must be in (0, 1)");
  VLM_REQUIRE(ratio_y >= 1.0, "convention: n_y >= n_x");
  auto privacy = [&](double f) {
    return PrivacyModel::privacy_at_load_factor(f, n_x, ratio_y * n_x,
                                                common_fraction, s);
  };

  // Golden-section search for the maximum. The privacy curve is
  // unimodal in f (rises to f*, decays toward saturation of the mask).
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = f_lo, b = f_hi;
  double c = b - phi * (b - a), d = a + phi * (b - a);
  double pc = privacy(c), pd = privacy(d);
  for (int iter = 0; iter < 80; ++iter) {
    if (pc > pd) {
      b = d;
      d = c;
      pd = pc;
      c = b - phi * (b - a);
      pc = privacy(c);
    } else {
      a = c;
      c = d;
      pc = pd;
      d = a + phi * (b - a);
      pd = privacy(d);
    }
  }
  LoadFactorPlan plan;
  plan.optimal_f = 0.5 * (a + b);
  plan.optimal_p = privacy(plan.optimal_f);
  VLM_REQUIRE(plan.optimal_p >= min_privacy,
              "requested minimum privacy is unattainable for this profile");

  // Largest f on the decreasing branch with privacy >= min_privacy.
  if (privacy(f_hi) >= min_privacy) {
    plan.max_f_for_min_privacy = f_hi;
  } else {
    double lo = plan.optimal_f, hi = f_hi;
    for (int iter = 0; iter < 80; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (privacy(mid) >= min_privacy ? lo : hi) = mid;
    }
    plan.max_f_for_min_privacy = lo;
  }
  return plan;
}

}  // namespace vlm::core
