// Strong identifier types shared across the library.
//
// Vehicle and RSU ids are plain 64-bit values wrapped so they cannot be
// swapped accidentally. A vehicle's id is NEVER transmitted by the
// protocol (that is the paper's whole point); it exists only inside the
// vehicle, XOR-combined with the private key before hashing.
#pragma once

#include <cstdint>
#include <functional>

namespace vlm::core {

struct VehicleId {
  std::uint64_t value = 0;
  friend bool operator==(VehicleId, VehicleId) = default;
  friend auto operator<=>(VehicleId, VehicleId) = default;
};

struct RsuId {
  std::uint64_t value = 0;
  friend bool operator==(RsuId, RsuId) = default;
  friend auto operator<=>(RsuId, RsuId) = default;
};

// A vehicle's secret material. The paper hashes v ⊕ K_v; we keep both
// parts so tests can show that neither alone determines the reported bits.
struct VehicleIdentity {
  VehicleId id;
  std::uint64_t private_key = 0;

  // The combined secret the protocol hashes (v ⊕ K_v in the paper).
  std::uint64_t masked_key() const { return id.value ^ private_key; }
};

}  // namespace vlm::core

template <>
struct std::hash<vlm::core::VehicleId> {
  std::size_t operator()(vlm::core::VehicleId v) const noexcept {
    return std::hash<std::uint64_t>{}(v.value);
  }
};

template <>
struct std::hash<vlm::core::RsuId> {
  std::size_t operator()(vlm::core::RsuId r) const noexcept {
    return std::hash<std::uint64_t>{}(r.value);
  }
};
