#include "core/privacy_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/require.h"
#include "stats/distributions.h"

namespace vlm::core {

namespace {

// The privacy formulas are valid for any real m > 1; the power-of-two
// restriction is an implementability constraint of unfolding, not of the
// math. Internally we evaluate over doubles so Fig. 2's continuous
// load-factor sweeps can use the same code.
struct RealScenario {
  double n_x, n_y, n_c, m_x, m_y;
  std::uint32_t s;
};

RealScenario normalized(RealScenario sc) {
  if (sc.m_x > sc.m_y) {
    std::swap(sc.m_x, sc.m_y);
    std::swap(sc.n_x, sc.n_y);
  }
  VLM_REQUIRE(sc.m_x > 1.0, "privacy formulas require m_x > 1");
  VLM_REQUIRE(sc.s >= 2, "privacy formulas require s >= 2");
  VLM_REQUIRE(sc.n_c >= 0.0 && sc.n_c <= std::min(sc.n_x, sc.n_y),
              "common volume must satisfy 0 <= n_c <= min(n_x, n_y)");
  return sc;
}

RealScenario to_real(const PairScenario& sc) {
  return normalized({sc.n_x, sc.n_y, sc.n_c, static_cast<double>(sc.m_x),
                     static_cast<double>(sc.m_y), sc.s});
}

double pow_n(double one_minus_inv_m, double n, double m) {
  (void)one_minus_inv_m;
  return vlm::common::pow_one_minus(1.0 / m, n);
}

// Closed-form P(Ā), Eq. 40.
double prob_not_both_one_real(const RealScenario& sc) {
  const double s = static_cast<double>(sc.s);
  const double gx = pow_n(0, sc.n_x, sc.m_x);  // (1 − 1/m_x)^{n_x}
  const double gy = pow_n(0, sc.n_y, sc.m_y);  // (1 − 1/m_y)^{n_y}
  const double c4 =
      (1.0 / s) * (1.0 - 1.0 / sc.m_y) / (1.0 - 1.0 / sc.m_x) + (1.0 - 1.0 / s);
  const double c5 = (1.0 / s) / (1.0 - 1.0 / sc.m_x) + (1.0 - 1.0 / s);
  const double c4_pow = std::exp(sc.n_c * std::log(c4));
  const double c5_pow = std::exp(sc.n_c * std::log(c5));
  return gx * c4_pow + gy - gx * gy * c5_pow;
}

PrivacyBreakdown evaluate_real(const RealScenario& sc) {
  PrivacyBreakdown out;
  out.p_a = 1.0 - prob_not_both_one_real(sc);
  // Eqs. 41-42.
  const double gx_c = pow_n(0, sc.n_c, sc.m_x);
  const double gy_c = pow_n(0, sc.n_c, sc.m_y);
  const double gx_rest = pow_n(0, sc.n_x - sc.n_c, sc.m_x);
  const double gy_rest = pow_n(0, sc.n_y - sc.n_c, sc.m_y);
  out.p_ex = (1.0 - gx_rest) * gx_c;
  out.p_ey = (1.0 - gy_rest) * gy_c;
  // Eq. 43. Guard the degenerate no-signal corner P(A) = 0 (no traffic),
  // where privacy is vacuously perfect.
  out.p = out.p_a > 0.0 ? std::min(1.0, out.p_ex * out.p_ey / out.p_a) : 1.0;
  return out;
}

PrivacyBreakdown evaluate_exact_real(const RealScenario& sc) {
  const double s = static_cast<double>(sc.s);
  const double w = (s - 1.0) / s;
  const double A = 1.0 / sc.m_x;
  const double B = 1.0 / sc.m_y;
  auto powm = [](double one_minus, double n) {
    return vlm::common::pow_one_minus(one_minus, n);
  };
  const double x_clear = powm(A, sc.n_x);
  const double y_clear = powm(B, sc.n_y);
  // Per common vehicle, P(avoids the x-residue AND bit b of B_y) is the
  // same (1−A)(1−wB) factor as Eq. 6 — congruence protects the y side
  // whenever the x side was avoided under a shared slot.
  const double common_clear = powm(A, sc.n_c) * powm(w * B, sc.n_c);
  const double both_clear =
      powm(A, sc.n_x - sc.n_c) * powm(B, sc.n_y - sc.n_c) * common_clear;

  PrivacyBreakdown out;
  out.p_a = 1.0 - x_clear - y_clear + both_clear;
  out.p_ex = (1.0 - powm(A, sc.n_x - sc.n_c)) * powm(A, sc.n_c);
  out.p_ey = (1.0 - powm(B, sc.n_y - sc.n_c)) * powm(B, sc.n_c);
  const double joint = (1.0 - powm(A, sc.n_x - sc.n_c)) *
                       (1.0 - powm(B, sc.n_y - sc.n_c)) * common_clear;
  out.p = out.p_a > 0.0 ? std::min(1.0, joint / out.p_a) : 1.0;
  return out;
}

}  // namespace

PrivacyBreakdown PrivacyModel::evaluate(const PairScenario& scenario) {
  return evaluate_real(to_real(scenario));
}

PrivacyBreakdown PrivacyModel::evaluate_exact(const PairScenario& scenario) {
  return evaluate_exact_real(to_real(scenario));
}

double PrivacyModel::preserved_privacy(const PairScenario& scenario) {
  return evaluate(scenario).p;
}

double PrivacyModel::prob_not_both_one(const PairScenario& scenario) {
  return prob_not_both_one_real(to_real(scenario));
}

double PrivacyModel::prob_not_both_one_exact(const PairScenario& scenario) {
  const RealScenario sc = to_real(scenario);
  const auto n_c = static_cast<std::uint64_t>(sc.n_c);
  VLM_REQUIRE(static_cast<double>(n_c) == sc.n_c,
              "exact sum needs an integer n_c");
  // Eqs. 37-39: sum over the binomial count n_s of same-slot common cars.
  double total = 0.0;
  for (std::uint64_t z = 0; z <= n_c; ++z) {
    const double zd = static_cast<double>(z);
    const double q4 = pow_n(0, zd, sc.m_y);  // Eq. 38
    const double q5 =
        1.0 - (1.0 - pow_n(0, sc.n_x - zd, sc.m_x)) *
                  (1.0 - pow_n(0, sc.n_y - zd, sc.m_y));  // Eq. 39
    const double weight =
        vlm::stats::binomial_pmf(n_c, 1.0 / static_cast<double>(sc.s), z);
    total += q4 * q5 * weight;
  }
  return total;
}

double PrivacyModel::trajectory_privacy(std::span<const PairScenario> hops) {
  VLM_REQUIRE(!hops.empty(), "a trajectory needs at least one hop");
  double all_hops_linked = 1.0;
  for (const PairScenario& hop : hops) {
    all_hops_linked *= 1.0 - evaluate_exact(hop).p;
  }
  return 1.0 - all_hops_linked;
}

double PrivacyModel::privacy_at_load_factor(double f, double n_x, double n_y,
                                            double common_fraction,
                                            std::uint32_t s) {
  VLM_REQUIRE(f > 0.0, "load factor must be positive");
  VLM_REQUIRE(n_x > 0.0 && n_y > 0.0, "volumes must be positive");
  VLM_REQUIRE(common_fraction >= 0.0 && common_fraction <= 1.0,
              "common fraction must be in [0, 1]");
  RealScenario sc{n_x, n_y, common_fraction * std::min(n_x, n_y), f * n_x,
                  f * n_y, s};
  return evaluate_real(normalized(sc)).p;
}

}  // namespace vlm::core
