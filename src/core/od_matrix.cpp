#include "core/od_matrix.h"

#include "common/require.h"

namespace vlm::core {

OdMatrix::OdMatrix(std::size_t rsu_count, std::uint32_t s, double z)
    : k_(rsu_count), cells_(rsu_count * (rsu_count - 1) / 2) {
  (void)s;
  (void)z;
  VLM_REQUIRE(rsu_count >= 2, "an OD matrix needs at least two RSUs");
}

EstimateInterval& OdMatrix::cell(std::size_t a, std::size_t b) {
  return const_cast<EstimateInterval&>(
      static_cast<const OdMatrix*>(this)->at(a, b));
}

const EstimateInterval& OdMatrix::at(std::size_t a, std::size_t b) const {
  VLM_REQUIRE(a < k_ && b < k_ && a != b,
              "OD matrix lookup needs two distinct RSU positions");
  const std::size_t lo = a < b ? a : b;
  const std::size_t hi = a < b ? b : a;
  // Row-major upper triangle: offset(lo) = lo*k - lo(lo+1)/2 relative
  // to column lo+1.
  const std::size_t row_start = lo * k_ - lo * (lo + 1) / 2;
  return cells_[row_start + (hi - lo - 1)];
}

double OdMatrix::total_estimated_common() const {
  double total = 0.0;
  for (const EstimateInterval& e : cells_) total += e.n_c_hat;
  return total;
}

OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z) {
  OdMatrix matrix(states.size(), s, z);
  const IntervalEstimator estimator(s, z);
  for (std::size_t a = 0; a < states.size(); ++a) {
    for (std::size_t b = a + 1; b < states.size(); ++b) {
      matrix.cell(a, b) = estimator.estimate(states[a], states[b]);
    }
  }
  return matrix;
}

}  // namespace vlm::core
