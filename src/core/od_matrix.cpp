#include "core/od_matrix.h"

#include <chrono>
#include <numeric>

#include "common/kernels/kernels.h"
#include "common/parallel.h"
#include "common/require.h"

namespace vlm::core {

OdMatrix::OdMatrix(std::size_t rsu_count, std::uint32_t s, double z)
    : k_(rsu_count), cells_(rsu_count * (rsu_count - 1) / 2) {
  (void)s;
  (void)z;
  VLM_REQUIRE(rsu_count >= 2, "an OD matrix needs at least two RSUs");
}

EstimateInterval& OdMatrix::cell(std::size_t a, std::size_t b) {
  return const_cast<EstimateInterval&>(
      static_cast<const OdMatrix*>(this)->at(a, b));
}

const EstimateInterval& OdMatrix::at(std::size_t a, std::size_t b) const {
  VLM_REQUIRE(a < k_ && b < k_ && a != b,
              "OD matrix lookup needs two distinct RSU positions");
  const std::size_t lo = a < b ? a : b;
  const std::size_t hi = a < b ? b : a;
  // Row-major upper triangle: offset(lo) = lo*k - lo(lo+1)/2 relative
  // to column lo+1.
  const std::size_t row_start = lo * k_ - lo * (lo + 1) / 2;
  return cells_[row_start + (hi - lo - 1)];
}

double OdMatrix::total_estimated_common() const {
  double total = 0.0;
  for (const EstimateInterval& e : cells_) total += e.n_c_hat;
  return total;
}

OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z, unsigned workers, DecodeStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  OdMatrix matrix(states.size(), s, z);
  const IntervalEstimator estimator(s, z);
  const unsigned used = workers == 0 ? common::default_worker_count() : workers;

  // Flatten the upper triangle into an index list so the pair loop can be
  // sliced across workers. Pair p covers cells_[p] exactly, and every
  // worker writes only its own pairs' cells (plus its own slot of the
  // per-pair word counters), so the result is deterministic: identical
  // for any worker count and any scheduling.
  const std::size_t k = states.size();
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(k * (k - 1) / 2);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) pairs.emplace_back(a, b);
  }

  std::vector<std::size_t> words_per_pair(pairs.size(), 0);
  common::parallel_for(pairs.size(), used, [&](std::size_t p) {
    const auto [a, b] = pairs[p];
    PairEstimate point;
    matrix.cell(a, b) = estimator.estimate(states[a], states[b], &point);
    words_per_pair[p] = point.words_scanned;
  });

  if (stats != nullptr) {
    stats->pairs_decoded = pairs.size();
    stats->words_scanned = std::accumulate(words_per_pair.begin(),
                                           words_per_pair.end(),
                                           std::size_t{0});
    stats->workers = used;
    stats->kernel_isa = common::kernels::active_name();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  return matrix;
}

}  // namespace vlm::core
